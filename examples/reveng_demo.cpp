/**
 * @file
 * Reverse-engineer a module's internals from the memory interface, as
 * the paper's methodology requires before any spatial analysis:
 * 1) identify the in-DRAM logical->physical row mapping by single-
 *    sided hammering, 2) locate subarray boundaries via one-sided
 *    disturbance + RowClone validation, 3) estimate the subarray count
 *    with the k-means/silhouette sweep (Fig. 8).
 *
 * Usage: reveng_demo [module=S1] [subarrays_to_probe=8]
 */
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "charz/reveng.h"
#include "fault/vuln_model.h"

using namespace svard;

int
main(int argc, char **argv)
{
    const std::string label = argc > 1 ? argv[1] : "S1";
    const uint32_t probe = argc > 2 ? std::atoi(argv[2]) : 8;

    const auto &spec = dram::moduleByLabel(label);
    auto subarrays = std::make_shared<dram::SubarrayMap>(spec);
    auto model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays);
    dram::DramDevice device(spec, subarrays, model);
    bender::TestSession session(device);

    charz::RevEngOptions opt;
    opt.mappingSamples = 512;
    const auto scheme = charz::identifyRowMapping(session, opt);
    std::printf("Row mapping scheme: recovered %d, ground truth %d %s\n",
                static_cast<int>(scheme), spec.rowMappingScheme,
                static_cast<int>(scheme) == spec.rowMappingScheme
                    ? "(correct)"
                    : "(MISMATCH)");

    opt.firstRow = 1;
    opt.lastRow = subarrays->subarrayBase(probe) + 10;
    const auto res = charz::reverseEngineerSubarrays(session, opt);
    std::printf("\nProbed physical rows [%u, %u] (~%u subarrays)\n",
                opt.firstRow, opt.lastRow, probe);
    std::printf("boundary candidates: %zu, after RowClone validation: "
                "%zu\n",
                res.candidates.size(), res.boundaries.size());
    std::printf("recovered boundaries:");
    for (uint32_t b : res.boundaries)
        std::printf(" %u", b);
    std::printf("\nground truth:        ");
    for (uint32_t s = 1; s <= probe; ++s)
        std::printf(" %u", subarrays->subarrayBase(s));
    std::printf("\n\nsilhouette sweep (Fig. 8):\n  k : score\n");
    for (const auto &pt : res.silhouette)
        std::printf("  %-3u: %.3f%s\n", pt.k, pt.score,
                    pt.k == res.bestK ? "  <-- best" : "");
    std::printf("estimated subarray count: %u\n", res.bestK);
    return 0;
}
