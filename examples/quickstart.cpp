/**
 * @file
 * Quickstart: the library's whole pipeline in one sitting.
 *
 *  1. Stand up a device-under-test for module S0 (behavioral DDR4 with
 *     the calibrated read-disturbance fault model).
 *  2. Characterize a few rows with Alg. 1 (WCDP + HC_first sweep).
 *  3. Build a Svärd vulnerability profile from the model.
 *  4. Run a double-sided RowHammer attack against the weakest row,
 *     unprotected vs. PARA vs. PARA+Svärd, and compare bitflips and
 *     preventive-refresh counts.
 *
 * Build: cmake --build build && ./build/bin/quickstart
 */
#include <cstdio>
#include <memory>

#include "charz/characterizer.h"
#include "defense/harness.h"
#include "defense/registry.h"
#include "fault/vuln_model.h"

using namespace svard;

int
main()
{
    // --- 1. device under test -------------------------------------
    const auto &spec = dram::moduleByLabel("S0");
    auto subarrays = std::make_shared<dram::SubarrayMap>(spec);
    auto model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays);
    std::printf("Module %s (%s, %d Gb %s x%d, %u rows/bank, "
                "%u subarrays/bank)\n\n",
                spec.label.c_str(), dram::vendorName(spec.vendor),
                spec.densityGb, spec.dieRev.c_str(), spec.orgWidth,
                spec.rowsPerBank, subarrays->numSubarrays());

    // --- 2. characterize a handful of rows ------------------------
    dram::DramDevice device(spec, subarrays, model);
    charz::Characterizer charz(device);
    charz::CharzOptions opt;
    std::printf("row   HC_first   BER@128K   WCDP\n");
    for (uint32_t row = 1000; row <= 5000; row += 1000) {
        const auto r = charz.characterizeRow(1, row, opt);
        std::printf("%-5u %-10s %-10.6f %s\n", row,
                    (std::to_string(r.hcFirst / 1024) + "K").c_str(),
                    r.ber128k, fault::patternName(r.wcdp));
    }

    // --- 3. Svärd profile ------------------------------------------
    auto profile = std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(*model));
    std::printf("\nSvärd profile: %u bins, worst-case safe threshold "
                "%.0f hammers, %.1f KiB metadata\n",
                profile->numBins(), profile->minThreshold(),
                profile->metadataBits() / 8192.0);

    // --- 4. attack: unprotected vs PARA vs PARA+Svärd ---------------
    defense::AttackOptions attack;
    attack.victim =
        device.mapping().toLogical(model->weakestRow(attack.bank));
    attack.refreshWindows = 1;
    attack.maxActsPerAggressor = 200 * 1024;

    {
        dram::DramDevice dev(spec, subarrays, model);
        const auto res =
            defense::runDoubleSidedAttack(dev, nullptr, attack);
        std::printf("\nUnprotected: %llu activations -> %llu bitflips\n",
                    (unsigned long long)res.aggressorActs,
                    (unsigned long long)res.bitflips);
    }
    {
        dram::DramDevice dev(spec, subarrays, model);
        // Defenses are constructed by name through the registry; the
        // context threads the module's geometry into bank folding.
        auto para = defense::makeDefenseByName(
            "para",
            defense::DefenseContext(
                std::make_shared<core::UniformThreshold>(
                    profile->minThreshold(), spec.rowsPerBank),
                1, spec.banks));
        const auto res =
            defense::runDoubleSidedAttack(dev, para.get(), attack);
        std::printf("PARA (no Svärd): %llu bitflips, "
                    "%llu preventive refreshes\n",
                    (unsigned long long)res.bitflips,
                    (unsigned long long)res.preventiveRefreshes);
    }
    {
        dram::DramDevice dev(spec, subarrays, model);
        auto para = defense::makeDefenseByName(
            "para", defense::DefenseContext(
                        std::make_shared<core::Svard>(profile), 1,
                        spec.banks));
        const auto res =
            defense::runDoubleSidedAttack(dev, para.get(), attack);
        std::printf("PARA + Svärd:    %llu bitflips, "
                    "%llu preventive refreshes "
                    "(same guarantee, fewer actions)\n",
                    (unsigned long long)res.bitflips,
                    (unsigned long long)res.preventiveRefreshes);
    }
    return 0;
}
