/**
 * @file
 * Tour of the observability layer (src/obs/): run a small sweep with
 * every instrument switched on programmatically —
 *
 *   - metrics registry: named counters/gauges/histograms sharded
 *     per thread, merged into one snapshot at the end
 *     (obs::setMetricsEnabled / obs::snapshot)
 *   - chrome-trace spans: one span per sweep cell, baseline batch,
 *     cache probe, and sink flush, written as trace.json for
 *     chrome://tracing or https://ui.perfetto.dev
 *     (obs::startTrace / obs::stopTrace)
 *   - heartbeats: machine-readable JSONL progress records
 *     (obs::setHeartbeatPath), plus the live stderr progress line
 *     when stderr is a terminal
 *   - run manifest: a JSON provenance record written next to the
 *     sweep output (SweepSpec::manifestPath)
 *
 * None of this feeds back into simulation: the CSV this writes is
 * byte-identical with every instrument off (CI enforces it).
 *
 * Outside of code, the same instruments hang off environment knobs:
 * SVARD_METRICS, SVARD_TRACE=<path>, SVARD_HEARTBEAT=<path>,
 * SVARD_PROGRESS, SVARD_LOG_LEVEL (see README "Observability").
 *
 * Usage: observed_sweep [out_dir]
 */
#include <cstdio>

#include "engine/runner.h"
#include "io/async_sink.h"
#include "io/result_sink.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

using namespace svard;

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : ".";
    const std::string out_csv = dir + "/observed_sweep.csv";
    const std::string trace_json = dir + "/observed_sweep.trace.json";
    const std::string heartbeats = dir + "/observed_sweep.heartbeat.jsonl";

    // Switch every instrument on programmatically (equivalently:
    // SVARD_METRICS=1 SVARD_TRACE=... SVARD_HEARTBEAT=... in the env).
    obs::setMetricsEnabled(true);
    obs::startTrace(trace_json);
    obs::setHeartbeatPath(heartbeats);

    engine::SweepSpec spec;
    spec.config.cores = 4;
    spec.requestsPerCore = 2000;
    spec.defenses = {"para", "hydra"};
    spec.thresholds = {1024, 128};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S0")};
    spec.mixes = sim::workloadMixes(2, spec.config.cores);
    spec.sink = std::make_shared<io::AsyncSink>(
        io::makeSinkForPath(out_csv));
    spec.manifestPath = out_csv + ".manifest.json";
    spec.progressLabel = "observed-sweep";

    engine::ExperimentRunner runner(std::move(spec));
    runner.run();
    std::printf("executed %zu cells (+%zu baselines); spec "
                "fingerprint %016llx\n",
                runner.executedCells(), runner.executedBaselines(),
                static_cast<unsigned long long>(
                    runner.specFingerprint()));

    // The merged metrics snapshot: every counter the run touched —
    // controller ACT/row-hit counts, defense actions and table
    // occupancy, cache hits/misses, sink queue high-water...
    std::printf("\n-- metrics snapshot --\n%s\n",
                obs::snapshot().toJson(2).c_str());

    // Flush the trace now (otherwise it is written at process exit).
    obs::stopTrace();

    // The manifest the runner wrote next to the CSV, read back.
    obs::RunManifest m;
    if (obs::readManifest(out_csv + ".manifest.json", &m))
        std::printf("\nmanifest: kind=%s threads=%u simd=%s "
                    "flags=[%s] wall=%.2fs cells=%llu\n",
                    m.kind.c_str(), m.threads, m.simdImpl.c_str(),
                    m.buildFlags.c_str(), m.wallSeconds,
                    static_cast<unsigned long long>(m.cellsTotal));

    std::printf("\nresults:    %s\n"
                "manifest:   %s.manifest.json\n"
                "trace:      %s  (load in chrome://tracing or "
                "ui.perfetto.dev)\n"
                "heartbeats: %s\n",
                out_csv.c_str(), out_csv.c_str(), trace_json.c_str(),
                heartbeats.c_str());
    return 0;
}
