/**
 * @file
 * Security face-off: drive a double-sided RowHammer attack against the
 * weakest row of a module with every defense in the loop, with and
 * without Svärd, and report bitflips plus the price each defense paid.
 * Also demonstrates the RowPress hazard: a pressed attack (tAggOn=2us)
 * defeats pure activation counting.
 *
 * Usage: attack_defense_demo [module=S2]
 */
#include <cstdio>
#include <memory>

#include "defense/aqua.h"
#include "defense/blockhammer.h"
#include "defense/graphene.h"
#include "defense/harness.h"
#include "defense/hydra.h"
#include "defense/para.h"
#include "defense/rrs.h"
#include "fault/vuln_model.h"

using namespace svard;
using defense::AttackOptions;
using defense::runDoubleSidedAttack;

namespace {

std::unique_ptr<defense::Defense>
make(int i, std::shared_ptr<const core::ThresholdProvider> thr)
{
    switch (i) {
      case 0: return std::make_unique<defense::Para>(thr, 7);
      case 1: return std::make_unique<defense::BlockHammer>(thr);
      case 2: return std::make_unique<defense::Hydra>(thr);
      case 3: return std::make_unique<defense::Aqua>(thr);
      case 4: return std::make_unique<defense::Rrs>(thr);
      default: return std::make_unique<defense::Graphene>(thr);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string label = argc > 1 ? argv[1] : "S2";
    const auto &spec = dram::moduleByLabel(label);
    auto subarrays = std::make_shared<dram::SubarrayMap>(spec);
    auto model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays);
    auto profile = std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(*model));

    AttackOptions attack;
    attack.refreshWindows = 1;
    attack.maxActsPerAggressor = 200 * 1024;
    {
        dram::DramDevice probe_dev(spec, subarrays, model);
        attack.victim =
            probe_dev.mapping().toLogical(model->weakestRow(attack.bank));
    }

    std::printf("Attacking %s's weakest row (HC_first = %lldK)\n\n",
                label.c_str(),
                (long long)spec.hcFirstMin / 1024);
    std::printf("%-12s %-9s %9s %9s %9s %9s\n", "defense", "config",
                "bitflips", "refreshes", "throttles", "migrations");

    {
        dram::DramDevice dev(spec, subarrays, model);
        const auto r = runDoubleSidedAttack(dev, nullptr, attack);
        std::printf("%-12s %-9s %9llu %9s %9s %9s\n", "(none)", "-",
                    (unsigned long long)r.bitflips, "-", "-", "-");
    }
    const char *names[] = {"PARA", "BlockHammer", "Hydra",
                           "AQUA", "RRS", "Graphene"};
    for (int i = 0; i < 6; ++i) {
        for (int with_svard = 0; with_svard < 2; ++with_svard) {
            std::shared_ptr<const core::ThresholdProvider> thr;
            if (with_svard)
                thr = std::make_shared<core::Svard>(profile);
            else
                thr = std::make_shared<core::UniformThreshold>(
                    profile->minThreshold(), spec.rowsPerBank);
            dram::DramDevice dev(spec, subarrays, model);
            auto d = make(i, thr);
            const auto r = runDoubleSidedAttack(dev, d.get(), attack);
            std::printf("%-12s %-9s %9llu %9llu %9llu %9llu\n",
                        names[i], with_svard ? "Svärd" : "uniform",
                        (unsigned long long)r.bitflips,
                        (unsigned long long)r.preventiveRefreshes,
                        (unsigned long long)r.throttleEvents,
                        (unsigned long long)r.migrations);
        }
    }

    // RowPress hazard (beyond the paper, rooted in its Sec. 5.3 data).
    std::printf("\nRowPress hazard: pressed attack (tAggOn = 2us) vs "
                "activation counting\n");
    attack.tAggOn = 2 * dram::kPsPerUs;
    dram::DramDevice dev(spec, subarrays, model);
    defense::Graphene g(std::make_shared<core::Svard>(profile));
    const auto r = runDoubleSidedAttack(dev, &g, attack);
    std::printf("Graphene under RowPress: %llu bitflips "
                "(activation counts alone are not sufficient)\n",
                (unsigned long long)r.bitflips);
    return 0;
}
