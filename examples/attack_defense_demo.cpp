/**
 * @file
 * Security face-off: drive a double-sided RowHammer attack against the
 * weakest row of a module with every defense in the loop, with and
 * without Svärd, and report bitflips plus the price each defense paid.
 * Also demonstrates the RowPress hazard: a pressed attack (tAggOn=2us)
 * defeats pure activation counting.
 *
 * Usage: attack_defense_demo [module=S2]
 */
#include <cstdio>
#include <memory>

#include "defense/harness.h"
#include "defense/registry.h"
#include "fault/vuln_model.h"

using namespace svard;
using defense::AttackOptions;
using defense::runDoubleSidedAttack;

int
main(int argc, char **argv)
{
    const std::string label = argc > 1 ? argv[1] : "S2";
    const auto &spec = dram::moduleByLabel(label);
    auto subarrays = std::make_shared<dram::SubarrayMap>(spec);
    auto model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays);
    auto profile = std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(*model));

    AttackOptions attack;
    attack.refreshWindows = 1;
    attack.maxActsPerAggressor = 200 * 1024;
    {
        dram::DramDevice probe_dev(spec, subarrays, model);
        attack.victim =
            probe_dev.mapping().toLogical(model->weakestRow(attack.bank));
    }

    std::printf("Attacking %s's weakest row (HC_first = %lldK)\n\n",
                label.c_str(),
                (long long)spec.hcFirstMin / 1024);
    std::printf("%-12s %-9s %9s %9s %9s %9s\n", "defense", "config",
                "bitflips", "refreshes", "throttles", "migrations");

    {
        dram::DramDevice dev(spec, subarrays, model);
        const auto r = runDoubleSidedAttack(dev, nullptr, attack);
        std::printf("%-12s %-9s %9llu %9s %9s %9s\n", "(none)", "-",
                    (unsigned long long)r.bitflips, "-", "-", "-");
    }
    const char *names[] = {"PARA", "BlockHammer", "Hydra",
                           "AQUA", "RRS", "Graphene"};
    for (const char *name : names) {
        for (int with_svard = 0; with_svard < 2; ++with_svard) {
            std::shared_ptr<const core::ThresholdProvider> thr;
            if (with_svard)
                thr = std::make_shared<core::Svard>(profile);
            else
                thr = std::make_shared<core::UniformThreshold>(
                    profile->minThreshold(), spec.rowsPerBank);
            dram::DramDevice dev(spec, subarrays, model);
            // Registry lookups are case-insensitive, so the display
            // names double as registry names.
            auto d = defense::makeDefenseByName(
                name, defense::DefenseContext(thr, 7, spec.banks));
            const auto r = runDoubleSidedAttack(dev, d.get(), attack);
            std::printf("%-12s %-9s %9llu %9llu %9llu %9llu\n",
                        name, with_svard ? "Svärd" : "uniform",
                        (unsigned long long)r.bitflips,
                        (unsigned long long)r.preventiveRefreshes,
                        (unsigned long long)r.throttleEvents,
                        (unsigned long long)r.migrations);
        }
    }

    // RowPress hazard (beyond the paper, rooted in its Sec. 5.3 data).
    std::printf("\nRowPress hazard: pressed attack (tAggOn = 2us) vs "
                "activation counting\n");
    attack.tAggOn = 2 * dram::kPsPerUs;
    dram::DramDevice dev(spec, subarrays, model);
    auto g = defense::makeDefenseByName(
        "graphene",
        defense::DefenseContext(std::make_shared<core::Svard>(profile),
                                1, spec.banks));
    const auto r = runDoubleSidedAttack(dev, g.get(), attack);
    std::printf("Graphene under RowPress: %llu bitflips "
                "(activation counts alone are not sufficient)\n",
                (unsigned long long)r.bitflips);
    return 0;
}
