/**
 * @file
 * Performance face-off on the cycle-level simulator: one workload mix,
 * every defense, at a chosen worst-case HC_first, with and without
 * Svärd (module S0's profile). Prints the three paper metrics
 * normalized to the no-defense baseline — a single-mix slice of
 * Fig. 12.
 *
 * Usage: defense_faceoff [hc_first=128] [requests_per_core=6000]
 */
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "fault/vuln_model.h"
#include "sim/system.h"

using namespace svard;
using namespace svard::sim;

int
main(int argc, char **argv)
{
    const double threshold = argc > 1 ? std::atof(argv[1]) : 128.0;
    const size_t requests = argc > 2 ? std::atol(argv[2]) : 6000;

    SimConfig cfg;
    MixRunner runner(cfg, requests);
    WorkloadMix mix;
    mix.name = "faceoff";
    mix.benchIdx = {16, 17, 16, 17, 0, 2, 8, 11};

    const auto &spec = dram::moduleByLabel("S0");
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    fault::VulnerabilityModel model(spec, sa);
    auto profile = std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(model)
            .resampledTo(cfg.banksPerRank(), cfg.rowsPerBank)
            .scaledTo(threshold));

    const auto base = runner.runMix(mix, "none", nullptr);
    std::printf("No defense: WS %.3f HS %.3f maxSd %.3f "
                "(HC_first sweep point: %.0f)\n\n",
                base.weightedSpeedup, base.harmonicSpeedup,
                base.maxSlowdown, threshold);
    std::printf("%-12s %-9s %10s %10s %10s\n", "defense", "config",
                "normWS", "normHS", "normMaxSd");

    // Every defense the registry knows, skipping the "none" baseline
    // (extensions registered at startup show up here automatically).
    for (const auto &name :
         defense::DefenseRegistry::instance().names()) {
        if (name == "none")
            continue;
        for (int with_svard = 0; with_svard < 2; ++with_svard) {
            std::shared_ptr<const core::ThresholdProvider> thr;
            if (with_svard)
                thr = std::make_shared<core::Svard>(profile);
            else
                thr = std::make_shared<core::UniformThreshold>(
                    threshold, cfg.rowsPerBank);
            const auto m = runner.runMix(mix, name, thr);
            std::printf("%-12s %-9s %10.4f %10.4f %10.4f\n",
                        name.c_str(),
                        with_svard ? "Svärd-S0" : "uniform",
                        m.weightedSpeedup / base.weightedSpeedup,
                        m.harmonicSpeedup / base.harmonicSpeedup,
                        m.maxSlowdown / base.maxSlowdown);
        }
    }
    return 0;
}
