/**
 * @file
 * Streaming + checkpoint/resume tour of the result-sink subsystem.
 *
 * Runs a small {defense x threshold x provider x mix} grid twice
 * against the same per-cell sweep cache:
 *
 *   1. Cold: every cell executes. Finished cells stream to a CSV
 *      sink in final table order while workers are still busy (an
 *      AsyncSink moves the file I/O off the simulation threads), and
 *      each cell is checkpointed the moment it finishes — kill the
 *      process at any point and the cache still holds all completed
 *      work.
 *   2. Hot: the same spec re-run consults the cache, executes zero
 *      cells, and rewrites a byte-identical CSV.
 *
 * The same mechanism resumes interrupted sweeps (`fig12_performance
 * --cache=... --resume`) and re-runs edited ones: only cells whose
 * resolved inputs changed miss the cache.
 *
 * Usage: streaming_sweep [out.csv] [sweep.cache]
 */
#include <cstdio>

#include "engine/runner.h"
#include "io/async_sink.h"
#include "io/result_sink.h"
#include "io/sweep_cache.h"

using namespace svard;

namespace {

engine::SweepSpec
makeSpec(const std::string &out_path,
         const std::shared_ptr<io::SweepCache> &cache)
{
    engine::SweepSpec spec;
    spec.config.cores = 4;
    spec.requestsPerCore = 2000;
    spec.defenses = {"para", "blockhammer"};
    spec.thresholds = {1024, 128};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S0")};
    spec.mixes = sim::workloadMixes(2, spec.config.cores);
    // Registry-driven parameter bag: recorded in every sink row and
    // part of the cache fingerprint (edit it and every cell re-runs).
    spec.defenseParams["blacklist_fraction"] = 0.5;
    spec.sink = std::make_shared<io::AsyncSink>(
        io::makeSinkForPath(out_path));
    spec.cache = cache;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "streaming_sweep.csv";
    const std::string cache_path =
        argc > 2 ? argv[2] : "streaming_sweep.cache";

    auto cache = std::make_shared<io::SweepCache>(cache_path);
    std::printf("cache \"%s\": %zu cells checkpointed from previous "
                "runs\n",
                cache_path.c_str(), cache->size());

    std::printf("\n-- pass 1 (cold unless resumed): tail -f %s --\n",
                out_path.c_str());
    engine::ExperimentRunner cold(makeSpec(out_path, cache));
    cold.run();
    std::printf("executed %zu cells, %zu from cache\n",
                cold.executedCells(), cold.cachedCells());

    std::printf("\n-- pass 2 (hot): same spec, same cache --\n");
    engine::ExperimentRunner hot(makeSpec(out_path, cache));
    hot.run();
    std::printf("executed %zu cells, %zu from cache\n",
                hot.executedCells(), hot.cachedCells());

    hot.cellTable().print();
    std::printf("\nResults streamed to %s; checkpoint kept at %s\n"
                "(delete it to force a cold run, or edit the spec — "
                "only changed cells re-execute).\n",
                out_path.c_str(), cache_path.c_str());
    return 0;
}
