/**
 * @file
 * Characterize one module end to end (Alg. 1) and dump a per-row CSV,
 * the way a profiling campaign on the real infrastructure would.
 *
 * Usage: characterize_module [module=S0] [rows_per_bank=256] [csv_path]
 */
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "charz/characterizer.h"
#include "common/stats.h"
#include "common/table.h"
#include "fault/vuln_model.h"

using namespace svard;

int
main(int argc, char **argv)
{
    const std::string label = argc > 1 ? argv[1] : "S0";
    const long target = argc > 2 ? std::atol(argv[2]) : 256;
    const std::string csv = argc > 3 ? argv[3] : "";

    const auto &spec = dram::moduleByLabel(label);
    auto subarrays = std::make_shared<dram::SubarrayMap>(spec);
    auto model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays);
    dram::DramDevice device(spec, subarrays, model);
    charz::Characterizer charz(device);

    charz::CharzOptions opt;
    uint32_t step = std::max<long>(1, spec.rowsPerBank / target);
    if (step % 2 == 0)
        ++step; // avoid aliasing with subarray boundaries
    opt.rowStep = step;

    Table t("Characterization of " + label,
            {"bank", "logical_row", "phys_row", "rel_loc", "wcdp",
             "ber_128k", "hc_first"});
    std::vector<double> hcs, bers;
    for (uint32_t bank : opt.banks) {
        auto bank_opt = opt;
        bank_opt.banks = {bank};
        for (const auto &r : charz.characterizeBank(bank, bank_opt)) {
            t.addRow({Table::fmt(int64_t(r.bank)),
                      Table::fmt(int64_t(r.logicalRow)),
                      Table::fmt(int64_t(r.physRow)),
                      Table::fmt(r.relativeLocation, 4),
                      fault::patternName(r.wcdp),
                      Table::fmt(r.ber128k, 6),
                      Table::fmt(r.hcFirst)});
            hcs.push_back(double(r.hcFirst));
            bers.push_back(r.ber128k);
        }
    }

    if (!csv.empty()) {
        if (t.writeCsv(csv))
            std::printf("wrote %zu rows to %s\n", t.rows(), csv.c_str());
        else
            std::printf("could not write %s\n", csv.c_str());
    } else {
        t.print();
    }
    std::printf("\n%s summary: HC_first min %.0f avg %.1fK max %.0f | "
                "BER mean %.6f CV %.2f%% | %llu activations issued\n",
                label.c_str(), minOf(hcs), mean(hcs) / 1024.0,
                maxOf(hcs), mean(bers),
                coefficientOfVariation(bers) * 100.0,
                (unsigned long long)device.stats().activates);
    return 0;
}
