/**
 * @file
 * Experiment-engine tour: declare a {geometry x defense x threshold x
 * provider x workload} grid once and let the engine shard it across a
 * thread pool. Sweeps the paper's 1-channel system against a
 * 2-channel variant of the same module to show geometry as a first-
 * class axis — no defense or bench code changes, the profile is
 * resampled onto each geometry automatically.
 *
 * Usage: sweep_engine [threads=0 (auto)] [requests_per_core=4000]
 */
#include <cstdio>
#include <cstdlib>

#include "engine/runner.h"

using namespace svard;

int
main(int argc, char **argv)
{
    engine::SweepSpec spec;
    spec.threads = argc > 1 ? std::atoi(argv[1]) : 0;
    spec.requestsPerCore = argc > 2 ? std::atol(argv[2]) : 4000;

    sim::SimConfig two_channel = spec.config;
    two_channel.channels = 2;
    spec.geometries = {spec.config, two_channel};

    spec.defenses = {"para", "hydra"};
    spec.thresholds = {1024, 128};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S0")};
    spec.mixes = sim::workloadMixes(2, spec.config.cores);

    engine::ExperimentRunner runner(std::move(spec));
    runner.cellTable().print();

    std::printf("\nSummary (mean normalized weighted speedup):\n");
    for (const auto &row : runner.summarize()) {
        const auto &g = runner.geometries()[row.geom];
        std::printf("  %uch %-8s HC=%-6.0f %-10s : %.4f\n",
                    g.channels, row.defense.c_str(), row.threshold,
                    row.provider.c_str(),
                    row.meanNormalized.weightedSpeedup);
    }
    return 0;
}
