/**
 * @file
 * Minimal deterministic work-sharing: run an index-addressed job list
 * across a pool of std::threads. Work items must be independent and
 * write only to their own result slots; the helper guarantees every
 * index runs exactly once, so a run's outputs are identical for any
 * thread count (the properties the experiment engine's sharded sweeps
 * rely on).
 */
#ifndef SVARD_COMMON_PARALLEL_H
#define SVARD_COMMON_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace svard {

/** Threads to use for `0 = auto` requests. */
inline unsigned
resolveThreadCount(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/**
 * Invoke `fn(i)` once for every i in [0, n), sharded over `threads`
 * workers (0 = hardware concurrency). With threads == 1 the calls run
 * inline in index order — handy for debugging and for determinism
 * comparisons against sharded runs.
 */
inline void
parallelFor(size_t n, unsigned threads,
            const std::function<void(size_t)> &fn)
{
    const unsigned workers =
        static_cast<unsigned>(std::min<size_t>(resolveThreadCount(threads), n));
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back([&] {
            for (size_t i = next.fetch_add(1); i < n;
                 i = next.fetch_add(1))
                fn(i);
        });
    for (auto &t : pool)
        t.join();
}

} // namespace svard

#endif // SVARD_COMMON_PARALLEL_H
