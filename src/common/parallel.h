/**
 * @file
 * Minimal deterministic work-sharing: run an index-addressed job list
 * across a persistent pool of std::threads. Work items must be
 * independent and write only to their own result slots; the helper
 * guarantees every index runs exactly once, so a run's outputs are
 * identical for any thread count (the properties the experiment
 * engine's sharded sweeps rely on).
 *
 * The pool is created on first use and its threads persist across
 * parallelFor calls, so sweep cells no longer pay a thread-spawn per
 * batch (the engine issues one batch per baseline phase plus one per
 * grid). Workers claim contiguous index chunks from a shared atomic
 * cursor; chunking only changes which worker runs an index, never
 * whether it runs, so the exactly-once contract is preserved.
 */
#ifndef SVARD_COMMON_PARALLEL_H
#define SVARD_COMMON_PARALLEL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace svard {

/** Threads to use for `0 = auto` requests. */
inline unsigned
resolveThreadCount(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

namespace detail {

/** True on threads owned by the pool (nested parallelFor calls run
 *  inline rather than deadlocking on the pool's own workers). */
inline bool &
inPoolWorker()
{
    thread_local bool flag = false;
    return flag;
}

/**
 * Persistent chunk-claiming worker pool behind parallelFor. One job
 * runs at a time (parallelFor is a blocking call); the calling thread
 * participates, so a pool of N threads serves jobs asking for up to
 * N+1 workers. The pool grows on demand when a caller requests more
 * workers than have ever been needed before.
 */
class ParallelPool
{
  public:
    static ParallelPool &
    instance()
    {
        static ParallelPool pool;
        return pool;
    }

    ParallelPool(const ParallelPool &) = delete;
    ParallelPool &operator=(const ParallelPool &) = delete;

    void
    run(size_t n, unsigned workers,
        const std::function<void(size_t)> &fn)
    {
        // One job at a time: concurrent parallelFor calls from
        // different caller threads serialize instead of racing on
        // the shared job slot.
        MutexLock run_lock(runMu_);
        size_t chunk = n / (static_cast<size_t>(workers) * 4);
        if (chunk == 0)
            chunk = 1;
        UniqueLock lock(mu_);
        // Grow to the requested width (caller participates too).
        while (threads_.size() + 1 < workers)
            spawnLocked();
        fn_ = &fn;
        n_ = n;
        chunk_ = chunk;
        next_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        const unsigned participants = static_cast<unsigned>(
            std::min<size_t>(workers - 1, threads_.size()));
        tickets_ = participants;
        active_ = participants;
        ++jobId_;
        lock.unlock();
        cv_.notify_all();

        // The caller is a worker too; flag it so a nested parallelFor
        // from inside fn runs inline instead of re-entering run() and
        // self-deadlocking on runMu_.
        const bool was_worker = inPoolWorker();
        inPoolWorker() = true;
        workLoop();
        inPoolWorker() = was_worker;

        lock.lock();
        while (active_ != 0)
            doneCv_.wait(lock);
        fn_ = nullptr;
        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            lock.unlock();
            std::rethrow_exception(e);
        }
    }

  private:
    ParallelPool() = default;

    ~ParallelPool()
    {
        {
            MutexLock lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    void
    spawnLocked() SVARD_REQUIRES(mu_)
    {
        const uint64_t seen = jobId_;
        threads_.emplace_back([this, seen] { threadMain(seen); });
    }

    void
    threadMain(uint64_t seen)
    {
        inPoolWorker() = true;
        UniqueLock lock(mu_);
        for (;;) {
            while (!stop_ && jobId_ == seen)
                cv_.wait(lock);
            if (stop_)
                return;
            seen = jobId_;
            if (tickets_ == 0)
                continue; // job fully staffed; wait for the next
            --tickets_;
            lock.unlock();
            workLoop();
            lock.lock();
            if (--active_ == 0)
                doneCv_.notify_one();
        }
    }

    void
    workLoop()
    {
        const size_t n = n_;
        const size_t chunk = chunk_;
        for (size_t start =
                 next_.fetch_add(chunk, std::memory_order_relaxed);
             start < n;
             start = next_.fetch_add(chunk,
                                     std::memory_order_relaxed)) {
            const size_t end = std::min(n, start + chunk);
            for (size_t i = start; i < end; ++i) {
                try {
                    (*fn_)(i);
                } catch (...) {
                    MutexLock lock(mu_);
                    if (!error_)
                        error_ = std::current_exception();
                }
            }
        }
    }

    Mutex runMu_; ///< serializes whole jobs
    Mutex mu_;
    CondVar cv_;     ///< job-start signal
    CondVar doneCv_; ///< participants-finished signal
    /** Grown under mu_ (spawnLocked); the destructor's join loop runs
     *  un-locked, which is safe because no other thread can still be
     *  running (ctors/dtors are exempt from the analysis). */
    std::vector<std::thread> threads_ SVARD_GUARDED_BY(mu_);
    bool stop_ SVARD_GUARDED_BY(mu_) = false;
    uint64_t jobId_ SVARD_GUARDED_BY(mu_) = 0;
    /** Pool participants still to claim the job. */
    unsigned tickets_ SVARD_GUARDED_BY(mu_) = 0;
    /** Pool participants inside the job. */
    unsigned active_ SVARD_GUARDED_BY(mu_) = 0;

    // Current job. Written under mu_ before the cv_ handshake and
    // read lock-free by workers afterwards: the waking worker's mu_
    // acquisition inside cv_.wait orders those writes before its
    // reads, and run() only rewrites the slots after doneCv_ reports
    // every reader finished — so the fields stay un-annotated.
    const std::function<void(size_t)> *fn_ = nullptr;
    size_t n_ = 0;
    size_t chunk_ = 1;
    std::atomic<size_t> next_{0};
    std::exception_ptr error_ SVARD_GUARDED_BY(mu_);
};

} // namespace detail

/**
 * Invoke `fn(i)` once for every i in [0, n), sharded over `threads`
 * workers (0 = hardware concurrency) from the persistent pool. With
 * threads == 1 the calls run inline in index order — handy for
 * debugging and for determinism comparisons against sharded runs.
 * A worker exception is rethrown on the calling thread after every
 * index has been claimed (remaining indices still run exactly once).
 */
inline void
parallelFor(size_t n, unsigned threads,
            const std::function<void(size_t)> &fn)
{
    const unsigned workers = static_cast<unsigned>(
        std::min<size_t>(resolveThreadCount(threads), n));
    if (workers <= 1 || detail::inPoolWorker()) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    detail::ParallelPool::instance().run(n, workers, fn);
}

} // namespace svard

#endif // SVARD_COMMON_PARALLEL_H
