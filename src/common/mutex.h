/**
 * @file
 * Annotated lock primitives: thin wrappers over std::mutex /
 * std::condition_variable that clang's thread-safety analysis can see
 * (common/thread_annotations.h). libstdc++ ships std::mutex without
 * capability attributes, so locking through it is invisible to the
 * analysis; these wrappers delegate 1:1 (same codegen after inlining)
 * while carrying the attributes that let `-Wthread-safety` prove each
 * SVARD_GUARDED_BY contract at compile time.
 *
 * Usage mirrors the std types:
 *
 *   Mutex mu_;
 *   int value_ SVARD_GUARDED_BY(mu_);
 *   { MutexLock lock(mu_); ++value_; }          // lock_guard
 *   { UniqueLock lock(mu_); cv_.wait(lock); }   // unique_lock + cv
 *
 * CondVar::wait unlocks and relocks internally; the analysis treats
 * the capability as held across the wait, which matches the caller's
 * entry/exit contract (guarded state must be re-checked after waking
 * regardless — use a `while (!pred) cv.wait(lock);` loop so the
 * predicate reads are visibly under the lock).
 */
#ifndef SVARD_COMMON_MUTEX_H
#define SVARD_COMMON_MUTEX_H

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace svard {

class CondVar;

/** Annotated std::mutex. */
class SVARD_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() SVARD_ACQUIRE() { mu_.lock(); }
    void unlock() SVARD_RELEASE() { mu_.unlock(); }
    bool try_lock() SVARD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class UniqueLock;
    std::mutex mu_;
};

/** Annotated std::lock_guard: locks for the enclosing scope. */
class SVARD_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) SVARD_ACQUIRE(mu)
        : mu_(mu)
    {
        mu_.lock();
    }

    ~MutexLock() SVARD_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Annotated std::unique_lock: scoped like MutexLock but relockable
 * (the analysis tracks the held/released state through the member
 * lock()/unlock() calls) and usable with CondVar::wait.
 */
class SVARD_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) SVARD_ACQUIRE(mu)
        : lk_(mu.mu_)
    {
    }

    /** Unlocks if currently held (std::unique_lock semantics). */
    ~UniqueLock() SVARD_RELEASE() {}

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void lock() SVARD_ACQUIRE() { lk_.lock(); }
    void unlock() SVARD_RELEASE() { lk_.unlock(); }

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/**
 * Condition variable over UniqueLock. Only the predicate-less wait is
 * offered: spelling the loop `while (!pred) cv.wait(lock);` keeps the
 * predicate's guarded reads inside the annotated caller, where the
 * analysis can check them (a wait(lock, pred) lambda would be analyzed
 * as a lockless function and defeat the point).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release `lk`, sleep, and reacquire before return. */
    void wait(UniqueLock &lk) { cv_.wait(lk.lk_); }

    /** Timed wait; like wait() but wakes at `deadline` at the latest. */
    template <class ClockT, class Dur>
    std::cv_status
    wait_until(UniqueLock &lk,
               const std::chrono::time_point<ClockT, Dur> &deadline)
    {
        return cv_.wait_until(lk.lk_, deadline);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace svard

#endif // SVARD_COMMON_MUTEX_H
