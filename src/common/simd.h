/**
 * @file
 * Data-parallel batch kernels for the characterization and replay hot
 * paths, behind **runtime CPU dispatch**: one Release binary carries
 * an AVX2 implementation (x86-64), a NEON implementation (aarch64),
 * and a portable scalar fallback, and picks the best one the host
 * supports at startup. Results are **bit-identical** across
 * implementations — every kernel is pure integer math or exact
 * double min/max, so the dense-oracle tests in tests/test_simd.cc can
 * (and do) demand equality, not tolerance.
 *
 * Kernels and their call sites:
 *  - xorPopcountBase / xorPopcount: the RowData mismatch kernel.
 *    `mismatchedBits()` reduces to "sum popcount(word ^ base)" over
 *    the dense value array of the row's word-delta table
 *    (dram/rowdata.h), which vectorizes to a whole-row BER count with
 *    no per-word probes.
 *  - hashBatch: FlatTable's splitmix64 slot hash over a batch of
 *    keys. FlatTable::refOrInsertBatch/findBatch (common/flat_table.h)
 *    hash all keys in one vector pass and prefetch the slots before
 *    the scalar probe walk — the structure-of-arrays batch-probe used
 *    by Hydra's group-promotion counter seeding.
 *  - minNeighborsBatch: out[i] = min(in[i-1], in[i+1]) with clamped
 *    edges — the aggressor-budget fill over a run of victim
 *    thresholds (core::ThresholdProvider::aggressorBudgetBatchMemo).
 *  - hashSeedTailBatch: hashSeed({salt, i, tail}) for a lane of i —
 *    BlockHammer's counting-Bloom-filter index fan-out, all hash
 *    functions of one key in a single vector pass.
 *
 * Dispatch control:
 *  - Build time: configure with -DSVARD_SIMD=OFF to compile the
 *    scalar path only (the CMake option defines SVARD_SIMD_OFF).
 *  - Run time: SVARD_SIMD_DISPATCH=scalar|avx2|neon forces an
 *    implementation; forcing one the host (or build) lacks aborts
 *    loudly rather than silently falling back, so a CI job forcing
 *    "avx2" cannot quietly measure scalar. Tests force and restore
 *    implementations through setImpl().
 */
#ifndef SVARD_COMMON_SIMD_H
#define SVARD_COMMON_SIMD_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace svard::simd {

enum class Impl : uint8_t
{
    Scalar = 0,
    Avx2 = 1,
    Neon = 2,
};

/** Lower-case display/env name ("scalar", "avx2", "neon"). */
const char *implName(Impl impl);

/** Implementation the dispatched kernels currently run on. */
Impl activeImpl();

/** Implementations this binary + host can run, best first. */
std::vector<Impl> availableImpls();

/**
 * Force the active implementation (tests, forced-dispatch CI runs).
 * Returns false — and changes nothing — when the implementation is
 * not available in this binary on this host.
 */
bool setImpl(Impl impl);

// ------------------------------------------------------------------
// Kernels (runtime dispatched; n == 0 is valid for all of them)
// ------------------------------------------------------------------

/** Sum of popcount(words[i] ^ base) over a dense uint64 array. */
uint64_t xorPopcountBase(const uint64_t *words, size_t n,
                         uint64_t base);

/** Sum of popcount(a[i] ^ b[i]) over two dense uint64 arrays. */
uint64_t xorPopcount(const uint64_t *a, const uint64_t *b, size_t n);

/**
 * FlatTable's slot hash (splitmix64 finalizer) over a batch of keys:
 * out[i] = hash(keys[i]). Bit-identical to hashing one key at a time.
 */
void hashBatch(const uint64_t *keys, uint64_t *out, size_t n);

/**
 * Aggressor-budget fold over a run of victim thresholds:
 * out[i] = min(left_i, right_i) where left_i is thr[i-1] (edge_lo for
 * i == 0) and right_i is thr[i+1] (edge_hi for i == n-1). `thr` and
 * `out` must not alias. Thresholds are positive and finite, so the
 * vector min is exactly std::min.
 */
void minNeighborsBatch(const double *thr, size_t n, double edge_lo,
                       double edge_hi, double *out);

/**
 * hashSeed({salt, i, tail}) for i in [0, n): the k hash-function
 * indices a counting Bloom filter derives from one key, computed as
 * one lane-parallel pass. Bit-identical to hashSeed() per index.
 */
void hashSeedTailBatch(uint64_t salt, uint64_t tail, uint64_t *out,
                       size_t n);

} // namespace svard::simd

#endif // SVARD_COMMON_SIMD_H
