/**
 * @file
 * Structure-of-arrays open-addressing map from small uint32 keys to
 * uint64 values, built for one consumer: RowData's word-delta store
 * (dram/rowdata.h). Unlike the general FlatTable, the value array is
 * kept *dense and SIMD-clean*: keys and values live in two separate
 * contiguous arrays, and every dead slot (empty or tombstoned) is
 * guaranteed to hold value 0.
 *
 * That invariant is the whole point. RowData::mismatchedBits() needs
 * sum(popcount(base ^ delta)) over the live deltas; with dead slots
 * pinned to 0 the kernel can run simd::xorPopcountBase over the ENTIRE
 * value array — no per-slot liveness test, no gather — because a dead
 * slot contributes exactly popcount(base ^ 0) == popcount(base), which
 * the caller subtracts back out as capacity() * popcount(base). The
 * value array is the vector lane layout; liveness is an arithmetic
 * identity instead of a branch.
 *
 * Key space: [0, 0xFFFFFFFD]. The top two uint32 values are the
 * empty/tombstone sentinels — RowData's keys are word indices within a
 * row (a few thousand at most), nowhere near the reserved range.
 *
 * clear() must re-zero the values to keep the invariant, unlike
 * FlatTable's O(1) generation bump: small tables memset (cheaper than
 * carrying a generation check in every probe), tables that grew past
 * a burst release their arrays and restart small, and a pristine
 * table clears for free — so a scratch table cleared once per
 * realize() costs what it actually staged, not its high-water mark.
 */
#ifndef SVARD_COMMON_WORD_TABLE_H
#define SVARD_COMMON_WORD_TABLE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace svard {

class WordTable
{
  public:
    explicit WordTable(size_t initial_capacity = 16)
    {
        size_t cap = 8;
        while (cap < initial_capacity)
            cap <<= 1;
        initialCap_ = cap;
        // Arrays are allocated on first insert: empty tables are free,
        // which matters because every RowData embeds one.
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return keys_.size(); }

    /**
     * The dense value array (length capacity()), for whole-array
     * vector kernels. Dead slots hold 0 by invariant. nullptr when
     * the table has never been inserted into (capacity() == 0).
     */
    const uint64_t *valsData() const { return vals_.data(); }

    /**
     * Reference to the value of `key`, inserting 0 first if absent.
     * Invalidated by the next refOrInsert/clear. A caller that zeroes
     * the value should erase() the key — a live zero-valued slot is
     * harmless to the kernels but wastes a probe.
     */
    uint64_t &
    refOrInsert(uint32_t key)
    {
        if (keys_.empty())
            allocate(initialCap_);
        // Grow on the *used* count (live + tombstones): tombstones
        // lengthen probe chains just like live entries do.
        if ((used_ + 1) * 10 >= keys_.size() * 7)
            rehash();
        const size_t mask = keys_.size() - 1;
        size_t i = hashOf(key) & mask;
        size_t insert_at = SIZE_MAX;
        for (;;) {
            const uint32_t k = keys_[i];
            if (k == key)
                return vals_[i];
            if (k == kEmpty) {
                // Absent. Reuse the first tombstone passed on the way
                // (keeps chains short); a fresh slot consumes `used_`.
                if (insert_at == SIZE_MAX) {
                    insert_at = i;
                    ++used_;
                }
                break;
            }
            if (k == kTomb && insert_at == SIZE_MAX)
                insert_at = i;
            i = (i + 1) & mask;
        }
        keys_[insert_at] = key;
        vals_[insert_at] = 0; // dead slots are 0 already; keep it explicit
        ++size_;
        return vals_[insert_at];
    }

    uint64_t *
    find(uint32_t key)
    {
        if (keys_.empty())
            return nullptr;
        const size_t mask = keys_.size() - 1;
        size_t i = hashOf(key) & mask;
        for (;;) {
            const uint32_t k = keys_[i];
            if (k == key)
                return &vals_[i];
            if (k == kEmpty)
                return nullptr;
            i = (i + 1) & mask;
        }
    }

    const uint64_t *
    find(uint32_t key) const
    {
        return const_cast<WordTable *>(this)->find(key);
    }

    bool contains(uint32_t key) const { return find(key) != nullptr; }

    /**
     * Remove `key` (tombstoned; reclaimed at the next rehash). The
     * value slot is re-zeroed — this is what upholds the dead-slots-
     * are-zero invariant the vector kernels rely on.
     */
    bool
    erase(uint32_t key)
    {
        if (keys_.empty())
            return false;
        const size_t mask = keys_.size() - 1;
        size_t i = hashOf(key) & mask;
        for (;;) {
            const uint32_t k = keys_[i];
            if (k == key) {
                keys_[i] = kTomb;
                vals_[i] = 0;
                --size_;
                return true;
            }
            if (k == kEmpty)
                return false;
            i = (i + 1) & mask;
        }
    }

    /**
     * Visit every live entry as fn(key, value). Order is the slot
     * order — deterministic for a given insertion/erase history, but
     * not sorted and not stable across rehashes. The callback must
     * not insert into or clear the table.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < keys_.size(); ++i)
            if (keys_[i] < kTomb)
                fn(keys_[i], vals_[i]);
    }

    /**
     * Drop every entry. Free when nothing was touched since the last
     * clear; otherwise O(capacity), because values must return to
     * zero. A table that grew past kShrinkCap releases its arrays and
     * restarts at the initial capacity: a reused scratch table
     * (DramDevice::flipScratch_, RowData under setFill churn) must
     * not keep paying for the largest burst it ever held on every
     * later clear — that memset tax once cost the charz pipeline 25%.
     */
    void
    clear()
    {
        if (used_ == 0)
            return; // pristine: all keys empty, all values zero
        if (keys_.size() > kShrinkCap) {
            // Release; reallocated lazily at initialCap_ on the next
            // insert. Regrowth is amortized against the insertions
            // that need it, unlike a flat per-clear memset.
            keys_ = {};
            vals_ = {};
        } else {
            std::memset(keys_.data(), 0xFF,
                        keys_.size() * sizeof(uint32_t));
            std::memset(vals_.data(), 0,
                        vals_.size() * sizeof(uint64_t));
        }
        size_ = 0;
        used_ = 0;
    }

  private:
    static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
    static constexpr uint32_t kTomb = 0xFFFFFFFEu;
    /** Capacity above which clear() releases instead of memsets. */
    static constexpr size_t kShrinkCap = 256;

    static size_t
    hashOf(uint32_t key)
    {
        // splitmix64 finalizer (FlatTable's hash): full-avalanche, so
        // the sequential word indices of a row spread over the table.
        uint64_t z = uint64_t(key) + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<size_t>(z ^ (z >> 31));
    }

    void
    allocate(size_t cap)
    {
        keys_.assign(cap, kEmpty);
        vals_.assign(cap, 0);
    }

    void
    rehash()
    {
        // Double only when genuinely full of live entries; a table
        // dominated by tombstones rehashes in place.
        const size_t cap = keys_.size();
        const size_t new_cap = (size_ * 10 >= cap * 4) ? cap * 2 : cap;
        std::vector<uint32_t> old_keys;
        std::vector<uint64_t> old_vals;
        old_keys.swap(keys_);
        old_vals.swap(vals_);
        allocate(new_cap);
        size_ = 0;
        used_ = 0;
        const size_t mask = new_cap - 1;
        for (size_t s = 0; s < old_keys.size(); ++s) {
            if (old_keys[s] >= kTomb)
                continue;
            size_t i = hashOf(old_keys[s]) & mask;
            while (keys_[i] != kEmpty)
                i = (i + 1) & mask;
            keys_[i] = old_keys[s];
            vals_[i] = old_vals[s];
            ++size_;
            ++used_;
        }
    }

    std::vector<uint32_t> keys_;
    std::vector<uint64_t> vals_;
    size_t initialCap_ = 16;
    size_t size_ = 0; ///< live entries
    size_t used_ = 0; ///< live + tombstoned slots
};

} // namespace svard

#endif // SVARD_COMMON_WORD_TABLE_H
