/**
 * @file
 * Descriptive statistics used throughout the characterization analyses:
 * mean/stdev/CV, quartiles and box-and-whisker summaries (Fig. 3/7),
 * and fixed-bin histograms (Fig. 5).
 */
#ifndef SVARD_COMMON_STATS_H
#define SVARD_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace svard {

/**
 * Box-and-whiskers summary exactly as the paper defines it (footnote 10):
 * the box spans the first to third quartile, whiskers mark the central
 * 1.5*IQR range clamped to observed data, and the mean is reported
 * separately (the white circle in the paper's plots).
 */
struct BoxStats
{
    double min = 0.0;         ///< smallest observation
    double whiskerLow = 0.0;  ///< low whisker (>= q1 - 1.5*IQR)
    double q1 = 0.0;          ///< first quartile
    double median = 0.0;      ///< second quartile
    double q3 = 0.0;          ///< third quartile
    double whiskerHigh = 0.0; ///< high whisker (<= q3 + 1.5*IQR)
    double max = 0.0;         ///< largest observation
    double mean = 0.0;        ///< arithmetic mean
    size_t n = 0;             ///< number of observations
};

/** Arithmetic mean; 0 for an empty range. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 if fewer than 2 points. */
double stdev(const std::vector<double> &xs);

/**
 * Coefficient of variation = stdev/mean (paper footnote 11), as a
 * fraction (multiply by 100 for the percentages the paper annotates).
 */
double coefficientOfVariation(const std::vector<double> &xs);

/** p-th quantile (0 <= p <= 1) with linear interpolation. */
double quantile(std::vector<double> xs, double p);

/** Full box-and-whiskers summary of a sample. */
BoxStats boxStats(std::vector<double> xs);

/** Minimum of a sample; 0 for empty. */
double minOf(const std::vector<double> &xs);

/** Maximum of a sample; 0 for empty. */
double maxOf(const std::vector<double> &xs);

/**
 * Histogram over caller-specified ordered bin labels, e.g. the 14 tested
 * hammer counts of Alg. 1. Values are counted at the *exact* label
 * (categorical, as in Fig. 5), not by range.
 *
 * Counts live in a flat vector indexed by label position (this sits in
 * charz inner loops); label -> position lookups binary-search a small
 * sorted index instead of chasing red-black tree nodes.
 */
class CategoricalHistogram
{
  public:
    explicit CategoricalHistogram(std::vector<int64_t> labels);

    /** Count one observation of the given label; unknown labels panic. */
    void add(int64_t label);

    /** Number of observations at a label (0 for unknown labels). */
    uint64_t count(int64_t label) const;

    /** Fraction of all observations at a label. */
    double fraction(int64_t label) const;

    /** Total observations. */
    uint64_t total() const { return total_; }

    const std::vector<int64_t> &labels() const { return labels_; }

  private:
    /** Position of a label in counts_, or SIZE_MAX when unknown. */
    size_t position(int64_t label) const;

    std::vector<int64_t> labels_;
    /** (label, position) pairs sorted by label for binary search. */
    std::vector<std::pair<int64_t, size_t>> index_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/** Pearson correlation coefficient; 0 if either side is constant. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

} // namespace svard

#endif // SVARD_COMMON_STATS_H
