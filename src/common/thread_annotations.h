/**
 * @file
 * Clang thread-safety-analysis macros (SVARD_ prefixed so they can
 * never collide with a vendored header's spelling). On clang the
 * macros expand to the `thread_safety` attributes and a
 * `-Wthread-safety` build statically proves every annotated lock
 * protocol; on every other compiler they expand to nothing, so gcc
 * builds are unaffected.
 *
 * The annotations only bite on types that the analysis recognizes as
 * capabilities. libstdc++'s std::mutex is not annotated, so the repo's
 * lock-bearing types hold locks through the annotated wrappers in
 * common/mutex.h (svard::Mutex / MutexLock / UniqueLock / CondVar)
 * rather than std::mutex directly.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */
#ifndef SVARD_COMMON_THREAD_ANNOTATIONS_H
#define SVARD_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__)
#define SVARD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SVARD_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define SVARD_CAPABILITY(x) SVARD_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime acquires/releases a capability. */
#define SVARD_SCOPED_CAPABILITY SVARD_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define SVARD_GUARDED_BY(x) SVARD_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by `x`. */
#define SVARD_PT_GUARDED_BY(x) SVARD_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function requires the listed capabilities held on entry (and exit). */
#define SVARD_REQUIRES(...) \
    SVARD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on exit). */
#define SVARD_ACQUIRE(...) \
    SVARD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the listed capabilities (must be held on entry). */
#define SVARD_RELEASE(...) \
    SVARD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function attempts acquisition; `b` is the success return value. */
#define SVARD_TRY_ACQUIRE(...) \
    SVARD_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be called while holding the listed capabilities. */
#define SVARD_EXCLUDES(...) \
    SVARD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function returns a reference to the capability guarding its value. */
#define SVARD_RETURN_CAPABILITY(x) \
    SVARD_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable the analysis for one function. Use only with
 *  a comment explaining which invariant makes the access safe. */
#define SVARD_NO_THREAD_SAFETY_ANALYSIS \
    SVARD_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // SVARD_COMMON_THREAD_ANNOTATIONS_H
