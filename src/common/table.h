/**
 * @file
 * Lightweight text/CSV table emitter used by the bench harnesses to
 * print the rows/series each paper table and figure reports.
 */
#ifndef SVARD_COMMON_TABLE_H
#define SVARD_COMMON_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace svard {

/**
 * A named table of string cells. Benches fill one Table per figure
 * series and print it aligned to stdout (and optionally as CSV).
 */
class Table
{
  public:
    Table(std::string title, std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Print the table aligned to the given stream (default stdout). */
    void print(std::FILE *out = stdout) const;

    /** Write the table as CSV to the given path; returns success. */
    bool writeCsv(const std::string &path) const;

    const std::string &title() const { return title_; }
    size_t rows() const { return rows_.size(); }

    /** Format helper: fixed-precision double. */
    static std::string fmt(double v, int precision = 4);

    /** Format helper: integer. */
    static std::string fmt(int64_t v);

    /** Format helper: hammer counts as the paper prints them (K = 2^10). */
    static std::string fmtHc(int64_t hc);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Read an environment knob with a default (bench scaling). */
int64_t envInt(const char *name, int64_t fallback);

/** True when SVARD_FULL=1 requests paper-scale experiment sweeps. */
bool fullScale();

} // namespace svard

#endif // SVARD_COMMON_TABLE_H
