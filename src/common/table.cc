#include "common/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>

#include "common/log.h"

namespace svard {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    SVARD_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    SVARD_ASSERT(cells.size() == headers_.size(),
                 "row width mismatch in table " + title_);
    rows_.push_back(std::move(cells));
}

void
Table::print(std::FILE *out) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::fprintf(out, "== %s ==\n", title_.c_str());
    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]),
                         row[c].c_str(),
                         c + 1 == row.size() ? "\n" : "  ");
    };
    print_row(headers_);
    std::string rule;
    for (size_t c = 0; c < widths.size(); ++c) {
        rule.append(widths[c], '-');
        if (c + 1 != widths.size())
            rule.append(2, '-');
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto &row : rows_)
        print_row(row);
}

bool
Table::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    auto write_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c)
            std::fprintf(f, "%s%s", row[c].c_str(),
                         c + 1 == row.size() ? "\n" : ",");
    };
    write_row(headers_);
    for (const auto &row : rows_)
        write_row(row);
    std::fclose(f);
    return true;
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmt(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return buf;
}

std::string
Table::fmtHc(int64_t hc)
{
    // The paper prints hammer counts with K = 2^10 (footnote 7).
    if (hc % 1024 == 0 && hc != 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRId64 "K", hc / 1024);
        return buf;
    }
    return fmt(hc);
}

int64_t
envInt(const char *name, int64_t fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    return std::strtoll(raw, nullptr, 10);
}

bool
fullScale()
{
    return envInt("SVARD_FULL", 0) != 0;
}

} // namespace svard
