/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (fault-model synthesis, PARA
 * coin flips, workload generation) flows through Rng so that every
 * experiment is exactly reproducible from a seed. The generator is
 * xoshiro256** seeded via splitmix64, which gives high-quality streams
 * that are cheap to fork per (module, bank, row).
 */
#ifndef SVARD_COMMON_RNG_H
#define SVARD_COMMON_RNG_H

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace svard {

/** splitmix64 step; used for seeding and cheap hashing of coordinates. */
inline uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Hash an arbitrary list of 64-bit coordinates into one seed. */
inline uint64_t
hashSeed(std::initializer_list<uint64_t> parts)
{
    uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (uint64_t p : parts) {
        state ^= p + 0x9e3779b97f4a7c15ULL + (state << 6) + (state >> 2);
        state = splitmix64(state);
    }
    return state;
}

/**
 * Incremental variant of hashSeed for heterogeneous data: fold any
 * sequence of integers, doubles, and strings into one 64-bit value.
 * The experiment engine fingerprints a sweep cell's *resolved* inputs
 * (geometry, defense name, threshold, provider, workload, parameter
 * bag) this way, so the result cache can tell an unchanged cell from
 * an edited one regardless of its position in the grid.
 */
class HashStream
{
  public:
    explicit HashStream(uint64_t salt = 0x9e3779b97f4a7c15ULL)
        : state_(salt)
    {}

    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    HashStream &
    mix(T v)
    {
        return mixWord(static_cast<uint64_t>(v));
    }

    /** Doubles are folded by bit pattern: -0.0 != +0.0, exact. */
    HashStream &
    mix(double v)
    {
        uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        return mixWord(bits);
    }

    /** Length-prefixed, so {"ab","c"} and {"a","bc"} differ. */
    HashStream &
    mix(const std::string &s)
    {
        mixWord(s.size());
        uint64_t word = 0;
        int filled = 0;
        for (unsigned char c : s) {
            word = (word << 8) | c;
            if (++filled == 8) {
                mixWord(word);
                word = 0;
                filled = 0;
            }
        }
        if (filled)
            mixWord(word);
        return *this;
    }

    uint64_t value() const { return state_; }

  private:
    HashStream &
    mixWord(uint64_t v)
    {
        state_ ^= v + 0x9e3779b97f4a7c15ULL + (state_ << 6) +
                  (state_ >> 2);
        state_ = splitmix64(state_);
        return *this;
    }

    uint64_t state_;
};

/**
 * xoshiro256** PRNG. Small, fast, and forkable: constructing a new Rng
 * from hashSeed({...}) yields an independent stream per coordinate.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Uniform 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for the bounds used in this library.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(hi - lo + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Box-Muller (no cached spare; keeps state simple). */
    double
    normal()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    }

    /** Normal with given mean and standard deviation. */
    double
    normal(double mean, double stdev)
    {
        return mean + stdev * normal();
    }

    /** Log-normal: exp(N(mu, sigma)). */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(normal(mu, sigma));
    }

    /**
     * Binomial(n, p) sample. Exact summation for small n, normal
     * approximation for large n (fine for BER bit-count draws where
     * n is tens of thousands).
     */
    uint64_t
    binomial(uint64_t n, double p)
    {
        if (p <= 0.0 || n == 0)
            return 0;
        if (p >= 1.0)
            return n;
        const double mean = n * p;
        if (n <= 64) {
            uint64_t k = 0;
            for (uint64_t i = 0; i < n; ++i)
                k += chance(p) ? 1 : 0;
            return k;
        }
        const double sd = std::sqrt(n * p * (1.0 - p));
        double draw = std::round(normal(mean, sd));
        if (draw < 0.0)
            draw = 0.0;
        if (draw > static_cast<double>(n))
            draw = static_cast<double>(n);
        return static_cast<uint64_t>(draw);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state_;
};

} // namespace svard

#endif // SVARD_COMMON_RNG_H
