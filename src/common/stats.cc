#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace svard {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stdev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
coefficientOfVariation(const std::vector<double> &xs)
{
    const double m = mean(xs);
    if (m == 0.0)
        return 0.0;
    return stdev(xs) / m;
}

double
quantile(std::vector<double> xs, double p)
{
    SVARD_ASSERT(!xs.empty(), "quantile of empty sample");
    SVARD_ASSERT(p >= 0.0 && p <= 1.0, "quantile p out of range");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double pos = p * static_cast<double>(xs.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

BoxStats
boxStats(std::vector<double> xs)
{
    BoxStats out;
    if (xs.empty())
        return out;
    std::sort(xs.begin(), xs.end());
    out.n = xs.size();
    out.min = xs.front();
    out.max = xs.back();
    out.mean = mean(xs);
    out.q1 = quantile(xs, 0.25);
    out.median = quantile(xs, 0.50);
    out.q3 = quantile(xs, 0.75);
    const double iqr = out.q3 - out.q1;
    const double lo_limit = out.q1 - 1.5 * iqr;
    const double hi_limit = out.q3 + 1.5 * iqr;
    // Whiskers sit on the most extreme observations inside the 1.5*IQR
    // fences, matching the paper's plots.
    out.whiskerLow = out.min;
    for (double x : xs) {
        if (x >= lo_limit) {
            out.whiskerLow = x;
            break;
        }
    }
    out.whiskerHigh = out.max;
    for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
        if (*it <= hi_limit) {
            out.whiskerHigh = *it;
            break;
        }
    }
    return out;
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

CategoricalHistogram::CategoricalHistogram(std::vector<int64_t> labels)
    : labels_(std::move(labels)), counts_(labels_.size(), 0)
{
    index_.reserve(labels_.size());
    for (size_t i = 0; i < labels_.size(); ++i)
        index_.emplace_back(labels_[i], i);
    std::stable_sort(index_.begin(), index_.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    // Duplicate labels collapse onto their first position, matching the
    // previous map-backed behaviour.
    index_.erase(std::unique(index_.begin(), index_.end(),
                             [](const auto &a, const auto &b) {
                                 return a.first == b.first;
                             }),
                 index_.end());
}

size_t
CategoricalHistogram::position(int64_t label) const
{
    auto it = std::lower_bound(index_.begin(), index_.end(), label,
                               [](const auto &e, int64_t l) {
                                   return e.first < l;
                               });
    if (it == index_.end() || it->first != label)
        return SIZE_MAX;
    return it->second;
}

void
CategoricalHistogram::add(int64_t label)
{
    const size_t pos = position(label);
    SVARD_ASSERT(pos != SIZE_MAX, "unknown histogram label");
    ++counts_[pos];
    ++total_;
}

uint64_t
CategoricalHistogram::count(int64_t label) const
{
    const size_t pos = position(label);
    return pos == SIZE_MAX ? 0 : counts_[pos];
}

double
CategoricalHistogram::fraction(int64_t label) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(label)) / static_cast<double>(total_);
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    SVARD_ASSERT(xs.size() == ys.size(), "pearson size mismatch");
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace svard
