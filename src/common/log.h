/**
 * @file
 * Status/error reporting helpers (gem5-style fatal/panic/warn/inform).
 *
 * panic(): an internal invariant was violated (a bug in this library);
 * aborts so a debugger/core dump can capture state.
 * fatal(): the caller supplied an impossible configuration; exits(1).
 * warn()/inform()/debugLog(): non-fatal status lines, all on stderr so
 * machine-read CSV/JSON on stdout is never corrupted by diagnostics.
 *
 * Severity filtering: SVARD_LOG_LEVEL=error|warn|info|debug (or 0-3)
 * suppresses lines below the chosen level; default is info, so
 * debugLog() is silent unless asked for. panic/fatal always print.
 */
#ifndef SVARD_COMMON_LOG_H
#define SVARD_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace svard {

enum class LogLevel : int
{
    Error = 0, ///< only panic/fatal (which are unconditional anyway)
    Warn = 1,  ///< + warn()
    Info = 2,  ///< + inform()  [default]
    Debug = 3, ///< + debugLog()
};

/** Parse a SVARD_LOG_LEVEL value; unknown strings fall back to Info. */
inline LogLevel
parseLogLevel(const char *s)
{
    if (!s || !*s)
        return LogLevel::Info;
    if (!std::strcmp(s, "error") || !std::strcmp(s, "0"))
        return LogLevel::Error;
    if (!std::strcmp(s, "warn") || !std::strcmp(s, "1"))
        return LogLevel::Warn;
    if (!std::strcmp(s, "info") || !std::strcmp(s, "2"))
        return LogLevel::Info;
    if (!std::strcmp(s, "debug") || !std::strcmp(s, "3"))
        return LogLevel::Debug;
    return LogLevel::Info;
}

namespace detail {

inline LogLevel &
logLevelRef()
{
    static LogLevel level = parseLogLevel(std::getenv("SVARD_LOG_LEVEL"));
    return level;
}

} // namespace detail

/** Current severity threshold (env-initialized, runtime-overridable). */
inline LogLevel
logLevel()
{
    return detail::logLevelRef();
}

/** Override the threshold programmatically (wins over the env var). */
inline void
setLogLevel(LogLevel level)
{
    detail::logLevelRef() = level;
}

/** Print an error location prefix and abort. Use for internal bugs. */
[[noreturn]] inline void
panicAt(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

/** Print an error location prefix and exit(1). Use for user errors. */
[[noreturn]] inline void
fatalAt(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

/** Non-fatal warning on stderr. */
inline void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational message on stderr (stdout is reserved for results). */
inline void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** Verbose diagnostics; silent unless SVARD_LOG_LEVEL=debug. */
inline void
debugLog(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace svard

#define SVARD_PANIC(msg) ::svard::panicAt(__FILE__, __LINE__, (msg))
#define SVARD_FATAL(msg) ::svard::fatalAt(__FILE__, __LINE__, (msg))

/** Assert an internal invariant; active in all build types. */
#define SVARD_ASSERT(cond, msg)                                            \
    do {                                                                   \
        if (!(cond))                                                       \
            SVARD_PANIC(std::string("assertion failed: ") + #cond +        \
                        ": " + (msg));                                     \
    } while (0)

#endif // SVARD_COMMON_LOG_H
