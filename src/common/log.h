/**
 * @file
 * Status/error reporting helpers (gem5-style fatal/panic/warn/inform).
 *
 * panic(): an internal invariant was violated (a bug in this library);
 * aborts so a debugger/core dump can capture state.
 * fatal(): the caller supplied an impossible configuration; exits(1).
 * warn()/inform(): non-fatal status lines on stderr/stdout.
 */
#ifndef SVARD_COMMON_LOG_H
#define SVARD_COMMON_LOG_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace svard {

/** Print an error location prefix and abort. Use for internal bugs. */
[[noreturn]] inline void
panicAt(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s:%d: %s\n", file, line, msg.c_str());
    std::abort();
}

/** Print an error location prefix and exit(1). Use for user errors. */
[[noreturn]] inline void
fatalAt(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s:%d: %s\n", file, line, msg.c_str());
    std::exit(1);
}

/** Non-fatal warning on stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational message on stdout. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace svard

#define SVARD_PANIC(msg) ::svard::panicAt(__FILE__, __LINE__, (msg))
#define SVARD_FATAL(msg) ::svard::fatalAt(__FILE__, __LINE__, (msg))

/** Assert an internal invariant; active in all build types. */
#define SVARD_ASSERT(cond, msg)                                            \
    do {                                                                   \
        if (!(cond))                                                       \
            SVARD_PANIC(std::string("assertion failed: ") + #cond +        \
                        ": " + (msg));                                     \
    } while (0)

#endif // SVARD_COMMON_LOG_H
