/**
 * @file
 * Open-addressing hash table for simulation hot paths. The defenses'
 * per-(bank,row) activation counters used to live in std::unordered_map,
 * which costs a pointer chase per probe and a node allocation per
 * insert — per simulated ACT. FlatTable keeps {key, value} pairs in one
 * contiguous slot array (linear probing), so the common probe is a
 * single cache line, inserts never allocate until the load factor
 * forces a growth, and the per-epoch reset every defense performs at
 * the refresh-window rollover is an O(1) generation bump instead of an
 * O(n) destruction.
 *
 * Semantics match the std::unordered_map usage it replaces: distinct
 * 64-bit keys, value references stable until the next insert/clear,
 * default-constructed values on first touch. Not thread-safe (each
 * sweep cell owns its defense instances end to end).
 *
 * For multi-key walks (Hydra's group-promotion counter seeding), the
 * batch APIs findBatch/assignBatch run the probe as a structure-of-
 * arrays pass: all slot hashes in one simd::hashBatch vector call,
 * home slots prefetched, then the scalar probe walks on warm lines.
 * Results are bit-identical to the equivalent single-key loops.
 */
#ifndef SVARD_COMMON_FLAT_TABLE_H
#define SVARD_COMMON_FLAT_TABLE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.h"

namespace svard {

template <typename V>
class FlatTable
{
  public:
    explicit FlatTable(size_t initial_capacity = 64)
    {
        size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        initialCap_ = cap;
        // The slot array is allocated on first insert: empty tables are
        // free, which matters now that every RowData embeds one.
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return slots_.size(); }

    /** Lifetime rehash count (growths + in-place tombstone purges). */
    uint64_t rehashes() const { return rehashes_; }

    /**
     * Reference to the value of `key`, inserting a default-constructed
     * value first if absent (operator[] of the map it replaces). The
     * reference is invalidated by the next refOrInsert/clear.
     */
    V &
    refOrInsert(uint64_t key)
    {
        return refOrInsertHashed(key, hashOf(key));
    }

    V *
    find(uint64_t key)
    {
        return findHashed(key, hashOf(key));
    }

    const V *
    find(uint64_t key) const
    {
        return const_cast<FlatTable *>(this)->find(key);
    }

    bool contains(uint64_t key) const { return find(key) != nullptr; }

    /**
     * Batch find: out[i] = find(keys[i]), as one structure-of-arrays
     * pass — every slot hash in a single simd::hashBatch call, each
     * home slot prefetched ahead of the scalar probe walks so the
     * probes run on warm cache lines. Results are identical to n
     * single find() calls (same probe sequences).
     */
    void
    findBatch(const uint64_t *keys, size_t n, V **out)
    {
        hashScratch_.resize(n);
        simd::hashBatch(keys, hashScratch_.data(), n);
        prefetchHomes(n);
        for (size_t i = 0; i < n; ++i)
            out[i] = findHashed(
                keys[i], static_cast<size_t>(hashScratch_[i]));
    }

    /**
     * Batch refOrInsert-and-assign: refOrInsert(keys[i]) = value, in
     * key order — Hydra's group-promotion RCT seeding, where a whole
     * counter group materializes at once. Hashes are computed in one
     * vector pass up front (they depend only on the key, so a growth
     * rehash mid-batch does not invalidate them) and home slots are
     * prefetched before the probes. End state is identical to the
     * scalar loop, including growth points.
     */
    void
    assignBatch(const uint64_t *keys, size_t n, const V &value)
    {
        hashScratch_.resize(n);
        simd::hashBatch(keys, hashScratch_.data(), n);
        prefetchHomes(n);
        for (size_t i = 0; i < n; ++i)
            refOrInsertHashed(
                keys[i], static_cast<size_t>(hashScratch_[i])) = value;
    }

    /** Remove `key` (tombstoned; reclaimed at the next rehash). */
    bool
    erase(uint64_t key)
    {
        if (slots_.empty())
            return false;
        const size_t mask = slots_.size() - 1;
        size_t i = hashOf(key) & mask;
        for (;;) {
            Slot &s = slots_[i];
            if (s.gen != gen_)
                return false;
            if (s.state == kFull && s.key == key) {
                s.state = kTomb;
                --size_;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    /**
     * Visit every live entry as fn(key, value). Order is the slot
     * order — deterministic for a given insertion/erase history, but
     * not sorted and not stable across rehashes. The callback must not
     * insert into or clear the table (erasing the visited key through
     * a separate erase() call after the sweep is fine).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots_)
            if (s.gen == gen_ && s.state == kFull)
                fn(s.key, s.value);
    }

    /**
     * Drop every entry in O(1): bump the generation, making all slots
     * stale. This is what defenses call at every refresh-window epoch
     * end, so the reset cost no longer scales with the counter count.
     */
    void
    clear()
    {
        if (++gen_ == 0) {
            // Generation counter wrapped (needs 2^32 clears): reset
            // slot generations so no stale slot aliases as live.
            for (Slot &s : slots_)
                s.gen = 0;
            gen_ = 1;
        }
        size_ = 0;
        used_ = 0;
    }

  private:
    enum : uint8_t
    {
        kFull = 1,
        kTomb = 2,
    };

    struct Slot
    {
        uint64_t key = 0;
        uint32_t gen = 0; ///< slot is stale (free) unless gen matches
        uint8_t state = kFull;
        V value{};
    };

    static size_t
    hashOf(uint64_t key)
    {
        // splitmix64 finalizer: full-avalanche, so sequential
        // (bank<<32|row) keys spread over the table. simd::hashBatch
        // computes exactly this hash lane-parallel for the batch APIs.
        uint64_t z = key + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<size_t>(z ^ (z >> 31));
    }

    V &
    refOrInsertHashed(uint64_t key, size_t hash)
    {
        if (slots_.empty())
            slots_.resize(initialCap_);
        // Grow on the *used* count (live + tombstones): tombstones
        // lengthen probe chains just like live entries do.
        if ((used_ + 1) * 10 >= slots_.size() * 7)
            rehash();
        const size_t mask = slots_.size() - 1;
        size_t i = hash & mask;
        size_t insert_at = SIZE_MAX;
        for (;;) {
            Slot &s = slots_[i];
            if (s.gen != gen_) {
                // Free slot: the key is absent. Reuse the first
                // tombstone passed on the way (keeps chains short).
                if (insert_at == SIZE_MAX) {
                    insert_at = i;
                    ++used_;
                }
                break;
            }
            if (s.state == kFull && s.key == key)
                return s.value;
            if (s.state == kTomb && insert_at == SIZE_MAX)
                insert_at = i;
            i = (i + 1) & mask;
        }
        Slot &s = slots_[insert_at];
        s.key = key;
        s.gen = gen_;
        s.state = kFull;
        s.value = V{};
        ++size_;
        return s.value;
    }

    V *
    findHashed(uint64_t key, size_t hash)
    {
        if (slots_.empty())
            return nullptr;
        const size_t mask = slots_.size() - 1;
        size_t i = hash & mask;
        for (;;) {
            Slot &s = slots_[i];
            if (s.gen != gen_)
                return nullptr;
            if (s.state == kFull && s.key == key)
                return &s.value;
            i = (i + 1) & mask;
        }
    }

    /** Pull the batch's home slots toward cache before probing. */
    void
    prefetchHomes(size_t n)
    {
        if (slots_.empty())
            return;
        const size_t mask = slots_.size() - 1;
        for (size_t i = 0; i < n; ++i) {
#if defined(__GNUC__)
            __builtin_prefetch(
                &slots_[static_cast<size_t>(hashScratch_[i]) & mask]);
#endif
        }
    }

    void
    rehash()
    {
        // Double only when genuinely full of live entries; a table
        // dominated by tombstones rehashes in place.
        const size_t cap = slots_.size();
        const size_t new_cap = (size_ * 10 >= cap * 4) ? cap * 2 : cap;
        ++rehashes_;
        std::vector<Slot> old;
        old.swap(slots_);
        slots_.resize(new_cap);
        const uint32_t old_gen = gen_;
        gen_ = 1;
        size_ = 0;
        used_ = 0;
        for (const Slot &s : old)
            if (s.gen == old_gen && s.state == kFull) {
                ++used_;
                refOrInsertFresh(s.key) = s.value;
            }
    }

    /** Insert into a tombstone-free table (rehash fast path). */
    V &
    refOrInsertFresh(uint64_t key)
    {
        const size_t mask = slots_.size() - 1;
        size_t i = hashOf(key) & mask;
        while (slots_[i].gen == gen_)
            i = (i + 1) & mask;
        Slot &s = slots_[i];
        s.key = key;
        s.gen = gen_;
        s.state = kFull;
        ++size_;
        return s.value;
    }

    std::vector<Slot> slots_;
    std::vector<uint64_t> hashScratch_; ///< batch-API hash staging
    size_t initialCap_ = 16;
    uint32_t gen_ = 1;
    size_t size_ = 0; ///< live entries
    size_t used_ = 0; ///< live + tombstoned slots this generation
    uint64_t rehashes_ = 0; ///< lifetime rehash count (observability)
};

} // namespace svard

#endif // SVARD_COMMON_FLAT_TABLE_H
