/**
 * @file
 * Kernel implementations and runtime dispatch (see common/simd.h).
 *
 * Layout: a portable scalar implementation of every kernel (always
 * compiled — it is the oracle the vector paths must match bit for
 * bit), an AVX2 implementation compiled with a per-function target
 * attribute on x86-64 (the translation unit itself builds without
 * -mavx2, so the binary stays runnable on pre-AVX2 hosts), and a NEON
 * implementation on aarch64 (baseline there, no attribute needed).
 * One function-pointer table per kernel is resolved once at first
 * use: CPUID-detected best implementation, overridable with
 * SVARD_SIMD_DISPATCH or setImpl().
 *
 * AVX2 notes: popcount uses the in-register nibble-table method
 * (PSHUFB lookup + PSADBW reduction); 64-bit multiplies — which the
 * splitmix64 avalanche needs and AVX2 lacks — are composed from
 * 32x32 partial products. Both are exact, so vector and scalar
 * results are identical, not merely close.
 */
#include "common/simd.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.h"

#if defined(__x86_64__) && defined(__GNUC__) && !defined(SVARD_SIMD_OFF)
#define SVARD_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && !defined(SVARD_SIMD_OFF)
#define SVARD_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace svard::simd {

namespace {

constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kMixMul1 = 0xbf58476d1ce4e5b9ULL;
constexpr uint64_t kMixMul2 = 0x94d049bb133111ebULL;

// ---- scalar kernels (always present; the bit-exact reference) ----

/** splitmix64 finalizer: FlatTable::hashOf's avalanche. */
inline uint64_t
avalanche(uint64_t z)
{
    z = (z ^ (z >> 30)) * kMixMul1;
    z = (z ^ (z >> 27)) * kMixMul2;
    return z ^ (z >> 31);
}

/** One hashSeed() fold step: state after absorbing part `p`. */
inline uint64_t
seedFold(uint64_t s, uint64_t p)
{
    s ^= p + kGolden + (s << 6) + (s >> 2);
    return avalanche(s + kGolden);
}

inline uint64_t
popcount64(uint64_t v)
{
    return static_cast<uint64_t>(__builtin_popcountll(v));
}

uint64_t
xorPopcountBaseScalar(const uint64_t *words, size_t n, uint64_t base)
{
    uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        c0 += popcount64(words[i + 0] ^ base);
        c1 += popcount64(words[i + 1] ^ base);
        c2 += popcount64(words[i + 2] ^ base);
        c3 += popcount64(words[i + 3] ^ base);
    }
    for (; i < n; ++i)
        c0 += popcount64(words[i] ^ base);
    return c0 + c1 + c2 + c3;
}

uint64_t
xorPopcountScalar(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64_t c0 = 0, c1 = 0;
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        c0 += popcount64(a[i] ^ b[i]);
        c1 += popcount64(a[i + 1] ^ b[i + 1]);
    }
    if (i < n)
        c0 += popcount64(a[i] ^ b[i]);
    return c0 + c1;
}

void
hashBatchScalar(const uint64_t *keys, uint64_t *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = avalanche(keys[i] + kGolden);
}

void
minNeighborsBatchScalar(const double *thr, size_t n, double edge_lo,
                        double edge_hi, double *out)
{
    if (n == 0)
        return;
    if (n == 1) {
        out[0] = std::min(edge_lo, edge_hi);
        return;
    }
    out[0] = std::min(edge_lo, thr[1]);
    for (size_t i = 1; i + 1 < n; ++i)
        out[i] = std::min(thr[i - 1], thr[i + 1]);
    out[n - 1] = std::min(thr[n - 2], edge_hi);
}

void
hashSeedTailBatchScalar(uint64_t salt, uint64_t tail, uint64_t *out,
                        size_t n)
{
    const uint64_t after_salt = seedFold(kGolden, salt);
    for (size_t i = 0; i < n; ++i)
        out[i] = seedFold(seedFold(after_salt, i), tail);
}

// ---- AVX2 kernels ------------------------------------------------

#ifdef SVARD_SIMD_X86

__attribute__((target("avx2"))) inline __m256i
mul64Avx2(__m256i a, __m256i b)
{
    // 64-bit low product from 32x32 partials (AVX2 has no vpmullq):
    // lo(a)lo(b) + ((lo(a)hi(b) + hi(a)lo(b)) << 32).
    const __m256i a_hi = _mm256_srli_epi64(a, 32);
    const __m256i b_hi = _mm256_srli_epi64(b, 32);
    const __m256i lolo = _mm256_mul_epu32(a, b);
    const __m256i lohi = _mm256_mul_epu32(a, b_hi);
    const __m256i hilo = _mm256_mul_epu32(a_hi, b);
    const __m256i cross = _mm256_add_epi64(lohi, hilo);
    return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i
avalancheAvx2(__m256i z)
{
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
    z = mul64Avx2(z, _mm256_set1_epi64x(
                         static_cast<long long>(kMixMul1)));
    z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
    z = mul64Avx2(z, _mm256_set1_epi64x(
                         static_cast<long long>(kMixMul2)));
    return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

__attribute__((target("avx2"))) inline __m256i
seedFoldAvx2(__m256i s, __m256i p)
{
    const __m256i golden =
        _mm256_set1_epi64x(static_cast<long long>(kGolden));
    __m256i mixed = _mm256_add_epi64(p, golden);
    mixed = _mm256_add_epi64(mixed, _mm256_slli_epi64(s, 6));
    mixed = _mm256_add_epi64(mixed, _mm256_srli_epi64(s, 2));
    s = _mm256_xor_si256(s, mixed);
    return avalancheAvx2(_mm256_add_epi64(s, golden));
}

/** Per-byte popcount of a 256-bit lane (nibble PSHUFB table). */
__attribute__((target("avx2"))) inline __m256i
popcountBytesAvx2(__m256i v)
{
    const __m256i table = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    return _mm256_add_epi8(_mm256_shuffle_epi8(table, lo),
                           _mm256_shuffle_epi8(table, hi));
}

__attribute__((target("avx2"))) uint64_t
xorPopcountBaseAvx2(const uint64_t *words, size_t n, uint64_t base)
{
    const __m256i vbase =
        _mm256_set1_epi64x(static_cast<long long>(base));
    __m256i acc = _mm256_setzero_si256();
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(words + i)),
            vbase);
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(popcountBytesAvx2(v), zero));
    }
    uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
    uint64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        count += popcount64(words[i] ^ base);
    return count;
}

__attribute__((target("avx2"))) uint64_t
xorPopcountAvx2(const uint64_t *a, const uint64_t *b, size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + i)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(b + i)));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(popcountBytesAvx2(v), zero));
    }
    uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(lanes), acc);
    uint64_t count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i)
        count += popcount64(a[i] ^ b[i]);
    return count;
}

__attribute__((target("avx2"))) void
hashBatchAvx2(const uint64_t *keys, uint64_t *out, size_t n)
{
    const __m256i golden =
        _mm256_set1_epi64x(static_cast<long long>(kGolden));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i k = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(keys + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + i),
            avalancheAvx2(_mm256_add_epi64(k, golden)));
    }
    for (; i < n; ++i)
        out[i] = avalanche(keys[i] + kGolden);
}

__attribute__((target("avx2"))) void
minNeighborsBatchAvx2(const double *thr, size_t n, double edge_lo,
                      double edge_hi, double *out)
{
    if (n < 6) {
        minNeighborsBatchScalar(thr, n, edge_lo, edge_hi, out);
        return;
    }
    out[0] = std::min(edge_lo, thr[1]);
    size_t i = 1;
    for (; i + 4 <= n - 1; i += 4) {
        const __m256d left = _mm256_loadu_pd(thr + i - 1);
        const __m256d right = _mm256_loadu_pd(thr + i + 1);
        _mm256_storeu_pd(out + i, _mm256_min_pd(left, right));
    }
    for (; i + 1 < n; ++i)
        out[i] = std::min(thr[i - 1], thr[i + 1]);
    out[n - 1] = std::min(thr[n - 2], edge_hi);
}

__attribute__((target("avx2"))) void
hashSeedTailBatchAvx2(uint64_t salt, uint64_t tail, uint64_t *out,
                      size_t n)
{
    const uint64_t after_salt = seedFold(kGolden, salt);
    const __m256i vstate =
        _mm256_set1_epi64x(static_cast<long long>(after_salt));
    const __m256i vtail =
        _mm256_set1_epi64x(static_cast<long long>(tail));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i lane = _mm256_setr_epi64x(
            static_cast<long long>(i), static_cast<long long>(i + 1),
            static_cast<long long>(i + 2),
            static_cast<long long>(i + 3));
        const __m256i mid = seedFoldAvx2(vstate, lane);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            seedFoldAvx2(mid, vtail));
    }
    for (; i < n; ++i)
        out[i] = seedFold(seedFold(after_salt, i), tail);
}

#endif // SVARD_SIMD_X86

// ---- NEON kernels ------------------------------------------------

#ifdef SVARD_SIMD_NEON

inline uint64x2_t
mul64Neon(uint64x2_t a, uint64x2_t b)
{
    // 64-bit low product from 32x32 partials (no 64-bit NEON mul).
    const uint32x2_t a_lo = vmovn_u64(a);
    const uint32x2_t b_lo = vmovn_u64(b);
    const uint32x2_t a_hi = vshrn_n_u64(a, 32);
    const uint32x2_t b_hi = vshrn_n_u64(b, 32);
    uint64x2_t cross = vmull_u32(a_lo, b_hi);
    cross = vmlal_u32(cross, a_hi, b_lo);
    const uint64x2_t lolo = vmull_u32(a_lo, b_lo);
    return vaddq_u64(lolo, vshlq_n_u64(cross, 32));
}

inline uint64x2_t
avalancheNeon(uint64x2_t z)
{
    z = veorq_u64(z, vshrq_n_u64(z, 30));
    z = mul64Neon(z, vdupq_n_u64(kMixMul1));
    z = veorq_u64(z, vshrq_n_u64(z, 27));
    z = mul64Neon(z, vdupq_n_u64(kMixMul2));
    return veorq_u64(z, vshrq_n_u64(z, 31));
}

inline uint64x2_t
seedFoldNeon(uint64x2_t s, uint64x2_t p)
{
    const uint64x2_t golden = vdupq_n_u64(kGolden);
    uint64x2_t mixed = vaddq_u64(p, golden);
    mixed = vaddq_u64(mixed, vshlq_n_u64(s, 6));
    mixed = vaddq_u64(mixed, vshrq_n_u64(s, 2));
    s = veorq_u64(s, mixed);
    return avalancheNeon(vaddq_u64(s, golden));
}

uint64_t
xorPopcountBaseNeon(const uint64_t *words, size_t n, uint64_t base)
{
    const uint64x2_t vbase = vdupq_n_u64(base);
    uint64x2_t acc = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v = veorq_u64(vld1q_u64(words + i), vbase);
        const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
        acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(
                                 vpaddlq_u8(bytes))));
    }
    uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; i < n; ++i)
        count += popcount64(words[i] ^ base);
    return count;
}

uint64_t
xorPopcountNeon(const uint64_t *a, const uint64_t *b, size_t n)
{
    uint64x2_t acc = vdupq_n_u64(0);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t v =
            veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
        const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
        acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(
                                 vpaddlq_u8(bytes))));
    }
    uint64_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
    for (; i < n; ++i)
        count += popcount64(a[i] ^ b[i]);
    return count;
}

void
hashBatchNeon(const uint64_t *keys, uint64_t *out, size_t n)
{
    const uint64x2_t golden = vdupq_n_u64(kGolden);
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        vst1q_u64(out + i,
                  avalancheNeon(vaddq_u64(vld1q_u64(keys + i),
                                          golden)));
    for (; i < n; ++i)
        out[i] = avalanche(keys[i] + kGolden);
}

void
minNeighborsBatchNeon(const double *thr, size_t n, double edge_lo,
                      double edge_hi, double *out)
{
    if (n < 4) {
        minNeighborsBatchScalar(thr, n, edge_lo, edge_hi, out);
        return;
    }
    out[0] = std::min(edge_lo, thr[1]);
    size_t i = 1;
    for (; i + 2 <= n - 1; i += 2) {
        const float64x2_t left = vld1q_f64(thr + i - 1);
        const float64x2_t right = vld1q_f64(thr + i + 1);
        vst1q_f64(out + i, vminq_f64(left, right));
    }
    for (; i + 1 < n; ++i)
        out[i] = std::min(thr[i - 1], thr[i + 1]);
    out[n - 1] = std::min(thr[n - 2], edge_hi);
}

void
hashSeedTailBatchNeon(uint64_t salt, uint64_t tail, uint64_t *out,
                      size_t n)
{
    const uint64_t after_salt = seedFold(kGolden, salt);
    const uint64x2_t vstate = vdupq_n_u64(after_salt);
    const uint64x2_t vtail = vdupq_n_u64(tail);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64_t lane[2] = {i, i + 1};
        const uint64x2_t mid = seedFoldNeon(vstate, vld1q_u64(lane));
        vst1q_u64(out + i, seedFoldNeon(mid, vtail));
    }
    for (; i < n; ++i)
        out[i] = seedFold(seedFold(after_salt, i), tail);
}

#endif // SVARD_SIMD_NEON

// ---- dispatch ----------------------------------------------------

struct KernelTable
{
    uint64_t (*xorPopcountBase)(const uint64_t *, size_t, uint64_t);
    uint64_t (*xorPopcount)(const uint64_t *, const uint64_t *,
                            size_t);
    void (*hashBatch)(const uint64_t *, uint64_t *, size_t);
    void (*minNeighborsBatch)(const double *, size_t, double, double,
                              double *);
    void (*hashSeedTailBatch)(uint64_t, uint64_t, uint64_t *, size_t);
};

constexpr KernelTable kScalarTable = {
    xorPopcountBaseScalar, xorPopcountScalar, hashBatchScalar,
    minNeighborsBatchScalar, hashSeedTailBatchScalar,
};

#ifdef SVARD_SIMD_X86
constexpr KernelTable kAvx2Table = {
    xorPopcountBaseAvx2, xorPopcountAvx2, hashBatchAvx2,
    minNeighborsBatchAvx2, hashSeedTailBatchAvx2,
};
#endif
#ifdef SVARD_SIMD_NEON
constexpr KernelTable kNeonTable = {
    xorPopcountBaseNeon, xorPopcountNeon, hashBatchNeon,
    minNeighborsBatchNeon, hashSeedTailBatchNeon,
};
#endif

const KernelTable *
tableFor(Impl impl)
{
    switch (impl) {
      case Impl::Scalar:
        return &kScalarTable;
#ifdef SVARD_SIMD_X86
      case Impl::Avx2:
        return __builtin_cpu_supports("avx2") ? &kAvx2Table : nullptr;
#endif
#ifdef SVARD_SIMD_NEON
      case Impl::Neon:
        return &kNeonTable;
#endif
      default:
        return nullptr;
    }
}

struct Dispatch
{
    const KernelTable *table = &kScalarTable;
    Impl impl = Impl::Scalar;

    Dispatch()
    {
        // Best available by default, strongest first.
        for (Impl candidate : {Impl::Avx2, Impl::Neon}) {
            if (const KernelTable *t = tableFor(candidate)) {
                table = t;
                impl = candidate;
                break;
            }
        }
        const char *forced = std::getenv("SVARD_SIMD_DISPATCH");
        if (forced != nullptr && *forced != '\0') {
            const std::string want(forced);
            Impl w;
            if (want == "scalar")
                w = Impl::Scalar;
            else if (want == "avx2")
                w = Impl::Avx2;
            else if (want == "neon")
                w = Impl::Neon;
            else
                SVARD_FATAL("SVARD_SIMD_DISPATCH=\"" + want +
                            "\" (expected scalar, avx2, or neon)");
            const KernelTable *t = tableFor(w);
            if (t == nullptr)
                SVARD_FATAL("SVARD_SIMD_DISPATCH=\"" + want +
                            "\": implementation not available in "
                            "this build on this host");
            table = t;
            impl = w;
        }
    }
};

Dispatch &
dispatch()
{
    static Dispatch d;
    return d;
}

} // anonymous namespace

const char *
implName(Impl impl)
{
    switch (impl) {
      case Impl::Scalar:
        return "scalar";
      case Impl::Avx2:
        return "avx2";
      case Impl::Neon:
        return "neon";
    }
    return "unknown";
}

Impl
activeImpl()
{
    return dispatch().impl;
}

std::vector<Impl>
availableImpls()
{
    std::vector<Impl> out;
    for (Impl candidate : {Impl::Avx2, Impl::Neon, Impl::Scalar})
        if (tableFor(candidate) != nullptr)
            out.push_back(candidate);
    return out;
}

bool
setImpl(Impl impl)
{
    const KernelTable *t = tableFor(impl);
    if (t == nullptr)
        return false;
    dispatch().table = t;
    dispatch().impl = impl;
    return true;
}

uint64_t
xorPopcountBase(const uint64_t *words, size_t n, uint64_t base)
{
    return dispatch().table->xorPopcountBase(words, n, base);
}

uint64_t
xorPopcount(const uint64_t *a, const uint64_t *b, size_t n)
{
    return dispatch().table->xorPopcount(a, b, n);
}

void
hashBatch(const uint64_t *keys, uint64_t *out, size_t n)
{
    dispatch().table->hashBatch(keys, out, n);
}

void
minNeighborsBatch(const double *thr, size_t n, double edge_lo,
                  double edge_hi, double *out)
{
    dispatch().table->minNeighborsBatch(thr, n, edge_lo, edge_hi, out);
}

void
hashSeedTailBatch(uint64_t salt, uint64_t tail, uint64_t *out,
                  size_t n)
{
    dispatch().table->hashSeedTailBatch(salt, tail, out, n);
}

} // namespace svard::simd
