#include "fault/vuln_model.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "dram/timing.h"

namespace svard::fault {

namespace {

// Stream tags keep the per-row hash streams independent.
constexpr uint64_t kHcTag = 0x4843;        // "HC"
constexpr uint64_t kBerTag = 0x424552;     // "BER"
constexpr uint64_t kWeakTag = 0x5745414b;  // "WEAK"
constexpr uint64_t kCellTag = 0x43454c4c;  // "CELL"
constexpr uint64_t kCoupTag = 0x434f5550;  // "COUP"
constexpr uint64_t kPressTag = 0x50524553; // "PRES"
constexpr uint64_t kPatTag = 0x504154;     // "PAT"
constexpr uint64_t kAgeTag = 0x414745;     // "AGE"

/** RowPress reference on-time: the paper's minimum tRAS of 36 ns. */
constexpr dram::Tick kPressBase = 36 * dram::kPsPerNs;

/** Hammer count of the BER calibration point (128K, K = 2^10). */
constexpr double kHc128k = 128.0 * 1024.0;

double
hashUniform(std::initializer_list<uint64_t> parts)
{
    return (hashSeed(parts) >> 11) * (1.0 / 9007199254740992.0);
}

double
hashNormal(std::initializer_list<uint64_t> parts)
{
    Rng rng(hashSeed(parts));
    return rng.normal();
}

} // anonymous namespace

double
agingDropProbability(int64_t quantized_hc)
{
    switch (quantized_hc) {
      case 12 * 1024: return 0.004;
      case 16 * 1024: return 0.001;
      case 24 * 1024: return 0.040;
      case 32 * 1024: return 0.077;
      case 40 * 1024: return 0.091;
      case 48 * 1024: return 0.005;
      case 56 * 1024: return 0.013;
      case 64 * 1024: return 0.020;
      case 96 * 1024: return 0.005;
      case 128 * 1024: return 0.0;   // strongest rows do not degrade
      default: return quantized_hc < 12 * 1024 ? 0.010 : 0.0;
    }
}

double
agingDropFactor(double hc_first)
{
    const int64_t q = VulnerabilityModel::quantizeHc(hc_first);
    const auto &labels = dram::testedHammerCounts();
    int64_t prev = labels.front();
    for (int64_t l : labels) {
        if (l >= q)
            break;
        prev = l;
    }
    return 0.99 * static_cast<double>(prev) / hc_first;
}

VulnerabilityModel::VulnerabilityModel(
    const dram::ModuleSpec &spec,
    std::shared_ptr<const dram::SubarrayMap> subarrays,
    bool aged)
    : spec_(spec), subarrays_(std::move(subarrays)), aged_(aged)
{
    SVARD_ASSERT(subarrays_ != nullptr, "model needs a subarray map");

    hcSigma_ = spec_.hcSigma();
    if (spec_.hcBimodalHighCenter > 0.0) {
        // Bimodal mode with a pinned strong-population center: the
        // primary effect's +s/2 shift must land exactly on the pinned
        // center; the weak population (mu - s/2) clips at the module
        // minimum. Secondary effects keep their mean-preserving cosh
        // correction.
        SVARD_ASSERT(!spec_.featureEffects.empty(),
                     "bimodal center needs a primary feature effect");
        hcMu_ = std::log(spec_.hcBimodalHighCenter) -
                0.5 * spec_.featureEffects.front().strength -
                0.5 * hcSigma_ * hcSigma_;
        for (size_t i = 1; i < spec_.featureEffects.size(); ++i)
            hcMu_ -= std::log(
                std::cosh(0.5 * spec_.featureEffects[i].strength));
    } else {
        hcMu_ = std::log(static_cast<double>(spec_.hcFirstAvg)) -
                0.5 * hcSigma_ * hcSigma_;
        // Each +-s/2 feature shift multiplies the mean by cosh(s/2);
        // compensate so the module average stays at Table 5's value.
        for (const auto &fe : spec_.featureEffects)
            hcMu_ -= std::log(std::cosh(0.5 * fe.strength));
    }

    // Split the module's published BER coefficient of variation between
    // the structured spatial components (periodic + chunk, Fig. 4) and
    // unstructured row noise, scaling the structure down when the spec
    // parameters would exceed the CV budget.
    const double cv = spec_.berCvPct / 100.0;
    const double chunk_f = spec_.chunkHi - spec_.chunkLo;
    berAmp_ = spec_.berSpatialAmp;
    berChunkAmp_ = spec_.chunkAmp;
    auto structured_var = [&]() {
        return 0.5 * berAmp_ * berAmp_ +
               chunk_f * (1.0 - chunk_f) * berChunkAmp_ * berChunkAmp_;
    };
    const double budget = 0.7 * cv * cv;
    if (structured_var() > budget && structured_var() > 0.0) {
        const double scale = std::sqrt(budget / structured_var());
        berAmp_ *= scale;
        berChunkAmp_ *= scale;
    }
    berNoiseSigma_ = std::sqrt(std::max(cv * cv - structured_var(), 1e-8));
    berNormalizer_ = (1.0 + berAmp_) * (1.0 + chunk_f * berChunkAmp_) *
                     std::exp(0.5 * berNoiseSigma_ * berNoiseSigma_);
}

uint32_t
VulnerabilityModel::weakestRow(uint32_t bank) const
{
    return static_cast<uint32_t>(
        hashSeed({spec_.seed, kWeakTag, bank}) % spec_.rowsPerBank);
}

double
VulnerabilityModel::relativeLocation(uint32_t phys_row) const
{
    return static_cast<double>(phys_row) /
           static_cast<double>(spec_.rowsPerBank);
}

double
VulnerabilityModel::featureShift(uint32_t bank, uint32_t phys_row) const
{
    if (spec_.featureEffects.empty())
        return 0.0;
    const dram::SubarrayLocation loc = subarrays_->locate(phys_row);
    double shift = 0.0;
    for (const auto &fe : spec_.featureEffects) {
        uint32_t value = 0;
        switch (fe.kind) {
          case dram::FeatureEffect::Kind::BankAddr:
            value = bank;
            break;
          case dram::FeatureEffect::Kind::RowAddr:
            value = phys_row;
            break;
          case dram::FeatureEffect::Kind::SubarrayAddr:
            value = loc.subarray;
            break;
          case dram::FeatureEffect::Kind::Distance:
            value = loc.distanceToSenseAmps();
            break;
        }
        const bool set = (value >> fe.bit) & 1;
        shift += (set ? 0.5 : -0.5) * fe.strength;
    }
    return shift;
}

double
VulnerabilityModel::hcFirstUnaged(uint32_t bank, uint32_t phys_row) const
{
    // Clip just under the Table 5 bounds: 0.98x a tested count
    // quantizes to that count (adjacent tested counts are >= 12.5%
    // apart), and keeps rows whose threshold sits at a bound from
    // flapping across a quantization edge under small measurement
    // error (e.g. a near-tie worst-case-pattern pick).
    const double lo = 0.98 * static_cast<double>(spec_.hcFirstMin);
    const double hi = 0.98 * static_cast<double>(spec_.hcFirstMax);
    if (phys_row == weakestRow(bank))
        return lo;
    const double z = hashNormal({spec_.seed, kHcTag, bank, phys_row});
    const double mu = hcMu_ + featureShift(bank, phys_row);
    return std::clamp(std::exp(mu + hcSigma_ * z), lo, hi);
}

double
VulnerabilityModel::agingFactor(uint32_t bank, uint32_t phys_row,
                                double hc_unaged) const
{
    const int64_t q = quantizeHc(hc_unaged);
    const double p = agingDropProbability(q);
    if (p <= 0.0)
        return 1.0;
    const double u = hashUniform({spec_.seed, kAgeTag, bank, phys_row});
    if (u >= p)
        return 1.0;
    // Drop the row to just under the previous tested hammer count so
    // its quantized HC_first moves down exactly one step.
    return agingDropFactor(hc_unaged);
}

double
VulnerabilityModel::hcFirst(uint32_t bank, uint32_t phys_row) const
{
    const double hc = hcFirstUnaged(bank, phys_row);
    if (!aged_)
        return hc;
    return hc * agingFactor(bank, phys_row, hc);
}

double
VulnerabilityModel::spatialBerFactor(uint32_t phys_row) const
{
    const double x = relativeLocation(phys_row);
    // Periodic design-induced component with minima at multiples of
    // 1/periods (Obsv. 4).
    double f = 1.0 + berAmp_ *
               (1.0 - std::cos(2.0 * M_PI * spec_.berSpatialPeriods * x));
    if (berChunkAmp_ > 0.0 && x >= spec_.chunkLo && x < spec_.chunkHi)
        f *= 1.0 + berChunkAmp_;
    return f;
}

double
VulnerabilityModel::ber128k(uint32_t bank, uint32_t phys_row) const
{
    const double z = hashNormal({spec_.seed, kBerTag, bank, phys_row});
    return spec_.berMean * spatialBerFactor(phys_row) / berNormalizer_ *
           std::exp(berNoiseSigma_ * z);
}

double
VulnerabilityModel::berAt(uint32_t bank, uint32_t phys_row,
                          double eff_hammers) const
{
    const double hcf = hcFirst(bank, phys_row);
    if (eff_hammers < hcf)
        return 0.0;
    const double denom = std::max(kHc128k - hcf, 1.0);
    const double t = (eff_hammers - hcf) / denom;
    const double ber = ber128k(bank, phys_row) * std::pow(t, 1.7);
    return std::min(ber, 0.5);
}

double
VulnerabilityModel::actWeight(uint32_t bank, uint32_t phys_row,
                              dram::Tick t_agg_on) const
{
    const double z = hashNormal({spec_.seed, kPressTag, bank, phys_row});
    const double exponent =
        std::clamp(spec_.pressExponent * (1.0 + 0.08 * z), 0.30, 0.80);
    const double ratio =
        static_cast<double>(std::max(t_agg_on, kPressBase)) /
        static_cast<double>(kPressBase);
    return 0.5 * std::pow(ratio, exponent);
}

double
VulnerabilityModel::trueCellFraction(uint32_t bank,
                                     uint32_t phys_row) const
{
    return 0.35 +
           0.30 * hashUniform({spec_.seed, kCellTag, bank, phys_row});
}

double
VulnerabilityModel::sameDataCoupling(uint32_t bank,
                                     uint32_t phys_row) const
{
    return 0.25 +
           0.35 * hashUniform({spec_.seed, kCoupTag, bank, phys_row});
}

double
VulnerabilityModel::patternJitter(uint32_t bank, uint32_t phys_row,
                                  uint8_t victim_fill,
                                  uint8_t aggr_fill) const
{
    const double z = hashNormal({spec_.seed, kPatTag, bank, phys_row,
                                 victim_fill, aggr_fill});
    return std::exp(0.05 * z);
}

int64_t
VulnerabilityModel::quantizeHc(double hc_first)
{
    const auto &labels = dram::testedHammerCounts();
    for (int64_t l : labels)
        if (static_cast<double>(l) >= hc_first)
            return l;
    // Rows that never flip in the tested range are reported at the
    // largest tested hammer count (Fig. 5 / Table 5 convention).
    return labels.back();
}

} // namespace svard::fault
