#include "fault/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "bender/temperature.h"
#include "common/rng.h"
#include "fault/vuln_model.h"

namespace svard::fault {

namespace {

constexpr uint64_t kTempTag = 0x44544d50;  // "DTMP"
constexpr uint64_t kDriftAgeTag = 0x44414745; // "DAGE"
constexpr uint64_t kThermTag = 0x44544852; // "DTHR"

double
hashUniform(std::initializer_list<uint64_t> parts)
{
    return (hashSeed(parts) >> 11) * (1.0 / 9007199254740992.0);
}

[[noreturn]] void
badGrammar(const std::string &text, const char *why)
{
    throw std::invalid_argument("bad drift model \"" + text + "\": " +
                                why + " (grammar: none | "
                                "aging[:period] | "
                                "thermal[:ampl[:period]] | "
                                "aging+thermal)");
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

uint32_t
parseEpochs(const std::string &text, const std::string &tok)
{
    try {
        size_t pos = 0;
        const long v = std::stol(tok, &pos);
        if (pos != tok.size() || v < 1 || v > 1'000'000)
            badGrammar(text, "period must be an epoch count >= 1");
        return static_cast<uint32_t>(v);
    } catch (const std::invalid_argument &) {
        badGrammar(text, "period must be an epoch count >= 1");
    } catch (const std::out_of_range &) {
        badGrammar(text, "period must be an epoch count >= 1");
    }
}

double
parseAmpl(const std::string &text, const std::string &tok)
{
    try {
        size_t pos = 0;
        const double v = std::stod(tok, &pos);
        if (pos != tok.size() || !(v >= 0.0) || v > 100.0)
            badGrammar(text, "amplitude must be in [0, 100] C");
        return v;
    } catch (const std::invalid_argument &) {
        badGrammar(text, "amplitude must be a temperature in C");
    } catch (const std::out_of_range &) {
        badGrammar(text, "amplitude must be a temperature in C");
    }
}

} // anonymous namespace

DriftModelSpec
DriftModelSpec::parse(const std::string &text)
{
    DriftModelSpec spec;
    if (text.empty())
        badGrammar(text, "empty model");
    const std::vector<std::string> parts = split(text, '+');
    for (const std::string &part : parts) {
        const std::vector<std::string> toks = split(part, ':');
        const std::string &head = toks.front();
        if (head == "none") {
            if (parts.size() > 1 || toks.size() > 1)
                badGrammar(text, "\"none\" composes with nothing");
        } else if (head == "aging") {
            if (spec.aging)
                badGrammar(text, "duplicate aging component");
            if (toks.size() > 2)
                badGrammar(text, "aging takes one optional period");
            spec.aging = true;
            if (toks.size() == 2)
                spec.agingPeriodEpochs = parseEpochs(text, toks[1]);
        } else if (head == "thermal") {
            if (spec.thermal)
                badGrammar(text, "duplicate thermal component");
            if (toks.size() > 3)
                badGrammar(text,
                           "thermal takes optional ampl and period");
            spec.thermal = true;
            if (toks.size() >= 2)
                spec.thermalAmplC = parseAmpl(text, toks[1]);
            if (toks.size() == 3)
                spec.thermalPeriodEpochs = parseEpochs(text, toks[2]);
        } else {
            badGrammar(text, "unknown component");
        }
    }
    return spec;
}

std::string
DriftModelSpec::name() const
{
    if (isStatic())
        return "none";
    std::string out;
    char buf[64];
    if (aging) {
        snprintf(buf, sizeof buf, "aging:%u", agingPeriodEpochs);
        out += buf;
    }
    if (thermal) {
        if (!out.empty())
            out += '+';
        snprintf(buf, sizeof buf, "thermal:%g:%u", thermalAmplC,
                 thermalPeriodEpochs);
        out += buf;
    }
    return out;
}

DriftField::DriftField(const DriftModelSpec &spec, uint64_t seed,
                       uint32_t epochs)
    : spec_(spec), seed_(seed), epochs_(epochs)
{
    if (!spec_.thermal)
        return;
    // Settle a seeded rig controller at each epoch's setpoint; the
    // recorded plant temperatures make factor() a pure lookup.
    bender::TemperatureController ctl(kCalibTempC, 25.0,
                                      hashSeed({seed_, kTempTag}));
    ctl.settle();
    temps_.resize(static_cast<size_t>(epochs_) + 1);
    temps_[0] = ctl.temperature();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    const double period =
        std::max(1u, spec_.thermalPeriodEpochs);
    for (uint32_t e = 1; e <= epochs_; ++e) {
        const double phase = kTwoPi * e / period;
        ctl.setTarget(kCalibTempC +
                      spec_.thermalAmplC * std::sin(phase));
        ctl.settle();
        temps_[e] = ctl.temperature();
    }
}

double
DriftField::temperatureAt(uint32_t epoch) const
{
    if (temps_.empty())
        return kCalibTempC;
    return temps_[std::min<size_t>(epoch, temps_.size() - 1)];
}

double
DriftField::factor(uint32_t bank, uint32_t row, int64_t hc_q,
                   uint32_t epoch) const
{
    if (epoch == 0)
        return 1.0;
    double f = 1.0;
    if (spec_.aging) {
        const double p =
            agingDropProbability(hc_q);
        if (p > 0.0) {
            const double u = hashUniform(
                {seed_, kDriftAgeTag, bank, row});
            if (u < p) {
                // The Fig. 10 population that degrades over a full
                // stress period drops at a deterministic epoch,
                // earlier for rows deeper inside the population.
                const uint32_t period =
                    std::max(1u, spec_.agingPeriodEpochs);
                const uint32_t drop_epoch =
                    1 + std::min<uint32_t>(
                            period - 1,
                            static_cast<uint32_t>((u / p) * period));
                if (epoch >= drop_epoch)
                    f *= agingDropFactor(static_cast<double>(hc_q));
            }
        }
    }
    if (spec_.thermal) {
        const double dt = temperatureAt(epoch) - temperatureAt(0);
        const double sens =
            0.5 + hashUniform({seed_, kThermTag, bank, row});
        f *= std::clamp(1.0 - spec_.thermalCoeffPerC * dt * sens,
                        0.25, 4.0);
    }
    return f;
}

DriftingModel::DriftingModel(
    std::shared_ptr<const dram::DisturbanceModel> inner,
    const DriftModelSpec &spec, uint64_t seed, uint32_t epochs)
    : inner_(std::move(inner)), field_(spec, seed, epochs)
{
}

double
DriftingModel::hcFirst(uint32_t bank, uint32_t phys_row) const
{
    const double hc = inner_->hcFirst(bank, phys_row);
    if (epoch_ == 0)
        return hc;
    return hc * field_.factor(bank, phys_row,
                              VulnerabilityModel::quantizeHc(hc),
                              epoch_);
}

double
DriftingModel::berAt(uint32_t bank, uint32_t phys_row,
                     double eff_hammers) const
{
    if (epoch_ == 0)
        return inner_->berAt(bank, phys_row, eff_hammers);
    // An HC_first scaled by f behaves as if hammered 1/f as hard.
    const double hc = inner_->hcFirst(bank, phys_row);
    const double f = field_.factor(
        bank, phys_row, VulnerabilityModel::quantizeHc(hc), epoch_);
    return inner_->berAt(bank, phys_row, eff_hammers / f);
}

double
DriftingModel::actWeight(uint32_t bank, uint32_t phys_row,
                         dram::Tick t_agg_on) const
{
    return inner_->actWeight(bank, phys_row, t_agg_on);
}

double
DriftingModel::trueCellFraction(uint32_t bank,
                                uint32_t phys_row) const
{
    return inner_->trueCellFraction(bank, phys_row);
}

double
DriftingModel::sameDataCoupling(uint32_t bank,
                                uint32_t phys_row) const
{
    return inner_->sameDataCoupling(bank, phys_row);
}

double
DriftingModel::patternJitter(uint32_t bank, uint32_t phys_row,
                             uint8_t victim_fill,
                             uint8_t aggr_fill) const
{
    return inner_->patternJitter(bank, phys_row, victim_fill,
                                 aggr_fill);
}

} // namespace svard::fault
