/**
 * @file
 * VulnerabilityModel: the concrete per-row read-disturbance fault model.
 *
 * This is the library's substitute for real DRAM chips: it synthesizes,
 * deterministically from a module's seed, the per-row quantities the
 * paper measures on hardware — HC_first, BER at 128K hammers, RowPress
 * on-time sensitivity, cell orientations — with the spatial structure
 * the paper reports:
 *
 *  - HC_first follows a clipped lognormal spanning Table 5's
 *    [min, max] with mean ~avg; one designated weakest row per bank
 *    carries exactly the module's minimum.
 *  - BER has a periodic component across the bank plus an optional
 *    elevated chunk (Fig. 4) and row noise scaled to hit the module's
 *    published coefficient of variation (Fig. 3).
 *  - For the four Samsung modules of Table 3, selected spatial-feature
 *    bits (row/subarray address, distance to sense amplifiers) shift
 *    HC_first, so the characterization-side F1 analysis can rediscover
 *    them; all other modules get no such correlation.
 *  - Aging (Fig. 10) lowers HC_first of a small, threshold-dependent
 *    fraction of weak rows by one quantization step; strong rows are
 *    unaffected.
 */
#ifndef SVARD_FAULT_VULN_MODEL_H
#define SVARD_FAULT_VULN_MODEL_H

#include <memory>

#include "dram/disturbance.h"
#include "dram/module_spec.h"
#include "dram/subarray.h"

namespace svard::fault {

/**
 * Fig. 10 stress transform, shared between the static aging mode and
 * the temporal drift model (fault/drift.h): probability that one full
 * 68-day stress period lowers a row's HC_first by one tested step,
 * keyed by the row's pre-stress quantized HC_first.
 */
double agingDropProbability(int64_t quantized_hc);

/** Multiplicative HC_first factor of a one-step Fig. 10 drop: lands
 *  the row just under the previous tested hammer count. */
double agingDropFactor(double hc_first);

/** Concrete DisturbanceModel calibrated per module (see file header). */
class VulnerabilityModel : public dram::DisturbanceModel
{
  public:
    /**
     * @param spec module to model
     * @param subarrays the module's subarray map (shared with the device)
     * @param aged apply the Fig. 10 aging transform to HC_first
     */
    VulnerabilityModel(const dram::ModuleSpec &spec,
                       std::shared_ptr<const dram::SubarrayMap> subarrays,
                       bool aged = false);

    // ---- DisturbanceModel interface ----
    double hcFirst(uint32_t bank, uint32_t phys_row) const override;
    double berAt(uint32_t bank, uint32_t phys_row,
                 double eff_hammers) const override;
    double actWeight(uint32_t bank, uint32_t phys_row,
                     dram::Tick t_agg_on) const override;
    double trueCellFraction(uint32_t bank,
                            uint32_t phys_row) const override;
    double sameDataCoupling(uint32_t bank,
                            uint32_t phys_row) const override;
    double patternJitter(uint32_t bank, uint32_t phys_row,
                         uint8_t victim_fill,
                         uint8_t aggr_fill) const override;

    // ---- extra introspection for analyses and tests ----

    /** Row BER at exactly 128K hammers under the WCDP (Fig. 3/4). */
    double ber128k(uint32_t bank, uint32_t phys_row) const;

    /** Pre-aging HC_first (used by the Fig. 10 experiment). */
    double hcFirstUnaged(uint32_t bank, uint32_t phys_row) const;

    /** The designated weakest physical row of a bank (carries hcMin). */
    uint32_t weakestRow(uint32_t bank) const;

    /** Relative location of a physical row within the bank, in [0,1). */
    double relativeLocation(uint32_t phys_row) const;

    const dram::ModuleSpec &spec() const { return spec_; }
    const dram::SubarrayMap &subarrays() const { return *subarrays_; }
    bool aged() const { return aged_; }

    /**
     * Quantize a continuous HC_first to the tested hammer counts of
     * Alg. 1: the smallest tested count at which the row flips, or the
     * largest tested count if the row never flips in the tested range
     * (matching how Fig. 5 / Table 5 report such rows).
     */
    static int64_t quantizeHc(double hc_first);

  private:
    double spatialBerFactor(uint32_t phys_row) const;
    double featureShift(uint32_t bank, uint32_t phys_row) const;
    double agingFactor(uint32_t bank, uint32_t phys_row,
                       double hc_unaged) const;

    const dram::ModuleSpec &spec_;
    std::shared_ptr<const dram::SubarrayMap> subarrays_;
    bool aged_;

    // derived calibration (computed once in the constructor)
    double hcSigma_;
    double hcMu_;
    double berNoiseSigma_;
    double berAmp_;       ///< possibly scaled down to fit the CV budget
    double berChunkAmp_;  ///< likewise
    double berNormalizer_;///< keeps mean BER at spec.berMean
};

} // namespace svard::fault

#endif // SVARD_FAULT_VULN_MODEL_H
