/**
 * @file
 * Temporal drift of per-row read-disturbance thresholds. Variable
 * Read Disturbance (arXiv:2502.13075) shows HC_first is not a
 * constant: it moves with accumulated stress (aging) and with the
 * operating point (temperature). This file models both as a
 * deterministic, seeded multiplicative trajectory on each row's
 * calibration-time HC_first, advanced in tREFW-sized "drift epochs":
 *
 *  - `aging[:period]` replays the Fig. 10 stress transform over time:
 *    each row draws a hashed uniform against its quantized-HC drop
 *    probability (fault/vuln_model.h) and, if selected, drops one
 *    tested step at a deterministic epoch within the stress period.
 *  - `thermal[:ampl[:period]]` drives a bender::TemperatureController
 *    through a sinusoidal setpoint schedule around the calibration
 *    temperature; HC_first shifts by a per-degree coefficient with
 *    per-row sensitivity jitter (hotter chips flip earlier).
 *  - `aging+thermal` composes both factors multiplicatively.
 *
 * The factor is exactly 1.0 at epoch 0 (calibration time), so a
 * zero-epoch or `none` drift axis reproduces the static path bit for
 * bit. DriftingModel wraps any DisturbanceModel so a DramDevice
 * exposes the *current* HC_first while defenses keep whatever profile
 * they were last calibrated with; callers must invalidate the
 * device's model memo after advancing the epoch.
 */
#ifndef SVARD_FAULT_DRIFT_H
#define SVARD_FAULT_DRIFT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dram/disturbance.h"

namespace svard::fault {

/** Which physical drift mechanisms a model composes. */
enum class DriftKind : uint8_t
{
    None = 0,
    Aging = 1,       ///< Fig. 10 stress transform replayed over time
    Thermal = 2,     ///< operating-point (temperature) shifts
};

/**
 * Parsed drift-model grammar:
 *   none
 *   aging[:<periodEpochs>]
 *   thermal[:<amplC>[:<periodEpochs>]]
 *   aging[...]+thermal[...]
 */
struct DriftModelSpec
{
    bool aging = false;
    bool thermal = false;

    /** Epochs of one full 68-day Fig. 10 stress period. */
    uint32_t agingPeriodEpochs = 64;

    double thermalAmplC = 10.0;        ///< setpoint swing amplitude
    uint32_t thermalPeriodEpochs = 32; ///< sinusoid period in epochs
    double thermalCoeffPerC = 0.004;   ///< fractional HC_first per +1 C

    bool isStatic() const { return !aging && !thermal; }

    /** @throws std::invalid_argument on unknown grammar */
    static DriftModelSpec parse(const std::string &text);

    /** Canonical name: parse(name()) round-trips, and every spelling
     *  of the same model canonicalizes identically (fingerprints). */
    std::string name() const;
};

/**
 * A concrete, fully deterministic drift trajectory: (model, seed,
 * epoch horizon) -> per-row multiplicative HC_first factors. The
 * thermal temperature schedule is precomputed once in the constructor
 * by settling a seeded TemperatureController at each epoch's
 * setpoint, so factor() is pure and cheap.
 */
class DriftField
{
  public:
    /** Temperature the module was characterized at (thermal dT=0). */
    static constexpr double kCalibTempC = 55.0;

    DriftField(const DriftModelSpec &spec, uint64_t seed,
               uint32_t epochs);

    /** Settled module temperature at a drift epoch, Celsius. */
    double temperatureAt(uint32_t epoch) const;

    /**
     * Multiplicative factor on a row's calibration-time HC_first at
     * `epoch`. `hc_q` keys the Fig. 10 stress transform: the row's
     * quantized pre-drift HC_first on the tested-count grid (rows in
     * scaled threshold space pass their unscaled module-space value).
     * factor(..., 0) == 1.0 for every row.
     */
    double factor(uint32_t bank, uint32_t row, int64_t hc_q,
                  uint32_t epoch) const;

    const DriftModelSpec &spec() const { return spec_; }
    uint32_t epochs() const { return epochs_; }

  private:
    DriftModelSpec spec_;
    uint64_t seed_;
    uint32_t epochs_;
    std::vector<double> temps_; ///< [epoch] settled plant temperature
};

/**
 * DisturbanceModel decorator that applies a DriftField to an inner
 * model's HC_first at the current epoch; all other disturbance
 * quantities pass through. After setEpoch(), any DramDevice built on
 * this model must invalidateModelMemo() — the device memoizes
 * hcFirst per row.
 */
class DriftingModel : public dram::DisturbanceModel
{
  public:
    DriftingModel(std::shared_ptr<const dram::DisturbanceModel> inner,
                  const DriftModelSpec &spec, uint64_t seed,
                  uint32_t epochs);

    void setEpoch(uint32_t e) { epoch_ = e; }
    uint32_t epoch() const { return epoch_; }
    const DriftField &field() const { return field_; }

    double hcFirst(uint32_t bank, uint32_t phys_row) const override;
    double berAt(uint32_t bank, uint32_t phys_row,
                 double eff_hammers) const override;
    double actWeight(uint32_t bank, uint32_t phys_row,
                     dram::Tick t_agg_on) const override;
    double trueCellFraction(uint32_t bank,
                            uint32_t phys_row) const override;
    double sameDataCoupling(uint32_t bank,
                            uint32_t phys_row) const override;
    double patternJitter(uint32_t bank, uint32_t phys_row,
                         uint8_t victim_fill,
                         uint8_t aggr_fill) const override;

  private:
    std::shared_ptr<const dram::DisturbanceModel> inner_;
    DriftField field_;
    uint32_t epoch_ = 0;
};

} // namespace svard::fault

#endif // SVARD_FAULT_DRIFT_H
