/**
 * @file
 * The six data patterns used by the characterization (paper Table 2).
 * Each pattern fixes the repeating fill byte of the victim row and of
 * the two aggressor rows; the worst-case data pattern (WCDP) of a row
 * is the pattern producing the largest BER at a 128K hammer count.
 */
#ifndef SVARD_FAULT_PATTERNS_H
#define SVARD_FAULT_PATTERNS_H

#include <array>
#include <cstdint>

namespace svard::fault {

/** Data patterns of Table 2. */
enum class DataPattern : uint8_t
{
    RowStripe = 0,         ///< aggressors 0xFF, victim 0x00
    RowStripeInv,          ///< aggressors 0x00, victim 0xFF
    ColumnStripe,          ///< aggressors 0xAA, victim 0xAA
    ColumnStripeInv,       ///< aggressors 0x55, victim 0x55
    Checkerboard,          ///< aggressors 0xAA, victim 0x55
    CheckerboardInv,       ///< aggressors 0x55, victim 0xAA
};

constexpr int kNumDataPatterns = 6;

/** All six patterns, in Table 2 order. */
constexpr std::array<DataPattern, kNumDataPatterns> allDataPatterns = {
    DataPattern::RowStripe,      DataPattern::RowStripeInv,
    DataPattern::ColumnStripe,   DataPattern::ColumnStripeInv,
    DataPattern::Checkerboard,   DataPattern::CheckerboardInv,
};

/** Fill byte written to the aggressor rows for a pattern. */
constexpr uint8_t
aggressorFill(DataPattern dp)
{
    switch (dp) {
      case DataPattern::RowStripe: return 0xFF;
      case DataPattern::RowStripeInv: return 0x00;
      case DataPattern::ColumnStripe: return 0xAA;
      case DataPattern::ColumnStripeInv: return 0x55;
      case DataPattern::Checkerboard: return 0xAA;
      case DataPattern::CheckerboardInv: return 0x55;
    }
    return 0;
}

/** Fill byte written to the victim row for a pattern. */
constexpr uint8_t
victimFill(DataPattern dp)
{
    switch (dp) {
      case DataPattern::RowStripe: return 0x00;
      case DataPattern::RowStripeInv: return 0xFF;
      case DataPattern::ColumnStripe: return 0xAA;
      case DataPattern::ColumnStripeInv: return 0x55;
      case DataPattern::Checkerboard: return 0x55;
      case DataPattern::CheckerboardInv: return 0xAA;
    }
    return 0;
}

/** Short name as used in the paper ("RS", "RSI", ...). */
constexpr const char *
patternName(DataPattern dp)
{
    switch (dp) {
      case DataPattern::RowStripe: return "RS";
      case DataPattern::RowStripeInv: return "RSI";
      case DataPattern::ColumnStripe: return "CS";
      case DataPattern::ColumnStripeInv: return "CSI";
      case DataPattern::Checkerboard: return "CB";
      case DataPattern::CheckerboardInv: return "CBI";
    }
    return "?";
}

} // namespace svard::fault

#endif // SVARD_FAULT_PATTERNS_H
