#include "obs/metrics.h"

#ifndef SVARD_OBS_OFF

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <unordered_map>

#include "common/log.h"
#include "common/mutex.h"
#include "obs/json.h"

namespace svard::obs {
namespace {

/**
 * Per-thread slot array. Fixed capacity so hot-path access never races
 * with growth; 4K slots ≈ 32 KiB/thread covers ~60 histograms or
 * thousands of counters, and registration panics loudly if exceeded.
 */
constexpr uint32_t kMaxSlots = 4096;

struct Shard
{
    Shard()
    {
        for (auto &s : slots)
            s.store(0, std::memory_order_relaxed);
    }

    std::atomic<uint64_t> slots[kMaxSlots];
};

struct MetricDef
{
    std::string name;
    MetricKind kind;
    uint32_t offset; ///< first slot; histograms use [offset, offset+2+buckets)
};

struct Registry
{
    Mutex mu;
    /** Registration order. */
    std::vector<MetricDef> defs SVARD_GUARDED_BY(mu);
    /** name -> defs index. */
    std::unordered_map<std::string, size_t> byName SVARD_GUARDED_BY(mu);
    uint32_t nextSlot SVARD_GUARDED_BY(mu) = 0;
    /** deque: shard addresses stay stable as threads attach. Grown
     *  under mu; hot-path access goes through each thread's cached
     *  tlsShard pointer, never through this container. */
    std::deque<Shard> shards SVARD_GUARDED_BY(mu);
    std::atomic<bool> enabled{[] {
        const char *e = std::getenv("SVARD_METRICS");
        return !(e && e[0] == '0' && e[1] == '\0');
    }()};
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: outlive static dtors
    return *r;
}

thread_local Shard *tlsShard = nullptr;

Shard *
myShard()
{
    if (!tlsShard) {
        Registry &r = registry();
        MutexLock lock(r.mu);
        r.shards.emplace_back();
        tlsShard = &r.shards.back();
    }
    return tlsShard;
}

uint32_t
slotsFor(MetricKind kind)
{
    return kind == MetricKind::Histogram ? 2 + kHistogramBuckets : 1;
}

MetricId
registerMetric(const std::string &name, MetricKind kind)
{
    Registry &r = registry();
    MutexLock lock(r.mu);
    auto it = r.byName.find(name);
    if (it != r.byName.end()) {
        const MetricDef &d = r.defs[it->second];
        SVARD_ASSERT(d.kind == kind,
                     "metric '" + name + "' re-registered as a different kind");
        return d.offset;
    }
    SVARD_ASSERT(r.nextSlot + slotsFor(kind) <= kMaxSlots,
                 "metrics registry slot space exhausted");
    const uint32_t offset = r.nextSlot;
    r.nextSlot += slotsFor(kind);
    r.byName.emplace(name, r.defs.size());
    r.defs.push_back({name, kind, offset});
    return offset;
}

/** bit_width(v): 0 for 0, else position of the highest set bit + 1. */
uint32_t
bucketOf(uint64_t v)
{
#if defined(__GNUC__) || defined(__clang__)
    return v ? 64u - static_cast<uint32_t>(__builtin_clzll(v)) : 0u;
#else
    uint32_t b = 0;
    while (v) {
        ++b;
        v >>= 1;
    }
    return b;
#endif
}

} // namespace

MetricId
counter(const std::string &name)
{
    return registerMetric(name, MetricKind::Counter);
}

MetricId
gauge(const std::string &name)
{
    return registerMetric(name, MetricKind::Gauge);
}

MetricId
histogram(const std::string &name)
{
    return registerMetric(name, MetricKind::Histogram);
}

void
add(MetricId id, uint64_t delta)
{
    if (!registry().enabled.load(std::memory_order_relaxed))
        return;
    myShard()->slots[id].fetch_add(delta, std::memory_order_relaxed);
}

void
gaugeMax(MetricId id, uint64_t v)
{
    if (!registry().enabled.load(std::memory_order_relaxed))
        return;
    // Only the owning thread writes this slot, so load/compare/store
    // needs no CAS loop.
    std::atomic<uint64_t> &slot = myShard()->slots[id];
    if (v > slot.load(std::memory_order_relaxed))
        slot.store(v, std::memory_order_relaxed);
}

void
observe(MetricId id, uint64_t v)
{
    if (!registry().enabled.load(std::memory_order_relaxed))
        return;
    Shard *s = myShard();
    s->slots[id].fetch_add(1, std::memory_order_relaxed);
    s->slots[id + 1].fetch_add(v, std::memory_order_relaxed);
    s->slots[id + 2 + bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return registry().enabled.load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool on)
{
    registry().enabled.store(on, std::memory_order_relaxed);
}

Snapshot
snapshot()
{
    Registry &r = registry();
    MutexLock lock(r.mu);
    Snapshot snap;
    snap.metrics.reserve(r.defs.size());
    for (const MetricDef &d : r.defs) {
        MetricValue mv;
        mv.name = d.name;
        mv.kind = d.kind;
        if (d.kind == MetricKind::Histogram)
            mv.buckets.assign(kHistogramBuckets, 0);
        for (const Shard &s : r.shards) {
            switch (d.kind) {
            case MetricKind::Counter:
                mv.value +=
                    s.slots[d.offset].load(std::memory_order_relaxed);
                break;
            case MetricKind::Gauge:
                mv.value = std::max(
                    mv.value,
                    s.slots[d.offset].load(std::memory_order_relaxed));
                break;
            case MetricKind::Histogram:
                mv.value +=
                    s.slots[d.offset].load(std::memory_order_relaxed);
                mv.sum +=
                    s.slots[d.offset + 1].load(std::memory_order_relaxed);
                for (uint32_t b = 0; b < kHistogramBuckets; ++b)
                    mv.buckets[b] += s.slots[d.offset + 2 + b].load(
                        std::memory_order_relaxed);
                break;
            }
        }
        snap.metrics.push_back(std::move(mv));
    }
    std::sort(snap.metrics.begin(), snap.metrics.end(),
              [](const MetricValue &a, const MetricValue &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
resetMetrics()
{
    Registry &r = registry();
    MutexLock lock(r.mu);
    for (Shard &s : r.shards)
        for (auto &slot : s.slots)
            slot.store(0, std::memory_order_relaxed);
}

const MetricValue *
Snapshot::find(const std::string &name) const
{
    auto it = std::lower_bound(metrics.begin(), metrics.end(), name,
                               [](const MetricValue &m,
                                  const std::string &n) {
                                   return m.name < n;
                               });
    if (it == metrics.end() || it->name != name)
        return nullptr;
    return &*it;
}

uint64_t
Snapshot::value(const std::string &name) const
{
    const MetricValue *m = find(name);
    return m ? m->value : 0;
}

std::string
Snapshot::toJson(int indent) const
{
    const std::string nl = indent > 0 ? "\n" : "";
    const std::string pad = indent > 0 ? std::string(indent, ' ') : "";
    std::string out = "{";
    bool first = true;
    for (const MetricValue &m : metrics) {
        if (!first)
            out += ",";
        first = false;
        out += nl + pad + "\"" + json::escape(m.name) + "\": ";
        if (m.kind != MetricKind::Histogram) {
            out += std::to_string(m.value);
            continue;
        }
        out += "{\"count\": " + std::to_string(m.value) +
               ", \"sum\": " + std::to_string(m.sum) + ", \"mean\": " +
               json::formatNumber(m.mean()) + ", \"buckets\": [";
        // Trim trailing empty buckets; keep the leading run so index
        // still equals bit_width.
        size_t last = m.buckets.size();
        while (last > 0 && m.buckets[last - 1] == 0)
            --last;
        for (size_t b = 0; b < last; ++b) {
            if (b)
                out += ",";
            out += std::to_string(m.buckets[b]);
        }
        out += "]}";
    }
    out += nl + "}";
    return out;
}

} // namespace svard::obs

#else // SVARD_OBS_OFF: keep the TU non-empty for the build graph.

namespace svard::obs {

const MetricValue *
Snapshot::find(const std::string &) const
{
    return nullptr;
}

uint64_t
Snapshot::value(const std::string &) const
{
    return 0;
}

std::string
Snapshot::toJson(int) const
{
    return "{}";
}

} // namespace svard::obs

#endif // SVARD_OBS_OFF
