#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace svard::obs::json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "0"; // JSON has no inf/nan; observability data clamps
    char buf[40];
    // %.17g round-trips any double; trim to the shortest that does.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

uint64_t
Value::asU64() const
{
    if (!raw_.empty()) {
        errno = 0;
        char *end = nullptr;
        const uint64_t v = std::strtoull(raw_.c_str(), &end, 10);
        if (errno == 0 && end && *end == '\0')
            return v;
    }
    return static_cast<uint64_t>(number_);
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &kv : members_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

/** Recursive-descent parser over the full input string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : s_(text), err_(err)
    {
    }

    bool
    run(Value *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != s_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (err_)
            *err_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (s_.compare(pos_, len, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos_ += len;
        return true;
    }

    bool
    parseValue(Value *out)
    {
        if (depth_ > 128)
            return fail("nesting too deep");
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        switch (s_[pos_]) {
        case '{': return parseObject(out);
        case '[': return parseArray(out);
        case '"':
            out->type_ = Value::Type::String;
            return parseString(&out->string_);
        case 't':
            out->type_ = Value::Type::Bool;
            out->boolean_ = true;
            return literal("true", 4);
        case 'f':
            out->type_ = Value::Type::Bool;
            out->boolean_ = false;
            return literal("false", 5);
        case 'n':
            out->type_ = Value::Type::Null;
            return literal("null", 4);
        default: return parseNumber(out);
        }
    }

    bool
    parseObject(Value *out)
    {
        out->type_ = Value::Type::Object;
        ++pos_; // '{'
        ++depth_;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            Value v;
            if (!parseValue(&v))
                return false;
            out->members_.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value *out)
    {
        out->type_ = Value::Type::Array;
        ++pos_; // '['
        ++depth_;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            --depth_;
            return true;
        }
        for (;;) {
            skipWs();
            Value v;
            if (!parseValue(&v))
                return false;
            out->items_.push_back(std::move(v));
            skipWs();
            if (pos_ >= s_.size())
                return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                --depth_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string *out)
    {
        ++pos_; // opening quote
        out->clear();
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= s_.size())
                break;
            const char e = s_[pos_++];
            switch (e) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode (surrogate pairs unneeded for our data;
                // lone surrogates encode as-is).
                if (cp < 0x80) {
                    out->push_back(char(cp));
                } else if (cp < 0x800) {
                    out->push_back(char(0xC0 | (cp >> 6)));
                    out->push_back(char(0x80 | (cp & 0x3F)));
                } else {
                    out->push_back(char(0xE0 | (cp >> 12)));
                    out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
                    out->push_back(char(0x80 | (cp & 0x3F)));
                }
                break;
            }
            default: return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value *out)
    {
        const size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        out->type_ = Value::Type::Number;
        out->raw_ = s_.substr(start, pos_ - start);
        char *end = nullptr;
        out->number_ = std::strtod(out->raw_.c_str(), &end);
        if (!end || *end != '\0')
            return fail("malformed number");
        return true;
    }

    const std::string &s_;
    std::string *err_;
    size_t pos_ = 0;
    int depth_ = 0;
};

bool
Value::parse(const std::string &text, Value *out, std::string *err)
{
    Parser p(text, err);
    return p.run(out);
}

} // namespace svard::obs::json
