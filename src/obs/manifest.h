/**
 * @file
 * Run manifests: a small JSON file written next to every sink/cache
 * output describing what produced it — schema version, run kind,
 * geometry presets, spec fingerprint, base seed, thread count, SIMD
 * dispatch impl, build flags, wall time, cell/baseline counts, sink
 * queue high-water mark, and the final metrics snapshot. A result file
 * without its manifest is an orphan; with it, any later fleet
 * coordinator (or a human three months out) can tell exactly which
 * code and configuration produced the bytes.
 *
 * Schema: "svard-manifest-v1".
 */
#ifndef SVARD_OBS_MANIFEST_H
#define SVARD_OBS_MANIFEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace svard::obs {

constexpr const char *kManifestSchema = "svard-manifest-v1";

struct RunManifest
{
    std::string kind; ///< "sweep", "adversarial", "charz", ...
    std::vector<std::string> geometries; ///< preset names swept
    uint64_t specFingerprint = 0; ///< hash over every cell fingerprint
    uint64_t baseSeed = 0;
    uint32_t threads = 0; ///< resolved worker count (0 = hw default)
    uint64_t requestsPerCore = 0;
    std::string simdImpl; ///< active dispatch impl ("avx2", "scalar"...)
    std::string buildFlags; ///< comma list: ndebug, simd, obs, asan...
    double wallSeconds = 0.0;
    uint64_t cellsTotal = 0;
    uint64_t cellsExecuted = 0;
    uint64_t cellsCached = 0;
    uint64_t baselinesExecuted = 0;
    uint64_t baselinesCached = 0;
    uint64_t sinkQueueHighWater = 0;
    std::string outPath;   ///< result sink path ("" if none)
    std::string cachePath; ///< sweep cache path ("" if none)
};

/** Build-flag summary of this binary (for the manifest/perf records). */
std::string buildFlagsString();

/**
 * Write `m` plus the metrics snapshot to `path` as pretty-printed
 * JSON. Returns false (after warning) if the file cannot be written —
 * manifests are bookkeeping and must never kill a finished run.
 */
bool writeManifest(const std::string &path, const RunManifest &m,
                   const Snapshot &metrics);

/**
 * Parse a manifest written by writeManifest (schema-checked). The
 * metrics snapshot is not reconstructed — tests inspect it through the
 * JSON DOM directly. Returns false on parse/schema mismatch.
 */
bool readManifest(const std::string &path, RunManifest *out,
                  std::string *err = nullptr);

} // namespace svard::obs

#endif // SVARD_OBS_MANIFEST_H
