/**
 * @file
 * Run manifests: a small JSON file written next to every sink/cache
 * output describing what produced it — schema version, run kind,
 * geometry presets, spec fingerprint, base seed, thread count, SIMD
 * dispatch impl, build flags, wall time, cell/baseline counts, sink
 * queue high-water mark, and the final metrics snapshot. A result file
 * without its manifest is an orphan; with it, any later fleet
 * coordinator (or a human three months out) can tell exactly which
 * code and configuration produced the bytes.
 *
 * Schema: "svard-manifest-v1".
 */
#ifndef SVARD_OBS_MANIFEST_H
#define SVARD_OBS_MANIFEST_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace svard::obs {

constexpr const char *kManifestSchema = "svard-manifest-v1";

/** One fabric worker's share of a multi-process sweep (ledger
 *  replay), recorded in the coordinator's merged manifest. */
struct FabricWorkerStats
{
    std::string id;              ///< worker id ("w0", hostname-pid...)
    uint64_t rangesClaimed = 0;  ///< claim records it wrote
    uint64_t cellsExecuted = 0;  ///< cells in ranges it completed
    uint64_t rangesReclaimed = 0; ///< expired leases it took over
    uint64_t rangesLost = 0;      ///< its leases reclaimed by others
};

struct RunManifest
{
    std::string kind; ///< "sweep", "adversarial", "charz", ...
    std::vector<std::string> geometries; ///< preset names swept
    uint64_t specFingerprint = 0; ///< hash over every cell fingerprint
    uint64_t baseSeed = 0;
    uint32_t threads = 0; ///< resolved worker count (0 = hw default)
    uint64_t requestsPerCore = 0;
    std::string simdImpl; ///< active dispatch impl ("avx2", "scalar"...)
    std::string buildFlags; ///< comma list: ndebug, simd, obs, asan...
    double wallSeconds = 0.0;
    uint64_t cellsTotal = 0;
    uint64_t cellsExecuted = 0;
    uint64_t cellsCached = 0;
    uint64_t baselinesExecuted = 0;
    uint64_t baselinesCached = 0;
    uint64_t sinkQueueHighWater = 0;
    std::string outPath;   ///< result sink path ("" if none)
    std::string cachePath; ///< sweep cache path ("" if none)
    /** The run was stopped early (SIGINT/SIGTERM or a stop flag);
     *  the sink holds a valid prefix, the cache all finished cells. */
    bool interrupted = false;
    /** Per-worker split of a multi-process run (empty otherwise). */
    std::vector<FabricWorkerStats> fabricWorkers;
    /** Temporal-drift axis (DriftSpec names; empty = no drift axis)
     *  and run-wide totals over every cell, cached ones included. */
    std::vector<std::string> driftPolicies;
    uint64_t escapes = 0;         ///< stale-profile threshold escapes
    uint64_t recalibrations = 0;  ///< policy-triggered recals
};

/** Build-flag summary of this binary (for the manifest/perf records). */
std::string buildFlagsString();

/**
 * Write `m` plus the metrics snapshot to `path` as pretty-printed
 * JSON. The write is atomic (tmp file + rename): a kill mid-write
 * leaves the previous manifest (or none), never a torn JSON next to
 * a valid result file. Returns false (after warning) if the file
 * cannot be written — manifests are bookkeeping and must never kill
 * a finished run.
 */
bool writeManifest(const std::string &path, const RunManifest &m,
                   const Snapshot &metrics);

/**
 * Parse a manifest written by writeManifest (schema-checked). The
 * metrics snapshot is not reconstructed — tests inspect it through the
 * JSON DOM directly. Returns false on parse/schema mismatch.
 */
bool readManifest(const std::string &path, RunManifest *out,
                  std::string *err = nullptr);

} // namespace svard::obs

#endif // SVARD_OBS_MANIFEST_H
