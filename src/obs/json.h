/**
 * @file
 * Minimal JSON support for the observability layer: string escaping for
 * the writers (trace, heartbeat, manifest, metrics snapshot) and a
 * small DOM parser used by tests and tools to validate those artifacts
 * round-trip. Deliberately tiny — no external dependency, no streaming,
 * no SAX — because every producer in this repo emits well-formed
 * documents a few MB at most.
 */
#ifndef SVARD_OBS_JSON_H
#define SVARD_OBS_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace svard::obs::json {

/** Escape a string for embedding between double quotes in JSON. */
std::string escape(const std::string &s);

/** Format a double the way the writers do (shortest round-trip). */
std::string formatNumber(double v);

/**
 * Parsed JSON value. Numbers are kept as doubles (plus the raw text so
 * 64-bit integers such as fingerprints survive exactly via asU64()).
 */
class Value
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    bool asBool() const { return boolean_; }
    double asNumber() const { return number_; }
    /** Integer re-parse of the raw token (exact for uint64 values). */
    uint64_t asU64() const;
    const std::string &asString() const { return string_; }

    const std::vector<Value> &items() const { return items_; }
    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return members_;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /**
     * Parse a complete JSON document. Returns false (with *err set, if
     * given) on malformed input or trailing garbage.
     */
    static bool parse(const std::string &text, Value *out,
                      std::string *err = nullptr);

  private:
    friend class Parser;

    Type type_ = Type::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string raw_; ///< raw number token, for exact integer re-parse
    std::string string_;
    std::vector<Value> items_;
    std::vector<std::pair<std::string, Value>> members_;
};

} // namespace svard::obs::json

#endif // SVARD_OBS_JSON_H
