/**
 * @file
 * Sweep progress + heartbeats: a throttled live progress line on
 * stderr (items done/cached/total, rate, ETA) and a machine-readable
 * JSONL heartbeat stream for external supervisors — the substrate the
 * planned distributed sweep fabric will report through.
 *
 * Env knobs:
 *  - SVARD_PROGRESS=0|1      force the stderr line off/on (default:
 *                            on only when stderr is a terminal, so CI
 *                            logs and redirected runs stay clean)
 *  - SVARD_PROGRESS_MS=N     min milliseconds between stderr updates
 *                            (default 500)
 *  - SVARD_HEARTBEAT=<path>  append heartbeat JSONL records to <path>
 *  - SVARD_HEARTBEAT_MS=N    min ms between heartbeats (default 1000;
 *                            the first and final beat of every phase
 *                            are always written)
 *
 * Heartbeat schema (one JSON object per line):
 *   {"schema": "svard-heartbeat-v1", "ts_ms": <unix ms>,
 *    "phase": "...", "unit": "cells", "done": N, "cached": N,
 *    "total": N, "per_sec": R, "eta_s": E,
 *    "escapes": N, "recalibrations": N, "final": true|false}
 *
 * The escapes/recalibrations counters surface the temporal-drift
 * robustness layer (engine/drift_eval.h) in flight; they stay 0 for
 * non-drift runs.
 */
#ifndef SVARD_OBS_PROGRESS_H
#define SVARD_OBS_PROGRESS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace svard::obs {

/** Route heartbeats to `path` ("" disables); overrides SVARD_HEARTBEAT. */
void setHeartbeatPath(const std::string &path);

/** Active heartbeat path ("" when disabled). */
std::string heartbeatPath();

/**
 * Progress over a known number of work items. Workers call tick()
 * concurrently; emission (stderr line + heartbeat) is throttled and
 * serialized internally. finish() (or the destructor) writes the final
 * state unconditionally so every phase leaves at least two heartbeats.
 */
class ProgressMeter
{
  public:
    ProgressMeter(std::string phase, uint64_t total,
                  std::string unit = "cells");
    ~ProgressMeter();

    ProgressMeter(const ProgressMeter &) = delete;
    ProgressMeter &operator=(const ProgressMeter &) = delete;

    /** Items satisfied from cache (counted within `total`). */
    void addCached(uint64_t n);

    /** One (or more) items completed by execution. */
    void tick(uint64_t n = 1);

    /** Guardband escapes observed so far (drift sweeps). */
    void addEscapes(uint64_t n);

    /** Policy-triggered recalibrations so far (drift sweeps). */
    void addRecalibrations(uint64_t n);

    /** Emit the final line/heartbeat; idempotent. */
    void finish();

    uint64_t done() const
    {
        return done_.load(std::memory_order_relaxed);
    }

  private:
    void maybeEmit(bool force);

    const std::string phase_;
    const std::string unit_;
    const uint64_t total_;
    std::atomic<uint64_t> done_{0};
    std::atomic<uint64_t> cached_{0};
    std::atomic<uint64_t> escapes_{0};
    std::atomic<uint64_t> recals_{0};
    std::atomic<int64_t> lastLineMs_{-1000000}; ///< stderr throttle
    std::atomic<int64_t> lastBeatMs_{-1000000}; ///< heartbeat throttle
    std::atomic<bool> finished_{false};
    std::chrono::steady_clock::time_point start_;
};

} // namespace svard::obs

#endif // SVARD_OBS_PROGRESS_H
