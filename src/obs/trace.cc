#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/log.h"
#include "common/mutex.h"
#include "obs/json.h"

namespace svard::obs {
namespace {

using Clock = std::chrono::steady_clock;

struct Event
{
    const char *category;
    const char *name;
    uint64_t tsNs;  ///< start, ns since trace epoch
    uint64_t durNs; ///< 0 for instant events
    uint32_t tid;
    char phase; ///< 'X' complete, 'i' instant
    std::string args; ///< pre-rendered `"k": v` pairs, comma-joined
};

struct Recorder
{
    std::atomic<bool> enabled{false};
    Mutex mu;
    std::string path SVARD_GUARDED_BY(mu);
    /** Reset only between traces (startTrace); read lock-free by
     *  sinceEpochNs on span-close paths. Callers must not start or
     *  stop traces while spans are open on other threads. */
    Clock::time_point epoch;
    std::vector<Event> events SVARD_GUARDED_BY(mu);
    std::atomic<uint32_t> nextLane{1};
    uint32_t lanesSeen SVARD_GUARDED_BY(mu) = 0;
};

Recorder &
recorder()
{
    static Recorder *r = new Recorder; // leaked: outlive static dtors
    return *r;
}

thread_local uint32_t tlsLane = 0;

uint32_t
myLane()
{
    if (tlsLane == 0)
        tlsLane =
            recorder().nextLane.fetch_add(1, std::memory_order_relaxed);
    return tlsLane;
}

void
writeTraceFile(Recorder &r) SVARD_REQUIRES(r.mu)
{
    FILE *f = std::fopen(r.path.c_str(), "wb");
    if (!f) {
        warn("trace: cannot open '" + r.path + "' for writing");
        return;
    }
    std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    bool first = true;
    for (uint32_t lane = 1; lane <= r.lanesSeen; ++lane) {
        std::fprintf(f,
                     "%s\n{\"name\": \"thread_name\", \"ph\": \"M\", "
                     "\"pid\": 1, \"tid\": %u, \"args\": {\"name\": "
                     "\"thread-%u\"}}",
                     first ? "" : ",", lane, lane);
        first = false;
    }
    for (const Event &e : r.events) {
        std::fprintf(
            f,
            "%s\n{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", "
            "\"ts\": %.3f, ",
            first ? "" : ",", json::escape(e.name).c_str(),
            json::escape(e.category).c_str(), e.phase,
            double(e.tsNs) / 1000.0);
        first = false;
        if (e.phase == 'X')
            std::fprintf(f, "\"dur\": %.3f, ", double(e.durNs) / 1000.0);
        else
            std::fprintf(f, "\"s\": \"t\", ");
        std::fprintf(f, "\"pid\": 1, \"tid\": %u, \"args\": {%s}}",
                     e.tid, e.args.c_str());
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    inform("trace: wrote " + std::to_string(r.events.size()) +
           " events to " + r.path);
}

/** Honor SVARD_TRACE=<path> on first use; flushed via atexit. */
void
initFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *path = std::getenv("SVARD_TRACE");
        if (path && *path) {
            startTrace(path);
            std::atexit(stopTrace);
        }
    });
}

void
record(const char *category, const char *name, uint64_t tsNs,
       uint64_t durNs, char phase, std::string args)
{
    Recorder &r = recorder();
    const uint32_t lane = myLane();
    MutexLock lock(r.mu);
    if (!r.enabled.load(std::memory_order_relaxed))
        return; // stopped while the span was open: drop it
    r.lanesSeen = std::max(r.lanesSeen, lane);
    r.events.push_back(
        {category, name, tsNs, durNs, lane, phase, std::move(args)});
}

uint64_t
sinceEpochNs(Clock::time_point tp)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp - recorder().epoch)
            .count());
}

} // namespace

bool
traceEnabled()
{
    initFromEnv();
    return recorder().enabled.load(std::memory_order_relaxed);
}

void
startTrace(const std::string &path)
{
    stopTrace(); // flush any active trace first
    Recorder &r = recorder();
    MutexLock lock(r.mu);
    r.path = path;
    r.epoch = Clock::now();
    r.events.clear();
    r.lanesSeen = 0;
    r.enabled.store(true, std::memory_order_relaxed);
}

void
stopTrace()
{
    Recorder &r = recorder();
    MutexLock lock(r.mu);
    if (!r.enabled.load(std::memory_order_relaxed))
        return;
    r.enabled.store(false, std::memory_order_relaxed);
    writeTraceFile(r);
    r.events.clear();
    r.events.shrink_to_fit();
}

std::string
tracePath()
{
    Recorder &r = recorder();
    MutexLock lock(r.mu);
    return r.enabled.load(std::memory_order_relaxed) ? r.path
                                                     : std::string();
}

struct Span::Rec
{
    const char *category;
    const char *name;
    Clock::time_point start;
    std::string args;
};

Span::Span(const char *category, const char *name)
{
    if (!traceEnabled())
        return;
    rec_ = new Rec{category, name, Clock::now(), {}};
}

Span::~Span()
{
    if (!rec_)
        return;
    const uint64_t tsNs = sinceEpochNs(rec_->start);
    const uint64_t durNs = sinceEpochNs(Clock::now()) - tsNs;
    record(rec_->category, rec_->name, tsNs, durNs, 'X',
           std::move(rec_->args));
    delete rec_;
}

void
Span::arg(const char *key, const std::string &v)
{
    if (!rec_)
        return;
    if (!rec_->args.empty())
        rec_->args += ", ";
    rec_->args += "\"" + json::escape(key) + "\": \"" + json::escape(v) +
                  "\"";
}

void
Span::arg(const char *key, uint64_t v)
{
    if (!rec_)
        return;
    if (!rec_->args.empty())
        rec_->args += ", ";
    rec_->args += "\"" + json::escape(key) + "\": " + std::to_string(v);
}

void
Span::arg(const char *key, double v)
{
    if (!rec_)
        return;
    if (!rec_->args.empty())
        rec_->args += ", ";
    rec_->args +=
        "\"" + json::escape(key) + "\": " + json::formatNumber(v);
}

void
traceInstant(const char *category, const char *name)
{
    if (!traceEnabled())
        return;
    record(category, name, sinceEpochNs(Clock::now()), 0, 'i', {});
}

} // namespace svard::obs
