#include "obs/progress.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/mutex.h"

#ifdef _WIN32
#include <io.h>
#define SVARD_ISATTY(fd) _isatty(fd)
#else
#include <unistd.h>
#define SVARD_ISATTY(fd) isatty(fd)
#endif

#include "obs/json.h"

namespace svard::obs {
namespace {

int64_t
envMs(const char *name, int64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    const long long n = std::atoll(v);
    return n > 0 ? n : dflt;
}

/** Whether the stderr progress line is wanted, and how to render it. */
struct LineMode
{
    bool enabled;
    bool sticky; ///< use \r carriage-return updates (tty only)
};

LineMode
lineMode()
{
    static const LineMode mode = [] {
        const bool tty = SVARD_ISATTY(2) != 0;
        const char *v = std::getenv("SVARD_PROGRESS");
        if (v && *v)
            return LineMode{v[0] != '0', tty};
        return LineMode{tty, tty};
    }();
    return mode;
}

int64_t
progressIntervalMs()
{
    static const int64_t ms = envMs("SVARD_PROGRESS_MS", 500);
    return ms;
}

int64_t
heartbeatIntervalMs()
{
    static const int64_t ms = envMs("SVARD_HEARTBEAT_MS", 1000);
    return ms;
}

/** Append-mode heartbeat file shared by every meter in the process. */
struct HeartbeatSink
{
    Mutex mu;
    std::string path SVARD_GUARDED_BY(mu);
    FILE *file SVARD_GUARDED_BY(mu) = nullptr;
    bool envRead SVARD_GUARDED_BY(mu) = false;
};

HeartbeatSink &
heartbeatSink()
{
    static HeartbeatSink *s = new HeartbeatSink;
    return *s;
}

/** Resolve the path from env exactly once (programmatic set wins). */
void
ensureEnvPath(HeartbeatSink &s) SVARD_REQUIRES(s.mu)
{
    if (s.envRead)
        return;
    s.envRead = true;
    const char *p = std::getenv("SVARD_HEARTBEAT");
    if (p && *p)
        s.path = p;
}

void
emitHeartbeat(const std::string &phase, const std::string &unit,
              uint64_t done, uint64_t cached, uint64_t total,
              double perSec, double etaS, uint64_t escapes,
              uint64_t recals, bool final)
{
    HeartbeatSink &s = heartbeatSink();
    MutexLock lock(s.mu);
    ensureEnvPath(s);
    if (s.path.empty())
        return;
    if (!s.file) {
        s.file = std::fopen(s.path.c_str(), "ab");
        if (!s.file) {
            std::fprintf(stderr,
                         "warn: heartbeat: cannot open '%s'\n",
                         s.path.c_str());
            s.path.clear(); // warn once by disabling, not spamming
            return;
        }
    }
    const int64_t tsMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::fprintf(s.file,
                 "{\"schema\": \"svard-heartbeat-v1\", \"ts_ms\": %lld, "
                 "\"phase\": \"%s\", \"unit\": \"%s\", \"done\": %llu, "
                 "\"cached\": %llu, \"total\": %llu, \"per_sec\": %s, "
                 "\"eta_s\": %s, \"escapes\": %llu, "
                 "\"recalibrations\": %llu, \"final\": %s}\n",
                 static_cast<long long>(tsMs),
                 json::escape(phase).c_str(), json::escape(unit).c_str(),
                 static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(cached),
                 static_cast<unsigned long long>(total),
                 json::formatNumber(perSec).c_str(),
                 json::formatNumber(etaS).c_str(),
                 static_cast<unsigned long long>(escapes),
                 static_cast<unsigned long long>(recals),
                 final ? "true" : "false");
    std::fflush(s.file);
}

/** Throttle helper: one caller wins the right to emit per interval. */
bool
claimEmit(std::atomic<int64_t> &last, int64_t nowMs, int64_t intervalMs,
          bool force)
{
    int64_t prev = last.load(std::memory_order_relaxed);
    for (;;) {
        if (!force && nowMs - prev < intervalMs)
            return false;
        if (last.compare_exchange_weak(prev, nowMs,
                                       std::memory_order_relaxed))
            return true;
        // prev reloaded; loop to re-check the interval.
    }
}

} // namespace

void
setHeartbeatPath(const std::string &path)
{
    HeartbeatSink &s = heartbeatSink();
    MutexLock lock(s.mu);
    s.envRead = true; // programmatic choice wins over the env var
    if (s.file) {
        std::fclose(s.file);
        s.file = nullptr;
    }
    s.path = path;
}

std::string
heartbeatPath()
{
    HeartbeatSink &s = heartbeatSink();
    MutexLock lock(s.mu);
    ensureEnvPath(s);
    return s.path;
}

ProgressMeter::ProgressMeter(std::string phase, uint64_t total,
                             std::string unit)
    : phase_(std::move(phase)), unit_(std::move(unit)), total_(total),
      start_(std::chrono::steady_clock::now())
{
    maybeEmit(true); // first beat: phase started
}

ProgressMeter::~ProgressMeter()
{
    finish();
}

void
ProgressMeter::addCached(uint64_t n)
{
    cached_.fetch_add(n, std::memory_order_relaxed);
    maybeEmit(false);
}

void
ProgressMeter::tick(uint64_t n)
{
    done_.fetch_add(n, std::memory_order_relaxed);
    maybeEmit(false);
}

void
ProgressMeter::addEscapes(uint64_t n)
{
    if (n)
        escapes_.fetch_add(n, std::memory_order_relaxed);
}

void
ProgressMeter::addRecalibrations(uint64_t n)
{
    if (n)
        recals_.fetch_add(n, std::memory_order_relaxed);
}

void
ProgressMeter::finish()
{
    bool expected = false;
    if (!finished_.compare_exchange_strong(expected, true))
        return;
    maybeEmit(true);
    if (lineMode().enabled && lineMode().sticky)
        std::fprintf(stderr, "\n"); // release the sticky line
}

void
ProgressMeter::maybeEmit(bool force)
{
    const int64_t nowMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    const uint64_t done = done_.load(std::memory_order_relaxed);
    const uint64_t cached = cached_.load(std::memory_order_relaxed);
    const uint64_t seen = done + cached;
    const double elapsedS = double(nowMs) / 1000.0;
    const double perSec = elapsedS > 0.0 ? double(done) / elapsedS : 0.0;
    const uint64_t remaining = total_ > seen ? total_ - seen : 0;
    const double etaS = perSec > 0.0 ? double(remaining) / perSec : 0.0;

    const LineMode mode = lineMode();
    if (mode.enabled &&
        claimEmit(lastLineMs_, nowMs, progressIntervalMs(), force)) {
        std::fprintf(stderr,
                     "%s%s: %llu/%llu %s (%llu cached), %.1f %s/s, "
                     "eta %.0fs%s",
                     mode.sticky ? "\r" : "", phase_.c_str(),
                     static_cast<unsigned long long>(seen),
                     static_cast<unsigned long long>(total_),
                     unit_.c_str(),
                     static_cast<unsigned long long>(cached), perSec,
                     unit_.c_str(), etaS,
                     mode.sticky ? "    " : "\n");
        std::fflush(stderr);
    }
    if (claimEmit(lastBeatMs_, nowMs, heartbeatIntervalMs(), force))
        emitHeartbeat(phase_, unit_, done, cached, total_, perSec, etaS,
                      escapes_.load(std::memory_order_relaxed),
                      recals_.load(std::memory_order_relaxed),
                      force && finished_.load(std::memory_order_relaxed));
}

} // namespace svard::obs
