/**
 * @file
 * Scoped-span tracing that writes a chrome://tracing- and Perfetto-
 * compatible trace.json. One Span per interesting unit of work (sweep
 * cell, charz row batch, baseline run, cache probe, AsyncSink flush),
 * with per-thread lanes and key/value args (cell coordinates, seed...).
 *
 * Off by default and cheap when off: constructing a Span while tracing
 * is disabled is a single relaxed atomic load and no allocation.
 * Enable by exporting SVARD_TRACE=<path> (the file is written when the
 * process exits or stopTrace() runs) or programmatically with
 * startTrace()/stopTrace() (used by tests).
 *
 * Tracing, like metrics, never feeds back into simulation — traced and
 * untraced runs produce byte-identical result tables.
 */
#ifndef SVARD_OBS_TRACE_H
#define SVARD_OBS_TRACE_H

#include <cstdint>
#include <string>

namespace svard::obs {

/** Whether spans are currently being recorded. */
bool traceEnabled();

/** Begin recording to `path`; replaces any active trace (flushing it). */
void startTrace(const std::string &path);

/** Write the active trace to its path and stop recording. No-op when idle. */
void stopTrace();

/** Path of the active trace file ("" when not tracing). */
std::string tracePath();

/**
 * RAII span: records a complete event covering its lifetime. When
 * tracing is off the constructor leaves rec_ null and every method is
 * a no-op, so hot code can create spans unconditionally.
 */
class Span
{
  public:
    /**
     * @param category  static string, groups spans in the viewer
     * @param name      static string; use arg() for dynamic detail
     */
    Span(const char *category, const char *name);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a key/value arg (shown in the viewer's detail pane). */
    void arg(const char *key, const std::string &v);
    void arg(const char *key, uint64_t v);
    void arg(const char *key, double v);

  private:
    struct Rec;
    Rec *rec_ = nullptr; ///< null when tracing is disabled
};

/** Record a zero-duration instant event (marks, e.g. "cache invalid"). */
void traceInstant(const char *category, const char *name);

} // namespace svard::obs

#endif // SVARD_OBS_TRACE_H
