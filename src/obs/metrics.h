/**
 * @file
 * Process-wide metrics registry: named counters, gauges (merged by
 * max, for high-water marks), and log2-bucket latency histograms.
 *
 * Design constraints, in order:
 *  - Observability must never feed back into simulation: nothing here
 *    is consulted by simulation code, so results are bit-identical
 *    whether metrics are compiled in, enabled, or disabled (CI pins
 *    this with fig12 CSV byte-compares).
 *  - Hot paths touch only a thread-local shard slot (relaxed atomic
 *    add on a cache line no other thread writes); shards are merged
 *    only at snapshot() time.
 *  - Registration is cheap but mutex-guarded; call sites hold the
 *    returned MetricId in a function-local static so each metric is
 *    registered once.
 *
 * Runtime gate: SVARD_METRICS=0 disables collection (default on);
 * setMetricsEnabled() overrides programmatically. Compile-time gate:
 * configure with -DSVARD_OBS=OFF and every hot-path call below
 * becomes an empty inline function.
 */
#ifndef SVARD_OBS_METRICS_H
#define SVARD_OBS_METRICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace svard::obs {

enum class MetricKind : uint8_t
{
    Counter,   ///< monotonic sum across threads
    Gauge,     ///< merged by max across threads (high-water marks)
    Histogram, ///< log2 buckets + count + sum of observed values
};

/** Bucket i of a histogram counts values with bit_width(v) == i. */
constexpr uint32_t kHistogramBuckets = 65;

using MetricId = uint32_t;

/** One merged metric in a snapshot. */
struct MetricValue
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    uint64_t value = 0; ///< counter sum / gauge max / histogram count
    uint64_t sum = 0;   ///< histograms: sum of observed values
    std::vector<uint64_t> buckets; ///< histograms only

    /** Approximate mean of observed values (histograms). */
    double mean() const
    {
        return value ? double(sum) / double(value) : 0.0;
    }
};

/** Point-in-time merge of every thread's shard, sorted by name. */
struct Snapshot
{
    std::vector<MetricValue> metrics;

    const MetricValue *find(const std::string &name) const;

    /** Counter/gauge value by name; 0 when absent. */
    uint64_t value(const std::string &name) const;

    /**
     * Render as a JSON object {"name": v, ...}; histograms render as
     * {"count","sum","mean","buckets"} objects. indent > 0 pretty-
     * prints with that many leading spaces per line.
     */
    std::string toJson(int indent = 0) const;
};

/** True when the registry was compiled in (-DSVARD_OBS=ON, default). */
constexpr bool
metricsCompiled()
{
#ifdef SVARD_OBS_OFF
    return false;
#else
    return true;
#endif
}

#ifdef SVARD_OBS_OFF

inline MetricId counter(const std::string &) { return 0; }
inline MetricId gauge(const std::string &) { return 0; }
inline MetricId histogram(const std::string &) { return 0; }
inline void add(MetricId, uint64_t = 1) {}
inline void gaugeMax(MetricId, uint64_t) {}
inline void observe(MetricId, uint64_t) {}
inline bool metricsEnabled() { return false; }
inline void setMetricsEnabled(bool) {}
inline Snapshot snapshot() { return {}; }
inline void resetMetrics() {}

#else

/** Register (or look up) a counter; stable id for the process life. */
MetricId counter(const std::string &name);

/** Register (or look up) a gauge (merged by max across threads). */
MetricId gauge(const std::string &name);

/** Register (or look up) a log2-bucket histogram. */
MetricId histogram(const std::string &name);

/** Add to a counter (hot path; thread-local slot, relaxed order). */
void add(MetricId id, uint64_t delta = 1);

/** Raise a gauge to at least v (per-thread max, merged by max). */
void gaugeMax(MetricId id, uint64_t v);

/** Record one histogram observation (e.g. a latency in µs). */
void observe(MetricId id, uint64_t v);

/** Whether collection is currently on (env/programmatic gate). */
bool metricsEnabled();

/** Turn collection on/off at runtime (overrides SVARD_METRICS). */
void setMetricsEnabled(bool on);

/** Merge every shard into a sorted snapshot (collection keeps going). */
Snapshot snapshot();

/** Zero all shards (tests; not thread-safe vs concurrent writers). */
void resetMetrics();

#endif // SVARD_OBS_OFF

} // namespace svard::obs

#endif // SVARD_OBS_METRICS_H
