#include "obs/manifest.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "fault_inject/fault_inject.h"
#include "obs/json.h"

namespace svard::obs {
namespace {

std::string
quoted(const std::string &s)
{
    return "\"" + json::escape(s) + "\"";
}

uint64_t
u64Field(const json::Value &v, const char *key)
{
    const json::Value *f = v.find(key);
    return f ? f->asU64() : 0;
}

std::string
strField(const json::Value &v, const char *key)
{
    const json::Value *f = v.find(key);
    return f ? f->asString() : std::string();
}

} // namespace

std::string
buildFlagsString()
{
    std::string flags;
    const auto append = [&flags](const char *f) {
        if (!flags.empty())
            flags += ",";
        flags += f;
    };
#ifdef NDEBUG
    append("ndebug");
#endif
#ifndef SVARD_SIMD_OFF
    append("simd");
#endif
#ifndef SVARD_OBS_OFF
    append("obs");
#endif
#if defined(__SANITIZE_ADDRESS__)
    append("asan");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    append("asan");
#endif
#endif
    if (flags.empty())
        flags = "debug";
    return flags;
}

bool
writeManifest(const std::string &path, const RunManifest &m,
              const Snapshot &metrics)
{
    // Atomic publish: write the whole document to a sibling tmp file
    // and rename over the target. A kill anywhere in between leaves
    // the previous manifest (or no manifest), never a torn JSON that
    // a fleet coordinator would choke on next to a valid result.
    const std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("manifest: cannot open '" + tmp + "' for writing");
        return false;
    }
    const int64_t tsMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::string geoms = "[";
    for (size_t i = 0; i < m.geometries.size(); ++i) {
        if (i)
            geoms += ", ";
        geoms += quoted(m.geometries[i]);
    }
    geoms += "]";
    std::string drifts = "[";
    for (size_t i = 0; i < m.driftPolicies.size(); ++i) {
        if (i)
            drifts += ", ";
        drifts += quoted(m.driftPolicies[i]);
    }
    drifts += "]";
    std::string workers;
    if (!m.fabricWorkers.empty()) {
        workers = "  \"fabric_workers\": [\n";
        for (size_t i = 0; i < m.fabricWorkers.size(); ++i) {
            const FabricWorkerStats &w = m.fabricWorkers[i];
            workers +=
                "    {\"id\": " + quoted(w.id) +
                ", \"ranges_claimed\": " +
                std::to_string(w.rangesClaimed) +
                ", \"cells_executed\": " +
                std::to_string(w.cellsExecuted) +
                ", \"ranges_reclaimed\": " +
                std::to_string(w.rangesReclaimed) +
                ", \"ranges_lost\": " + std::to_string(w.rangesLost) +
                "}" + (i + 1 < m.fabricWorkers.size() ? "," : "") +
                "\n";
        }
        workers += "  ],\n";
    }
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"%s\",\n"
                 "  \"kind\": %s,\n"
                 "  \"created_unix_ms\": %lld,\n"
                 "  \"geometries\": %s,\n"
                 "  \"spec_fingerprint\": %llu,\n"
                 "  \"base_seed\": %llu,\n"
                 "  \"threads\": %u,\n"
                 "  \"requests_per_core\": %llu,\n"
                 "  \"simd_impl\": %s,\n"
                 "  \"build_flags\": %s,\n"
                 "  \"wall_s\": %s,\n"
                 "  \"cells_total\": %llu,\n"
                 "  \"cells_executed\": %llu,\n"
                 "  \"cells_cached\": %llu,\n"
                 "  \"baselines_executed\": %llu,\n"
                 "  \"baselines_cached\": %llu,\n"
                 "  \"sink_queue_high_water\": %llu,\n"
                 "  \"out_path\": %s,\n"
                 "  \"cache_path\": %s,\n"
                 "  \"interrupted\": %s,\n"
                 "  \"drift_policies\": %s,\n"
                 "  \"escapes\": %llu,\n"
                 "  \"recalibrations\": %llu,\n"
                 "%s"
                 "  \"metrics\": %s\n"
                 "}\n",
                 kManifestSchema, quoted(m.kind).c_str(),
                 static_cast<long long>(tsMs), geoms.c_str(),
                 static_cast<unsigned long long>(m.specFingerprint),
                 static_cast<unsigned long long>(m.baseSeed), m.threads,
                 static_cast<unsigned long long>(m.requestsPerCore),
                 quoted(m.simdImpl).c_str(),
                 quoted(m.buildFlags).c_str(),
                 json::formatNumber(m.wallSeconds).c_str(),
                 static_cast<unsigned long long>(m.cellsTotal),
                 static_cast<unsigned long long>(m.cellsExecuted),
                 static_cast<unsigned long long>(m.cellsCached),
                 static_cast<unsigned long long>(m.baselinesExecuted),
                 static_cast<unsigned long long>(m.baselinesCached),
                 static_cast<unsigned long long>(m.sinkQueueHighWater),
                 quoted(m.outPath).c_str(), quoted(m.cachePath).c_str(),
                 m.interrupted ? "true" : "false", drifts.c_str(),
                 static_cast<unsigned long long>(m.escapes),
                 static_cast<unsigned long long>(m.recalibrations),
                 workers.c_str(), metrics.toJson(4).c_str());
    bool ok = std::fflush(f) == 0 && !std::ferror(f);
    std::fclose(f);
    if (faults::check("manifest.write"))
        ok = false; // injected failure between write and publish
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("manifest: cannot publish '" + path + "'");
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readManifest(const std::string &path, RunManifest *out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        if (err)
            *err = "cannot read " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    json::Value doc;
    if (!json::Value::parse(buf.str(), &doc, err))
        return false;
    if (strField(doc, "schema") != kManifestSchema) {
        if (err)
            *err = "unexpected manifest schema '" +
                   strField(doc, "schema") + "'";
        return false;
    }
    out->kind = strField(doc, "kind");
    out->geometries.clear();
    if (const json::Value *g = doc.find("geometries"))
        for (const json::Value &item : g->items())
            out->geometries.push_back(item.asString());
    out->specFingerprint = u64Field(doc, "spec_fingerprint");
    out->baseSeed = u64Field(doc, "base_seed");
    out->threads = static_cast<uint32_t>(u64Field(doc, "threads"));
    out->requestsPerCore = u64Field(doc, "requests_per_core");
    out->simdImpl = strField(doc, "simd_impl");
    out->buildFlags = strField(doc, "build_flags");
    if (const json::Value *w = doc.find("wall_s"))
        out->wallSeconds = w->asNumber();
    out->cellsTotal = u64Field(doc, "cells_total");
    out->cellsExecuted = u64Field(doc, "cells_executed");
    out->cellsCached = u64Field(doc, "cells_cached");
    out->baselinesExecuted = u64Field(doc, "baselines_executed");
    out->baselinesCached = u64Field(doc, "baselines_cached");
    out->sinkQueueHighWater = u64Field(doc, "sink_queue_high_water");
    out->outPath = strField(doc, "out_path");
    out->cachePath = strField(doc, "cache_path");
    if (const json::Value *i = doc.find("interrupted"))
        out->interrupted = i->asBool();
    out->driftPolicies.clear();
    if (const json::Value *d = doc.find("drift_policies"))
        for (const json::Value &item : d->items())
            out->driftPolicies.push_back(item.asString());
    out->escapes = u64Field(doc, "escapes");
    out->recalibrations = u64Field(doc, "recalibrations");
    out->fabricWorkers.clear();
    if (const json::Value *ws = doc.find("fabric_workers"))
        for (const json::Value &item : ws->items()) {
            FabricWorkerStats w;
            w.id = strField(item, "id");
            w.rangesClaimed = u64Field(item, "ranges_claimed");
            w.cellsExecuted = u64Field(item, "cells_executed");
            w.rangesReclaimed = u64Field(item, "ranges_reclaimed");
            w.rangesLost = u64Field(item, "ranges_lost");
            out->fabricWorkers.push_back(std::move(w));
        }
    return true;
}

} // namespace svard::obs
