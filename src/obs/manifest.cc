#include "obs/manifest.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.h"
#include "obs/json.h"

namespace svard::obs {
namespace {

std::string
quoted(const std::string &s)
{
    return "\"" + json::escape(s) + "\"";
}

uint64_t
u64Field(const json::Value &v, const char *key)
{
    const json::Value *f = v.find(key);
    return f ? f->asU64() : 0;
}

std::string
strField(const json::Value &v, const char *key)
{
    const json::Value *f = v.find(key);
    return f ? f->asString() : std::string();
}

} // namespace

std::string
buildFlagsString()
{
    std::string flags;
    const auto append = [&flags](const char *f) {
        if (!flags.empty())
            flags += ",";
        flags += f;
    };
#ifdef NDEBUG
    append("ndebug");
#endif
#ifndef SVARD_SIMD_OFF
    append("simd");
#endif
#ifndef SVARD_OBS_OFF
    append("obs");
#endif
#if defined(__SANITIZE_ADDRESS__)
    append("asan");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    append("asan");
#endif
#endif
    if (flags.empty())
        flags = "debug";
    return flags;
}

bool
writeManifest(const std::string &path, const RunManifest &m,
              const Snapshot &metrics)
{
    FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("manifest: cannot open '" + path + "' for writing");
        return false;
    }
    const int64_t tsMs =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    std::string geoms = "[";
    for (size_t i = 0; i < m.geometries.size(); ++i) {
        if (i)
            geoms += ", ";
        geoms += quoted(m.geometries[i]);
    }
    geoms += "]";
    std::fprintf(f,
                 "{\n"
                 "  \"schema\": \"%s\",\n"
                 "  \"kind\": %s,\n"
                 "  \"created_unix_ms\": %lld,\n"
                 "  \"geometries\": %s,\n"
                 "  \"spec_fingerprint\": %llu,\n"
                 "  \"base_seed\": %llu,\n"
                 "  \"threads\": %u,\n"
                 "  \"requests_per_core\": %llu,\n"
                 "  \"simd_impl\": %s,\n"
                 "  \"build_flags\": %s,\n"
                 "  \"wall_s\": %s,\n"
                 "  \"cells_total\": %llu,\n"
                 "  \"cells_executed\": %llu,\n"
                 "  \"cells_cached\": %llu,\n"
                 "  \"baselines_executed\": %llu,\n"
                 "  \"baselines_cached\": %llu,\n"
                 "  \"sink_queue_high_water\": %llu,\n"
                 "  \"out_path\": %s,\n"
                 "  \"cache_path\": %s,\n"
                 "  \"metrics\": %s\n"
                 "}\n",
                 kManifestSchema, quoted(m.kind).c_str(),
                 static_cast<long long>(tsMs), geoms.c_str(),
                 static_cast<unsigned long long>(m.specFingerprint),
                 static_cast<unsigned long long>(m.baseSeed), m.threads,
                 static_cast<unsigned long long>(m.requestsPerCore),
                 quoted(m.simdImpl).c_str(),
                 quoted(m.buildFlags).c_str(),
                 json::formatNumber(m.wallSeconds).c_str(),
                 static_cast<unsigned long long>(m.cellsTotal),
                 static_cast<unsigned long long>(m.cellsExecuted),
                 static_cast<unsigned long long>(m.cellsCached),
                 static_cast<unsigned long long>(m.baselinesExecuted),
                 static_cast<unsigned long long>(m.baselinesCached),
                 static_cast<unsigned long long>(m.sinkQueueHighWater),
                 quoted(m.outPath).c_str(), quoted(m.cachePath).c_str(),
                 metrics.toJson(4).c_str());
    std::fclose(f);
    return true;
}

bool
readManifest(const std::string &path, RunManifest *out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
        if (err)
            *err = "cannot read " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    json::Value doc;
    if (!json::Value::parse(buf.str(), &doc, err))
        return false;
    if (strField(doc, "schema") != kManifestSchema) {
        if (err)
            *err = "unexpected manifest schema '" +
                   strField(doc, "schema") + "'";
        return false;
    }
    out->kind = strField(doc, "kind");
    out->geometries.clear();
    if (const json::Value *g = doc.find("geometries"))
        for (const json::Value &item : g->items())
            out->geometries.push_back(item.asString());
    out->specFingerprint = u64Field(doc, "spec_fingerprint");
    out->baseSeed = u64Field(doc, "base_seed");
    out->threads = static_cast<uint32_t>(u64Field(doc, "threads"));
    out->requestsPerCore = u64Field(doc, "requests_per_core");
    out->simdImpl = strField(doc, "simd_impl");
    out->buildFlags = strField(doc, "build_flags");
    if (const json::Value *w = doc.find("wall_s"))
        out->wallSeconds = w->asNumber();
    out->cellsTotal = u64Field(doc, "cells_total");
    out->cellsExecuted = u64Field(doc, "cells_executed");
    out->cellsCached = u64Field(doc, "cells_cached");
    out->baselinesExecuted = u64Field(doc, "baselines_executed");
    out->baselinesCached = u64Field(doc, "baselines_cached");
    out->sinkQueueHighWater = u64Field(doc, "sink_queue_high_water");
    out->outPath = strField(doc, "out_path");
    out->cachePath = strField(doc, "cache_path");
    return true;
}

} // namespace svard::obs
