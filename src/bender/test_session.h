/**
 * @file
 * DRAM-Bender-style programmable test session.
 *
 * On the real infrastructure, test programs are sequences of DRAM
 * commands (ACT/PRE/RD/WR/WAIT) executed by an FPGA against the module
 * under test with periodic refresh disabled. TestSession reproduces
 * that command-level interface against the behavioral DramDevice: it
 * owns the test clock, advances it per DDR4 timing, never issues
 * refresh, and tracks whether a test program exceeded the refresh
 * window (the paper's methodology bounds every test inside tREFW to
 * keep retention failures from polluting read-disturbance results).
 */
#ifndef SVARD_BENDER_TEST_SESSION_H
#define SVARD_BENDER_TEST_SESSION_H

#include <cstdint>
#include <utility>
#include <vector>

#include "dram/device.h"
#include "fault/patterns.h"

namespace svard::bender {

/** Result of one measure_BER invocation (Alg. 1). */
struct BerMeasurement
{
    uint64_t flippedBits = 0;  ///< bits differing from the written data
    uint64_t totalBits = 0;    ///< bits checked
    double
    ber() const
    {
        return totalBits == 0
                   ? 0.0
                   : static_cast<double>(flippedBits) /
                         static_cast<double>(totalBits);
    }
};

/**
 * Command-level test session over a DramDevice (see file header).
 * All row addresses are logical (interface) addresses.
 */
class TestSession
{
  public:
    explicit TestSession(dram::DramDevice &device);

    // ------------------------------------------------------------
    // Raw command interface (explicit timing)
    // ------------------------------------------------------------

    /** Issue ACT and advance the clock by tRCD. */
    void act(uint32_t bank, uint32_t row);

    /** Issue PRE and advance the clock by tRP. */
    void pre(uint32_t bank);

    /** Advance the test clock. */
    void wait(dram::Tick duration);

    /** Current test-program time (ps since the last resetClock). */
    dram::Tick now() const { return now_; }

    /** Restart the test-program clock (a new test program). */
    void resetClock();

    /**
     * True if the current test program has run longer than the
     * module's refresh window (retention failures would interfere on
     * real hardware; the paper's methodology avoids this).
     */
    bool refreshWindowExceeded() const;

    /** Number of test programs that overran the refresh window. */
    uint64_t overruns() const { return overruns_; }

    // ------------------------------------------------------------
    // Composite operations used by the characterization (Alg. 1)
    // ------------------------------------------------------------

    /** ACT + full-row WR of a repeating fill byte + PRE. */
    void initRow(uint32_t bank, uint32_t row, uint8_t fill);

    /**
     * Double-sided hammer (Alg. 1 hammer_doublesided): `count`
     * alternating activation pairs of the two aggressor rows, each
     * kept open for t_agg_on.
     */
    void hammerDoubleSided(uint32_t bank, uint32_t aggr_low,
                           uint32_t aggr_high, uint64_t count,
                           dram::Tick t_agg_on);

    /** Single-sided hammer: `count` activations of one aggressor row. */
    void hammerSingleSided(uint32_t bank, uint32_t aggr, uint64_t count,
                           dram::Tick t_agg_on);

    /** ACT + read-back + PRE; counts bits differing from `expected`. */
    BerMeasurement readAndCompare(uint32_t bank, uint32_t row,
                                  uint8_t expected);

    /**
     * Alg. 1 measure_BER: initialize victim and both aggressors with
     * the pattern's fills (Table 2), hammer double-sided, read the
     * victim back and compare. Aggressor rows are the physical
     * neighbors of the victim expressed as logical addresses (the
     * caller typically obtains them via aggressorRowsOf()).
     */
    BerMeasurement measureBer(uint32_t bank, uint32_t victim,
                              uint32_t aggr_low, uint32_t aggr_high,
                              fault::DataPattern dp, uint64_t hammer_count,
                              dram::Tick t_agg_on);

    /**
     * measure_BER for an arbitrary aggressor set: subarray-edge victims
     * have a single aggressor (hammered single-sided at the same
     * per-aggressor activation count), interior victims two.
     */
    BerMeasurement measureBer(uint32_t bank, uint32_t victim,
                              const std::vector<uint32_t> &aggressors,
                              fault::DataPattern dp, uint64_t hammer_count,
                              dram::Tick t_agg_on);

    /**
     * Logical addresses of the rows physically adjacent to `row`
     * (reverse-engineered adjacency on real hardware; derived from the
     * device's mapping here). Rows at subarray edges have one
     * neighbor; others have two (low, high order).
     */
    std::vector<uint32_t> aggressorRowsOf(uint32_t row) const;

    dram::DramDevice &device() { return device_; }
    const dram::TimingParams &timing() const { return timing_; }

    /** Total ACT commands issued by this session. */
    uint64_t actsIssued() const { return acts_; }

  private:
    dram::DramDevice &device_;
    dram::TimingParams timing_;
    dram::Tick now_ = 0;
    dram::Tick programStart_ = 0;
    uint64_t acts_ = 0;
    uint64_t overruns_ = 0;
    bool overrunLatched_ = false;
};

} // namespace svard::bender

#endif // SVARD_BENDER_TEST_SESSION_H
