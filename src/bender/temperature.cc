#include "bender/temperature.h"

#include <algorithm>
#include <cmath>

namespace svard::bender {

TemperatureController::TemperatureController(double target_c,
                                             double ambient_c,
                                             uint64_t seed)
    : target_(target_c), ambient_(ambient_c), plant_(ambient_c),
      rng_(seed)
{}

void
TemperatureController::step(double dt_s)
{
    // PID on the temperature error drives the heater duty cycle.
    const double err = target_ - plant_;
    const double deriv = (err - prevErr_) / std::max(dt_s, 1e-6);
    prevErr_ = err;
    const double kp = 1.20, ki = 0.06, kd = 0.10;
    // Anti-windup by conditional integration: while the heater is
    // saturated and the error would push it further into saturation,
    // freeze the integral. Without this, a downward setpoint change
    // winds the integral to its negative clamp during the long
    // heater-off cooldown, and the plant then undershoots the new
    // target by several degrees before the integral recovers.
    const double next_integral =
        std::clamp(integral_ + err * dt_s, -50.0, 50.0);
    const double u = kp * err + ki * next_integral + kd * deriv;
    if (!((u > 1.0 && err > 0.0) || (u < 0.0 && err < 0.0)))
        integral_ = next_integral;
    heater_ = std::clamp(kp * err + ki * integral_ + kd * deriv, 0.0, 1.0);

    // First-order plant: heater power vs. loss to ambient, plus a
    // small disturbance term (airflow, chip self-heating).
    const double heat_rate = 4.0;       // C/s at full drive
    const double loss_coeff = 0.02;     // 1/s toward ambient
    const double disturbance = rng_.normal(0.0, 0.03);
    plant_ += dt_s * (heat_rate * heater_ -
                      loss_coeff * (plant_ - ambient_) + disturbance);
}

void
TemperatureController::settle()
{
    for (int i = 0; i < 4000 && !(stable() && std::abs(prevErr_) < 0.3);
         ++i)
        step(0.25);
}

double
TemperatureController::sensorReading()
{
    return plant_ + rng_.normal(0.0, 0.05);
}

} // namespace svard::bender
