/**
 * @file
 * Model of the testing rig's thermal control loop: heater pads pressed
 * against the DRAM chips, a thermocouple, and a PID controller holding
 * the chips at a target temperature with +-0.5 C precision (paper
 * Sec. 4.1). The characterization harness uses it to reproduce the
 * paper's temperature-stability methodology check (footnote 4).
 */
#ifndef SVARD_BENDER_TEMPERATURE_H
#define SVARD_BENDER_TEMPERATURE_H

#include "common/rng.h"
#include "dram/types.h"

namespace svard::bender {

/**
 * Discrete-time PID temperature controller around a first-order
 * thermal plant. Advance with step(); the controller converges to the
 * target and then holds it within the rig's published error margins.
 */
class TemperatureController
{
  public:
    /**
     * @param target_c target temperature in Celsius
     * @param ambient_c ambient temperature the plant relaxes toward
     * @param seed for sensor noise
     */
    TemperatureController(double target_c, double ambient_c = 25.0,
                          uint64_t seed = 7);

    /** Change the setpoint. Re-bases the derivative term on the new
     *  error so the first step after a retarget sees no derivative
     *  kick from the setpoint jump (only plant motion). */
    void
    setTarget(double target_c)
    {
        target_ = target_c;
        prevErr_ = target_ - plant_;
    }
    double target() const { return target_; }

    /** Advance the control loop by dt seconds. */
    void step(double dt_s);

    /** Run the loop until the plant settles at the target. */
    void settle();

    /** Current chip temperature (true plant state), Celsius. */
    double temperature() const { return plant_; }

    /** Thermocouple reading: plant + bounded sensor noise. */
    double sensorReading();

    /** True when within the rig's +-0.5 C holding precision. */
    bool
    stable() const
    {
        const double err = plant_ - target_;
        return err > -0.5 && err < 0.5;
    }

  private:
    double target_;
    double ambient_;
    double plant_;       ///< chip temperature (C)
    double heater_ = 0.0;///< heater drive in [0, 1]
    double integral_ = 0.0;
    double prevErr_ = 0.0;
    Rng rng_;
};

} // namespace svard::bender

#endif // SVARD_BENDER_TEMPERATURE_H
