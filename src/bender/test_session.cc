#include "bender/test_session.h"

#include <algorithm>

#include "common/log.h"

namespace svard::bender {

TestSession::TestSession(dram::DramDevice &device)
    : device_(device), timing_(device.timing())
{}

void
TestSession::act(uint32_t bank, uint32_t row)
{
    device_.activate(bank, row, now_);
    ++acts_;
    now_ += timing_.tRCD;
}

void
TestSession::pre(uint32_t bank)
{
    device_.precharge(bank, now_);
    now_ += timing_.tRP;
}

void
TestSession::wait(dram::Tick duration)
{
    SVARD_ASSERT(duration >= 0, "negative wait");
    now_ += duration;
}

void
TestSession::resetClock()
{
    programStart_ = now_;
    overrunLatched_ = false;
}

bool
TestSession::refreshWindowExceeded() const
{
    return now_ - programStart_ > timing_.tREFW;
}

void
TestSession::initRow(uint32_t bank, uint32_t row, uint8_t fill)
{
    act(bank, row);
    device_.writeRowFill(bank, row, fill);
    // Streaming the full row out of the write queue: one burst per
    // 64B cache line.
    const uint32_t lines = device_.spec().rowBytes / 64;
    wait(timing_.tBL * lines);
    pre(bank);
}

void
TestSession::hammerDoubleSided(uint32_t bank, uint32_t aggr_low,
                               uint32_t aggr_high, uint64_t count,
                               dram::Tick t_agg_on)
{
    // Alg. 1 hammer_doublesided: one "hammer" is one activation of
    // each aggressor, each held open for t_agg_on. Uses the device's
    // bulk path; equivalent to the alternating per-command loop.
    const dram::Tick t_on = std::max(t_agg_on, timing_.tRAS);
    device_.hammer(bank, aggr_high, count, t_on, now_);
    device_.hammer(bank, aggr_low, count, t_on, now_);
    now_ += 2 * static_cast<dram::Tick>(count) * (t_on + timing_.tRP);
    acts_ += 2 * count;
    if (refreshWindowExceeded() && !overrunLatched_) {
        overrunLatched_ = true;
        ++overruns_;
    }
}

void
TestSession::hammerSingleSided(uint32_t bank, uint32_t aggr,
                               uint64_t count, dram::Tick t_agg_on)
{
    const dram::Tick t_on = std::max(t_agg_on, timing_.tRAS);
    device_.hammer(bank, aggr, count, t_on, now_);
    now_ += static_cast<dram::Tick>(count) * (t_on + timing_.tRP);
    acts_ += count;
    if (refreshWindowExceeded() && !overrunLatched_) {
        overrunLatched_ = true;
        ++overruns_;
    }
}

BerMeasurement
TestSession::readAndCompare(uint32_t bank, uint32_t row, uint8_t expected)
{
    act(bank, row);
    BerMeasurement m;
    m.flippedBits = device_.countMismatchedBits(bank, row, expected);
    m.totalBits = device_.spec().rowBytes * 8ull;
    const uint32_t lines = device_.spec().rowBytes / 64;
    wait(timing_.tBL * lines);
    pre(bank);
    return m;
}

BerMeasurement
TestSession::measureBer(uint32_t bank, uint32_t victim,
                        uint32_t aggr_low, uint32_t aggr_high,
                        fault::DataPattern dp, uint64_t hammer_count,
                        dram::Tick t_agg_on)
{
    return measureBer(bank, victim,
                      std::vector<uint32_t>{aggr_low, aggr_high}, dp,
                      hammer_count, t_agg_on);
}

BerMeasurement
TestSession::measureBer(uint32_t bank, uint32_t victim,
                        const std::vector<uint32_t> &aggressors,
                        fault::DataPattern dp, uint64_t hammer_count,
                        dram::Tick t_agg_on)
{
    SVARD_ASSERT(!aggressors.empty(), "measureBer needs aggressors");
    resetClock();
    initRow(bank, victim, fault::victimFill(dp));
    for (uint32_t a : aggressors)
        initRow(bank, a, fault::aggressorFill(dp));
    const dram::Tick t_on = std::max(t_agg_on, timing_.tRAS);
    for (uint32_t a : aggressors) {
        device_.hammer(bank, a, hammer_count, t_on, now_);
        now_ += static_cast<dram::Tick>(hammer_count) *
                (t_on + timing_.tRP);
        acts_ += hammer_count;
    }
    if (refreshWindowExceeded() && !overrunLatched_) {
        overrunLatched_ = true;
        ++overruns_;
    }
    return readAndCompare(bank, victim, fault::victimFill(dp));
}

std::vector<uint32_t>
TestSession::aggressorRowsOf(uint32_t row) const
{
    const uint32_t phys = device_.mapping().toPhysical(row);
    std::vector<uint32_t> out;
    for (uint32_t n : device_.subarrays().disturbedNeighbors(phys))
        out.push_back(device_.mapping().toLogical(n));
    return out;
}

} // namespace svard::bender
