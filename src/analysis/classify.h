/**
 * @file
 * Multi-class confusion matrix and F1 scores, plus the single-bit
 * feature predictor used by the spatial-feature correlation analysis
 * (paper Sec. 5.4.2, Fig. 9, Table 3): each binary spatial feature
 * predicts a row's quantized HC_first class; the feature's F1 score
 * measures how well it explains the class.
 */
#ifndef SVARD_ANALYSIS_CLASSIFY_H
#define SVARD_ANALYSIS_CLASSIFY_H

#include <cstdint>
#include <map>
#include <vector>

namespace svard::analysis {

/** Confusion matrix over arbitrary integer class labels. */
class ConfusionMatrix
{
  public:
    /** Record one (actual, predicted) observation. */
    void add(int64_t actual, int64_t predicted);

    /** Precision of one class: TP / (TP + FP); 0 if never predicted. */
    double precision(int64_t cls) const;

    /** Recall of one class: TP / (TP + FN); 0 if class absent. */
    double recall(int64_t cls) const;

    /** Per-class F1 = harmonic mean of precision and recall. */
    double f1(int64_t cls) const;

    /**
     * Support-weighted average F1 across classes (the standard
     * "weighted F1"), which is what the paper's per-feature score is.
     */
    double weightedF1() const;

    /** All class labels seen as actuals. */
    std::vector<int64_t> classes() const;

    uint64_t total() const { return total_; }

  private:
    // cells_[{actual, predicted}] = count
    std::map<std::pair<int64_t, int64_t>, uint64_t> cells_;
    std::map<int64_t, uint64_t> actualCounts_;
    std::map<int64_t, uint64_t> predictedCounts_;
    uint64_t total_ = 0;
};

/**
 * F1 score of predicting `classes[i]` from the binary `feature[i]`:
 * the predictor maps each feature value (0/1) to the majority class
 * among rows with that value, then the weighted F1 of that prediction
 * is returned. A feature uncorrelated with the class degenerates to a
 * majority-class predictor; a perfectly separating feature scores 1.
 */
double binaryFeatureF1(const std::vector<uint8_t> &feature,
                       const std::vector<int64_t> &classes);

} // namespace svard::analysis

#endif // SVARD_ANALYSIS_CLASSIFY_H
