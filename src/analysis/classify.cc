#include "analysis/classify.h"

#include "common/log.h"

namespace svard::analysis {

void
ConfusionMatrix::add(int64_t actual, int64_t predicted)
{
    ++cells_[{actual, predicted}];
    ++actualCounts_[actual];
    ++predictedCounts_[predicted];
    ++total_;
}

double
ConfusionMatrix::precision(int64_t cls) const
{
    auto pit = predictedCounts_.find(cls);
    if (pit == predictedCounts_.end() || pit->second == 0)
        return 0.0;
    auto cit = cells_.find({cls, cls});
    const uint64_t tp = cit == cells_.end() ? 0 : cit->second;
    return static_cast<double>(tp) / static_cast<double>(pit->second);
}

double
ConfusionMatrix::recall(int64_t cls) const
{
    auto ait = actualCounts_.find(cls);
    if (ait == actualCounts_.end() || ait->second == 0)
        return 0.0;
    auto cit = cells_.find({cls, cls});
    const uint64_t tp = cit == cells_.end() ? 0 : cit->second;
    return static_cast<double>(tp) / static_cast<double>(ait->second);
}

double
ConfusionMatrix::f1(int64_t cls) const
{
    const double p = precision(cls);
    const double r = recall(cls);
    if (p + r == 0.0)
        return 0.0;
    return 2.0 * p * r / (p + r);
}

double
ConfusionMatrix::weightedF1() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[cls, count] : actualCounts_)
        acc += f1(cls) * static_cast<double>(count);
    return acc / static_cast<double>(total_);
}

std::vector<int64_t>
ConfusionMatrix::classes() const
{
    std::vector<int64_t> out;
    out.reserve(actualCounts_.size());
    for (const auto &[cls, count] : actualCounts_)
        out.push_back(cls);
    return out;
}

double
binaryFeatureF1(const std::vector<uint8_t> &feature,
                const std::vector<int64_t> &classes)
{
    SVARD_ASSERT(feature.size() == classes.size(),
                 "feature/class size mismatch");
    if (feature.empty())
        return 0.0;

    // Majority class per feature value.
    std::map<int64_t, uint64_t> hist[2];
    for (size_t i = 0; i < feature.size(); ++i)
        ++hist[feature[i] ? 1 : 0][classes[i]];
    int64_t majority[2] = {0, 0};
    for (int v = 0; v < 2; ++v) {
        uint64_t best = 0;
        for (const auto &[cls, count] : hist[v]) {
            if (count > best) {
                best = count;
                majority[v] = cls;
            }
        }
        if (hist[v].empty() && !hist[1 - v].empty()) {
            // Feature value never occurs: inherit the other side's
            // majority so the predictor is total.
            for (const auto &[cls, count] : hist[1 - v])
                if (count > best) {
                    best = count;
                    majority[v] = cls;
                }
        }
    }

    ConfusionMatrix cm;
    for (size_t i = 0; i < feature.size(); ++i)
        cm.add(classes[i], majority[feature[i] ? 1 : 0]);
    return cm.weightedF1();
}

} // namespace svard::analysis
