/**
 * @file
 * k-means clustering (k-means++ initialization, Lloyd iterations) and
 * the silhouette score, as used by the subarray reverse-engineering
 * methodology (paper Sec. 5.4.1, Fig. 8).
 */
#ifndef SVARD_ANALYSIS_KMEANS_H
#define SVARD_ANALYSIS_KMEANS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace svard::analysis {

/** A point in a small fixed-dimensional feature space. */
using Point = std::vector<double>;

/** Result of one k-means run. */
struct KMeansResult
{
    std::vector<Point> centroids;     ///< k cluster centers
    std::vector<uint32_t> assignment; ///< cluster index per input point
    double inertia = 0.0;             ///< sum of squared distances
    int iterations = 0;               ///< Lloyd iterations executed
};

/**
 * Run k-means with k-means++ seeding.
 *
 * @param points input points (all must share one dimensionality)
 * @param k number of clusters (1 <= k <= points.size())
 * @param seed RNG seed for the ++ initialization
 * @param max_iters Lloyd iteration cap
 */
KMeansResult kMeans(const std::vector<Point> &points, uint32_t k,
                    uint64_t seed = 1, int max_iters = 60);

/**
 * Mean silhouette coefficient of a clustering, in [-1, 1]; higher
 * means better-separated clusters. Computed on a uniform subsample of
 * at most `max_samples` points (exact silhouette is O(n^2)).
 * Returns 0 for degenerate clusterings (k < 2 effective clusters).
 */
double silhouetteScore(const std::vector<Point> &points,
                       const std::vector<uint32_t> &assignment,
                       uint32_t k, size_t max_samples = 2048,
                       uint64_t seed = 1);

} // namespace svard::analysis

#endif // SVARD_ANALYSIS_KMEANS_H
