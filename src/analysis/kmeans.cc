#include "analysis/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"
#include "common/rng.h"

namespace svard::analysis {

namespace {

double
sqDist(const Point &a, const Point &b)
{
    double acc = 0.0;
    for (size_t d = 0; d < a.size(); ++d) {
        const double diff = a[d] - b[d];
        acc += diff * diff;
    }
    return acc;
}

} // anonymous namespace

KMeansResult
kMeans(const std::vector<Point> &points, uint32_t k, uint64_t seed,
       int max_iters)
{
    SVARD_ASSERT(!points.empty(), "k-means on empty input");
    SVARD_ASSERT(k >= 1 && k <= points.size(), "invalid k");
    const size_t n = points.size();
    const size_t dim = points[0].size();
    Rng rng(seed);

    KMeansResult res;
    res.assignment.assign(n, 0);

    // k-means++ seeding: first centroid uniform, then proportional to
    // squared distance from the nearest chosen centroid.
    res.centroids.push_back(points[rng.below(n)]);
    std::vector<double> dist2(n, 0.0);
    while (res.centroids.size() < k) {
        double total = 0.0;
        for (size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            for (const auto &c : res.centroids)
                best = std::min(best, sqDist(points[i], c));
            dist2[i] = best;
            total += best;
        }
        size_t pick = 0;
        if (total > 0.0) {
            double target = rng.uniform() * total;
            double acc = 0.0;
            for (size_t i = 0; i < n; ++i) {
                acc += dist2[i];
                if (acc >= target) {
                    pick = i;
                    break;
                }
            }
        } else {
            pick = rng.below(n);
        }
        res.centroids.push_back(points[pick]);
    }

    // Lloyd iterations.
    std::vector<double> sums(k * dim);
    std::vector<uint64_t> counts(k);
    for (int iter = 0; iter < max_iters; ++iter) {
        bool changed = false;
        for (size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            uint32_t best_c = 0;
            for (uint32_t c = 0; c < k; ++c) {
                const double d = sqDist(points[i], res.centroids[c]);
                if (d < best) {
                    best = d;
                    best_c = c;
                }
            }
            if (res.assignment[i] != best_c) {
                res.assignment[i] = best_c;
                changed = true;
            }
        }
        res.iterations = iter + 1;
        if (!changed && iter > 0)
            break;
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), 0);
        for (size_t i = 0; i < n; ++i) {
            const uint32_t c = res.assignment[i];
            ++counts[c];
            for (size_t d = 0; d < dim; ++d)
                sums[c * dim + d] += points[i][d];
        }
        for (uint32_t c = 0; c < k; ++c) {
            if (counts[c] == 0)
                continue; // empty cluster keeps its previous centroid
            for (size_t d = 0; d < dim; ++d)
                res.centroids[c][d] =
                    sums[c * dim + d] / static_cast<double>(counts[c]);
        }
    }

    res.inertia = 0.0;
    for (size_t i = 0; i < n; ++i)
        res.inertia += sqDist(points[i], res.centroids[res.assignment[i]]);
    return res;
}

double
silhouetteScore(const std::vector<Point> &points,
                const std::vector<uint32_t> &assignment, uint32_t k,
                size_t max_samples, uint64_t seed)
{
    SVARD_ASSERT(points.size() == assignment.size(),
                 "silhouette size mismatch");
    const size_t n = points.size();
    if (k < 2 || n < 2)
        return 0.0;

    // Subsample evaluation points; distances are still measured
    // against the full clustering via per-cluster mean distances.
    std::vector<size_t> samples;
    if (n <= max_samples) {
        samples.resize(n);
        for (size_t i = 0; i < n; ++i)
            samples[i] = i;
    } else {
        Rng rng(seed);
        samples.reserve(max_samples);
        const double stride = static_cast<double>(n) /
                              static_cast<double>(max_samples);
        for (size_t s = 0; s < max_samples; ++s) {
            const size_t base = static_cast<size_t>(s * stride);
            const size_t jitter = rng.below(std::max<size_t>(
                1, static_cast<size_t>(stride)));
            samples.push_back(std::min(base + jitter, n - 1));
        }
    }

    // Pre-bucket point indices by cluster, subsampled per cluster to
    // bound the pairwise cost.
    std::vector<std::vector<size_t>> members(k);
    for (size_t i = 0; i < n; ++i)
        members[assignment[i]].push_back(i);
    constexpr size_t kPerClusterCap = 256;
    Rng crng(seed ^ 0x51C0ULL);
    for (auto &m : members) {
        if (m.size() > kPerClusterCap) {
            for (size_t i = 0; i < kPerClusterCap; ++i)
                std::swap(m[i], m[i + crng.below(m.size() - i)]);
            m.resize(kPerClusterCap);
        }
    }

    uint32_t nonempty = 0;
    for (const auto &m : members)
        if (!m.empty())
            ++nonempty;
    if (nonempty < 2)
        return 0.0;

    double total = 0.0;
    size_t counted = 0;
    auto sq = [&](size_t a, size_t b) { return sqDist(points[a],
                                                      points[b]); };
    for (size_t i : samples) {
        const uint32_t own = assignment[i];
        if (members[own].size() < 2)
            continue;
        // a(i): mean distance to own cluster.
        double a_sum = 0.0;
        size_t a_cnt = 0;
        for (size_t j : members[own]) {
            if (j == i)
                continue;
            a_sum += std::sqrt(sq(i, j));
            ++a_cnt;
        }
        if (a_cnt == 0)
            continue;
        const double a = a_sum / static_cast<double>(a_cnt);
        // b(i): smallest mean distance to another cluster.
        double b = std::numeric_limits<double>::max();
        for (uint32_t c = 0; c < k; ++c) {
            if (c == own || members[c].empty())
                continue;
            double s = 0.0;
            for (size_t j : members[c])
                s += std::sqrt(sq(i, j));
            b = std::min(b, s / static_cast<double>(members[c].size()));
        }
        const double denom = std::max(a, b);
        if (denom > 0.0) {
            total += (b - a) / denom;
            ++counted;
        }
    }
    return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

} // namespace svard::analysis
