/**
 * @file
 * The paper's core characterization loop (Alg. 1): per-row worst-case
 * data pattern discovery at 128K hammers, the 14-point hammer-count
 * sweep that yields HC_first, tAggOn sweeps for RowPress, and the
 * bank/row iteration with worst-case-over-iterations recording.
 *
 * Rows are characterized on *isolated per-row workspaces*: each row
 * gets a fresh sibling device (same module spec / subarray map / fault
 * model) whose RNG stream is seeded by hash(module seed, bank, row).
 * That makes every RowResult a pure function of its coordinates —
 * independent of which rows were measured before it and of how many
 * threads the sweep uses — which is what lets characterizeBank /
 * characterizeModule shard rows across the common/parallel.h pool
 * while staying bit-identical at any thread count.
 */
#ifndef SVARD_CHARZ_CHARACTERIZER_H
#define SVARD_CHARZ_CHARACTERIZER_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/vuln_profile.h"
#include "dram/device.h"
#include "fault/patterns.h"

namespace svard::charz {

/** Knobs of the Alg. 1 test loop. */
struct CharzOptions
{
    /** Banks to test: one representative bank per bank group (Sec. 4.3). */
    std::vector<uint32_t> banks = {1, 4, 10, 15};

    /** Test every Nth row of a bank (1 = all rows, as the paper does). */
    uint32_t rowStep = 1;

    /** Extra victim rows to include regardless of rowStep. */
    std::vector<uint32_t> extraRows;

    /** Aggressor on-time (36 ns = max activation rate; Alg. 1). */
    dram::Tick tAggOn = 36 * dram::kPsPerNs;

    /**
     * Test repetitions; the smallest HC_first and largest BER across
     * iterations are recorded (Sec. 4.1, worst-case measure).
     */
    int iterations = 1;

    /**
     * When set, WCDP discovery tests only the two row stripes instead
     * of all six patterns (fast mode; stripes dominate WCDP).
     */
    bool quickWcdp = false;

    /**
     * Worker threads for characterizeBank/characterizeModule (0 =
     * hardware concurrency). Results are bit-identical at any value:
     * every row runs on its own deterministically-seeded workspace.
     */
    unsigned threads = 1;
};

/** Per-victim-row characterization result. */
struct RowResult
{
    uint32_t bank = 0;
    uint32_t logicalRow = 0;
    uint32_t physRow = 0;
    double relativeLocation = 0.0;     ///< physRow / rowsPerBank
    fault::DataPattern wcdp = fault::DataPattern::RowStripe;
    double ber128k = 0.0;              ///< BER at 128K hammers, WCDP
    int64_t hcFirst = 0;               ///< quantized to tested counts
    bool flippedAtMaxCount = false;    ///< any flip observed at 128K
    uint32_t numAggressors = 2;        ///< 1 at subarray edges
};

/**
 * Runs Alg. 1 against a device-under-test through a TestSession.
 * The characterizer never consults the fault model directly — all
 * knowledge comes from DRAM commands and read-back data, exactly as on
 * the real infrastructure.
 */
class Characterizer
{
  public:
    explicit Characterizer(dram::DramDevice &device);

    /**
     * Characterize one victim row (WCDP + HC_first sweep) on an
     * isolated workspace. The result depends only on (module, bank,
     * victim, options) — repeated calls return identical results.
     */
    RowResult characterizeRow(uint32_t bank, uint32_t victim,
                              const CharzOptions &opt);

    /** Characterize a bank per the options' row sampling, sharding
     *  rows over opt.threads workers. */
    std::vector<RowResult> characterizeBank(uint32_t bank,
                                            const CharzOptions &opt);

    /** Full module sweep: all banks in the options, one shared row
     *  pool across banks (better load balance than per-bank batches). */
    std::vector<RowResult> characterizeModule(const CharzOptions &opt);

    /**
     * Total measure_BER invocations issued by this characterizer so
     * far, across all workspaces and threads (perf instrumentation;
     * the HC_first bisection exists to push this down).
     */
    uint64_t berMeasurements() const
    {
        return berMeasurements_.load(std::memory_order_relaxed);
    }

  private:
    /** One (bank, victim) work item of a sharded sweep. */
    struct RowTask
    {
        uint32_t bank;
        uint32_t victim;
    };

    std::vector<RowResult> runTasks(const std::vector<RowTask> &tasks,
                                    const CharzOptions &opt);
    static void collectBankRows(uint32_t bank, uint32_t rows_per_bank,
                                const CharzOptions &opt,
                                std::vector<RowTask> &out);

    dram::DramDevice &device_;
    std::atomic<uint64_t> berMeasurements_{0};
};

/**
 * Build a Svärd vulnerability profile from characterization results.
 * Rows the sweep skipped inherit the bin of the nearest tested row in
 * the same bank (a deployment would characterize every row; subsampled
 * sweeps use this interpolation and stay safe only statistically —
 * fromModel() gives the exact full-characterization profile).
 */
core::VulnProfile buildProfile(const dram::ModuleSpec &spec,
                               const std::vector<RowResult> &results,
                               uint32_t num_bins = 14);

} // namespace svard::charz

#endif // SVARD_CHARZ_CHARACTERIZER_H
