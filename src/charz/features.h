/**
 * @file
 * Spatial-feature correlation analysis (paper Sec. 5.4.2): every bit
 * of a row's bank address, row address, subarray address, and distance
 * to the sense amplifiers is treated as a binary predictor of the
 * row's quantized HC_first; the predictor's weighted F1 score measures
 * the correlation (Fig. 9, Table 3).
 */
#ifndef SVARD_CHARZ_FEATURES_H
#define SVARD_CHARZ_FEATURES_H

#include <vector>

#include "charz/characterizer.h"
#include "dram/module_spec.h"
#include "dram/subarray.h"

namespace svard::charz {

/** F1 score of one spatial-feature bit. */
struct FeatureScore
{
    dram::FeatureEffect::Kind kind;
    int bit;
    double f1;
};

/**
 * Score every spatial-feature bit against the results' HC_first
 * classes. Feature bit widths are derived from the geometry (bank
 * count, rows per bank, subarray count, largest distance).
 */
std::vector<FeatureScore>
spatialFeatureScores(const dram::ModuleSpec &spec,
                     const dram::SubarrayMap &subarrays,
                     const std::vector<RowResult> &results);

/** Fraction of features scoring strictly above an F1 threshold (Fig. 9). */
double fractionAboveF1(const std::vector<FeatureScore> &scores,
                       double threshold);

/** Features above a threshold, strongest first (Table 3). */
std::vector<FeatureScore>
featuresAbove(const std::vector<FeatureScore> &scores, double threshold);

} // namespace svard::charz

#endif // SVARD_CHARZ_FEATURES_H
