/**
 * @file
 * Aging experiment (paper Sec. 5.5, Fig. 10): a module is fully
 * characterized, subjected to 68 days of continuous double-sided
 * hammering at 80 C, and re-characterized; the experiment reports the
 * HC_first transition populations before vs. after aging.
 */
#ifndef SVARD_CHARZ_AGING_H
#define SVARD_CHARZ_AGING_H

#include <cstdint>
#include <map>
#include <utility>

#include "charz/characterizer.h"

namespace svard::charz {

/** Transition populations between quantized HC_first values. */
struct AgingResult
{
    /** count[(before, after)] over all tested rows. */
    std::map<std::pair<int64_t, int64_t>, uint64_t> transitions;

    /** Rows tested per before-aging HC_first (normalization base). */
    std::map<int64_t, uint64_t> beforeTotals;

    /** Fraction of rows at `before` that moved to `after`. */
    double fraction(int64_t before, int64_t after) const;

    /** Fraction of rows at `before` whose HC_first changed at all. */
    double changedFraction(int64_t before) const;
};

/**
 * Run the before/after characterization on one module. The "after"
 * device carries the aged fault model (68-day stress transform); row
 * identity is preserved, so transitions are row-accurate.
 */
AgingResult agingExperiment(const dram::ModuleSpec &spec,
                            const CharzOptions &opt);

} // namespace svard::charz

#endif // SVARD_CHARZ_AGING_H
