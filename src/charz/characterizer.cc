#include "charz/characterizer.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "bender/test_session.h"
#include "common/log.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace svard::charz {

namespace {

// Stream tag of the per-row workspace RNG seeds (the device folds the
// module seed in itself, so a workspace stream is effectively
// hash(module seed, bank, row)).
constexpr uint64_t kRowWorkspaceTag = 0xC4A312ULL;

/**
 * Alg. 1 for one victim row, executed against `session`'s device. The
 * caller hands in a freshly-seeded isolated workspace, so the result
 * is a pure function of (module, bank, victim, options).
 *
 * The HC_first sweep bisects the tested-hammer-count list instead of
 * scanning it linearly: whether a measurement at count c flips is
 * monotone in c (flips appear exactly when c times the data-pattern
 * severity crosses the row's threshold), so the smallest flipping
 * tested count is found in ceil(log2(14)) = 4 measurements instead of
 * up to 14. Rows with no flip at the maximum count skip the sweep
 * entirely — by the same monotonicity no smaller count can flip.
 */
RowResult
characterizeRowOn(bender::TestSession &session, uint32_t bank,
                  uint32_t victim, const CharzOptions &opt,
                  uint64_t &measurements)
{
    auto &device = session.device();
    const auto &labels = dram::testedHammerCounts();
    const int64_t max_hc = labels.back();

    RowResult out;
    out.bank = bank;
    out.logicalRow = victim;
    out.physRow = device.mapping().toPhysical(victim);
    out.relativeLocation =
        static_cast<double>(out.physRow) /
        static_cast<double>(device.spec().rowsPerBank);

    const auto aggressors = session.aggressorRowsOf(victim);
    out.numAggressors = static_cast<uint32_t>(aggressors.size());

    auto measure = [&](fault::DataPattern dp, int64_t hc) {
        ++measurements;
        return session.measureBer(bank, victim, aggressors, dp,
                                  static_cast<uint64_t>(hc),
                                  opt.tAggOn);
    };

    const std::vector<fault::DataPattern> patterns =
        opt.quickWcdp
            ? std::vector<fault::DataPattern>{
                  fault::DataPattern::RowStripe,
                  fault::DataPattern::RowStripeInv,
              }
            : std::vector<fault::DataPattern>(
                  fault::allDataPatterns.begin(),
                  fault::allDataPatterns.end());

    out.hcFirst = max_hc;
    // Index of out.hcFirst in the tested-count list; the recorded
    // worst case can only move left (Sec. 4.1).
    size_t hc_idx = labels.size() - 1;
    for (int iter = 0; iter < std::max(opt.iterations, 1); ++iter) {
        // --- WCDP discovery at the maximum tested hammer count ---
        double best_ber = -1.0;
        fault::DataPattern wcdp = fault::DataPattern::RowStripe;
        for (auto dp : patterns) {
            const auto m = measure(dp, max_hc);
            if (m.ber() > best_ber) {
                best_ber = m.ber();
                wcdp = dp;
            }
        }
        if (best_ber > out.ber128k) {
            out.ber128k = best_ber;
            out.wcdp = wcdp;
        }
        if (best_ber <= 0.0) {
            // No flip even at the maximum count under this iteration's
            // WCDP: no smaller count can flip either. The recorded
            // HC_first (max for iteration 0) stands.
            continue;
        }
        out.flippedAtMaxCount = true;

        // --- bisect for the smallest flipping tested count ---
        // Search [0, hc_idx) at this iteration's WCDP; counts at or
        // beyond the recorded worst case cannot improve it (and for
        // iteration 0, labels[hc_idx] = 128K is already known to
        // flip from the WCDP discovery above).
        size_t lo = 0, hi = hc_idx;
        while (lo < hi) {
            const size_t mid = lo + (hi - lo) / 2;
            const auto m = measure(wcdp, labels[mid]);
            if (m.flippedBits > 0)
                hi = mid;
            else
                lo = mid + 1;
        }
        if (lo < hc_idx) {
            hc_idx = lo;
            out.hcFirst = labels[lo];
        }
    }
    return out;
}

} // anonymous namespace

Characterizer::Characterizer(dram::DramDevice &device) : device_(device)
{}

RowResult
Characterizer::characterizeRow(uint32_t bank, uint32_t victim,
                               const CharzOptions &opt)
{
    // Isolated per-row workspace: a sibling device over the shared
    // (immutable) module spec, subarray map, and fault model, with a
    // deterministic per-(bank,row) RNG stream. Mutable row/pending
    // state starts empty, so no cross-row contamination and no shared
    // mutation between worker threads.
    dram::DramDevice workspace(
        device_.spec(), device_.subarraysShared(), device_.modelShared(),
        hashSeed({kRowWorkspaceTag, bank, victim}));
    workspace.setDisturbanceEnabled(device_.disturbanceEnabled());
    bender::TestSession session(workspace);
    uint64_t measurements = 0;
    RowResult out =
        characterizeRowOn(session, bank, victim, opt, measurements);
    berMeasurements_.fetch_add(measurements,
                               std::memory_order_relaxed);
    // Alg. 1 hammer-and-read probes taken (all rows, all iterations).
    static const obs::MetricId ber_ctr =
        obs::counter("charz.ber_measurements");
    obs::add(ber_ctr, measurements);
    return out;
}

void
Characterizer::collectBankRows(uint32_t bank, uint32_t rows_per_bank,
                               const CharzOptions &opt,
                               std::vector<RowTask> &out)
{
    for (uint32_t r = 0; r < rows_per_bank; r += opt.rowStep)
        out.push_back({bank, r});
    for (uint32_t r : opt.extraRows)
        if (r % opt.rowStep != 0)
            out.push_back({bank, r});
}

std::vector<RowResult>
Characterizer::runTasks(const std::vector<RowTask> &tasks,
                        const CharzOptions &opt)
{
    static const obs::MetricId rows_ctr = obs::counter("charz.rows");
    static const obs::MetricId row_wall =
        obs::histogram("charz.row_wall_us");
    obs::Span batch_span("charz", "row_batch");
    batch_span.arg("rows", static_cast<uint64_t>(tasks.size()));
    obs::ProgressMeter progress("charz", tasks.size(), "rows");
    std::vector<RowResult> out(tasks.size());
    parallelFor(tasks.size(), opt.threads, [&](size_t i) {
        obs::Span row_span("charz", "row");
        row_span.arg("bank", static_cast<uint64_t>(tasks[i].bank));
        row_span.arg("row", static_cast<uint64_t>(tasks[i].victim));
        const auto start = std::chrono::steady_clock::now();
        out[i] = characterizeRow(tasks[i].bank, tasks[i].victim, opt);
        obs::add(rows_ctr);
        obs::observe(
            row_wall,
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count()));
        progress.tick();
    });
    progress.finish();
    return out;
}

std::vector<RowResult>
Characterizer::characterizeBank(uint32_t bank, const CharzOptions &opt)
{
    SVARD_ASSERT(opt.rowStep >= 1, "rowStep must be >= 1");
    std::vector<RowTask> tasks;
    collectBankRows(bank, device_.spec().rowsPerBank, opt, tasks);
    return runTasks(tasks, opt);
}

std::vector<RowResult>
Characterizer::characterizeModule(const CharzOptions &opt)
{
    SVARD_ASSERT(opt.rowStep >= 1, "rowStep must be >= 1");
    // One flat task pool across all banks: row order (and thus result
    // order) matches the per-bank loops, but a straggler bank no
    // longer idles the other workers.
    std::vector<RowTask> tasks;
    for (uint32_t bank : opt.banks)
        collectBankRows(bank, device_.spec().rowsPerBank, opt, tasks);
    return runTasks(tasks, opt);
}

core::VulnProfile
buildProfile(const dram::ModuleSpec &spec,
             const std::vector<RowResult> &results, uint32_t num_bins)
{
    SVARD_ASSERT(!results.empty(), "no characterization results");
    const auto &labels = dram::testedHammerCounts();

    // Reuse fromModel's binning scheme: bins keyed to tested hammer
    // counts, safe bound = previous tested count, weak-end merge to
    // fit num_bins.
    std::vector<double> bounds;
    for (size_t i = 0; i < labels.size(); ++i)
        bounds.push_back(i == 0
                             ? 0.75 * static_cast<double>(labels[0])
                             : static_cast<double>(labels[i - 1]));
    std::vector<uint32_t> bin_of_label(labels.size());
    std::vector<double> merged;
    if (num_bins >= labels.size()) {
        merged = bounds;
        for (size_t i = 0; i < labels.size(); ++i)
            bin_of_label[i] = static_cast<uint32_t>(i);
    } else {
        const size_t excess = labels.size() - num_bins;
        merged.push_back(bounds[0]);
        bin_of_label[0] = 0;
        for (size_t i = 1; i < labels.size(); ++i) {
            if (i <= excess) {
                bin_of_label[i] = 0;
            } else {
                bin_of_label[i] = static_cast<uint32_t>(merged.size());
                merged.push_back(bounds[i]);
            }
        }
    }
    // The tested-count list is sorted, so HC_first -> index is one
    // binary search (the per-row linear scan this replaces was O(rows
    // x labels) across a characterized module).
    auto label_index = [&](int64_t hc) {
        const auto it =
            std::lower_bound(labels.begin(), labels.end(), hc);
        if (it == labels.end() || *it != hc)
            SVARD_PANIC("HC_first not a tested hammer count");
        return static_cast<size_t>(it - labels.begin());
    };

    core::VulnProfile prof(spec.label + "-measured", spec.banks,
                           spec.rowsPerBank, std::move(merged));

    // Tested rows per bank, sorted by physical row (the profile's key
    // space) for interpolation.
    std::map<uint32_t, std::vector<std::pair<uint32_t, uint8_t>>> tested;
    for (const auto &r : results)
        tested[r.bank].push_back(
            {r.physRow,
             static_cast<uint8_t>(bin_of_label[label_index(r.hcFirst)])});
    for (auto &[bank, rows] : tested)
        std::sort(rows.begin(), rows.end());

    // Untested banks fall back to bank (tested banks' union would be
    // unsafe to fabricate); use the first tested bank's rows.
    const auto &fallback = tested.begin()->second;
    for (uint32_t bank = 0; bank < spec.banks; ++bank) {
        const auto &rows =
            tested.count(bank) ? tested.at(bank) : fallback;
        size_t cursor = 0;
        for (uint32_t r = 0; r < spec.rowsPerBank; ++r) {
            while (cursor + 1 < rows.size() &&
                   rows[cursor + 1].first <= r)
                ++cursor;
            // Nearest tested row (cursor points at the last <= r).
            uint8_t bin = rows[cursor].second;
            if (cursor + 1 < rows.size()) {
                const uint32_t d_lo = r - rows[cursor].first;
                const uint32_t d_hi = rows[cursor + 1].first - r;
                if (d_hi < d_lo)
                    bin = rows[cursor + 1].second;
            }
            prof.setBin(bank, r, bin);
        }
    }
    return prof;
}

} // namespace svard::charz
