#include "charz/characterizer.h"

#include <algorithm>
#include <map>

#include "common/log.h"

namespace svard::charz {

Characterizer::Characterizer(dram::DramDevice &device)
    : device_(device), session_(device)
{}

RowResult
Characterizer::characterizeRow(uint32_t bank, uint32_t victim,
                               const CharzOptions &opt)
{
    const auto &labels = dram::testedHammerCounts();
    const int64_t max_hc = labels.back();

    RowResult out;
    out.bank = bank;
    out.logicalRow = victim;
    out.physRow = device_.mapping().toPhysical(victim);
    out.relativeLocation =
        static_cast<double>(out.physRow) /
        static_cast<double>(device_.spec().rowsPerBank);

    const auto aggressors = session_.aggressorRowsOf(victim);
    out.numAggressors = static_cast<uint32_t>(aggressors.size());

    out.hcFirst = max_hc;
    for (int iter = 0; iter < std::max(opt.iterations, 1); ++iter) {
        // --- WCDP discovery at the maximum tested hammer count ---
        double best_ber = -1.0;
        fault::DataPattern wcdp = fault::DataPattern::RowStripe;
        const std::vector<fault::DataPattern> quick = {
            fault::DataPattern::RowStripe,
            fault::DataPattern::RowStripeInv,
        };
        const auto &patterns =
            opt.quickWcdp
                ? quick
                : std::vector<fault::DataPattern>(
                      fault::allDataPatterns.begin(),
                      fault::allDataPatterns.end());
        for (auto dp : patterns) {
            const auto m = session_.measureBer(
                bank, victim, aggressors, dp,
                static_cast<uint64_t>(max_hc), opt.tAggOn);
            if (m.ber() > best_ber) {
                best_ber = m.ber();
                wcdp = dp;
            }
        }
        if (best_ber > out.ber128k) {
            out.ber128k = best_ber;
            out.wcdp = wcdp;
        }
        if (best_ber > 0.0)
            out.flippedAtMaxCount = true;

        // --- ascending hammer-count sweep at the WCDP ---
        int64_t hc_first = max_hc;
        for (int64_t hc : labels) {
            if (hc >= out.hcFirst && iter > 0)
                break; // cannot improve the recorded worst case
            const auto m = session_.measureBer(
                bank, victim, aggressors, wcdp,
                static_cast<uint64_t>(hc), opt.tAggOn);
            if (m.flippedBits > 0) {
                hc_first = hc;
                break;
            }
        }
        out.hcFirst = std::min(out.hcFirst, hc_first);
    }
    return out;
}

std::vector<RowResult>
Characterizer::characterizeBank(uint32_t bank, const CharzOptions &opt)
{
    SVARD_ASSERT(opt.rowStep >= 1, "rowStep must be >= 1");
    std::vector<RowResult> out;
    const uint32_t rows = device_.spec().rowsPerBank;
    for (uint32_t r = 0; r < rows; r += opt.rowStep)
        out.push_back(characterizeRow(bank, r, opt));
    for (uint32_t r : opt.extraRows)
        if (r % opt.rowStep != 0)
            out.push_back(characterizeRow(bank, r, opt));
    return out;
}

std::vector<RowResult>
Characterizer::characterizeModule(const CharzOptions &opt)
{
    std::vector<RowResult> out;
    for (uint32_t bank : opt.banks) {
        auto bank_results = characterizeBank(bank, opt);
        out.insert(out.end(), bank_results.begin(), bank_results.end());
    }
    return out;
}

core::VulnProfile
buildProfile(const dram::ModuleSpec &spec,
             const std::vector<RowResult> &results, uint32_t num_bins)
{
    SVARD_ASSERT(!results.empty(), "no characterization results");
    const auto &labels = dram::testedHammerCounts();

    // Reuse fromModel's binning scheme: bins keyed to tested hammer
    // counts, safe bound = previous tested count, weak-end merge to
    // fit num_bins.
    std::vector<double> bounds;
    for (size_t i = 0; i < labels.size(); ++i)
        bounds.push_back(i == 0
                             ? 0.75 * static_cast<double>(labels[0])
                             : static_cast<double>(labels[i - 1]));
    std::vector<uint32_t> bin_of_label(labels.size());
    std::vector<double> merged;
    if (num_bins >= labels.size()) {
        merged = bounds;
        for (size_t i = 0; i < labels.size(); ++i)
            bin_of_label[i] = static_cast<uint32_t>(i);
    } else {
        const size_t excess = labels.size() - num_bins;
        merged.push_back(bounds[0]);
        bin_of_label[0] = 0;
        for (size_t i = 1; i < labels.size(); ++i) {
            if (i <= excess) {
                bin_of_label[i] = 0;
            } else {
                bin_of_label[i] = static_cast<uint32_t>(merged.size());
                merged.push_back(bounds[i]);
            }
        }
    }
    auto label_index = [&](int64_t hc) {
        for (size_t i = 0; i < labels.size(); ++i)
            if (labels[i] == hc)
                return i;
        SVARD_PANIC("HC_first not a tested hammer count");
    };

    core::VulnProfile prof(spec.label + "-measured", spec.banks,
                           spec.rowsPerBank, std::move(merged));

    // Tested rows per bank, sorted by physical row (the profile's key
    // space) for interpolation.
    std::map<uint32_t, std::vector<std::pair<uint32_t, uint8_t>>> tested;
    for (const auto &r : results)
        tested[r.bank].push_back(
            {r.physRow,
             static_cast<uint8_t>(bin_of_label[label_index(r.hcFirst)])});
    for (auto &[bank, rows] : tested)
        std::sort(rows.begin(), rows.end());

    // Untested banks fall back to bank (tested banks' union would be
    // unsafe to fabricate); use the first tested bank's rows.
    const auto &fallback = tested.begin()->second;
    for (uint32_t bank = 0; bank < spec.banks; ++bank) {
        const auto &rows =
            tested.count(bank) ? tested.at(bank) : fallback;
        size_t cursor = 0;
        for (uint32_t r = 0; r < spec.rowsPerBank; ++r) {
            while (cursor + 1 < rows.size() &&
                   rows[cursor + 1].first <= r)
                ++cursor;
            // Nearest tested row (cursor points at the last <= r).
            uint8_t bin = rows[cursor].second;
            if (cursor + 1 < rows.size()) {
                const uint32_t d_lo = r - rows[cursor].first;
                const uint32_t d_hi = rows[cursor + 1].first - r;
                if (d_hi < d_lo)
                    bin = rows[cursor + 1].second;
            }
            prof.setBin(bank, r, bin);
        }
    }
    return prof;
}

} // namespace svard::charz
