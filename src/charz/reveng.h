/**
 * @file
 * Reverse engineering of DRAM-internal organization from the memory
 * interface, as the paper's methodology requires (Sec. 4.2, 5.4.1):
 *
 *  1. Row mapping: which logical rows are physically adjacent. Found
 *     by hammering a row single-sided and scanning a window of logical
 *     rows for bitflips, then scoring candidate mapping schemes.
 *  2. Subarray boundaries (Key Insight 1): a row at a subarray edge
 *     disturbs rows on only one side. Candidates are validated with
 *     intra-subarray RowClone (Key Insight 2): a *successful* clone
 *     proves two rows share a subarray and invalidates a boundary
 *     between them.
 *  3. k-means + silhouette sweep (Fig. 8): rows are clustered into k
 *     groups from their position and cumulative-boundary features; the
 *     silhouette-maximizing k estimates the subarray count.
 */
#ifndef SVARD_CHARZ_REVENG_H
#define SVARD_CHARZ_REVENG_H

#include <cstdint>
#include <vector>

#include "bender/test_session.h"
#include "dram/rowmap.h"

namespace svard::charz {

/** Options for the reverse-engineering sweeps. */
struct RevEngOptions
{
    uint32_t bank = 1;

    /** Activations per probed row; combined with the pressed on-time
     *  this exceeds every row's threshold under any data pattern and
     *  per-row sensitivity draw, so interior neighbors always flip. */
    uint64_t hammerCount = 256 * 1024;
    dram::Tick tAggOn = 2 * dram::kPsPerUs;

    /** Physical row range to probe (subarray reveng); 0,0 = full bank. */
    uint32_t firstRow = 0;
    uint32_t lastRow = 0;

    /** Probe every Nth row when scanning for the mapping scheme. */
    uint32_t mappingSamples = 64;
};

/** One point of the Fig. 8 silhouette curve. */
struct SilhouettePoint
{
    uint32_t k;
    double score;
};

/** Output of the subarray reverse-engineering pipeline. */
struct SubarrayRevEng
{
    /** Physical rows r such that a boundary lies between r-1 and r,
     *  after RowClone validation. */
    std::vector<uint32_t> boundaries;

    /** Candidates before RowClone validation (diagnostics). */
    std::vector<uint32_t> candidates;

    /** Silhouette score per tested k (Fig. 8). */
    std::vector<SilhouettePoint> silhouette;

    /** k at the silhouette global maximum = estimated subarray count. */
    uint32_t bestK = 0;
};

/**
 * Identify the module's logical->physical row mapping scheme by
 * single-sided hammering sampled rows and checking which logical rows
 * flip under each candidate scheme. Returns the best-fitting scheme.
 */
dram::RowMapping::Scheme identifyRowMapping(bender::TestSession &session,
                                            const RevEngOptions &opt);

/**
 * Run the full subarray reverse-engineering pipeline of Sec. 5.4.1
 * against the probed row range. `k_sweep_max` bounds the silhouette
 * sweep (0 = up to 1.5x the candidate count).
 */
SubarrayRevEng reverseEngineerSubarrays(bender::TestSession &session,
                                        const RevEngOptions &opt,
                                        uint32_t k_sweep_max = 0);

} // namespace svard::charz

#endif // SVARD_CHARZ_REVENG_H
