#include "charz/features.h"

#include <algorithm>
#include <cmath>

#include "analysis/classify.h"

namespace svard::charz {

namespace {

int
bitsFor(uint32_t max_value)
{
    int bits = 1;
    while ((1u << bits) <= max_value && bits < 31)
        ++bits;
    return bits;
}

} // anonymous namespace

std::vector<FeatureScore>
spatialFeatureScores(const dram::ModuleSpec &spec,
                     const dram::SubarrayMap &subarrays,
                     const std::vector<RowResult> &results)
{
    using Kind = dram::FeatureEffect::Kind;

    std::vector<int64_t> classes;
    classes.reserve(results.size());
    for (const auto &r : results)
        classes.push_back(r.hcFirst);

    // Feature extraction per row.
    std::vector<uint32_t> bank_v, row_v, sa_v, dist_v;
    uint32_t max_sa = 0, max_dist = 0;
    for (const auto &r : results) {
        const auto loc = subarrays.locate(r.physRow);
        bank_v.push_back(r.bank);
        row_v.push_back(r.physRow);
        sa_v.push_back(loc.subarray);
        dist_v.push_back(loc.distanceToSenseAmps());
        max_sa = std::max(max_sa, loc.subarray);
        max_dist = std::max(max_dist, loc.distanceToSenseAmps());
    }

    struct FeatureDef
    {
        Kind kind;
        const std::vector<uint32_t> *values;
        int bits;
    };
    const FeatureDef defs[] = {
        {Kind::BankAddr, &bank_v, bitsFor(spec.banks - 1)},
        {Kind::RowAddr, &row_v, bitsFor(spec.rowsPerBank - 1)},
        {Kind::SubarrayAddr, &sa_v, bitsFor(max_sa)},
        {Kind::Distance, &dist_v, bitsFor(max_dist)},
    };

    std::vector<FeatureScore> out;
    std::vector<uint8_t> feature(results.size());
    for (const auto &def : defs) {
        for (int bit = 0; bit < def.bits; ++bit) {
            for (size_t i = 0; i < results.size(); ++i)
                feature[i] =
                    static_cast<uint8_t>(((*def.values)[i] >> bit) & 1);
            out.push_back({def.kind, bit,
                           analysis::binaryFeatureF1(feature, classes)});
        }
    }
    return out;
}

double
fractionAboveF1(const std::vector<FeatureScore> &scores, double threshold)
{
    if (scores.empty())
        return 0.0;
    size_t n = 0;
    for (const auto &s : scores)
        if (s.f1 > threshold)
            ++n;
    return static_cast<double>(n) / static_cast<double>(scores.size());
}

std::vector<FeatureScore>
featuresAbove(const std::vector<FeatureScore> &scores, double threshold)
{
    std::vector<FeatureScore> out;
    for (const auto &s : scores)
        if (s.f1 > threshold)
            out.push_back(s);
    std::sort(out.begin(), out.end(),
              [](const FeatureScore &a, const FeatureScore &b) {
                  return a.f1 > b.f1;
              });
    return out;
}

} // namespace svard::charz
