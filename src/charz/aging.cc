#include "charz/aging.h"

#include <memory>

#include "fault/vuln_model.h"

namespace svard::charz {

double
AgingResult::fraction(int64_t before, int64_t after) const
{
    auto tot = beforeTotals.find(before);
    if (tot == beforeTotals.end() || tot->second == 0)
        return 0.0;
    auto it = transitions.find({before, after});
    const uint64_t n = it == transitions.end() ? 0 : it->second;
    return static_cast<double>(n) / static_cast<double>(tot->second);
}

double
AgingResult::changedFraction(int64_t before) const
{
    auto tot = beforeTotals.find(before);
    if (tot == beforeTotals.end() || tot->second == 0)
        return 0.0;
    uint64_t changed = 0;
    for (const auto &[key, n] : transitions)
        if (key.first == before && key.second != before)
            changed += n;
    return static_cast<double>(changed) /
           static_cast<double>(tot->second);
}

AgingResult
agingExperiment(const dram::ModuleSpec &spec, const CharzOptions &opt)
{
    auto subarrays = std::make_shared<dram::SubarrayMap>(spec);
    auto fresh_model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays,
                                                    false);
    auto aged_model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays,
                                                    true);
    dram::DramDevice fresh_dev(spec, subarrays, fresh_model);
    dram::DramDevice aged_dev(spec, subarrays, aged_model);
    Characterizer fresh(fresh_dev);
    Characterizer aged(aged_dev);

    AgingResult out;
    for (uint32_t bank : opt.banks) {
        for (uint32_t r = 0; r < spec.rowsPerBank; r += opt.rowStep) {
            const auto before = fresh.characterizeRow(bank, r, opt);
            const auto after = aged.characterizeRow(bank, r, opt);
            ++out.transitions[{before.hcFirst, after.hcFirst}];
            ++out.beforeTotals[before.hcFirst];
        }
    }
    return out;
}

} // namespace svard::charz
