#include "charz/aging.h"

#include <memory>

#include "common/log.h"
#include "fault/vuln_model.h"

namespace svard::charz {

double
AgingResult::fraction(int64_t before, int64_t after) const
{
    auto tot = beforeTotals.find(before);
    if (tot == beforeTotals.end() || tot->second == 0)
        return 0.0;
    auto it = transitions.find({before, after});
    const uint64_t n = it == transitions.end() ? 0 : it->second;
    return static_cast<double>(n) / static_cast<double>(tot->second);
}

double
AgingResult::changedFraction(int64_t before) const
{
    auto tot = beforeTotals.find(before);
    if (tot == beforeTotals.end() || tot->second == 0)
        return 0.0;
    uint64_t changed = 0;
    for (const auto &[key, n] : transitions)
        if (key.first == before && key.second != before)
            changed += n;
    return static_cast<double>(changed) /
           static_cast<double>(tot->second);
}

AgingResult
agingExperiment(const dram::ModuleSpec &spec, const CharzOptions &opt)
{
    auto subarrays = std::make_shared<dram::SubarrayMap>(spec);
    auto fresh_model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays,
                                                    false);
    auto aged_model =
        std::make_shared<fault::VulnerabilityModel>(spec, subarrays,
                                                    true);
    dram::DramDevice fresh_dev(spec, subarrays, fresh_model);
    dram::DramDevice aged_dev(spec, subarrays, aged_model);
    Characterizer fresh(fresh_dev);
    Characterizer aged(aged_dev);

    // The transition matrix is defined over the strided sample only;
    // characterizeBank would also append opt.extraRows, so drop them.
    CharzOptions bank_opt = opt;
    bank_opt.extraRows.clear();

    AgingResult out;
    for (uint32_t bank : opt.banks) {
        // Both sweeps enumerate the same rows in the same order (and
        // shard them over bank_opt.threads), so pairing is positional.
        const auto before = fresh.characterizeBank(bank, bank_opt);
        const auto after = aged.characterizeBank(bank, bank_opt);
        SVARD_ASSERT(before.size() == after.size(),
                     "aging sweeps disagree on row sampling");
        for (size_t i = 0; i < before.size(); ++i) {
            ++out.transitions[{before[i].hcFirst, after[i].hcFirst}];
            ++out.beforeTotals[before[i].hcFirst];
        }
    }
    return out;
}

} // namespace svard::charz
