#include "charz/reveng.h"

#include <algorithm>
#include <set>

#include "analysis/kmeans.h"
#include "common/log.h"

namespace svard::charz {

namespace {

constexpr uint8_t kVictimFill = 0x00;
constexpr uint8_t kAggrFill = 0xFF;

/** Hammer one row and report which of two flanking rows flipped. */
struct ProbeOutcome
{
    bool lowFlipped = false;
    bool highFlipped = false;
};

ProbeOutcome
probeRow(bender::TestSession &session, uint32_t bank, uint32_t phys,
         const RevEngOptions &opt)
{
    auto &dev = session.device();
    const auto &map = dev.mapping();
    const uint32_t l = map.toLogical(phys);
    const uint32_t lo = map.toLogical(phys - 1);
    const uint32_t hi = map.toLogical(phys + 1);
    session.initRow(bank, lo, kVictimFill);
    session.initRow(bank, hi, kVictimFill);
    session.initRow(bank, l, kAggrFill);
    session.hammerSingleSided(bank, l, opt.hammerCount, opt.tAggOn);
    ProbeOutcome out;
    out.lowFlipped =
        session.readAndCompare(bank, lo, kVictimFill).flippedBits > 0;
    out.highFlipped =
        session.readAndCompare(bank, hi, kVictimFill).flippedBits > 0;
    return out;
}

} // anonymous namespace

dram::RowMapping::Scheme
identifyRowMapping(bender::TestSession &session, const RevEngOptions &opt)
{
    auto &dev = session.device();
    const uint32_t rows = dev.spec().rowsPerBank;
    constexpr int kWindow = 8;

    const dram::RowMapping::Scheme schemes[] = {
        dram::RowMapping::Scheme::Identity,
        dram::RowMapping::Scheme::MirrorPairs,
        dram::RowMapping::Scheme::BitSwap,
    };
    double score[3] = {0.0, 0.0, 0.0};

    for (uint32_t l = kWindow;
         l + kWindow < rows && l < rows;
         l += opt.mappingSamples) {
        // Initialize the window around the hammered logical row.
        for (int d = -kWindow; d <= kWindow; ++d) {
            const uint32_t w = l + d;
            session.initRow(opt.bank, w, d == 0 ? kAggrFill
                                                : kVictimFill);
        }
        session.hammerSingleSided(opt.bank, l, opt.hammerCount,
                                  opt.tAggOn);
        std::set<uint32_t> observed;
        for (int d = -kWindow; d <= kWindow; ++d) {
            if (d == 0)
                continue;
            const uint32_t w = l + d;
            if (session.readAndCompare(opt.bank, w, kVictimFill)
                    .flippedBits > 0)
                observed.insert(w);
        }
        for (int s = 0; s < 3; ++s) {
            const dram::RowMapping cand(schemes[s], rows);
            const uint32_t p = cand.toPhysical(l);
            std::set<uint32_t> predicted;
            if (p > 0)
                predicted.insert(cand.toLogical(p - 1));
            if (p + 1 < rows)
                predicted.insert(cand.toLogical(p + 1));
            // Jaccard similarity of predicted vs. observed victims.
            size_t inter = 0;
            for (uint32_t v : predicted)
                inter += observed.count(v);
            const size_t uni =
                predicted.size() + observed.size() - inter;
            if (uni > 0)
                score[s] += static_cast<double>(inter) /
                            static_cast<double>(uni);
        }
    }
    int best = 0;
    for (int s = 1; s < 3; ++s)
        if (score[s] > score[best])
            best = s;
    return schemes[best];
}

SubarrayRevEng
reverseEngineerSubarrays(bender::TestSession &session,
                         const RevEngOptions &opt, uint32_t k_sweep_max)
{
    auto &dev = session.device();
    const auto &map = dev.mapping();
    const uint32_t rows = dev.spec().rowsPerBank;
    const uint32_t first = std::max(opt.firstRow, 1u);
    const uint32_t last =
        opt.lastRow == 0 ? rows - 2 : std::min(opt.lastRow, rows - 2);
    SVARD_ASSERT(first < last, "empty reveng range");

    SubarrayRevEng out;

    // --- Key Insight 1: one-sided disturbance marks subarray edges ---
    std::set<uint32_t> candidates;
    for (uint32_t p = first; p <= last; ++p) {
        const ProbeOutcome o = probeRow(session, opt.bank, p, opt);
        if (o.highFlipped && !o.lowFlipped)
            candidates.insert(p);       // boundary between p-1 and p
        else if (o.lowFlipped && !o.highFlipped)
            candidates.insert(p + 1);   // boundary between p and p+1
    }
    out.candidates.assign(candidates.begin(), candidates.end());

    // --- Key Insight 2: successful RowClone invalidates a boundary ---
    for (uint32_t b : out.candidates) {
        if (b == 0 || b >= rows)
            continue;
        const bool cloned = dev.rowClone(
            opt.bank, map.toLogical(b - 1), map.toLogical(b), 0);
        if (!cloned)
            out.boundaries.push_back(b);
    }

    // --- k-means + silhouette sweep over candidate subarray counts ---
    const uint32_t span = last - first + 1;
    const uint32_t n_boundaries =
        static_cast<uint32_t>(out.boundaries.size());
    const uint32_t true_guess = n_boundaries + 1;

    // Feature space: dominant cumulative-boundary coordinate (plateaus
    // per subarray) plus a mild positional coordinate.
    constexpr size_t kMaxPoints = 2048;
    const uint32_t step =
        std::max(1u, span / static_cast<uint32_t>(kMaxPoints));
    std::vector<analysis::Point> points;
    size_t cum = 0, bi = 0;
    for (uint32_t p = first; p <= last; p += step) {
        while (bi < out.boundaries.size() && out.boundaries[bi] <= p) {
            ++bi;
        }
        cum = bi;
        points.push_back(
            {0.25 * static_cast<double>(p - first) /
                 static_cast<double>(span),
             4.0 * static_cast<double>(cum) /
                 std::max(1.0, static_cast<double>(n_boundaries))});
    }

    const uint32_t k_hi =
        k_sweep_max > 0 ? k_sweep_max
                        : std::max(4u, true_guess + true_guess / 2);
    std::set<uint32_t> ks;
    for (uint32_t k = 2; k <= k_hi;
         k += std::max(1u, k_hi / 24))
        ks.insert(k);
    for (int d = -2; d <= 2; ++d) {
        const int64_t k = static_cast<int64_t>(true_guess) + d;
        if (k >= 2 && k <= static_cast<int64_t>(points.size()))
            ks.insert(static_cast<uint32_t>(k));
    }

    double best_score = -2.0;
    for (uint32_t k : ks) {
        if (k > points.size())
            continue;
        const auto res = analysis::kMeans(points, k, 17, 30);
        const double s =
            analysis::silhouetteScore(points, res.assignment, k, 1024);
        out.silhouette.push_back({k, s});
        if (s > best_score) {
            best_score = s;
            out.bestK = k;
        }
    }
    std::sort(out.silhouette.begin(), out.silhouette.end(),
              [](const SilhouettePoint &a, const SilhouettePoint &b) {
                  return a.k < b.k;
              });
    return out;
}

} // namespace svard::charz
