/**
 * @file
 * Parallel experiment engine: enumerates a SweepSpec's cells, shards
 * them across a std::thread pool, and emits one result table the
 * figure benches consume. Every cell derives its RNG seed from its
 * grid coordinates (hashSeed over the axis indices), and each worker
 * writes only its own pre-allocated result slot, so the output is
 * bit-identical for any thread count — a 4-thread sharded sweep
 * reproduces the single-threaded run cell for cell.
 *
 * Baselines are part of the grid: per-(geometry, benchmark) alone
 * IPCs and per-(geometry, mix) no-defense runs are sharded first,
 * then defense cells run against those fixed references.
 */
#ifndef SVARD_ENGINE_RUNNER_H
#define SVARD_ENGINE_RUNNER_H

#include <atomic>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "common/table.h"
#include "core/recal.h"
#include "core/vuln_profile.h"
#include "engine/sweep.h"
#include "obs/manifest.h"

namespace svard::engine {

/**
 * Execute an adversarial grid (Fig. 13): {attack case x provider x
 * trace} cells sharded across a thread pool, no-defense reference
 * runs shared across providers. Deterministic for any thread count.
 * Honors the spec's sink (defended cells stream out in enumeration
 * order) and cache (reference and defended cells are checkpointed
 * and skipped on resume); `io_stats`, when given, receives the
 * executed/cached cell counts.
 */
std::vector<AdversarialResult>
runAdversarialSweep(const AdversarialSpec &adv,
                    SweepIoStats *io_stats = nullptr);

class ExperimentRunner
{
  public:
    /**
     * @throws std::invalid_argument for unknown defense/module names
     *         and for degenerate specs (an empty defense, threshold,
     *         provider, or mix axis; a mix without benchmarks; zero
     *         requests per core) — a silent empty grid is never run.
     */
    explicit ExperimentRunner(SweepSpec spec);

    /** Execute the grid (cached: repeat calls return the same run). */
    const std::vector<CellResult> &run();

    /** run() stopped early via spec.stopFlag: the returned table is
     *  a valid prefix-complete partial (finished cells are real and
     *  checkpointed; unfinished ones carry zero metrics). */
    bool interrupted() const { return interrupted_; }

    // --- multi-process fabric support (src/fabric/) ---------------
    // A worker process prepares the grid, then executes individual
    // cells by enumeration index into its own cache shard; the
    // coordinator merges shards into the main cache and calls run(),
    // which resolves every cell from cache and emits byte-identical
    // output.

    /** Enumerate + resolve every cell's metadata (coords, seed,
     *  fingerprint) without executing; validates specFingerprint().
     *  Idempotent; returns the cell count. */
    size_t prepareCells();

    /** Build profiles/traces/baselines if not yet built (cache-aware
     *  and checkpointed, so a restarted worker skips re-simulating
     *  them). Requires prepareCells(). Idempotent, not thread-safe —
     *  call before sharding. */
    void ensureBaselines();

    /** Execute cell `i` (cache probe first) and checkpoint it into
     *  the spec's cache. Returns true when the cell was simulated,
     *  false on a cache hit. Requires ensureBaselines(); thread-safe
     *  across distinct `i`. */
    bool executeCell(size_t i);

    /** Cell metadata after prepareCells() (fabric shard planning). */
    const std::vector<CellResult> &resolvedCells() const
    {
        return results_;
    }

    /** Per-worker fabric stats for the run manifest (coordinator
     *  only; populated from the work ledger's replay). */
    void setFabricWorkers(std::vector<obs::FabricWorkerStats> ws)
    {
        fabricWorkers_ = std::move(ws);
    }

    /** Cells actually simulated by run() (cache misses). */
    size_t executedCells() const { return executed_.load(); }

    /** Cells satisfied from the sweep cache without execution. */
    size_t cachedCells() const { return cachedHits_; }

    /** Baseline runs (alone-IPC + no-defense mixes) simulated. */
    size_t executedBaselines() const { return executedBase_.load(); }

    /** Baseline runs satisfied from the sweep cache — a partial
     *  resume stops recomputing them. */
    size_t cachedBaselines() const { return cachedBase_.load(); }

    /** Order-sensitive hash over every cell fingerprint (the whole
     *  grid's identity; recorded in the run manifest). 0 before
     *  run(). */
    uint64_t specFingerprint() const { return specFingerprint_; }

    /** Mean normalized metrics per configuration, axis order. */
    std::vector<SummaryRow> summarize();

    /** Per-cell result table (one row per executed cell). */
    Table cellTable();

    const SweepSpec &spec() const { return spec_; }

    /** The drift axis after defaulting and canonicalization (one
     *  static entry when the spec sets none). */
    const std::vector<DriftSpec> &drifts() const { return drifts_; }

    /** Run-wide escape/recalibration totals of executed cells (the
     *  manifest sums *all* cells, cached ones included, from the
     *  result table instead). */
    const core::GuardbandWatchdog &watchdog() const
    {
        return watchdog_;
    }

    /** The geometry axis after defaulting (spec.geometries or config). */
    const std::vector<sim::SimConfig> &geometries() const
    {
        return geoms_;
    }

    /** Alone IPC baseline of a benchmark under a geometry (post-run).
     *  Only populated when at least one cell executed: a fully cached
     *  run skips baseline simulation entirely. */
    double aloneIpc(uint32_t geom, uint32_t bench_idx) const;

  private:
    /** Deterministic seed of a cell from its grid coordinates.
     *  Excludes the drift coordinate: the static entry of a drift
     *  axis must reproduce the pre-drift RNG streams bit for bit. */
    uint64_t cellSeed(const SweepCell &c) const;

    /** Seed of a cell's drift trajectory. Hashes the drift entry's
     *  *identity* (model, epochs, guardband) plus the geometry /
     *  threshold / provider coordinates — but neither defense nor
     *  mix, so every defense and workload is judged against the same
     *  physical trajectory, and not the policy, so policies compare
     *  on identical drift. */
    uint64_t driftSeed(const SweepCell &c) const;

    /**
     * Cache fingerprint of a metadata-resolved cell: hashes the
     * cell's seed and every input that shapes its result (geometry +
     * timing, request count, defense name, threshold value, provider,
     * workload mix, parameter bag). Two runs compute the same
     * fingerprint for a cell iff the cell would simulate identically,
     * which is what makes the sweep cache safe across spec edits.
     */
    uint64_t cellFingerprint(const CellResult &resolved) const;

    /** Fill a cell's metadata (coords, seed, fingerprint, resolved
     *  axis values) without executing it. */
    void resolveCellMeta(const SweepCell &c, CellResult *out) const;

    /** Resampled base profile of (geometry, module label), cached. */
    std::shared_ptr<const core::VulnProfile>
    baseProfile(uint32_t geom, const std::string &label) const;

    /** Build the cell's threshold provider (fresh per cell: provider
     *  lookup counters are mutable and must not be shared across
     *  worker threads). */
    std::shared_ptr<const core::ThresholdProvider>
    makeProvider(uint32_t geom, const ProviderSpec &p,
                 double threshold) const;

    /** Benchmarks referenced by the spec's mixes (alone baselines). */
    std::vector<uint32_t> benchesUsed() const;

    void computeBaselines();
    sim::MixMetrics runMixCell(uint32_t geom, uint32_t mix,
                               const std::string &defense_name,
                               std::shared_ptr<
                                   const core::ThresholdProvider>
                                   provider,
                               uint64_t seed,
                               double recal_duty = 0.0) const;

    SweepSpec spec_;
    std::vector<sim::SimConfig> geoms_;
    std::vector<DriftSpec> drifts_; ///< defaulted + canonicalized
    core::GuardbandWatchdog watchdog_;
    std::map<std::pair<uint32_t, std::string>,
             std::shared_ptr<const core::VulnProfile>>
        profiles_; ///< built before sharding; read-only afterwards

    /** Scaled (geom, label, threshold) profiles, also prebuilt: the
     *  cells sharing a provider configuration share one immutable
     *  profile (occupancy pre-refreshed) instead of each copying and
     *  rescaling megabytes of bin data. Svard instances stay
     *  per-cell — their lookup counters and budget memos mutate. */
    std::map<std::tuple<uint32_t, std::string, uint64_t>,
             std::shared_ptr<const core::VulnProfile>>
        scaledProfiles_;

    /** Per-mix core traces, generated once and copied into each cell
     *  (traces depend only on the base seed, not the geometry).
     *  Providers, by contrast, stay per-cell: Svard and VulnProfile
     *  keep mutable lazy counters, so sharing one instance across
     *  concurrently-running cells would race. */
    std::vector<std::vector<std::vector<sim::TraceEntry>>> mixTraces_;
    std::vector<std::vector<double>> aloneIpc_;         ///< [geom][bench]
    std::vector<std::vector<sim::MixMetrics>> mixBase_; ///< [geom][mix]
    /** Cache record metadata of an alone-IPC baseline (stored under
     *  the same fingerprint scheme as grid cells). */
    CellResult aloneMeta(uint32_t geom, uint32_t bench) const;

    /** Cache record metadata of a (geometry, mix) no-defense run. */
    CellResult mixBaseMeta(uint32_t geom, uint32_t mix) const;

    std::vector<CellResult> results_;
    std::vector<SweepCell> cells_; ///< enumeration order (prepareCells)
    bool prepared_ = false;
    bool baselinesReady_ = false;
    bool interrupted_ = false;
    bool ran_ = false;
    std::atomic<size_t> executed_{0};
    size_t cachedHits_ = 0;
    std::atomic<size_t> executedBase_{0};
    std::atomic<size_t> cachedBase_{0};
    uint64_t specFingerprint_ = 0;
    std::vector<obs::FabricWorkerStats> fabricWorkers_;
};

} // namespace svard::engine

#endif // SVARD_ENGINE_RUNNER_H
