#include "engine/runner.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>

#include "common/log.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "dram/module_spec.h"
#include "fault/vuln_model.h"

namespace svard::engine {

namespace {

double
safeRatio(double num, double den)
{
    return num / std::max(den, 1e-12);
}

/**
 * Reject typoed module labels on the caller's thread: inside a
 * sharded worker, moduleByLabel's fatal() would kill the sweep
 * uncatchably mid-run.
 */
void
validateProviderLabels(const std::vector<ProviderSpec> &providers)
{
    for (const auto &p : providers) {
        if (p.moduleLabel.empty())
            continue;
        bool known = false;
        for (const auto &m : dram::allModules())
            known = known || m.label == p.moduleLabel;
        if (!known)
            throw std::invalid_argument(
                "unknown module label \"" + p.moduleLabel +
                "\" in provider spec \"" + p.name + "\"");
    }
}

/** Build a module's profile resampled onto a geometry. */
std::shared_ptr<const core::VulnProfile>
buildProfile(const std::string &label, const sim::SimConfig &cfg)
{
    const auto &spec = dram::moduleByLabel(label);
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    fault::VulnerabilityModel model(spec, sa);
    return std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(model).resampledTo(
            cfg.banksPerRank(), cfg.rowsPerBank));
}

} // anonymous namespace

ExperimentRunner::ExperimentRunner(SweepSpec spec)
    : spec_(std::move(spec))
{
    geoms_ = spec_.geometries.empty()
                 ? std::vector<sim::SimConfig>{spec_.config}
                 : spec_.geometries;
    // Validate names up front: a typo must throw here on the caller's
    // thread, not inside a sharded worker.
    for (const auto &name : spec_.defenses)
        if (!defense::DefenseRegistry::instance().contains(name))
            throw std::invalid_argument(
                "unknown defense \"" + name + "\" in sweep spec");
    validateProviderLabels(spec_.providers);
    SVARD_ASSERT(!spec_.defenses.empty(), "sweep needs defenses");
    SVARD_ASSERT(!spec_.thresholds.empty(), "sweep needs thresholds");
    SVARD_ASSERT(!spec_.providers.empty(), "sweep needs providers");
    SVARD_ASSERT(!spec_.mixes.empty(), "sweep needs workload mixes");
}

uint64_t
ExperimentRunner::cellSeed(const SweepCell &c) const
{
    return hashSeed({spec_.baseSeed, c.geom, c.defense, c.threshold,
                     c.provider, c.mix, 0x5EEDCE11ULL});
}

std::shared_ptr<const core::VulnProfile>
ExperimentRunner::baseProfile(uint32_t geom,
                              const std::string &label) const
{
    const auto it = profiles_.find({geom, label});
    SVARD_ASSERT(it != profiles_.end(),
                 "profile not prebuilt: " + label);
    return it->second;
}

std::shared_ptr<const core::ThresholdProvider>
ExperimentRunner::makeProvider(uint32_t geom, const ProviderSpec &p,
                               double threshold) const
{
    if (p.moduleLabel.empty())
        return std::make_shared<core::UniformThreshold>(
            threshold, geoms_[geom].rowsPerBank);
    return std::make_shared<core::Svard>(
        std::make_shared<core::VulnProfile>(
            baseProfile(geom, p.moduleLabel)->scaledTo(threshold)));
}

std::vector<uint32_t>
ExperimentRunner::benchesUsed() const
{
    std::set<uint32_t> used;
    for (const auto &mix : spec_.mixes)
        for (uint32_t b : mix.benchIdx)
            used.insert(b);
    return {used.begin(), used.end()};
}

sim::MixMetrics
ExperimentRunner::runMixCell(
    uint32_t geom, uint32_t mix, const std::string &defense_name,
    std::shared_ptr<const core::ThresholdProvider> provider,
    uint64_t seed) const
{
    // Copy the prebuilt traces: System consumes them, and cells
    // sharing a mix run concurrently.
    sim::System sys(geoms_[geom], mixTraces_[mix],
                    spec_.requestsPerCore, defense_name,
                    std::move(provider), seed);
    const auto &alone = aloneIpc_[geom];
    return sim::computeMixMetrics(
        sys.run(), spec_.mixes[mix],
        [&](uint32_t b) { return alone[b]; });
}

void
ExperimentRunner::computeBaselines()
{
    // Phase 0: module profiles (read-only once sharding starts).
    std::vector<std::pair<uint32_t, std::string>> wanted;
    for (uint32_t g = 0; g < geoms_.size(); ++g)
        for (const auto &p : spec_.providers)
            if (!p.moduleLabel.empty() &&
                !profiles_.count({g, p.moduleLabel})) {
                profiles_[{g, p.moduleLabel}] = nullptr;
                wanted.push_back({g, p.moduleLabel});
            }
    // Assign through find(): keys were inserted serially above, and
    // map::find is data-race-const, unlike operator[].
    parallelFor(wanted.size(), spec_.threads, [&](size_t i) {
        profiles_.find(wanted[i])->second =
            buildProfile(wanted[i].second, geoms_[wanted[i].first]);
    });

    // Phase 1: per-mix traces (seeded by the base seed only, so one
    // generation serves every geometry and defense configuration).
    const auto &suite = sim::benchmarkSuite();
    mixTraces_.resize(spec_.mixes.size());
    parallelFor(spec_.mixes.size(), spec_.threads, [&](size_t m) {
        const auto &mix = spec_.mixes[m];
        for (uint32_t c = 0; c < mix.benchIdx.size(); ++c)
            mixTraces_[m].push_back(sim::generateTrace(
                suite[mix.benchIdx[c]], spec_.requestsPerCore,
                spec_.baseSeed,
                sim::coreTraceOffset(spec_.baseSeed, c)));
    });

    // Phase 2: per-(geometry, benchmark) alone IPCs.
    const auto benches = benchesUsed();
    aloneIpc_.assign(geoms_.size(),
                     std::vector<double>(suite.size(), 0.0));
    parallelFor(geoms_.size() * benches.size(), spec_.threads,
                [&](size_t i) {
        const uint32_t g = static_cast<uint32_t>(i / benches.size());
        const uint32_t b = benches[i % benches.size()];
        std::vector<std::vector<sim::TraceEntry>> traces;
        traces.push_back(sim::generateTrace(
            suite[b], spec_.requestsPerCore, spec_.baseSeed,
            sim::coreTraceOffset(spec_.baseSeed, 0)));
        sim::System sys(geoms_[g], std::move(traces),
                        spec_.requestsPerCore, nullptr);
        aloneIpc_[g][b] = std::max(sys.run().ipc[0], 1e-9);
    });

    // Phase 3: per-(geometry, mix) no-defense baselines.
    mixBase_.assign(geoms_.size(), std::vector<sim::MixMetrics>(
                                       spec_.mixes.size()));
    parallelFor(geoms_.size() * spec_.mixes.size(), spec_.threads,
                [&](size_t i) {
        const uint32_t g =
            static_cast<uint32_t>(i / spec_.mixes.size());
        const uint32_t m =
            static_cast<uint32_t>(i % spec_.mixes.size());
        SweepCell base;
        base.geom = g;
        base.mix = m;
        mixBase_[g][m] = runMixCell(g, m, "none", nullptr,
                                    cellSeed(base));
    });
}

const std::vector<CellResult> &
ExperimentRunner::run()
{
    if (ran_)
        return results_;
    computeBaselines();

    // Enumerate the grid, axis order fixed by the spec.
    std::vector<SweepCell> cells;
    for (uint32_t g = 0; g < geoms_.size(); ++g)
        for (uint32_t d = 0; d < spec_.defenses.size(); ++d)
            for (uint32_t t = 0; t < spec_.thresholds.size(); ++t)
                for (uint32_t p = 0; p < spec_.providers.size(); ++p)
                    for (uint32_t m = 0; m < spec_.mixes.size(); ++m)
                        cells.push_back({g, d, t, p, m});

    results_.assign(cells.size(), CellResult{});
    std::atomic<size_t> done{0};
    parallelFor(cells.size(), spec_.threads, [&](size_t i) {
        const SweepCell &c = cells[i];
        CellResult &out = results_[i];
        out.cell = c;
        out.seed = cellSeed(c);
        out.defense = spec_.defenses[c.defense];
        out.threshold = spec_.thresholds[c.threshold];
        out.provider = spec_.providers[c.provider].name;
        out.mix = spec_.mixes[c.mix].name;
        out.metrics = runMixCell(
            c.geom, c.mix, out.defense,
            makeProvider(c.geom, spec_.providers[c.provider],
                         out.threshold),
            out.seed);
        const sim::MixMetrics &base = mixBase_[c.geom][c.mix];
        out.normalized.weightedSpeedup = safeRatio(
            out.metrics.weightedSpeedup, base.weightedSpeedup);
        out.normalized.harmonicSpeedup = safeRatio(
            out.metrics.harmonicSpeedup, base.harmonicSpeedup);
        out.normalized.maxSlowdown =
            safeRatio(out.metrics.maxSlowdown, base.maxSlowdown);
        if (spec_.onProgress)
            spec_.onProgress(done.fetch_add(1) + 1, cells.size());
    });
    ran_ = true;
    return results_;
}

std::vector<SummaryRow>
ExperimentRunner::summarize()
{
    run();
    std::vector<SummaryRow> rows;
    const size_t mixes = spec_.mixes.size();
    // Cells are mix-contiguous in enumeration order.
    for (size_t start = 0; start < results_.size(); start += mixes) {
        const CellResult &first = results_[start];
        SummaryRow row;
        row.geom = first.cell.geom;
        row.defense = first.defense;
        row.threshold = first.threshold;
        row.provider = first.provider;
        row.mixCount = static_cast<uint32_t>(mixes);
        for (size_t m = 0; m < mixes; ++m) {
            const sim::MixMetrics &n = results_[start + m].normalized;
            row.meanNormalized.weightedSpeedup += n.weightedSpeedup;
            row.meanNormalized.harmonicSpeedup += n.harmonicSpeedup;
            row.meanNormalized.maxSlowdown += n.maxSlowdown;
        }
        row.meanNormalized.weightedSpeedup /= mixes;
        row.meanNormalized.harmonicSpeedup /= mixes;
        row.meanNormalized.maxSlowdown /= mixes;
        rows.push_back(std::move(row));
    }
    return rows;
}

Table
ExperimentRunner::cellTable()
{
    run();
    Table t("Experiment sweep (" + std::to_string(results_.size()) +
                " cells)",
            {"Geometry", "Defense", "HCfirst", "Provider", "Mix",
             "WS", "HS", "MaxSd", "NormWS", "NormHS", "NormMaxSd"});
    for (const auto &r : results_) {
        const sim::SimConfig &g = geoms_[r.cell.geom];
        t.addRow({std::to_string(g.channels) + "ch-" +
                      std::to_string(g.banksPerRank()) + "b-" +
                      std::to_string(g.rowsPerBank / 1024) + "Kr",
                  r.defense, Table::fmtHc(int64_t(r.threshold)),
                  r.provider, r.mix,
                  Table::fmt(r.metrics.weightedSpeedup, 4),
                  Table::fmt(r.metrics.harmonicSpeedup, 4),
                  Table::fmt(r.metrics.maxSlowdown, 4),
                  Table::fmt(r.normalized.weightedSpeedup, 4),
                  Table::fmt(r.normalized.harmonicSpeedup, 4),
                  Table::fmt(r.normalized.maxSlowdown, 4)});
    }
    return t;
}

double
ExperimentRunner::aloneIpc(uint32_t geom, uint32_t bench_idx) const
{
    SVARD_ASSERT(geom < aloneIpc_.size() &&
                     bench_idx < aloneIpc_[geom].size(),
                 "alone-IPC index out of range");
    return aloneIpc_[geom][bench_idx];
}

std::vector<AdversarialResult>
runAdversarialSweep(const AdversarialSpec &adv)
{
    const sim::SimConfig &cfg = adv.config;
    const auto &suite = sim::benchmarkSuite();

    // Typos must throw here, not inside a sharded worker thread.
    for (const auto &c : adv.cases)
        if (!defense::DefenseRegistry::instance().contains(c.defense))
            throw std::invalid_argument("unknown defense \"" +
                                        c.defense +
                                        "\" in adversarial spec");
    validateProviderLabels(adv.providers);

    // Benign companion mix: the fixed assignment MixRunner uses.
    const sim::WorkloadMix benign = sim::adversarialBenignMix(cfg.cores);

    // Profiles for this spec's geometry.
    std::map<std::string, std::shared_ptr<const core::VulnProfile>>
        profiles;
    std::vector<std::string> labels;
    for (const auto &p : adv.providers)
        if (!p.moduleLabel.empty() && !profiles.count(p.moduleLabel)) {
            profiles[p.moduleLabel] = nullptr;
            labels.push_back(p.moduleLabel);
        }
    parallelFor(labels.size(), adv.threads, [&](size_t i) {
        profiles.find(labels[i])->second =
            buildProfile(labels[i], cfg);
    });

    // Alone IPCs of the benign benchmarks.
    std::vector<double> alone(suite.size(), 0.0);
    const std::set<uint32_t> bench_set(benign.benchIdx.begin(),
                                       benign.benchIdx.end());
    const std::vector<uint32_t> benches(bench_set.begin(),
                                        bench_set.end());
    parallelFor(benches.size(), adv.threads, [&](size_t i) {
        const uint32_t b = benches[i];
        std::vector<std::vector<sim::TraceEntry>> traces;
        traces.push_back(sim::generateTrace(
            suite[b], adv.requestsPerCore, adv.baseSeed,
            sim::coreTraceOffset(adv.baseSeed, 0)));
        sim::System sys(cfg, std::move(traces), adv.requestsPerCore,
                        nullptr);
        alone[b] = std::max(sys.run().ipc[0], 1e-9);
    });

    // One adversarial system run: attacker on core 0 (shared
    // implementation with MixRunner::runAdversarial).
    auto run_one = [&](const std::vector<sim::TraceEntry> &attack,
                       const std::string &defense_name,
                       std::shared_ptr<const core::ThresholdProvider>
                           provider,
                       uint64_t seed) {
        return sim::adversarialBenignWs(
            cfg, attack, adv.requestsPerCore, adv.baseSeed,
            defense_name, std::move(provider), seed,
            [&](uint32_t b) { return alone[b]; });
    };

    auto make_provider = [&](const ProviderSpec &p)
        -> std::shared_ptr<const core::ThresholdProvider> {
        if (p.moduleLabel.empty())
            return std::make_shared<core::UniformThreshold>(
                adv.threshold, cfg.rowsPerBank);
        return std::make_shared<core::Svard>(
            std::make_shared<core::VulnProfile>(
                profiles.at(p.moduleLabel)->scaledTo(adv.threshold)));
    };

    // Reference runs (no defense), shared across providers.
    std::vector<std::vector<double>> ref(adv.cases.size());
    std::vector<std::pair<uint32_t, uint32_t>> ref_cells;
    for (uint32_t c = 0; c < adv.cases.size(); ++c) {
        ref[c].assign(adv.cases[c].traces.size(), 0.0);
        for (uint32_t t = 0; t < adv.cases[c].traces.size(); ++t)
            ref_cells.push_back({c, t});
    }
    parallelFor(ref_cells.size(), adv.threads, [&](size_t i) {
        const auto [c, t] = ref_cells[i];
        ref[c][t] = run_one(
            adv.cases[c].traces[t], "none", nullptr,
            hashSeed({adv.baseSeed, c, t, 0xADF0ULL}));
    });

    // Defended runs: the full {case x provider x trace} grid.
    struct Cell
    {
        uint32_t c, p, t;
    };
    std::vector<Cell> cells;
    for (uint32_t c = 0; c < adv.cases.size(); ++c)
        for (uint32_t p = 0; p < adv.providers.size(); ++p)
            for (uint32_t t = 0; t < adv.cases[c].traces.size(); ++t)
                cells.push_back({c, p, t});
    std::vector<double> ws(cells.size(), 0.0);
    parallelFor(cells.size(), adv.threads, [&](size_t i) {
        const Cell &cell = cells[i];
        ws[i] = run_one(
            adv.cases[cell.c].traces[cell.t],
            adv.cases[cell.c].defense,
            make_provider(adv.providers[cell.p]),
            hashSeed({adv.baseSeed, cell.c, cell.p, cell.t,
                      0xADF1ULL}));
    });

    // Aggregate: mean over each case's traces; normalize each case
    // to its first provider (the spec's baseline configuration).
    std::vector<AdversarialResult> out;
    size_t idx = 0;
    for (uint32_t c = 0; c < adv.cases.size(); ++c) {
        double baseline_slowdown = 1.0;
        for (uint32_t p = 0; p < adv.providers.size(); ++p) {
            AdversarialResult r;
            r.caseName = adv.cases[c].name;
            r.defense = adv.cases[c].defense;
            r.provider = adv.providers[p].name;
            const size_t n = adv.cases[c].traces.size();
            for (uint32_t t = 0; t < n; ++t, ++idx) {
                r.benignWs += ws[idx];
                r.slowdown += safeRatio(ref[c][t], ws[idx]);
            }
            r.benignWs /= static_cast<double>(n);
            r.slowdown /= static_cast<double>(n);
            if (p == 0)
                baseline_slowdown = r.slowdown;
            r.normalizedSlowdown =
                safeRatio(r.slowdown, baseline_slowdown);
            out.push_back(std::move(r));
        }
    }
    return out;
}

} // namespace svard::engine
