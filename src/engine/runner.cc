#include "engine/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <stdexcept>

#include "common/log.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "engine/drift_eval.h"
#include "fault_inject/fault_inject.h"
#include "dram/module_spec.h"
#include "fault/drift.h"
#include "fault/vuln_model.h"
#include "io/async_sink.h"
#include "io/result_sink.h"
#include "io/sweep_cache.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sim/presets.h"

namespace svard::engine {

namespace {

double
safeRatio(double num, double den)
{
    return num / std::max(den, 1e-12);
}

void
requireSpec(bool ok, const std::string &what)
{
    if (!ok)
        throw std::invalid_argument("degenerate sweep spec: " + what);
}

/**
 * First-error latch for sharded workers. An exception thrown out of a
 * parallelFor lambda would unwind a bare pool thread and terminate
 * the process, so workers capture sink/cache I/O failures here and
 * the caller rethrows after the pool joins. Simulation results that
 * were checkpointed before the failure stay checkpointed, so the
 * retried sweep resumes instead of starting over.
 */
class ErrorLatch
{
  public:
    void
    capture()
    {
        MutexLock lock(mu_);
        if (!error_)
            error_ = std::current_exception();
    }

    void
    rethrow()
    {
        std::exception_ptr err;
        {
            MutexLock lock(mu_);
            err = error_;
        }
        if (err)
            std::rethrow_exception(err);
    }

  private:
    Mutex mu_;
    std::exception_ptr error_ SVARD_GUARDED_BY(mu_);
};

/**
 * Streams results to a sink in final enumeration order while workers
 * complete cells in arbitrary order: complete(i) marks slot i done
 * and emits every consecutive done slot past the cursor. The emitted
 * stream is therefore a growing prefix of the final table — tailable
 * mid-run, bit-identical at any thread count.
 */
class OrderedEmitter
{
  public:
    OrderedEmitter(const std::vector<CellResult> &results,
                   io::ResultSink *sink)
        : results_(results), sink_(sink), done_(results.size(), 0)
    {}

    void
    complete(size_t i)
    {
        // The disabled check belongs under the lock: the unlocked
        // early-return it replaced raced a concurrent disable() on
        // the sink_ pointer (caught by thread-safety annotation).
        MutexLock lock(mu_);
        if (!sink_)
            return;
        done_[i] = 1;
        while (cursor_ < done_.size() && done_[cursor_]) {
            sink_->write(results_[cursor_]);
            ++cursor_;
        }
    }

    /** Stop emitting (after a sink failure; the error is latched). */
    void
    disable()
    {
        MutexLock lock(mu_);
        sink_ = nullptr;
    }

  private:
    const std::vector<CellResult> &results_;
    io::ResultSink *sink_ SVARD_GUARDED_BY(mu_);
    std::vector<char> done_ SVARD_GUARDED_BY(mu_);
    size_t cursor_ SVARD_GUARDED_BY(mu_) = 0;
    Mutex mu_;
};

/** Fold the full system configuration (geometry + timing) into a
 *  fingerprint: any field that changes simulation behaviour must be
 *  mixed here, or an edited config would wrongly hit the cache. */
void
hashConfig(HashStream &h, const sim::SimConfig &g)
{
    // The geometry label and standard are part of the cell identity:
    // a cached DDR4 cell must never be attributed to an HBM2 or DDR5
    // preset even if an (unlikely) field-for-field collision existed.
    h.mix(g.geometry).mix(static_cast<uint32_t>(g.standard));
    h.mix(g.cores).mix(g.cpuGhz).mix(g.issueWidth).mix(g.instrWindow);
    h.mix(g.channels).mix(g.ranks).mix(g.bankGroups);
    h.mix(g.banksPerGroup).mix(g.rowsPerBank).mix(g.rowBytes);
    h.mix(g.readQueue).mix(g.writeQueue).mix(g.columnCap);
    h.mix(g.mopWidth).mix(g.recalDuty);
    const dram::TimingParams &t = g.timing;
    h.mix(t.tCK).mix(t.tRCD).mix(t.tRP).mix(t.tRAS).mix(t.tRC);
    h.mix(t.tCL).mix(t.tCWL).mix(t.tBL).mix(t.tCCD_S).mix(t.tCCD_L);
    h.mix(t.tRRD_S).mix(t.tRRD_L).mix(t.tFAW).mix(t.tWR).mix(t.tRTP);
    h.mix(t.tWTR_S).mix(t.tWTR_L).mix(t.tRFC).mix(t.tREFI);
    h.mix(t.tREFW);
}

void
hashTrace(HashStream &h, const std::vector<sim::TraceEntry> &trace)
{
    h.mix(trace.size());
    for (const auto &e : trace)
        h.mix(e.gap).mix(e.write ? 1 : 0).mix(e.address);
}

void
hashParams(
    HashStream &h,
    const std::vector<std::pair<std::string, double>> &params)
{
    h.mix(params.size());
    for (const auto &[name, value] : params)
        h.mix(name).mix(value);
}

/**
 * Reject typoed module labels on the caller's thread: inside a
 * sharded worker, moduleByLabel's fatal() would kill the sweep
 * uncatchably mid-run.
 */
void
validateProviderLabels(const std::vector<ProviderSpec> &providers)
{
    for (const auto &p : providers) {
        if (p.moduleLabel.empty())
            continue;
        bool known = false;
        for (const auto &m : dram::allModules())
            known = known || m.label == p.moduleLabel;
        if (!known)
            throw std::invalid_argument(
                "unknown module label \"" + p.moduleLabel +
                "\" in provider spec \"" + p.name + "\"");
    }
}

/** Organization-derived geometry label ("2ch-16b-128Kr"). */
std::string
derivedGeometryLabel(const sim::SimConfig &g)
{
    return std::to_string(g.channels) + "ch-" +
           std::to_string(g.banksPerRank()) + "b-" +
           std::to_string(g.rowsPerBank / 1024) + "Kr";
}

/** Does the config's DRAM system still match the preset its label
 *  claims — organization AND timing table (a preset name promises
 *  both; CPU-side fields are not geometry)? Hand-built geometries
 *  start from a preset (usually the default SimConfig) and mutate
 *  fields, which would leave two different systems reported under
 *  one label. */
bool
labelMatchesOrganization(const sim::SimConfig &g)
{
    if (!sim::presets::contains(g.geometry))
        return true; // custom label: the caller's to keep
    const sim::SimConfig p = sim::presets::get(g.geometry);
    const dram::TimingParams &a = g.timing;
    const dram::TimingParams &b = p.timing;
    return g.standard == p.standard && g.channels == p.channels &&
           g.ranks == p.ranks && g.bankGroups == p.bankGroups &&
           g.banksPerGroup == p.banksPerGroup &&
           g.rowsPerBank == p.rowsPerBank &&
           g.rowBytes == p.rowBytes && a.tCK == b.tCK &&
           a.tRCD == b.tRCD && a.tRP == b.tRP && a.tRAS == b.tRAS &&
           a.tRC == b.tRC && a.tCL == b.tCL && a.tCWL == b.tCWL &&
           a.tBL == b.tBL && a.tCCD_S == b.tCCD_S &&
           a.tCCD_L == b.tCCD_L && a.tRRD_S == b.tRRD_S &&
           a.tRRD_L == b.tRRD_L && a.tFAW == b.tFAW &&
           a.tWR == b.tWR && a.tRTP == b.tRTP &&
           a.tWTR_S == b.tWTR_S && a.tWTR_L == b.tWTR_L &&
           a.tRFC == b.tRFC && a.tREFI == b.tREFI &&
           a.tREFW == b.tREFW;
}

/** Queue high-water mark when the sink is an AsyncSink (else 0). */
uint64_t
sinkQueueHighWater(io::ResultSink *sink)
{
    if (auto *async = dynamic_cast<io::AsyncSink *>(sink))
        return async->maxDepthSeen();
    return 0;
}

/** Seconds since a steady-clock start point. */
double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Microseconds since a steady-clock start point (histograms). */
uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/** Build a module's profile resampled onto a geometry. */
std::shared_ptr<const core::VulnProfile>
buildProfile(const std::string &label, const sim::SimConfig &cfg)
{
    const auto &spec = dram::moduleByLabel(label);
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    fault::VulnerabilityModel model(spec, sa);
    return std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(model).resampledTo(
            cfg.banksPerRank(), cfg.rowsPerBank));
}

} // anonymous namespace

ExperimentRunner::ExperimentRunner(SweepSpec spec)
    : spec_(std::move(spec))
{
    // Geometry axis: explicit configs, then named presets (resolved
    // here so a typo throws on the caller's thread). Both empty means
    // the base config alone.
    geoms_ = spec_.geometries;
    for (const auto &name : spec_.geometryNames)
        geoms_.push_back(sim::presets::get(name));
    if (geoms_.empty())
        geoms_.push_back(spec_.config);
    // A hand-built config that mutated organization fields but kept
    // its source preset's label would report two organizations under
    // one name; relabel those from their actual shape. (Fingerprints
    // hash every field regardless — this is about honest columns.)
    for (sim::SimConfig &g : geoms_)
        if (!labelMatchesOrganization(g))
            g.geometry = derivedGeometryLabel(g);
    // Validate names up front: a typo must throw here on the caller's
    // thread, not inside a sharded worker.
    for (const auto &name : spec_.defenses)
        if (!defense::DefenseRegistry::instance().contains(name))
            throw std::invalid_argument(
                "unknown defense \"" + name + "\" in sweep spec");
    validateProviderLabels(spec_.providers);
    // A degenerate spec would silently enumerate an empty (or
    // unrunnable) grid; refuse it loudly instead.
    requireSpec(!spec_.defenses.empty(), "defense axis is empty");
    requireSpec(!spec_.thresholds.empty(), "threshold axis is empty");
    requireSpec(!spec_.providers.empty(), "provider axis is empty");
    requireSpec(!spec_.mixes.empty(), "workload-mix axis is empty");
    requireSpec(spec_.requestsPerCore > 0, "requestsPerCore is zero");
    for (const auto &mix : spec_.mixes)
        requireSpec(!mix.benchIdx.empty(),
                    "mix \"" + mix.name + "\" has no benchmarks");
    // Drift axis: default to one static entry, parse-validate the
    // model/policy grammar on the caller's thread, and canonicalize
    // the names so every spelling of the same entry fingerprints
    // (and reports) identically.
    drifts_ = spec_.drifts;
    if (drifts_.empty())
        drifts_.push_back(DriftSpec{});
    for (DriftSpec &d : drifts_) {
        d.model = fault::DriftModelSpec::parse(d.model).name();
        d.policy = core::RecalPolicy::parse(d.policy).name();
        requireSpec(d.guardband >= 0.0 && d.guardband < 0.9,
                    "drift guardband must be in [0, 0.9)");
    }
}

uint64_t
ExperimentRunner::cellSeed(const SweepCell &c) const
{
    return hashSeed({spec_.baseSeed, c.geom, c.defense, c.threshold,
                     c.provider, c.mix, 0x5EEDCE11ULL});
}

uint64_t
ExperimentRunner::driftSeed(const SweepCell &c) const
{
    const DriftSpec &d = drifts_[c.drift];
    HashStream h;
    h.mix(std::string("svard-drift-v1"));
    h.mix(spec_.baseSeed);
    h.mix(c.geom).mix(c.threshold).mix(c.provider);
    h.mix(d.model).mix(d.epochs).mix(d.guardband);
    return h.value();
}

uint64_t
ExperimentRunner::cellFingerprint(const CellResult &r) const
{
    const ProviderSpec &prov = spec_.providers[r.cell.provider];
    const sim::WorkloadMix &mix = spec_.mixes[r.cell.mix];
    HashStream h;
    // v2: the drift axis joined the cell identity (and the cache
    // format moved to SVC4); v1 records predate temporal drift.
    h.mix(std::string("svard-cell-v2"));
    h.mix(r.seed); // covers baseSeed and the coordinate-derived RNG
    hashConfig(h, geoms_[r.cell.geom]);
    h.mix(spec_.requestsPerCore);
    h.mix(r.defense);
    h.mix(r.threshold);
    h.mix(prov.name).mix(prov.moduleLabel);
    h.mix(mix.name).mix(mix.benchIdx.size());
    for (uint32_t b : mix.benchIdx)
        h.mix(b);
    hashParams(h, r.params);
    // Canonicalized drift entry: the default axis hashes exactly like
    // an explicit static entry, so a spec that never mentions drift
    // and one that spells out {"none","none",0,0} share fingerprints.
    const DriftSpec &ds = drifts_[r.cell.drift];
    h.mix(ds.model).mix(ds.policy).mix(ds.epochs).mix(ds.guardband);
    return h.value();
}

void
ExperimentRunner::resolveCellMeta(const SweepCell &c,
                                  CellResult *out) const
{
    out->cell = c;
    out->seed = cellSeed(c);
    out->geometry = geoms_[c.geom].geometry;
    out->defense = spec_.defenses[c.defense];
    out->threshold = spec_.thresholds[c.threshold];
    out->provider = spec_.providers[c.provider].name;
    out->mix = spec_.mixes[c.mix].name;
    const DriftSpec &ds = drifts_[c.drift];
    out->driftModel = ds.model;
    out->driftPolicy = ds.policy;
    out->driftEpochs = ds.epochs;
    out->guardband = ds.guardband;
    out->params.assign(spec_.defenseParams.begin(),
                       spec_.defenseParams.end());
    out->fingerprint = cellFingerprint(*out);
}

std::shared_ptr<const core::VulnProfile>
ExperimentRunner::baseProfile(uint32_t geom,
                              const std::string &label) const
{
    const auto it = profiles_.find({geom, label});
    SVARD_ASSERT(it != profiles_.end(),
                 "profile not prebuilt: " + label);
    return it->second;
}

std::shared_ptr<const core::ThresholdProvider>
ExperimentRunner::makeProvider(uint32_t geom, const ProviderSpec &p,
                               double threshold) const
{
    if (p.moduleLabel.empty())
        return std::make_shared<core::UniformThreshold>(
            threshold, geoms_[geom].rowsPerBank);
    uint64_t bits = 0;
    std::memcpy(&bits, &threshold, sizeof(bits));
    const auto it =
        scaledProfiles_.find({geom, p.moduleLabel, bits});
    if (it != scaledProfiles_.end())
        return std::make_shared<core::Svard>(it->second);
    // Not prebuilt (direct calls outside run()): fall back to a
    // private copy.
    return std::make_shared<core::Svard>(
        std::make_shared<core::VulnProfile>(
            baseProfile(geom, p.moduleLabel)->scaledTo(threshold)));
}

CellResult
ExperimentRunner::aloneMeta(uint32_t geom, uint32_t bench) const
{
    CellResult r;
    r.cell = {geom, 0, 0, 0, bench};
    r.seed = hashSeed({spec_.baseSeed, geom, bench, 0xA10EULL});
    r.geometry = geoms_[geom].geometry;
    r.defense = "none";
    r.provider = "(alone)";
    r.mix = sim::benchmarkSuite()[bench].name;
    HashStream h;
    h.mix(std::string("svard-alone-v1"));
    h.mix(r.seed);
    hashConfig(h, geoms_[geom]);
    h.mix(spec_.requestsPerCore);
    h.mix(static_cast<uint64_t>(bench));
    r.fingerprint = h.value();
    return r;
}

CellResult
ExperimentRunner::mixBaseMeta(uint32_t geom, uint32_t mix) const
{
    const sim::WorkloadMix &m = spec_.mixes[mix];
    CellResult r;
    SweepCell base;
    base.geom = geom;
    base.mix = mix;
    r.cell = base;
    // Keep the seed the baseline *run* already used, so cached and
    // freshly-simulated baselines are bit-identical by construction.
    r.seed = cellSeed(base);
    r.geometry = geoms_[geom].geometry;
    r.defense = "none";
    r.provider = "(baseline)";
    r.mix = m.name;
    HashStream h;
    h.mix(std::string("svard-base-v1"));
    h.mix(r.seed);
    hashConfig(h, geoms_[geom]);
    h.mix(spec_.requestsPerCore);
    h.mix(m.name).mix(m.benchIdx.size());
    for (uint32_t b : m.benchIdx)
        h.mix(b);
    r.fingerprint = h.value();
    return r;
}

std::vector<uint32_t>
ExperimentRunner::benchesUsed() const
{
    std::set<uint32_t> used;
    for (const auto &mix : spec_.mixes)
        for (uint32_t b : mix.benchIdx)
            used.insert(b);
    return {used.begin(), used.end()};
}

sim::MixMetrics
ExperimentRunner::runMixCell(
    uint32_t geom, uint32_t mix, const std::string &defense_name,
    std::shared_ptr<const core::ThresholdProvider> provider,
    uint64_t seed, double recal_duty) const
{
    // Drift cells charge their policy's recalibration duty to the
    // controller; zero duty leaves the config (and every schedule
    // decision) exactly as the static path computes it.
    sim::SimConfig cfg = geoms_[geom];
    cfg.recalDuty = recal_duty;
    // Copy the prebuilt traces: System consumes them, and cells
    // sharing a mix run concurrently.
    sim::System sys(cfg, mixTraces_[mix],
                    spec_.requestsPerCore, defense_name,
                    std::move(provider), seed, spec_.defenseParams);
    const auto &alone = aloneIpc_[geom];
    return sim::computeMixMetrics(
        sys.run(), spec_.mixes[mix],
        [&](uint32_t b) { return alone[b]; });
}

void
ExperimentRunner::computeBaselines()
{
    // Phase 0: module profiles (read-only once sharding starts).
    std::vector<std::pair<uint32_t, std::string>> wanted;
    for (uint32_t g = 0; g < geoms_.size(); ++g)
        for (const auto &p : spec_.providers)
            if (!p.moduleLabel.empty() &&
                !profiles_.count({g, p.moduleLabel})) {
                profiles_[{g, p.moduleLabel}] = nullptr;
                wanted.push_back({g, p.moduleLabel});
            }
    // Assign through find(): keys were inserted serially above, and
    // map::find is data-race-const, unlike operator[].
    parallelFor(wanted.size(), spec_.threads, [&](size_t i) {
        profiles_.find(wanted[i])->second =
            buildProfile(wanted[i].second, geoms_[wanted[i].first]);
    });

    // Phase 0b: one shared scaled profile per (geometry, label,
    // threshold) configuration. Occupancy is refreshed here, on one
    // thread, so the otherwise-immutable profile is safe to share
    // across concurrently-running cells.
    for (uint32_t g = 0; g < geoms_.size(); ++g)
        for (const auto &p : spec_.providers) {
            if (p.moduleLabel.empty())
                continue;
            for (double threshold : spec_.thresholds) {
                uint64_t bits = 0;
                std::memcpy(&bits, &threshold, sizeof(bits));
                auto &slot =
                    scaledProfiles_[{g, p.moduleLabel, bits}];
                if (slot)
                    continue;
                auto scaled =
                    std::make_shared<core::VulnProfile>(
                        baseProfile(g, p.moduleLabel)
                            ->scaledTo(threshold));
                scaled->minThreshold(); // settle the lazy occupancy
                slot = std::move(scaled);
            }
        }

    // Phase 1: per-mix traces (seeded by the base seed only, so one
    // generation serves every geometry and defense configuration).
    const auto &suite = sim::benchmarkSuite();
    mixTraces_.resize(spec_.mixes.size());
    parallelFor(spec_.mixes.size(), spec_.threads, [&](size_t m) {
        const auto &mix = spec_.mixes[m];
        for (uint32_t c = 0; c < mix.benchIdx.size(); ++c)
            mixTraces_[m].push_back(sim::generateTrace(
                suite[mix.benchIdx[c]], spec_.requestsPerCore,
                spec_.baseSeed,
                sim::coreTraceOffset(spec_.baseSeed, c)));
    });

    // Phase 2: per-(geometry, benchmark) alone IPCs. Checkpointed
    // under the same fingerprint scheme as grid cells, so a partial
    // resume stops recomputing them. Cache I/O failures are latched
    // (workers must not throw) and rethrown by the caller.
    ErrorLatch base_io_errors;
    const auto benches = benchesUsed();
    aloneIpc_.assign(geoms_.size(),
                     std::vector<double>(suite.size(), 0.0));
    parallelFor(geoms_.size() * benches.size(), spec_.threads,
                [&](size_t i) {
        const uint32_t g = static_cast<uint32_t>(i / benches.size());
        const uint32_t b = benches[i % benches.size()];
        CellResult meta = aloneMeta(g, b);
        CellResult cached;
        if (spec_.cache &&
            spec_.cache->lookup(meta.seed, meta.fingerprint,
                                &cached)) {
            aloneIpc_[g][b] = cached.metrics.weightedSpeedup;
            cachedBase_.fetch_add(1);
            return;
        }
        std::vector<std::vector<sim::TraceEntry>> traces;
        traces.push_back(sim::generateTrace(
            suite[b], spec_.requestsPerCore, spec_.baseSeed,
            sim::coreTraceOffset(spec_.baseSeed, 0)));
        sim::System sys(geoms_[g], std::move(traces),
                        spec_.requestsPerCore, nullptr);
        aloneIpc_[g][b] = std::max(sys.run().ipc[0], 1e-9);
        executedBase_.fetch_add(1);
        meta.metrics.weightedSpeedup = aloneIpc_[g][b];
        try {
            if (spec_.cache)
                spec_.cache->store(meta);
        } catch (...) {
            base_io_errors.capture();
        }
    });
    base_io_errors.rethrow();

    // Phase 3: per-(geometry, mix) no-defense baselines, cached the
    // same way.
    mixBase_.assign(geoms_.size(), std::vector<sim::MixMetrics>(
                                       spec_.mixes.size()));
    parallelFor(geoms_.size() * spec_.mixes.size(), spec_.threads,
                [&](size_t i) {
        const uint32_t g =
            static_cast<uint32_t>(i / spec_.mixes.size());
        const uint32_t m =
            static_cast<uint32_t>(i % spec_.mixes.size());
        CellResult meta = mixBaseMeta(g, m);
        CellResult cached;
        if (spec_.cache &&
            spec_.cache->lookup(meta.seed, meta.fingerprint,
                                &cached)) {
            mixBase_[g][m] = cached.metrics;
            cachedBase_.fetch_add(1);
            return;
        }
        mixBase_[g][m] = runMixCell(g, m, "none", nullptr, meta.seed);
        executedBase_.fetch_add(1);
        meta.metrics = mixBase_[g][m];
        try {
            if (spec_.cache)
                spec_.cache->store(meta);
        } catch (...) {
            base_io_errors.capture();
        }
    });
    base_io_errors.rethrow();
}

size_t
ExperimentRunner::prepareCells()
{
    if (prepared_)
        return cells_.size();
    // Enumerate the grid, axis order fixed by the spec.
    // The drift axis nests between provider and mix, keeping cells
    // mix-contiguous — summarize() groups on that invariant.
    for (uint32_t g = 0; g < geoms_.size(); ++g)
        for (uint32_t d = 0; d < spec_.defenses.size(); ++d)
            for (uint32_t t = 0; t < spec_.thresholds.size(); ++t)
                for (uint32_t p = 0; p < spec_.providers.size(); ++p)
                    for (uint32_t dr = 0; dr < drifts_.size(); ++dr)
                        for (uint32_t m = 0; m < spec_.mixes.size();
                             ++m)
                            cells_.push_back({g, d, t, p, m, dr});
    // Resolve metadata serially: coordinates, seeds, and fingerprints
    // always come from the *current* spec, so they stay consistent
    // even when a cached record predates a spec edit. The spec
    // fingerprint — an order-sensitive hash over every cell
    // fingerprint — is what fabric workers present to the ledger:
    // two processes agree on it iff they would simulate the same
    // grid.
    results_.assign(cells_.size(), CellResult{});
    HashStream spec_hash;
    spec_hash.mix(std::string("svard-spec-v1"));
    for (size_t i = 0; i < cells_.size(); ++i) {
        resolveCellMeta(cells_[i], &results_[i]);
        spec_hash.mix(results_[i].fingerprint);
    }
    specFingerprint_ = spec_hash.value();
    prepared_ = true;
    return cells_.size();
}

void
ExperimentRunner::ensureBaselines()
{
    if (baselinesReady_)
        return;
    obs::Span base_span("sweep", "baselines");
    computeBaselines();
    base_span.arg("executed",
                  static_cast<uint64_t>(executedBase_.load()));
    base_span.arg("cached",
                  static_cast<uint64_t>(cachedBase_.load()));
    baselinesReady_ = true;
}

bool
ExperimentRunner::executeCell(size_t i)
{
    SVARD_ASSERT(prepared_ && baselinesReady_ && i < cells_.size(),
                 "executeCell needs prepareCells + ensureBaselines");
    const SweepCell &c = cells_[i];
    CellResult &out = results_[i];
    CellResult cached;
    if (spec_.cache &&
        spec_.cache->lookup(out.seed, out.fingerprint, &cached)) {
        out.metrics = cached.metrics;
        out.normalized = cached.normalized;
        out.drift = cached.drift;
        return false;
    }
    // Kill/stall drills at cell granularity (no bytes in flight
    // here, so eio/short/torn outcomes are ignored).
    faults::check("runner.cell");
    const DriftSpec &ds = drifts_[c.drift];
    double recal_duty = 0.0;
    if (!ds.isStatic()) {
        // Drift evaluation first: it is pure and cheap, and its
        // recalibration cost parameterizes the mix simulation below.
        DriftEvalInput in;
        in.model = fault::DriftModelSpec::parse(ds.model);
        in.policy = core::RecalPolicy::parse(ds.policy);
        in.epochs = ds.epochs;
        in.guardband = ds.guardband;
        in.seed = driftSeed(c);
        const sim::SimConfig &cfg = geoms_[c.geom];
        in.banks = cfg.banksPerRank();
        in.rowsPerBank = cfg.rowsPerBank;
        const std::string &label =
            spec_.providers[c.provider].moduleLabel;
        std::shared_ptr<const core::VulnProfile> prof;
        if (!label.empty()) {
            prof = baseProfile(c.geom, label);
            in.profile = prof.get();
        }
        in.tRcPs = static_cast<double>(cfg.timing.tRC);
        in.tRefwPs = static_cast<double>(cfg.timing.tREFW);
        out.drift = evaluateDrift(in);
        recal_duty = out.drift.recalCost;
        watchdog_.recordEscapes(out.drift.escapes);
        watchdog_.recordRecalibrations(out.drift.recalibrations);
    }
    out.metrics = runMixCell(
        c.geom, c.mix, out.defense,
        makeProvider(c.geom, spec_.providers[c.provider],
                     out.threshold),
        out.seed, recal_duty);
    const sim::MixMetrics &base = mixBase_[c.geom][c.mix];
    out.normalized.weightedSpeedup =
        safeRatio(out.metrics.weightedSpeedup, base.weightedSpeedup);
    out.normalized.harmonicSpeedup =
        safeRatio(out.metrics.harmonicSpeedup, base.harmonicSpeedup);
    out.normalized.maxSlowdown =
        safeRatio(out.metrics.maxSlowdown, base.maxSlowdown);
    executed_.fetch_add(1);
    if (spec_.cache) {
        // The recalibration write path: storing a drift-annotated
        // record is what a mid-recal kill drill must tear.
        if (!ds.isStatic())
            faults::check("recal.write");
        spec_.cache->store(out);
    }
    return true;
}

const std::vector<CellResult> &
ExperimentRunner::run()
{
    if (ran_)
        return results_;
    // A retry after a latched sink/cache error re-enters here with
    // ran_ still false; counters restart so they never double-count.
    executed_.store(0);
    executedBase_.store(0);
    cachedBase_.store(0);
    interrupted_ = false;

    const auto wall_start = std::chrono::steady_clock::now();
    obs::Span run_span("sweep", "run");

    prepareCells();
    run_span.arg("cells", static_cast<uint64_t>(cells_.size()));

    // Probe the cache: hits keep their checkpointed metrics, misses
    // are scheduled.
    std::vector<size_t> pending;
    std::vector<char> hit(cells_.size(), 0);
    {
        obs::Span probe_span("sweep", "cache_probe");
        for (size_t i = 0; i < cells_.size(); ++i) {
            CellResult &out = results_[i];
            CellResult cached;
            if (spec_.cache &&
                spec_.cache->lookup(out.seed, out.fingerprint,
                                    &cached)) {
                out.metrics = cached.metrics;
                out.normalized = cached.normalized;
                out.drift = cached.drift;
                hit[i] = 1;
            } else {
                pending.push_back(i);
            }
        }
        probe_span.arg("hits",
                       static_cast<uint64_t>(cells_.size() -
                                             pending.size()));
    }
    cachedHits_ = cells_.size() - pending.size();

    obs::ProgressMeter progress(spec_.progressLabel, cells_.size());
    progress.addCached(cachedHits_);
    // Cached drift cells surface their escape/recal counts in the
    // heartbeat immediately; executed cells add theirs as they land.
    for (size_t i = 0; i < cells_.size(); ++i)
        if (hit[i]) {
            progress.addEscapes(results_[i].drift.escapes);
            progress.addRecalibrations(
                results_[i].drift.recalibrations);
        }

    // A fully cached re-run executes nothing: no baselines, no
    // profiles, zero simulated cells.
    if (!pending.empty())
        ensureBaselines();

    // Stream cells out in final order as they finish; cached cells
    // are complete up front (so a resumed sweep's sink emits the
    // already-finished prefix immediately — still on the caller's
    // thread, where sink errors may throw directly).
    OrderedEmitter emitter(results_, spec_.sink.get());
    ErrorLatch io_errors;
    for (size_t i = 0; i < cells_.size(); ++i)
        if (hit[i])
            emitter.complete(i);

    static const obs::MetricId cells_executed =
        obs::counter("sweep.cells_executed");
    static const obs::MetricId cells_cached =
        obs::counter("sweep.cells_cached");
    static const obs::MetricId cell_wall =
        obs::histogram("sweep.cell_wall_us");
    obs::add(cells_cached, cachedHits_);

    std::atomic<size_t> done{cachedHits_};
    parallelFor(pending.size(), spec_.threads, [&](size_t j) {
        const size_t i = pending[j];
        // Graceful stop: drop not-yet-started cells; in-flight ones
        // finish and checkpoint, so a resume continues from here.
        if (spec_.stopFlag &&
            spec_.stopFlag->load(std::memory_order_relaxed))
            return;
        const CellResult &out = results_[i];
        obs::Span cell_span("sweep", "cell");
        cell_span.arg("geometry", out.geometry);
        cell_span.arg("defense", out.defense);
        cell_span.arg("hc_first", out.threshold);
        cell_span.arg("provider", out.provider);
        cell_span.arg("mix", out.mix);
        cell_span.arg("seed", out.seed);
        const auto cell_start = std::chrono::steady_clock::now();
        // Checkpoint (inside executeCell) before emitting: a kill
        // between the two loses sink tail rows (rewritten on resume)
        // but never cached work. I/O failures are latched, not
        // thrown, on worker threads.
        try {
            executeCell(i);
            emitter.complete(i);
            progress.addEscapes(results_[i].drift.escapes);
            progress.addRecalibrations(
                results_[i].drift.recalibrations);
        } catch (...) {
            io_errors.capture();
            emitter.disable();
        }
        obs::observe(cell_wall, microsSince(cell_start));
        obs::add(cells_executed);
        progress.tick();
        if (spec_.onProgress)
            spec_.onProgress(done.fetch_add(1) + 1, cells_.size());
    });
    io_errors.rethrow();
    interrupted_ = spec_.stopFlag &&
                   spec_.stopFlag->load(std::memory_order_relaxed);
    if (spec_.sink)
        spec_.sink->flush();
    progress.finish();
    // An interrupted run is resumable, not finished: leave ran_
    // false so a later run() (same process, flag cleared) continues.
    ran_ = !interrupted_;

    if (!spec_.manifestPath.empty()) {
        obs::RunManifest m;
        m.kind = "sweep";
        for (const sim::SimConfig &g : geoms_)
            m.geometries.push_back(g.geometry);
        m.specFingerprint = specFingerprint_;
        m.baseSeed = spec_.baseSeed;
        m.threads = resolveThreadCount(spec_.threads);
        m.requestsPerCore = spec_.requestsPerCore;
        m.simdImpl = simd::implName(simd::activeImpl());
        m.buildFlags = obs::buildFlagsString();
        m.wallSeconds = secondsSince(wall_start);
        m.cellsTotal = cells_.size();
        m.cellsExecuted = executed_.load();
        m.cellsCached = cachedHits_;
        m.baselinesExecuted = executedBase_.load();
        m.baselinesCached = cachedBase_.load();
        m.sinkQueueHighWater = sinkQueueHighWater(spec_.sink.get());
        m.interrupted = interrupted_;
        m.fabricWorkers = fabricWorkers_;
        // Drift observability: policy axis plus run-wide totals,
        // summed over the full result table so cached cells count
        // too (a resumed sweep reports the same totals as a cold
        // one).
        for (const DriftSpec &d : drifts_)
            m.driftPolicies.push_back(d.name());
        for (const CellResult &r : results_) {
            m.escapes += r.drift.escapes;
            m.recalibrations += r.drift.recalibrations;
        }
        if (spec_.cache)
            m.cachePath = spec_.cache->path();
        writeManifest(spec_.manifestPath, m, obs::snapshot());
    }
    return results_;
}

std::vector<SummaryRow>
ExperimentRunner::summarize()
{
    run();
    std::vector<SummaryRow> rows;
    const size_t mixes = spec_.mixes.size();
    // Cells are mix-contiguous in enumeration order (the drift axis
    // nests outside mix), so each group is one (geometry, defense,
    // threshold, provider, drift) configuration.
    for (size_t start = 0; start < results_.size(); start += mixes) {
        const CellResult &first = results_[start];
        SummaryRow row;
        row.geom = first.cell.geom;
        row.defense = first.defense;
        row.threshold = first.threshold;
        row.provider = first.provider;
        row.drift = drifts_[first.cell.drift].name();
        row.mixCount = static_cast<uint32_t>(mixes);
        for (size_t m = 0; m < mixes; ++m) {
            const sim::MixMetrics &n = results_[start + m].normalized;
            row.meanNormalized.weightedSpeedup += n.weightedSpeedup;
            row.meanNormalized.harmonicSpeedup += n.harmonicSpeedup;
            row.meanNormalized.maxSlowdown += n.maxSlowdown;
            row.driftMetrics.escapeRate +=
                results_[start + m].drift.escapeRate;
            row.driftMetrics.recalCost +=
                results_[start + m].drift.recalCost;
        }
        row.meanNormalized.weightedSpeedup /= mixes;
        row.meanNormalized.harmonicSpeedup /= mixes;
        row.meanNormalized.maxSlowdown /= mixes;
        row.driftMetrics.escapeRate /= mixes;
        row.driftMetrics.recalCost /= mixes;
        // The trajectory is shared across a group's mixes, so the
        // counts of any member cell are the group's counts.
        row.driftMetrics.escapes = first.drift.escapes;
        row.driftMetrics.recalibrations = first.drift.recalibrations;
        rows.push_back(std::move(row));
    }
    return rows;
}

Table
ExperimentRunner::cellTable()
{
    run();
    Table t("Experiment sweep (" + std::to_string(results_.size()) +
                " cells)",
            {"Geometry", "Defense", "HCfirst", "Provider", "Mix",
             "Params", "WS", "HS", "MaxSd", "NormWS", "NormHS",
             "NormMaxSd"});
    for (const auto &r : results_) {
        std::string params;
        for (const auto &[name, value] : r.params)
            params += (params.empty() ? "" : "|") + name + "=" +
                      Table::fmt(value, 3);
        t.addRow({r.geometry,
                  r.defense, Table::fmtHc(int64_t(r.threshold)),
                  r.provider, r.mix, params.empty() ? "-" : params,
                  Table::fmt(r.metrics.weightedSpeedup, 4),
                  Table::fmt(r.metrics.harmonicSpeedup, 4),
                  Table::fmt(r.metrics.maxSlowdown, 4),
                  Table::fmt(r.normalized.weightedSpeedup, 4),
                  Table::fmt(r.normalized.harmonicSpeedup, 4),
                  Table::fmt(r.normalized.maxSlowdown, 4)});
    }
    return t;
}

double
ExperimentRunner::aloneIpc(uint32_t geom, uint32_t bench_idx) const
{
    SVARD_ASSERT(geom < aloneIpc_.size() &&
                     bench_idx < aloneIpc_[geom].size(),
                 "alone-IPC index out of range");
    return aloneIpc_[geom][bench_idx];
}

std::vector<AdversarialResult>
runAdversarialSweep(const AdversarialSpec &adv,
                    SweepIoStats *io_stats)
{
    const sim::SimConfig &cfg = adv.config;
    const auto &suite = sim::benchmarkSuite();

    const auto wall_start = std::chrono::steady_clock::now();
    obs::Span run_span("sweep", "adversarial_run");

    // Typos must throw here, not inside a sharded worker thread.
    for (const auto &c : adv.cases)
        if (!defense::DefenseRegistry::instance().contains(c.defense))
            throw std::invalid_argument("unknown defense \"" +
                                        c.defense +
                                        "\" in adversarial spec");
    validateProviderLabels(adv.providers);
    requireSpec(!adv.cases.empty(), "adversarial case list is empty");
    requireSpec(!adv.providers.empty(), "provider axis is empty");
    requireSpec(adv.requestsPerCore > 0, "requestsPerCore is zero");
    for (const auto &c : adv.cases)
        requireSpec(!c.traces.empty(),
                    "case \"" + c.name + "\" has no traces");

    SweepIoStats stats;
    // Shared fingerprint prefix: everything but the per-cell axes.
    // (The defense threshold is mixed into defended cells only; the
    // no-defense references do not depend on it.)
    auto base_hash = [&](const char *tag) {
        HashStream h;
        h.mix(std::string(tag));
        hashConfig(h, cfg);
        h.mix(adv.requestsPerCore).mix(adv.baseSeed);
        return h;
    };

    // Benign companion mix: the fixed assignment MixRunner uses.
    const sim::WorkloadMix benign = sim::adversarialBenignMix(cfg.cores);

    // Filled only when some cell actually executes: a fully cached
    // resume must skip profile building and baseline simulation
    // entirely, just like the main sweep skips its baselines.
    std::map<std::string, std::shared_ptr<const core::VulnProfile>>
        profiles;
    std::vector<double> alone(suite.size(), 0.0);

    // Reference runs (no defense), shared across providers. These
    // are checkpointed too: a resumed adversarial sweep re-executes
    // nothing it already finished.
    std::vector<std::vector<double>> ref(adv.cases.size());
    std::vector<std::pair<uint32_t, uint32_t>> ref_cells;
    for (uint32_t c = 0; c < adv.cases.size(); ++c) {
        ref[c].assign(adv.cases[c].traces.size(), 0.0);
        for (uint32_t t = 0; t < adv.cases[c].traces.size(); ++t)
            ref_cells.push_back({c, t});
    }
    auto ref_meta = [&](uint32_t c, uint32_t t) {
        CellResult r;
        r.cell = {0, c, 0, 0, t};
        r.seed = hashSeed({adv.baseSeed, c, t, 0xADF0ULL});
        r.geometry = cfg.geometry;
        r.defense = "none";
        r.provider = "(reference)";
        r.mix = adv.cases[c].name + "#" + std::to_string(t);
        HashStream h = base_hash("svard-adv-ref-v1");
        h.mix(r.seed);
        hashTrace(h, adv.cases[c].traces[t]);
        r.fingerprint = h.value();
        return r;
    };
    std::vector<std::pair<uint32_t, uint32_t>> ref_pending;
    for (const auto &[c, t] : ref_cells) {
        const CellResult meta = ref_meta(c, t);
        CellResult cached;
        if (adv.cache &&
            adv.cache->lookup(meta.seed, meta.fingerprint, &cached)) {
            ref[c][t] = cached.metrics.weightedSpeedup;
            ++stats.cached;
        } else {
            ref_pending.push_back({c, t});
        }
    }
    // Defended runs: the full {case x provider x trace} grid, with
    // cache consult before scheduling and in-order sink emission.
    struct Cell
    {
        uint32_t c, p, t;
    };
    std::vector<Cell> cells;
    for (uint32_t c = 0; c < adv.cases.size(); ++c)
        for (uint32_t p = 0; p < adv.providers.size(); ++p)
            for (uint32_t t = 0; t < adv.cases[c].traces.size(); ++t)
                cells.push_back({c, p, t});

    std::vector<CellResult> defended(cells.size());
    std::vector<size_t> pending;
    std::vector<char> hit(cells.size(), 0);
    HashStream spec_hash;
    spec_hash.mix(std::string("svard-adv-spec-v1"));
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &cell = cells[i];
        const ProviderSpec &prov = adv.providers[cell.p];
        CellResult &out = defended[i];
        out.cell = {0, cell.c, 0, cell.p, cell.t};
        out.seed = hashSeed(
            {adv.baseSeed, cell.c, cell.p, cell.t, 0xADF1ULL});
        out.geometry = cfg.geometry;
        out.defense = adv.cases[cell.c].defense;
        out.threshold = adv.threshold;
        out.provider = prov.name;
        out.mix =
            adv.cases[cell.c].name + "#" + std::to_string(cell.t);
        HashStream h = base_hash("svard-adv-v1");
        h.mix(out.seed);
        h.mix(out.defense).mix(adv.threshold);
        h.mix(prov.name).mix(prov.moduleLabel);
        hashTrace(h, adv.cases[cell.c].traces[cell.t]);
        out.fingerprint = h.value();
        spec_hash.mix(out.fingerprint);
        CellResult cached;
        if (adv.cache &&
            adv.cache->lookup(out.seed, out.fingerprint, &cached)) {
            out.metrics = cached.metrics;
            out.normalized = cached.normalized;
            hit[i] = 1;
            ++stats.cached;
        } else {
            pending.push_back(i);
        }
    }

    // Baselines and profiles are only needed for cells that will
    // actually execute.
    if (!ref_pending.empty() || !pending.empty()) {
        std::vector<std::string> labels;
        for (const auto &p : adv.providers)
            if (!p.moduleLabel.empty() &&
                !profiles.count(p.moduleLabel)) {
                profiles[p.moduleLabel] = nullptr;
                labels.push_back(p.moduleLabel);
            }
        parallelFor(labels.size(), adv.threads, [&](size_t i) {
            profiles.find(labels[i])->second =
                buildProfile(labels[i], cfg);
        });

        // Alone IPCs of the benign benchmarks, checkpointed like the
        // main sweep's baselines so resumes skip them too.
        ErrorLatch alone_io_errors;
        std::atomic<size_t> alone_cached{0};
        std::atomic<size_t> alone_executed{0};
        const std::set<uint32_t> bench_set(benign.benchIdx.begin(),
                                           benign.benchIdx.end());
        const std::vector<uint32_t> benches(bench_set.begin(),
                                            bench_set.end());
        parallelFor(benches.size(), adv.threads, [&](size_t i) {
            const uint32_t b = benches[i];
            CellResult meta;
            meta.cell = {0, 0, 0, 0, b};
            meta.seed = hashSeed({adv.baseSeed, b, 0xA10FULL});
            meta.geometry = cfg.geometry;
            meta.defense = "none";
            meta.provider = "(alone)";
            meta.mix = suite[b].name;
            HashStream h = base_hash("svard-adv-alone-v1");
            h.mix(meta.seed).mix(static_cast<uint64_t>(b));
            meta.fingerprint = h.value();
            CellResult cached;
            if (adv.cache &&
                adv.cache->lookup(meta.seed, meta.fingerprint,
                                  &cached)) {
                alone[b] = cached.metrics.weightedSpeedup;
                alone_cached.fetch_add(1);
                return;
            }
            std::vector<std::vector<sim::TraceEntry>> traces;
            traces.push_back(sim::generateTrace(
                suite[b], adv.requestsPerCore, adv.baseSeed,
                sim::coreTraceOffset(adv.baseSeed, 0)));
            sim::System sys(cfg, std::move(traces),
                            adv.requestsPerCore, nullptr);
            alone[b] = std::max(sys.run().ipc[0], 1e-9);
            alone_executed.fetch_add(1);
            meta.metrics.weightedSpeedup = alone[b];
            try {
                if (adv.cache)
                    adv.cache->store(meta);
            } catch (...) {
                alone_io_errors.capture();
            }
        });
        alone_io_errors.rethrow();
        // Keep executed/cached symmetric: baseline runs count on
        // both sides (the main sweep reports baselines separately).
        stats.cached += alone_cached.load();
        stats.executed += alone_executed.load();
    }

    // One adversarial system run: attacker on core 0 (shared
    // implementation with MixRunner::runAdversarial).
    auto run_one = [&](const std::vector<sim::TraceEntry> &attack,
                       const std::string &defense_name,
                       std::shared_ptr<const core::ThresholdProvider>
                           provider,
                       uint64_t seed) {
        return sim::adversarialBenignWs(
            cfg, attack, adv.requestsPerCore, adv.baseSeed,
            defense_name, std::move(provider), seed,
            [&](uint32_t b) { return alone[b]; });
    };

    // One shared scaled profile per label, built serially with its
    // lazy occupancy settled: scaledTo/minThreshold touch mutable
    // profile state, so calling them from concurrent workers (the old
    // make_provider) raced. Svard instances remain per cell.
    std::map<std::string, std::shared_ptr<const core::VulnProfile>>
        scaled_profiles;
    for (const auto &[label, profile] : profiles) {
        if (!profile)
            continue;
        auto scaled = std::make_shared<core::VulnProfile>(
            profile->scaledTo(adv.threshold));
        scaled->minThreshold(); // settle the lazy occupancy
        scaled_profiles[label] = std::move(scaled);
    }

    auto make_provider = [&](const ProviderSpec &p)
        -> std::shared_ptr<const core::ThresholdProvider> {
        if (p.moduleLabel.empty())
            return std::make_shared<core::UniformThreshold>(
                adv.threshold, cfg.rowsPerBank);
        return std::make_shared<core::Svard>(
            scaled_profiles.at(p.moduleLabel));
    };

    ErrorLatch io_errors;
    parallelFor(ref_pending.size(), adv.threads, [&](size_t i) {
        const auto [c, t] = ref_pending[i];
        CellResult out = ref_meta(c, t);
        out.metrics.weightedSpeedup = run_one(
            adv.cases[c].traces[t], "none", nullptr, out.seed);
        ref[c][t] = out.metrics.weightedSpeedup;
        try {
            if (adv.cache)
                adv.cache->store(out);
        } catch (...) {
            io_errors.capture();
        }
    });
    stats.executed += ref_pending.size();
    io_errors.rethrow();

    const size_t defended_hits = cells.size() - pending.size();
    obs::ProgressMeter progress(adv.progressLabel, cells.size());
    progress.addCached(defended_hits);

    OrderedEmitter emitter(defended, adv.sink.get());
    for (size_t i = 0; i < cells.size(); ++i)
        if (hit[i])
            emitter.complete(i);
    std::atomic<size_t> defended_executed{0};
    parallelFor(pending.size(), adv.threads, [&](size_t j) {
        const size_t i = pending[j];
        // Graceful stop: skip cells that have not started yet.
        if (adv.stopFlag &&
            adv.stopFlag->load(std::memory_order_relaxed))
            return;
        const Cell &cell = cells[i];
        CellResult &out = defended[i];
        obs::Span cell_span("sweep", "adversarial_cell");
        cell_span.arg("case", adv.cases[cell.c].name);
        cell_span.arg("defense", out.defense);
        cell_span.arg("provider", out.provider);
        cell_span.arg("trace", static_cast<uint64_t>(cell.t));
        cell_span.arg("seed", out.seed);
        out.metrics.weightedSpeedup = run_one(
            adv.cases[cell.c].traces[cell.t],
            adv.cases[cell.c].defense,
            make_provider(adv.providers[cell.p]), out.seed);
        // Normalized WS vs. the shared no-defense reference (its
        // inverse is this trace's slowdown).
        out.normalized.weightedSpeedup =
            safeRatio(out.metrics.weightedSpeedup,
                      ref[cell.c][cell.t]);
        defended_executed.fetch_add(1);
        try {
            if (adv.cache)
                adv.cache->store(out);
            emitter.complete(i);
        } catch (...) {
            io_errors.capture();
            emitter.disable();
        }
        progress.tick();
    });
    stats.executed += defended_executed.load();
    io_errors.rethrow();
    const bool adv_interrupted =
        adv.stopFlag && adv.stopFlag->load(std::memory_order_relaxed);
    if (adv.sink)
        adv.sink->flush();
    progress.finish();
    if (io_stats)
        *io_stats = stats;

    if (!adv.manifestPath.empty()) {
        obs::RunManifest m;
        m.kind = "adversarial";
        m.geometries.push_back(cfg.geometry);
        m.specFingerprint = spec_hash.value();
        m.baseSeed = adv.baseSeed;
        m.threads = resolveThreadCount(adv.threads);
        m.requestsPerCore = adv.requestsPerCore;
        m.simdImpl = simd::implName(simd::activeImpl());
        m.buildFlags = obs::buildFlagsString();
        m.wallSeconds = secondsSince(wall_start);
        m.cellsTotal = cells.size();
        m.cellsExecuted = defended_executed.load();
        m.cellsCached = defended_hits;
        // Reference + alone runs play the baseline role here.
        m.baselinesExecuted = stats.executed - defended_executed.load();
        m.baselinesCached = stats.cached - defended_hits;
        m.sinkQueueHighWater = sinkQueueHighWater(adv.sink.get());
        m.interrupted = adv_interrupted;
        if (adv.cache)
            m.cachePath = adv.cache->path();
        writeManifest(adv.manifestPath, m, obs::snapshot());
    }

    std::vector<double> ws(cells.size(), 0.0);
    for (size_t i = 0; i < cells.size(); ++i)
        ws[i] = defended[i].metrics.weightedSpeedup;

    // Aggregate: mean over each case's traces; normalize each case
    // to its first provider (the spec's baseline configuration).
    std::vector<AdversarialResult> out;
    size_t idx = 0;
    for (uint32_t c = 0; c < adv.cases.size(); ++c) {
        double baseline_slowdown = 1.0;
        for (uint32_t p = 0; p < adv.providers.size(); ++p) {
            AdversarialResult r;
            r.caseName = adv.cases[c].name;
            r.defense = adv.cases[c].defense;
            r.provider = adv.providers[p].name;
            const size_t n = adv.cases[c].traces.size();
            for (uint32_t t = 0; t < n; ++t, ++idx) {
                r.benignWs += ws[idx];
                r.slowdown += safeRatio(ref[c][t], ws[idx]);
            }
            r.benignWs /= static_cast<double>(n);
            r.slowdown /= static_cast<double>(n);
            if (p == 0)
                baseline_slowdown = r.slowdown;
            r.normalizedSlowdown =
                safeRatio(r.slowdown, baseline_slowdown);
            out.push_back(std::move(r));
        }
    }
    return out;
}

} // namespace svard::engine
