/**
 * @file
 * Deterministic per-cell drift evaluation: given a drift model, a
 * recalibration policy, and the provider's calibration-time profile,
 * walk the cell's drift epochs and count (a) threshold escapes — rows
 * whose true HC_first fell below what the stale profile plus
 * guardband still guarantees — and (b) policy-triggered
 * recalibrations, whose ACT cost is converted into a refresh-duty
 * fraction the memory controller is charged with
 * (sim::SimConfig::recalDuty).
 *
 * The walk samples a deterministic per-bank row subset (hashed
 * offset + odd stride), evaluates drift factors in *unscaled* module
 * space (escape decisions are invariant under the engine's
 * multiplicative threshold rescaling), and is a pure function of its
 * inputs — bit-identical at any thread count and under cache resume.
 */
#ifndef SVARD_ENGINE_DRIFT_EVAL_H
#define SVARD_ENGINE_DRIFT_EVAL_H

#include <cstdint>

#include "core/recal.h"
#include "core/vuln_profile.h"
#include "engine/sweep.h"
#include "fault/drift.h"

namespace svard::engine {

struct DriftEvalInput
{
    fault::DriftModelSpec model;
    core::RecalPolicy policy;
    uint32_t epochs = 0;
    double guardband = 0.0; ///< DriftSpec guardband (policy may add)
    uint64_t seed = 0;      ///< drift trajectory seed
    uint32_t banks = 0;
    uint32_t rowsPerBank = 0;
    /** Calibration-time profile in module space; null for uniform
     *  (No-Svärd) providers, which calibrate every row at the same
     *  worst-case threshold. */
    const core::VulnProfile *profile = nullptr;
    /** Stand-in module-space HC_first keying the Fig. 10 transform
     *  for uniform providers (the typical module minimum). */
    double uniformHc = 32.0 * 1024.0;
    /** Timing inputs of the recalibration cost model, in ps. */
    double tRcPs = 0.0;
    double tRefwPs = 0.0;
};

/** Rows sampled per bank (capped at rowsPerBank). */
constexpr uint32_t kDriftSampleRowsPerBank = 256;

/** Characterization probes charged per sampled row and recal
 *  (HC_first bisection over the tested-count grid). */
constexpr uint32_t kDriftProbesPerRow = 16;

/** Ceiling on the refresh-duty fraction a policy may charge. */
constexpr double kDriftMaxRecalDuty = 0.25;

/**
 * Evaluate one cell's drift trajectory. Fault-injection points:
 * "recal.apply" fires at every policy-triggered recalibration,
 * so kill-storm drills cover mid-recalibration crashes.
 */
DriftMetrics evaluateDrift(const DriftEvalInput &in);

} // namespace svard::engine

#endif // SVARD_ENGINE_DRIFT_EVAL_H
