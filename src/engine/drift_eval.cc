#include "engine/drift_eval.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "fault/vuln_model.h"
#include "fault_inject/fault_inject.h"

namespace svard::engine {

namespace {

constexpr uint64_t kRowTag = 0x44524f57;   // "DROW"
constexpr uint64_t kFieldTag = 0x44464c44; // "DFLD"

} // anonymous namespace

std::string
DriftSpec::name() const
{
    if (isStatic())
        return "none";
    char buf[160];
    snprintf(buf, sizeof buf, "%s/%s/e%u/g%g", model.c_str(),
             policy.c_str(), epochs, guardband);
    return buf;
}

DriftMetrics
evaluateDrift(const DriftEvalInput &in)
{
    DriftMetrics out;
    if (in.epochs == 0 || in.banks == 0 || in.rowsPerBank == 0)
        return out;

    const uint32_t per_bank =
        std::min(kDriftSampleRowsPerBank, in.rowsPerBank);

    // Deterministic sample set: per bank, a hashed offset plus an odd
    // stride (coprime with the power-of-two row count) covers the
    // bank without repeats. Each sample carries its module-space
    // quantized HC_first, keying the Fig. 10 stress transform.
    struct Sample
    {
        uint32_t bank;
        uint32_t row;
        int64_t hcQ;
    };
    std::vector<Sample> samples;
    samples.reserve(static_cast<size_t>(in.banks) * per_bank);
    for (uint32_t b = 0; b < in.banks; ++b) {
        const uint64_t h = hashSeed({in.seed, kRowTag, b});
        const uint32_t offset =
            static_cast<uint32_t>(h % in.rowsPerBank);
        const uint32_t stride = static_cast<uint32_t>(
            ((h >> 32) | 1u) % in.rowsPerBank) | 1u;
        for (uint32_t i = 0; i < per_bank; ++i) {
            const uint32_t row =
                (offset + static_cast<uint64_t>(i) * stride) %
                in.rowsPerBank;
            const double hc =
                in.profile ? in.profile->thresholdOf(b, row)
                           : in.uniformHc;
            samples.push_back(
                {b, row,
                 fault::VulnerabilityModel::quantizeHc(hc)});
        }
    }

    const fault::DriftField field(in.model,
                                  hashSeed({in.seed, kFieldTag}),
                                  in.epochs);
    const double g =
        std::min(0.95, in.guardband + in.policy.extraGuardband());

    uint64_t escapes_since_cal = 0;
    uint32_t calib_epoch = 0;
    for (uint32_t e = 1; e <= in.epochs; ++e) {
        if (in.policy.due(e, escapes_since_cal)) {
            faults::check("recal.apply");
            calib_epoch = e;
            escapes_since_cal = 0;
            ++out.recalibrations;
        }
        uint64_t epoch_escapes = 0;
        for (const Sample &s : samples) {
            const double f_now =
                field.factor(s.bank, s.row, s.hcQ, e);
            const double f_cal =
                field.factor(s.bank, s.row, s.hcQ, calib_epoch);
            if (f_now < f_cal * (1.0 - g))
                ++epoch_escapes;
        }
        out.escapes += epoch_escapes;
        escapes_since_cal += epoch_escapes;
    }

    out.escapeRate =
        static_cast<double>(out.escapes) /
        (static_cast<double>(in.epochs) * samples.size());

    // Each recalibration re-probes the sample set; its ACT time is
    // amortized over the cell's whole drift horizon and charged to
    // the controller as extra per-tREFI refresh duty.
    if (out.recalibrations > 0 && in.tRcPs > 0.0 &&
        in.tRefwPs > 0.0) {
        const double acts_per_recal =
            static_cast<double>(samples.size()) * kDriftProbesPerRow;
        const double recal_ps = static_cast<double>(
                                    out.recalibrations) *
                                acts_per_recal * in.tRcPs;
        out.recalCost = std::min(
            kDriftMaxRecalDuty,
            recal_ps / (static_cast<double>(in.epochs) * in.tRefwPs));
    }
    return out;
}

} // namespace svard::engine
