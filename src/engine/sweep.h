/**
 * @file
 * Declarative experiment grids. The paper's headline evaluations
 * (Fig. 12 performance overheads, Fig. 13 adversarial workloads) are
 * grids of {DRAM module/geometry x defense x threshold provider x
 * workload} runs; a SweepSpec names each axis once and the engine
 * enumerates, shards, and executes the cells. Geometry is a sweep
 * axis too: every cell resamples its module profile onto its
 * SimConfig's banks-per-rank x rows-per-bank space, so HBM-style or
 * multi-channel configurations drop in without touching defense code.
 */
#ifndef SVARD_ENGINE_SWEEP_H
#define SVARD_ENGINE_SWEEP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/system.h"
#include "sim/workload.h"

namespace svard::io {
class ResultSink;
class SweepCache;
} // namespace svard::io

namespace svard::engine {

/** One threshold-provider configuration of the sweep. */
struct ProviderSpec
{
    std::string name;        ///< display name (e.g. "Svard-S0")
    std::string moduleLabel; ///< empty: uniform worst-case threshold

    /** The paper's No-Svärd baseline (uniform worst case). */
    static ProviderSpec
    uniform()
    {
        return {"NoSvard", ""};
    }

    /** Svärd over the named module's vulnerability profile. */
    static ProviderSpec
    svard(const std::string &module_label)
    {
        return {"Svard-" + module_label, module_label};
    }
};

/**
 * One entry of the temporal-drift sweep axis: how per-row HC_first
 * moves over tREFW-sized epochs (fault/drift.h grammar), which
 * recalibration policy the defense runs (core/recal.h grammar), how
 * many drifted epochs the cell covers, and the calibration guardband.
 * The default entry is the static path: no drift, no policy, and the
 * engine reproduces pre-drift results bit for bit.
 */
struct DriftSpec
{
    std::string model = "none";  ///< fault::DriftModelSpec grammar
    std::string policy = "none"; ///< core::RecalPolicy grammar
    uint32_t epochs = 0;         ///< drifted tREFW epochs (0 = static)
    double guardband = 0.0;      ///< fractional threshold headroom

    bool
    isStatic() const
    {
        return model == "none" && policy == "none" && epochs == 0 &&
               guardband == 0.0;
    }

    /** Axis display name ("aging:64/periodic:8/e32/g0.05"). */
    std::string name() const;
};

/** Drift outcome of one cell (zero on the static path). */
struct DriftMetrics
{
    uint64_t escapes = 0;        ///< stale-profile threshold escapes
    uint64_t recalibrations = 0; ///< policy-triggered recals
    double escapeRate = 0.0;     ///< escapes / (epochs x sampled rows)
    double recalCost = 0.0;      ///< refresh-duty fraction charged
};

/**
 * The full grid: geometries x defenses x thresholds x providers x
 * drifts x mixes. Axes with one entry are fixed; the engine runs the
 * cross product of the rest.
 */
struct SweepSpec
{
    /** Base system configuration (also the default geometry). */
    sim::SimConfig config;

    /**
     * Optional geometry axis. Every entry is swept as its own
     * (channels/ranks/banks/rows) system; each entry's `geometry`
     * label lands in the sink's geometry column and in cache
     * fingerprints. When both this and `geometryNames` are empty the
     * axis defaults to {config}.
     */
    std::vector<sim::SimConfig> geometries;

    /**
     * Geometry axis by preset name (sim/presets.h): resolved through
     * sim::presets::get and appended after `geometries`. Unknown
     * names throw std::invalid_argument at construction — a typoed
     * preset must never silently sweep the default system.
     */
    std::vector<std::string> geometryNames;

    std::vector<std::string> defenses;  ///< registry names; "none" ok
    std::vector<double> thresholds;     ///< worst-case HC_first sweep
    std::vector<ProviderSpec> providers;
    std::vector<sim::WorkloadMix> mixes;

    /**
     * Optional temporal-drift axis (model x policy x epochs x
     * guardband per entry). Empty defaults to a single static entry,
     * which reproduces the pre-drift engine byte for byte. Malformed
     * model/policy grammar throws std::invalid_argument at
     * construction.
     */
    std::vector<DriftSpec> drifts;

    size_t requestsPerCore = 6000;
    uint64_t baseSeed = 11;

    /** Worker threads for cell sharding (0 = hardware concurrency). */
    unsigned threads = 0;

    /**
     * Progress hook invoked after each defense cell completes, as
     * (cells_done, cells_total). Called concurrently from worker
     * threads — keep it cheap and thread-safe (an fprintf is fine).
     */
    std::function<void(size_t, size_t)> onProgress;

    /**
     * Defense parameter bag applied to every cell's DefenseContext
     * (registry-driven sweeps, e.g. {"blacklist_fraction", 0.25} for
     * BlockHammer). Recorded per cell and part of the cache
     * fingerprint, so editing a parameter invalidates cached cells.
     */
    std::map<std::string, double> defenseParams;

    /**
     * Optional streaming sink: finished cells are emitted in final
     * enumeration order as soon as every predecessor has completed,
     * so a paper-scale sweep can be tailed while it runs and the
     * final file is bit-identical at any thread count.
     */
    std::shared_ptr<io::ResultSink> sink;

    /**
     * Optional per-cell cache / checkpoint: before scheduling, every
     * cell is looked up by (deterministic seed, spec fingerprint);
     * hits skip execution, misses are appended as workers finish.
     * Re-running an interrupted or edited sweep against the same
     * cache executes only missing/changed cells.
     */
    std::shared_ptr<io::SweepCache> cache;

    /**
     * Optional run-manifest path (obs/manifest.h): after the sweep
     * finishes, a JSON record of what produced the output — spec
     * fingerprint, seed, thread count, SIMD impl, build flags, wall
     * time, cell counts, and the final metrics snapshot — is written
     * here. Conventionally `<out>.manifest.json` next to the sink.
     */
    std::string manifestPath;

    /**
     * Optional graceful-stop flag (signal handlers set it). Workers
     * finish their in-flight cell, skip the rest, and run() returns
     * the partial table with interrupted() true after flushing the
     * sink and cache and writing the manifest with
     * `"interrupted": true`. Finished cells stay checkpointed, so a
     * re-run resumes where the stop landed.
     */
    std::atomic<bool> *stopFlag = nullptr;

    /** Progress/heartbeat phase label ("fig12-sweep" etc). */
    std::string progressLabel = "sweep";
};

/** Grid coordinates of one cell. */
struct SweepCell
{
    uint32_t geom = 0;
    uint32_t defense = 0;
    uint32_t threshold = 0;
    uint32_t provider = 0;
    uint32_t mix = 0;
    /** Drift-axis index; last field so the pre-drift five-coordinate
     *  aggregate initializers keep meaning the static entry. */
    uint32_t drift = 0;
};

/** One executed cell. */
struct CellResult
{
    SweepCell cell;
    uint64_t seed = 0;          ///< deterministic per-cell seed
    uint64_t fingerprint = 0;   ///< hash of the cell's resolved inputs
    std::string geometry;       ///< geometry label (preset name)
    std::string defense;        ///< resolved axis values for reporting
    double threshold = 0.0;
    std::string provider;
    std::string mix;
    /** Resolved drift-axis values ("none"/"none"/0/0 when static). */
    std::string driftModel = "none";
    std::string driftPolicy = "none";
    uint32_t driftEpochs = 0;
    double guardband = 0.0;
    /** Defense parameter bag the cell ran under (sorted by name). */
    std::vector<std::pair<std::string, double>> params;
    sim::MixMetrics metrics;    ///< raw paper metrics
    sim::MixMetrics normalized; ///< vs. same-geometry/mix no-defense run
    DriftMetrics drift;         ///< escapes / recals (static: zeros)
};

/** Mean normalized metrics of one configuration across its mixes. */
struct SummaryRow
{
    uint32_t geom = 0;
    std::string defense;
    double threshold = 0.0;
    std::string provider;
    std::string drift = "none"; ///< DriftSpec::name() of the group
    uint32_t mixCount = 0;
    sim::MixMetrics meanNormalized;
    DriftMetrics driftMetrics;  ///< per-mix means (counts: first cell)
};

// ------------------------------------------------------------------
// Adversarial sweeps (Fig. 13)
// ------------------------------------------------------------------

/** A defense under a family of adversarial traces. */
struct AdversarialCase
{
    std::string name;    ///< display name (e.g. "Hydra-thrash")
    std::string defense; ///< registry name
    /** Traces averaged over (the expected-case attacker does not know
     *  the module's profile, so evaluations vary the target rows). */
    std::vector<std::vector<sim::TraceEntry>> traces;
};

struct AdversarialSpec
{
    sim::SimConfig config;
    double threshold = 64.0; ///< worst-case HC_first
    std::vector<AdversarialCase> cases;
    std::vector<ProviderSpec> providers;
    size_t requestsPerCore = 6000;
    uint64_t baseSeed = 11;
    unsigned threads = 0;

    /** Optional streaming sink for defended cells (see SweepSpec). */
    std::shared_ptr<io::ResultSink> sink;

    /** Optional per-cell cache; covers reference runs too, so a
     *  resumed adversarial sweep re-executes nothing it finished. */
    std::shared_ptr<io::SweepCache> cache;

    /** Optional run-manifest path (see SweepSpec::manifestPath). */
    std::string manifestPath;

    /** Optional graceful-stop flag (see SweepSpec::stopFlag). */
    std::atomic<bool> *stopFlag = nullptr;

    /** Progress/heartbeat phase label. */
    std::string progressLabel = "adversarial";
};

/** Cache effectiveness of one sweep execution. */
struct SweepIoStats
{
    size_t executed = 0; ///< cells actually simulated this run
    size_t cached = 0;   ///< cells satisfied from the cache
};

struct AdversarialResult
{
    std::string caseName;
    std::string defense;
    std::string provider;
    double benignWs = 0.0;  ///< mean benign weighted speedup
    double slowdown = 0.0;  ///< mean no-defense WS / defended WS
    /** slowdown / the same case's first-provider slowdown. Put the
     *  No-Svärd baseline first in AdversarialSpec::providers to get
     *  the paper's normalize-to-NoSvärd bars. */
    double normalizedSlowdown = 0.0;
};

} // namespace svard::engine

#endif // SVARD_ENGINE_SWEEP_H
