#include "core/recal.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.h"

namespace svard::core {

namespace {

[[noreturn]] void
badPolicy(const std::string &text, const char *why)
{
    throw std::invalid_argument(
        "bad recalibration policy \"" + text + "\": " + why +
        " (grammar: none | periodic:<interval> | "
        "reactive:<escapes> | margin:<headroom>)");
}

double
parseArg(const std::string &text, const std::string &tok)
{
    try {
        size_t pos = 0;
        const double v = std::stod(tok, &pos);
        if (pos != tok.size() || !std::isfinite(v))
            badPolicy(text, "malformed argument");
        return v;
    } catch (const std::invalid_argument &) {
        badPolicy(text, "malformed argument");
    } catch (const std::out_of_range &) {
        badPolicy(text, "malformed argument");
    }
}

} // anonymous namespace

RecalPolicy
RecalPolicy::parse(const std::string &text)
{
    RecalPolicy p;
    const size_t colon = text.find(':');
    const std::string head = text.substr(0, colon);
    const bool has_arg = colon != std::string::npos;
    const std::string tok =
        has_arg ? text.substr(colon + 1) : std::string();

    if (head == "none") {
        if (has_arg)
            badPolicy(text, "\"none\" takes no argument");
        p.kind = RecalKind::None;
    } else if (head == "periodic") {
        if (!has_arg)
            badPolicy(text, "periodic needs an epoch interval");
        p.kind = RecalKind::Periodic;
        p.arg = parseArg(text, tok);
        if (p.arg < 1.0 || p.arg != std::floor(p.arg) ||
            p.arg > 1e6)
            badPolicy(text, "interval must be an integer >= 1");
    } else if (head == "reactive") {
        if (!has_arg)
            badPolicy(text, "reactive needs an escape threshold");
        p.kind = RecalKind::Reactive;
        p.arg = parseArg(text, tok);
        if (p.arg < 1.0 || p.arg != std::floor(p.arg) ||
            p.arg > 1e12)
            badPolicy(text, "escape threshold must be an integer "
                            ">= 1");
    } else if (head == "margin") {
        if (!has_arg)
            badPolicy(text, "margin needs a headroom fraction");
        p.kind = RecalKind::Margin;
        p.arg = parseArg(text, tok);
        if (!(p.arg > 0.0) || p.arg > 0.9)
            badPolicy(text, "headroom must be in (0, 0.9]");
    } else {
        badPolicy(text, "unknown policy");
    }
    return p;
}

std::string
RecalPolicy::name() const
{
    char buf[64];
    switch (kind) {
      case RecalKind::None:
        return "none";
      case RecalKind::Periodic:
        snprintf(buf, sizeof buf, "periodic:%.0f", arg);
        return buf;
      case RecalKind::Reactive:
        snprintf(buf, sizeof buf, "reactive:%.0f", arg);
        return buf;
      case RecalKind::Margin:
        snprintf(buf, sizeof buf, "margin:%g", arg);
        return buf;
    }
    return "none";
}

void
GuardbandWatchdog::recordEscapes(uint64_t n)
{
    if (n == 0)
        return;
    escapes_.fetch_add(n, std::memory_order_relaxed);
    static const obs::MetricId id = obs::counter("drift.escapes");
    obs::add(id, n);
}

void
GuardbandWatchdog::recordRecalibrations(uint64_t n)
{
    if (n == 0)
        return;
    recals_.fetch_add(n, std::memory_order_relaxed);
    static const obs::MetricId id =
        obs::counter("drift.recalibrations");
    obs::add(id, n);
}

} // namespace svard::core
