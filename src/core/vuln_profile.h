/**
 * @file
 * Row-level read-disturbance vulnerability profile: the data structure
 * at the heart of Svärd (paper Sec. 6). Each DRAM row is assigned a
 * small vulnerability bin id (<= 16 bins, 4 bits); each bin carries a
 * *safe* HC_first lower bound — the largest tested hammer count at
 * which no row of the bin flipped. Defenses configured from a bin's
 * bound therefore keep the paper's security guarantees (Sec. 6.3).
 */
#ifndef SVARD_CORE_VULN_PROFILE_H
#define SVARD_CORE_VULN_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

#include "fault/vuln_model.h"

namespace svard::core {

/**
 * Per-row vulnerability bins for one module (all banks), keyed by
 * *physical* row address: the space in which adjacency is +-1 and in
 * which defenses reason about aggressors and victims. (Deployments
 * translate interface addresses through the reverse-engineered in-DRAM
 * mapping before consulting the profile, exactly as the paper's
 * methodology does for hammering.)
 */
class VulnProfile
{
  public:
    /**
     * @param label profile name (e.g. the source module, "S0")
     * @param banks number of banks
     * @param rows_per_bank rows per bank
     * @param bin_bounds safe HC_first lower bound per bin, ascending
     */
    VulnProfile(std::string label, uint32_t banks, uint32_t rows_per_bank,
                std::vector<double> bin_bounds);

    /**
     * Build a profile directly from the fault model (oracle profile):
     * every row's continuous HC_first is quantized to the tested
     * hammer counts and the bin bound is the previous tested count
     * (the largest count observed safe). This matches what a complete
     * characterization run measures; the charz library produces the
     * same structure from actual Alg. 1 measurements.
     *
     * @param num_bins at most 16; tested-hammer-count bins are merged
     *        from the weak end upward to fit.
     */
    static VulnProfile fromModel(const fault::VulnerabilityModel &model,
                                 uint32_t num_bins = 14);

    /** Assign one row's bin (builder API used by the charz pipeline). */
    void setBin(uint32_t bank, uint32_t row, uint8_t bin);

    uint8_t binOf(uint32_t bank, uint32_t row) const;

    /** Safe HC_first lower bound of a row. */
    double thresholdOf(uint32_t bank, uint32_t row) const;

    /**
     * The module's worst-case safe threshold: the smallest bound among
     * bins that actually contain rows (the paper's "minimum observed
     * HC_first"; bins below the module minimum stay empty and must not
     * anchor the profile's scaling).
     */
    double minThreshold() const;

    /** Largest occupied bin bound. */
    double maxThreshold() const;

    /**
     * Scaled copy for future-chip evaluation (paper Sec. 7.1): all bin
     * bounds multiplied so the minimum bound equals
     * `target_min_hc_first`, preserving the distribution's shape.
     */
    VulnProfile scaledTo(double target_min_hc_first) const;

    /**
     * Re-sample the profile onto a different chip geometry (the
     * simulated system's bank/row counts differ from the
     * characterized module's): each target row inherits the bin of
     * the proportionally-located source row, preserving the spatial
     * structure of the vulnerability distribution.
     */
    VulnProfile resampledTo(uint32_t banks, uint32_t rows_per_bank) const;

    const std::string &label() const { return label_; }
    uint32_t banks() const { return banks_; }
    uint32_t rowsPerBank() const { return rowsPerBank_; }
    uint32_t numBins() const
    {
        return static_cast<uint32_t>(binBounds_.size());
    }
    const std::vector<double> &binBounds() const { return binBounds_; }

    /** Fraction of rows in each bin (profile shape diagnostics). */
    std::vector<double> binOccupancy() const;

    /** Metadata bits needed: bits-per-row x rows (Sec. 6.4). */
    uint64_t metadataBits() const;

  private:
    std::string label_;
    uint32_t banks_;
    uint32_t rowsPerBank_;
    std::vector<double> binBounds_;
    std::vector<std::vector<uint8_t>> bins_; ///< [bank][row]
    // Occupied-bin range, maintained incrementally by setBin (freshly
    // constructed profiles have every row in bin 0).
    mutable uint8_t minOccupied_ = 0;
    mutable uint8_t maxOccupied_ = 0;
    mutable bool occupancyDirty_ = false;
    void refreshOccupancy() const;
};

} // namespace svard::core

#endif // SVARD_CORE_VULN_PROFILE_H
