#include "core/svard.h"

#include <algorithm>

#include "common/log.h"

namespace svard::core {

double
ThresholdProvider::aggressorBudget(uint32_t bank, uint32_t row) const
{
    // An activation of `row` disturbs its neighbors; the aggressor's
    // budget is the weakest neighbor's threshold. Edge rows have one
    // neighbor.
    double budget = worstCase() * 1e9; // larger than any real bound
    if (row > 0)
        budget = std::min(budget, victimThreshold(bank, row - 1));
    if (row + 1 < rowsPerBank())
        budget = std::min(budget, victimThreshold(bank, row + 1));
    return budget;
}

Svard::Svard(std::shared_ptr<const VulnProfile> profile)
    : profile_(std::move(profile))
{
    SVARD_ASSERT(profile_ != nullptr, "Svard needs a profile");
}

double
Svard::victimThreshold(uint32_t bank, uint32_t row) const
{
    ++lookups_;
    return profile_->thresholdOf(bank, row);
}

double
Svard::worstCase() const
{
    return profile_->minThreshold();
}

uint32_t
Svard::rowsPerBank() const
{
    return profile_->rowsPerBank();
}

uint32_t
Svard::banks() const
{
    return profile_->banks();
}

} // namespace svard::core
