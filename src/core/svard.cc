#include "core/svard.h"

#include <algorithm>
#include <vector>

#include "common/log.h"
#include "common/simd.h"

namespace svard::core {

double
ThresholdProvider::aggressorBudget(uint32_t bank, uint32_t row) const
{
    // An activation of `row` disturbs its neighbors; the aggressor's
    // budget is the weakest neighbor's threshold. Edge rows have one
    // neighbor.
    double budget = worstCase() * 1e9; // larger than any real bound
    if (row > 0)
        budget = std::min(budget, victimThreshold(bank, row - 1));
    if (row + 1 < rowsPerBank())
        budget = std::min(budget, victimThreshold(bank, row + 1));
    return budget;
}

void
ThresholdProvider::victimThresholdBatch(uint32_t bank, uint32_t row0,
                                        uint32_t n, double *out) const
{
    for (uint32_t i = 0; i < n; ++i)
        out[i] = victimThreshold(bank, row0 + i);
}

void
ThresholdProvider::aggressorBudgetBatchMemo(uint32_t bank,
                                            uint32_t row0,
                                            uint32_t n) const
{
    if (n == 0)
        return;
    if (!memoReady_)
        initBudgetMemo();
    const uint32_t rows = memoRows_;
    if (!budgetMemo_ || row0 >= rows)
        return;
    n = std::min<uint64_t>(n, static_cast<uint64_t>(rows) - row0);
    if (bank >= memoBanks_)
        bank %= memoBanks_; // bank-agnostic providers memo one bank
    // The run's budgets are min(thr[row-1], thr[row+1]) with the same
    // outside-the-array sentinel aggressorBudget() uses, so the fold
    // needs the thresholds of [row0, row0+n) plus the two rows just
    // outside the run (when they exist).
    const double sentinel = worstCase() * 1e9;
    std::vector<double> thr(n);
    std::vector<double> budget(n);
    victimThresholdBatch(bank, row0, n, thr.data());
    double edge_lo = sentinel;
    double edge_hi = sentinel;
    if (row0 > 0)
        edge_lo = victimThreshold(bank, row0 - 1);
    if (row0 + n < rows)
        edge_hi = victimThreshold(bank, row0 + n);
    simd::minNeighborsBatch(thr.data(), n, edge_lo, edge_hi,
                            budget.data());
    double *slots =
        budgetMemo_.get() + static_cast<size_t>(bank) * rows + row0;
    // Scalar aggressorBudget starts its fold AT the sentinel, so the
    // stored value is min(sentinel, neighbors); clamp the vector fold
    // the same way so the two paths agree bit for bit even when a
    // degenerate profile puts thresholds above the sentinel.
    for (uint32_t i = 0; i < n; ++i)
        slots[i] = std::min(budget[i], sentinel);
}

Svard::Svard(std::shared_ptr<const VulnProfile> profile)
    : profile_(std::move(profile))
{
    SVARD_ASSERT(profile_ != nullptr, "Svard needs a profile");
}

double
Svard::victimThreshold(uint32_t bank, uint32_t row) const
{
    ++lookups_;
    return profile_->thresholdOf(bank, row);
}

void
Svard::victimThresholdBatch(uint32_t bank, uint32_t row0, uint32_t n,
                            double *out) const
{
    // Dense bin-table reads, no per-row virtual dispatch. Each served
    // row is still one table lookup for the overhead accounting.
    lookups_ += n;
    for (uint32_t i = 0; i < n; ++i)
        out[i] = profile_->thresholdOf(bank, row0 + i);
}

double
Svard::worstCase() const
{
    return profile_->minThreshold();
}

uint32_t
Svard::rowsPerBank() const
{
    return profile_->rowsPerBank();
}

uint32_t
Svard::banks() const
{
    return profile_->banks();
}

} // namespace svard::core
