/**
 * @file
 * The Svärd mechanism (paper Sec. 6): a small metadata table consulted
 * on every row activation that supplies the read-disturbance defense
 * with a per-victim-row HC_first threshold instead of the worst-case
 * chip-wide value. Defenses consume the ThresholdProvider interface;
 * "no Svärd" is the UniformThreshold provider pinned at the chip's
 * worst-case HC_first, which is exactly how the paper's baselines are
 * configured.
 */
#ifndef SVARD_CORE_SVARD_H
#define SVARD_CORE_SVARD_H

#include <cstdint>
#include <cstdlib>
#include <memory>

#include "core/vuln_profile.h"

namespace svard::core {

/**
 * Per-row threshold oracle consulted by defenses on each activation.
 * Thresholds are expressed in hammers (activation pairs), matching
 * HC_first's unit.
 */
class ThresholdProvider
{
  public:
    virtual ~ThresholdProvider() = default;

    /** Safe HC_first lower bound of a potential *victim* row. */
    virtual double victimThreshold(uint32_t bank, uint32_t row) const = 0;

    /**
     * Activation budget of an *aggressor* row: the smallest safe
     * threshold among the rows its activation disturbs (its two
     * logical neighbors; conservatively clamped at array edges).
     */
    virtual double aggressorBudget(uint32_t bank, uint32_t row) const;

    /**
     * Batch victimThreshold over a contiguous run of rows:
     * out[i] = victimThreshold(bank, row0 + i) for i in [0, n). The
     * default loops the virtual call; providers with dense storage
     * (Svard's bin table) override with a direct read loop.
     */
    virtual void victimThresholdBatch(uint32_t bank, uint32_t row0,
                                      uint32_t n, double *out) const;

    /** Chip-wide worst case (used for sizing defense structures). */
    virtual double worstCase() const = 0;

    virtual uint32_t rowsPerBank() const = 0;

    /**
     * Banks the provider distinguishes, or 0 when the threshold is
     * bank-agnostic (uniform). Defenses fold flat bank indices into
     * this space before looking thresholds up.
     */
    virtual uint32_t banks() const { return 0; }

    /**
     * Memoized aggressorBudget: the per-ACT hot path of every counter
     * defense. The first touch of a (bank,row) pays the two virtual
     * victimThreshold calls and parks the result in a flat
     * banks x rowsPerBank array; every later ACT of that aggressor is
     * one load. The memo is lazily sized on first use and is why
     * providers must not be shared across concurrently-running sweep
     * cells (the engine already builds one provider per cell).
     */
    double
    aggressorBudgetMemo(uint32_t bank, uint32_t row) const
    {
        if (!memoReady_)
            initBudgetMemo();
        if (row >= memoRows_ || !budgetMemo_)
            return aggressorBudget(bank, row);
        if (bank >= memoBanks_)
            bank %= memoBanks_; // bank-agnostic providers memo one bank
        double &slot =
            budgetMemo_[static_cast<size_t>(bank) * memoRows_ + row];
        if (slot == 0.0)
            slot = aggressorBudget(bank, row);
        return slot;
    }

    /**
     * Batch-fill the aggressor-budget memo for the contiguous rows
     * [row0, row0 + n): one victimThresholdBatch over the run plus its
     * two boundary rows, folded by simd::minNeighborsBatch. Values are
     * identical to n scalar aggressorBudgetMemo calls — the vector min
     * is exactly std::min on these finite positive thresholds. Used
     * when a defense knows a whole row run is about to go hot (Hydra's
     * group promotion seeds per-row counters for the full group, and
     * every subsequent ACT of those rows consults the memo). Rows
     * beyond rowsPerBank() are ignored.
     */
    void aggressorBudgetBatchMemo(uint32_t bank, uint32_t row0,
                                  uint32_t n) const;

    // ---- temporal calibration state (drift robustness layer) ----
    // Thresholds above are a snapshot from characterization time; on
    // a drifting module the defense must know *when* it was
    // calibrated and how much safety margin it keeps against the
    // profile going stale (fault/drift.h, core/recal.h).

    /** Stamp the profile snapshot: drift epoch it was taken at and
     *  the fractional threshold headroom the defense enforces. */
    void
    setCalibration(uint64_t epoch, double guardband)
    {
        calibrationEpoch_ = epoch;
        guardband_ = guardband;
    }

    /** Drift epoch this provider's thresholds were characterized at
     *  (0 = factory calibration / static operation). */
    uint64_t calibrationEpoch() const { return calibrationEpoch_; }

    /** Fractional safety margin in [0, 1): the defense acts as if
     *  every threshold were this much lower than calibrated. */
    double guardband() const { return guardband_; }

    /** The threshold a guardbanded defense actually enforces. */
    double
    enforcedThreshold(uint32_t bank, uint32_t row) const
    {
        return victimThreshold(bank, row) * (1.0 - guardband_);
    }

  private:
    uint64_t calibrationEpoch_ = 0;
    double guardband_ = 0.0;

    void
    initBudgetMemo() const
    {
        memoBanks_ = banks() == 0 ? 1 : banks();
        memoRows_ = rowsPerBank();
        // calloc, not a value-initialized vector: the memo is tens of
        // megabytes per provider and mostly untouched, so zero-fill
        // should come from the OS's zero pages, not a memset.
        budgetMemo_.reset(static_cast<double *>(std::calloc(
            static_cast<size_t>(memoBanks_) * memoRows_,
            sizeof(double))));
        memoReady_ = true;
    }

    // Zero marks "not yet computed": real budgets are positive, and a
    // degenerate zero budget merely recomputes (still correct).
    struct FreeDeleter
    {
        void operator()(double *p) const { std::free(p); }
    };
    mutable std::unique_ptr<double[], FreeDeleter> budgetMemo_;
    mutable uint32_t memoBanks_ = 1;
    mutable uint32_t memoRows_ = 0;
    mutable bool memoReady_ = false;
};

/**
 * Baseline configuration without Svärd: every row is treated as being
 * as vulnerable as the chip's weakest row.
 */
class UniformThreshold : public ThresholdProvider
{
  public:
    UniformThreshold(double hc_first, uint32_t rows_per_bank)
        : hcFirst_(hc_first), rowsPerBank_(rows_per_bank)
    {}

    double
    victimThreshold(uint32_t, uint32_t) const override
    {
        return hcFirst_;
    }
    double worstCase() const override { return hcFirst_; }
    uint32_t rowsPerBank() const override { return rowsPerBank_; }

  private:
    double hcFirst_;
    uint32_t rowsPerBank_;
};

/**
 * Svärd proper: the memory-controller (or in-DRAM) metadata table that
 * maps an activated row address to its vulnerability bin's threshold
 * (paper Fig. 11). Lookup is a direct index — overlappable with the
 * row activation itself (Sec. 6.4) — and the storage cost is
 * profile().metadataBits().
 */
class Svard : public ThresholdProvider
{
  public:
    explicit Svard(std::shared_ptr<const VulnProfile> profile);

    double victimThreshold(uint32_t bank, uint32_t row) const override;
    void victimThresholdBatch(uint32_t bank, uint32_t row0, uint32_t n,
                              double *out) const override;
    double worstCase() const override;
    uint32_t rowsPerBank() const override;
    uint32_t banks() const override;

    const VulnProfile &profile() const { return *profile_; }

    /** Table lookups served (each overlaps a row activation). */
    uint64_t lookups() const { return lookups_; }

  private:
    std::shared_ptr<const VulnProfile> profile_;
    mutable uint64_t lookups_ = 0;
};

} // namespace svard::core

#endif // SVARD_CORE_SVARD_H
