/**
 * @file
 * Online recalibration policies and the guardband watchdog — the
 * defense-side half of the temporal-drift robustness layer. A
 * defense calibrated at epoch 0 sees its profile go stale as per-row
 * HC_first drifts (fault/drift.h); a RecalPolicy decides *when* to
 * pay for re-characterization, and the GuardbandWatchdog turns every
 * threshold escape (a row whose true HC_first fell below what the
 * stale profile plus guardband still guarantees) into obs metrics
 * instead of a crashed run.
 *
 * Policy grammar (the registry the sweep axis parses):
 *   none                  never recalibrate
 *   periodic:<interval>   recalibrate every <interval> drift epochs
 *   reactive:<escapes>    recalibrate once >= <escapes> escapes were
 *                         observed since the last calibration
 *   margin:<headroom>     never recalibrate; add <headroom> to the
 *                         threshold guardband instead
 */
#ifndef SVARD_CORE_RECAL_H
#define SVARD_CORE_RECAL_H

#include <atomic>
#include <cstdint>
#include <string>

namespace svard::core {

enum class RecalKind : uint8_t
{
    None = 0,
    Periodic = 1,
    Reactive = 2,
    Margin = 3,
};

struct RecalPolicy
{
    RecalKind kind = RecalKind::None;
    double arg = 0.0; ///< interval epochs / escape count / headroom

    /** @throws std::invalid_argument on unknown grammar */
    static RecalPolicy parse(const std::string &text);

    /** Canonical name; parse(name()) round-trips. */
    std::string name() const;

    /** Extra guardband a margin policy buys (0 otherwise). */
    double
    extraGuardband() const
    {
        return kind == RecalKind::Margin ? arg : 0.0;
    }

    /** Should the defense recalibrate at the start of `epoch`, given
     *  the escapes observed since the previous calibration? */
    bool
    due(uint32_t epoch, uint64_t escapes_since_cal) const
    {
        switch (kind) {
          case RecalKind::Periodic: {
            const auto k = static_cast<uint32_t>(arg);
            return k > 0 && epoch % k == 0;
          }
          case RecalKind::Reactive:
            return escapes_since_cal >=
                   static_cast<uint64_t>(arg);
          default:
            return false;
        }
    }
};

/**
 * Counts stale-profile escapes and recalibrations; feeds the obs
 * metrics registry ("drift.escapes", "drift.recalibrations") so long
 * sweeps surface degradation in flight instead of failing. Thread
 * safe: workers record concurrently.
 */
class GuardbandWatchdog
{
  public:
    void recordEscapes(uint64_t n);
    void recordRecalibrations(uint64_t n);

    uint64_t escapes() const
    {
        return escapes_.load(std::memory_order_relaxed);
    }
    uint64_t recalibrations() const
    {
        return recals_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> escapes_{0};
    std::atomic<uint64_t> recals_{0};
};

} // namespace svard::core

#endif // SVARD_CORE_RECAL_H
