#include "core/vuln_profile.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace svard::core {

VulnProfile::VulnProfile(std::string label, uint32_t banks,
                         uint32_t rows_per_bank,
                         std::vector<double> bin_bounds)
    : label_(std::move(label)), banks_(banks), rowsPerBank_(rows_per_bank),
      binBounds_(std::move(bin_bounds))
{
    SVARD_ASSERT(!binBounds_.empty() && binBounds_.size() <= 16,
                 "profile needs 1..16 bins");
    SVARD_ASSERT(std::is_sorted(binBounds_.begin(), binBounds_.end()),
                 "bin bounds must ascend");
    bins_.assign(banks_, std::vector<uint8_t>(rowsPerBank_, 0));
}

VulnProfile
VulnProfile::fromModel(const fault::VulnerabilityModel &model,
                       uint32_t num_bins)
{
    SVARD_ASSERT(num_bins >= 1 && num_bins <= 16, "1..16 bins");
    const auto &spec = model.spec();
    const auto &labels = dram::testedHammerCounts();

    // Natural bins: one per tested hammer count; the safe bound of the
    // bin holding rows measured at labels[i] is labels[i-1] (no flips
    // were observed there). The weakest bin's bound backs off to 3/4
    // of its label.
    std::vector<double> bounds;
    bounds.reserve(labels.size());
    for (size_t i = 0; i < labels.size(); ++i)
        bounds.push_back(i == 0
                             ? 0.75 * static_cast<double>(labels[0])
                             : static_cast<double>(labels[i - 1]));

    // Merge from the weak end to fit num_bins: bins [0 .. merge] share
    // the weakest (safest) bound. Merging weak bins is conservative;
    // merging strong bins would forfeit Svärd's benefit where it is
    // largest.
    std::vector<uint32_t> bin_of_label(labels.size());
    std::vector<double> merged;
    if (num_bins >= labels.size()) {
        merged = bounds;
        for (size_t i = 0; i < labels.size(); ++i)
            bin_of_label[i] = static_cast<uint32_t>(i);
    } else {
        const size_t excess = labels.size() - num_bins;
        merged.push_back(bounds[0]);
        bin_of_label[0] = 0;
        for (size_t i = 1; i < labels.size(); ++i) {
            if (i <= excess) {
                bin_of_label[i] = 0; // merged into the weakest bin
            } else {
                bin_of_label[i] = static_cast<uint32_t>(merged.size());
                merged.push_back(bounds[i]);
            }
        }
    }

    VulnProfile prof(spec.label, spec.banks, spec.rowsPerBank,
                     std::move(merged));
    for (uint32_t b = 0; b < spec.banks; ++b) {
        for (uint32_t r = 0; r < spec.rowsPerBank; ++r) {
            const int64_t q = fault::VulnerabilityModel::quantizeHc(
                model.hcFirst(b, r));
            size_t idx = 0;
            for (size_t i = 0; i < labels.size(); ++i)
                if (labels[i] == q)
                    idx = i;
            prof.setBin(b, r, static_cast<uint8_t>(bin_of_label[idx]));
        }
    }
    return prof;
}

void
VulnProfile::setBin(uint32_t bank, uint32_t row, uint8_t bin)
{
    SVARD_ASSERT(bank < banks_ && row < rowsPerBank_, "row out of range");
    SVARD_ASSERT(bin < binBounds_.size(), "bin out of range");
    bins_[bank][row] = bin;
    occupancyDirty_ = true;
}

void
VulnProfile::refreshOccupancy() const
{
    uint8_t lo = static_cast<uint8_t>(binBounds_.size() - 1);
    uint8_t hi = 0;
    for (const auto &bank : bins_) {
        for (uint8_t b : bank) {
            if (b < lo)
                lo = b;
            if (b > hi)
                hi = b;
        }
    }
    minOccupied_ = lo;
    maxOccupied_ = hi;
    occupancyDirty_ = false;
}

uint8_t
VulnProfile::binOf(uint32_t bank, uint32_t row) const
{
    SVARD_ASSERT(bank < banks_ && row < rowsPerBank_, "row out of range");
    return bins_[bank][row];
}

double
VulnProfile::thresholdOf(uint32_t bank, uint32_t row) const
{
    return binBounds_[binOf(bank, row)];
}

double
VulnProfile::minThreshold() const
{
    if (occupancyDirty_)
        refreshOccupancy();
    return binBounds_[minOccupied_];
}

double
VulnProfile::maxThreshold() const
{
    if (occupancyDirty_)
        refreshOccupancy();
    return binBounds_[maxOccupied_];
}

VulnProfile
VulnProfile::scaledTo(double target_min_hc_first) const
{
    SVARD_ASSERT(target_min_hc_first > 0.0, "target must be positive");
    const double factor = target_min_hc_first / minThreshold();
    std::vector<double> bounds = binBounds_;
    for (double &b : bounds)
        b *= factor;
    VulnProfile out(label_, banks_, rowsPerBank_, std::move(bounds));
    out.bins_ = bins_;
    out.occupancyDirty_ = true;
    return out;
}

VulnProfile
VulnProfile::resampledTo(uint32_t banks, uint32_t rows_per_bank) const
{
    VulnProfile out(label_, banks, rows_per_bank, binBounds_);
    for (uint32_t b = 0; b < banks; ++b) {
        const uint32_t src_bank = b % banks_;
        for (uint32_t r = 0; r < rows_per_bank; ++r) {
            const uint32_t src_row = static_cast<uint32_t>(
                (static_cast<uint64_t>(r) * rowsPerBank_) /
                rows_per_bank);
            out.setBin(b, r, binOf(src_bank, src_row));
        }
    }
    return out;
}

std::vector<double>
VulnProfile::binOccupancy() const
{
    std::vector<uint64_t> counts(binBounds_.size(), 0);
    for (const auto &bank : bins_)
        for (uint8_t b : bank)
            ++counts[b];
    const double total = static_cast<double>(banks_) *
                         static_cast<double>(rowsPerBank_);
    std::vector<double> out(counts.size());
    for (size_t i = 0; i < counts.size(); ++i)
        out[i] = static_cast<double>(counts[i]) / total;
    return out;
}

uint64_t
VulnProfile::metadataBits() const
{
    uint32_t bits = 1;
    while ((1u << bits) < binBounds_.size())
        ++bits;
    return static_cast<uint64_t>(bits) * banks_ * rowsPerBank_;
}

} // namespace svard::core
