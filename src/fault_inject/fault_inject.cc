#include "fault_inject/fault_inject.h"

#ifndef SVARD_FAULTS_OFF

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/mutex.h"

namespace svard::faults {

namespace {

struct PlanEntry
{
    std::string point;
    Action action = Action::None;
    uint64_t at = 1;      ///< 1-based hit count that fires
    bool persistent = false; ///< '+': fire on every hit >= at
    uint64_t arg = 0;
    std::atomic<uint64_t> hits{0};

    PlanEntry() = default;
    PlanEntry(const PlanEntry &o)
        : point(o.point), action(o.action), at(o.at),
          persistent(o.persistent), arg(o.arg),
          hits(o.hits.load(std::memory_order_relaxed))
    {}
};

/** The installed plan. Reconfiguration is rare (process start,
 *  test setup) and guarded; check() reads the vector without a lock,
 *  which is safe because configure() swaps the active flag off while
 *  it mutates. Tests never reconfigure concurrently with I/O. */
std::vector<PlanEntry> &
plan()
{
    static std::vector<PlanEntry> entries;
    return entries;
}

std::atomic<bool> g_active{false};
Mutex g_mu;

const char *
actionName(Action a)
{
    switch (a) {
    case Action::None: return "none";
    case Action::Kill: return "kill";
    case Action::Eio: return "eio";
    case Action::Short: return "short";
    case Action::Torn: return "torn";
    case Action::Stall: return "stall";
    case Action::Sigterm: return "sigterm";
    }
    return "?";
}

Action
parseAction(const std::string &s)
{
    if (s == "kill") return Action::Kill;
    if (s == "eio") return Action::Eio;
    if (s == "short") return Action::Short;
    if (s == "torn") return Action::Torn;
    if (s == "stall") return Action::Stall;
    if (s == "sigterm") return Action::Sigterm;
    throw std::invalid_argument("SVARD_FAULT: unknown action \"" + s +
                                "\" (kill|eio|short|torn|stall|"
                                "sigterm)");
}

uint64_t
parseCount(const std::string &s, const char *what)
{
    if (s.empty() ||
        s.find_first_not_of("0123456789") != std::string::npos)
        throw std::invalid_argument(
            std::string("SVARD_FAULT: malformed ") + what + " \"" + s +
            "\"");
    const uint64_t v = std::strtoull(s.c_str(), nullptr, 10);
    return v;
}

PlanEntry
parseEntry(const std::string &raw)
{
    // point ':' action '@' N ['+'] [':' arg]
    const size_t colon = raw.find(':');
    const size_t at = raw.find('@');
    if (colon == std::string::npos || at == std::string::npos ||
        at < colon)
        throw std::invalid_argument(
            "SVARD_FAULT: malformed entry \"" + raw +
            "\" (want point:action@N[+][:arg])");
    PlanEntry e;
    e.point = raw.substr(0, colon);
    e.action = parseAction(raw.substr(colon + 1, at - colon - 1));
    std::string tail = raw.substr(at + 1);
    const size_t argColon = tail.find(':');
    if (argColon != std::string::npos) {
        e.arg = parseCount(tail.substr(argColon + 1), "arg");
        tail = tail.substr(0, argColon);
    }
    if (!tail.empty() && tail.back() == '+') {
        e.persistent = true;
        tail.pop_back();
    }
    e.at = parseCount(tail, "hit count");
    if (e.at == 0)
        throw std::invalid_argument(
            "SVARD_FAULT: hit counts are 1-based (\"" + raw + "\")");
    if (e.point.empty())
        throw std::invalid_argument(
            "SVARD_FAULT: empty point name (\"" + raw + "\")");
    if (e.arg == 0 && e.action == Action::Stall)
        e.arg = 1000;
    return e;
}

/** Lazy one-shot init from the environment. */
void
ensureEnvLoaded()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *spec = std::getenv("SVARD_FAULT");
        if (spec && *spec)
            configure(spec);
    });
}

} // anonymous namespace

bool
anyActive()
{
    ensureEnvLoaded();
    return g_active.load(std::memory_order_relaxed);
}

Hit
check(const char *point)
{
    if (!anyActive())
        return {};
    for (PlanEntry &e : plan()) {
        if (e.point != point)
            continue;
        const uint64_t n =
            e.hits.fetch_add(1, std::memory_order_relaxed) + 1;
        if (n != e.at && !(e.persistent && n > e.at))
            return {};
        warn("fault injected: " + e.point + ":" +
             actionName(e.action) + " (hit " + std::to_string(n) +
             ")");
        switch (e.action) {
        case Action::Kill:
            // A SIGKILL-grade death: no atexit, no stream flush —
            // whatever the OS already has is all a restart will see.
            std::_Exit(137);
        case Action::Sigterm:
            std::raise(SIGTERM);
            return {};
        case Action::Stall:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(e.arg));
            return {};
        default:
            return {e.action, e.arg};
        }
    }
    return {};
}

void
configure(const std::string &spec)
{
    MutexLock lock(g_mu);
    g_active.store(false, std::memory_order_relaxed);
    plan().clear();
    size_t start = 0;
    while (start < spec.size()) {
        size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        if (end > start)
            plan().push_back(parseEntry(spec.substr(start, end - start)));
        start = end + 1;
    }
    if (!plan().empty()) {
        inform("fault plan installed: " + planSummary());
        g_active.store(true, std::memory_order_relaxed);
    }
}

void
reset()
{
    MutexLock lock(g_mu);
    g_active.store(false, std::memory_order_relaxed);
    plan().clear();
}

uint64_t
hitCount(const char *point)
{
    ensureEnvLoaded();
    for (const PlanEntry &e : plan())
        if (e.point == point)
            return e.hits.load(std::memory_order_relaxed);
    return 0;
}

std::string
planSummary()
{
    std::string out;
    for (const PlanEntry &e : plan()) {
        if (!out.empty())
            out += ", ";
        out += e.point + ":" + actionName(e.action) + "@" +
               std::to_string(e.at) + (e.persistent ? "+" : "");
        if (e.arg)
            out += ":" + std::to_string(e.arg);
    }
    return out;
}

} // namespace svard::faults

#endif // SVARD_FAULTS_OFF
