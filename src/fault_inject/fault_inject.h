/**
 * @file
 * Deterministic fault-injection harness. Production I/O paths carry
 * named injection points (`faults::check("cache.store")`); a plan
 * parsed from SVARD_FAULT (or installed programmatically by tests)
 * decides, per point and per hit count, whether to fire a fault —
 * kill the process, report EIO, come up short on a write, tear a
 * record in half, stall a heartbeat, or raise SIGTERM. Every trigger
 * is count-based, so a given plan fails the same run at the same
 * byte every time: recovery paths are exercised deterministically
 * instead of waiting for a disk to actually die.
 *
 * Spec grammar (comma-separated entries):
 *
 *   SVARD_FAULT = point ':' action '@' N ['+'] [':' arg] [',' ...]
 *
 *   point   a registered injection-point name (see README table)
 *   action  kill | eio | short | torn | stall | sigterm
 *   N       fire on the N-th hit of the point (1-based)
 *   '+'     keep firing on every hit from the N-th on (persistent
 *           failure; without it the fault fires exactly once)
 *   arg     optional integer argument (stall duration in ms,
 *           default 1000)
 *
 * Examples:
 *   cache.store:kill@5          die (exit 137) after the 5th
 *                               checkpointed cell is durable
 *   record.append:eio@2         one transient EIO on the 2nd record
 *                               (the bounded-backoff retry absorbs it)
 *   record.append:short@1+      every append comes up short: the
 *                               retry budget exhausts and the error
 *                               reaches the producer
 *   record.append:torn@3        write half of record 3, flush, die —
 *                               the torn-tail repair path on reload
 *   ledger.beat:stall@1:800     first heartbeat sleeps 800 ms (lease
 *                               expiry / reclaim drills)
 *   cache.store:sigterm@4       raise SIGTERM after the 4th store
 *                               (graceful-interrupt drills)
 *
 * Zero-overhead gating (the obs-layer pattern): configure with
 * -DSVARD_FAULTS=OFF and every call below compiles to an inline
 * no-op returning Action::None. With the harness compiled in but no
 * plan installed, check() is one relaxed atomic load and a branch.
 * Injection points live only on I/O-rate paths (per record, per
 * heartbeat), never per-activation, so even an active plan cannot
 * perturb simulation results — only their durability.
 */
#ifndef SVARD_FAULT_INJECT_FAULT_INJECT_H
#define SVARD_FAULT_INJECT_FAULT_INJECT_H

#include <cstdint>
#include <string>

namespace svard::faults {

enum class Action : uint8_t
{
    None,    ///< no fault at this hit
    Kill,    ///< _Exit(137): a SIGKILL-grade crash, no cleanup
    Eio,     ///< report an I/O error without writing anything
    Short,   ///< write a partial prefix, then report failure
    Torn,    ///< write a partial prefix, flush it, then Kill
    Stall,   ///< sleep arg() milliseconds (lease-expiry drills)
    Sigterm, ///< raise(SIGTERM): graceful-interrupt drills
};

/** Fault decision at one hit of an injection point. */
struct Hit
{
    Action action = Action::None;
    uint64_t arg = 0; ///< entry's arg (stall ms); 0 when unset

    explicit operator bool() const { return action != Action::None; }
};

/** True when the harness is compiled in (-DSVARD_FAULTS=ON). */
constexpr bool
compiled()
{
#ifdef SVARD_FAULTS_OFF
    return false;
#else
    return true;
#endif
}

#ifdef SVARD_FAULTS_OFF

inline bool anyActive() { return false; }
inline Hit check(const char *) { return {}; }
inline void configure(const std::string &) {}
inline void reset() {}
inline uint64_t hitCount(const char *) { return 0; }
inline std::string planSummary() { return ""; }

#else

/** One relaxed load: is any fault plan installed? */
bool anyActive();

/**
 * Count one hit of `point` and return the fault to execute at it
 * (Action::None almost always). Thread-safe; the hit counter is a
 * process-wide atomic, so "the N-th hit" is the N-th across all
 * threads in program order of the increments.
 *
 * Kill/Sigterm/Stall are EXECUTED here (the caller never sees Kill
 * return); Eio/Short/Torn are returned for the caller's write loop
 * to act on, since only it knows the bytes in flight.
 */
Hit check(const char *point);

/**
 * Install a plan (the SVARD_FAULT grammar above), replacing any
 * previous one and zeroing all hit counters. Throws
 * std::invalid_argument on a malformed spec. An empty string clears
 * the plan.
 */
void configure(const std::string &spec);

/** Clear the plan and all hit counters (test teardown). */
void reset();

/** Hits recorded against `point` since the last configure/reset. */
uint64_t hitCount(const char *point);

/** Human-readable rendering of the installed plan (diagnostics). */
std::string planSummary();

#endif // SVARD_FAULTS_OFF

} // namespace svard::faults

#endif // SVARD_FAULT_INJECT_FAULT_INJECT_H
