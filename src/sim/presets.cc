#include "sim/presets.h"

#include <stdexcept>

namespace svard::sim::presets {

namespace {

SimConfig
ddr4Table4()
{
    SimConfig cfg; // the default SimConfig IS the Table 4 system
    cfg.geometry = "ddr4-table4";
    cfg.standard = dram::Standard::DDR4;
    return cfg;
}

SimConfig
ddr5_4800_32bank()
{
    SimConfig cfg;
    cfg.geometry = "ddr5-4800-32bank";
    cfg.standard = dram::Standard::DDR5;
    cfg.channels = 1;
    cfg.ranks = 2;
    cfg.bankGroups = 8;   // 8 x 4 = 32 banks per rank
    cfg.banksPerGroup = 4;
    cfg.rowsPerBank = 64 * 1024; // 16Gb x8 device: 64K rows of 8 KiB
    cfg.rowBytes = 8192;
    cfg.timing = dram::timingFor(dram::Standard::DDR5, 4800);
    return cfg;
}

SimConfig
hbm2Pc16ch()
{
    SimConfig cfg;
    cfg.geometry = "hbm2-pc-16ch";
    cfg.standard = dram::Standard::HBM2;
    cfg.channels = 16;    // 8 legacy channels x 2 pseudo channels
    cfg.ranks = 1;
    cfg.bankGroups = 4;   // 16 banks per pseudo channel
    cfg.banksPerGroup = 4;
    cfg.rowsPerBank = 16 * 1024; // 8Gb channel: 16K rows of 2 KiB
    cfg.rowBytes = 2048;
    cfg.timing = dram::timingFor(dram::Standard::HBM2, 2000);
    return cfg;
}

struct Preset
{
    const char *name;
    SimConfig (*make)();
};

const Preset kPresets[] = {
    {"ddr4-table4", ddr4Table4},
    {"ddr5-4800-32bank", ddr5_4800_32bank},
    {"hbm2-pc-16ch", hbm2Pc16ch},
};

} // anonymous namespace

const std::vector<std::string> &
names()
{
    static const std::vector<std::string> all = [] {
        std::vector<std::string> out;
        for (const Preset &p : kPresets)
            out.push_back(p.name);
        return out;
    }();
    return all;
}

bool
contains(const std::string &name)
{
    for (const Preset &p : kPresets)
        if (name == p.name)
            return true;
    return false;
}

SimConfig
get(const std::string &name)
{
    for (const Preset &p : kPresets)
        if (name == p.name)
            return p.make();
    std::string known;
    for (const std::string &n : names())
        known += (known.empty() ? "" : ", ") + n;
    throw std::invalid_argument("unknown geometry preset \"" + name +
                                "\" (known: " + known + ")");
}

} // namespace svard::sim::presets
