/**
 * @file
 * Multi-core system glue: cores release trace requests into the
 * controller, completions feed back into the cores' windows, and the
 * run ends when every core finishes its measured request count. Also
 * hosts the experiment runner used by the Fig. 12 / Fig. 13 benches:
 * per-benchmark alone-IPC baselines, per-mix weighted/harmonic speedup
 * and maximum slowdown.
 */
#ifndef SVARD_SIM_SYSTEM_H
#define SVARD_SIM_SYSTEM_H

#include <memory>
#include <string>
#include <vector>

#include "defense/defense.h"
#include "sim/controller.h"
#include "sim/core_model.h"
#include "sim/workload.h"

namespace svard::sim {

/** Result of one multi-programmed run. */
struct RunResult
{
    std::vector<double> ipc;        ///< per core
    ControllerStats controller;
    defense::DefenseStats defense;  ///< zeros when no defense
    dram::Tick endTime = 0;
};

/** Cores + controller co-simulation. */
class System
{
  public:
    /**
     * @param traces one trace per core
     * @param primary measured requests per core (trace repeats after)
     * @param defense optional defense under test (not owned)
     */
    System(const SimConfig &cfg,
           std::vector<std::vector<TraceEntry>> traces, size_t primary,
           defense::Defense *defense);

    /** Run to completion of all cores' measured phases. */
    RunResult run();

  private:
    const SimConfig &cfg_;
    defense::Defense *defense_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    std::unique_ptr<MemController> controller_;
};

// ------------------------------------------------------------------
// Experiment runner (Fig. 12 / Fig. 13)
// ------------------------------------------------------------------

/** Which defense to instantiate. */
enum class DefenseKind
{
    None,
    Para,
    BlockHammer,
    Hydra,
    Aqua,
    Rrs,
    Graphene,
};

const char *defenseKindName(DefenseKind k);

/** Instantiate a defense over a threshold provider (None -> null). */
std::unique_ptr<defense::Defense>
makeDefense(DefenseKind kind,
            std::shared_ptr<const core::ThresholdProvider> provider,
            uint64_t seed = 1);

/** Per-mix system metrics vs. per-benchmark alone baselines. */
struct MixMetrics
{
    double weightedSpeedup = 0.0;
    double harmonicSpeedup = 0.0;
    double maxSlowdown = 0.0;
};

/**
 * Runs mixes through a defense configuration and reports the three
 * paper metrics. Alone-IPC baselines (single core, no defense) are
 * computed once per benchmark and cached inside the runner.
 */
class ExperimentRunner
{
  public:
    ExperimentRunner(SimConfig cfg, size_t requests_per_core,
                     uint64_t seed = 11);

    /** Metrics of one mix under a defense configuration. */
    MixMetrics runMix(const WorkloadMix &mix, DefenseKind kind,
                      std::shared_ptr<const core::ThresholdProvider>
                          provider,
                      RunResult *raw = nullptr);

    /** Alone IPC of a benchmark (cached). */
    double aloneIpc(uint32_t bench_idx);

    const SimConfig &config() const { return cfg_; }
    size_t requestsPerCore() const { return requests_; }

    /**
     * Adversarial run (Fig. 13): core 0 executes the adversarial
     * trace, the remaining cores a benign mix. Returns the benign
     * cores' weighted speedup vs. their alone baselines.
     */
    double runAdversarial(const std::vector<TraceEntry> &attack_trace,
                          DefenseKind kind,
                          std::shared_ptr<const core::ThresholdProvider>
                              provider);

  private:
    std::vector<std::vector<TraceEntry>>
    tracesForMix(const WorkloadMix &mix) const;

    SimConfig cfg_;
    size_t requests_;
    uint64_t seed_;
    std::vector<double> aloneCache_;
};

} // namespace svard::sim

#endif // SVARD_SIM_SYSTEM_H
