/**
 * @file
 * Multi-core system glue: cores release trace requests into the
 * (possibly multi-channel) memory engine, completions feed back into
 * the cores' windows, and the run ends when every core finishes its
 * measured request count. Also hosts the single-threaded MixRunner
 * used by examples and tests: per-benchmark alone-IPC baselines,
 * per-mix weighted/harmonic speedup and maximum slowdown. Large
 * declarative sweeps run through engine::ExperimentRunner instead,
 * which shards cells of {module x defense x provider x workload}
 * across a thread pool.
 */
#ifndef SVARD_SIM_SYSTEM_H
#define SVARD_SIM_SYSTEM_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "defense/registry.h"
#include "sim/core_model.h"
#include "sim/engine.h"
#include "sim/workload.h"

namespace svard::sim {

/** Result of one multi-programmed run. */
struct RunResult
{
    std::vector<double> ipc;        ///< per core
    ControllerStats controller;     ///< aggregated over channels
    defense::DefenseStats defense;  ///< zeros when no defense
    std::vector<ControllerStats> perChannel;
    dram::Tick endTime = 0;
};

/** Cores + memory-engine co-simulation. */
class System
{
  public:
    /**
     * Legacy single-defense construction (tests, harness-style use).
     * @param traces one trace per core
     * @param primary measured requests per core (trace repeats after)
     * @param defense optional defense under test (not owned); its
     *        bank folding is configured to `cfg`'s geometry. Needs a
     *        1-channel config unless null.
     */
    System(const SimConfig &cfg,
           std::vector<std::vector<TraceEntry>> traces, size_t primary,
           defense::Defense *defense);

    /**
     * Registry construction: one defense instance per channel, built
     * from `defense_name` over `provider` with per-channel seeds.
     * `params` is forwarded into every channel's DefenseContext.
     */
    System(const SimConfig &cfg,
           std::vector<std::vector<TraceEntry>> traces, size_t primary,
           const std::string &defense_name,
           std::shared_ptr<const core::ThresholdProvider> provider,
           uint64_t seed, const defense::DefenseParams &params = {});

    /** Run to completion of all cores' measured phases. */
    RunResult run();

    const SimEngine &engine() const { return *engine_; }

  private:
    const SimConfig &cfg_;
    std::vector<std::unique_ptr<CoreModel>> cores_;
    std::unique_ptr<SimEngine> engine_;
    /** Set by the completion callback: core c's release gate may have
     *  opened, so its cached next-release time must be recomputed. */
    std::vector<char> releaseDirty_;
};

// ------------------------------------------------------------------
// Single-threaded mix runner (examples, tests, engine baselines)
// ------------------------------------------------------------------

/** Which defense to instantiate (compat shim over the registry). */
enum class DefenseKind
{
    None,
    Para,
    BlockHammer,
    Hydra,
    Aqua,
    Rrs,
    Graphene,
};

const char *defenseKindName(DefenseKind k);

/**
 * Instantiate a defense over a threshold provider (None -> null).
 * Thin wrapper over the DefenseRegistry; pass the SimConfig being
 * simulated so bank folding follows its geometry (the default is the
 * Table 4 system). Sweep code should prefer registry names directly.
 */
std::unique_ptr<defense::Defense>
makeDefense(DefenseKind kind,
            std::shared_ptr<const core::ThresholdProvider> provider,
            uint64_t seed = 1, const SimConfig &cfg = SimConfig{});

/** Per-mix system metrics vs. per-benchmark alone baselines. */
struct MixMetrics
{
    double weightedSpeedup = 0.0;
    double harmonicSpeedup = 0.0;
    double maxSlowdown = 0.0;
};

/** Per-benchmark alone-IPC lookup (index into benchmarkSuite()). */
using AloneIpcFn = std::function<double(uint32_t)>;

/**
 * The three paper metrics of one run against fixed alone baselines.
 * Single source of the formula for MixRunner and the experiment
 * engine, so sharded sweeps stay comparable with inline runs.
 */
MixMetrics computeMixMetrics(const RunResult &res,
                             const WorkloadMix &mix,
                             const AloneIpcFn &alone_ipc);

/**
 * One adversarial run (Fig. 13): core 0 executes `attack_trace`, the
 * remaining cores run adversarialBenignMix(cfg.cores) with traces
 * seeded by `trace_seed`. Returns the benign cores' weighted speedup
 * vs. their alone baselines.
 */
double adversarialBenignWs(
    const SimConfig &cfg, const std::vector<TraceEntry> &attack_trace,
    size_t requests_per_core, uint64_t trace_seed,
    const std::string &defense_name,
    std::shared_ptr<const core::ThresholdProvider> provider,
    uint64_t defense_seed, const AloneIpcFn &alone_ipc);

/**
 * Runs mixes through a defense configuration and reports the three
 * paper metrics. Alone-IPC baselines (single core, no defense) are
 * computed once per benchmark and cached inside the runner. Not
 * thread-safe: each thread of a sharded sweep owns its cells end to
 * end (see engine::ExperimentRunner).
 */
class MixRunner
{
  public:
    MixRunner(SimConfig cfg, size_t requests_per_core,
              uint64_t seed = 11);

    /** Metrics of one mix under a defense configuration. */
    MixMetrics runMix(const WorkloadMix &mix,
                      const std::string &defense_name,
                      std::shared_ptr<const core::ThresholdProvider>
                          provider,
                      RunResult *raw = nullptr);
    MixMetrics runMix(const WorkloadMix &mix, DefenseKind kind,
                      std::shared_ptr<const core::ThresholdProvider>
                          provider,
                      RunResult *raw = nullptr);

    /** Alone IPC of a benchmark (cached). */
    double aloneIpc(uint32_t bench_idx);

    const SimConfig &config() const { return cfg_; }
    size_t requestsPerCore() const { return requests_; }
    uint64_t seed() const { return seed_; }

    /**
     * Adversarial run (Fig. 13): core 0 executes the adversarial
     * trace, the remaining cores a benign mix. Returns the benign
     * cores' weighted speedup vs. their alone baselines.
     */
    double runAdversarial(const std::vector<TraceEntry> &attack_trace,
                          const std::string &defense_name,
                          std::shared_ptr<const core::ThresholdProvider>
                              provider);
    double runAdversarial(const std::vector<TraceEntry> &attack_trace,
                          DefenseKind kind,
                          std::shared_ptr<const core::ThresholdProvider>
                              provider);

  private:
    std::vector<std::vector<TraceEntry>>
    tracesForMix(const WorkloadMix &mix) const;

    SimConfig cfg_;
    size_t requests_;
    uint64_t seed_;
    std::vector<double> aloneCache_;
};

} // namespace svard::sim

#endif // SVARD_SIM_SYSTEM_H
