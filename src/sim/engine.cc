#include "sim/engine.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace svard::sim {

SimEngine::SimEngine(const SimConfig &cfg,
                     const std::string &defense_name,
                     std::shared_ptr<const core::ThresholdProvider>
                         provider,
                     uint64_t seed, Completion on_complete,
                     const defense::DefenseParams &params)
    : cfg_(cfg), mapper_(cfg)
{
    SVARD_ASSERT(cfg_.channels >= 1, "need at least one channel");
    for (uint32_t c = 0; c < cfg_.channels; ++c) {
        // Channel 0 keeps the caller's seed so 1-channel runs match
        // the pre-engine construction path bit for bit.
        const uint64_t chan_seed =
            c == 0 ? seed : hashSeed({seed, c, 0xC4A77E1ULL});
        ownedDefenses_.push_back(defense::makeDefenseByName(
            defense_name,
            defense::DefenseContext(cfg_, provider, chan_seed,
                                    params)));
        defenses_.push_back(ownedDefenses_.back().get());
        controllers_.push_back(std::make_unique<MemController>(
            cfg_, defenses_.back(), on_complete));
    }
}

SimEngine::SimEngine(const SimConfig &cfg, defense::Defense *defense,
                     Completion on_complete)
    : cfg_(cfg), mapper_(cfg)
{
    SVARD_ASSERT(cfg_.channels >= 1, "need at least one channel");
    SVARD_ASSERT(defense == nullptr || cfg_.channels == 1,
                 "a shared external defense is single-channel only; "
                 "use the registry constructor for multi-channel runs");
    if (defense)
        defense->setBanksPerRank(cfg_.banksPerRank());
    for (uint32_t c = 0; c < cfg_.channels; ++c) {
        defenses_.push_back(defense);
        controllers_.push_back(std::make_unique<MemController>(
            cfg_, defense, on_complete));
    }
}

ControllerStats
SimEngine::stats() const
{
    ControllerStats sum;
    for (const auto &mc : controllers_) {
        const ControllerStats &s = mc->stats();
        sum.reads += s.reads;
        sum.writes += s.writes;
        sum.activations += s.activations;
        sum.rowHits += s.rowHits;
        sum.rowConflicts += s.rowConflicts;
        sum.refreshes += s.refreshes;
        sum.preventiveRefreshes += s.preventiveRefreshes;
        sum.migrations += s.migrations;
        sum.swaps += s.swaps;
        sum.metadataAccesses += s.metadataAccesses;
        sum.throttleStall += s.throttleStall;
    }
    return sum;
}

defense::DefenseStats
SimEngine::defenseStats() const
{
    defense::DefenseStats sum;
    // The external-defense constructor aliases one instance across
    // its (single) channel; count each distinct instance once.
    for (uint32_t c = 0; c < channels(); ++c) {
        const defense::Defense *d = defenses_[c];
        if (!d)
            continue;
        bool seen = false;
        for (uint32_t p = 0; p < c; ++p)
            seen = seen || defenses_[p] == d;
        if (seen)
            continue;
        const defense::DefenseStats &s = d->stats();
        sum.activationsObserved += s.activationsObserved;
        sum.preventiveRefreshes += s.preventiveRefreshes;
        sum.throttleEvents += s.throttleEvents;
        sum.throttleDelayTotal += s.throttleDelayTotal;
        sum.migrations += s.migrations;
        sum.swaps += s.swaps;
        sum.metadataAccesses += s.metadataAccesses;
    }
    return sum;
}

const MemController &
SimEngine::channel(uint32_t c) const
{
    SVARD_ASSERT(c < channels(), "channel out of range");
    return *controllers_[c];
}

defense::Defense *
SimEngine::defenseOf(uint32_t c) const
{
    SVARD_ASSERT(c < channels(), "channel out of range");
    return defenses_[c];
}

bool
SimEngine::hasDefense() const
{
    for (const auto *d : defenses_)
        if (d)
            return true;
    return false;
}

} // namespace svard::sim
