/**
 * @file
 * Named geometry presets: fully-resolved SimConfigs (organization +
 * per-standard timing table) addressable by string name, so sweep
 * specs, benches, and tests can open the geometry axis without
 * hand-assembling channel/bank/row counts. The paper evaluates one
 * fixed DDR4 Table 4 system; the presets extend the same evaluation
 * onto the organizations the HBM characterization study
 * (arXiv:2310.14665) and the DDR5 32-bank generation make relevant:
 *
 *  - "ddr4-table4":       the paper's system (1 ch, 2 ranks, 4 bank
 *                         groups x 4 banks, 128K rows/bank, DDR4-3200)
 *  - "ddr5-4800-32bank":  DDR5-4800B, 8 bank groups x 4 banks
 *                         (32 banks/rank), 64K rows/bank
 *  - "hbm2-pc-16ch":      HBM2 pseudo-channel mode, 16 pseudo
 *                         channels, 1 rank, 16 banks/PC, 16K rows of
 *                         2 KiB per bank
 *
 * Preset names are recorded in result-sink geometry columns and mixed
 * into cache fingerprints, so cached cells of one organization are
 * never misattributed to another.
 */
#ifndef SVARD_SIM_PRESETS_H
#define SVARD_SIM_PRESETS_H

#include <string>
#include <vector>

#include "sim/config.h"

namespace svard::sim::presets {

/** All registered preset names, in registration order. */
const std::vector<std::string> &names();

bool contains(const std::string &name);

/**
 * The fully-resolved configuration of a preset (its `geometry` field
 * carries the preset name).
 * @throws std::invalid_argument for unknown names, listing the known
 *         ones — a typoed geometry must never silently simulate the
 *         default system.
 */
SimConfig get(const std::string &name);

} // namespace svard::sim::presets

#endif // SVARD_SIM_PRESETS_H
