#include "sim/controller.h"

#include <algorithm>

#include "common/log.h"

namespace svard::sim {

namespace {
constexpr dram::Tick kInf = std::numeric_limits<dram::Tick>::max() / 4;
} // anonymous namespace

MemController::MemController(const SimConfig &cfg,
                             defense::Defense *defense,
                             Completion on_complete)
    : cfg_(cfg), mapper_(cfg), defense_(defense),
      onComplete_(std::move(on_complete)), banks_(cfg.totalBanks()),
      ranks_(cfg.ranks), readQ_(cfg.readQueue), writeQ_(cfg.writeQueue),
      pendingPerBank_(cfg.totalBanks(), 0),
      pendingPos_(cfg.totalBanks(), 0)
{
    pendingBanks_.reserve(cfg.totalBanks());
    for (uint32_t r = 0; r < cfg_.ranks; ++r) {
        ranks_[r].refreshDue = cfg_.timing.tREFI;
        ranks_[r].lastActBg.assign(cfg_.bankGroups, -1'000'000);
    }
    // Largest per-ACT burst: a defense may emit a handful of refresh,
    // migration, and metadata actions for one activation; reserve so
    // the buffer stops growing after the first few ACTs.
    actionBuf_.reserve(8);
}

bool
MemController::enqueue(const MemRequest &req)
{
    MemRequest r = req;
    r.flatBank = mapper_.flatBank(r.addr);
    if (r.write) {
        if (writeQ_.size() >= cfg_.writeQueue)
            return false;
        writeQ_.push_back(r);
    } else {
        if (readQ_.size() >= cfg_.readQueue)
            return false;
        readQ_.push_back(r);
    }
    if (pendingPerBank_[r.flatBank]++ == 0) {
        pendingPos_[r.flatBank] =
            static_cast<uint32_t>(pendingBanks_.size());
        pendingBanks_.push_back(r.flatBank);
    }
    if (r.notBefore != 0)
        ++throttledQueued_;
    if (scanCacheValid_ && r.write == scanCacheDrained_) {
        // Incremental verdict update: the new request joins the
        // cached (scanned) queue, so fold its earliest-serviceable
        // time into the blocked-until bound instead of discarding
        // the whole verdict. A request landing in the *other* queue
        // conservatively drops the verdict (the else below), even
        // though that queue is not the one being scanned — cheap
        // safety on a determinism-critical path.
        const Bank &bank = banks_[r.flatBank];
        dram::Tick e;
        if (bank.open && bank.row == r.addr.row) {
            e = std::max(bank.readyColumn,
                         busReady_ - cfg_.timing.tCL);
        } else if (bank.open) {
            e = bank.readyPre;
        } else {
            const Rank &rank = ranks_[rankOf(r.flatBank)];
            e = std::max(bank.readyAct,
                         rankActReady(rank,
                                      bankGroupOf(r.flatBank)));
        }
        e = std::max(e, r.notBefore);
        if (e < scanBlockedUntil_) {
            scanBlockedUntil_ = e;
            scanBlockedByBus_ =
                bank.open && bank.row == r.addr.row &&
                busReady_ - cfg_.timing.tCL > bank.readyColumn;
        }
    } else {
        scanCacheValid_ = false;
    }
    quietValid_ = false; // new work may be issuable immediately
    quietUntil_ = 0;     // stale jump target must not be revalidated
    return true;
}

void
MemController::doActivate(uint32_t flat_bank, uint32_t row,
                          bool maintenance)
{
    Bank &bank = banks_[flat_bank];
    Rank &rank = ranks_[rankOf(flat_bank)];
    bank.open = true;
    bank.row = row;
    bank.hitStreak = 0;
    bank.actTime = now_;
    bank.readyColumn = now_ + cfg_.timing.tRCD;
    bank.readyPre = now_ + cfg_.timing.tRAS;
    rank.lastAct = now_;
    rank.lastActBg[bankGroupOf(flat_bank)] = now_;
    rank.pushAct(now_);
    ++stats_.activations;
    (void)maintenance;
}

void
MemController::doPrecharge(uint32_t flat_bank)
{
    Bank &bank = banks_[flat_bank];
    bank.open = false;
    bank.hitStreak = 0;
    bank.readyAct = std::max(bank.readyAct, now_ + cfg_.timing.tRP);
}

void
MemController::applyActions(const defense::ActionBuffer &acts,
                            uint32_t /* flat_bank */, uint32_t /* row */,
                            dram::Tick *throttle_out)
{
    using Kind = defense::PreventiveAction::Kind;
    const auto &t = cfg_.timing;
    const dram::Tick row_transfer =
        t.tRCD + static_cast<dram::Tick>(cfg_.blocksPerRow()) * t.tBL +
        t.tRP;
    const dram::Tick row_burst =
        static_cast<dram::Tick>(cfg_.blocksPerRow()) * t.tBL;
    for (const auto &a : acts) {
        // The defense emits actions in the controller's own flat bank
        // space; the shared helper asserts that instead of folding
        // mismatches away with a modulo.
        Bank &bank =
            banks_[defense::resolveActionBank(a.bank, banks_.size())];
        // Row-content moves go through the memory controller, so they
        // occupy the shared channel data bus as well as the bank.
        auto occupy = [&](dram::Tick bank_dur, dram::Tick bus_dur) {
            dram::Tick base = std::max(now_, bank.readyAct);
            if (bank.open) {
                base = std::max(now_, bank.readyPre) + t.tRP;
                bank.open = false;
                bank.hitStreak = 0;
            }
            bank.readyAct = std::max(bank.readyAct, base + bank_dur);
            if (bus_dur > 0)
                busReady_ = std::max(busReady_, now_) + bus_dur;
        };
        switch (a.kind) {
          case Kind::RefreshRow:
            occupy(t.tRAS + t.tRP, 0);
            ++stats_.preventiveRefreshes;
            break;
          case Kind::Throttle:
            if (throttle_out)
                *throttle_out = std::max(*throttle_out, a.delay);
            stats_.throttleStall += a.delay;
            break;
          case Kind::MigrateRow:
            // One row out + one row in: two full-row bursts.
            occupy(2 * row_transfer, 2 * row_burst);
            ++stats_.migrations;
            break;
          case Kind::SwapRows:
            // A swap streams both rows through the swap buffer (two
            // reads + two writes); at swap-threshold rates each
            // swapped row is also unswapped/relocated again before
            // the epoch ends, which RRS pays as additional row
            // transfers (amortized here), making RRS roughly twice
            // AQUA's one-row migration — the paper's Fig. 12 gap.
            occupy(8 * row_transfer, 8 * row_burst);
            ++stats_.swaps;
            break;
          case Kind::MetadataAccess:
            occupy(t.tRCD + t.tCL + t.tBL + t.tRP, t.tBL);
            ++stats_.metadataAccesses;
            break;
        }
    }
}

void
MemController::refreshIfDue()
{
    // One compare covers the common case: nothing (rank refresh or
    // defense epoch) is due yet. maintenanceDue_ caches the earliest
    // due time and is refreshed whenever either source advances.
    if (now_ < maintenanceDue_)
        return;
    // Recalibration duty (drift sweeps): the policy's amortized
    // re-characterization ACTs extend every refresh stall. Zero duty
    // — the static path — adds exactly zero ticks.
    const dram::Tick recal_extra =
        cfg_.recalDuty > 0.0
            ? static_cast<dram::Tick>(cfg_.recalDuty *
                                      cfg_.timing.tREFI)
            : 0;
    for (uint32_t r = 0; r < cfg_.ranks; ++r) {
        Rank &rank = ranks_[r];
        if (now_ < rank.refreshDue)
            continue;
        const uint32_t banks_per_rank =
            cfg_.bankGroups * cfg_.banksPerGroup;
        for (uint32_t b = 0; b < banks_per_rank; ++b) {
            Bank &bank = banks_[r * banks_per_rank + b];
            dram::Tick base = std::max(now_, bank.readyAct);
            if (bank.open) {
                base = std::max(now_, bank.readyPre) + cfg_.timing.tRP;
                bank.open = false;
                bank.hitStreak = 0;
            }
            bank.readyAct = std::max(bank.readyAct,
                                     base + cfg_.timing.tRFC +
                                         recal_extra);
        }
        rank.refreshDue += cfg_.timing.tREFI;
        ++stats_.refreshes;
        quietValid_ = false; // bank ready times moved
        scanCacheValid_ = false;
    }
    // Refresh-window epoch for the defense's counter structures.
    if (defense_ && now_ - epochStart_ >= cfg_.timing.tREFW) {
        defense_->onEpochEnd(now_);
        epochStart_ = now_;
        quietValid_ = false;
        scanCacheValid_ = false;
    }
    maintenanceDue_ = kInf;
    for (const Rank &rank : ranks_)
        maintenanceDue_ = std::min(maintenanceDue_, rank.refreshDue);
    if (defense_)
        maintenanceDue_ = std::min(maintenanceDue_,
                                   epochStart_ + cfg_.timing.tREFW);
}

bool
MemController::updateDrainMode()
{
    // Write drain hysteresis.
    if (draining_) {
        if (writeQ_.size() <= cfg_.writeQueue / 4)
            draining_ = false;
    } else {
        if (writeQ_.size() >= 3 * cfg_.writeQueue / 4 ||
            (readQ_.empty() && !writeQ_.empty()))
            draining_ = true;
    }
    return draining_ && !writeQ_.empty();
}

bool
MemController::tryIssue()
{
    const bool drained = updateDrainMode();

    // A failed scan records the minimum earliest-serviceable time of
    // the scanned queue; until something mutates scheduler state
    // (enqueue, issue, refresh, epoch end) or the drain mode picks
    // the other queue, a repeat scan before that time fails by
    // construction — the dominant case at wakeups that crossed a
    // candidate for a still-blocked request. lastFailCached_ tells
    // run() the cached jump target survived too.
    if (scanCacheValid_ && scanCacheDrained_ == drained &&
        now_ < scanBlockedUntil_) {
        lastFailCached_ = true;
        ++stats_.blockedUntilHits;
        return false;
    }
    lastFailCached_ = false;

    RequestQueue &q = drained ? writeQ_ : readQ_;
    if (q.empty()) {
        // An empty chosen queue stays unissuable until an enqueue or
        // a drain-mode flip (cache key mismatch) changes the picture.
        scanCacheValid_ = true;
        scanCacheDrained_ = drained;
        scanBlockedUntil_ = kInf;
        scanBlockedByBus_ = false;
        return false;
    }

    const auto &t = cfg_.timing;

    auto rank_can_act = [&](uint32_t flat_bank) {
        const Rank &rank = ranks_[rankOf(flat_bank)];
        return now_ >= rankActReady(rank, bankGroupOf(flat_bank));
    };

    auto issue_column = [&](size_t i) {
        MemRequest r = q[i];
        Bank &bank = banks_[r.flatBank];
        const dram::Tick cas = r.write ? t.tCWL : t.tCL;
        const dram::Tick data = std::max(now_ + cas, busReady_);
        busReady_ = data + t.tBL;
        bank.readyColumn = std::max(bank.readyColumn, now_ + t.tCCD_L);
        ++bank.hitStreak;
        if (r.write) {
            bank.readyPre = std::max(bank.readyPre,
                                     data + t.tBL + t.tWR);
            ++stats_.writes;
        } else {
            ++stats_.reads;
            if (onComplete_)
                onComplete_(r, data + t.tBL);
        }
        if (--pendingPerBank_[r.flatBank] == 0) {
            // Swap-erase from the compact list (order is irrelevant:
            // every consumer computes order-independent minima).
            const uint32_t last = pendingBanks_.back();
            pendingBanks_[pendingPos_[r.flatBank]] = last;
            pendingPos_[last] = pendingPos_[r.flatBank];
            pendingBanks_.pop_back();
        }
        if (r.notBefore != 0)
            --throttledQueued_;
        q.erase(i);
    };

    // Bus availability for a column issue is the same for every
    // candidate this cycle — hoisted out of both passes.
    const bool bus_ok = busReady_ <= now_ + t.tCL;

    // One fused read-only scan replaces the former two passes: it
    // finds the pass-1 winner (oldest under-cap row hit — breaks
    // immediately, nothing later can beat it) and remembers the
    // pass-2 winner (oldest serviceable request of any kind) for the
    // case no pass-1 hit exists. Selection is identical to running
    // the passes separately; failures pay one queue walk, not two.
    constexpr size_t kNone = SIZE_MAX;
    size_t hit_idx = kNone;
    size_t p2_idx = kNone;
    // Earliest time any scanned request could become serviceable
    // given unchanged state (only meaningful when the scan fails —
    // then every request took a blocked path and contributed).
    dram::Tick blocked_until = kInf;
    bool blocked_by_bus = false;
    auto blocked_at = [&](dram::Tick e, bool from_bus) {
        if (e < blocked_until) {
            blocked_until = e;
            blocked_by_bus = from_bus;
        }
    };
    for (size_t i = 0, n = q.size(); i < n; ++i) {
        const MemRequest &r = q[i];
        if (r.notBefore > now_) {
            blocked_at(r.notBefore, false);
            continue;
        }
        const Bank &bank = banks_[r.flatBank];
        if (bank.open && bank.row == r.addr.row) {
            if (bus_ok && bank.readyColumn <= now_) {
                if (bank.hitStreak < cfg_.columnCap) {
                    hit_idx = i;
                    break;
                }
                if (p2_idx == kNone)
                    p2_idx = i; // capped hit: plain pass-2 column
            } else {
                const dram::Tick bus_at = busReady_ - t.tCL;
                blocked_at(std::max(bank.readyColumn, bus_at),
                           bus_at > bank.readyColumn);
            }
            continue;
        }
        if (p2_idx != kNone)
            continue; // pass-2 winner known; still hunting a hit
        if (bank.open) {
            if (bank.readyPre <= now_)
                p2_idx = i; // row conflict: precharge
            else
                blocked_at(bank.readyPre, false);
            continue;
        }
        if (bank.readyAct <= now_ && rank_can_act(r.flatBank)) {
            p2_idx = i; // closed bank: activate
        } else {
            const Rank &rank = ranks_[rankOf(r.flatBank)];
            const dram::Tick rank_at =
                rankActReady(rank, bankGroupOf(r.flatBank));
            // The bank itself is ready but the rank's four-activate
            // window is the binding constraint: a true tFAW stall.
            if (bank.readyAct <= now_ && rank_at > now_ &&
                rank.actCount == 4 &&
                rank_at == rank.oldestAct() + t.tFAW)
                ++stats_.tfawStalls;
            blocked_at(std::max(bank.readyAct, rank_at), false);
        }
    }

    if (p2_idx == kNone && hit_idx == kNone) {
        scanCacheValid_ = true;
        scanCacheDrained_ = drained;
        scanBlockedUntil_ = blocked_until;
        scanBlockedByBus_ = blocked_by_bus;
        return false;
    }
    scanCacheValid_ = false; // about to issue: state changes

    if (hit_idx != kNone) {
        // Pass 1 (FR): oldest row hit under the column cap.
        stats_.rowHits += banks_[q[hit_idx].flatBank].hitStreak > 0
                              ? 1
                              : 0;
        issue_column(hit_idx);
        return true;
    }

    // Pass 2 (FCFS): progress the oldest serviceable request.
    MemRequest &r = q[p2_idx];
    Bank &bank = banks_[r.flatBank];
    if (bank.open && bank.row == r.addr.row) {
        issue_column(p2_idx);
        return true;
    }
    if (bank.open) {
        // Row conflict: close the row once tRAS allows.
        ++stats_.rowConflicts;
        doPrecharge(r.flatBank);
        return true;
    }
    // Bank closed: activate (defense may throttle instead).
    dram::Tick throttle = 0;
    if (defense_ && !r.defenseCleared) {
        actionBuf_.clear();
        defense_->onActivate(r.flatBank, r.addr.row, now_, actionBuf_);
        applyActions(actionBuf_, r.flatBank, r.addr.row, &throttle);
        if (throttle > 0) {
            if (r.notBefore == 0)
                ++throttledQueued_;
            r.notBefore = now_ + throttle;
            return true; // state changed; rescan
        }
        r.defenseCleared = true;
        if (bank.readyAct > now_) {
            // Preventive actions (victim refresh, migration, counter
            // transfer) occupy this bank first; the admitted
            // activation waits behind them and is not re-submitted
            // to the defense.
            return true;
        }
    }
    doActivate(r.flatBank, r.addr.row, false);
    return true;
}

dram::Tick
MemController::nextWakeup(dram::Tick from) const
{
    dram::Tick next = kInf;
    auto consider = [&](dram::Tick t) {
        if (t > now_ && t >= from && t < next)
            next = t;
    };
    // Bank and rank readiness only gates banks with queued work; the
    // pending-bank list gives the same candidate set the old
    // full-queue scan produced, one bank at a time instead of one
    // request. The rank term is the exact per-bank ACT-legality time
    // (max over tRRD_S, the bank group's tRRD_L, and tFAW): tighter
    // than considering each constraint separately, and shared with
    // the issue scan so the two can never disagree.
    for (uint32_t b : pendingBanks_) {
        const Bank &bank = banks_[b];
        consider(bank.readyAct);
        consider(bank.readyColumn);
        consider(bank.readyPre);
        consider(rankActReady(ranks_[rankOf(b)], bankGroupOf(b)));
    }
    // Throttle release times exist only while a defense is actively
    // throttling; skip the queue walk entirely otherwise.
    if (throttledQueued_ > 0) {
        for (size_t i = 0, n = readQ_.size(); i < n; ++i)
            consider(readQ_[i].notBefore);
        for (size_t i = 0, n = writeQ_.size(); i < n; ++i)
            consider(writeQ_[i].notBefore);
    }
    consider(busReady_);
    // Refresh processing times must always be visited, however far
    // past them the caller's interest lies.
    for (const auto &rank : ranks_)
        if (rank.refreshDue > now_ && rank.refreshDue < next)
            next = rank.refreshDue;
    return next;
}

dram::Tick
MemController::run(dram::Tick until)
{
    while (now_ < until) {
        refreshIfDue();
        if (quietValid_) {
            if (now_ >= quietUntil_ || now_ >= quietBusFlip_) {
                quietValid_ = false; // wakeup reached: rescan
            } else {
                // Provably nothing can issue before quietUntil_, so
                // the tryIssue scan is skipped — but its drain-mode
                // hysteresis must still tick once per iteration (its
                // state depends on how often it is evaluated).
                updateDrainMode();
            }
        }
        if (!quietValid_) {
            if (tryIssue())
                continue;
            // The drain hysteresis oscillates when reads are empty
            // but writes sit below the exit watermark: the scanned
            // queue then alternates per evaluation, so a failed scan
            // does not prove the *other* queue stays unissuable.
            // Keep full per-candidate scans in that state.
            const bool stable =
                !(readQ_.empty() && !writeQ_.empty());
            if (lastFailCached_ && now_ < quietUntil_ && stable) {
                // The failed scan was served from its unchanged-state
                // cache, so the previously computed jump target still
                // stands; the bus lookahead that forced this rescan
                // is verified blocked and stays blocked (busReady_ is
                // static while no command issues).
                quietBusFlip_ = kInf;
                quietValid_ = true;
            } else {
                // Jump straight to the next *observable* time: while
                // state is unchanged nothing can issue before the
                // failed scan's blocked-until bound and no epoch
                // boundary may be overjumped, so wakeup candidates
                // below both are provably eventless (refresh times
                // are always honored inside nextWakeup, and run()-
                // boundary entries keep evaluating refreshIfDue
                // exactly as before).
                dram::Tick interest = 0;
                if (stable && scanCacheValid_) {
                    interest = scanBlockedUntil_;
                    if (defense_)
                        interest = std::min(
                            interest,
                            epochStart_ + cfg_.timing.tREFW);
                }
                if (stable && scanCacheValid_ &&
                    !scanBlockedByBus_ &&
                    scanBlockedUntil_ <= maintenanceDue_) {
                    // The blocking minimum is a max of candidate
                    // times, hence itself the first candidate at or
                    // after it, and no refresh/epoch comes earlier:
                    // it IS the next observable time — no bank pass.
                    quietUntil_ = scanBlockedUntil_;
                } else {
                    quietUntil_ = nextWakeup(interest);
                }
                // If the bus is the blocker, its issue condition
                // becomes true tCL *before* busReady_ — rescan from
                // that point on.
                quietBusFlip_ = busReady_ <= now_ + cfg_.timing.tCL
                                    ? kInf
                                    : busReady_ - cfg_.timing.tCL;
                quietValid_ = stable;
            }
        }
        const dram::Tick next = quietUntil_;
        if (next >= until) {
            if (idle())
                now_ = until;
            else
                now_ = std::min(next, until);
            break;
        }
        now_ = next;
    }
    if (now_ < until && idle())
        now_ = until;
    return now_;
}

} // namespace svard::sim
