#include "sim/controller.h"

#include <algorithm>

#include "common/log.h"

namespace svard::sim {

namespace {
constexpr dram::Tick kInf = std::numeric_limits<dram::Tick>::max() / 4;
} // anonymous namespace

MemController::MemController(const SimConfig &cfg,
                             defense::Defense *defense,
                             Completion on_complete)
    : cfg_(cfg), mapper_(cfg), defense_(defense),
      onComplete_(std::move(on_complete)), banks_(cfg.totalBanks()),
      ranks_(cfg.ranks)
{
    for (uint32_t r = 0; r < cfg_.ranks; ++r)
        ranks_[r].refreshDue = cfg_.timing.tREFI;
}

bool
MemController::enqueue(const MemRequest &req)
{
    MemRequest r = req;
    r.flatBank = mapper_.flatBank(r.addr);
    if (r.write) {
        if (writeQ_.size() >= cfg_.writeQueue)
            return false;
        writeQ_.push_back(r);
    } else {
        if (readQ_.size() >= cfg_.readQueue)
            return false;
        readQ_.push_back(r);
    }
    return true;
}

void
MemController::doActivate(uint32_t flat_bank, uint32_t row,
                          bool maintenance)
{
    Bank &bank = banks_[flat_bank];
    Rank &rank = ranks_[rankOf(flat_bank)];
    bank.open = true;
    bank.row = row;
    bank.hitStreak = 0;
    bank.actTime = now_;
    bank.readyColumn = now_ + cfg_.timing.tRCD;
    bank.readyPre = now_ + cfg_.timing.tRAS;
    rank.lastAct = now_;
    rank.actHistory.push_back(now_);
    if (rank.actHistory.size() > 4)
        rank.actHistory.erase(rank.actHistory.begin());
    ++stats_.activations;
    (void)maintenance;
}

void
MemController::doPrecharge(uint32_t flat_bank)
{
    Bank &bank = banks_[flat_bank];
    bank.open = false;
    bank.hitStreak = 0;
    bank.readyAct = std::max(bank.readyAct, now_ + cfg_.timing.tRP);
}

void
MemController::applyActions(
    const std::vector<defense::PreventiveAction> &acts,
    uint32_t /* flat_bank */, uint32_t /* row */,
    dram::Tick *throttle_out)
{
    using Kind = defense::PreventiveAction::Kind;
    const auto &t = cfg_.timing;
    const dram::Tick row_transfer =
        t.tRCD + static_cast<dram::Tick>(cfg_.blocksPerRow()) * t.tBL +
        t.tRP;
    const dram::Tick row_burst =
        static_cast<dram::Tick>(cfg_.blocksPerRow()) * t.tBL;
    for (const auto &a : acts) {
        Bank &bank = banks_[a.bank % banks_.size()];
        // Row-content moves go through the memory controller, so they
        // occupy the shared channel data bus as well as the bank.
        auto occupy = [&](dram::Tick bank_dur, dram::Tick bus_dur) {
            dram::Tick base = std::max(now_, bank.readyAct);
            if (bank.open) {
                base = std::max(now_, bank.readyPre) + t.tRP;
                bank.open = false;
                bank.hitStreak = 0;
            }
            bank.readyAct = std::max(bank.readyAct, base + bank_dur);
            if (bus_dur > 0)
                busReady_ = std::max(busReady_, now_) + bus_dur;
        };
        switch (a.kind) {
          case Kind::RefreshRow:
            occupy(t.tRAS + t.tRP, 0);
            ++stats_.preventiveRefreshes;
            break;
          case Kind::Throttle:
            if (throttle_out)
                *throttle_out = std::max(*throttle_out, a.delay);
            stats_.throttleStall += a.delay;
            break;
          case Kind::MigrateRow:
            // One row out + one row in: two full-row bursts.
            occupy(2 * row_transfer, 2 * row_burst);
            ++stats_.migrations;
            break;
          case Kind::SwapRows:
            // A swap streams both rows through the swap buffer (two
            // reads + two writes); at swap-threshold rates each
            // swapped row is also unswapped/relocated again before
            // the epoch ends, which RRS pays as additional row
            // transfers (amortized here), making RRS roughly twice
            // AQUA's one-row migration — the paper's Fig. 12 gap.
            occupy(8 * row_transfer, 8 * row_burst);
            ++stats_.swaps;
            break;
          case Kind::MetadataAccess:
            occupy(t.tRCD + t.tCL + t.tBL + t.tRP, t.tBL);
            ++stats_.metadataAccesses;
            break;
        }
    }
}

void
MemController::refreshIfDue()
{
    for (uint32_t r = 0; r < cfg_.ranks; ++r) {
        Rank &rank = ranks_[r];
        if (now_ < rank.refreshDue)
            continue;
        const uint32_t banks_per_rank =
            cfg_.bankGroups * cfg_.banksPerGroup;
        for (uint32_t b = 0; b < banks_per_rank; ++b) {
            Bank &bank = banks_[r * banks_per_rank + b];
            dram::Tick base = std::max(now_, bank.readyAct);
            if (bank.open) {
                base = std::max(now_, bank.readyPre) + cfg_.timing.tRP;
                bank.open = false;
                bank.hitStreak = 0;
            }
            bank.readyAct = std::max(bank.readyAct,
                                     base + cfg_.timing.tRFC);
        }
        rank.refreshDue += cfg_.timing.tREFI;
        ++stats_.refreshes;
    }
    // Refresh-window epoch for the defense's counter structures.
    if (defense_ && now_ - epochStart_ >= cfg_.timing.tREFW) {
        defense_->onEpochEnd(now_);
        epochStart_ = now_;
    }
}

bool
MemController::tryIssue()
{
    // Write drain hysteresis.
    if (draining_) {
        if (writeQ_.size() <= cfg_.writeQueue / 4)
            draining_ = false;
    } else {
        if (writeQ_.size() >= 3 * cfg_.writeQueue / 4 ||
            (readQ_.empty() && !writeQ_.empty()))
            draining_ = true;
    }
    std::deque<MemRequest> &q =
        (draining_ && !writeQ_.empty()) ? writeQ_ : readQ_;
    if (q.empty())
        return false;

    const auto &t = cfg_.timing;

    auto rank_can_act = [&](uint32_t flat_bank) {
        const Rank &rank = ranks_[rankOf(flat_bank)];
        if (now_ < rank.lastAct + t.tRRD_S)
            return false;
        if (rank.actHistory.size() == 4 &&
            now_ < rank.actHistory.front() + t.tFAW)
            return false;
        return true;
    };

    auto issue_column = [&](std::deque<MemRequest>::iterator it) {
        MemRequest r = *it;
        Bank &bank = banks_[r.flatBank];
        const dram::Tick cas = r.write ? t.tCWL : t.tCL;
        const dram::Tick data = std::max(now_ + cas, busReady_);
        busReady_ = data + t.tBL;
        bank.readyColumn = std::max(bank.readyColumn, now_ + t.tCCD_L);
        ++bank.hitStreak;
        if (r.write) {
            bank.readyPre = std::max(bank.readyPre,
                                     data + t.tBL + t.tWR);
            ++stats_.writes;
        } else {
            ++stats_.reads;
            if (onComplete_)
                onComplete_(r, data + t.tBL);
        }
        q.erase(it);
    };

    // Pass 1 (FR): oldest row hit under the column cap.
    for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->notBefore > now_)
            continue;
        Bank &bank = banks_[it->flatBank];
        if (bank.open && bank.row == it->addr.row &&
            bank.hitStreak < cfg_.columnCap &&
            bank.readyColumn <= now_ && busReady_ <= now_ + t.tCL) {
            stats_.rowHits += bank.hitStreak > 0 ? 1 : 0;
            issue_column(it);
            return true;
        }
    }

    // Pass 2 (FCFS): progress the oldest serviceable request.
    for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->notBefore > now_)
            continue;
        Bank &bank = banks_[it->flatBank];
        if (bank.open && bank.row == it->addr.row) {
            if (bank.readyColumn <= now_ && busReady_ <= now_ + t.tCL) {
                issue_column(it);
                return true;
            }
            continue;
        }
        if (bank.open) {
            // Row conflict: close the row once tRAS allows.
            if (bank.readyPre <= now_) {
                ++stats_.rowConflicts;
                doPrecharge(it->flatBank);
                return true;
            }
            continue;
        }
        // Bank closed: activate (defense may throttle instead).
        if (bank.readyAct <= now_ && rank_can_act(it->flatBank)) {
            dram::Tick throttle = 0;
            if (defense_ && !it->defenseCleared) {
                std::vector<defense::PreventiveAction> acts;
                defense_->onActivate(it->flatBank, it->addr.row, now_,
                                     acts);
                applyActions(acts, it->flatBank, it->addr.row,
                             &throttle);
                if (throttle > 0) {
                    it->notBefore = now_ + throttle;
                    return true; // state changed; rescan
                }
                it->defenseCleared = true;
                if (bank.readyAct > now_) {
                    // Preventive actions (victim refresh, migration,
                    // counter transfer) occupy this bank first; the
                    // admitted activation waits behind them and is
                    // not re-submitted to the defense.
                    return true;
                }
            }
            doActivate(it->flatBank, it->addr.row, false);
            return true;
        }
    }
    return false;
}

dram::Tick
MemController::nextWakeup() const
{
    dram::Tick next = kInf;
    auto consider = [&](dram::Tick t) {
        if (t > now_ && t < next)
            next = t;
    };
    auto scan = [&](const std::deque<MemRequest> &q) {
        for (const auto &r : q) {
            const Bank &bank = banks_[r.flatBank];
            consider(r.notBefore);
            consider(bank.readyAct);
            consider(bank.readyColumn);
            consider(bank.readyPre);
            const Rank &rank = ranks_[rankOf(r.flatBank)];
            consider(rank.lastAct + cfg_.timing.tRRD_S);
            if (rank.actHistory.size() == 4)
                consider(rank.actHistory.front() + cfg_.timing.tFAW);
        }
    };
    scan(readQ_);
    scan(writeQ_);
    consider(busReady_);
    for (const auto &rank : ranks_)
        consider(rank.refreshDue);
    return next;
}

dram::Tick
MemController::run(dram::Tick until)
{
    while (now_ < until) {
        refreshIfDue();
        if (tryIssue())
            continue;
        const dram::Tick next = nextWakeup();
        if (next >= until) {
            if (idle())
                now_ = until;
            else
                now_ = std::min(next, until);
            break;
        }
        now_ = next;
    }
    if (now_ < until && idle())
        now_ = until;
    return now_;
}

} // namespace svard::sim
