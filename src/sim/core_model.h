/**
 * @file
 * O3-lite core model (paper Table 4: 4-wide issue, 128-entry window).
 * The core dispatches its trace's instructions at the issue width;
 * memory reads occupy the instruction window until data returns, so a
 * read whose age exceeds the window blocks further dispatch — the
 * standard trace-driven out-of-order approximation used by DRAM
 * studies. Writes retire through the write buffer immediately.
 */
#ifndef SVARD_SIM_CORE_MODEL_H
#define SVARD_SIM_CORE_MODEL_H

#include <cstdint>
#include <map>
#include <vector>

#include "sim/config.h"
#include "sim/workload.h"

namespace svard::sim {

class CoreModel
{
  public:
    /**
     * @param primary number of trace requests whose completion ends
     *        the measured run; the trace repeats afterwards so the
     *        core keeps exerting pressure until every core finishes.
     */
    CoreModel(const SimConfig &cfg, uint32_t id,
              std::vector<TraceEntry> trace, size_t primary);

    /** True when a request is ready to send at `now`. */
    bool canRelease(dram::Tick now) const;

    /**
     * Earliest time the next request could be released, or a huge
     * value when blocked on an outstanding read's completion.
     */
    dram::Tick nextReleaseTime() const;

    /**
     * Inspect the next request without popping it (the system peeks
     * to route by channel and check backpressure before committing).
     */
    const TraceEntry &
    peek() const
    {
        return entryAt(nextIdx_);
    }

    /** Pop the next request (caller checked canRelease). */
    TraceEntry release(dram::Tick now, uint64_t *token_out);

    /** A read issued by this core completed. */
    void onReadComplete(uint64_t token, dram::Tick when);

    /** The enqueue failed (queue full): retry no earlier than t. */
    void stallUntil(dram::Tick t);

    /** All primary-phase requests issued and completed. */
    bool primaryDone() const;

    /** Committed instructions of the primary phase. */
    uint64_t primaryInstructions() const { return primaryInsts_; }

    /** Time the primary phase finished (valid once primaryDone()). */
    dram::Tick finishTime() const { return finishTime_; }

    /** IPC of the primary phase. */
    double ipc() const;

    uint32_t id() const { return id_; }

  private:
    const TraceEntry &entryAt(size_t i) const
    {
        return trace_[i % trace_.size()];
    }

    const SimConfig &cfg_;
    uint32_t id_;
    std::vector<TraceEntry> trace_;
    size_t primary_;

    size_t nextIdx_ = 0;         ///< next trace entry to release
    uint64_t instsDispatched_ = 0;
    dram::Tick frontendReady_ = 0;
    dram::Tick stallUntil_ = 0;

    // Outstanding reads: token -> cumulative instruction index.
    std::map<uint64_t, uint64_t> outstanding_;
    uint64_t nextToken_ = 1;

    size_t primaryCompleted_ = 0; ///< primary reads completed
    size_t primaryReads_ = 0;     ///< total reads in primary phase
    bool countedReads_ = false;
    uint64_t primaryInsts_ = 0;
    dram::Tick finishTime_ = 0;
    dram::Tick lastEventTime_ = 0;
};

} // namespace svard::sim

#endif // SVARD_SIM_CORE_MODEL_H
