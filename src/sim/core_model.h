/**
 * @file
 * O3-lite core model (paper Table 4: 4-wide issue, 128-entry window).
 * The core dispatches its trace's instructions at the issue width;
 * memory reads occupy the instruction window until data returns, so a
 * read whose age exceeds the window blocks further dispatch — the
 * standard trace-driven out-of-order approximation used by DRAM
 * studies. Writes retire through the write buffer immediately.
 *
 * The release/completion path is part of the simulation inner loop
 * (tens of millions of calls per sweep cell), so the hot queries are
 * inline and the outstanding-read set is a flat token-sorted ring
 * (tokens are issued monotonically) instead of a node-based map.
 */
#ifndef SVARD_SIM_CORE_MODEL_H
#define SVARD_SIM_CORE_MODEL_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/config.h"
#include "sim/workload.h"

namespace svard::sim {

class CoreModel
{
  public:
    /**
     * @param primary number of trace requests whose completion ends
     *        the measured run; the trace repeats afterwards so the
     *        core keeps exerting pressure until every core finishes.
     */
    CoreModel(const SimConfig &cfg, uint32_t id,
              std::vector<TraceEntry> trace, size_t primary);

    /** True when a request is ready to send at `now`. */
    bool
    canRelease(dram::Tick now) const
    {
        if (now < stallUntil_ || now < frontendReady_)
            return false;
        // Instruction-window constraint: the next entry cannot
        // dispatch while an outstanding read is more than `window`
        // instructions older.
        if (outLive_ != 0) {
            const uint64_t next_inst =
                instsDispatched_ + entryAt(nextIdx_).gap;
            if (next_inst - oldestOutstanding() > cfg_.instrWindow)
                return false;
        }
        return true;
    }

    /**
     * Earliest time the next request could be released, or a huge
     * value when blocked on an outstanding read's completion.
     */
    dram::Tick
    nextReleaseTime() const
    {
        if (outLive_ != 0) {
            const uint64_t next_inst =
                instsDispatched_ + entryAt(nextIdx_).gap;
            if (next_inst - oldestOutstanding() > cfg_.instrWindow)
                return kFarAway; // unblocked only by a completion
        }
        return std::max(stallUntil_, frontendReady_);
    }

    /**
     * Inspect the next request without popping it (the system peeks
     * to route by channel and check backpressure before committing).
     */
    const TraceEntry &
    peek() const
    {
        return entryAt(nextIdx_);
    }

    /** Pop the next request (caller checked canRelease). */
    TraceEntry
    release(dram::Tick now, uint64_t *token_out)
    {
        const TraceEntry &e = entryAt(nextIdx_);
        instsDispatched_ += e.gap;
        // Dispatch cost of the gap's instructions at the issue width.
        const dram::Tick dispatch =
            static_cast<dram::Tick>(e.gap) * cfg_.cpuTick() /
            cfg_.issueWidth;
        frontendReady_ = std::max(frontendReady_, now) + dispatch;
        lastEventTime_ = std::max(lastEventTime_, frontendReady_);

        const uint64_t token = nextToken_++;
        if (!e.write)
            pushOutstanding(token, instsDispatched_);
        if (token_out)
            *token_out = token;
        ++nextIdx_;

        if (nextIdx_ == primary_ && primaryReads_ == 0) {
            finishTime_ = frontendReady_;
        }
        return e;
    }

    /** A read issued by this core completed. */
    void
    onReadComplete(uint64_t token, dram::Tick when)
    {
        const uint64_t inst = eraseOutstanding(token);
        if (inst == kGone)
            return;
        const bool primary_read = inst <= primaryInsts_;
        lastEventTime_ = std::max(lastEventTime_, when);
        if (primary_read && primaryCompleted_ < primaryReads_) {
            ++primaryCompleted_;
            if (primaryCompleted_ == primaryReads_)
                finishTime_ = std::max(when, frontendReady_);
        }
    }

    /** The enqueue failed (queue full): retry no earlier than t. */
    void
    stallUntil(dram::Tick t)
    {
        stallUntil_ = std::max(stallUntil_, t);
    }

    /** All primary-phase requests issued and completed. */
    bool
    primaryDone() const
    {
        return nextIdx_ >= primary_ &&
               primaryCompleted_ >= primaryReads_;
    }

    /** Committed instructions of the primary phase. */
    uint64_t primaryInstructions() const { return primaryInsts_; }

    /** Time the primary phase finished (valid once primaryDone()). */
    dram::Tick finishTime() const { return finishTime_; }

    /** IPC of the primary phase. */
    double ipc() const;

    uint32_t id() const { return id_; }

  private:
    static constexpr dram::Tick kFarAway =
        std::numeric_limits<dram::Tick>::max() / 4;
    /** Tombstone marker for erased reads (real instruction indices
     *  stay far below it). */
    static constexpr uint64_t kGone =
        std::numeric_limits<uint64_t>::max();

    struct OutRead
    {
        uint64_t token;
        uint64_t inst;
    };

    const TraceEntry &entryAt(size_t i) const
    {
        return trace_[i % trace_.size()];
    }

    /** Cumulative instruction index of the oldest in-flight read.
     *  The ring is token-sorted (tokens issue monotonically) and the
     *  head is kept live, so this is one load. */
    uint64_t
    oldestOutstanding() const
    {
        return outstanding_[outHead_].inst;
    }

    void
    pushOutstanding(uint64_t token, uint64_t inst)
    {
        outstanding_.push_back({token, inst});
        ++outLive_;
    }

    /** Remove `token`; returns its instruction index or kGone. */
    uint64_t
    eraseOutstanding(uint64_t token)
    {
        const auto begin = outstanding_.begin() +
                           static_cast<std::ptrdiff_t>(outHead_);
        const auto it = std::lower_bound(
            begin, outstanding_.end(), token,
            [](const OutRead &o, uint64_t t) { return o.token < t; });
        if (it == outstanding_.end() || it->token != token ||
            it->inst == kGone)
            return kGone;
        const uint64_t inst = it->inst;
        it->inst = kGone;
        --outLive_;
        if (outLive_ == 0) {
            outstanding_.clear();
            outHead_ = 0;
        } else {
            // Keep the head live so oldestOutstanding() is one load.
            while (outHead_ < outstanding_.size() &&
                   outstanding_[outHead_].inst == kGone)
                ++outHead_;
            // Reclaim the dead prefix once it dominates the buffer.
            if (outHead_ >= 512 &&
                outHead_ * 2 >= outstanding_.size()) {
                outstanding_.erase(
                    outstanding_.begin(),
                    outstanding_.begin() +
                        static_cast<std::ptrdiff_t>(outHead_));
                outHead_ = 0;
            }
        }
        return inst;
    }

    const SimConfig &cfg_;
    uint32_t id_;
    std::vector<TraceEntry> trace_;
    size_t primary_;

    size_t nextIdx_ = 0;         ///< next trace entry to release
    uint64_t instsDispatched_ = 0;
    dram::Tick frontendReady_ = 0;
    dram::Tick stallUntil_ = 0;

    // Outstanding reads, token-sorted with tombstoned erases.
    std::vector<OutRead> outstanding_;
    size_t outHead_ = 0;
    size_t outLive_ = 0;
    uint64_t nextToken_ = 1;

    size_t primaryCompleted_ = 0; ///< primary reads completed
    size_t primaryReads_ = 0;     ///< total reads in primary phase
    bool countedReads_ = false;
    uint64_t primaryInsts_ = 0;
    dram::Tick finishTime_ = 0;
    dram::Tick lastEventTime_ = 0;
};

} // namespace svard::sim

#endif // SVARD_SIM_CORE_MODEL_H
