/**
 * @file
 * Synthetic workload generator. The paper evaluates 120 8-core
 * multiprogrammed mixes drawn from SPEC CPU2006/2017, TPC, MediaBench,
 * and YCSB; we do not have those traces, so each suite is represented
 * by seeded synthetic benchmark profiles spanning the relevant
 * behaviour space — memory intensity (MPKI), row-buffer locality,
 * read/write mix, and footprint — which are the workload properties
 * the evaluated defenses and metrics are sensitive to.
 */
#ifndef SVARD_SIM_WORKLOAD_H
#define SVARD_SIM_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/config.h"

namespace svard::sim {

/** One memory request of a core's trace. */
struct TraceEntry
{
    uint32_t gap;     ///< instructions since the previous request
    bool write;
    uint64_t address; ///< physical byte address
};

/** Statistical profile of a synthetic benchmark. */
struct BenchProfile
{
    std::string name;
    std::string suite;
    double mpki;         ///< memory requests per kilo-instruction
    double writeFrac;    ///< fraction of requests that are writes
    double rowLocality;  ///< P(next request falls in the same row run)
    uint32_t footprintMB;///< resident working set
    double streamFrac;   ///< fraction of accesses that stream linearly
};

/** The built-in benchmark suite (names are -alike, not the originals). */
const std::vector<BenchProfile> &benchmarkSuite();

const BenchProfile &benchmarkByName(const std::string &name);

/**
 * Generate a benchmark's memory trace: `n` requests with seeded
 * address and gap streams. `core_offset` shifts the address space so
 * cores do not share rows (multiprogrammed, not multithreaded).
 */
std::vector<TraceEntry> generateTrace(const BenchProfile &profile,
                                      size_t n, uint64_t seed,
                                      uint64_t core_offset);

/**
 * Per-core base address: disjoint 4 GiB regions plus a seeded row-
 * granular scatter. Without the scatter every core's footprint starts
 * at a multiple of 16K rows — a whole number of subarrays on every
 * module — and spatially-structured profiles (e.g. S0's subarray
 * parity) would alias pathologically with the placement, which no OS
 * page allocator produces. Shared by every trace-placing runner so
 * experiment cells are comparable across the sim and engine layers.
 */
uint64_t coreTraceOffset(uint64_t seed, uint32_t core);

/** An 8-core multiprogrammed mix: benchmark indices into the suite. */
struct WorkloadMix
{
    std::string name;
    std::vector<uint32_t> benchIdx;
};

/**
 * The paper's 120 randomly-chosen 8-core mixes (seeded, reproducible).
 */
std::vector<WorkloadMix> workloadMixes(uint32_t count = 120,
                                       uint32_t cores = 8,
                                       uint64_t seed = 2024);

/**
 * The fixed benign companion mix of adversarial runs (paper Fig. 13):
 * cores 1..cores-1 cycle through the benchmark suite while core 0
 * executes the attack trace. Shared by MixRunner and the experiment
 * engine so both report comparable benign weighted speedups.
 */
WorkloadMix adversarialBenignMix(uint32_t cores);

/**
 * Adversarial access-pattern traces (paper Fig. 13).
 * - Hydra: cycles over more distinct rows than the row-count cache
 *   holds, forcing a counter fetch per activation in steady state.
 * - RRS: hammers a single row pair, forcing continual row swaps.
 *
 * The physical addresses that land on consecutive DRAM rows (bank
 * bits fixed) depend on the MOP mapping, so the generators take the
 * geometry under attack; the default is the Table 4 system. Passing
 * the run's actual config matters: a trace generated for the DDR4
 * layout stops being adversarial on a DDR5/HBM2 preset (the row
 * stride doubles, so Hydra's cache is no longer thrashed and RRS's
 * aggressor pair collapses onto adjacent rows).
 */
std::vector<TraceEntry> adversarialHydraTrace(
    size_t n, uint64_t seed, const SimConfig &cfg = SimConfig{});
/** base_row picks the hammered aggressor pair (base, base+2); the
 *  victim's vulnerability bin — and thus Svärd's headroom — depends
 *  on it, so evaluations average over several bases. */
std::vector<TraceEntry> adversarialRrsTrace(
    size_t n, uint64_t seed, uint32_t base_row = 1000,
    const SimConfig &cfg = SimConfig{});

} // namespace svard::sim

#endif // SVARD_SIM_WORKLOAD_H
