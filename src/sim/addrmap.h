/**
 * @file
 * MOP (Minimalist Open Page, Kaseridis et al., MICRO 2011) physical
 * address mapping: a small run of consecutive cache blocks stays in
 * one row (preserving limited spatial locality), then the stream hops
 * to the next channel and bank, spreading accesses for channel- and
 * bank-level parallelism. With one channel (the paper's Table 4
 * system) the mapping is bit-identical to the classic single-channel
 * MOP scheme.
 */
#ifndef SVARD_SIM_ADDRMAP_H
#define SVARD_SIM_ADDRMAP_H

#include "dram/types.h"
#include "sim/config.h"

namespace svard::sim {

/** Decompose a physical byte address per the MOP scheme. */
class MopMapper
{
  public:
    explicit MopMapper(const SimConfig &cfg) : cfg_(cfg) {}

    dram::Address
    map(uint64_t phys_addr) const
    {
        uint64_t block = phys_addr >> 6; // 64 B cache blocks
        const uint64_t mop = block % cfg_.mopWidth;
        block /= cfg_.mopWidth;
        dram::Address a;
        // Channel interleaving at MOP-run granularity: consecutive
        // runs alternate channels before spreading over bank groups.
        a.channel = static_cast<uint32_t>(block % cfg_.channels);
        block /= cfg_.channels;
        a.bankGroup = static_cast<uint32_t>(block % cfg_.bankGroups);
        block /= cfg_.bankGroups;
        a.bank = static_cast<uint32_t>(block % cfg_.banksPerGroup);
        block /= cfg_.banksPerGroup;
        a.rank = static_cast<uint32_t>(block % cfg_.ranks);
        block /= cfg_.ranks;
        const uint64_t col_runs = cfg_.blocksPerRow() / cfg_.mopWidth;
        const uint64_t col_run = block % col_runs;
        block /= col_runs;
        a.column = static_cast<uint32_t>(col_run * cfg_.mopWidth + mop);
        a.row = static_cast<uint32_t>(block % cfg_.rowsPerBank);
        return a;
    }

    /** Flat bank index across ranks (controller-internal id). */
    uint32_t
    flatBank(const dram::Address &a) const
    {
        return (a.rank * cfg_.bankGroups + a.bankGroup) *
                   cfg_.banksPerGroup +
               a.bank;
    }

    /**
     * Byte distance between physical addresses mapping to
     * consecutive DRAM rows with every lower field (channel, bank
     * group, bank, rank, column) unchanged: the product of all MOP
     * divisors below the row bits (256 KiB on the Table 4 system).
     * Single source of truth for code that must address "the next
     * row" — adversarial trace generators in particular — so a
     * mapper change cannot silently strand them (coupling asserted
     * per preset in tests/test_presets.cc).
     */
    static uint64_t
    rowStrideBytes(const SimConfig &cfg)
    {
        return 64ULL * cfg.blocksPerRow() * cfg.channels *
               cfg.bankGroups * cfg.banksPerGroup * cfg.ranks;
    }

  private:
    const SimConfig &cfg_;
};

} // namespace svard::sim

#endif // SVARD_SIM_ADDRMAP_H
