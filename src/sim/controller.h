/**
 * @file
 * Cycle-accurate-enough DDR4 memory controller: FR-FCFS scheduling
 * with a column-access cap, open-row policy, bank/rank timing (tRCD,
 * tRP, tRAS, tCCD, tRRD, tFAW, refresh), a shared data bus, write
 * draining, and the defense hook that turns preventive actions into
 * DRAM traffic (victim refreshes, throttling stalls, migration/swap
 * bandwidth, metadata transfers).
 *
 * The inner loop is allocation-free and event-driven: requests live in
 * fixed ring buffers, defense actions land in a reusable ActionBuffer,
 * the tFAW history is a 4-slot ring, and a cached min-wakeup ("quiet
 * until") plus per-bank pending counts replace the full-queue rescans
 * the scheduler used to pay on every clock advance — with bit-identical
 * scheduling decisions (asserted by tests/test_perf_golden.cc).
 */
#ifndef SVARD_SIM_CONTROLLER_H
#define SVARD_SIM_CONTROLLER_H

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "defense/defense.h"
#include "sim/addrmap.h"
#include "sim/config.h"

namespace svard::sim {

/** A memory request inside the controller. */
struct MemRequest
{
    uint32_t core = 0;
    bool write = false;
    dram::Address addr;
    uint32_t flatBank = 0;
    dram::Tick arrive = 0;      ///< time it entered the queue
    dram::Tick notBefore = 0;   ///< throttle release time
    uint64_t token = 0;         ///< caller-assigned id
    /** The defense already observed (and admitted) this activation;
     *  it must not be consulted again when the ACT finally issues
     *  behind the preventive actions it triggered. */
    bool defenseCleared = false;
};

/**
 * Fixed-capacity circular request queue with order-preserving middle
 * erase (shifts whichever side is shorter, like std::deque, but over
 * one contiguous power-of-two buffer). Never allocates after
 * construction — the scheduler's per-activation hot path depends on
 * that.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(size_t capacity)
    {
        size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    MemRequest &
    operator[](size_t i)
    {
        return buf_[(head_ + i) & mask_];
    }

    const MemRequest &
    operator[](size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    /** Callers check fullness against their own limit first. */
    void
    push_back(const MemRequest &r)
    {
        buf_[(head_ + count_) & mask_] = r;
        ++count_;
    }

    void
    erase(size_t i)
    {
        if (i < count_ - i - 1) {
            for (size_t j = i; j > 0; --j)
                (*this)[j] = (*this)[j - 1];
            head_ = (head_ + 1) & mask_;
        } else {
            for (size_t j = i; j + 1 < count_; ++j)
                (*this)[j] = (*this)[j + 1];
        }
        --count_;
    }

  private:
    std::vector<MemRequest> buf_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t count_ = 0;
};

/** Controller statistics. */
struct ControllerStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t activations = 0;
    uint64_t rowHits = 0;
    uint64_t rowConflicts = 0;
    uint64_t refreshes = 0;
    uint64_t preventiveRefreshes = 0;
    uint64_t migrations = 0;
    uint64_t swaps = 0;
    uint64_t metadataAccesses = 0;
    dram::Tick throttleStall = 0;
    /** Scheduler scans answered by the O(1) blocked-until cache. */
    uint64_t blockedUntilHits = 0;
    /** Closed-bank activates blocked specifically by the tFAW window. */
    uint64_t tfawStalls = 0;
};

/**
 * Single-channel DDR4 controller. Drive it by enqueueing requests and
 * calling run(until); completed reads are reported through the
 * completion callback (writes complete at enqueue for the cores, but
 * still consume DRAM bandwidth).
 */
class MemController
{
  public:
    using Completion =
        std::function<void(const MemRequest &, dram::Tick)>;

    MemController(const SimConfig &cfg, defense::Defense *defense,
                  Completion on_complete);

    /** Enqueue a request; returns false if the queue is full. */
    bool enqueue(const MemRequest &req);

    bool
    readQueueFull() const
    {
        return readQ_.size() >= cfg_.readQueue;
    }

    bool
    writeQueueFull() const
    {
        return writeQ_.size() >= cfg_.writeQueue;
    }

    /**
     * Advance the controller until `until` or until all queued work
     * is drained, whichever is earlier. Returns the controller clock.
     */
    dram::Tick run(dram::Tick until);

    bool
    idle() const
    {
        return readQ_.empty() && writeQ_.empty();
    }

    dram::Tick now() const { return now_; }
    const ControllerStats &stats() const { return stats_; }
    const MopMapper &mapper() const { return mapper_; }

  private:
    struct Bank
    {
        bool open = false;
        uint32_t row = 0;
        uint32_t hitStreak = 0;
        dram::Tick actTime = 0;     ///< last ACT (for tRAS)
        dram::Tick readyAct = 0;    ///< earliest next ACT
        dram::Tick readyColumn = 0; ///< earliest next RD/WR
        dram::Tick readyPre = 0;    ///< earliest next PRE
    };

    struct Rank
    {
        /** Last 4 ACT times (tFAW window), fixed 4-slot ring. */
        std::array<dram::Tick, 4> actRing{};
        uint32_t actHead = 0;  ///< oldest entry once the ring is full
        uint32_t actCount = 0;
        dram::Tick lastAct = -1'000'000; ///< tRRD_S reference
        /** Last ACT time per bank group (tRRD_L reference; sized to
         *  cfg.bankGroups, so DDR5's 8 groups and HBM2's 4 are both
         *  exact instead of assuming the DDR4 Table 4 shape). */
        std::vector<dram::Tick> lastActBg;
        dram::Tick refreshDue = 0;

        dram::Tick oldestAct() const { return actRing[actHead]; }

        void
        pushAct(dram::Tick t)
        {
            if (actCount < 4) {
                actRing[(actHead + actCount) & 3] = t;
                ++actCount;
            } else {
                actRing[actHead] = t;
                actHead = (actHead + 1) & 3;
            }
        }
    };

    /** Try to issue the best request at `now_`; returns true if one
     *  was serviced (or partially progressed). */
    bool tryIssue();

    /** Write-drain hysteresis tick; returns whether writes drain.
     *  The hysteresis is sequence-stateful, so it must be evaluated
     *  exactly once per scheduler iteration — tryIssue does it when
     *  it runs, run() does it when the quiet cache skips tryIssue. */
    bool updateDrainMode();

    /** Earliest future time at which anything could change, at or
     *  after `from` (refresh processing times are always honored).
     *  Scans the banks/ranks with queued work (pendingPerBank_)
     *  instead of the queues themselves — same minimum, far fewer
     *  iterations. */
    dram::Tick nextWakeup(dram::Tick from = 0) const;

    /** Issue an ACT to a bank (timing + defense hook). */
    void doActivate(uint32_t flat_bank, uint32_t row, bool maintenance);

    void doPrecharge(uint32_t flat_bank);

    /** Execute defense actions produced by an ACT. */
    void applyActions(const defense::ActionBuffer &acts,
                      uint32_t flat_bank, uint32_t row,
                      dram::Tick *throttle_out);

    void refreshIfDue();

    uint32_t rankOf(uint32_t flat_bank) const
    {
        return flat_bank / (cfg_.bankGroups * cfg_.banksPerGroup);
    }

    /** Bank group of a flat bank within its rank (tRRD_L/tCCD_L). */
    uint32_t bankGroupOf(uint32_t flat_bank) const
    {
        return (flat_bank % (cfg_.bankGroups * cfg_.banksPerGroup)) /
               cfg_.banksPerGroup;
    }

    /** Earliest next ACT a rank's tRRD/tFAW state allows for a bank
     *  of bank group `bg` (the scheduler's single source of truth:
     *  the issue check, the blocked-until scan, and the incremental
     *  enqueue verdict all derive from it). */
    dram::Tick
    rankActReady(const Rank &rank, uint32_t bg) const
    {
        dram::Tick e = rank.lastAct + cfg_.timing.tRRD_S;
        e = std::max(e, rank.lastActBg[bg] + cfg_.timing.tRRD_L);
        if (rank.actCount == 4)
            e = std::max(e, rank.oldestAct() + cfg_.timing.tFAW);
        return e;
    }

    const SimConfig &cfg_;
    MopMapper mapper_;
    defense::Defense *defense_; ///< may be null (baseline)
    Completion onComplete_;

    dram::Tick now_ = 0;
    dram::Tick busReady_ = 0;
    dram::Tick epochStart_ = 0;
    /** Earliest rank refresh or defense-epoch due time; refreshIfDue
     *  is a single compare until then. 0 forces the first pass to
     *  compute it. */
    dram::Tick maintenanceDue_ = 0;
    std::vector<Bank> banks_;
    std::vector<Rank> ranks_;
    RequestQueue readQ_;
    RequestQueue writeQ_;
    bool draining_ = false;

    /** Reused per-ACT action buffer: cleared, never reallocated, so
     *  the defense hook performs no per-activation heap allocation. */
    defense::ActionBuffer actionBuf_;

    /** Queued requests (both queues) per flat bank, plus a compact
     *  unordered list of the banks with work — the index that lets
     *  nextWakeup and the fast-fail check visit only the (few) banks
     *  that can matter instead of every bank or every request. */
    std::vector<uint32_t> pendingPerBank_;
    std::vector<uint32_t> pendingBanks_;
    std::vector<uint32_t> pendingPos_; ///< bank -> index in pendingBanks_
    /** Queued requests with a throttle release time set; when zero,
     *  nextWakeup skips the notBefore scan entirely. */
    uint32_t throttledQueued_ = 0;

    /** Cached min-wakeup: while valid and now_ < quietUntil_ (and
     *  before quietBusFlip_, see below), no request can make
     *  progress, so run() skips the tryIssue scan. Invalidated by
     *  anything that changes schedulable state (enqueue, refresh,
     *  epoch end); issue paths run full scans. */
    bool quietValid_ = false;
    dram::Tick quietUntil_ = 0;
    /** The one lookahead condition in tryIssue — a column may issue
     *  while the bus frees within tCL — flips at busReady_ - tCL,
     *  which is not a wakeup candidate (the pre-rewrite scheduler
     *  caught it by rescanning at caller-driven run() boundaries).
     *  Crossing this time therefore forces a rescan, not a skip. */
    dram::Tick quietBusFlip_ = 0;

    /** Result cache of a failed scan: the minimum, over the scanned
     *  queue, of each request's exact earliest-serviceable time.
     *  While no state has changed (no enqueue, issue, refresh, or
     *  epoch end) and the same queue is up, a repeat scan before
     *  this time provably fails — tryIssue returns in O(1). */
    bool scanCacheValid_ = false;
    bool scanCacheDrained_ = false; ///< queue the cached fail covers
    dram::Tick scanBlockedUntil_ = 0;
    /** The blocking minimum came from the bus-lookahead term, which
     *  is not a wakeup candidate — the jump shortcut must not treat
     *  it as one. */
    bool scanBlockedByBus_ = false;
    /** Last tryIssue failure was answered from the scan cache, i.e.
     *  provably nothing changed — run() then keeps its jump target
     *  instead of re-deriving it. */
    bool lastFailCached_ = false;


    ControllerStats stats_;
};

} // namespace svard::sim

#endif // SVARD_SIM_CONTROLLER_H
