/**
 * @file
 * Cycle-accurate-enough DDR4 memory controller: FR-FCFS scheduling
 * with a column-access cap, open-row policy, bank/rank timing (tRCD,
 * tRP, tRAS, tCCD, tRRD, tFAW, refresh), a shared data bus, write
 * draining, and the defense hook that turns preventive actions into
 * DRAM traffic (victim refreshes, throttling stalls, migration/swap
 * bandwidth, metadata transfers).
 */
#ifndef SVARD_SIM_CONTROLLER_H
#define SVARD_SIM_CONTROLLER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "defense/defense.h"
#include "sim/addrmap.h"
#include "sim/config.h"

namespace svard::sim {

/** A memory request inside the controller. */
struct MemRequest
{
    uint32_t core = 0;
    bool write = false;
    dram::Address addr;
    uint32_t flatBank = 0;
    dram::Tick arrive = 0;      ///< time it entered the queue
    dram::Tick notBefore = 0;   ///< throttle release time
    uint64_t token = 0;         ///< caller-assigned id
    /** The defense already observed (and admitted) this activation;
     *  it must not be consulted again when the ACT finally issues
     *  behind the preventive actions it triggered. */
    bool defenseCleared = false;
};

/** Controller statistics. */
struct ControllerStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t activations = 0;
    uint64_t rowHits = 0;
    uint64_t rowConflicts = 0;
    uint64_t refreshes = 0;
    uint64_t preventiveRefreshes = 0;
    uint64_t migrations = 0;
    uint64_t swaps = 0;
    uint64_t metadataAccesses = 0;
    dram::Tick throttleStall = 0;
};

/**
 * Single-channel DDR4 controller. Drive it by enqueueing requests and
 * calling run(until); completed reads are reported through the
 * completion callback (writes complete at enqueue for the cores, but
 * still consume DRAM bandwidth).
 */
class MemController
{
  public:
    using Completion =
        std::function<void(const MemRequest &, dram::Tick)>;

    MemController(const SimConfig &cfg, defense::Defense *defense,
                  Completion on_complete);

    /** Enqueue a request; returns false if the queue is full. */
    bool enqueue(const MemRequest &req);

    bool
    readQueueFull() const
    {
        return readQ_.size() >= cfg_.readQueue;
    }

    bool
    writeQueueFull() const
    {
        return writeQ_.size() >= cfg_.writeQueue;
    }

    /**
     * Advance the controller until `until` or until all queued work
     * is drained, whichever is earlier. Returns the controller clock.
     */
    dram::Tick run(dram::Tick until);

    bool
    idle() const
    {
        return readQ_.empty() && writeQ_.empty();
    }

    dram::Tick now() const { return now_; }
    const ControllerStats &stats() const { return stats_; }
    const MopMapper &mapper() const { return mapper_; }

  private:
    struct Bank
    {
        bool open = false;
        uint32_t row = 0;
        uint32_t hitStreak = 0;
        dram::Tick actTime = 0;     ///< last ACT (for tRAS)
        dram::Tick readyAct = 0;    ///< earliest next ACT
        dram::Tick readyColumn = 0; ///< earliest next RD/WR
        dram::Tick readyPre = 0;    ///< earliest next PRE
    };

    struct Rank
    {
        std::vector<dram::Tick> actHistory; ///< last 4 ACTs (tFAW)
        dram::Tick lastAct = -1'000'000;    ///< tRRD reference
        dram::Tick refreshDue = 0;
    };

    /** Try to issue the best request at `now_`; returns true if one
     *  was serviced (or partially progressed). */
    bool tryIssue();

    /** Earliest future time at which anything could change. */
    dram::Tick nextWakeup() const;

    /** Issue an ACT to a bank (timing + defense hook). */
    void doActivate(uint32_t flat_bank, uint32_t row, bool maintenance);

    void doPrecharge(uint32_t flat_bank);

    /** Execute defense actions produced by an ACT. */
    void applyActions(const std::vector<defense::PreventiveAction> &acts,
                      uint32_t flat_bank, uint32_t row,
                      dram::Tick *throttle_out);

    void refreshIfDue();

    uint32_t rankOf(uint32_t flat_bank) const
    {
        return flat_bank / (cfg_.bankGroups * cfg_.banksPerGroup);
    }

    const SimConfig &cfg_;
    MopMapper mapper_;
    defense::Defense *defense_; ///< may be null (baseline)
    Completion onComplete_;

    dram::Tick now_ = 0;
    dram::Tick busReady_ = 0;
    dram::Tick epochStart_ = 0;
    std::vector<Bank> banks_;
    std::vector<Rank> ranks_;
    std::deque<MemRequest> readQ_;
    std::deque<MemRequest> writeQ_;
    bool draining_ = false;
    ControllerStats stats_;
};

} // namespace svard::sim

#endif // SVARD_SIM_CONTROLLER_H
