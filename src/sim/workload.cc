#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "sim/addrmap.h"

namespace svard::sim {

const std::vector<BenchProfile> &
benchmarkSuite()
{
    // Profiles span the suites' behaviour space: streaming
    // high-bandwidth (libquantum/lbm-alike), pointer-chasing
    // latency-bound (mcf/omnetpp-alike), moderate (gcc/xalanc-alike),
    // transactional (TPC-alike), key-value (YCSB-alike), and media
    // kernels. MPKI values are LLC-miss rates.
    // Footprints are the post-LLC *hot* regions each workload keeps
    // re-visiting; together with MPKI and locality they set the per-row
    // activation density the defenses react to.
    static const std::vector<BenchProfile> suite = {
        {"stream-hi", "SPEC06", 32.0, 0.30, 0.85, 8, 0.90},
        {"stream-md", "SPEC17", 18.0, 0.25, 0.80, 8, 0.85},
        {"ptrchase-hi", "SPEC06", 26.0, 0.10, 0.05, 32, 0.05},
        {"ptrchase-md", "SPEC17", 14.0, 0.12, 0.10, 24, 0.05},
        {"mixed-hi", "SPEC17", 20.0, 0.20, 0.45, 16, 0.40},
        {"mixed-md", "SPEC06", 9.0, 0.22, 0.50, 12, 0.40},
        {"gemm-tiled", "SPEC17", 6.0, 0.35, 0.70, 4, 0.60},
        {"compress", "SPEC06", 4.0, 0.30, 0.55, 8, 0.50},
        {"oltp-a", "TPC", 12.0, 0.40, 0.25, 32, 0.10},
        {"oltp-b", "TPC", 8.0, 0.45, 0.30, 48, 0.10},
        {"olap-scan", "TPC", 22.0, 0.05, 0.75, 64, 0.80},
        {"kv-read", "YCSB", 10.0, 0.05, 0.20, 32, 0.10},
        {"kv-update", "YCSB", 11.0, 0.50, 0.20, 32, 0.10},
        {"video-enc", "MediaBench", 7.0, 0.35, 0.65, 4, 0.70},
        {"video-dec", "MediaBench", 5.0, 0.20, 0.70, 4, 0.70},
        {"filter2d", "MediaBench", 13.0, 0.30, 0.60, 8, 0.65},
        {"hotspot-a", "KERNEL", 70.0, 0.15, 0.10, 2, 0.05},
        {"hotspot-b", "KERNEL", 50.0, 0.30, 0.20, 4, 0.10},
    };
    return suite;
}

const BenchProfile &
benchmarkByName(const std::string &name)
{
    for (const auto &b : benchmarkSuite())
        if (b.name == name)
            return b;
    SVARD_FATAL("unknown benchmark: " + name);
}

std::vector<TraceEntry>
generateTrace(const BenchProfile &profile, size_t n, uint64_t seed,
              uint64_t core_offset)
{
    // The stream is a function of (benchmark, seed) only; core_offset
    // relocates it. A benchmark therefore issues the identical access
    // pattern alone and inside a mix, as the paper's trace-driven
    // methodology does.
    uint64_t name_hash = 1469598103934665603ULL;
    for (char c : profile.name)
        name_hash = (name_hash ^ static_cast<uint8_t>(c)) *
                    1099511628211ULL;
    Rng rng(hashSeed({seed, name_hash, 0x7124CEULL}));
    std::vector<TraceEntry> trace;
    trace.reserve(n);

    const uint64_t footprint =
        static_cast<uint64_t>(profile.footprintMB) * 1024 * 1024;
    const double mean_gap = 1000.0 / profile.mpki;
    uint64_t cursor = core_offset + rng.below(footprint);

    for (size_t i = 0; i < n; ++i) {
        // Geometric gaps reproduce the bursty arrivals of real misses.
        double u = rng.uniform();
        if (u < 1e-12)
            u = 1e-12;
        const uint32_t gap = 1 + static_cast<uint32_t>(
                                     -std::log(u) * (mean_gap - 1.0));

        if (rng.chance(profile.streamFrac)) {
            cursor += 64; // next cache block
        } else if (rng.chance(profile.rowLocality)) {
            // Another block in the same 4-block MOP run / row
            // neighbourhood.
            cursor = (cursor & ~uint64_t(255)) + 64 * rng.below(4);
        } else {
            cursor = core_offset + (rng.below(footprint) & ~uint64_t(63));
        }
        if (cursor >= core_offset + footprint)
            cursor = core_offset + (cursor % footprint);

        trace.push_back({gap, rng.chance(profile.writeFrac), cursor});
    }
    return trace;
}

std::vector<WorkloadMix>
workloadMixes(uint32_t count, uint32_t cores, uint64_t seed)
{
    const auto &suite = benchmarkSuite();
    Rng rng(seed);
    std::vector<WorkloadMix> mixes;
    mixes.reserve(count);
    for (uint32_t m = 0; m < count; ++m) {
        WorkloadMix mix;
        mix.name = "mix" + std::to_string(m);
        for (uint32_t c = 0; c < cores; ++c)
            mix.benchIdx.push_back(
                static_cast<uint32_t>(rng.below(suite.size())));
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

std::vector<TraceEntry>
adversarialHydraTrace(size_t n, uint64_t seed, const SimConfig &cfg)
{
    // Touch one block in each of many distinct rows, cycling through
    // more rows than Hydra's row-count cache can hold so every
    // activation misses the RCC. Low gap keeps the pattern hot.
    Rng rng(seed);
    std::vector<TraceEntry> trace;
    trace.reserve(n);
    constexpr uint64_t kRows = 8192; // > rccEntries (4096)
    const uint64_t row_stride = MopMapper::rowStrideBytes(cfg);
    for (size_t i = 0; i < n; ++i) {
        const uint64_t row = i % kRows;
        trace.push_back({2, false, row * row_stride});
    }
    return trace;
}

WorkloadMix
adversarialBenignMix(uint32_t cores)
{
    WorkloadMix benign;
    benign.name = "adversarial-benign";
    const auto &suite = benchmarkSuite();
    for (uint32_t c = 1; c < cores; ++c)
        benign.benchIdx.push_back(c % suite.size());
    return benign;
}

uint64_t
coreTraceOffset(uint64_t seed, uint32_t core)
{
    // The 256 KiB factor is deliberately NOT geometry-derived: the
    // offset only scatters cores apart in physical address space
    // (deterministic entropy, no row-pure contract), and benign
    // traces are generated once per mix and shared across the
    // engine's whole geometry axis — a geometry-dependent offset
    // would silently fork the workload per geometry.
    const uint64_t row_scatter =
        hashSeed({seed, core, 0x0FF5E7ULL}) % 16384;
    return (core + 1) * (4ULL << 30) + row_scatter * (256 * 1024);
}

std::vector<TraceEntry>
adversarialRrsTrace(size_t n, uint64_t seed, uint32_t base_row,
                    const SimConfig &cfg)
{
    // Classic double-sided hammer: alternate two aggressor rows as
    // fast as possible, maximizing swap operations.
    Rng rng(seed);
    std::vector<TraceEntry> trace;
    trace.reserve(n);
    const uint64_t row_stride = MopMapper::rowStrideBytes(cfg); // +1 DRAM row
    const uint64_t base = static_cast<uint64_t>(base_row) * row_stride;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t row = (i & 1) ? base + 2 * row_stride : base;
        // Different block each time so requests miss any row buffer
        // coalescing and force an activation.
        const uint64_t block = (i / 2) % 128;
        trace.push_back({2, false, row + block * 64});
    }
    return trace;
}

} // namespace svard::sim
