/**
 * @file
 * Multi-channel memory subsystem. A SimEngine owns one MemController
 * per channel behind the channel-interleaving MopMapper, each with its
 * own defense instance (read-disturbance state is per-channel in real
 * controllers), and aggregates ControllerStats / DefenseStats across
 * channels. All channels advance in lockstep to the same target tick,
 * so a 1-channel SimEngine is cycle-identical to driving a bare
 * MemController.
 */
#ifndef SVARD_SIM_ENGINE_H
#define SVARD_SIM_ENGINE_H

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "defense/registry.h"
#include "sim/controller.h"

namespace svard::sim {

class SimEngine
{
  public:
    using Completion = MemController::Completion;

    /**
     * Build per-channel defense instances from the registry. Each
     * channel gets an independent instance (seeded per channel) so
     * counters and RNG streams do not alias across channels.
     * `params` is the named-parameter bag handed to every channel's
     * DefenseContext (registry-driven parameter sweeps).
     */
    SimEngine(const SimConfig &cfg, const std::string &defense_name,
              std::shared_ptr<const core::ThresholdProvider> provider,
              uint64_t seed, Completion on_complete,
              const defense::DefenseParams &params = {});

    /**
     * Use a single caller-owned defense (legacy path, tests and the
     * security harness). Requires a 1-channel configuration unless
     * `defense` is null; the defense's bank folding is configured to
     * the engine's geometry.
     */
    SimEngine(const SimConfig &cfg, defense::Defense *defense,
              Completion on_complete);

    const MopMapper &mapper() const { return mapper_; }

    uint32_t
    channels() const
    {
        return static_cast<uint32_t>(controllers_.size());
    }

    // The per-request engine entry points below are inline: the
    // system loop calls them tens of millions of times per sweep
    // cell, and a cross-TU call per poll costs as much as the poll.

    /** Either queue of `channel` is full (core must stall). */
    bool
    queueFull(uint32_t channel) const
    {
        const MemController &mc = *controllers_[channel % channels()];
        return mc.readQueueFull() || mc.writeQueueFull();
    }

    /** Route a request to its channel; returns false if full. */
    bool
    enqueue(const MemRequest &req)
    {
        SVARD_ASSERT(req.addr.channel < channels(),
                     "request channel out of range");
        return controllers_[req.addr.channel]->enqueue(req);
    }

    /** Advance every channel to `until` in lockstep. */
    dram::Tick
    run(dram::Tick until)
    {
        dram::Tick reached = 0;
        for (auto &mc : controllers_)
            reached = std::max(reached, mc->run(until));
        return reached;
    }

    dram::Tick
    now() const
    {
        // Channels advance in lockstep; report the slowest clock so
        // the caller never skips time a channel has not simulated.
        dram::Tick t = controllers_[0]->now();
        for (const auto &mc : controllers_)
            t = std::min(t, mc->now());
        return t;
    }

    bool
    idle() const
    {
        for (const auto &mc : controllers_)
            if (!mc->idle())
                return false;
        return true;
    }

    /** Stats summed over channels. */
    ControllerStats stats() const;
    defense::DefenseStats defenseStats() const;

    /** Per-channel introspection. */
    const MemController &channel(uint32_t c) const;
    defense::Defense *defenseOf(uint32_t c) const;
    bool hasDefense() const;

  private:
    const SimConfig &cfg_;
    MopMapper mapper_;
    std::vector<std::unique_ptr<defense::Defense>> ownedDefenses_;
    std::vector<defense::Defense *> defenses_; ///< per channel, may be null
    std::vector<std::unique_ptr<MemController>> controllers_;
};

} // namespace svard::sim

#endif // SVARD_SIM_ENGINE_H
