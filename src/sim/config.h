/**
 * @file
 * Simulated system configuration (paper Table 4): 8 cores at 3.2 GHz,
 * 4-wide issue, 128-entry instruction window; DDR4 with 1 channel,
 * 2 ranks, 4 bank groups x 4 banks, 128K rows/bank; FR-FCFS with a
 * column cap of 16, open-row policy, MOP address mapping; 64-entry
 * read/write queues.
 */
#ifndef SVARD_SIM_CONFIG_H
#define SVARD_SIM_CONFIG_H

#include <cstdint>
#include <string>

#include "dram/timing.h"
#include "dram/types.h"

namespace svard::sim {

struct SimConfig
{
    /**
     * Geometry label recorded in result sinks and cache fingerprints
     * (a preset name from sim/presets.h, or whatever the caller sets
     * for a hand-built configuration). The default configuration IS
     * the "ddr4-table4" preset.
     */
    std::string geometry = "ddr4-table4";

    /** DRAM standard the timing table below belongs to. */
    dram::Standard standard = dram::Standard::DDR4;

    // --- processor ---
    uint32_t cores = 8;
    double cpuGhz = 3.2;
    uint32_t issueWidth = 4;
    uint32_t instrWindow = 128;

    // --- DRAM organization ---
    uint32_t channels = 1;
    uint32_t ranks = 2;
    uint32_t bankGroups = 4;
    uint32_t banksPerGroup = 4;
    uint32_t rowsPerBank = 128 * 1024;
    uint32_t rowBytes = 8192;

    // --- memory controller ---
    uint32_t readQueue = 64;
    uint32_t writeQueue = 64;
    uint32_t columnCap = 16;   ///< FR-FCFS row-hit cap
    uint32_t mopWidth = 4;     ///< MOP: consecutive blocks per row run

    dram::TimingParams timing = dram::ddr4Timing(3200);

    /**
     * Online-recalibration duty: fraction of each tREFI the rank
     * spends re-characterizing rows (engine/drift_eval.h charges the
     * policy's amortized ACT cost here). 0 — the only value the
     * static path ever sees — adds exactly zero ticks, so pre-drift
     * schedules are bit-identical.
     */
    double recalDuty = 0.0;

    /** Banks of one rank (the space vulnerability profiles cover). */
    uint32_t
    banksPerRank() const
    {
        return bankGroups * banksPerGroup;
    }

    /** Flat banks of one channel. */
    uint32_t
    totalBanks() const
    {
        return ranks * bankGroups * banksPerGroup;
    }

    /** CPU cycle time in picoseconds, rounded to nearest. Truncation
     *  biased every non-integer tick downward (e.g. 3.0 GHz: 333 for
     *  333.33); rounding removes that systematic bias and halves the
     *  worst-case error for generic frequencies. The half-tick cases
     *  (3.2 GHz: exactly 312.5) remain off by 0.5 ps either way —
     *  only a finer time unit could represent them exactly. */
    dram::Tick
    cpuTick() const
    {
        return static_cast<dram::Tick>(1000.0 / cpuGhz + 0.5);
    }

    /** Cache blocks per DRAM row (burst granularity is 64 B). */
    uint32_t
    blocksPerRow() const
    {
        return rowBytes / 64;
    }
};

} // namespace svard::sim

#endif // SVARD_SIM_CONFIG_H
