#include "sim/system.h"

#include <algorithm>

#include "common/log.h"
#include "obs/metrics.h"

namespace svard::sim {

namespace {
constexpr dram::Tick kFar = std::numeric_limits<dram::Tick>::max() / 4;
/** Co-simulation quantum: bounded drift between cores and controller. */
constexpr dram::Tick kQuantum = 500 * dram::kPsPerNs;

/**
 * Fold one finished run's controller/defense stats into the process
 * metrics registry. Pure observation: reads completed stats, feeds
 * nothing back, so results are identical with metrics on or off.
 */
void
foldRunMetrics(const SimEngine &eng, const RunResult &res)
{
    if (!obs::metricsEnabled())
        return;
    static const obs::MetricId runs = obs::counter("sim.runs");
    static const obs::MetricId reads = obs::counter("sim.reads");
    static const obs::MetricId writes = obs::counter("sim.writes");
    static const obs::MetricId acts = obs::counter("sim.activations");
    static const obs::MetricId rowHits = obs::counter("sim.row_hits");
    static const obs::MetricId rowConf =
        obs::counter("sim.row_conflicts");
    static const obs::MetricId refr = obs::counter("sim.refreshes");
    static const obs::MetricId blockedHits =
        obs::counter("sim.blocked_until_hits");
    static const obs::MetricId tfaw = obs::counter("sim.tfaw_stalls");
    static const obs::MetricId defActs =
        obs::counter("defense.activations_observed");
    static const obs::MetricId defPrev =
        obs::counter("defense.preventive_refreshes");
    static const obs::MetricId defThrottle =
        obs::counter("defense.throttle_events");
    static const obs::MetricId defMigr =
        obs::counter("defense.migrations");
    static const obs::MetricId defSwaps = obs::counter("defense.swaps");
    static const obs::MetricId defMeta =
        obs::counter("defense.metadata_accesses");
    static const obs::MetricId defEntries =
        obs::gauge("defense.table_entries");
    static const obs::MetricId defRehashes =
        obs::counter("defense.table_rehashes");

    const ControllerStats &c = res.controller;
    obs::add(runs);
    obs::add(reads, c.reads);
    obs::add(writes, c.writes);
    obs::add(acts, c.activations);
    obs::add(rowHits, c.rowHits);
    obs::add(rowConf, c.rowConflicts);
    obs::add(refr, c.refreshes);
    obs::add(blockedHits, c.blockedUntilHits);
    obs::add(tfaw, c.tfawStalls);

    if (!eng.hasDefense())
        return;
    const defense::DefenseStats &d = res.defense;
    obs::add(defActs, d.activationsObserved);
    obs::add(defPrev, d.preventiveRefreshes);
    obs::add(defThrottle, d.throttleEvents);
    obs::add(defMigr, d.migrations);
    obs::add(defSwaps, d.swaps);
    obs::add(defMeta, d.metadataAccesses);
    uint64_t entries = 0, rehashes = 0;
    for (uint32_t ch = 0; ch < eng.channels(); ++ch) {
        if (const defense::Defense *def = eng.defenseOf(ch)) {
            uint64_t e = 0, r = 0;
            def->tableStats(&e, &r);
            entries += e;
            rehashes += r;
        }
    }
    obs::gaugeMax(defEntries, entries);
    obs::add(defRehashes, rehashes);
}
} // anonymous namespace

System::System(const SimConfig &cfg,
               std::vector<std::vector<TraceEntry>> traces,
               size_t primary, defense::Defense *defense)
    : cfg_(cfg)
{
    SVARD_ASSERT(!traces.empty(), "system needs traces");
    for (uint32_t c = 0; c < traces.size(); ++c)
        cores_.push_back(std::make_unique<CoreModel>(
            cfg_, c, std::move(traces[c]), primary));
    releaseDirty_.assign(cores_.size(), 1);

    engine_ = std::make_unique<SimEngine>(
        cfg_, defense, [this](const MemRequest &req, dram::Tick when) {
            cores_[req.core]->onReadComplete(req.token, when);
            releaseDirty_[req.core] = 1;
        });
}

System::System(const SimConfig &cfg,
               std::vector<std::vector<TraceEntry>> traces,
               size_t primary, const std::string &defense_name,
               std::shared_ptr<const core::ThresholdProvider> provider,
               uint64_t seed, const defense::DefenseParams &params)
    : cfg_(cfg)
{
    SVARD_ASSERT(!traces.empty(), "system needs traces");
    for (uint32_t c = 0; c < traces.size(); ++c)
        cores_.push_back(std::make_unique<CoreModel>(
            cfg_, c, std::move(traces[c]), primary));
    releaseDirty_.assign(cores_.size(), 1);

    engine_ = std::make_unique<SimEngine>(
        cfg_, defense_name, std::move(provider), seed,
        [this](const MemRequest &req, dram::Tick when) {
            cores_[req.core]->onReadComplete(req.token, when);
            releaseDirty_[req.core] = 1;
        },
        params);
}

RunResult
System::run()
{
    const MopMapper &mapper = engine_->mapper();
    const dram::Tick hard_stop = 30000 * dram::kPsPerMs; // 30 s walltime
    // primaryDone is monotonic, so finished cores are checked once
    // and dropped instead of being re-polled every loop iteration.
    std::vector<char> done(cores_.size(), 0);
    size_t done_count = 0;
    auto all_done = [&] {
        for (size_t c = 0; c < cores_.size(); ++c) {
            if (done[c])
                continue;
            if (!cores_[c]->primaryDone())
                return false;
            done[c] = 1;
            ++done_count;
        }
        return done_count == cores_.size();
    };

    // Cached per-core release gates: canRelease(now) is exactly
    // nextReleaseTime() <= now, and a core's release time moves only
    // through its own releases/stalls (refreshed below) or a read
    // completion (releaseDirty_, set by the completion callback), so
    // blocked cores are skipped without re-polling them.
    std::vector<dram::Tick> next_rel(cores_.size(), 0);

    while (!all_done() && engine_->now() < hard_stop) {
        const dram::Tick now = engine_->now();
        bool released = false;
        for (size_t c = 0; c < cores_.size(); ++c) {
            if (!releaseDirty_[c] && next_rel[c] > now)
                continue;
            CoreModel &core = *cores_[c];
            while (core.canRelease(now)) {
                // Route by channel before releasing: backpressure is
                // per-channel, and enqueue is irreversible for the
                // core's state.
                const dram::Address addr =
                    mapper.map(core.peek().address);
                if (engine_->queueFull(addr.channel)) {
                    core.stallUntil(now + 20 * dram::kPsPerNs);
                    break;
                }
                uint64_t token = 0;
                const TraceEntry e = core.release(now, &token);
                MemRequest req;
                req.core = core.id();
                req.write = e.write;
                req.addr = addr;
                req.arrive = now;
                req.token = token;
                const bool ok = engine_->enqueue(req);
                SVARD_ASSERT(ok, "enqueue failed after capacity check");
                released = true;
            }
            next_rel[c] = core.nextReleaseTime();
            releaseDirty_[c] = 0;
        }
        if (released)
            continue;

        dram::Tick next_core = kFar;
        for (size_t c = 0; c < cores_.size(); ++c)
            next_core = std::min(next_core, next_rel[c]);
        dram::Tick until = std::min(next_core, now + kQuantum);
        if (until <= now)
            until = now + kQuantum;
        engine_->run(until);
        if (engine_->now() <= now) {
            // Defensive: guarantee forward progress.
            engine_->run(now + cfg_.timing.tCK);
            if (engine_->now() <= now)
                break;
        }
    }

    RunResult out;
    for (const auto &core : cores_)
        out.ipc.push_back(core->ipc());
    out.controller = engine_->stats();
    for (uint32_t c = 0; c < engine_->channels(); ++c)
        out.perChannel.push_back(engine_->channel(c).stats());
    if (engine_->hasDefense())
        out.defense = engine_->defenseStats();
    out.endTime = engine_->now();
    foldRunMetrics(*engine_, out);
    return out;
}

const char *
defenseKindName(DefenseKind k)
{
    switch (k) {
      case DefenseKind::None: return "None";
      case DefenseKind::Para: return "PARA";
      case DefenseKind::BlockHammer: return "BlockHammer";
      case DefenseKind::Hydra: return "Hydra";
      case DefenseKind::Aqua: return "AQUA";
      case DefenseKind::Rrs: return "RRS";
      case DefenseKind::Graphene: return "Graphene";
    }
    return "?";
}

std::unique_ptr<defense::Defense>
makeDefense(DefenseKind kind,
            std::shared_ptr<const core::ThresholdProvider> provider,
            uint64_t seed, const SimConfig &cfg)
{
    return defense::makeDefenseByName(
        defenseKindName(kind),
        defense::DefenseContext(cfg, std::move(provider), seed));
}

MixRunner::MixRunner(SimConfig cfg, size_t requests_per_core,
                     uint64_t seed)
    : cfg_(std::move(cfg)), requests_(requests_per_core), seed_(seed),
      aloneCache_(benchmarkSuite().size(), 0.0)
{}

std::vector<std::vector<TraceEntry>>
MixRunner::tracesForMix(const WorkloadMix &mix) const
{
    std::vector<std::vector<TraceEntry>> traces;
    const auto &suite = benchmarkSuite();
    for (uint32_t c = 0; c < mix.benchIdx.size(); ++c) {
        const auto &profile = suite[mix.benchIdx[c]];
        traces.push_back(generateTrace(profile, requests_, seed_,
                                       coreTraceOffset(seed_, c)));
    }
    return traces;
}

double
MixRunner::aloneIpc(uint32_t bench_idx)
{
    SVARD_ASSERT(bench_idx < aloneCache_.size(), "bench out of range");
    if (aloneCache_[bench_idx] > 0.0)
        return aloneCache_[bench_idx];
    const auto &profile = benchmarkSuite()[bench_idx];
    std::vector<std::vector<TraceEntry>> traces;
    traces.push_back(generateTrace(profile, requests_, seed_,
                                   coreTraceOffset(seed_, 0)));
    System sys(cfg_, std::move(traces), requests_, nullptr);
    const RunResult res = sys.run();
    aloneCache_[bench_idx] = std::max(res.ipc[0], 1e-9);
    return aloneCache_[bench_idx];
}

MixMetrics
computeMixMetrics(const RunResult &res, const WorkloadMix &mix,
                  const AloneIpcFn &alone_ipc)
{
    MixMetrics m;
    double harm_acc = 0.0;
    for (uint32_t c = 0; c < mix.benchIdx.size(); ++c) {
        const double alone =
            std::max(alone_ipc(mix.benchIdx[c]), 1e-9);
        const double shared = std::max(res.ipc[c], 1e-9);
        m.weightedSpeedup += shared / alone;
        harm_acc += alone / shared;
        m.maxSlowdown = std::max(m.maxSlowdown, alone / shared);
    }
    m.harmonicSpeedup =
        static_cast<double>(mix.benchIdx.size()) / harm_acc;
    return m;
}

double
adversarialBenignWs(
    const SimConfig &cfg, const std::vector<TraceEntry> &attack_trace,
    size_t requests_per_core, uint64_t trace_seed,
    const std::string &defense_name,
    std::shared_ptr<const core::ThresholdProvider> provider,
    uint64_t defense_seed, const AloneIpcFn &alone_ipc)
{
    // Core 0 is the attacker; the rest run the fixed benign mix.
    const WorkloadMix benign = adversarialBenignMix(cfg.cores);
    const auto &suite = benchmarkSuite();

    std::vector<std::vector<TraceEntry>> traces;
    traces.push_back(attack_trace);
    for (uint32_t c = 1; c < cfg.cores; ++c)
        traces.push_back(generateTrace(suite[benign.benchIdx[c - 1]],
                                       requests_per_core, trace_seed,
                                       coreTraceOffset(trace_seed, c)));

    System sys(cfg, std::move(traces), requests_per_core, defense_name,
               std::move(provider), defense_seed);
    const RunResult res = sys.run();

    double ws = 0.0;
    for (uint32_t c = 1; c < cfg.cores; ++c)
        ws += std::max(res.ipc[c], 1e-9) /
              std::max(alone_ipc(benign.benchIdx[c - 1]), 1e-9);
    return ws;
}

MixMetrics
MixRunner::runMix(
    const WorkloadMix &mix, const std::string &defense_name,
    std::shared_ptr<const core::ThresholdProvider> provider,
    RunResult *raw)
{
    System sys(cfg_, tracesForMix(mix), requests_, defense_name,
               std::move(provider), seed_);
    const RunResult res = sys.run();
    if (raw)
        *raw = res;
    return computeMixMetrics(
        res, mix, [this](uint32_t b) { return aloneIpc(b); });
}

MixMetrics
MixRunner::runMix(
    const WorkloadMix &mix, DefenseKind kind,
    std::shared_ptr<const core::ThresholdProvider> provider,
    RunResult *raw)
{
    return runMix(mix, defenseKindName(kind), std::move(provider), raw);
}

double
MixRunner::runAdversarial(
    const std::vector<TraceEntry> &attack_trace,
    const std::string &defense_name,
    std::shared_ptr<const core::ThresholdProvider> provider)
{
    return adversarialBenignWs(
        cfg_, attack_trace, requests_, seed_, defense_name,
        std::move(provider), seed_,
        [this](uint32_t b) { return aloneIpc(b); });
}

double
MixRunner::runAdversarial(
    const std::vector<TraceEntry> &attack_trace, DefenseKind kind,
    std::shared_ptr<const core::ThresholdProvider> provider)
{
    return runAdversarial(attack_trace, defenseKindName(kind),
                          std::move(provider));
}

} // namespace svard::sim
