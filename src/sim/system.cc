#include "sim/system.h"

#include <algorithm>

#include "common/log.h"
#include "defense/aqua.h"
#include "defense/blockhammer.h"
#include "defense/graphene.h"
#include "defense/hydra.h"
#include "defense/para.h"
#include "defense/rrs.h"

namespace svard::sim {

namespace {
constexpr dram::Tick kFar = std::numeric_limits<dram::Tick>::max() / 4;
/** Co-simulation quantum: bounded drift between cores and controller. */
constexpr dram::Tick kQuantum = 500 * dram::kPsPerNs;
} // anonymous namespace

System::System(const SimConfig &cfg,
               std::vector<std::vector<TraceEntry>> traces,
               size_t primary, defense::Defense *defense)
    : cfg_(cfg), defense_(defense)
{
    SVARD_ASSERT(!traces.empty(), "system needs traces");
    for (uint32_t c = 0; c < traces.size(); ++c)
        cores_.push_back(std::make_unique<CoreModel>(
            cfg_, c, std::move(traces[c]), primary));

    controller_ = std::make_unique<MemController>(
        cfg_, defense_, [this](const MemRequest &req, dram::Tick when) {
            cores_[req.core]->onReadComplete(req.token, when);
        });
}

RunResult
System::run()
{
    MopMapper mapper(cfg_);
    const dram::Tick hard_stop = 30000 * dram::kPsPerMs; // 30 s walltime
    auto all_done = [&] {
        for (const auto &core : cores_)
            if (!core->primaryDone())
                return false;
        return true;
    };

    while (!all_done() && controller_->now() < hard_stop) {
        const dram::Tick now = controller_->now();
        bool released = false;
        for (auto &core : cores_) {
            while (core->canRelease(now)) {
                // Backpressure: a full queue stalls the core briefly
                // (checked before release since enqueue is
                // irreversible for the core's state).
                if (controller_->readQueueFull() ||
                    controller_->writeQueueFull()) {
                    core->stallUntil(now + 20 * dram::kPsPerNs);
                    break;
                }
                uint64_t token = 0;
                const TraceEntry e = core->release(now, &token);
                MemRequest req;
                req.core = core->id();
                req.write = e.write;
                req.addr = mapper.map(e.address);
                req.arrive = now;
                req.token = token;
                const bool ok = controller_->enqueue(req);
                SVARD_ASSERT(ok, "enqueue failed after capacity check");
                released = true;
            }
        }
        if (released)
            continue;

        dram::Tick next_core = kFar;
        for (const auto &core : cores_)
            next_core = std::min(next_core, core->nextReleaseTime());
        dram::Tick until = std::min(next_core, now + kQuantum);
        if (until <= now)
            until = now + kQuantum;
        controller_->run(until);
        if (controller_->now() <= now) {
            // Defensive: guarantee forward progress.
            controller_->run(now + cfg_.timing.tCK);
            if (controller_->now() <= now)
                break;
        }
    }

    RunResult out;
    for (const auto &core : cores_)
        out.ipc.push_back(core->ipc());
    out.controller = controller_->stats();
    if (defense_)
        out.defense = defense_->stats();
    out.endTime = controller_->now();
    return out;
}

const char *
defenseKindName(DefenseKind k)
{
    switch (k) {
      case DefenseKind::None: return "None";
      case DefenseKind::Para: return "PARA";
      case DefenseKind::BlockHammer: return "BlockHammer";
      case DefenseKind::Hydra: return "Hydra";
      case DefenseKind::Aqua: return "AQUA";
      case DefenseKind::Rrs: return "RRS";
      case DefenseKind::Graphene: return "Graphene";
    }
    return "?";
}

std::unique_ptr<defense::Defense>
makeDefense(DefenseKind kind,
            std::shared_ptr<const core::ThresholdProvider> provider,
            uint64_t seed)
{
    switch (kind) {
      case DefenseKind::None:
        return nullptr;
      case DefenseKind::Para:
        return std::make_unique<defense::Para>(std::move(provider),
                                               seed);
      case DefenseKind::BlockHammer:
        return std::make_unique<defense::BlockHammer>(
            std::move(provider));
      case DefenseKind::Hydra:
        return std::make_unique<defense::Hydra>(std::move(provider));
      case DefenseKind::Aqua:
        return std::make_unique<defense::Aqua>(std::move(provider));
      case DefenseKind::Rrs:
        return std::make_unique<defense::Rrs>(std::move(provider),
                                              defense::Rrs::Params{},
                                              seed);
      case DefenseKind::Graphene:
        return std::make_unique<defense::Graphene>(std::move(provider));
    }
    return nullptr;
}

ExperimentRunner::ExperimentRunner(SimConfig cfg,
                                   size_t requests_per_core,
                                   uint64_t seed)
    : cfg_(std::move(cfg)), requests_(requests_per_core), seed_(seed),
      aloneCache_(benchmarkSuite().size(), 0.0)
{}

namespace {

/**
 * Per-core base address: disjoint 4 GiB regions plus a seeded row-
 * granular scatter. Without the scatter every core's footprint starts
 * at a multiple of 16K rows — a whole number of subarrays on every
 * module — and spatially-structured profiles (e.g. S0's subarray
 * parity) would alias pathologically with the placement, which no OS
 * page allocator produces.
 */
uint64_t
coreOffset(uint64_t seed, uint32_t core)
{
    const uint64_t row_scatter =
        hashSeed({seed, core, 0x0FF5E7ULL}) % 16384;
    return (core + 1) * (4ULL << 30) + row_scatter * (256 * 1024);
}

} // anonymous namespace

std::vector<std::vector<TraceEntry>>
ExperimentRunner::tracesForMix(const WorkloadMix &mix) const
{
    std::vector<std::vector<TraceEntry>> traces;
    const auto &suite = benchmarkSuite();
    for (uint32_t c = 0; c < mix.benchIdx.size(); ++c) {
        const auto &profile = suite[mix.benchIdx[c]];
        traces.push_back(generateTrace(profile, requests_, seed_,
                                       coreOffset(seed_, c)));
    }
    return traces;
}

double
ExperimentRunner::aloneIpc(uint32_t bench_idx)
{
    SVARD_ASSERT(bench_idx < aloneCache_.size(), "bench out of range");
    if (aloneCache_[bench_idx] > 0.0)
        return aloneCache_[bench_idx];
    const auto &profile = benchmarkSuite()[bench_idx];
    std::vector<std::vector<TraceEntry>> traces;
    traces.push_back(
        generateTrace(profile, requests_, seed_, coreOffset(seed_, 0)));
    System sys(cfg_, std::move(traces), requests_, nullptr);
    const RunResult res = sys.run();
    aloneCache_[bench_idx] = std::max(res.ipc[0], 1e-9);
    return aloneCache_[bench_idx];
}

MixMetrics
ExperimentRunner::runMix(
    const WorkloadMix &mix, DefenseKind kind,
    std::shared_ptr<const core::ThresholdProvider> provider,
    RunResult *raw)
{
    auto defense = makeDefense(kind, std::move(provider), seed_);
    System sys(cfg_, tracesForMix(mix), requests_, defense.get());
    const RunResult res = sys.run();
    if (raw)
        *raw = res;

    MixMetrics m;
    double harm_acc = 0.0;
    for (uint32_t c = 0; c < mix.benchIdx.size(); ++c) {
        const double alone = aloneIpc(mix.benchIdx[c]);
        const double shared = std::max(res.ipc[c], 1e-9);
        m.weightedSpeedup += shared / alone;
        harm_acc += alone / shared;
        m.maxSlowdown = std::max(m.maxSlowdown, alone / shared);
    }
    m.harmonicSpeedup =
        static_cast<double>(mix.benchIdx.size()) / harm_acc;
    return m;
}

double
ExperimentRunner::runAdversarial(
    const std::vector<TraceEntry> &attack_trace, DefenseKind kind,
    std::shared_ptr<const core::ThresholdProvider> provider)
{
    // Core 0 is the attacker; the rest run a fixed benign mix.
    WorkloadMix benign;
    const auto &suite = benchmarkSuite();
    for (uint32_t c = 1; c < cfg_.cores; ++c)
        benign.benchIdx.push_back(c % suite.size());

    std::vector<std::vector<TraceEntry>> traces;
    traces.push_back(attack_trace);
    for (uint32_t c = 1; c < cfg_.cores; ++c)
        traces.push_back(generateTrace(suite[benign.benchIdx[c - 1]],
                                       requests_, seed_,
                                       coreOffset(seed_, c)));

    auto defense = makeDefense(kind, std::move(provider), seed_);
    System sys(cfg_, std::move(traces), requests_, defense.get());
    const RunResult res = sys.run();

    double ws = 0.0;
    for (uint32_t c = 1; c < cfg_.cores; ++c) {
        const double alone = aloneIpc(benign.benchIdx[c - 1]);
        ws += std::max(res.ipc[c], 1e-9) / alone;
    }
    return ws;
}

} // namespace svard::sim
