#include "sim/core_model.h"

#include <algorithm>

#include "common/log.h"

namespace svard::sim {

namespace {
constexpr dram::Tick kFar = std::numeric_limits<dram::Tick>::max() / 4;
} // anonymous namespace

CoreModel::CoreModel(const SimConfig &cfg, uint32_t id,
                     std::vector<TraceEntry> trace, size_t primary)
    : cfg_(cfg), id_(id), trace_(std::move(trace)),
      primary_(std::min(primary, SIZE_MAX))
{
    SVARD_ASSERT(!trace_.empty(), "core needs a trace");
    primary_ = std::min(primary_, trace_.size());
    for (size_t i = 0; i < primary_; ++i) {
        primaryInsts_ += trace_[i].gap;
        if (!trace_[i].write)
            ++primaryReads_;
    }
}

bool
CoreModel::canRelease(dram::Tick now) const
{
    if (now < stallUntil_ || now < frontendReady_)
        return false;
    // Instruction-window constraint: the next entry cannot dispatch
    // while an outstanding read is more than `window` instructions
    // older.
    if (!outstanding_.empty()) {
        const uint64_t next_inst =
            instsDispatched_ + entryAt(nextIdx_).gap;
        // outstanding_ values are the cumulative instruction indices
        // of in-flight reads; map order is token order = age order.
        const uint64_t oldest = outstanding_.begin()->second;
        if (next_inst - oldest > cfg_.instrWindow)
            return false;
    }
    return true;
}

dram::Tick
CoreModel::nextReleaseTime() const
{
    if (!outstanding_.empty()) {
        const uint64_t next_inst =
            instsDispatched_ + entryAt(nextIdx_).gap;
        const uint64_t oldest = outstanding_.begin()->second;
        if (next_inst - oldest > cfg_.instrWindow)
            return kFar; // unblocked only by a completion
    }
    return std::max(stallUntil_, frontendReady_);
}

TraceEntry
CoreModel::release(dram::Tick now, uint64_t *token_out)
{
    const TraceEntry &e = entryAt(nextIdx_);
    instsDispatched_ += e.gap;
    // Dispatch cost of the gap's instructions at the issue width.
    const dram::Tick dispatch =
        static_cast<dram::Tick>(e.gap) * cfg_.cpuTick() /
        cfg_.issueWidth;
    frontendReady_ = std::max(frontendReady_, now) + dispatch;
    lastEventTime_ = std::max(lastEventTime_, frontendReady_);

    const uint64_t token = nextToken_++;
    if (!e.write)
        outstanding_[token] = instsDispatched_;
    if (token_out)
        *token_out = token;
    ++nextIdx_;

    if (nextIdx_ == primary_ && primaryReads_ == 0) {
        finishTime_ = frontendReady_;
    }
    return e;
}

void
CoreModel::onReadComplete(uint64_t token, dram::Tick when)
{
    auto it = outstanding_.find(token);
    if (it == outstanding_.end())
        return;
    const bool primary_read = it->second <= primaryInsts_;
    outstanding_.erase(it);
    lastEventTime_ = std::max(lastEventTime_, when);
    if (primary_read && primaryCompleted_ < primaryReads_) {
        ++primaryCompleted_;
        if (primaryCompleted_ == primaryReads_)
            finishTime_ = std::max(when, frontendReady_);
    }
}

void
CoreModel::stallUntil(dram::Tick t)
{
    stallUntil_ = std::max(stallUntil_, t);
}

bool
CoreModel::primaryDone() const
{
    return nextIdx_ >= primary_ && primaryCompleted_ >= primaryReads_;
}

double
CoreModel::ipc() const
{
    if (finishTime_ <= 0)
        return 0.0;
    const double cycles = static_cast<double>(finishTime_) /
                          static_cast<double>(cfg_.cpuTick());
    return static_cast<double>(primaryInsts_) / cycles;
}

} // namespace svard::sim
