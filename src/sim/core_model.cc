#include "sim/core_model.h"

#include "common/log.h"

namespace svard::sim {

CoreModel::CoreModel(const SimConfig &cfg, uint32_t id,
                     std::vector<TraceEntry> trace, size_t primary)
    : cfg_(cfg), id_(id), trace_(std::move(trace)),
      primary_(std::min(primary, SIZE_MAX))
{
    SVARD_ASSERT(!trace_.empty(), "core needs a trace");
    primary_ = std::min(primary_, trace_.size());
    outstanding_.reserve(256);
    for (size_t i = 0; i < primary_; ++i) {
        primaryInsts_ += trace_[i].gap;
        if (!trace_[i].write)
            ++primaryReads_;
    }
}

double
CoreModel::ipc() const
{
    if (finishTime_ <= 0)
        return 0.0;
    const double cycles = static_cast<double>(finishTime_) /
                          static_cast<double>(cfg_.cpuTick());
    return static_cast<double>(primaryInsts_) / cycles;
}

} // namespace svard::sim
