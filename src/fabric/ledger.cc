#include "fabric/ledger.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <stdexcept>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "common/log.h"
#include "fault_inject/fault_inject.h"
#include "obs/metrics.h"

namespace svard::fabric {

namespace {

int64_t
nowMs()
{
    timespec ts{};
    clock_gettime(CLOCK_REALTIME, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000 +
           ts.tv_nsec / 1000000;
}

/** RAII flock: every ledger transaction (append or replay) runs
 *  under the file's exclusive lock, so appends never interleave and
 *  replays always see a consistent prefix. */
class FileLock
{
  public:
    explicit FileLock(int fd)
        : fd_(fd)
    {
        while (::flock(fd_, LOCK_EX) != 0)
            if (errno != EINTR)
                throw std::runtime_error(
                    std::string("flock failed on work ledger: ") +
                    std::strerror(errno));
    }

    ~FileLock() { ::flock(fd_, LOCK_UN); }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    int fd_;
};

std::string
readAll(int fd)
{
    std::string buf;
    char chunk[1 << 16];
    ::lseek(fd, 0, SEEK_SET);
    for (ssize_t n; (n = ::read(fd, chunk, sizeof(chunk))) > 0;)
        buf.append(chunk, static_cast<size_t>(n));
    return buf;
}

void
appendLine(int fd, const std::string &line)
{
    // O_APPEND makes each write land atomically at EOF; lines are a
    // few dozen bytes, far below PIPE_BUF-style atomicity limits,
    // and we hold the flock anyway. Every caller sits behind a
    // faults::check point (ledger.claim / ledger.beat / ledger.done),
    // so crash coverage is already routed.
    // svard-lint: allow(raw-io-fault-points) callers are check points
    if (::write(fd, line.data(), line.size()) !=
        static_cast<ssize_t>(line.size()))
        throw std::runtime_error(
            std::string("write failed on work ledger: ") +
            std::strerror(errno));
}

/** Replay state of one range. */
struct RangeState
{
    uint64_t end = 0;
    std::string holder;
    int64_t lastMs = 0; ///< latest claim/beat by the current holder
    bool done = false;
};

struct Replay
{
    LedgerConfig header;
    bool hasHeader = false;
    std::map<uint64_t, RangeState> ranges;
    std::map<std::string, obs::FabricWorkerStats> workers;
    uint64_t reclaims = 0;
};

obs::FabricWorkerStats &
workerStats(Replay &r, const std::string &id)
{
    auto it = r.workers.find(id);
    if (it == r.workers.end()) {
        it = r.workers.emplace(id, obs::FabricWorkerStats{}).first;
        it->second.id = id;
    }
    return it->second;
}

Replay
replay(const std::string &text, const std::string &path)
{
    Replay r;
    size_t start = 0;
    while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos)
            break; // unterminated tail line (killed mid-append): skip
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty())
            continue;
        char word[64] = {0};
        char worker[128] = {0};
        unsigned long long a = 0, b = 0;
        long long ms = 0;
        if (!r.hasHeader) {
            unsigned long long fp = 0, cells = 0, chunk = 0,
                               lease = 0;
            if (std::sscanf(line.c_str(),
                            "%63s fingerprint=%llx cells=%llu "
                            "chunk=%llu lease_ms=%llu",
                            word, &fp, &cells, &chunk, &lease) != 5 ||
                line.compare(0, std::strlen(kLedgerSchema),
                             kLedgerSchema) != 0)
                throw std::runtime_error("work ledger \"" + path +
                                         "\" has an unrecognized "
                                         "header: " +
                                         line);
            r.header.fingerprint = fp;
            r.header.cells = cells;
            r.header.chunk = chunk;
            r.header.leaseMs = lease;
            r.hasHeader = true;
            continue;
        }
        if (std::sscanf(line.c_str(), "claim %llu %llu %127s %lld",
                        &a, &b, worker, &ms) == 4) {
            RangeState &st = r.ranges[a];
            if (st.done)
                continue; // a claim after done is a no-op
            obs::FabricWorkerStats &w = workerStats(r, worker);
            w.rangesClaimed++;
            if (!st.holder.empty() && st.holder != worker) {
                workerStats(r, st.holder).rangesLost++;
                w.rangesReclaimed++;
                r.reclaims++;
            }
            st.end = b;
            st.holder = worker;
            st.lastMs = ms;
        } else if (std::sscanf(line.c_str(), "beat %llu %127s %lld",
                               &a, worker, &ms) == 3) {
            auto it = r.ranges.find(a);
            if (it != r.ranges.end() && it->second.holder == worker)
                it->second.lastMs = ms;
        } else if (std::sscanf(line.c_str(), "done %llu %127s %lld",
                               &a, worker, &ms) == 3) {
            auto it = r.ranges.find(a);
            // Fenced completions (the range was reclaimed before the
            // old holder finished) do not count: the new holder owns
            // the range.
            if (it != r.ranges.end() &&
                it->second.holder == worker && !it->second.done) {
                it->second.done = true;
                workerStats(r, worker).cellsExecuted +=
                    it->second.end - a;
            }
        } else {
            warn("work ledger \"" + path +
                 "\": skipping unrecognized line: " + line);
        }
    }
    return r;
}

LedgerState
stateFromReplay(const Replay &r)
{
    LedgerState s;
    s.cells = r.header.cells;
    s.chunk = r.header.chunk;
    s.fingerprint = r.header.fingerprint;
    s.rangesTotal =
        r.header.chunk
            ? (r.header.cells + r.header.chunk - 1) / r.header.chunk
            : 0;
    for (const auto &[begin, st] : r.ranges)
        if (st.done)
            s.rangesDone++;
    s.reclaims = r.reclaims;
    for (const auto &[id, w] : r.workers)
        s.workers.push_back(w);
    return s;
}

std::string
claimLine(uint64_t begin, uint64_t end, const std::string &worker,
          int64_t ms)
{
    return "claim " + std::to_string(begin) + " " +
           std::to_string(end) + " " + worker + " " +
           std::to_string(ms) + "\n";
}

} // anonymous namespace

WorkLedger::WorkLedger(const LedgerConfig &cfg, std::string worker_id)
    : cfg_(cfg), workerId_(std::move(worker_id))
{
    if (workerId_.empty() ||
        workerId_.find_first_of(" \t\n") != std::string::npos)
        throw std::runtime_error(
            "fabric worker id must be non-empty and whitespace-free: "
            "\"" +
            workerId_ + "\"");
    if (cfg_.cells == 0 || cfg_.chunk == 0)
        throw std::runtime_error(
            "work ledger needs a non-empty grid and chunk");
    fd_ = ::open(cfg_.path.c_str(), O_RDWR | O_CREAT | O_APPEND,
                 0644);
    if (fd_ < 0)
        throw std::runtime_error("cannot open work ledger \"" +
                                 cfg_.path +
                                 "\": " + std::strerror(errno));
    FileLock lock(fd_);
    const std::string text = readAll(fd_);
    if (text.empty()) {
        char header[256];
        std::snprintf(header, sizeof(header),
                      "%s fingerprint=%" PRIx64 " cells=%" PRIu64
                      " chunk=%" PRIu64 " lease_ms=%" PRIu64 "\n",
                      kLedgerSchema, cfg_.fingerprint, cfg_.cells,
                      cfg_.chunk, cfg_.leaseMs);
        appendLine(fd_, header);
        return;
    }
    const Replay r = replay(text, cfg_.path);
    if (r.header.fingerprint != cfg_.fingerprint ||
        r.header.cells != cfg_.cells || r.header.chunk != cfg_.chunk ||
        r.header.leaseMs != cfg_.leaseMs)
        throw std::runtime_error(
            "work ledger \"" + cfg_.path +
            "\" was created for a different grid (spec edited? "
            "different chunk/lease?); delete it to restart the run");
}

WorkLedger::~WorkLedger()
{
    if (fd_ >= 0)
        ::close(fd_);
}

ClaimResult
WorkLedger::claimNext()
{
    static const obs::MetricId claims =
        obs::counter("fabric.claims");
    static const obs::MetricId reclaims =
        obs::counter("fabric.reclaims");
    MutexLock mu(mu_);
    FileLock lock(fd_);
    const Replay r = replay(readAll(fd_), cfg_.path);
    const int64_t now = nowMs();
    bool allDone = true;
    for (uint64_t begin = 0; begin < cfg_.cells;
         begin += cfg_.chunk) {
        const auto it = r.ranges.find(begin);
        const bool unclaimed = it == r.ranges.end();
        const bool expired =
            !unclaimed && !it->second.done &&
            now - it->second.lastMs >
                static_cast<int64_t>(cfg_.leaseMs);
        if (!unclaimed && !it->second.done)
            allDone = false;
        if (!unclaimed && !expired)
            continue;
        allDone = false;
        ClaimResult res;
        res.outcome = ClaimOutcome::Claimed;
        res.range = {begin,
                     std::min(begin + cfg_.chunk, cfg_.cells)};
        res.reclaimed = !unclaimed;
        appendLine(fd_, claimLine(res.range.begin, res.range.end,
                                  workerId_, now));
        held_[begin] = res.range;
        obs::add(claims);
        if (res.reclaimed) {
            obs::add(reclaims);
            inform("fabric: " + workerId_ + " reclaimed cells [" +
                   std::to_string(res.range.begin) + "," +
                   std::to_string(res.range.end) +
                   ") from expired lease of " + it->second.holder);
        }
        // Kill drills between claim and execution: the claim is
        // durable, the work never starts, the lease must expire.
        faults::check("ledger.claim");
        return res;
    }
    ClaimResult res;
    res.outcome =
        allDone ? ClaimOutcome::Complete : ClaimOutcome::Wait;
    return res;
}

bool
WorkLedger::heartbeat()
{
    // Stall drills: a heartbeat that sleeps past the lease lets
    // another worker reclaim mid-computation (fencing path).
    faults::check("ledger.beat");
    MutexLock mu(mu_);
    FileLock lock(fd_);
    const Replay r = replay(readAll(fd_), cfg_.path);
    const int64_t now = nowMs();
    bool keptAll = true;
    for (auto it = held_.begin(); it != held_.end();) {
        const auto st = r.ranges.find(it->first);
        if (st == r.ranges.end() ||
            st->second.holder != workerId_) {
            // Fenced: the lease expired and someone reclaimed it.
            warn("fabric: " + workerId_ + " lost cells [" +
                 std::to_string(it->second.begin) + "," +
                 std::to_string(it->second.end) +
                 ") to reclaim (lease expired mid-run)");
            it = held_.erase(it);
            keptAll = false;
            continue;
        }
        appendLine(fd_, "beat " + std::to_string(it->first) + " " +
                            workerId_ + " " + std::to_string(now) +
                            "\n");
        ++it;
    }
    return keptAll;
}

bool
WorkLedger::markDone(const CellRange &range)
{
    // Kill drills between computation and the done record: the cells
    // are checkpointed in the worker's shard, the range looks
    // unfinished, and a survivor must reclaim it after lease expiry
    // (skipping the donated cells by (seed, fingerprint)).
    faults::check("ledger.done");
    MutexLock mu(mu_);
    FileLock lock(fd_);
    const Replay r = replay(readAll(fd_), cfg_.path);
    held_.erase(range.begin);
    const auto st = r.ranges.find(range.begin);
    if (st == r.ranges.end() || st->second.holder != workerId_)
        return false; // fenced; the new holder owns completion
    appendLine(fd_, "done " + std::to_string(range.begin) + " " +
                        workerId_ + " " + std::to_string(nowMs()) +
                        "\n");
    return true;
}

LedgerState
WorkLedger::state() const
{
    MutexLock mu(mu_);
    FileLock lock(fd_);
    return stateFromReplay(replay(readAll(fd_), cfg_.path));
}

LedgerState
WorkLedger::read(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw std::runtime_error("cannot read work ledger \"" + path +
                                 "\": " + std::strerror(errno));
    LedgerState s;
    try {
        FileLock lock(fd);
        s = stateFromReplay(replay(readAll(fd), path));
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    return s;
}

} // namespace svard::fabric
