/**
 * @file
 * Multi-process sweep fabric: N independent worker processes execute
 * one SweepSpec grid cooperatively, surviving crashes, and a
 * coordinator merges their output into the byte-identical table a
 * single-process run would have produced.
 *
 * Roles:
 *
 *  - runWorker(): attach to the work ledger (fabric/ledger.h), claim
 *    cell ranges, execute them into a private cache shard
 *    (`<ledger>.shard-<id>.svc`), heartbeat the leases, mark ranges
 *    done. A killed worker's leases expire and its ranges are
 *    reclaimed by survivors; its shard keeps every cell it finished,
 *    so reclaiming workers skip those cells (donor-shard scan) and a
 *    kill never executes a cell twice.
 *
 *  - runCoordinator(): participate in the claim race itself (so the
 *    grid finishes even if every other worker dies), then merge all
 *    shards into the spec's cache and run the sweep normally — every
 *    cell resolves from cache and the sink/manifest emission is
 *    byte-identical to a single-process run, with per-worker
 *    executed/reclaimed splits recorded in the manifest.
 *
 * Determinism: cell seeds and fingerprints derive from grid
 * coordinates alone (engine/runner.h), so any worker computes any
 * cell identically and shards merge by (seed, fingerprint) without
 * coordination beyond the ledger.
 */
#ifndef SVARD_FABRIC_FABRIC_H
#define SVARD_FABRIC_FABRIC_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/sweep.h"
#include "fabric/ledger.h"

namespace svard::fabric {

/** How a process joins a fabric run. */
struct FabricOptions
{
    std::string ledgerPath; ///< shared work ledger file
    std::string workerId;   ///< unique per process (e.g. "w0", host:pid)
    uint64_t chunk = 8;     ///< cells per claim range
    uint64_t leaseMs = 10000; ///< claim expiry without a heartbeat
    uint64_t pollMs = 200;  ///< wait between claims when all leased
    /** Optional graceful stop (signal handlers set it): finish the
     *  in-flight cell, abandon held ranges (their leases expire and
     *  other workers reclaim them), return with interrupted set. */
    std::atomic<bool> *stopFlag = nullptr;
};

/** What one worker process did (its exit summary; the authoritative
 *  per-worker accounting lives in the ledger replay). */
struct WorkerReport
{
    uint64_t rangesClaimed = 0;
    uint64_t rangesReclaimed = 0; ///< taken over from expired leases
    uint64_t cellsExecuted = 0;   ///< actually simulated here
    uint64_t cellsSkipped = 0;    ///< shard/donor hits inside claims
    bool fenced = false; ///< lost a range to reclaim while computing
    bool interrupted = false; ///< stopFlag ended the claim loop
};

struct CoordinatorResult
{
    std::vector<engine::CellResult> results;
    LedgerState ledger; ///< final replay (per-worker splits)
    bool interrupted = false;
};

/** A worker's private cache shard: `<ledger>.shard-<id>.svc`. */
std::string shardPath(const std::string &ledger_path,
                      const std::string &worker_id);

/** Every existing shard of a ledger (for merge / donor scans). */
std::vector<std::string> shardFiles(const std::string &ledger_path);

/**
 * Run one worker process to completion: claim ranges from the ledger
 * until the grid is done (or stopFlag). The spec's sink and manifest
 * are ignored — workers only checkpoint into their shard; emission is
 * the coordinator's job.
 * @throws std::runtime_error when the shard cache or ledger cannot
 *         be opened (a worker that cannot checkpoint would lose all
 *         its work on the first crash) or when the ledger belongs to
 *         a different spec edition.
 */
WorkerReport runWorker(engine::SweepSpec spec,
                       const FabricOptions &opt);

/**
 * Finish the grid and emit. Participates in the claim race (so it
 * doubles as the last-resort worker), merges every shard into the
 * spec's cache — falling back to `<ledger>.merged.svc`, and to
 * in-process recomputation when even that is unwritable — then runs
 * the sweep: all cells resolve from cache and the spec's sink /
 * manifest output is byte-identical to a single-process run.
 */
CoordinatorResult runCoordinator(engine::SweepSpec spec,
                                 const FabricOptions &opt);

} // namespace svard::fabric

#endif // SVARD_FABRIC_FABRIC_H
