#include "fabric/fabric.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include <dirent.h>

#include "common/log.h"
#include "engine/runner.h"
#include "io/result_sink.h"
#include "io/sweep_cache.h"
#include "obs/metrics.h"

namespace svard::fabric {

namespace {

std::pair<std::string, std::string>
splitDir(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return {".", path};
    return {path.substr(0, slash), path.substr(slash + 1)};
}

/** (seed, fingerprint) keys checkpointed in shards other than
 *  `own_shard` — the cells a reclaiming worker must not redo. */
std::set<std::pair<uint64_t, uint64_t>>
donorKeys(const std::string &ledger_path, const std::string &own_shard)
{
    std::set<std::pair<uint64_t, uint64_t>> keys;
    for (const std::string &shard : shardFiles(ledger_path)) {
        if (shard == own_shard)
            continue;
        for (const engine::CellResult &row :
             io::readBinaryResults(shard))
            keys.emplace(row.seed, row.fingerprint);
    }
    return keys;
}

/** Periodic lease renewal on its own thread; sets `fenced` when any
 *  held range was reclaimed out from under us. */
class HeartbeatThread
{
  public:
    HeartbeatThread(WorkLedger &ledger, std::atomic<bool> &fenced)
        : ledger_(ledger), fenced_(fenced)
    {
        // A third of the lease keeps two beats of slack before
        // expiry even if one lands late.
        const auto period = std::chrono::milliseconds(
            std::max<uint64_t>(1, ledger.leaseMs() / 3));
        thread_ = std::thread([this, period] {
            UniqueLock lk(mu_);
            while (!stop_) {
                // Spurious wakes re-wait only the remaining slice, so
                // beats keep their cadence.
                const auto deadline =
                    std::chrono::steady_clock::now() + period;
                while (!stop_ &&
                       cv_.wait_until(lk, deadline) !=
                           std::cv_status::timeout) {
                }
                if (stop_)
                    break;
                try {
                    if (!ledger_.heartbeat())
                        fenced_.store(true);
                } catch (const std::exception &e) {
                    // A failed beat is survivable (the next one may
                    // land); a dead ledger surfaces via claimNext.
                    warn(std::string("fabric heartbeat failed: ") +
                         e.what());
                }
            }
        });
    }

    ~HeartbeatThread()
    {
        {
            MutexLock lk(mu_);
            stop_ = true;
        }
        cv_.notify_one();
        thread_.join();
    }

  private:
    WorkLedger &ledger_;
    std::atomic<bool> &fenced_;
    Mutex mu_;
    CondVar cv_;
    bool stop_ SVARD_GUARDED_BY(mu_) = false;
    std::thread thread_;
};

bool
stopRequested(const FabricOptions &opt)
{
    return opt.stopFlag &&
           opt.stopFlag->load(std::memory_order_relaxed);
}

} // anonymous namespace

std::string
shardPath(const std::string &ledger_path,
          const std::string &worker_id)
{
    return ledger_path + ".shard-" + worker_id + ".svc";
}

std::vector<std::string>
shardFiles(const std::string &ledger_path)
{
    const auto [dir, base] = splitDir(ledger_path);
    const std::string prefix = base + ".shard-";
    const std::string suffix = ".svc";
    std::vector<std::string> out;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return out;
    while (dirent *ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() > prefix.size() + suffix.size() &&
            name.compare(0, prefix.size(), prefix) == 0 &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            out.push_back(dir + "/" + name);
    }
    ::closedir(d);
    std::sort(out.begin(), out.end());
    return out;
}

WorkerReport
runWorker(engine::SweepSpec spec, const FabricOptions &opt)
{
    static const obs::MetricId ranges_claimed =
        obs::counter("fabric.ranges_claimed");
    static const obs::MetricId ranges_reclaimed =
        obs::counter("fabric.ranges_reclaimed");
    static const obs::MetricId donor_skips =
        obs::counter("fabric.donor_skips");

    // Workers never emit: their entire output is the shard. The
    // shard open is NOT openOrNull — a worker that cannot checkpoint
    // would silently lose everything it computed on the first crash,
    // which defeats the fabric's whole point.
    spec.sink.reset();
    spec.manifestPath.clear();
    const std::string shard = shardPath(opt.ledgerPath, opt.workerId);
    spec.cache = std::make_shared<io::SweepCache>(shard);
    spec.progressLabel = "fabric-" + opt.workerId;

    engine::ExperimentRunner runner(std::move(spec));
    const size_t cells = runner.prepareCells();

    LedgerConfig cfg;
    cfg.path = opt.ledgerPath;
    cfg.fingerprint = runner.specFingerprint();
    cfg.cells = cells;
    cfg.chunk = opt.chunk;
    cfg.leaseMs = opt.leaseMs;
    WorkLedger ledger(cfg, opt.workerId);

    std::atomic<bool> fenced{false};
    HeartbeatThread beats(ledger, fenced);

    WorkerReport rep;
    while (!ledger.state().complete()) {
        if (stopRequested(opt)) {
            rep.interrupted = true;
            break;
        }
        const ClaimResult claim = ledger.claimNext();
        if (claim.outcome == ClaimOutcome::Complete)
            break;
        if (claim.outcome == ClaimOutcome::Wait) {
            // Everything left is leased to live workers; one of them
            // may still die, so poll rather than exit.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opt.pollMs));
            continue;
        }
        rep.rangesClaimed++;
        obs::add(ranges_claimed);
        // Baselines are built lazily so a worker that never wins a
        // claim (grid finished before it attached) simulates nothing.
        runner.ensureBaselines();

        std::set<std::pair<uint64_t, uint64_t>> donated;
        if (claim.reclaimed) {
            rep.rangesReclaimed++;
            obs::add(ranges_reclaimed);
            // The dead holder's shard keeps every cell it finished;
            // skip those. The coordinator reads all shards, so the
            // skipped cells need no copying here.
            donated = donorKeys(opt.ledgerPath, shard);
        }

        bool abandoned = false;
        const uint64_t end =
            std::min<uint64_t>(claim.range.end, cells);
        for (uint64_t i = claim.range.begin; i < end; ++i) {
            if (stopRequested(opt)) {
                // Finish nothing more; the unfinished range's lease
                // expires and a survivor reclaims it.
                rep.interrupted = true;
                abandoned = true;
                break;
            }
            const engine::CellResult &meta =
                runner.resolvedCells()[i];
            if (claim.reclaimed &&
                donated.count({meta.seed, meta.fingerprint})) {
                rep.cellsSkipped++;
                obs::add(donor_skips);
                continue;
            }
            if (runner.executeCell(i))
                rep.cellsExecuted++;
            else
                rep.cellsSkipped++; // own-shard hit (restart resume)
        }
        if (abandoned)
            break;
        if (!ledger.markDone(claim.range))
            rep.fenced = true; // reclaimed mid-compute; new holder owns it
    }
    if (fenced.load())
        rep.fenced = true;
    return rep;
}

CoordinatorResult
runCoordinator(engine::SweepSpec spec, const FabricOptions &opt)
{
    static const obs::MetricId merged_cells =
        obs::counter("fabric.merged_cells");

    // Phase 1 — work: join the claim race like any worker. If every
    // other process dies, their leases expire here and the
    // coordinator finishes the grid alone; the fabric cannot
    // deadlock on dead workers.
    WorkerReport own = runWorker(spec, opt);

    // Phase 2 — merge: fold every shard (dead workers' included)
    // into the main cache. Baseline records are duplicated across
    // shards by design; lookup-before-store keeps the merged cache
    // single-copy.
    if (!spec.cache)
        spec.cache = io::SweepCache::openOrNull(opt.ledgerPath +
                                                ".merged.svc");
    if (spec.cache) {
        size_t merged = 0;
        for (const std::string &shard : shardFiles(opt.ledgerPath)) {
            for (const engine::CellResult &row :
                 io::readBinaryResults(shard)) {
                engine::CellResult have;
                if (!spec.cache->lookup(row.seed, row.fingerprint,
                                        &have)) {
                    spec.cache->store(row);
                    ++merged;
                }
            }
        }
        obs::add(merged_cells, merged);
        inform("fabric: merged " + std::to_string(merged) +
               " records from " +
               std::to_string(shardFiles(opt.ledgerPath).size()) +
               " shards into " + spec.cache->path());
    } else {
        warn("fabric coordinator has no usable cache; recomputing "
             "the grid in-process");
    }

    // Phase 3 — emit: a plain run() resolves every cell from the
    // merged cache and streams the sink in final enumeration order,
    // so the output is byte-identical to a single-process sweep.
    CoordinatorResult out;
    out.ledger = WorkLedger::read(opt.ledgerPath);
    spec.stopFlag = opt.stopFlag ? opt.stopFlag : spec.stopFlag;
    engine::ExperimentRunner runner(std::move(spec));
    runner.setFabricWorkers(out.ledger.workers);
    out.results = runner.run();
    out.interrupted = runner.interrupted() || own.interrupted;
    return out;
}

} // namespace svard::fabric
