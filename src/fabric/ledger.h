/**
 * @file
 * File-backed work ledger: the coordination substrate of the
 * multi-process sweep fabric. N worker processes share one grid by
 * claiming fixed-size cell ranges through an append-only text file;
 * crashed workers' claims expire and are reclaimed. No server, no
 * sockets — any filesystem with POSIX advisory locks (one box, or a
 * cluster with a shared POSIX mount) is a fleet.
 *
 * On-disk format (line-oriented, append-only):
 *
 *   svard-ledger-v1 fingerprint=<hex> cells=<N> chunk=<C> lease_ms=<L>
 *   claim <begin> <end> <worker> <ms>
 *   beat <begin> <worker> <ms>
 *   done <begin> <worker> <ms>
 *
 * The header pins the grid identity: every attaching worker must
 * present the same spec fingerprint and cell count, so two editions
 * of a spec can never interleave work in one ledger. Ranges are the
 * fixed chunk grid [0,C), [C,2C), ... — a range is identified by its
 * begin index. State is replayed by scanning the file under the same
 * flock(2) exclusive lock that guards appends, so every transaction
 * sees a consistent snapshot:
 *
 *  - unclaimed range            -> claimable
 *  - claimed, done              -> finished
 *  - claimed, fresh beat        -> leased (hands off)
 *  - claimed, lease expired     -> reclaimable (the holder is
 *                                  presumed dead; a later claim
 *                                  record supersedes the old one)
 *
 * Fencing: a worker that stalls past its lease can lose a range to
 * reclaim while still computing it. heartbeat() detects the
 * supersession and reports it, and markDone() refuses to complete a
 * range the worker no longer holds — the work itself is harmless to
 * repeat (cells are deterministic and the coordinator merges by
 * (seed, fingerprint)), but the ledger stays single-writer-per-range.
 *
 * Timestamps are CLOCK_REALTIME milliseconds: comparable across
 * processes and reboots (leases must expire even if the holder's
 * machine rebooted), at the cost of sensitivity to clock jumps —
 * acceptable for leases measured in seconds.
 */
#ifndef SVARD_FABRIC_LEDGER_H
#define SVARD_FABRIC_LEDGER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/manifest.h"

namespace svard::fabric {

constexpr const char *kLedgerSchema = "svard-ledger-v1";

/** Grid identity + lease policy; all attaching workers must agree. */
struct LedgerConfig
{
    std::string path;
    uint64_t fingerprint = 0; ///< the sweep's spec fingerprint
    uint64_t cells = 0;       ///< grid size the ledger covers
    uint64_t chunk = 8;       ///< cells per claim range
    uint64_t leaseMs = 10000; ///< claim expiry without a heartbeat
};

/** Half-open cell index range [begin, end). */
struct CellRange
{
    uint64_t begin = 0;
    uint64_t end = 0;

    uint64_t size() const { return end - begin; }
};

enum class ClaimOutcome
{
    Claimed, ///< a range was claimed; execute it
    Wait,    ///< all remaining ranges are leased to live workers
    Complete ///< every range is done
};

struct ClaimResult
{
    ClaimOutcome outcome = ClaimOutcome::Wait;
    CellRange range;
    /** The range had a previous (expired) holder: its cells may be
     *  partially checkpointed in that worker's shard. */
    bool reclaimed = false;
};

/** Whole-ledger replay summary (coordinator / manifests / tests). */
struct LedgerState
{
    uint64_t cells = 0;
    uint64_t chunk = 0;
    uint64_t fingerprint = 0;
    uint64_t rangesTotal = 0;
    uint64_t rangesDone = 0;
    uint64_t reclaims = 0; ///< claim records superseding a live claim
    std::vector<obs::FabricWorkerStats> workers; ///< sorted by id
    bool complete() const { return rangesDone == rangesTotal; }
};

class WorkLedger
{
  public:
    /**
     * Create-or-attach. An absent/empty file is initialized with the
     * config's header; an existing one must match fingerprint, cell
     * count, chunk, and lease (mismatch throws std::runtime_error —
     * mixing grid editions in one ledger corrupts the work split).
     */
    WorkLedger(const LedgerConfig &cfg, std::string worker_id);
    ~WorkLedger();

    WorkLedger(const WorkLedger &) = delete;
    WorkLedger &operator=(const WorkLedger &) = delete;

    /** Claim the lowest unclaimed-or-expired range (one flock
     *  transaction). */
    ClaimResult claimNext();

    /**
     * Re-lease every range this worker holds. Returns false when any
     * held range was reclaimed by another worker (fencing): the
     * caller must treat those ranges as lost — keep computing if it
     * likes, but the new holder owns completion.
     */
    bool heartbeat();

    /** Record completion of a held range. Returns false (without
     *  writing) when the range was reclaimed from this worker. */
    bool markDone(const CellRange &range);

    /** Replay the ledger into a summary (one flock transaction). */
    LedgerState state() const;

    const std::string &workerId() const { return workerId_; }
    uint64_t leaseMs() const { return cfg_.leaseMs; }
    uint64_t chunk() const { return cfg_.chunk; }

    /** Replay a ledger without attaching as a worker. */
    static LedgerState read(const std::string &path);

  private:
    LedgerConfig cfg_;
    std::string workerId_;
    int fd_ = -1;
    /** Serializes this process's transactions: flock(2) excludes
     *  other processes but is a no-op between threads sharing one
     *  open file description (the heartbeat thread and the claim
     *  loop), so a plain mutex does intra-process duty. */
    mutable Mutex mu_;
    /** Ranges this worker believes it holds (begin -> range). */
    std::map<uint64_t, CellRange> held_ SVARD_GUARDED_BY(mu_);
};

} // namespace svard::fabric

#endif // SVARD_FABRIC_LEDGER_H
