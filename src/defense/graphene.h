/**
 * @file
 * Graphene-style exact counter defense (Park et al., MICRO 2020),
 * idealized: per-row activation counts per refresh window (we model
 * the Misra-Gries table as large enough to be exact, which Graphene's
 * sizing guarantees for the tracked threshold); a row crossing half
 * its budget triggers neighbor refreshes. Included as the extension /
 * ablation reference: a defense whose only overhead is the preventive
 * refreshes themselves.
 */
#ifndef SVARD_DEFENSE_GRAPHENE_H
#define SVARD_DEFENSE_GRAPHENE_H

#include "common/flat_table.h"
#include "defense/defense.h"

namespace svard::defense {

class Graphene : public Defense
{
  public:
    struct Params
    {
        double refreshFraction = 0.5;
        dram::Tick refreshWindow = 64LL * 1000 * 1000 * 1000;
    };

    explicit Graphene(
        std::shared_ptr<const core::ThresholdProvider> thr);
    Graphene(std::shared_ptr<const core::ThresholdProvider> thr,
             Params params);

    const char *name() const override { return "Graphene"; }

    void onActivate(uint32_t bank, uint32_t row, dram::Tick now,
                    std::vector<PreventiveAction> &out) override;

    void onEpochEnd(dram::Tick now) override;

    void
    tableStats(uint64_t *entries, uint64_t *rehashes) const override
    {
        *entries = counts_.size();
        *rehashes = counts_.rehashes();
    }

  private:
    uint64_t
    key(uint32_t bank, uint32_t row) const
    {
        return (static_cast<uint64_t>(bank) << 32) | row;
    }

    Params params_;
    /** Per-(bank,row) ACT counts; generation-cleared at epoch end. */
    FlatTable<uint32_t> counts_;
};

} // namespace svard::defense

#endif // SVARD_DEFENSE_GRAPHENE_H
