/**
 * @file
 * BlockHammer (Yağlıkçı et al., HPCA 2021): tracks activation rates in
 * a pair of time-interleaved counting Bloom filters (RowBlocker) and
 * throttles activations to blacklisted rows so no row can reach its
 * HC_first threshold within a refresh window.
 *
 * Svärd integration: the blacklist threshold and throttle rate are
 * derived per aggressor from its neighbors' thresholds, so rows whose
 * victims are strong are throttled later and more gently.
 */
#ifndef SVARD_DEFENSE_BLOCKHAMMER_H
#define SVARD_DEFENSE_BLOCKHAMMER_H

#include <vector>

#include "common/flat_table.h"
#include "defense/defense.h"

namespace svard::defense {

/** Counting Bloom filter with k hash functions over m counters. */
class CountingBloomFilter
{
  public:
    /** Upper bound on k, sized for stack index buffers. */
    static constexpr int kMaxHashes = 8;

    CountingBloomFilter(size_t counters, int hashes, uint64_t seed);

    /** Increment; returns the new (min-) estimate for the key. */
    uint32_t insert(uint64_t key);

    /** Min-counter estimate (never undercounts a key's true count). */
    uint32_t estimate(uint64_t key) const;

    /**
     * All k counter indices of `key` in one lane-parallel hash pass
     * (simd::hashSeedTailBatch — the per-hash fold over the key is
     * identical math, batched over the hash-function lane). `out` must
     * hold kMaxHashes entries. Lets a caller that both estimates and
     * inserts the same key reuse one index computation.
     */
    void indicesOf(uint64_t key, size_t *out) const;

    /** insert() with indices already computed by indicesOf(key). */
    uint32_t insertAt(const size_t *idx);

    /** estimate() with indices already computed by indicesOf(key). */
    uint32_t estimateAt(const size_t *idx) const;

    void clear();

  private:
    std::vector<uint32_t> counters_;
    int hashes_;
    uint64_t seed_;
};

class BlockHammer : public Defense
{
  public:
    struct Params
    {
        size_t cbfCounters = 1024;
        int cbfHashes = 3;
        /** Fraction of the threshold at which a row is blacklisted. */
        double blacklistFraction = 0.5;
        dram::Tick refreshWindow = 64LL * 1000 * 1000 * 1000; // 64 ms
    };

    explicit BlockHammer(
        std::shared_ptr<const core::ThresholdProvider> thr);
    BlockHammer(std::shared_ptr<const core::ThresholdProvider> thr,
                Params params);

    const char *name() const override { return "BlockHammer"; }

    void onActivate(uint32_t bank, uint32_t row, dram::Tick now,
                    std::vector<PreventiveAction> &out) override;

    void onEpochEnd(dram::Tick now) override;

    void
    tableStats(uint64_t *entries, uint64_t *rehashes) const override
    {
        *entries = nextAllowed_.size();
        *rehashes = nextAllowed_.rehashes();
    }

    /** Whether a row is currently blacklisted (tests/diagnostics). */
    bool isBlacklisted(uint32_t bank, uint32_t row) const;

  private:
    uint64_t
    key(uint32_t bank, uint32_t row) const
    {
        return (static_cast<uint64_t>(bank) << 32) | row;
    }

    Params params_;
    // Time-interleaved filter pair: one active, one draining, swapped
    // every half refresh window so stale counts expire.
    CountingBloomFilter cbf_[2];
    int active_ = 0;
    dram::Tick lastSwap_ = 0;
    // Minimum legal next-activation time for throttled rows;
    // generation-cleared at filter swaps and epoch ends.
    FlatTable<dram::Tick> nextAllowed_;
};

} // namespace svard::defense

#endif // SVARD_DEFENSE_BLOCKHAMMER_H
