#include "defense/blockhammer.h"

#include <algorithm>

#include "common/log.h"
#include "common/simd.h"

namespace svard::defense {

CountingBloomFilter::CountingBloomFilter(size_t counters, int hashes,
                                         uint64_t seed)
    : counters_(counters, 0), hashes_(hashes), seed_(seed)
{
    SVARD_ASSERT(hashes >= 1 && hashes <= kMaxHashes,
                 "CBF hash count outside [1, kMaxHashes]");
}

void
CountingBloomFilter::indicesOf(uint64_t key, size_t *out) const
{
    // index(key, h) = hashSeed({seed, h, key}) % m for h in [0, k):
    // exactly the salt/tail lane shape of hashSeedTailBatch. The
    // modulo stays scalar (m is not a power of two).
    uint64_t hashes[kMaxHashes];
    simd::hashSeedTailBatch(seed_, key, hashes,
                            static_cast<size_t>(hashes_));
    for (int h = 0; h < hashes_; ++h)
        out[h] = static_cast<size_t>(hashes[h] % counters_.size());
}

uint32_t
CountingBloomFilter::insertAt(const size_t *idx)
{
    uint32_t est = UINT32_MAX;
    for (int h = 0; h < hashes_; ++h)
        est = std::min(est, ++counters_[idx[h]]);
    return est;
}

uint32_t
CountingBloomFilter::estimateAt(const size_t *idx) const
{
    uint32_t est = UINT32_MAX;
    for (int h = 0; h < hashes_; ++h)
        est = std::min(est, counters_[idx[h]]);
    return est;
}

uint32_t
CountingBloomFilter::insert(uint64_t key)
{
    size_t idx[kMaxHashes];
    indicesOf(key, idx);
    return insertAt(idx);
}

uint32_t
CountingBloomFilter::estimate(uint64_t key) const
{
    size_t idx[kMaxHashes];
    indicesOf(key, idx);
    return estimateAt(idx);
}

void
CountingBloomFilter::clear()
{
    std::fill(counters_.begin(), counters_.end(), 0);
}

BlockHammer::BlockHammer(
    std::shared_ptr<const core::ThresholdProvider> thr)
    : BlockHammer(std::move(thr), Params{})
{}

BlockHammer::BlockHammer(
    std::shared_ptr<const core::ThresholdProvider> thr, Params params)
    : Defense(std::move(thr)), params_(params),
      cbf_{{params.cbfCounters, params.cbfHashes, 0xB10C1},
           {params.cbfCounters, params.cbfHashes, 0xB10C2}}
{}

void
BlockHammer::onActivate(uint32_t bank, uint32_t row, dram::Tick now,
                        std::vector<PreventiveAction> &out)
{
    ++stats_.activationsObserved;

    // Swap the filter pair every half refresh window (RowBlocker's
    // time-interleaving): counts older than a full window expire.
    const dram::Tick half = params_.refreshWindow / 2;
    if (now - lastSwap_ >= half) {
        active_ ^= 1;
        cbf_[active_].clear();
        lastSwap_ = now;
        nextAllowed_.clear();
    }

    const uint64_t k = key(bank, row);
    const double budget = aggressorBudget(bank, row);
    const double blacklist_at = params_.blacklistFraction * budget;
    // One lane-parallel index computation serves both the estimate
    // and the later insert into the active filter (same key, same
    // seed, same indices); only the draining filter hashes again.
    size_t idx_active[CountingBloomFilter::kMaxHashes];
    cbf_[active_].indicesOf(k, idx_active);
    const uint32_t estimate = cbf_[active_].estimateAt(idx_active);

    if (static_cast<double>(estimate) + 1.0 >= blacklist_at) {
        // Blacklisted (or about to be): admit at most at the rate
        // that spreads the remaining budget over the rest of the
        // window. A denied attempt is throttled *without* counting —
        // the activation has not happened yet.
        const dram::Tick *at = nextAllowed_.find(k);
        const dram::Tick earliest = at == nullptr ? now : *at;
        if (earliest > now) {
            out.push_back({PreventiveAction::Kind::Throttle, bank, row,
                           0, earliest - now});
            ++stats_.throttleEvents;
            stats_.throttleDelayTotal += earliest - now;
            return;
        }
        const double remaining =
            std::max(budget - static_cast<double>(estimate), 1.0);
        const dram::Tick window_left = std::max<dram::Tick>(
            params_.refreshWindow - (now - lastSwap_), 1);
        const dram::Tick min_interval = static_cast<dram::Tick>(
            static_cast<double>(window_left) / remaining);
        nextAllowed_.refOrInsert(k) = now + min_interval;
    }
    cbf_[active_].insertAt(idx_active);
    cbf_[active_ ^ 1].insert(k);
}

void
BlockHammer::onEpochEnd(dram::Tick now)
{
    cbf_[0].clear();
    cbf_[1].clear();
    nextAllowed_.clear();
    lastSwap_ = now;
}

bool
BlockHammer::isBlacklisted(uint32_t bank, uint32_t row) const
{
    const double budget = aggressorBudget(bank, row);
    return cbf_[active_].estimate(key(bank, row)) >=
           params_.blacklistFraction * budget;
}

} // namespace svard::defense
