#include "defense/aqua.h"

namespace svard::defense {

Aqua::Aqua(std::shared_ptr<const core::ThresholdProvider> thr)
    : Aqua(std::move(thr), Params{})
{}

Aqua::Aqua(std::shared_ptr<const core::ThresholdProvider> thr,
           Params params)
    : Defense(std::move(thr)), params_(params)
{}

void
Aqua::onActivate(uint32_t bank, uint32_t row, dram::Tick /* now */,
                 std::vector<PreventiveAction> &out)
{
    ++stats_.activationsObserved;
    const double budget = aggressorBudget(bank, row);
    uint32_t &count = counts_.refOrInsert(key(bank, row));
    if (static_cast<double>(++count) <
        params_.migrateFraction * budget)
        return;

    // Quarantine: the aggressor's content moves to the reserved
    // region at the top of the bank (recycled round-robin), after
    // which its old neighbors stop being disturbed by it.
    const uint32_t rows = threshold_->rowsPerBank();
    const uint32_t q_rows = std::max<uint32_t>(
        1, static_cast<uint32_t>(params_.quarantineFraction * rows));
    if (bank >= nextQuarantine_.size())
        nextQuarantine_.resize(bank + 1, 0);
    uint32_t &cursor = nextQuarantine_[bank];
    const uint32_t dest = rows - q_rows + (cursor % q_rows);
    ++cursor;
    out.push_back({PreventiveAction::Kind::MigrateRow, bank, row, dest,
                   0});
    ++stats_.migrations;
    count = 0;
}

void
Aqua::onEpochEnd(dram::Tick /* now */)
{
    counts_.clear();
}

} // namespace svard::defense
