#include "defense/graphene.h"

namespace svard::defense {

Graphene::Graphene(std::shared_ptr<const core::ThresholdProvider> thr)
    : Graphene(std::move(thr), Params{})
{}

Graphene::Graphene(std::shared_ptr<const core::ThresholdProvider> thr,
                   Params params)
    : Defense(std::move(thr)), params_(params)
{}

void
Graphene::onActivate(uint32_t bank, uint32_t row, dram::Tick /* now */,
                     std::vector<PreventiveAction> &out)
{
    ++stats_.activationsObserved;
    const double budget = aggressorBudget(bank, row);
    uint32_t &count = counts_.refOrInsert(key(bank, row));
    if (static_cast<double>(++count) <
        params_.refreshFraction * budget)
        return;
    const uint32_t rows = threshold_->rowsPerBank();
    for (int d : {-1, +1}) {
        const int64_t victim = static_cast<int64_t>(row) + d;
        if (victim < 0 || victim >= static_cast<int64_t>(rows))
            continue;
        out.push_back({PreventiveAction::Kind::RefreshRow, bank,
                       static_cast<uint32_t>(victim), 0, 0});
        ++stats_.preventiveRefreshes;
    }
    count = 0;
}

void
Graphene::onEpochEnd(dram::Tick /* now */)
{
    counts_.clear();
}

} // namespace svard::defense
