#include "defense/para.h"

#include <algorithm>
#include <cmath>

namespace svard::defense {

Para::Para(std::shared_ptr<const core::ThresholdProvider> thr,
           uint64_t seed, double failure_target)
    : Defense(std::move(thr)), rng_(seed),
      lnTarget_(std::log(failure_target))
{}

double
Para::probabilityFor(double threshold) const
{
    // Survival of T adjacent activations without refresh: (1-p)^T.
    // (1-p)^T <= target  =>  p = 1 - exp(ln(target)/T).
    if (threshold < 1.0)
        return 1.0;
    return std::clamp(1.0 - std::exp(lnTarget_ / threshold), 0.0, 1.0);
}

void
Para::onActivate(uint32_t bank, uint32_t row, dram::Tick /* now */,
                 std::vector<PreventiveAction> &out)
{
    ++stats_.activationsObserved;
    const uint32_t rows = threshold_->rowsPerBank();
    for (int d : {-1, +1}) {
        const int64_t victim = static_cast<int64_t>(row) + d;
        if (victim < 0 || victim >= static_cast<int64_t>(rows))
            continue;
        const uint32_t v = static_cast<uint32_t>(victim);
        const double p = probabilityFor(victimThreshold(bank, v));
        if (rng_.chance(p)) {
            out.push_back({PreventiveAction::Kind::RefreshRow, bank, v,
                           0, 0});
            ++stats_.preventiveRefreshes;
        }
    }
}

} // namespace svard::defense
