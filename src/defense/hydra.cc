#include "defense/hydra.h"

#include <algorithm>

namespace svard::defense {

Hydra::Hydra(std::shared_ptr<const core::ThresholdProvider> thr)
    : Hydra(std::move(thr), Params{})
{}

Hydra::Hydra(std::shared_ptr<const core::ThresholdProvider> thr,
             Params params)
    : Defense(std::move(thr)), params_(params),
      // 4x headroom keeps the map under its load limit with a full
      // RCC plus the tombstones evictions leave between rehashes.
      rccNodes_(params.rccEntries), rccMap_(4 * params.rccEntries)
{}

void
Hydra::rccUnlink(uint32_t n)
{
    RccNode &node = rccNodes_[n];
    if (node.prev != kNil)
        rccNodes_[node.prev].next = node.next;
    else
        rccHead_ = node.next;
    if (node.next != kNil)
        rccNodes_[node.next].prev = node.prev;
    else
        rccTail_ = node.prev;
}

void
Hydra::rccLinkFront(uint32_t n)
{
    RccNode &node = rccNodes_[n];
    node.prev = kNil;
    node.next = rccHead_;
    if (rccHead_ != kNil)
        rccNodes_[rccHead_].prev = n;
    rccHead_ = n;
    if (rccTail_ == kNil)
        rccTail_ = n;
}

bool
Hydra::rccAccess(uint64_t row_key, uint32_t bank,
                 std::vector<PreventiveAction> &out)
{
    if (const uint32_t *at = rccMap_.find(row_key)) {
        // Hit: refresh recency (the list splice of the old LRU).
        const uint32_t n = *at;
        if (rccHead_ != n) {
            rccUnlink(n);
            rccLinkFront(n);
        }
        ++rccHits_;
        return true;
    }
    ++rccMisses_;
    // Miss: fetch the counter line from the DRAM-resident RCT.
    out.push_back({PreventiveAction::Kind::MetadataAccess, bank, 0, 0,
                   0});
    ++stats_.metadataAccesses;
    uint32_t n;
    if (rccUsed_ >= rccNodes_.size()) {
        // Evict LRU; counters are write-back, so eviction writes the
        // line to DRAM. The tail node is reused for the new entry.
        n = rccTail_;
        rccMap_.erase(rccNodes_[n].key);
        rccUnlink(n);
        out.push_back({PreventiveAction::Kind::MetadataAccess, bank, 0,
                       0, 0});
        ++stats_.metadataAccesses;
    } else {
        n = rccUsed_++;
    }
    rccNodes_[n].key = row_key;
    rccLinkFront(n);
    rccMap_.refOrInsert(row_key) = n;
    return false;
}

void
Hydra::onActivate(uint32_t bank, uint32_t row, dram::Tick /* now */,
                  std::vector<PreventiveAction> &out)
{
    ++stats_.activationsObserved;
    const double budget = aggressorBudget(bank, row);
    const uint64_t gk = groupKey(bank, row);

    if (!perRowGroups_.contains(gk)) {
        const uint32_t gcount = ++gct_.refOrInsert(gk);
        if (static_cast<double>(gcount) <
            params_.groupFraction * budget)
            return;
        // Group crossed its share of the threshold: switch the whole
        // group to exact per-row tracking, seeded with the group count
        // (conservative: every row inherits the group's count). The
        // whole group materializes at once, so the RCT seeding runs
        // through the batch-probe path (one vector hash pass +
        // prefetched slots) and the aggressor-budget memo is warmed
        // for the full row run the promoted group is about to consult.
        perRowGroups_.refOrInsert(gk) = 1;
        const uint32_t base =
            (row / params_.rowsPerGroup) * params_.rowsPerGroup;
        groupKeys_.clear();
        for (uint32_t r = 0; r < params_.rowsPerGroup; ++r)
            groupKeys_.push_back(rowKey(bank, base + r));
        rct_.assignBatch(groupKeys_.data(), groupKeys_.size(), gcount);
        warmAggressorBudgets(bank, base, params_.rowsPerGroup);
    }

    const uint64_t rk = rowKey(bank, row);
    rccAccess(rk, bank, out);
    uint32_t &count = rct_.refOrInsert(rk);
    if (static_cast<double>(++count) >=
        params_.refreshFraction * budget) {
        const uint32_t rows = threshold_->rowsPerBank();
        for (int d : {-1, +1}) {
            const int64_t victim = static_cast<int64_t>(row) + d;
            if (victim < 0 || victim >= static_cast<int64_t>(rows))
                continue;
            out.push_back({PreventiveAction::Kind::RefreshRow, bank,
                           static_cast<uint32_t>(victim), 0, 0});
            ++stats_.preventiveRefreshes;
        }
        count = 0;
    }
}

void
Hydra::onEpochEnd(dram::Tick /* now */)
{
    gct_.clear();
    perRowGroups_.clear();
    rct_.clear();
    rccMap_.clear();
    rccHead_ = kNil;
    rccTail_ = kNil;
    rccUsed_ = 0;
}

} // namespace svard::defense
