#include "defense/hydra.h"

#include <algorithm>

namespace svard::defense {

Hydra::Hydra(std::shared_ptr<const core::ThresholdProvider> thr)
    : Hydra(std::move(thr), Params{})
{}

Hydra::Hydra(std::shared_ptr<const core::ThresholdProvider> thr,
             Params params)
    : Defense(std::move(thr)), params_(params)
{}

bool
Hydra::rccAccess(uint64_t row_key, uint32_t bank,
                 std::vector<PreventiveAction> &out)
{
    auto it = rccMap_.find(row_key);
    if (it != rccMap_.end()) {
        rccLru_.splice(rccLru_.begin(), rccLru_, it->second);
        ++rccHits_;
        return true;
    }
    ++rccMisses_;
    // Miss: fetch the counter line from the DRAM-resident RCT.
    out.push_back({PreventiveAction::Kind::MetadataAccess, bank, 0, 0,
                   0});
    ++stats_.metadataAccesses;
    if (rccMap_.size() >= params_.rccEntries) {
        // Evict LRU; counters are write-back, so eviction writes the
        // line to DRAM.
        const uint64_t victim = rccLru_.back();
        rccLru_.pop_back();
        rccMap_.erase(victim);
        out.push_back({PreventiveAction::Kind::MetadataAccess, bank, 0,
                       0, 0});
        ++stats_.metadataAccesses;
    }
    rccLru_.push_front(row_key);
    rccMap_[row_key] = rccLru_.begin();
    return false;
}

void
Hydra::onActivate(uint32_t bank, uint32_t row, dram::Tick /* now */,
                  std::vector<PreventiveAction> &out)
{
    ++stats_.activationsObserved;
    const double budget = aggressorBudget(bank, row);
    const uint64_t gk = groupKey(bank, row);

    if (!perRowGroups_.count(gk)) {
        const uint32_t gcount = ++gct_[gk];
        if (static_cast<double>(gcount) <
            params_.groupFraction * budget)
            return;
        // Group crossed its share of the threshold: switch the whole
        // group to exact per-row tracking, seeded with the group count
        // (conservative: every row inherits the group's count).
        perRowGroups_.insert(gk);
        const uint32_t base =
            (row / params_.rowsPerGroup) * params_.rowsPerGroup;
        for (uint32_t r = 0; r < params_.rowsPerGroup; ++r)
            rct_[rowKey(bank, base + r)] = gcount;
    }

    const uint64_t rk = rowKey(bank, row);
    rccAccess(rk, bank, out);
    const uint32_t count = ++rct_[rk];
    if (static_cast<double>(count) >=
        params_.refreshFraction * budget) {
        const uint32_t rows = threshold_->rowsPerBank();
        for (int d : {-1, +1}) {
            const int64_t victim = static_cast<int64_t>(row) + d;
            if (victim < 0 || victim >= static_cast<int64_t>(rows))
                continue;
            out.push_back({PreventiveAction::Kind::RefreshRow, bank,
                           static_cast<uint32_t>(victim), 0, 0});
            ++stats_.preventiveRefreshes;
        }
        rct_[rk] = 0;
    }
}

void
Hydra::onEpochEnd(dram::Tick /* now */)
{
    gct_.clear();
    perRowGroups_.clear();
    rct_.clear();
    rccLru_.clear();
    rccMap_.clear();
}

} // namespace svard::defense
