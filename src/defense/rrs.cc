#include "defense/rrs.h"

namespace svard::defense {

Rrs::Rrs(std::shared_ptr<const core::ThresholdProvider> thr)
    : Rrs(std::move(thr), Params{}, 1)
{}

Rrs::Rrs(std::shared_ptr<const core::ThresholdProvider> thr,
         Params params, uint64_t seed)
    : Defense(std::move(thr)), params_(params), rng_(seed)
{}

void
Rrs::onActivate(uint32_t bank, uint32_t row, dram::Tick /* now */,
                std::vector<PreventiveAction> &out)
{
    ++stats_.activationsObserved;
    const double budget = aggressorBudget(bank, row);
    const uint32_t count = ++counts_.refOrInsert(key(bank, row));
    if (static_cast<double>(count) < params_.swapFraction * budget)
        return;

    const uint32_t rows = threshold_->rowsPerBank();
    uint32_t partner = static_cast<uint32_t>(rng_.below(rows));
    if (partner == row)
        partner = (partner + 1) % rows;
    out.push_back({PreventiveAction::Kind::SwapRows, bank, row, partner,
                   0});
    ++stats_.swaps;
    // Two separate inserts (the partner insert may move the table).
    counts_.refOrInsert(key(bank, row)) = 0;
    counts_.refOrInsert(key(bank, partner)) = 0;
}

void
Rrs::onEpochEnd(dram::Tick /* now */)
{
    counts_.clear();
}

} // namespace svard::defense
