/**
 * @file
 * Name-indexed registry of read-disturbance defenses.
 *
 * Every construction site in the repo (benches, examples, tests, the
 * experiment engine) goes through this registry instead of wiring
 * concrete defense classes by hand: a defense is a string name plus a
 * DefenseContext carrying the threshold provider, the deterministic
 * seed, and the DRAM geometry under test. Factories thread the
 * geometry into Defense::setBanksPerRank so bank folding follows the
 * simulated module instead of a hardcoded constant.
 *
 * The registry is open: extensions register additional defenses at
 * startup (DefenseRegistry::instance().add(...)) and every sweep-spec
 * consumer picks them up by name with no further plumbing.
 */
#ifndef SVARD_DEFENSE_REGISTRY_H
#define SVARD_DEFENSE_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "defense/defense.h"
#include "sim/config.h"

namespace svard::defense {

/** Named defense parameters (registry-driven parameter sweeps). */
using DefenseParams = std::map<std::string, double>;

/** Everything a defense factory needs to stand up an instance. */
struct DefenseContext
{
    /**
     * Bare construction: `banks_per_rank` MUST be set to the
     * simulated geometry's bank count before the context reaches a
     * factory (the registry asserts it). The old hardcoded default of
     * 16 silently mis-folded banks for every non-Table-4 geometry;
     * prefer the SimConfig overload below, which derives it.
     */
    explicit DefenseContext(
        std::shared_ptr<const core::ThresholdProvider> thr,
        uint64_t rng_seed = 1, uint32_t banks_per_rank = 0)
        : provider(std::move(thr)), seed(rng_seed),
          banksPerRank(banks_per_rank)
    {}

    /** Geometry-aware context for a simulated system configuration. */
    DefenseContext(const sim::SimConfig &cfg,
                   std::shared_ptr<const core::ThresholdProvider> thr,
                   uint64_t rng_seed = 1,
                   DefenseParams defense_params = {})
        : provider(std::move(thr)), seed(rng_seed),
          banksPerRank(cfg.banksPerRank()),
          params(std::move(defense_params))
    {}

    /** Named parameter with a factory-chosen fallback. Factories use
     *  this to expose tunables by name (e.g. BlockHammer's
     *  "blacklist_fraction") so sweep specs can vary them without new
     *  plumbing per defense. */
    double
    param(const std::string &name, double fallback) const
    {
        const auto it = params.find(name);
        return it == params.end() ? fallback : it->second;
    }

    std::shared_ptr<const core::ThresholdProvider> provider;
    uint64_t seed = 1;
    /** Banks per rank of the simulated geometry; 0 = not yet set
     *  (construction must fill it in before factory use). */
    uint32_t banksPerRank = 0;
    DefenseParams params;
};

using DefenseFactory =
    std::function<std::unique_ptr<Defense>(const DefenseContext &)>;

/**
 * String -> factory map with the built-in defenses pre-registered:
 * "none", "para", "blockhammer", "hydra", "aqua", "rrs", "graphene".
 * Lookups are case-insensitive ("PARA" and "para" are the same
 * defense); registered names are stored lowercase.
 */
class DefenseRegistry
{
  public:
    /** The process-wide registry (built-ins registered on first use). */
    static DefenseRegistry &instance();

    /**
     * Register a defense. Registering an existing name replaces the
     * factory (tests override built-ins with instrumented variants).
     */
    void add(const std::string &name, DefenseFactory factory);

    bool contains(const std::string &name) const;

    /** All registered names, sorted ("none" included). */
    std::vector<std::string> names() const;

    /**
     * Construct a defense by name. "none" yields nullptr (baseline).
     * @throws std::invalid_argument for unregistered names, listing
     *         the known ones.
     */
    std::unique_ptr<Defense> make(const std::string &name,
                                  const DefenseContext &ctx) const;

  private:
    DefenseRegistry(); ///< registers the built-ins

    std::map<std::string, DefenseFactory> factories_;
};

/** Convenience wrapper over DefenseRegistry::instance().make(). */
std::unique_ptr<Defense> makeDefenseByName(const std::string &name,
                                           const DefenseContext &ctx);

} // namespace svard::defense

#endif // SVARD_DEFENSE_REGISTRY_H
