/**
 * @file
 * Hydra (Qureshi et al., ISCA 2022): hybrid activation tracking. A
 * small SRAM Group Count Table (GCT) counts activations per row
 * *group*; only when a group's count crosses a fraction of the
 * threshold does tracking fall back to exact per-row counters stored
 * in a reserved DRAM region (RCT), cached by a Row Count Cache (RCC).
 * RCC misses and dirty evictions cost real DRAM traffic — the paper
 * notes this off-chip counter traffic, not preventive refreshes,
 * dominates Hydra's overhead, which is why Svärd's benefit on Hydra is
 * modest (Obsv. 14).
 *
 * All counter state lives in open-addressing FlatTables, and the RCC
 * is a fixed-slot intrusive LRU (index links over a preallocated node
 * array), so the per-ACT path performs no heap allocation and the
 * epoch reset is O(1) — same externally-visible behaviour as the
 * std::unordered_map/std::list implementation it replaced, cheaper.
 */
#ifndef SVARD_DEFENSE_HYDRA_H
#define SVARD_DEFENSE_HYDRA_H

#include <vector>

#include "common/flat_table.h"
#include "defense/defense.h"

namespace svard::defense {

class Hydra : public Defense
{
  public:
    struct Params
    {
        uint32_t rowsPerGroup = 128;
        /** Fraction of threshold at which a group goes per-row. */
        double groupFraction = 0.4;
        /** Fraction of threshold at which a row's neighbors refresh. */
        double refreshFraction = 0.5;
        size_t rccEntries = 4096;
        dram::Tick refreshWindow = 64LL * 1000 * 1000 * 1000;
    };

    explicit Hydra(std::shared_ptr<const core::ThresholdProvider> thr);
    Hydra(std::shared_ptr<const core::ThresholdProvider> thr,
          Params params);

    const char *name() const override { return "Hydra"; }

    void onActivate(uint32_t bank, uint32_t row, dram::Tick now,
                    std::vector<PreventiveAction> &out) override;

    void onEpochEnd(dram::Tick now) override;

    void
    tableStats(uint64_t *entries, uint64_t *rehashes) const override
    {
        *entries = gct_.size() + perRowGroups_.size() + rct_.size() +
                   rccMap_.size();
        *rehashes = gct_.rehashes() + perRowGroups_.rehashes() +
                    rct_.rehashes() + rccMap_.rehashes();
    }

    uint64_t rccMisses() const { return rccMisses_; }
    uint64_t rccHits() const { return rccHits_; }

  private:
    uint64_t
    groupKey(uint32_t bank, uint32_t row) const
    {
        return (static_cast<uint64_t>(bank) << 32) |
               (row / params_.rowsPerGroup);
    }
    uint64_t
    rowKey(uint32_t bank, uint32_t row) const
    {
        return (static_cast<uint64_t>(bank) << 32) | row;
    }

    /** Access the RCC; returns true on hit, emits traffic on miss. */
    bool rccAccess(uint64_t row_key, uint32_t bank,
                   std::vector<PreventiveAction> &out);

    Params params_;
    FlatTable<uint32_t> gct_;
    FlatTable<uint8_t> perRowGroups_; ///< membership set
    FlatTable<uint32_t> rct_; ///< DRAM-resident counts
    std::vector<uint64_t> groupKeys_; ///< reused promotion key buffer

    // RCC: fixed-capacity LRU of row keys currently cached on-chip.
    // Nodes are preallocated and linked by index; recency order (MRU
    // at head, eviction at tail) matches the former std::list exactly.
    struct RccNode
    {
        uint64_t key = 0;
        uint32_t prev = kNil;
        uint32_t next = kNil;
    };
    static constexpr uint32_t kNil = UINT32_MAX;

    void rccUnlink(uint32_t n);
    void rccLinkFront(uint32_t n);

    std::vector<RccNode> rccNodes_;
    FlatTable<uint32_t> rccMap_; ///< row key -> node index
    uint32_t rccHead_ = kNil;
    uint32_t rccTail_ = kNil;
    uint32_t rccUsed_ = 0;
    uint64_t rccMisses_ = 0;
    uint64_t rccHits_ = 0;
};

} // namespace svard::defense

#endif // SVARD_DEFENSE_HYDRA_H
