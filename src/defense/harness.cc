#include "defense/harness.h"

#include <vector>

#include "common/log.h"

namespace svard::defense {

AttackResult
runDoubleSidedAttack(dram::DramDevice &device, Defense *defense,
                     const AttackOptions &opt)
{
    const auto &timing = device.timing();
    const dram::Tick t_on = std::max(opt.tAggOn, timing.tRAS);
    const dram::Tick act_period = t_on + timing.tRP;

    // The harness — like the paper's methodology and a deployed
    // defense — works in *physical* row space, where adjacency is +-1:
    // aggressors are the victim's physical neighbors, and the defense
    // observes physical row ids (the controller translates interface
    // addresses through the reverse-engineered in-DRAM mapping).
    const uint32_t victim_phys = device.mapping().toPhysical(opt.victim);
    const std::vector<uint32_t> aggressors =
        device.subarrays().disturbedNeighbors(victim_phys);
    SVARD_ASSERT(!aggressors.empty(), "victim has no neighbors");

    // AQUA/RRS remap aggressor rows away from their victims; the
    // attacker keeps hammering the same *address*, which lands on the
    // new physical location.
    std::unordered_map<uint32_t, uint32_t> remap;
    auto resolve = [&](uint32_t row) {
        auto it = remap.find(row);
        return it == remap.end() ? row : it->second;
    };
    auto to_logical = [&](uint32_t phys) {
        return device.mapping().toLogical(phys);
    };

    const uint64_t flips_before = device.stats().bitflipsInjected;
    AttackResult res;
    dram::Tick now = 0;
    std::vector<PreventiveAction> acts;

    if (opt.initDataPatterns) {
        // Row-stripe data exacerbates disturbance (Table 2); a real
        // attacker templates the victim first. The inverse stripe is
        // the worst case for rows dominated by anti-cells, so split
        // the aggressor halves across both.
        device.writeRowFill(opt.bank, opt.victim, 0x00);
        for (uint32_t aggr : aggressors)
            device.writeRowFill(opt.bank, to_logical(aggr), 0xFF);
    }

    for (int window = 0; window < opt.refreshWindows; ++window) {
        const dram::Tick window_end = now + timing.tREFW;
        uint64_t acts_this_window = 0;
        while (now < window_end) {
            if (opt.maxActsPerAggressor &&
                acts_this_window >= opt.maxActsPerAggressor)
                break;
            for (uint32_t aggr : aggressors) {
                if (defense) {
                    // Retry through throttling until the ACT is
                    // admitted (BlockHammer) or time runs out.
                    for (;;) {
                        acts.clear();
                        defense->onActivate(opt.bank, aggr, now, acts);
                        dram::Tick delay = 0;
                        for (const auto &a : acts) {
                            switch (a.kind) {
                              case PreventiveAction::Kind::RefreshRow:
                                device.refreshRow(opt.bank,
                                                  to_logical(a.row),
                                                  now);
                                now += timing.tRAS + timing.tRP;
                                ++res.preventiveRefreshes;
                                break;
                              case PreventiveAction::Kind::Throttle:
                                delay = std::max(delay, a.delay);
                                ++res.throttleEvents;
                                break;
                              case PreventiveAction::Kind::MigrateRow:
                                remap[a.row] = a.row2;
                                ++res.migrations;
                                break;
                              case PreventiveAction::Kind::SwapRows: {
                                const uint32_t cur = resolve(a.row);
                                const uint32_t other = resolve(a.row2);
                                remap[a.row] = other;
                                remap[a.row2] = cur;
                                ++res.migrations;
                                break;
                              }
                              case PreventiveAction::Kind::
                                  MetadataAccess:
                                now += timing.tRCD + timing.tCL +
                                       timing.tBL + timing.tRP;
                                break;
                            }
                        }
                        if (delay == 0)
                            break;
                        now += delay;
                        res.throttledTime += delay;
                        if (now >= window_end)
                            break;
                    }
                    if (now >= window_end)
                        break;
                }
                device.activate(opt.bank, to_logical(resolve(aggr)),
                                now);
                now += t_on;
                device.precharge(opt.bank, now);
                now += act_period - t_on;
                ++res.aggressorActs;
            }
            ++acts_this_window;
        }
        // Regular refresh sweep at the end of the window.
        device.refreshAllRows(now);
        if (defense)
            defense->onEpochEnd(now);
    }
    res.bitflips = device.stats().bitflipsInjected - flips_before;
    return res;
}

} // namespace svard::defense
