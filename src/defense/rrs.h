/**
 * @file
 * RRS — Randomized Row Swap (Saileshwar et al., ASPLOS 2022): when a
 * row's activation count crosses a fraction of the threshold, the row
 * is swapped with a random row of the same bank, breaking the spatial
 * correlation between aggressor and victim. Each swap moves two full
 * rows (read+write both ways), twice AQUA's migration traffic, which
 * is why RRS tops the paper's overhead chart at low thresholds.
 */
#ifndef SVARD_DEFENSE_RRS_H
#define SVARD_DEFENSE_RRS_H

#include "common/flat_table.h"
#include "common/rng.h"
#include "defense/defense.h"

namespace svard::defense {

class Rrs : public Defense
{
  public:
    struct Params
    {
        /** Fraction of the threshold that triggers a swap. */
        double swapFraction = 0.5;
        dram::Tick refreshWindow = 64LL * 1000 * 1000 * 1000;
    };

    explicit Rrs(std::shared_ptr<const core::ThresholdProvider> thr);
    Rrs(std::shared_ptr<const core::ThresholdProvider> thr,
        Params params, uint64_t seed = 1);

    const char *name() const override { return "RRS"; }

    void onActivate(uint32_t bank, uint32_t row, dram::Tick now,
                    std::vector<PreventiveAction> &out) override;

    void onEpochEnd(dram::Tick now) override;

    void
    tableStats(uint64_t *entries, uint64_t *rehashes) const override
    {
        *entries = counts_.size();
        *rehashes = counts_.rehashes();
    }

  private:
    uint64_t
    key(uint32_t bank, uint32_t row) const
    {
        return (static_cast<uint64_t>(bank) << 32) | row;
    }

    Params params_;
    Rng rng_;
    /** Per-(bank,row) ACT counts; generation-cleared at epoch end. */
    FlatTable<uint32_t> counts_;
};

} // namespace svard::defense

#endif // SVARD_DEFENSE_RRS_H
