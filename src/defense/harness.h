/**
 * @file
 * Security harness: closes the loop between a defense and the
 * behavioral DRAM device. An adversary double-sided-hammers a victim;
 * every aggressor activation is observed by the defense, whose
 * preventive actions are applied to the device (victim refreshes,
 * throttle stalls, aggressor migration/swap remaps). The harness
 * reports whether any bitflip was induced — the paper's security
 * claim (Sec. 6.3) is that Svärd preserves "zero bitflips" while
 * reducing how often the defense acts.
 */
#ifndef SVARD_DEFENSE_HARNESS_H
#define SVARD_DEFENSE_HARNESS_H

#include <cstdint>
#include <unordered_map>

#include "defense/defense.h"
#include "dram/device.h"

namespace svard::defense {

struct AttackOptions
{
    uint32_t bank = 1;
    uint32_t victim = 0;          ///< logical victim row
    dram::Tick tAggOn = 36 * dram::kPsPerNs;
    int refreshWindows = 2;       ///< attack duration in tREFW epochs
    uint64_t maxActsPerAggressor = 0; ///< 0 = fill the refresh window
    /** Attackers write disturbance-friendly data before hammering;
     *  both stripes are tried and the worse one kept. */
    bool initDataPatterns = true;
};

struct AttackResult
{
    uint64_t bitflips = 0;
    uint64_t aggressorActs = 0;
    uint64_t preventiveRefreshes = 0;
    uint64_t throttleEvents = 0;
    uint64_t migrations = 0;      ///< migrations + swaps
    dram::Tick throttledTime = 0;
};

/**
 * Run a double-sided RowHammer attack against `victim` with `defense`
 * in the loop (null = unprotected). Aggressor rows are the victim's
 * reverse-engineered physical neighbors; migrations/swaps remap the
 * aggressors away from the victim exactly as AQUA/RRS do.
 */
AttackResult runDoubleSidedAttack(dram::DramDevice &device,
                                  Defense *defense,
                                  const AttackOptions &opt);

} // namespace svard::defense

#endif // SVARD_DEFENSE_HARNESS_H
