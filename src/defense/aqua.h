/**
 * @file
 * AQUA (Saxena et al., MICRO 2022): quarantines aggressor rows. When a
 * row's activation count crosses a fraction of the threshold, its
 * content is migrated to a reserved quarantine region, breaking the
 * aggressor-victim adjacency; the quarantine is recycled FIFO. The
 * overhead is the migration bandwidth (one full row read + write).
 */
#ifndef SVARD_DEFENSE_AQUA_H
#define SVARD_DEFENSE_AQUA_H

#include <vector>

#include "common/flat_table.h"
#include "defense/defense.h"

namespace svard::defense {

class Aqua : public Defense
{
  public:
    struct Params
    {
        /** Fraction of the threshold that triggers quarantine. */
        double migrateFraction = 0.5;
        /** Quarantine region size as a fraction of the bank's rows. */
        double quarantineFraction = 0.01;
        dram::Tick refreshWindow = 64LL * 1000 * 1000 * 1000;
    };

    explicit Aqua(std::shared_ptr<const core::ThresholdProvider> thr);
    Aqua(std::shared_ptr<const core::ThresholdProvider> thr,
         Params params);

    const char *name() const override { return "AQUA"; }

    void onActivate(uint32_t bank, uint32_t row, dram::Tick now,
                    std::vector<PreventiveAction> &out) override;

    void onEpochEnd(dram::Tick now) override;

    void
    tableStats(uint64_t *entries, uint64_t *rehashes) const override
    {
        *entries = counts_.size();
        *rehashes = counts_.rehashes();
    }

  private:
    uint64_t
    key(uint32_t bank, uint32_t row) const
    {
        return (static_cast<uint64_t>(bank) << 32) | row;
    }

    Params params_;
    /** Per-(bank,row) ACT counts; generation-cleared at epoch end. */
    FlatTable<uint32_t> counts_;
    std::vector<uint32_t> nextQuarantine_; ///< per bank, grown on demand
};

} // namespace svard::defense

#endif // SVARD_DEFENSE_AQUA_H
