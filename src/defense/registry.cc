#include "defense/registry.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "common/log.h"
#include "defense/aqua.h"
#include "defense/blockhammer.h"
#include "defense/graphene.h"
#include "defense/hydra.h"
#include "defense/para.h"
#include "defense/rrs.h"

namespace svard::defense {

namespace {

std::string
lowered(const std::string &name)
{
    std::string out = name;
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

/** Wrap a plain constructor call into a geometry-applying factory. */
template <typename Make>
DefenseFactory
geometryAware(Make make)
{
    return [make](const DefenseContext &ctx) -> std::unique_ptr<Defense> {
        // A zero bank count means the caller never derived the
        // geometry (the old hardcoded-16 default hid exactly that
        // for every non-Table-4 system); refuse instead of folding
        // banks wrongly.
        SVARD_ASSERT(ctx.banksPerRank > 0,
                     "DefenseContext::banksPerRank is unset; derive "
                     "it from the SimConfig (or module spec) under "
                     "test");
        std::unique_ptr<Defense> d = make(ctx);
        if (d)
            d->setBanksPerRank(ctx.banksPerRank);
        return d;
    };
}

} // anonymous namespace

DefenseRegistry::DefenseRegistry()
{
    add("none", [](const DefenseContext &) { return nullptr; });
    add("para", geometryAware([](const DefenseContext &ctx) {
            return std::make_unique<Para>(ctx.provider, ctx.seed);
        }));
    add("blockhammer", geometryAware([](const DefenseContext &ctx) {
            BlockHammer::Params p;
            p.blacklistFraction =
                ctx.param("blacklist_fraction", p.blacklistFraction);
            return std::make_unique<BlockHammer>(ctx.provider, p);
        }));
    add("hydra", geometryAware([](const DefenseContext &ctx) {
            return std::make_unique<Hydra>(ctx.provider);
        }));
    add("aqua", geometryAware([](const DefenseContext &ctx) {
            return std::make_unique<Aqua>(ctx.provider);
        }));
    add("rrs", geometryAware([](const DefenseContext &ctx) {
            return std::make_unique<Rrs>(ctx.provider, Rrs::Params{},
                                         ctx.seed);
        }));
    add("graphene", geometryAware([](const DefenseContext &ctx) {
            return std::make_unique<Graphene>(ctx.provider);
        }));
}

DefenseRegistry &
DefenseRegistry::instance()
{
    static DefenseRegistry registry;
    return registry;
}

void
DefenseRegistry::add(const std::string &name, DefenseFactory factory)
{
    SVARD_ASSERT(!name.empty(), "defense name must be non-empty");
    factories_[lowered(name)] = std::move(factory);
}

bool
DefenseRegistry::contains(const std::string &name) const
{
    return factories_.count(lowered(name)) != 0;
}

std::vector<std::string>
DefenseRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out; // std::map iterates sorted
}

std::unique_ptr<Defense>
DefenseRegistry::make(const std::string &name,
                      const DefenseContext &ctx) const
{
    const auto it = factories_.find(lowered(name));
    if (it == factories_.end()) {
        std::string known;
        for (const auto &n : names())
            known += (known.empty() ? "" : ", ") + n;
        throw std::invalid_argument("unknown defense \"" + name +
                                    "\" (known: " + known + ")");
    }
    return it->second(ctx);
}

std::unique_ptr<Defense>
makeDefenseByName(const std::string &name, const DefenseContext &ctx)
{
    return DefenseRegistry::instance().make(name, ctx);
}

} // namespace svard::defense
