/**
 * @file
 * PARA (Kim et al., ISCA 2014): on every activation, each physically
 * adjacent row is preventively refreshed with a probability chosen so
 * that the chance of a victim surviving HC_first unrefreshed
 * activations is below a failure target. Stateless — the classic
 * low-cost probabilistic defense.
 *
 * Svärd integration: the per-victim refresh probability is computed
 * from that victim's own threshold instead of the chip-wide worst
 * case, so strong rows stop paying for the weakest row's protection.
 */
#ifndef SVARD_DEFENSE_PARA_H
#define SVARD_DEFENSE_PARA_H

#include "common/rng.h"
#include "defense/defense.h"

namespace svard::defense {

class Para : public Defense
{
  public:
    /**
     * @param thr threshold provider (Svärd or uniform baseline)
     * @param failure_target max tolerated probability that a victim
     *        reaches its threshold without a preventive refresh
     *        (per victim, per refresh window)
     */
    Para(std::shared_ptr<const core::ThresholdProvider> thr,
         uint64_t seed = 1, double failure_target = 1e-15);

    const char *name() const override { return "PARA"; }

    void onActivate(uint32_t bank, uint32_t row, dram::Tick now,
                    std::vector<PreventiveAction> &out) override;

    /** Per-activation refresh probability for a given threshold. */
    double probabilityFor(double threshold) const;

  private:
    Rng rng_;
    double lnTarget_;
};

} // namespace svard::defense

#endif // SVARD_DEFENSE_PARA_H
