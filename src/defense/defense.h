/**
 * @file
 * Common interface of read-disturbance defenses.
 *
 * A defense observes every row activation the memory controller issues
 * and may demand preventive actions: victim-row refreshes (PARA,
 * Hydra), activation throttling (BlockHammer), row migration (AQUA) or
 * row swaps (RRS), and metadata traffic (Hydra's off-chip counters).
 * The controller executes the actions, which is where the performance
 * overhead the paper measures comes from.
 *
 * Every defense consults a core::ThresholdProvider for the HC_first
 * threshold to enforce. The provider is the Svärd integration point
 * (paper Fig. 11): UniformThreshold reproduces the defense's baseline
 * configuration; core::Svard supplies per-row thresholds.
 */
#ifndef SVARD_DEFENSE_DEFENSE_H
#define SVARD_DEFENSE_DEFENSE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/log.h"
#include "core/svard.h"
#include "dram/types.h"

namespace svard::defense {

/** One preventive action demanded by a defense. */
struct PreventiveAction
{
    enum class Kind : uint8_t
    {
        RefreshRow,     ///< preventively refresh a victim row
        Throttle,       ///< delay the triggering activation
        MigrateRow,     ///< move `row` to `row2` (quarantine)
        SwapRows,       ///< swap `row` and `row2`
        MetadataAccess, ///< off-chip metadata transfer (counter r/w)
    };
    Kind kind;
    uint32_t bank = 0;   ///< flat bank index
    uint32_t row = 0;
    uint32_t row2 = 0;   ///< migration/swap partner
    dram::Tick delay = 0;///< throttle duration
};

/**
 * Reusable buffer for the actions one ACT produces. The controller
 * owns one per instance and clears (not reallocates) it per
 * activation, so the observe-act-respond hot path stays allocation
 * free once the buffer has grown to the largest burst seen.
 */
using ActionBuffer = std::vector<PreventiveAction>;

/**
 * Map a defense-issued action bank onto a controller with
 * `total_banks` flat banks. Defenses observe controller flat bank
 * indices and must emit preventive actions in that same space; this
 * helper is the single agreed fold point (the controller used to
 * apply a silent `% total_banks`, which would mask a defense emitting
 * banks from the wrong space instead of failing loudly).
 */
inline uint32_t
resolveActionBank(uint32_t bank, size_t total_banks)
{
    SVARD_ASSERT(bank < total_banks,
                 "defense action bank outside the controller's flat "
                 "bank space");
    return bank;
}

/** Common statistics every defense maintains. */
struct DefenseStats
{
    uint64_t activationsObserved = 0;
    uint64_t preventiveRefreshes = 0;
    uint64_t throttleEvents = 0;
    dram::Tick throttleDelayTotal = 0;
    uint64_t migrations = 0;
    uint64_t swaps = 0;
    uint64_t metadataAccesses = 0;
};

/**
 * Read-disturbance defense observing the controller's ACT stream.
 * Banks are flat indices across ranks; rows are logical addresses.
 */
class Defense
{
  public:
    explicit Defense(std::shared_ptr<const core::ThresholdProvider> thr)
        : threshold_(std::move(thr))
    {}
    virtual ~Defense() = default;

    virtual const char *name() const = 0;

    /**
     * Observe an activation; append any preventive actions to `out`.
     * Called by the controller for every ACT (demand or maintenance).
     */
    virtual void onActivate(uint32_t bank, uint32_t row, dram::Tick now,
                            std::vector<PreventiveAction> &out) = 0;

    /** Refresh-window rollover: counters of this epoch reset. */
    virtual void onEpochEnd(dram::Tick now) { (void)now; }

    /**
     * Observability: live entries and lifetime rehash count summed
     * over the defense's tracking tables (0/0 for table-free defenses
     * like PARA). Never consulted by simulation logic.
     */
    virtual void
    tableStats(uint64_t *entries, uint64_t *rehashes) const
    {
        *entries = 0;
        *rehashes = 0;
    }

    const DefenseStats &stats() const { return stats_; }

    const core::ThresholdProvider &threshold() const
    {
        return *threshold_;
    }

    /**
     * Configure how many banks one rank holds so flat controller bank
     * indices fold onto the profile's bank space. Called by the
     * registry / simulation engine with the geometry under test;
     * defaults to the paper system's 16 banks per rank.
     */
    void
    setBanksPerRank(uint32_t banks_per_rank)
    {
        banksPerRank_ = banks_per_rank == 0 ? 1 : banks_per_rank;
    }

    uint32_t banksPerRank() const { return banksPerRank_; }

  protected:
    /** Threshold lookup for a victim row (bank folded to profile). */
    double
    victimThreshold(uint32_t bank, uint32_t row) const
    {
        return threshold_->victimThreshold(foldBank(bank), row);
    }

    /** Activation budget of an aggressor row. Served from the
     *  provider's flat per-(bank,row) memo: one load per ACT in
     *  steady state instead of two virtual victimThreshold calls. */
    double
    aggressorBudget(uint32_t bank, uint32_t row) const
    {
        return threshold_->aggressorBudgetMemo(foldBank(bank), row);
    }

    /**
     * Batch-fill the aggressor-budget memo for the contiguous rows
     * [row0, row0 + n): one vector threshold fetch + neighbor-min fold
     * instead of n lazy two-lookup fills. For a defense that just
     * learned a whole row run is going hot (Hydra promoting a group to
     * per-row tracking), every later aggressorBudget() of those rows
     * is a warm load. Values are identical to the lazy path's.
     */
    void
    warmAggressorBudgets(uint32_t bank, uint32_t row0, uint32_t n) const
    {
        threshold_->aggressorBudgetBatchMemo(foldBank(bank), row0, n);
    }

    /**
     * Profiles cover one rank's banks; fold flat bank indices into
     * the configured banks-per-rank, then into the provider's own
     * bank space when it is narrower (e.g. a profile characterized on
     * fewer banks than the simulated geometry exposes).
     */
    uint32_t
    foldBank(uint32_t bank) const
    {
        uint32_t folded = bank % banksPerRank_;
        const uint32_t provider_banks = threshold_->banks();
        if (provider_banks != 0 && folded >= provider_banks)
            folded %= provider_banks;
        return folded;
    }

    std::shared_ptr<const core::ThresholdProvider> threshold_;
    DefenseStats stats_;
    uint32_t banksPerRank_ = 16;
};

} // namespace svard::defense

#endif // SVARD_DEFENSE_DEFENSE_H
