/**
 * @file
 * Transient-I/O retry with bounded backoff. Before this layer, the
 * first sink/cache write error latched and aborted the whole sweep —
 * a single EINTR-grade hiccup on an NFS mount could throw away hours
 * of simulation. Now every append goes through a small transaction:
 *
 *   1. remember the current end-of-file offset,
 *   2. write + flush,
 *   3. on failure, truncate back to the remembered offset (so a
 *      partial write never leaves garbage between records) and retry
 *      after a bounded exponential backoff,
 *   4. after kIoAttempts failures, rethrow — persistent failures
 *      (disk full, revoked quota) still surface loudly.
 *
 * The truncate-back step is what makes retry safe: without it a
 * short write followed by a successful retry would interleave half a
 * record with a whole one, and every record after the splice would
 * be invisible to (or resynced past by) readers.
 *
 * Fault injection: each append names its injection point
 * (fault_inject.h), so tests drive the eio/short/torn paths
 * deterministically.
 */
#ifndef SVARD_IO_RETRY_H
#define SVARD_IO_RETRY_H

#include <cstdio>
#include <functional>
#include <string>

namespace svard::io {

/** Write attempts before a transient error is treated as fatal. */
constexpr int kIoAttempts = 4;

/** Backoff before retry k (0-based): kIoBackoffMs << (3 * k). */
constexpr int kIoBackoffMs = 1;

/**
 * Append `size` bytes to `f` (positioned at end; append-mode or
 * sequential write-mode streams both qualify) with the
 * truncate-back-and-retry transaction above. `fault_point` names the
 * injection point consulted once per attempt.
 *
 * @throws std::runtime_error after kIoAttempts failed attempts (the
 *         file is truncated back to its pre-call size first, so a
 *         caller that catches and continues has an intact file).
 */
void appendWithRetry(std::FILE *f, const std::string &path,
                     const char *fault_point, const char *data,
                     size_t size);

inline void
appendWithRetry(std::FILE *f, const std::string &path,
                const char *fault_point, const std::string &data)
{
    appendWithRetry(f, path, fault_point, data.data(), data.size());
}

/**
 * Run `fn` up to kIoAttempts times, sleeping the bounded backoff
 * between failures; rethrows the last exception. For retryable
 * operations that manage their own consistency (e.g. a sink write
 * that is internally transactional).
 */
void withBackoff(const char *what, const std::function<void()> &fn);

} // namespace svard::io

#endif // SVARD_IO_RETRY_H
