#include "io/sweep_cache.h"

#include <filesystem>
#include <stdexcept>

#include "common/log.h"
#include "io/result_sink.h"
#include "obs/metrics.h"

namespace svard::io {

SweepCache::SweepCache(const std::string &path)
    : path_(path)
{
    // Load whatever a previous (possibly killed) run left behind.
    uint64_t valid_bytes = 0;
    if (std::FILE *f = std::fopen(path_.c_str(), "rb")) {
        // A retired-format checkpoint (v1 host-endian, v2 without
        // the geometry column) would otherwise be mistaken for a
        // torn tail and truncated to nothing; fail loudly instead so
        // the user can delete or regenerate it deliberately.
        char magic[4] = {0, 0, 0, 0};
        if (std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
            magic[0] == 'S' && magic[1] == 'V' && magic[2] == 'C' &&
            (magic[3] == '1' || magic[3] == '2'))
            SVARD_FATAL(std::string("sweep cache \"") + path_ +
                        "\" uses the retired v" + magic[3] +
                        " format (" +
                        (magic[3] == '1' ? "host-endian records"
                                         : "no geometry column") +
                        "); delete it to recompute");
        std::rewind(f);
        for (auto &r : readRecords(f, &valid_bytes)) {
            const std::pair<uint64_t, uint64_t> key{r.seed,
                                                    r.fingerprint};
            cells_[key] = std::move(r); // duplicates: last one wins
        }
        std::fclose(f);
        // Repair a torn tail (a kill mid-append) before appending:
        // records written after in-file garbage would be invisible to
        // the next load, which stops at the first corrupt byte.
        std::error_code ec;
        const auto on_disk =
            std::filesystem::file_size(path_, ec);
        if (!ec && on_disk > valid_bytes) {
            warn("sweep cache \"" + path_ + "\": dropping " +
                 std::to_string(on_disk - valid_bytes) +
                 " bytes of torn tail record");
            std::filesystem::resize_file(path_, valid_bytes, ec);
            if (ec)
                SVARD_FATAL("cannot repair sweep cache \"" + path_ +
                            "\": " + ec.message());
        }
    }
    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_)
        SVARD_FATAL("cannot open sweep cache \"" + path_ +
                    "\" for append");
}

SweepCache::~SweepCache()
{
    if (file_)
        std::fclose(file_);
}

bool
SweepCache::lookup(uint64_t seed, uint64_t fingerprint,
                   engine::CellResult *out) const
{
    static const obs::MetricId hits = obs::counter("cache.hits");
    static const obs::MetricId misses = obs::counter("cache.misses");
    static const obs::MetricId invalidated =
        obs::counter("cache.invalidated");
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = cells_.find({seed, fingerprint});
    if (it == cells_.end()) {
        obs::add(misses);
        // Same cell seed cached under a different fingerprint: the
        // spec's resolved inputs changed and invalidated this record.
        const auto near = cells_.lower_bound({seed, 0});
        if (near != cells_.end() && near->first.first == seed)
            obs::add(invalidated);
        return false;
    }
    obs::add(hits);
    *out = it->second;
    return true;
}

void
SweepCache::store(const engine::CellResult &row)
{
    static const obs::MetricId stores = obs::counter("cache.stores");
    obs::add(stores);
    std::lock_guard<std::mutex> lock(mu_);
    const std::pair<uint64_t, uint64_t> key{row.seed,
                                            row.fingerprint};
    if (!cells_.emplace(key, row).second)
        return; // already persisted
    appendRecord(file_, row); // throws on a short write
    // Per-record durability: a kill after this point cannot lose the
    // cell. The sim work per cell dwarfs one small flushed write.
    if (std::fflush(file_) != 0)
        throw std::runtime_error("flush failed on sweep cache \"" +
                                 path_ + "\"");
}

size_t
SweepCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cells_.size();
}

bool
SweepCache::fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fclose(f);
    return true;
}

} // namespace svard::io
