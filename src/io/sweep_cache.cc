#include "io/sweep_cache.h"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <unistd.h>

#include "common/log.h"
#include "io/result_sink.h"
#include "obs/metrics.h"

namespace svard::io {

SweepCache::SweepCache(const std::string &path)
    : path_(path)
{
    const char *fsync_env = std::getenv("SVARD_CACHE_FSYNC");
    fsyncPerStore_ = fsync_env && std::strcmp(fsync_env, "1") == 0;

    // Load whatever a previous (possibly killed) run left behind.
    RecordReadStats stats;
    if (std::FILE *f = std::fopen(path_.c_str(), "rb")) {
        // A retired-format checkpoint (v1 host-endian, v2 without
        // the geometry column, v3 without the drift axis) would
        // otherwise be mistaken for a torn tail and truncated to
        // nothing; fail loudly instead so the user can delete or
        // regenerate it deliberately.
        char magic[4] = {0, 0, 0, 0};
        if (std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
            magic[0] == 'S' && magic[1] == 'V' && magic[2] == 'C' &&
            (magic[3] == '1' || magic[3] == '2' || magic[3] == '3'))
            SVARD_FATAL(std::string("sweep cache \"") + path_ +
                        "\" uses the retired v" + magic[3] +
                        " format (" +
                        (magic[3] == '1'   ? "host-endian records"
                         : magic[3] == '2' ? "no geometry column"
                                           : "no drift axis") +
                        "); delete it to recompute");
        std::rewind(f);
        for (auto &r : readRecords(f, &stats)) {
            const std::pair<uint64_t, uint64_t> key{r.seed,
                                                    r.fingerprint};
            cells_[key] = std::move(r); // duplicates: last one wins
        }
        std::fclose(f);
        // Mid-file damage was skipped by resync; the cells in the
        // dropped region recompute (their lookups miss). Loud, not
        // fatal: the intact majority of the checkpoint still counts.
        if (stats.resyncs > 0)
            warn("sweep cache \"" + path_ + "\": skipped " +
                 std::to_string(stats.droppedBytes) +
                 " corrupt bytes mid-file (" +
                 std::to_string(stats.resyncs) +
                 " resync" + (stats.resyncs == 1 ? "" : "s") +
                 "); dropped cells will recompute");
        // Repair a torn tail (a kill mid-append) before appending:
        // records written after in-file garbage would be invisible to
        // the next load, which stops at the first corrupt byte.
        std::error_code ec;
        const auto on_disk =
            std::filesystem::file_size(path_, ec);
        if (!ec && on_disk > stats.validBytes) {
            warn("sweep cache \"" + path_ + "\": dropping " +
                 std::to_string(on_disk - stats.validBytes) +
                 " bytes of torn tail record");
            std::filesystem::resize_file(path_, stats.validBytes, ec);
            if (ec)
                throw std::runtime_error(
                    "cannot repair sweep cache \"" + path_ +
                    "\": " + ec.message());
        }
    }
    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_)
        throw std::runtime_error("cannot open sweep cache \"" + path_ +
                                 "\" for append");
}

SweepCache::~SweepCache()
{
    if (file_)
        std::fclose(file_);
}

bool
SweepCache::lookup(uint64_t seed, uint64_t fingerprint,
                   engine::CellResult *out) const
{
    static const obs::MetricId hits = obs::counter("cache.hits");
    static const obs::MetricId misses = obs::counter("cache.misses");
    static const obs::MetricId invalidated =
        obs::counter("cache.invalidated");
    MutexLock lock(mu_);
    const auto it = cells_.find({seed, fingerprint});
    if (it == cells_.end()) {
        obs::add(misses);
        // Same cell seed cached under a different fingerprint: the
        // spec's resolved inputs changed and invalidated this record.
        const auto near = cells_.lower_bound({seed, 0});
        if (near != cells_.end() && near->first.first == seed)
            obs::add(invalidated);
        return false;
    }
    obs::add(hits);
    *out = it->second;
    return true;
}

void
SweepCache::store(const engine::CellResult &row)
{
    static const obs::MetricId stores = obs::counter("cache.stores");
    obs::add(stores);
    MutexLock lock(mu_);
    const std::pair<uint64_t, uint64_t> key{row.seed,
                                            row.fingerprint};
    if (!cells_.emplace(key, row).second)
        return; // already persisted
    // appendRecord retries transient failures and flushes per record:
    // once it returns, a kill cannot lose the cell to stdio
    // buffering. The sim work per cell dwarfs one small flushed
    // write.
    appendRecord(file_, row, path_, "cache.store");
    // Opt-in power-loss durability: flush only hands the bytes to
    // the OS; fsync makes the kernel persist them.
    if (fsyncPerStore_ && ::fsync(::fileno(file_)) != 0)
        throw std::runtime_error("fsync failed on sweep cache \"" +
                                 path_ + "\"");
}

size_t
SweepCache::size() const
{
    MutexLock lock(mu_);
    return cells_.size();
}

bool
SweepCache::fileExists(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fclose(f);
    return true;
}

std::unique_ptr<SweepCache>
SweepCache::openOrNull(const std::string &path)
{
    try {
        return std::make_unique<SweepCache>(path);
    } catch (const std::exception &e) {
        warn(std::string("sweep cache unavailable (") + e.what() +
             "); running uncached — results are unaffected, but this "
             "run cannot checkpoint or resume");
        return nullptr;
    }
}

} // namespace svard::io
