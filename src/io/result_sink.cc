#include "io/result_sink.h"

#include <bit>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/log.h"
#include "common/rng.h"
#include "io/retry.h"

namespace svard::io {

namespace {

/** Record framing magic ("SVC4" on disk). v2 fixed the on-disk
 *  convention to little-endian regardless of host (v1 records were
 *  host-endian); v3 added the geometry label to every record so
 *  multi-geometry sweeps are attributable; v4 added the temporal
 *  drift axis (model/policy/epochs/guardband identity plus
 *  escape/recalibration metrics). Older records are treated as a
 *  torn tail on load; whole older cache files are loudly rejected by
 *  SweepCache instead. */
constexpr uint32_t kRecordMagic = 0x34435653u;
/** Defensive cap: no serialized cell is remotely this large. */
constexpr uint32_t kMaxPayload = 1u << 20;

std::FILE *
openOrDie(const std::string &path, const char *mode)
{
    std::FILE *f = std::fopen(path.c_str(), mode);
    if (!f)
        SVARD_FATAL("cannot open \"" + path + "\" (mode " + mode + ")");
    return f;
}

/** I/O failures (disk full, revoked quota) must never leave a
 *  silently truncated result table behind a zero exit code. */
[[noreturn]] void
throwWriteError(const std::string &path)
{
    throw std::runtime_error("write failed on \"" + path + "\"");
}

void
checkFlush(std::FILE *f, const std::string &path)
{
    if (std::fflush(f) != 0)
        throwWriteError(path);
}

/** CSV/params fields use ',', '|', '=' as separators; reject rows
 *  that would be unparseable rather than emit a corrupt file. Throws
 *  (not aborts): on a worker/writer thread this must surface through
 *  the engine's error latch like any other sink failure. */
void
checkFieldClean(const std::string &s)
{
    if (s.find_first_of(",|=\n\"") != std::string::npos)
        throw std::runtime_error(
            "result field contains a separator: \"" + s + "\"");
}

uint64_t
payloadChecksum(const std::string &payload)
{
    return HashStream(0xC0DEC0DEC0DEC0DEULL).mix(payload).value();
}

// --- binary payload primitives --------------------------------------
// The on-disk convention is explicitly little-endian: big-endian
// hosts byte-swap on both paths, so caches and checkpoints can move
// between machines. On little-endian hosts the swaps compile away.

constexpr bool kHostBig = std::endian::native == std::endian::big;

inline uint32_t
toLe32(uint32_t v)
{
    return kHostBig ? __builtin_bswap32(v) : v;
}

inline uint64_t
toLe64(uint64_t v)
{
    return kHostBig ? __builtin_bswap64(v) : v;
}

void
putU32(std::string &b, uint32_t v)
{
    v = toLe32(v);
    b.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putU64(std::string &b, uint64_t v)
{
    v = toLe64(v);
    b.append(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putF64(std::string &b, double v)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(b, bits);
}

void
putStr(std::string &b, const std::string &s)
{
    putU32(b, static_cast<uint32_t>(s.size()));
    b.append(s);
}

/** Bounds-checked sequential reader over a payload buffer. */
struct Cursor
{
    const std::string &buf;
    size_t pos = 0;

    bool
    getU32(uint32_t *v)
    {
        if (pos + sizeof(*v) > buf.size())
            return false;
        std::memcpy(v, buf.data() + pos, sizeof(*v));
        *v = toLe32(*v); // on-disk little-endian -> host
        pos += sizeof(*v);
        return true;
    }

    bool
    getU64(uint64_t *v)
    {
        if (pos + sizeof(*v) > buf.size())
            return false;
        std::memcpy(v, buf.data() + pos, sizeof(*v));
        *v = toLe64(*v); // on-disk little-endian -> host
        pos += sizeof(*v);
        return true;
    }

    bool
    getF64(double *v)
    {
        uint64_t bits = 0;
        if (!getU64(&bits))
            return false;
        std::memcpy(v, &bits, sizeof(*v));
        return true;
    }

    bool
    getStr(std::string *s)
    {
        uint32_t len = 0;
        if (!getU32(&len) || pos + len > buf.size())
            return false;
        s->assign(buf, pos, len);
        pos += len;
        return true;
    }
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue; // row fields never contain control chars
        out.push_back(c);
    }
    return out;
}

double
parseDouble(const std::string &s)
{
    return std::strtod(s.c_str(), nullptr);
}

uint64_t
parseU64(const std::string &s)
{
    return std::strtoull(s.c_str(), nullptr, 10);
}

std::vector<std::string>
splitOn(const std::string &line, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (;;) {
        const size_t at = line.find(sep, start);
        if (at == std::string::npos) {
            out.push_back(line.substr(start));
            return out;
        }
        out.push_back(line.substr(start, at - start));
        start = at + 1;
    }
}

} // anonymous namespace

std::string
formatDouble(double v)
{
    // 17 significant digits round-trip IEEE-754 doubles exactly, so
    // text written here parses back to the same bits (the property
    // the resume byte-identity guarantee rests on).
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
formatParams(
    const std::vector<std::pair<std::string, double>> &params)
{
    std::string out;
    for (const auto &[name, value] : params) {
        checkFieldClean(name);
        if (!out.empty())
            out.push_back('|');
        out += name + "=" + formatDouble(value);
    }
    return out;
}

// ------------------------------------------------------------------
// CsvSink
// ------------------------------------------------------------------

const char *
CsvSink::header()
{
    return "coords,seed,fingerprint,geometry,defense,threshold,"
           "provider,mix,drift_model,drift_policy,drift_epochs,"
           "guardband,weighted_speedup,harmonic_speedup,"
           "max_slowdown,norm_weighted_speedup,norm_harmonic_speedup,"
           "norm_max_slowdown,escapes,escape_rate,recalibrations,"
           "recal_cost,params";
}

CsvSink::CsvSink(const std::string &path)
    : path_(path), file_(openOrDie(path, "w"))
{
    if (std::fprintf(file_, "%s\n", header()) < 0)
        throwWriteError(path_);
}

CsvSink::~CsvSink()
{
    if (file_)
        std::fclose(file_);
}

void
CsvSink::write(const engine::CellResult &r)
{
    checkFieldClean(r.geometry);
    checkFieldClean(r.defense);
    checkFieldClean(r.provider);
    checkFieldClean(r.mix);
    checkFieldClean(r.driftModel);
    checkFieldClean(r.driftPolicy);
    // Materialize the row, then one retryable fwrite: a transient
    // failure retries the whole line, never splicing half a row in.
    char coords[96];
    std::snprintf(coords, sizeof(coords),
                  "%u.%u.%u.%u.%u.%u,%" PRIu64 ",%" PRIu64,
                  r.cell.geom, r.cell.defense, r.cell.threshold,
                  r.cell.provider, r.cell.mix, r.cell.drift, r.seed,
                  r.fingerprint);
    std::string row(coords);
    row += "," + r.geometry + "," + r.defense + "," +
           formatDouble(r.threshold) + "," + r.provider + "," + r.mix +
           "," + r.driftModel + "," + r.driftPolicy + "," +
           std::to_string(r.driftEpochs) + "," +
           formatDouble(r.guardband) + "," +
           formatDouble(r.metrics.weightedSpeedup) + "," +
           formatDouble(r.metrics.harmonicSpeedup) + "," +
           formatDouble(r.metrics.maxSlowdown) + "," +
           formatDouble(r.normalized.weightedSpeedup) + "," +
           formatDouble(r.normalized.harmonicSpeedup) + "," +
           formatDouble(r.normalized.maxSlowdown) + "," +
           std::to_string(r.drift.escapes) + "," +
           formatDouble(r.drift.escapeRate) + "," +
           std::to_string(r.drift.recalibrations) + "," +
           formatDouble(r.drift.recalCost) + "," +
           formatParams(r.params) + "\n";
    appendWithRetry(file_, path_, "csv.write", row);
}

void
CsvSink::flush()
{
    checkFlush(file_, path_);
}

std::vector<engine::CellResult>
readCsvResults(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good())
        throw std::runtime_error("cannot read CSV \"" + path + "\"");
    std::vector<engine::CellResult> out;
    std::string s;
    bool first = true;
    // Unbounded line length: the reader must accept any row the
    // writer emitted (param bags make rows arbitrarily long).
    while (std::getline(in, s)) {
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
            s.pop_back();
        if (first) {
            first = false;
            if (s != CsvSink::header())
                throw std::runtime_error(
                    "unexpected CSV header in \"" + path + "\"");
            continue;
        }
        if (s.empty())
            continue;
        const auto fields = splitOn(s, ',');
        if (fields.size() != 23)
            throw std::runtime_error("malformed CSV row in \"" + path +
                                     "\": " + s);
        engine::CellResult r;
        if (std::sscanf(fields[0].c_str(), "%u.%u.%u.%u.%u.%u",
                        &r.cell.geom, &r.cell.defense,
                        &r.cell.threshold, &r.cell.provider,
                        &r.cell.mix, &r.cell.drift) != 6)
            throw std::runtime_error("malformed coords in \"" + path +
                                     "\": " + fields[0]);
        r.seed = parseU64(fields[1]);
        r.fingerprint = parseU64(fields[2]);
        r.geometry = fields[3];
        r.defense = fields[4];
        r.threshold = parseDouble(fields[5]);
        r.provider = fields[6];
        r.mix = fields[7];
        r.driftModel = fields[8];
        r.driftPolicy = fields[9];
        r.driftEpochs = static_cast<uint32_t>(parseU64(fields[10]));
        r.guardband = parseDouble(fields[11]);
        r.metrics.weightedSpeedup = parseDouble(fields[12]);
        r.metrics.harmonicSpeedup = parseDouble(fields[13]);
        r.metrics.maxSlowdown = parseDouble(fields[14]);
        r.normalized.weightedSpeedup = parseDouble(fields[15]);
        r.normalized.harmonicSpeedup = parseDouble(fields[16]);
        r.normalized.maxSlowdown = parseDouble(fields[17]);
        r.drift.escapes = parseU64(fields[18]);
        r.drift.escapeRate = parseDouble(fields[19]);
        r.drift.recalibrations = parseU64(fields[20]);
        r.drift.recalCost = parseDouble(fields[21]);
        if (!fields[22].empty())
            for (const auto &kv : splitOn(fields[22], '|')) {
                const size_t eq = kv.find('=');
                if (eq == std::string::npos)
                    throw std::runtime_error("malformed params in \"" +
                                             path + "\": " + kv);
                r.params.emplace_back(kv.substr(0, eq),
                                      parseDouble(kv.substr(eq + 1)));
            }
        out.push_back(std::move(r));
    }
    return out;
}

// ------------------------------------------------------------------
// JsonlSink
// ------------------------------------------------------------------

JsonlSink::JsonlSink(const std::string &path)
    : path_(path), file_(openOrDie(path, "w"))
{}

JsonlSink::~JsonlSink()
{
    if (file_)
        std::fclose(file_);
}

void
JsonlSink::write(const engine::CellResult &r)
{
    std::string params = "{";
    for (const auto &[name, value] : r.params) {
        if (params.size() > 1)
            params += ",";
        params += "\"" + jsonEscape(name) +
                  "\":" + formatDouble(value);
    }
    params += "}";
    char head[160];
    std::snprintf(head, sizeof(head),
                  "{\"coords\":[%u,%u,%u,%u,%u,%u],\"seed\":%" PRIu64
                  ",\"fingerprint\":%" PRIu64,
                  r.cell.geom, r.cell.defense, r.cell.threshold,
                  r.cell.provider, r.cell.mix, r.cell.drift, r.seed,
                  r.fingerprint);
    std::string line(head);
    line += ",\"geometry\":\"" + jsonEscape(r.geometry) +
            "\",\"defense\":\"" + jsonEscape(r.defense) +
            "\",\"threshold\":" + formatDouble(r.threshold) +
            ",\"provider\":\"" + jsonEscape(r.provider) +
            "\",\"mix\":\"" + jsonEscape(r.mix) +
            "\",\"drift_model\":\"" + jsonEscape(r.driftModel) +
            "\",\"drift_policy\":\"" + jsonEscape(r.driftPolicy) +
            "\",\"drift_epochs\":" + std::to_string(r.driftEpochs) +
            ",\"guardband\":" + formatDouble(r.guardband) +
            ",\"escapes\":" + std::to_string(r.drift.escapes) +
            ",\"escape_rate\":" + formatDouble(r.drift.escapeRate) +
            ",\"recalibrations\":" +
            std::to_string(r.drift.recalibrations) +
            ",\"recal_cost\":" + formatDouble(r.drift.recalCost) +
            ",\"ws\":" + formatDouble(r.metrics.weightedSpeedup) +
            ",\"hs\":" + formatDouble(r.metrics.harmonicSpeedup) +
            ",\"max_slowdown\":" +
            formatDouble(r.metrics.maxSlowdown) +
            ",\"norm_ws\":" +
            formatDouble(r.normalized.weightedSpeedup) +
            ",\"norm_hs\":" +
            formatDouble(r.normalized.harmonicSpeedup) +
            ",\"norm_max_slowdown\":" +
            formatDouble(r.normalized.maxSlowdown) +
            ",\"params\":" + params + "}\n";
    appendWithRetry(file_, path_, "jsonl.write", line);
}

void
JsonlSink::flush()
{
    checkFlush(file_, path_);
}

// ------------------------------------------------------------------
// Binary records
// ------------------------------------------------------------------

std::string
encodeCellResult(const engine::CellResult &r)
{
    std::string b;
    putU32(b, r.cell.geom);
    putU32(b, r.cell.defense);
    putU32(b, r.cell.threshold);
    putU32(b, r.cell.provider);
    putU32(b, r.cell.mix);
    putU64(b, r.seed);
    putU64(b, r.fingerprint);
    putStr(b, r.geometry);
    putStr(b, r.defense);
    putF64(b, r.threshold);
    putStr(b, r.provider);
    putStr(b, r.mix);
    putU32(b, r.cell.drift);
    putStr(b, r.driftModel);
    putStr(b, r.driftPolicy);
    putU32(b, r.driftEpochs);
    putF64(b, r.guardband);
    putU64(b, r.drift.escapes);
    putU64(b, r.drift.recalibrations);
    putF64(b, r.drift.escapeRate);
    putF64(b, r.drift.recalCost);
    putU32(b, static_cast<uint32_t>(r.params.size()));
    for (const auto &[name, value] : r.params) {
        putStr(b, name);
        putF64(b, value);
    }
    putF64(b, r.metrics.weightedSpeedup);
    putF64(b, r.metrics.harmonicSpeedup);
    putF64(b, r.metrics.maxSlowdown);
    putF64(b, r.normalized.weightedSpeedup);
    putF64(b, r.normalized.harmonicSpeedup);
    putF64(b, r.normalized.maxSlowdown);
    return b;
}

bool
decodeCellResult(const std::string &payload, engine::CellResult *out)
{
    Cursor c{payload};
    engine::CellResult r;
    uint32_t nparams = 0;
    if (!c.getU32(&r.cell.geom) || !c.getU32(&r.cell.defense) ||
        !c.getU32(&r.cell.threshold) || !c.getU32(&r.cell.provider) ||
        !c.getU32(&r.cell.mix) || !c.getU64(&r.seed) ||
        !c.getU64(&r.fingerprint) || !c.getStr(&r.geometry) ||
        !c.getStr(&r.defense) ||
        !c.getF64(&r.threshold) || !c.getStr(&r.provider) ||
        !c.getStr(&r.mix) || !c.getU32(&r.cell.drift) ||
        !c.getStr(&r.driftModel) || !c.getStr(&r.driftPolicy) ||
        !c.getU32(&r.driftEpochs) || !c.getF64(&r.guardband) ||
        !c.getU64(&r.drift.escapes) ||
        !c.getU64(&r.drift.recalibrations) ||
        !c.getF64(&r.drift.escapeRate) ||
        !c.getF64(&r.drift.recalCost) || !c.getU32(&nparams))
        return false;
    for (uint32_t i = 0; i < nparams; ++i) {
        std::string name;
        double value = 0.0;
        if (!c.getStr(&name) || !c.getF64(&value))
            return false;
        r.params.emplace_back(std::move(name), value);
    }
    if (!c.getF64(&r.metrics.weightedSpeedup) ||
        !c.getF64(&r.metrics.harmonicSpeedup) ||
        !c.getF64(&r.metrics.maxSlowdown) ||
        !c.getF64(&r.normalized.weightedSpeedup) ||
        !c.getF64(&r.normalized.harmonicSpeedup) ||
        !c.getF64(&r.normalized.maxSlowdown) ||
        c.pos != payload.size())
        return false;
    *out = std::move(r);
    return true;
}

void
appendRecord(std::FILE *f, const engine::CellResult &r,
             const std::string &path, const char *fault_point)
{
    const std::string payload = encodeCellResult(r);
    std::string frame;
    putU32(frame, kRecordMagic);
    putU32(frame, static_cast<uint32_t>(payload.size()));
    putU64(frame, r.seed);
    putU64(frame, r.fingerprint);
    frame += payload;
    putU64(frame, payloadChecksum(payload));
    // One write transaction per record: a kill can truncate the tail
    // record but never interleave two records, and the retry's
    // truncate-back keeps failed attempts out of the file.
    appendWithRetry(f, path, fault_point, frame);
}

std::vector<engine::CellResult>
readRecords(std::FILE *f, RecordReadStats *stats)
{
    // Slurp the rest of the stream: resync needs random access to
    // scan forward for a record magic, and record files are bounded
    // by sweep size (a few MB), not trace size.
    std::string buf;
    char chunk[1 << 16];
    for (size_t n; (n = std::fread(chunk, 1, sizeof(chunk), f)) > 0;)
        buf.append(chunk, n);

    static const char magicBytes[4] = {'S', 'V', 'C', '4'};
    constexpr size_t kHeader = 24, kChecksum = 8;
    std::vector<engine::CellResult> out;
    RecordReadStats st;
    size_t pos = 0;
    while (pos + kHeader <= buf.size()) {
        uint32_t magic = 0, size = 0;
        uint64_t key = 0, fingerprint = 0;
        std::memcpy(&magic, buf.data() + pos, 4);
        std::memcpy(&size, buf.data() + pos + 4, 4);
        std::memcpy(&key, buf.data() + pos + 8, 8);
        std::memcpy(&fingerprint, buf.data() + pos + 16, 8);
        magic = toLe32(magic);
        size = toLe32(size);
        key = toLe64(key);
        fingerprint = toLe64(fingerprint);
        bool ok = magic == kRecordMagic && size <= kMaxPayload &&
                  pos + kHeader + size + kChecksum <= buf.size();
        engine::CellResult r;
        if (ok) {
            const std::string payload(buf, pos + kHeader, size);
            uint64_t checksum = 0;
            std::memcpy(&checksum, buf.data() + pos + kHeader + size,
                        8);
            ok = toLe64(checksum) == payloadChecksum(payload) &&
                 decodeCellResult(payload, &r) && r.seed == key &&
                 r.fingerprint == fingerprint;
        }
        if (ok) {
            out.push_back(std::move(r));
            pos += kHeader + size + kChecksum;
            st.validBytes = pos;
            continue;
        }
        // Corrupt at pos: scan for the next record magic and resume
        // there. No further magic means this is the torn tail — stop,
        // leaving validBytes at the last intact record for the
        // caller's truncation.
        const size_t next =
            buf.find(magicBytes, pos + 1, sizeof(magicBytes));
        if (next == std::string::npos)
            break;
        st.droppedBytes += next - pos;
        st.resyncs++;
        pos = next;
    }
    if (stats)
        *stats = st;
    return out;
}

BinarySink::BinarySink(const std::string &path, bool append)
    : path_(path), file_(openOrDie(path, append ? "ab" : "wb"))
{}

BinarySink::~BinarySink()
{
    if (file_)
        std::fclose(file_);
}

void
BinarySink::write(const engine::CellResult &r)
{
    appendRecord(file_, r, path_, "record.append");
}

void
BinarySink::flush()
{
    checkFlush(file_, path_);
}

std::vector<engine::CellResult>
readBinaryResults(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    auto out = readRecords(f);
    std::fclose(f);
    return out;
}

std::unique_ptr<ResultSink>
makeSinkForPath(const std::string &path)
{
    auto ends_with = [&](const char *suffix) {
        const size_t n = std::strlen(suffix);
        return path.size() >= n &&
               path.compare(path.size() - n, n, suffix) == 0;
    };
    if (ends_with(".jsonl"))
        return std::make_unique<JsonlSink>(path);
    if (ends_with(".bin") || ends_with(".svc"))
        return std::make_unique<BinarySink>(path);
    return std::make_unique<CsvSink>(path);
}

} // namespace svard::io
