#include "io/retry.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <sys/types.h>
#include <unistd.h>

#include "common/log.h"
#include "fault_inject/fault_inject.h"
#include "obs/metrics.h"

namespace svard::io {

namespace {

void
backoffSleep(int attempt)
{
    std::this_thread::sleep_for(
        std::chrono::milliseconds(kIoBackoffMs << (3 * attempt)));
}

/** End-of-file offset via the fd, not ftell: append-mode streams
 *  leave the stdio position indeterminate until the first write. */
off_t
endOffset(std::FILE *f)
{
    std::fflush(f);
    return ::lseek(::fileno(f), 0, SEEK_END);
}

void
truncateBack(std::FILE *f, off_t offset)
{
    std::clearerr(f);
    // Drop any buffered half-write before truncating, or a later
    // fflush would resurrect it past the truncation point.
    std::fflush(f);
    std::clearerr(f);
    if (::ftruncate(::fileno(f), offset) != 0)
        throw std::runtime_error(
            std::string("ftruncate failed during write recovery: ") +
            std::strerror(errno));
    std::fseek(f, 0, SEEK_END);
    std::clearerr(f);
}

} // anonymous namespace

void
appendWithRetry(std::FILE *f, const std::string &path,
                const char *fault_point, const char *data, size_t size)
{
    const off_t start = endOffset(f);
    if (start < 0)
        throw std::runtime_error("cannot locate end of \"" + path +
                                 "\": " + std::strerror(errno));
    for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
        bool ok = false;
        const faults::Hit hit = faults::check(fault_point);
        switch (hit.action) {
        case faults::Action::Eio:
            errno = EIO;
            break;
        case faults::Action::Short:
            std::fwrite(data, 1, size / 2, f);
            errno = ENOSPC;
            break;
        case faults::Action::Torn:
            // Half the bytes reach the OS, then the process dies:
            // the on-disk file ends in a torn record for reload
            // repair paths to chew on.
            std::fwrite(data, 1, size / 2, f);
            std::fflush(f);
            std::_Exit(137);
        default:
            ok = std::fwrite(data, 1, size, f) == size &&
                 std::fflush(f) == 0;
            break;
        }
        if (ok) {
            if (attempt > 0)
                inform("write to \"" + path + "\" succeeded after " +
                       std::to_string(attempt) + " retr" +
                       (attempt == 1 ? "y" : "ies"));
            return;
        }
        const int err = errno;
        static const obs::MetricId retries =
            obs::counter("io.write_retries");
        obs::add(retries);
        truncateBack(f, start);
        if (attempt + 1 < kIoAttempts) {
            warn("transient write failure on \"" + path + "\" (" +
                 std::strerror(err) + "), attempt " +
                 std::to_string(attempt + 1) + "/" +
                 std::to_string(kIoAttempts) + "; backing off");
            backoffSleep(attempt);
        } else {
            throw std::runtime_error(
                "write to \"" + path + "\" failed after " +
                std::to_string(kIoAttempts) +
                " attempts: " + std::strerror(err));
        }
    }
}

void
withBackoff(const char *what, const std::function<void()> &fn)
{
    for (int attempt = 0;; ++attempt) {
        try {
            fn();
            return;
        } catch (const std::exception &e) {
            static const obs::MetricId retries =
                obs::counter("io.op_retries");
            obs::add(retries);
            if (attempt + 1 >= kIoAttempts)
                throw;
            warn(std::string(what) + " failed (" + e.what() +
                 "), attempt " + std::to_string(attempt + 1) + "/" +
                 std::to_string(kIoAttempts) + "; backing off");
            backoffSleep(attempt);
        }
    }
}

} // namespace svard::io
