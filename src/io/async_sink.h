/**
 * @file
 * Asynchronous sink decorator: producers enqueue finished cells into
 * a bounded MPSC queue and a dedicated writer thread drains it into
 * the wrapped sink, so simulation workers never block on file I/O
 * (until the queue fills, at which point writes apply backpressure
 * instead of buffering unboundedly). flush() waits for the queue to
 * drain and then flushes the inner sink; errors raised on the writer
 * thread are rethrown to the producer at the next write()/flush().
 */
#ifndef SVARD_IO_ASYNC_SINK_H
#define SVARD_IO_ASYNC_SINK_H

#include <cstdint>
#include <deque>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "io/result_sink.h"

namespace svard::io {

class AsyncSink : public ResultSink
{
  public:
    explicit AsyncSink(std::unique_ptr<ResultSink> inner,
                       size_t queue_capacity = 256);
    ~AsyncSink() override;

    /** Enqueue a row; blocks while the queue holds `capacity` rows. */
    void write(const engine::CellResult &row) override;

    /** Drain the queue, then flush the wrapped sink. */
    void flush() override;

    /** High-water mark of the queue (tuning/observability). */
    size_t maxDepthSeen() const;

    /** Rows currently queued and not yet handed to the inner sink. */
    size_t queueDepth() const;

    /** Rows written through to the inner sink so far. */
    uint64_t rowsWritten() const;

  private:
    void writerLoop();

    /** Touched by the writer thread lock-free (inner_->write between
     *  pop and re-lock) and by flush() under mu_; the writing_ flag
     *  in the drained_ handshake is what keeps the two exclusive, so
     *  the pointer itself stays un-annotated. */
    std::unique_ptr<ResultSink> inner_;
    const size_t capacity_;

    mutable Mutex mu_;
    CondVar canPush_;
    CondVar canPop_;
    CondVar drained_;
    std::deque<engine::CellResult> queue_ SVARD_GUARDED_BY(mu_);
    bool stop_ SVARD_GUARDED_BY(mu_) = false;
    /** A row is between pop and inner write. */
    bool writing_ SVARD_GUARDED_BY(mu_) = false;
    size_t maxDepth_ SVARD_GUARDED_BY(mu_) = 0;
    uint64_t rowsWritten_ SVARD_GUARDED_BY(mu_) = 0;
    std::exception_ptr error_ SVARD_GUARDED_BY(mu_);

    std::thread writer_;
};

} // namespace svard::io

#endif // SVARD_IO_ASYNC_SINK_H
