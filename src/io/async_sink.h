/**
 * @file
 * Asynchronous sink decorator: producers enqueue finished cells into
 * a bounded MPSC queue and a dedicated writer thread drains it into
 * the wrapped sink, so simulation workers never block on file I/O
 * (until the queue fills, at which point writes apply backpressure
 * instead of buffering unboundedly). flush() waits for the queue to
 * drain and then flushes the inner sink; errors raised on the writer
 * thread are rethrown to the producer at the next write()/flush().
 */
#ifndef SVARD_IO_ASYNC_SINK_H
#define SVARD_IO_ASYNC_SINK_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "io/result_sink.h"

namespace svard::io {

class AsyncSink : public ResultSink
{
  public:
    explicit AsyncSink(std::unique_ptr<ResultSink> inner,
                       size_t queue_capacity = 256);
    ~AsyncSink() override;

    /** Enqueue a row; blocks while the queue holds `capacity` rows. */
    void write(const engine::CellResult &row) override;

    /** Drain the queue, then flush the wrapped sink. */
    void flush() override;

    /** High-water mark of the queue (tuning/observability). */
    size_t maxDepthSeen() const;

    /** Rows currently queued and not yet handed to the inner sink. */
    size_t queueDepth() const;

    /** Rows written through to the inner sink so far. */
    uint64_t rowsWritten() const;

  private:
    void writerLoop();
    void rethrowLocked(std::unique_lock<std::mutex> &lock);

    std::unique_ptr<ResultSink> inner_;
    const size_t capacity_;

    mutable std::mutex mu_;
    std::condition_variable canPush_;
    std::condition_variable canPop_;
    std::condition_variable drained_;
    std::deque<engine::CellResult> queue_;
    bool stop_ = false;
    bool writing_ = false; ///< a row is between pop and inner write
    size_t maxDepth_ = 0;
    uint64_t rowsWritten_ = 0;
    std::exception_ptr error_;

    std::thread writer_;
};

} // namespace svard::io

#endif // SVARD_IO_ASYNC_SINK_H
