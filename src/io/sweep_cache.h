/**
 * @file
 * Per-cell sweep cache / checkpoint. One append-only file of binary
 * records (the BinarySink format) maps (deterministic cell seed,
 * spec fingerprint) -> finished CellResult:
 *
 *  - Before scheduling, the engine looks every cell up; hits skip
 *    execution entirely (a fully cached sweep executes zero cells).
 *  - Workers append each finished cell immediately, so killing a
 *    sweep at any point leaves a valid checkpoint — re-running with
 *    the same cache path resumes with only the missing cells.
 *  - The fingerprint hashes the cell's *resolved* inputs (geometry,
 *    defense name, threshold value, provider, workload, parameter
 *    bag, request count), so editing a spec invalidates exactly the
 *    cells whose inputs changed.
 *
 * Loading tolerates damage anywhere in the file: a truncated or
 * corrupt tail record (what a kill mid-append leaves behind) is
 * dropped; corruption mid-file resyncs onto the next record magic,
 * keeping the intact tail and warning with the dropped byte count.
 * store() is thread-safe; lookup() is const and safe to call
 * concurrently with other lookups (the engine probes before sharding).
 *
 * Durability: store() flushes per record (a crash cannot lose a
 * checkpointed cell to stdio buffering). Set SVARD_CACHE_FSYNC=1 to
 * additionally fsync per record, extending the guarantee to power
 * loss at the cost of store() latency.
 */
#ifndef SVARD_IO_SWEEP_CACHE_H
#define SVARD_IO_SWEEP_CACHE_H

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "engine/sweep.h"

namespace svard::io {

class SweepCache
{
  public:
    /** Open (creating if absent) and load every intact record.
     *  @throws std::runtime_error when the file cannot be opened for
     *          append or a torn tail cannot be repaired. A retired
     *          v1/v2-format file still aborts: silently recomputing
     *          (or truncating) a checkpoint the user thinks is valid
     *          is worse than stopping. */
    explicit SweepCache(const std::string &path);
    ~SweepCache();

    SweepCache(const SweepCache &) = delete;
    SweepCache &operator=(const SweepCache &) = delete;

    /**
     * Fetch a finished cell by (seed, fingerprint). On a hit, copies
     * the cached result into `*out` and returns true.
     */
    bool lookup(uint64_t seed, uint64_t fingerprint,
                engine::CellResult *out) const;

    /** Append a finished cell (thread-safe; flushed per record).
     *  @throws std::runtime_error on I/O failure. */
    void store(const engine::CellResult &row);

    /** Number of distinct cached cells. */
    size_t size() const;

    const std::string &path() const { return path_; }

    static bool fileExists(const std::string &path);

    /**
     * Graceful-degradation open: on failure (unwritable directory,
     * unrepairable file) warn and return nullptr instead of
     * throwing, so callers run uncached rather than die — losing
     * checkpointing is strictly better than losing the run.
     */
    static std::unique_ptr<SweepCache>
    openOrNull(const std::string &path);

  private:
    std::string path_;
    /** Append handle (opened in the ctor, written under mu_). */
    std::FILE *file_ SVARD_GUARDED_BY(mu_) = nullptr;
    bool fsyncPerStore_ = false; ///< SVARD_CACHE_FSYNC=1
    mutable Mutex mu_;
    std::map<std::pair<uint64_t, uint64_t>, engine::CellResult>
        cells_ SVARD_GUARDED_BY(mu_);
};

} // namespace svard::io

#endif // SVARD_IO_SWEEP_CACHE_H
