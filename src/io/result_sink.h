/**
 * @file
 * Streaming result sinks for experiment sweeps. The engine emits each
 * finished CellResult to a ResultSink in final enumeration order, so
 * paper-scale grids can be tailed, checkpointed, and resumed instead
 * of materializing in memory until the last cell lands.
 *
 * Three on-disk formats share one row model:
 *  - CsvSink: human/tool-friendly, one row per cell. Doubles are
 *    printed with 17 significant digits, so text -> double recovers
 *    the exact bits and a resumed sweep's CSV is byte-identical to an
 *    uninterrupted run's.
 *  - JsonlSink: one JSON object per line (ingestion pipelines).
 *  - BinarySink: length-prefixed, checksummed records — the
 *    checkpoint format. A file of records doubles as a SweepCache, so
 *    "checkpoint" and "cache" are the same artifact.
 *
 * Sinks are NOT thread-safe: the engine serializes emission through
 * its ordered emitter; wrap a sink in AsyncSink to move the file I/O
 * off the worker threads.
 */
#ifndef SVARD_IO_RESULT_SINK_H
#define SVARD_IO_RESULT_SINK_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "engine/sweep.h"

namespace svard::io {

/** Row-at-a-time consumer of finished sweep cells. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /**
     * Emit one finished cell (calls arrive in final table order).
     * @throws std::runtime_error on I/O failure (e.g. disk full) —
     *         silent truncation of a result table is never OK.
     */
    virtual void write(const engine::CellResult &row) = 0;

    /** Make everything written so far durable/visible.
     *  @throws std::runtime_error on I/O failure. */
    virtual void flush() {}
};

// ------------------------------------------------------------------
// Text formats
// ------------------------------------------------------------------

class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(const std::string &path);
    ~CsvSink() override;

    void write(const engine::CellResult &row) override;
    void flush() override;

    /** The header line (no newline); also what the reader expects. */
    static const char *header();

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
};

class JsonlSink : public ResultSink
{
  public:
    explicit JsonlSink(const std::string &path);
    ~JsonlSink() override;

    void write(const engine::CellResult &row) override;
    void flush() override;

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
};

// ------------------------------------------------------------------
// Binary record format (checkpoint / cache)
// ------------------------------------------------------------------

class BinarySink : public ResultSink
{
  public:
    /** `append` continues an existing checkpoint instead of truncating. */
    explicit BinarySink(const std::string &path, bool append = false);
    ~BinarySink() override;

    void write(const engine::CellResult &row) override;
    void flush() override;

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
};

/** Serialize one CellResult into the binary payload. The on-disk
 *  layout is explicitly little-endian (format "SVC4"); big-endian
 *  hosts byte-swap on encode/decode, so cache and checkpoint files
 *  are portable between machines. */
std::string encodeCellResult(const engine::CellResult &row);

/** Inverse of encodeCellResult; false on malformed payload. */
bool decodeCellResult(const std::string &payload,
                      engine::CellResult *out);

/**
 * Append one framed record (magic, length, key, checksum) to `f`,
 * retrying transient failures with the truncate-back transaction in
 * retry.h. `fault_point` names the injection point consulted per
 * write attempt (tests drive eio/short/torn through it).
 * @throws std::runtime_error after the retry budget is exhausted.
 */
void appendRecord(std::FILE *f, const engine::CellResult &row,
                  const std::string &path,
                  const char *fault_point = "record.append");

/** What readRecords saw besides the records themselves. */
struct RecordReadStats
{
    /** Offset just past the last intact record (SweepCache truncates
     *  a torn tail there before appending, or new records would hide
     *  behind the garbage). */
    uint64_t validBytes = 0;
    /** Mid-file bytes skipped to reach a later intact record. */
    uint64_t droppedBytes = 0;
    /** Corrupt regions skipped (resyncs onto a later record magic). */
    uint32_t resyncs = 0;
};

/**
 * Read every intact record from `f` (from its current position).
 * A corrupt record mid-file no longer hides everything after it: the
 * reader scans forward for the next record magic, resumes there, and
 * reports what it skipped in `stats`. Bytes after the last intact
 * record (the torn tail a kill mid-write leaves) are excluded from
 * validBytes but not counted as dropped — tail truncation is routine
 * crash recovery, mid-file damage is worth a warning.
 */
std::vector<engine::CellResult>
readRecords(std::FILE *f, RecordReadStats *stats = nullptr);

// ------------------------------------------------------------------
// Whole-file readers + helpers
// ------------------------------------------------------------------

/** Load a CsvSink file. @throws std::runtime_error on malformed input. */
std::vector<engine::CellResult>
readCsvResults(const std::string &path);

/** Load a BinarySink/SweepCache file (empty if absent/unreadable). */
std::vector<engine::CellResult>
readBinaryResults(const std::string &path);

/**
 * Sink for a path by extension: ".jsonl" -> JsonlSink, ".bin"/".svc"
 * -> BinarySink, anything else -> CsvSink.
 */
std::unique_ptr<ResultSink> makeSinkForPath(const std::string &path);

/** Exact-round-trip double formatting (17 significant digits). */
std::string formatDouble(double v);

/** "name=value|name=value" encoding of a cell's parameter bag. */
std::string
formatParams(const std::vector<std::pair<std::string, double>> &params);

} // namespace svard::io

#endif // SVARD_IO_RESULT_SINK_H
