#include "io/async_sink.h"

#include <algorithm>
#include <chrono>

#include <stdexcept>

#include "common/log.h"
#include "fault_inject/fault_inject.h"
#include "io/retry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace svard::io {
namespace {

obs::MetricId
queueHighWaterGauge()
{
    static const obs::MetricId id =
        obs::gauge("io.sink_queue_high_water");
    return id;
}

obs::MetricId
rowsWrittenCounter()
{
    static const obs::MetricId id = obs::counter("io.sink_rows_written");
    return id;
}

obs::MetricId
flushLatencyHistogram()
{
    static const obs::MetricId id =
        obs::histogram("io.sink_flush_us");
    return id;
}

} // namespace

AsyncSink::AsyncSink(std::unique_ptr<ResultSink> inner,
                     size_t queue_capacity)
    : inner_(std::move(inner)),
      capacity_(std::max<size_t>(1, queue_capacity))
{
    SVARD_ASSERT(inner_ != nullptr, "AsyncSink needs an inner sink");
    writer_ = std::thread([this] { writerLoop(); });
}

AsyncSink::~AsyncSink()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    canPop_.notify_all();
    writer_.join();
    // Best-effort final flush; destructors must not throw.
    try {
        inner_->flush();
    } catch (...) {
    }
}

void
AsyncSink::write(const engine::CellResult &row)
{
    std::exception_ptr err;
    {
        UniqueLock lock(mu_);
        while (queue_.size() >= capacity_ && !error_)
            canPush_.wait(lock);
        if (error_) {
            err = error_;
        } else {
            queue_.push_back(row);
            maxDepth_ = std::max(maxDepth_, queue_.size());
            obs::gaugeMax(queueHighWaterGauge(), maxDepth_);
        }
    }
    if (err)
        std::rethrow_exception(err);
    canPop_.notify_one();
}

void
AsyncSink::flush()
{
    obs::Span span("io", "async_flush");
    const auto start = std::chrono::steady_clock::now();
    std::exception_ptr err;
    {
        UniqueLock lock(mu_);
        span.arg("queued", static_cast<uint64_t>(queue_.size()));
        while (!(queue_.empty() && !writing_) && !error_)
            drained_.wait(lock);
        if (error_) {
            err = error_;
        } else {
            // Keep the lock across the inner flush: releasing it
            // would let a concurrent producer wake the writer into
            // inner_->write() while we are inside inner_->flush() — a
            // data race on the inner sink, which is promised
            // single-threaded access.
            inner_->flush();
        }
    }
    if (err)
        std::rethrow_exception(err);
    obs::observe(flushLatencyHistogram(),
                 static_cast<uint64_t>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count()));
}

size_t
AsyncSink::maxDepthSeen() const
{
    MutexLock lock(mu_);
    return maxDepth_;
}

size_t
AsyncSink::queueDepth() const
{
    MutexLock lock(mu_);
    return queue_.size() + (writing_ ? 1 : 0);
}

uint64_t
AsyncSink::rowsWritten() const
{
    MutexLock lock(mu_);
    return rowsWritten_;
}

void
AsyncSink::writerLoop()
{
    for (;;) {
        engine::CellResult row;
        {
            UniqueLock lock(mu_);
            while (!stop_ && queue_.empty())
                canPop_.wait(lock);
            if (queue_.empty()) {
                // stop_ and drained: exit after the last row is
                // written.
                return;
            }
            row = std::move(queue_.front());
            queue_.pop_front();
            writing_ = true;
        }
        canPush_.notify_one();

        std::exception_ptr werr;
        try {
            // Bounded retry before latching: one transient inner-sink
            // failure used to abort the whole sweep; now only a
            // persistent one does. Inner file sinks also retry at the
            // fwrite level, so this layer mainly covers wrapped sinks
            // with non-transactional failure modes.
            withBackoff("async sink write", [&] {
                if (faults::check("sink.write"))
                    throw std::runtime_error(
                        "injected fault at sink.write");
                inner_->write(row);
            });
        } catch (...) {
            werr = std::current_exception();
        }
        if (!werr)
            obs::add(rowsWrittenCounter());

        UniqueLock lock(mu_);
        writing_ = false;
        if (werr) {
            error_ = werr;
            queue_.clear(); // unblock producers; rows are lost anyway
            lock.unlock();
            canPush_.notify_all();
            drained_.notify_all();
            return;
        }
        ++rowsWritten_;
        if (queue_.empty())
            drained_.notify_all();
    }
}

} // namespace svard::io
