/**
 * @file
 * Sparse content store for a DRAM row. Characterization initializes
 * whole rows to repeating data-pattern bytes (Table 2) and then counts
 * bit errors, so a row is represented as a fill byte plus an exception
 * store for the places that differ (bitflips, partial writes). This
 * keeps a 128K-row x 8KB bank affordable while staying bit-exact.
 *
 * Exceptions are kept at uint64 *word* granularity as XOR-deltas
 * against the repeating fill word in a structure-of-arrays table
 * (`WordTable`, word index -> delta). A delta of zero means "equals
 * the fill", so probes and inserts share one code path and bit flips
 * are a single XOR on the delta. WordTable pins dead slots to value
 * 0, which lets mismatchedBits() run the simd::xorPopcountBase kernel
 * over the table's ENTIRE value array — liveness falls out as an
 * arithmetic identity (dead slots contribute popcount(base) each,
 * subtracted back in one multiply) instead of a per-slot branch.
 */
#ifndef SVARD_DRAM_ROWDATA_H
#define SVARD_DRAM_ROWDATA_H

#include <bit>
#include <cstdint>
#include <vector>

#include "common/simd.h"
#include "common/word_table.h"

namespace svard::dram {

/** Content of one DRAM row: fill byte + sparse word-level exceptions. */
class RowData
{
  public:
    /** Empty placeholder (what a FlatTable slot default-constructs). */
    RowData() = default;

    explicit RowData(uint32_t bytes, uint8_t fill = 0x00)
        : bytes_(bytes), fill_(fill)
    {}

    uint32_t sizeBytes() const { return bytes_; }
    uint32_t sizeBits() const { return bytes_ * 8; }
    uint8_t fill() const { return fill_; }

    /** Overwrite the whole row with a repeating fill byte. */
    void
    setFill(uint8_t fill)
    {
        fill_ = fill;
        deltas_.clear();
    }

    uint8_t
    readByte(uint32_t index) const
    {
        const uint64_t *d = deltas_.find(index >> 3);
        if (d == nullptr)
            return fill_;
        return fill_ ^ static_cast<uint8_t>(*d >> ((index & 7) * 8));
    }

    void
    writeByte(uint32_t index, uint8_t value)
    {
        const int shift = static_cast<int>(index & 7) * 8;
        const uint64_t byte_mask = 0xFFull << shift;
        const uint64_t delta_byte =
            static_cast<uint64_t>(uint8_t(value ^ fill_)) << shift;
        uint64_t &d = deltas_.refOrInsert(index >> 3);
        d = (d & ~byte_mask) | delta_byte;
        if (d == 0)
            deltas_.erase(index >> 3);
    }

    bool
    bitAt(uint32_t bit_index) const
    {
        const uint64_t *d = deltas_.find(bit_index >> 6);
        const uint64_t word =
            fillWord() ^ (d == nullptr ? uint64_t(0) : *d);
        return (word >> (bit_index & 63)) & 1;
    }

    void
    flipBit(uint32_t bit_index)
    {
        uint64_t &d = deltas_.refOrInsert(bit_index >> 6);
        d ^= uint64_t(1) << (bit_index & 63);
        if (d == 0)
            deltas_.erase(bit_index >> 6);
    }

    /**
     * Flip the bit only if it currently stores `expected`; returns
     * whether it flipped. One table probe instead of the bitAt +
     * flipBit pair the fault-injection loop would otherwise do.
     */
    bool
    flipBitIf(uint32_t bit_index, bool expected)
    {
        const uint64_t mask = uint64_t(1) << (bit_index & 63);
        uint64_t *d = deltas_.find(bit_index >> 6);
        const uint64_t delta = d == nullptr ? 0 : *d;
        const bool bit = ((fillWord() ^ delta) & mask) != 0;
        if (bit != expected)
            return false;
        if (d == nullptr) {
            deltas_.refOrInsert(bit_index >> 6) = mask;
        } else {
            *d ^= mask;
            if (*d == 0)
                deltas_.erase(bit_index >> 6);
        }
        return true;
    }

    /**
     * XOR-delta of 64-bit word `w` against the repeating fill word
     * (0 when the word equals the fill). Word-granular staging access
     * for DramDevice::realize()'s batched flip application.
     */
    uint64_t
    deltaWord(uint32_t w) const
    {
        const uint64_t *d = deltas_.find(w);
        return d == nullptr ? 0 : *d;
    }

    /** Overwrite word `w`'s delta outright (a zero delta erases). */
    void
    setDeltaWord(uint32_t w, uint64_t d)
    {
        if (d == 0) {
            deltas_.erase(w);
            return;
        }
        deltas_.refOrInsert(w) = d;
    }

    /** The fill byte repeated across a 64-bit word. */
    uint64_t fillWord() const { return repeatByte(fill_); }

    /** Number of bits that differ from a repeating expected fill byte. */
    uint64_t
    mismatchedBits(uint8_t expected_fill) const
    {
        // Whole-word popcounts: every word mismatches in
        // popcount(base ^ delta) bits, where base = fill ^ expected
        // repeated and delta is zero outside the exception store. The
        // final word of a non-multiple-of-8 row is masked to length.
        const uint64_t base =
            fillWord() ^ repeatByte(expected_fill);
        const uint32_t n_words = numWords();
        const uint64_t tail = tailMask();
        const uint64_t base_pc =
            static_cast<uint64_t>(std::popcount(base));
        uint64_t count =
            base_pc * (n_words - (tail == ~uint64_t(0) ? 0 : 1));
        if (tail != ~uint64_t(0))
            count += std::popcount(base & tail);
        // Per-delta correction, sum over live entries of
        // popcount(base ^ d) - popcount(base) — computed as ONE dense
        // vector pass over the whole value array: dead slots hold 0
        // by WordTable invariant, so they contribute popcount(base)
        // each, and capacity * popcount(base) subtracts every slot's
        // base term in one multiply. Intermediate terms may wrap; the
        // uint64 arithmetic is modular and the final count is exact.
        const size_t cap = deltas_.capacity();
        count += simd::xorPopcountBase(deltas_.valsData(), cap, base);
        count -= base_pc * cap;
        // The tail word was corrected as if full-width above; redo it
        // masked. At most one scalar probe, skipped for 8B-multiple
        // rows (every standard geometry — rowBytes is a power of two).
        if (tail != ~uint64_t(0)) {
            const uint64_t *d = deltas_.find(n_words - 1);
            if (d != nullptr) {
                count -= std::popcount(base ^ *d);
                count += std::popcount((base ^ *d) & tail);
                count += base_pc;
                count -= std::popcount(base & tail);
            }
        }
        return count;
    }

    /** Number of bytes currently differing from the fill byte. */
    size_t
    exceptionCount() const
    {
        size_t bytes = 0;
        deltas_.forEach([&](uint32_t, uint64_t d) {
            for (int b = 0; b < 8; ++b)
                if ((d >> (b * 8)) & 0xFF)
                    ++bytes;
        });
        return bytes;
    }

    /** Copy full content into a byte vector (tests, RowClone). */
    std::vector<uint8_t>
    toBytes() const
    {
        std::vector<uint8_t> out(bytes_, fill_);
        deltas_.forEach([&](uint32_t w, uint64_t d) {
            const uint32_t base = w * 8;
            for (uint32_t b = 0; b < 8 && base + b < bytes_; ++b)
                out[base + b] ^= static_cast<uint8_t>(d >> (b * 8));
        });
        return out;
    }

    bool
    operator==(const RowData &o) const
    {
        if (bytes_ != o.bytes_)
            return false;
        for (uint32_t i = 0; i < bytes_; ++i)
            if (readByte(i) != o.readByte(i))
                return false;
        return true;
    }

  private:
    static uint64_t
    repeatByte(uint8_t b)
    {
        return uint64_t(b) * 0x0101010101010101ULL;
    }

    uint32_t numWords() const { return (bytes_ + 7) / 8; }

    /** Valid-bit mask of the final word (all-ones for full words). */
    uint64_t
    tailMask() const
    {
        const uint32_t rem = bytes_ & 7;
        return rem == 0 ? ~uint64_t(0)
                        : (uint64_t(1) << (rem * 8)) - 1;
    }

    uint32_t bytes_ = 0;
    uint8_t fill_ = 0;
    WordTable deltas_{16};
};

} // namespace svard::dram

#endif // SVARD_DRAM_ROWDATA_H
