/**
 * @file
 * Sparse content store for a DRAM row. Characterization initializes
 * whole rows to repeating data-pattern bytes (Table 2) and then counts
 * bit errors, so a row is represented as a fill byte plus an exception
 * map for the few bytes that differ (bitflips, partial writes). This
 * keeps a 128K-row x 8KB bank affordable while staying bit-exact.
 */
#ifndef SVARD_DRAM_ROWDATA_H
#define SVARD_DRAM_ROWDATA_H

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace svard::dram {

/** Content of one DRAM row: fill byte + sparse byte exceptions. */
class RowData
{
  public:
    explicit RowData(uint32_t bytes, uint8_t fill = 0x00)
        : bytes_(bytes), fill_(fill)
    {}

    uint32_t sizeBytes() const { return bytes_; }
    uint32_t sizeBits() const { return bytes_ * 8; }
    uint8_t fill() const { return fill_; }

    /** Overwrite the whole row with a repeating fill byte. */
    void
    setFill(uint8_t fill)
    {
        fill_ = fill;
        exceptions_.clear();
    }

    uint8_t
    readByte(uint32_t index) const
    {
        auto it = exceptions_.find(index);
        return it == exceptions_.end() ? fill_ : it->second;
    }

    void
    writeByte(uint32_t index, uint8_t value)
    {
        if (value == fill_)
            exceptions_.erase(index);
        else
            exceptions_[index] = value;
    }

    bool
    bitAt(uint32_t bit_index) const
    {
        return (readByte(bit_index >> 3) >> (bit_index & 7)) & 1;
    }

    void
    flipBit(uint32_t bit_index)
    {
        const uint32_t byte = bit_index >> 3;
        writeByte(byte, readByte(byte) ^ (1u << (bit_index & 7)));
    }

    /** Number of bits that differ from a repeating expected fill byte. */
    uint64_t
    mismatchedBits(uint8_t expected_fill) const
    {
        uint64_t count = 0;
        if (fill_ != expected_fill) {
            // All non-exception bytes mismatch in popcount(fill ^ exp).
            count += static_cast<uint64_t>(
                         std::popcount(uint8_t(fill_ ^ expected_fill))) *
                     (bytes_ - exceptions_.size());
        }
        for (const auto &[idx, val] : exceptions_)
            count += std::popcount(uint8_t(val ^ expected_fill));
        return count;
    }

    /** Number of bytes currently differing from the fill byte. */
    size_t exceptionCount() const { return exceptions_.size(); }

    /** Copy full content into a byte vector (tests, RowClone). */
    std::vector<uint8_t>
    toBytes() const
    {
        std::vector<uint8_t> out(bytes_, fill_);
        for (const auto &[idx, val] : exceptions_)
            out[idx] = val;
        return out;
    }

    bool
    operator==(const RowData &o) const
    {
        if (bytes_ != o.bytes_)
            return false;
        for (uint32_t i = 0; i < bytes_; ++i)
            if (readByte(i) != o.readByte(i))
                return false;
        return true;
    }

  private:
    uint32_t bytes_;
    uint8_t fill_;
    std::unordered_map<uint32_t, uint8_t> exceptions_;
};

} // namespace svard::dram

#endif // SVARD_DRAM_ROWDATA_H
