#include "dram/subarray.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"

namespace svard::dram {

SubarrayMap::SubarrayMap(const ModuleSpec &spec)
    : rows_(spec.rowsPerBank)
{
    Rng rng(hashSeed({spec.seed, 0x5AB0A77A11ULL}));
    uint32_t base = 0;
    while (base < rows_) {
        const int jitter = static_cast<int>(
            rng.range(-spec.subarrayRowsJitter, spec.subarrayRowsJitter));
        int size = spec.subarrayRowsMean + jitter;
        if (size < 330)
            size = 330;
        if (size > 1027)
            size = 1027;
        if (base + static_cast<uint32_t>(size) > rows_)
            size = static_cast<int>(rows_ - base);
        bases_.push_back(base);
        sizes_.push_back(static_cast<uint32_t>(size));
        base += static_cast<uint32_t>(size);
    }
    // A short remainder would create an implausibly small subarray;
    // fold it into its predecessor instead.
    if (sizes_.size() >= 2 && sizes_.back() < 330) {
        sizes_[sizes_.size() - 2] += sizes_.back();
        sizes_.pop_back();
        bases_.pop_back();
    }
    SVARD_ASSERT(base == rows_, "subarray map does not cover the bank");
}

SubarrayLocation
SubarrayMap::locate(uint32_t phys_row) const
{
    SVARD_ASSERT(phys_row < rows_, "row out of range in subarray map");
    // bases_ is sorted; find the last base <= phys_row.
    auto it = std::upper_bound(bases_.begin(), bases_.end(), phys_row);
    const uint32_t sa = static_cast<uint32_t>(it - bases_.begin()) - 1;
    return {sa, phys_row - bases_[sa], sizes_[sa]};
}

bool
SubarrayMap::sameSubarray(uint32_t row_a, uint32_t row_b) const
{
    return locate(row_a).subarray == locate(row_b).subarray;
}

std::vector<uint32_t>
SubarrayMap::disturbedNeighbors(uint32_t phys_row) const
{
    uint32_t buf[2];
    const uint32_t n = disturbedNeighbors(phys_row, buf);
    return std::vector<uint32_t>(buf, buf + n);
}

uint32_t
SubarrayMap::disturbedNeighbors(uint32_t phys_row, uint32_t out[2]) const
{
    const SubarrayLocation loc = locate(phys_row);
    uint32_t n = 0;
    if (!loc.isLowEdge())
        out[n++] = phys_row - 1;
    if (!loc.isHighEdge())
        out[n++] = phys_row + 1;
    return n;
}

} // namespace svard::dram
