/**
 * @file
 * Database of the 15 DDR4 modules the paper characterizes (Table 1 and
 * Table 5), together with the calibration parameters our fault model
 * uses to reproduce each module's published read-disturbance behaviour
 * (Figs. 3-7, Table 3, Table 5).
 */
#ifndef SVARD_DRAM_MODULE_SPEC_H
#define SVARD_DRAM_MODULE_SPEC_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace svard::dram {

/** DRAM chip manufacturer (anonymized as H/M/S in the paper's labels). */
enum class Vendor : uint8_t { SKHynix, Micron, Samsung };

const char *vendorName(Vendor v);
/** Single-letter prefix used in module labels ('H', 'M', 'S'). */
char vendorLetter(Vendor v);

/**
 * A spatial feature whose bit correlates with HC_first in a module
 * (paper Table 3). The fault model injects these correlations for the
 * four Samsung modules the paper reports; the characterization-side F1
 * analysis must then rediscover them.
 */
struct FeatureEffect
{
    enum class Kind : uint8_t { BankAddr, RowAddr, SubarrayAddr, Distance };
    Kind kind;
    int bit;           ///< bit position within the feature's binary value
    double strength;   ///< shift applied to ln(HC_first) when bit is set
};

const char *featureKindName(FeatureEffect::Kind k);

/**
 * Full description of one tested module: identity (Table 5 columns),
 * geometry, and fault-model calibration targets.
 */
struct ModuleSpec
{
    // --- identity (paper Tables 1 and 5) ---
    std::string label;        ///< e.g. "H0"
    Vendor vendor;
    std::string moduleId;     ///< vendor module part number
    std::string chipId;       ///< DRAM chip part number
    int dataRateMts;          ///< interface speed (MT/s)
    std::string mfrDate;      ///< ww-yy, "N/A" if unknown
    int densityGb;            ///< per-chip density
    std::string dieRev;       ///< die revision letter
    int orgWidth;             ///< x4 / x8 / x16

    // --- geometry ---
    uint32_t rowsPerBank;     ///< rows in each bank (Table 5)
    uint32_t banks = 16;      ///< 4 bank groups x 4 banks (DDR4)
    uint32_t bankGroups = 4;
    uint32_t rowBytes = 8192; ///< rank-level row size (paper Sec. 6.4)

    // --- HC_first calibration (Table 5, in hammers; K = 2^10) ---
    int64_t hcFirstMin;
    int64_t hcFirstAvg;
    int64_t hcFirstMax;

    // --- BER calibration at HC=128K, tAggOn=36ns (Fig. 3) ---
    double berMean;           ///< mean fraction of flipped cells per row
    double berCvPct;          ///< coefficient of variation across rows (%)

    // --- spatial BER structure (Fig. 4) ---
    double berSpatialAmp;     ///< amplitude of the periodic component
    int berSpatialPeriods;    ///< periods across the bank
    double chunkLo = 0.0;     ///< elevated-chunk begin (relative location)
    double chunkHi = 0.0;     ///< elevated-chunk end; == begin -> no chunk
    double chunkAmp = 0.0;    ///< extra BER factor inside the chunk

    // --- RowPress calibration (Fig. 7) ---
    double pressExponent;     ///< actWeight ~ (tAggOn/tRAS)^pressExponent

    // --- Table 3 correlations (empty for 11 of 15 modules) ---
    // The first effect is the module's *primary* weakness cause: its
    // strength is the full ln-separation of a bimodal HC_first
    // distribution. Later effects add smaller shifts. Correlated
    // geometric bits (e.g. row-address bits aliasing the subarray
    // index) then also score high in the F1 analysis, which is how a
    // single physical cause yields several Table 3 rows.
    std::vector<FeatureEffect> featureEffects;

    // --- subarray structure (Sec. 5.4.1: 330..1027 rows, 32..206/bank) ---
    int subarrayRowsMean;
    int subarrayRowsJitter;   ///< +/- uniform jitter on each size

    // --- in-DRAM logical->physical row scrambling scheme id ---
    int rowMappingScheme;

    uint64_t seed;            ///< master seed for this module's model

    /** Residual ln-spread override when featureEffects drive the
     *  distribution (0 = derive from the min/max span). */
    double hcSigmaOverride = 0.0;

    /**
     * Explicit center (in hammers) of the strong population for
     * bimodal modules whose weak population clips at the module
     * minimum; 0 = derive the center from hcFirstAvg via the cosh
     * correction. Placing the center mid-quantization-band keeps the
     * measured HC_first classes stable under small severity error.
     */
    double hcBimodalHighCenter = 0.0;

    /** Spread of ln(HC_first) across rows: the override when set,
     *  otherwise derived from the min/max span. */
    double hcSigma() const;
};

/** All 15 modules of Table 5, in paper order (H0..H4, M0..M4, S0..S4). */
const std::vector<ModuleSpec> &allModules();

/** Lookup by label; fatal error if unknown. */
const ModuleSpec &moduleByLabel(std::string_view label);

/** The three representative modules used for Svärd profiles (Sec. 7). */
inline const ModuleSpec &profileH1() { return moduleByLabel("H1"); }
inline const ModuleSpec &profileM0() { return moduleByLabel("M0"); }
inline const ModuleSpec &profileS0() { return moduleByLabel("S0"); }

/** The 14 hammer counts Alg. 1 tests, ascending (1K..128K, K=2^10). */
const std::vector<int64_t> &testedHammerCounts();

} // namespace svard::dram

#endif // SVARD_DRAM_MODULE_SPEC_H
