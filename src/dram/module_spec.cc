#include "dram/module_spec.h"

#include <cmath>

#include "common/log.h"

namespace svard::dram {

const char *
vendorName(Vendor v)
{
    switch (v) {
      case Vendor::SKHynix: return "SK Hynix";
      case Vendor::Micron: return "Micron";
      case Vendor::Samsung: return "Samsung";
    }
    return "?";
}

char
vendorLetter(Vendor v)
{
    switch (v) {
      case Vendor::SKHynix: return 'H';
      case Vendor::Micron: return 'M';
      case Vendor::Samsung: return 'S';
    }
    return '?';
}

const char *
featureKindName(FeatureEffect::Kind k)
{
    switch (k) {
      case FeatureEffect::Kind::BankAddr: return "Ba";
      case FeatureEffect::Kind::RowAddr: return "Ro";
      case FeatureEffect::Kind::SubarrayAddr: return "Sa";
      case FeatureEffect::Kind::Distance: return "Dist";
    }
    return "?";
}

double
ModuleSpec::hcSigma() const
{
    if (hcSigmaOverride > 0.0)
        return hcSigmaOverride;
    // Spread chosen so the clipped lognormal spans roughly the
    // [min, max] range of Table 5; clipping produces the boundary
    // masses visible in Fig. 5.
    const double span =
        std::log(static_cast<double>(hcFirstMax) /
                 static_cast<double>(hcFirstMin));
    double sigma = span / 5.2;
    if (sigma < 0.18)
        sigma = 0.18;
    if (sigma > 0.45)
        sigma = 0.45;
    return sigma;
}

namespace {

constexpr int64_t K = 1024; // the paper's K is 2^10 (footnote 7)

using FE = FeatureEffect;
using FK = FeatureEffect::Kind;

std::vector<ModuleSpec>
buildModules()
{
    std::vector<ModuleSpec> mods;

    auto add = [&](ModuleSpec m) { mods.push_back(std::move(m)); };

    // ------------------------- SK Hynix -------------------------
    add({"H0", Vendor::SKHynix, "HMAA4GU6AJR8N-XN", "H5ANAG8NAJR-XN",
         3200, "51-20", 16, "A", 8,
         128 * 1024, 16, 4, 8192,
         16 * K, int64_t(46.2 * K), 96 * K,
         2.0e-2, 3.36,
         0.085, 8, 0.0, 0.0, 0.0,
         0.55, {}, 1024, 140, 1, 0xA001});
    add({"H1", Vendor::SKHynix, "HMAA4GU7CJR8N-XN", "H5ANAG8NCJR-XN",
         3200, "51-20", 16, "C", 8,
         128 * 1024, 16, 4, 8192,
         12 * K, int64_t(54.0 * K), 128 * K,
         3.2e-2, 2.25,
         0.060, 8, 0.0, 0.0, 0.0,
         0.55, {}, 1024, 140, 1, 0xA002});
    add({"H2", Vendor::SKHynix, "HMAA4GU7CJR8N-XN", "H5ANAG8NCJR-XN",
         3200, "36-21", 16, "C", 8,
         128 * 1024, 16, 4, 8192,
         12 * K, int64_t(55.4 * K), 128 * K,
         3.2e-2, 2.43,
         0.065, 8, 0.0, 0.0, 0.0,
         0.57, {}, 1024, 140, 1, 0xA003});
    add({"H3", Vendor::SKHynix, "HMAA4GU7CJR8N-XN", "H5ANAG8NCJR-XN",
         3200, "36-21", 16, "C", 8,
         128 * 1024, 16, 4, 8192,
         12 * K, int64_t(57.8 * K), 128 * K,
         3.2e-2, 1.99,
         0.055, 8, 0.0, 0.0, 0.0,
         0.55, {}, 1024, 140, 1, 0xA004});
    add({"H4", Vendor::SKHynix, "KSM32RD8/16HDR", "H5AN8G8NDJR-XNC",
         3200, "48-20", 8, "D", 8,
         64 * 1024, 16, 4, 8192,
         16 * K, int64_t(38.1 * K), 96 * K,
         2.2e-2, 2.50,
         0.070, 6, 0.0, 0.0, 0.0,
         0.52, {}, 512, 90, 1, 0xA005});

    // ------------------------- Micron ---------------------------
    add({"M0", Vendor::Micron, "MTA4ATF1G64HZ-3G2E1", "MT40A1G16KD-062E",
         3200, "46-20", 16, "E", 16,
         128 * 1024, 16, 4, 8192,
         8 * K, int64_t(24.5 * K), 40 * K,
         1.70e-2, 0.80,
         0.020, 2, 0.0, 0.0, 0.0,
         0.60, {}, 832, 120, 0, 0xB001});
    add({"M1", Vendor::Micron, "MTA18ASF2G72PZ-2G3B1QK", "MT40A2G4WE-083E:B",
         2400, "N/A", 8, "B", 4,
         128 * 1024, 16, 4, 8192,
         40 * K, int64_t(64.5 * K), 96 * K,
         6.0e-4, 8.08,
         0.150, 5, 0.03, 0.12, 0.25,
         0.50, {}, 832, 120, 0, 0xB002});
    add({"M2", Vendor::Micron, "MTA36ASF8G72PZ-2G9E1TI", "MT40A4G4JC-062E:E",
         2933, "14-20", 16, "E", 4,
         128 * 1024, 16, 4, 8192,
         8 * K, int64_t(28.6 * K), 48 * K,
         8.1e-2, 0.63,
         0.012, 2, 0.0, 0.0, 0.0,
         0.60, {}, 832, 120, 0, 0xB003});
    add({"M3", Vendor::Micron, "MTA18ASF2G72PZ-2G3B1QK", "MT40A2G4WE-083E:B",
         2400, "36-21", 8, "B", 4,
         128 * 1024, 16, 4, 8192,
         56 * K, int64_t(90.0 * K), 128 * K,
         1.2e-4, 5.21,
         0.120, 5, 0.0, 0.0, 0.0,
         0.50, {}, 832, 120, 0, 0xB004});
    add({"M4", Vendor::Micron, "MTA4ATF1G64HZ-3G2B2", "MT40A1G16RC-062E:B",
         3200, "26-21", 16, "B", 16,
         128 * 1024, 16, 4, 8192,
         12 * K, int64_t(42.2 * K), 96 * K,
         2.2e-2, 0.65,
         0.012, 3, 0.0, 0.0, 0.0,
         0.58, {}, 832, 120, 0, 0xB005});

    // ------------------------- Samsung --------------------------
    // The four modules of Table 3 carry an injected bimodal weakness:
    // the first feature effect is the primary physical cause (its
    // strength is the full ln-separation between the weak and strong
    // row populations), later effects add smaller shifts. Uniform
    // power-of-two subarrays make subarray-address bits alias
    // row-address bits, so one cause surfaces through several feature
    // bits as in Table 3. Strengths and residual sigma are tuned so
    // the F1 analysis lands in the paper's 0.71-0.77 band, below 0.8.
    add({"S0", Vendor::Samsung, "M393A1K43BB1-CTD", "K4A8G085WB-BCTD",
         2666, "52-20", 8, "B", 8,
         64 * 1024, 16, 4, 8192,
         32 * K, int64_t(57.0 * K), 128 * K,
         1.15e-3, 4.37,
         0.090, 6, 0.0, 0.0, 0.0,
         0.55,
         {{FK::SubarrayAddr, 0, 1.60}, {FK::Distance, 7, 0.12}},
         512, 0, 2, 0xC001, 0.19, 82900.0});
    add({"S1", Vendor::Samsung, "M393A1K43BB1-CTD", "K4A8G085WB-BCTD",
         2666, "52-20", 8, "B", 8,
         64 * 1024, 16, 4, 8192,
         24 * K, int64_t(59.8 * K), 128 * K,
         1.30e-3, 5.77,
         0.120, 6, 0.0, 0.0, 0.0,
         0.55,
         {{FK::RowAddr, 7, 1.70}, {FK::RowAddr, 8, 0.10},
          {FK::SubarrayAddr, 0, 0.08}},
         512, 90, 2, 0xC002, 0.06});
    add({"S2", Vendor::Samsung, "M393A1K43BB1-CTD", "K4A8G085WB-BCTD",
         2666, "10-21", 8, "B", 8,
         64 * 1024, 16, 4, 8192,
         12 * K, int64_t(42.7 * K), 96 * K,
         1.3e-2, 4.10,
         0.080, 5, 0.0, 0.0, 0.0,
         0.55, {}, 512, 90, 2, 0xC003});
    add({"S3", Vendor::Samsung, "F4-2400C17S-8GNT", "K4A4G085WF-BCTD",
         2400, "04-21", 4, "F", 8,
         32 * 1024, 16, 4, 8192,
         16 * K, int64_t(59.2 * K), 128 * K,
         1.9e-2, 2.99,
         0.060, 4, 0.0, 0.0, 0.0,
         0.53,
         {{FK::SubarrayAddr, 1, 2.20}, {FK::SubarrayAddr, 2, 0.10}},
         512, 0, 2, 0xC004, 0.15, 110592.0});
    add({"S4", Vendor::Samsung, "M393A2K40CB2-CTD", "K4A8G045WC-BCTD",
         2666, "35-21", 8, "C", 4,
         128 * 1024, 16, 4, 8192,
         12 * K, int64_t(55.4 * K), 128 * K,
         1.25e-2, 3.65,
         0.080, 4, 0.0, 0.0, 0.0,
         0.55,
         {{FK::SubarrayAddr, 0, 2.70}},
         1024, 0, 2, 0xC005, 0.17, 110592.0});

    return mods;
}

} // anonymous namespace

const std::vector<ModuleSpec> &
allModules()
{
    static const std::vector<ModuleSpec> mods = buildModules();
    return mods;
}

const ModuleSpec &
moduleByLabel(std::string_view label)
{
    for (const auto &m : allModules())
        if (m.label == label)
            return m;
    SVARD_FATAL("unknown module label: " + std::string(label));
}

const std::vector<int64_t> &
testedHammerCounts()
{
    // Alg. 1: [1,2,4,8,12,16,24,32,40,48,56,64,96]K for the sweep plus
    // 128K used for WCDP discovery; HC_first is reported among these.
    static const std::vector<int64_t> hcs = {
        1 * K, 2 * K, 4 * K, 8 * K, 12 * K, 16 * K, 24 * K, 32 * K,
        40 * K, 48 * K, 56 * K, 64 * K, 96 * K, 128 * K,
    };
    return hcs;
}

} // namespace svard::dram
