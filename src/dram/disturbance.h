/**
 * @file
 * Interface between the behavioral DRAM device and the read-disturbance
 * fault model. The device mechanically accumulates per-victim
 * disturbance as commands execute; this interface supplies the per-row
 * physics: thresholds (HC_first), error-rate curves (BER), RowPress
 * on-time scaling, and the cell-orientation parameters that make the
 * worst-case data pattern (WCDP) a meaningful, discoverable property.
 *
 * The concrete implementation lives in src/fault (VulnerabilityModel),
 * keeping the dependency direction dram <- fault.
 */
#ifndef SVARD_DRAM_DISTURBANCE_H
#define SVARD_DRAM_DISTURBANCE_H

#include <cstdint>

#include "dram/types.h"

namespace svard::dram {

/**
 * Per-row read-disturbance physics consumed by DramDevice.
 *
 * All rows are identified in *physical* space. "Effective hammers" is
 * the paper's unit: one hammer = one activation of each of the two
 * physically adjacent rows (Sec. 4.3), so a single adjacent activation
 * at minimum on-time contributes ~0.5 effective hammers.
 */
class DisturbanceModel
{
  public:
    virtual ~DisturbanceModel() = default;

    /**
     * Minimum effective hammer count that induces the first bitflip in
     * this row under its worst-case data pattern (continuous; the
     * characterization quantizes it to the tested hammer counts).
     */
    virtual double hcFirst(uint32_t bank, uint32_t phys_row) const = 0;

    /**
     * Fraction of the row's bits that flip after `eff_hammers`
     * worst-case-pattern hammers. Zero below hcFirst; equals the row's
     * calibrated BER at 128K hammers.
     */
    virtual double berAt(uint32_t bank, uint32_t phys_row,
                         double eff_hammers) const = 0;

    /**
     * Disturbance contributed to one neighboring victim by a single
     * activation of an aggressor that stayed open for `t_agg_on`
     * (RowPress: longer on-time disturbs more; Fig. 7).
     */
    virtual double actWeight(uint32_t bank, uint32_t phys_row,
                             Tick t_agg_on) const = 0;

    /**
     * Fraction of true-cells (charged when storing '1') in the row;
     * determines which victim data patterns expose the most cells.
     */
    virtual double trueCellFraction(uint32_t bank,
                                    uint32_t phys_row) const = 0;

    /**
     * Coupling attenuation when an aggressor bit stores the same value
     * as the victim bit (<= 1; 1 means data-independent coupling).
     */
    virtual double sameDataCoupling(uint32_t bank,
                                    uint32_t phys_row) const = 0;

    /**
     * Multiplicative severity jitter for a concrete (victim fill,
     * aggressor fill) combination, ~1.0. Lets checkerboard/column
     * stripes occasionally win WCDP as observed on real chips.
     */
    virtual double patternJitter(uint32_t bank, uint32_t phys_row,
                                 uint8_t victim_fill,
                                 uint8_t aggr_fill) const = 0;
};

} // namespace svard::dram

#endif // SVARD_DRAM_DISTURBANCE_H
