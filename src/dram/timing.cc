#include "dram/timing.h"

namespace svard::dram {

const char *
commandName(Command cmd)
{
    switch (cmd) {
      case Command::ACT: return "ACT";
      case Command::PRE: return "PRE";
      case Command::PREA: return "PREA";
      case Command::RD: return "RD";
      case Command::WR: return "WR";
      case Command::REF: return "REF";
    }
    return "?";
}

TimingParams
ddr4Timing(int data_rate_mts)
{
    TimingParams t;
    // tCK = 2000 / data_rate ns (double data rate). JEDEC cycle counts
    // below follow the common CL-equal-speed-bin configuration of the
    // tested modules.
    switch (data_rate_mts) {
      case 2400:
        t.tCK = 833;
        t.tCL = 14167;   // CL17
        t.tRCD = 14167;
        t.tRP = 14167;
        t.tRAS = 32000;
        break;
      case 2666:
        t.tCK = 750;
        t.tCL = 14250;   // CL19
        t.tRCD = 14250;
        t.tRP = 14250;
        t.tRAS = 32000;
        break;
      case 2933:
        t.tCK = 682;
        t.tCL = 14320;   // CL21
        t.tRCD = 14320;
        t.tRP = 14320;
        t.tRAS = 32000;
        break;
      case 3200:
      default:
        t.tCK = 625;
        t.tCL = 13750;   // CL22
        t.tRCD = 13750;
        t.tRP = 13750;
        t.tRAS = 32000;
        break;
    }
    t.tRC = t.tRAS + t.tRP;
    t.tBL = 4 * t.tCK;
    t.tCCD_S = 4 * t.tCK;
    t.tCCD_L = 6 * t.tCK;
    t.tRRD_S = 4 * t.tCK > 3300 ? 4 * t.tCK : 3300;
    t.tRRD_L = 6 * t.tCK > 4900 ? 6 * t.tCK : 4900;
    t.tFAW = 16 * t.tCK > 21000 ? 16 * t.tCK : 21000;
    t.tWTR_S = 4 * t.tCK > 2500 ? 4 * t.tCK : 2500;
    t.tWTR_L = 12 * t.tCK > 7500 ? 12 * t.tCK : 7500;
    t.tRTP = 12 * t.tCK > 7500 ? 12 * t.tCK : 7500;
    return t;
}

} // namespace svard::dram
