#include "dram/timing.h"

#include <stdexcept>
#include <string>

namespace svard::dram {

const char *
commandName(Command cmd)
{
    switch (cmd) {
      case Command::ACT: return "ACT";
      case Command::PRE: return "PRE";
      case Command::PREA: return "PREA";
      case Command::RD: return "RD";
      case Command::WR: return "WR";
      case Command::REF: return "REF";
    }
    return "?";
}

const char *
standardName(Standard std)
{
    switch (std) {
      case Standard::DDR4: return "DDR4";
      case Standard::DDR5: return "DDR5";
      case Standard::HBM2: return "HBM2";
    }
    return "?";
}

namespace {

[[noreturn]] void
unknownRate(const char *standard, int data_rate_mts,
            const char *known)
{
    throw std::invalid_argument(
        std::string(standard) + " timing table has no " +
        std::to_string(data_rate_mts) + " MT/s bin (known: " + known +
        ")");
}

} // anonymous namespace

TimingParams
ddr4Timing(int data_rate_mts)
{
    TimingParams t;
    // tCK = 2000 / data_rate ns (double data rate). JEDEC cycle counts
    // below follow the common CL-equal-speed-bin configuration of the
    // tested modules.
    switch (data_rate_mts) {
      case 2400:
        t.tCK = 833;
        t.tCL = 14167;   // CL17
        t.tRCD = 14167;
        t.tRP = 14167;
        t.tRAS = 32000;
        break;
      case 2666:
        t.tCK = 750;
        t.tCL = 14250;   // CL19
        t.tRCD = 14250;
        t.tRP = 14250;
        t.tRAS = 32000;
        break;
      case 2933:
        t.tCK = 682;
        t.tCL = 14320;   // CL21
        t.tRCD = 14320;
        t.tRP = 14320;
        t.tRAS = 32000;
        break;
      case 3200:
        t.tCK = 625;
        t.tCL = 13750;   // CL22
        t.tRCD = 13750;
        t.tRP = 13750;
        t.tRAS = 32000;
        break;
      default:
        // A silent 3200 fallback used to hide typos like 2667 behind
        // a plausible simulation; unknown rates must refuse loudly.
        unknownRate("DDR4", data_rate_mts, "2400, 2666, 2933, 3200");
    }
    t.tRC = t.tRAS + t.tRP;
    t.tBL = 4 * t.tCK;
    t.tCCD_S = 4 * t.tCK;
    t.tCCD_L = 6 * t.tCK;
    t.tRRD_S = 4 * t.tCK > 3300 ? 4 * t.tCK : 3300;
    t.tRRD_L = 6 * t.tCK > 4900 ? 6 * t.tCK : 4900;
    t.tFAW = 16 * t.tCK > 21000 ? 16 * t.tCK : 21000;
    t.tWTR_S = 4 * t.tCK > 2500 ? 4 * t.tCK : 2500;
    t.tWTR_L = 12 * t.tCK > 7500 ? 12 * t.tCK : 7500;
    t.tRTP = 12 * t.tCK > 7500 ? 12 * t.tCK : 7500;
    return t;
}

TimingParams
ddr5Timing(int data_rate_mts)
{
    TimingParams t;
    switch (data_rate_mts) {
      case 4800:
        // DDR5-4800B (JESD79-5B): tCK = 2000/4800 ns = 416.67 ps,
        // rounded to nearest (truncating would reintroduce the
        // ~0.16% drift the cpuTick fix removed).
        t.tCK = 417;
        t.tCL = 16666;   // CL40
        t.tCWL = 15833;  // CWL38
        t.tRCD = 16666;
        t.tRP = 16666;
        t.tRAS = 32000;
        break;
      default:
        unknownRate("DDR5", data_rate_mts, "4800");
    }
    t.tRC = t.tRAS + t.tRP;
    t.tBL = 8 * t.tCK; // BL16
    t.tCCD_S = 8 * t.tCK;
    t.tCCD_L = 8 * t.tCK > 5000 ? 8 * t.tCK : 5000;
    t.tRRD_S = 8 * t.tCK;
    t.tRRD_L = 8 * t.tCK > 5000 ? 8 * t.tCK : 5000;
    t.tFAW = 32 * t.tCK > 13333 ? 32 * t.tCK : 13333;
    t.tWR = 30000;
    t.tRTP = 12 * t.tCK > 7500 ? 12 * t.tCK : 7500;
    t.tWTR_S = 4 * t.tCK > 2500 ? 4 * t.tCK : 2500;
    t.tWTR_L = 16 * t.tCK > 10000 ? 16 * t.tCK : 10000;
    t.tRFC = 295000;    // tRFC1, 16Gb device
    t.tREFI = 3900000;  // 3.9us (DDR5 halves the DDR4 interval)
    t.tREFW = 32 * kPsPerMs;
    return t;
}

TimingParams
hbm2Timing(int data_rate_mts)
{
    TimingParams t;
    switch (data_rate_mts) {
      case 2000:
        // HBM2 at 2.0 Gbps/pin, pseudo-channel mode: 1 GHz clock.
        t.tCK = 1000;
        t.tCL = 14000;
        t.tCWL = 7000;
        t.tRCD = 14000;
        t.tRP = 14000;
        t.tRAS = 33000;
        break;
      default:
        unknownRate("HBM2", data_rate_mts, "2000");
    }
    t.tRC = t.tRAS + t.tRP;
    t.tBL = 2 * t.tCK; // BL4 in pseudo-channel mode
    t.tCCD_S = 2 * t.tCK;
    t.tCCD_L = 3 * t.tCK;
    t.tRRD_S = 4 * t.tCK;
    t.tRRD_L = 6 * t.tCK;
    t.tFAW = 16 * t.tCK;
    t.tWR = 15000;
    t.tRTP = 7500;
    t.tWTR_S = 2500;
    t.tWTR_L = 7500;
    t.tRFC = 260000;    // 8Gb channel density
    t.tREFI = 3900000;
    t.tREFW = 64 * kPsPerMs;
    return t;
}

TimingParams
timingFor(Standard std, int data_rate_mts)
{
    switch (std) {
      case Standard::DDR4: return ddr4Timing(data_rate_mts);
      case Standard::DDR5: return ddr5Timing(data_rate_mts);
      case Standard::HBM2: return hbm2Timing(data_rate_mts);
    }
    throw std::invalid_argument("unknown DRAM standard");
}

} // namespace svard::dram
