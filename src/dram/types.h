/**
 * @file
 * Basic DRAM types shared across the library: time units, command kinds,
 * and the fully-decoded DRAM address tuple.
 */
#ifndef SVARD_DRAM_TYPES_H
#define SVARD_DRAM_TYPES_H

#include <cstdint>

namespace svard::dram {

/** All times in the library are picoseconds. */
using Tick = int64_t;

constexpr Tick kPsPerNs = 1000;
constexpr Tick kPsPerUs = 1000 * 1000;
constexpr Tick kPsPerMs = 1000LL * 1000 * 1000;

/** DDR4 command set used by the device model and the timing simulator. */
enum class Command : uint8_t
{
    ACT,    ///< row activation
    PRE,    ///< bank precharge
    PREA,   ///< precharge all banks
    RD,     ///< column read burst
    WR,     ///< column write burst
    REF,    ///< rank-level refresh
};

/** Name of a command, for traces and error messages. */
const char *commandName(Command cmd);

/**
 * Fully decoded DRAM address. Field widths follow the simulated system
 * in the paper's Table 4 (1 channel, 2 ranks, 4 bank groups x 4 banks).
 */
struct Address
{
    uint32_t channel = 0;
    uint32_t rank = 0;
    uint32_t bankGroup = 0;
    uint32_t bank = 0;     ///< bank within its bank group
    uint32_t row = 0;
    uint32_t column = 0;

    /** Flat bank index across the rank: bankGroup * banksPerGroup + bank. */
    uint32_t
    flatBank(uint32_t banks_per_group) const
    {
        return bankGroup * banks_per_group + bank;
    }

    bool
    operator==(const Address &o) const
    {
        return channel == o.channel && rank == o.rank &&
               bankGroup == o.bankGroup && bank == o.bank &&
               row == o.row && column == o.column;
    }
};

} // namespace svard::dram

#endif // SVARD_DRAM_TYPES_H
