/**
 * @file
 * In-DRAM logical-to-physical row address mapping ("row scrambling").
 * DRAM vendors remap the row addresses exposed on the interface to
 * internal physical locations (Sec. 4.3, "Finding Physically Adjacent
 * Rows"); attackers and characterization studies must reverse-engineer
 * the mapping to hammer truly adjacent rows. We model three invertible
 * schemes representative of published reverse-engineering results.
 */
#ifndef SVARD_DRAM_ROWMAP_H
#define SVARD_DRAM_ROWMAP_H

#include <cstdint>

namespace svard::dram {

/**
 * Invertible logical<->physical row mapping. All schemes are
 * involutions or cheap closed forms so that `toLogical` is exact.
 */
class RowMapping
{
  public:
    enum class Scheme : uint8_t
    {
        Identity = 0,     ///< logical == physical
        MirrorPairs = 1,  ///< swap rows 2,3 in every group of 4 (XOR fold)
        BitSwap = 2,      ///< swap row-address bits 1 and 3
    };

    RowMapping(Scheme scheme, uint32_t rows);

    /** Construct from the integer scheme id stored in ModuleSpec. */
    RowMapping(int scheme_id, uint32_t rows);

    uint32_t toPhysical(uint32_t logical_row) const;
    uint32_t toLogical(uint32_t physical_row) const;

    Scheme scheme() const { return scheme_; }
    uint32_t rows() const { return rows_; }

  private:
    Scheme scheme_;
    uint32_t rows_;
};

} // namespace svard::dram

#endif // SVARD_DRAM_ROWMAP_H
