/**
 * @file
 * DDR4 timing parameter set (JESD79-4C) with presets for the speed bins
 * of the modules in the paper's Table 5 (DDR4-2400/2666/2933/3200).
 */
#ifndef SVARD_DRAM_TIMING_H
#define SVARD_DRAM_TIMING_H

#include "dram/types.h"

namespace svard::dram {

/**
 * DDR4 timing constraints, all in picoseconds. Cycle-denominated JEDEC
 * values are pre-multiplied by tCK so consumers never deal in cycles.
 */
struct TimingParams
{
    Tick tCK = 625;            ///< clock period (DDR4-3200 default)
    Tick tRCD = 13750;         ///< ACT -> RD/WR
    Tick tRP = 13750;          ///< PRE -> ACT
    Tick tRAS = 32000;         ///< ACT -> PRE (min; charge restoration)
    Tick tRC = 45750;          ///< ACT -> ACT same bank
    Tick tCL = 13750;          ///< RD -> data
    Tick tCWL = 10000;         ///< WR -> data
    Tick tBL = 2500;           ///< burst length 8 = 4 tCK
    Tick tCCD_S = 2500;        ///< RD->RD / WR->WR, different bank group
    Tick tCCD_L = 3750;        ///< RD->RD / WR->WR, same bank group
    Tick tRRD_S = 3300;        ///< ACT->ACT, different bank group
    Tick tRRD_L = 4900;        ///< ACT->ACT, same bank group
    Tick tFAW = 21000;         ///< four-activate window
    Tick tWR = 15000;          ///< write recovery
    Tick tRTP = 7500;          ///< RD -> PRE
    Tick tWTR_S = 2500;        ///< WR -> RD, different bank group
    Tick tWTR_L = 7500;        ///< WR -> RD, same bank group
    Tick tRFC = 350000;        ///< REF -> next command (16Gb: 550ns)
    Tick tREFI = 7800000;      ///< average refresh interval (7.8us)
    Tick tREFW = 64 * kPsPerMs;///< refresh window (64ms at <= 85C)

    /** Minimum legal on-time of an activated row: tRAS. */
    Tick minOnTime() const { return tRAS; }

    /** Back-to-back double-sided hammer period: 2 x (tRAS + tRP). */
    Tick
    doubleSidedHammerPeriod() const
    {
        return 2 * (tRAS + tRP);
    }
};

/**
 * Timing preset for a DDR4 speed bin, selected by data rate in MT/s
 * (2400, 2666, 2933, or 3200). Unknown rates fall back to 3200 with a
 * warning-free default, since only Table 5 rates are used in-tree.
 */
TimingParams ddr4Timing(int data_rate_mts);

} // namespace svard::dram

#endif // SVARD_DRAM_TIMING_H
