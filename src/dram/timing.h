/**
 * @file
 * DRAM timing parameter sets. DDR4 (JESD79-4C) covers the speed bins
 * of the modules in the paper's Table 5 (DDR4-2400/2666/2933/3200);
 * DDR5 (JESD79-5) and HBM2 (JESD235C pseudo-channel mode) tables back
 * the geometry presets that extend the evaluation beyond the paper's
 * fixed Table 4 system (see sim/presets.h). The standard is selected
 * by an explicit Standard enum — never by overloading the DDR4 MT/s
 * switch with foreign data rates.
 */
#ifndef SVARD_DRAM_TIMING_H
#define SVARD_DRAM_TIMING_H

#include "dram/types.h"

namespace svard::dram {

/** DRAM interface standard a TimingParams table belongs to. */
enum class Standard : uint8_t
{
    DDR4,
    DDR5,
    HBM2,
};

/** Display name of a standard ("DDR4", "DDR5", "HBM2"). */
const char *standardName(Standard std);

/**
 * DRAM timing constraints, all in picoseconds. Cycle-denominated JEDEC
 * values are pre-multiplied by tCK so consumers never deal in cycles.
 * Defaults are the DDR4-3200 bin.
 */
struct TimingParams
{
    Tick tCK = 625;            ///< clock period (DDR4-3200 default)
    Tick tRCD = 13750;         ///< ACT -> RD/WR
    Tick tRP = 13750;          ///< PRE -> ACT
    Tick tRAS = 32000;         ///< ACT -> PRE (min; charge restoration)
    Tick tRC = 45750;          ///< ACT -> ACT same bank
    Tick tCL = 13750;          ///< RD -> data
    Tick tCWL = 10000;         ///< WR -> data
    Tick tBL = 2500;           ///< burst length 8 = 4 tCK
    Tick tCCD_S = 2500;        ///< RD->RD / WR->WR, different bank group
    Tick tCCD_L = 3750;        ///< RD->RD / WR->WR, same bank group
    Tick tRRD_S = 3300;        ///< ACT->ACT, different bank group
    Tick tRRD_L = 4900;        ///< ACT->ACT, same bank group
    Tick tFAW = 21000;         ///< four-activate window
    Tick tWR = 15000;          ///< write recovery
    Tick tRTP = 7500;          ///< RD -> PRE
    Tick tWTR_S = 2500;        ///< WR -> RD, different bank group
    Tick tWTR_L = 7500;        ///< WR -> RD, same bank group
    Tick tRFC = 350000;        ///< REF -> next command (8Gb: 350ns)
    Tick tREFI = 7800000;      ///< average refresh interval (7.8us)
    Tick tREFW = 64 * kPsPerMs;///< refresh window (64ms at <= 85C)

    /** Minimum legal on-time of an activated row: tRAS. */
    Tick minOnTime() const { return tRAS; }

    /** Back-to-back double-sided hammer period: 2 x (tRAS + tRP). */
    Tick
    doubleSidedHammerPeriod() const
    {
        return 2 * (tRAS + tRP);
    }
};

/**
 * Timing preset for a DDR4 speed bin, selected by data rate in MT/s
 * (2400, 2666, 2933, or 3200 — the Table 5 bins).
 * @throws std::invalid_argument for any other rate; a silent fallback
 *         to 3200 used to hide typos like 2667.
 */
TimingParams ddr4Timing(int data_rate_mts);

/**
 * Timing preset for a DDR5 speed bin (JESD79-5B "B" bins), selected
 * by data rate in MT/s. Currently 4800 (DDR5-4800B: CL40,
 * tRCD/tRP = 16.67ns, tRAS = 32ns, BL16, tREFI = 3.9us,
 * tRFC1(16Gb) = 295ns, 32ms refresh window).
 * @throws std::invalid_argument for unknown rates.
 */
TimingParams ddr5Timing(int data_rate_mts);

/**
 * Timing preset for HBM2 pseudo-channel mode, selected by per-pin
 * data rate in MT/s. Currently 2000 (2.0 Gbps: tCK = 1ns, BL4,
 * tRCD/tRP = 14ns, tRAS = 33ns, tFAW = 16ns, tRFC(8Gb) = 260ns,
 * tREFI = 3.9us).
 * @throws std::invalid_argument for unknown rates.
 */
TimingParams hbm2Timing(int data_rate_mts);

/**
 * Timing table for (standard, data rate): dispatches to the
 * per-standard preset functions above.
 * @throws std::invalid_argument for rates the standard's table does
 *         not carry.
 */
TimingParams timingFor(Standard std, int data_rate_mts);

} // namespace svard::dram

#endif // SVARD_DRAM_TIMING_H
