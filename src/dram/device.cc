#include "dram/device.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace svard::dram {

namespace {

// ModelMemo::flags bits: which lazily-computed fields are valid.
constexpr uint8_t kMemoHc = 1;
constexpr uint8_t kMemoCells = 2;    ///< trueCellFrac + sameCoupling
constexpr uint8_t kMemoWorst = 4;

} // anonymous namespace

DramDevice::DramDevice(const ModuleSpec &spec,
                       std::shared_ptr<const SubarrayMap> subarrays,
                       std::shared_ptr<const DisturbanceModel> model,
                       uint64_t seed)
    : spec_(spec),
      subarrays_(std::move(subarrays)),
      model_(std::move(model)),
      mapping_(spec.rowMappingScheme, spec.rowsPerBank),
      timing_(ddr4Timing(spec.dataRateMts)),
      rng_(hashSeed({spec.seed, seed, 0xDE11CEULL})),
      bankState_(spec.banks)
{
    SVARD_ASSERT(model_ != nullptr, "device needs a disturbance model");
    SVARD_ASSERT(subarrays_ != nullptr, "device needs a subarray map");
}

DramDevice::DramDevice(const ModuleSpec &spec,
                       std::shared_ptr<const DisturbanceModel> model,
                       uint64_t seed)
    : DramDevice(spec, std::make_shared<SubarrayMap>(spec),
                 std::move(model), seed)
{}

void
DramDevice::activate(uint32_t bank, uint32_t row, Tick now)
{
    SVARD_ASSERT(bank < spec_.banks, "bank out of range");
    SVARD_ASSERT(row < spec_.rowsPerBank, "row out of range");
    BankState &bs = bankState_[bank];
    SVARD_ASSERT(!bs.open, "ACT to an open bank (missing PRE)");
    const uint32_t phys = mapping_.toPhysical(row);
    // Charge restoration: any disturbance the row accumulated so far
    // either materialized as flips (locked in by the restore) or is
    // wiped by the full recharge.
    realize(bank, phys);
    bs.open = true;
    bs.physRow = phys;
    bs.actTime = now;
    ++stats_.activates;
}

void
DramDevice::precharge(uint32_t bank, Tick now)
{
    SVARD_ASSERT(bank < spec_.banks, "bank out of range");
    BankState &bs = bankState_[bank];
    SVARD_ASSERT(bs.open, "PRE to a closed bank");
    const Tick t_on = std::max<Tick>(now - bs.actTime, 0);
    if (disturbanceEnabled_) {
        uint32_t neigh[2];
        const uint32_t n = subarrays_->disturbedNeighbors(bs.physRow,
                                                          neigh);
        for (uint32_t i = 0; i < n; ++i)
            pending_.refOrInsert(key(bank, neigh[i])) +=
                memoActWeight(bank, neigh[i], t_on);
    }
    bs.open = false;
    ++stats_.precharges;
}

void
DramDevice::prechargeAll(Tick now)
{
    for (uint32_t b = 0; b < spec_.banks; ++b)
        if (bankState_[b].open)
            precharge(b, now);
}

void
DramDevice::refreshAllRows(Tick /* now */)
{
    // Realize + reset every row with pending disturbance; rows with no
    // pending disturbance are unaffected by a refresh in this model.
    // The key snapshot (realize erases from pending_ as it goes) lives
    // in a member buffer reused across refreshes.
    refreshKeys_.clear();
    pending_.forEach([&](uint64_t k, const double &v) {
        if (v > 0.0)
            refreshKeys_.push_back(k);
    });
    for (uint64_t k : refreshKeys_)
        realize(static_cast<uint32_t>(k >> 32),
                static_cast<uint32_t>(k & 0xffffffffu));
    // Everything left is zero/negative accumulation, behaviorally
    // absent; the O(1) clear also purges the erase tombstones.
    pending_.clear();
    ++stats_.refreshes;
}

void
DramDevice::refreshRow(uint32_t bank, uint32_t row, Tick /* now */)
{
    realize(bank, mapping_.toPhysical(row));
}

void
DramDevice::hammer(uint32_t bank, uint32_t row, uint64_t count,
                   Tick t_on, Tick /* now */)
{
    SVARD_ASSERT(bank < spec_.banks, "bank out of range");
    SVARD_ASSERT(!bankState_[bank].open, "hammer needs a precharged bank");
    if (count == 0)
        return;
    const uint32_t phys = mapping_.toPhysical(row);
    // The first activation restores the hammered row itself; repeated
    // activations of the same row keep it restored throughout.
    realize(bank, phys);
    if (disturbanceEnabled_) {
        uint32_t neigh[2];
        const uint32_t n = subarrays_->disturbedNeighbors(phys, neigh);
        for (uint32_t i = 0; i < n; ++i)
            pending_.refOrInsert(key(bank, neigh[i])) +=
                static_cast<double>(count) *
                memoActWeight(bank, neigh[i], t_on);
    }
    stats_.activates += count;
    stats_.precharges += count;
}

void
DramDevice::writeRowFill(uint32_t bank, uint32_t row, uint8_t fill)
{
    const uint32_t phys = mapping_.toPhysical(row);
    rowRef(bank, phys).setFill(fill);
    // A full-row write recharges every cell: pending disturbance wiped.
    pending_.erase(key(bank, phys));
}

void
DramDevice::writeByte(uint32_t bank, uint32_t row, uint32_t byte_index,
                      uint8_t value)
{
    const uint32_t phys = mapping_.toPhysical(row);
    rowRef(bank, phys).writeByte(byte_index, value);
}

uint8_t
DramDevice::readByte(uint32_t bank, uint32_t row, uint32_t byte_index)
{
    const uint32_t phys = mapping_.toPhysical(row);
    realize(bank, phys);
    return rowRef(bank, phys).readByte(byte_index);
}

uint64_t
DramDevice::countMismatchedBits(uint32_t bank, uint32_t row,
                                uint8_t expected_fill)
{
    const uint32_t phys = mapping_.toPhysical(row);
    realize(bank, phys);
    return rowRef(bank, phys).mismatchedBits(expected_fill);
}

std::vector<uint8_t>
DramDevice::readRow(uint32_t bank, uint32_t row)
{
    const uint32_t phys = mapping_.toPhysical(row);
    realize(bank, phys);
    return rowRef(bank, phys).toBytes();
}

bool
DramDevice::rowClone(uint32_t bank, uint32_t src_row, uint32_t dst_row,
                     Tick /* now */)
{
    ++stats_.rowClones;
    const uint32_t src = mapping_.toPhysical(src_row);
    const uint32_t dst = mapping_.toPhysical(dst_row);
    realize(bank, src);
    realize(bank, dst);
    const bool same_sa = subarrays_->sameSubarray(src, dst);
    // Intra-subarray RowClone is unofficial: it works for most but not
    // all row pairs (Sec. 5.4.1 Key Insight 2). The margin is a fixed
    // property of the pair, hence the deterministic per-pair hash.
    uint64_t h = hashSeed({spec_.seed, bank, src, dst, 0xC10EULL});
    const bool margin_ok = (h % 1000) < 930;
    if (same_sa && margin_ok) {
        RowData copy = rowRef(bank, src);
        rowRef(bank, dst) = std::move(copy);
        pending_.erase(key(bank, dst));
        return true;
    }
    // Failed attempt: the destination row's cells end up partially
    // overwritten by the interrupted charge sharing.
    RowData &rd = rowRef(bank, dst);
    const uint32_t bits = rd.sizeBits();
    const uint32_t corrupted = 16 + static_cast<uint32_t>(rng_.below(64));
    for (uint32_t i = 0; i < corrupted; ++i)
        rd.flipBit(static_cast<uint32_t>(rng_.below(bits)));
    return false;
}

std::optional<uint32_t>
DramDevice::openRow(uint32_t bank) const
{
    const BankState &bs = bankState_[bank];
    if (!bs.open)
        return std::nullopt;
    return mapping_.toLogical(bs.physRow);
}

double
DramDevice::pendingHammers(uint32_t bank, uint32_t row) const
{
    const double *p = pending_.find(key(bank, mapping_.toPhysical(row)));
    return p == nullptr ? 0.0 : *p;
}

RowData &
DramDevice::rowRef(uint32_t bank, uint32_t phys_row)
{
    RowData &rd = rows_.refOrInsert(key(bank, phys_row));
    if (rd.sizeBytes() == 0)
        rd = RowData(spec_.rowBytes, uint8_t(0));
    return rd;
}

DramDevice::ModelMemo &
DramDevice::memoRef(uint32_t bank, uint32_t phys_row)
{
    return memo_.refOrInsert(key(bank, phys_row));
}

double
DramDevice::memoHcFirst(uint32_t bank, uint32_t phys_row)
{
    ModelMemo &m = memoRef(bank, phys_row);
    if (!(m.flags & kMemoHc)) {
        m.hcFirst = model_->hcFirst(bank, phys_row);
        m.flags |= kMemoHc;
    }
    return m.hcFirst;
}

double
DramDevice::memoActWeight(uint32_t bank, uint32_t phys_row, Tick t_on)
{
    // Caches the weight of the most recent on-time per row: hammer
    // sweeps and attack loops use one constant t_agg_on, so the common
    // case is a hit; an on-time sweep (Fig. 7) refreshes the entry.
    ModelMemo &m = memoRef(bank, phys_row);
    if (m.actWeightTon != t_on) {
        m.actWeight = model_->actWeight(bank, phys_row, t_on);
        m.actWeightTon = t_on;
    }
    return m.actWeight;
}

double
DramDevice::severityRaw(uint32_t bank, uint32_t phys_row,
                        const ModelMemo &memo, uint8_t victim_fill,
                        uint8_t aggr_fill)
{
    const double tf = memo.trueCellFrac;
    const double same = memo.sameCoupling;
    double sum = 0.0;
    for (int b = 0; b < 8; ++b) {
        const int vbit = (victim_fill >> b) & 1;
        const int abit = (aggr_fill >> b) & 1;
        // A cell can discharge only if it currently holds charge
        // (value matches its true/anti orientation), and aggressor
        // bits matching the victim couple more weakly.
        const double p_charged = vbit ? tf : (1.0 - tf);
        const double coupling = (abit != vbit) ? 1.0 : same;
        sum += p_charged * coupling;
    }
    return (sum / 8.0) *
           model_->patternJitter(bank, phys_row, victim_fill, aggr_fill);
}

double
DramDevice::worstCaseSeverityRaw(uint32_t bank, uint32_t phys_row,
                                 const ModelMemo &memo)
{
    // Canonical (aggressor, victim) fills of Table 2: RS, RSI, CS, CSI,
    // CB, CBI.
    static constexpr uint8_t kPatterns[6][2] = {
        {0xFF, 0x00}, {0x00, 0xFF}, {0xAA, 0xAA},
        {0x55, 0x55}, {0xAA, 0x55}, {0x55, 0xAA},
    };
    double worst = 0.0;
    for (const auto &p : kPatterns)
        worst = std::max(worst,
                         severityRaw(bank, phys_row, memo, p[1], p[0]));
    return worst;
}

double
DramDevice::severityRawCached(uint32_t bank, uint32_t phys_row,
                              ModelMemo &memo, uint8_t victim_fill,
                              uint8_t aggr_fill)
{
    const uint32_t fills =
        (static_cast<uint32_t>(victim_fill) << 8) | aggr_fill;
    if (memo.sevFills != fills) {
        memo.sevRaw = severityRaw(bank, phys_row, memo, victim_fill,
                                  aggr_fill);
        memo.sevFills = fills;
    }
    return memo.sevRaw;
}

double
DramDevice::patternSeverity(uint32_t bank, uint32_t phys_row,
                            ModelMemo &memo)
{
    if (!(memo.flags & kMemoCells)) {
        memo.trueCellFrac = model_->trueCellFraction(bank, phys_row);
        memo.sameCoupling = model_->sameDataCoupling(bank, phys_row);
        memo.flags |= kMemoCells;
    }
    if (!(memo.flags & kMemoWorst)) {
        memo.worstSeverity =
            worstCaseSeverityRaw(bank, phys_row, memo);
        memo.flags |= kMemoWorst;
    }
    const double worst = memo.worstSeverity;
    if (worst <= 0.0)
        return 0.0;

    auto fill_of = [&](uint32_t pr) -> uint8_t {
        const RowData *rd = rows_.find(key(bank, pr));
        return rd == nullptr ? uint8_t(0) : rd->fill();
    };

    const uint8_t victim_fill = fill_of(phys_row);
    uint32_t neigh[2];
    const uint32_t n = subarrays_->disturbedNeighbors(phys_row, neigh);
    double raw = 0.0;
    for (uint32_t i = 0; i < n; ++i)
        raw += severityRawCached(bank, phys_row, memo, victim_fill,
                                 fill_of(neigh[i]));
    if (n > 0)
        raw /= static_cast<double>(n);
    const double sev = raw / worst;
    return std::clamp(sev, 0.0, 1.0);
}

void
DramDevice::realize(uint32_t bank, uint32_t phys_row)
{
    double *slot = pending_.find(key(bank, phys_row));
    if (slot == nullptr)
        return;
    const double hammers = *slot;
    pending_.erase(key(bank, phys_row));
    if (!disturbanceEnabled_ || hammers <= 0.0)
        return;

    // Fast path: even at worst-case severity the row is below its
    // threshold, so the recharge wipes the disturbance with no flips.
    const double hcf = memoHcFirst(bank, phys_row);
    if (hammers < hcf)
        return;

    ModelMemo &memo = memoRef(bank, phys_row);
    const double sev = patternSeverity(bank, phys_row, memo);
    if (sev <= 0.0)
        return;
    const double eff = hammers * sev;
    if (eff < hcf)
        return;

    const uint32_t bits = spec_.rowBytes * 8;
    const double ber = model_->berAt(bank, phys_row, eff);
    // ~5.7% iteration-to-iteration variation (Sec. 4.1 footnote 5).
    // The cap only binds far beyond the 128K-hammer calibration point
    // (largest in-range BER is ~8%), where flip *presence* matters but
    // the exact count does not; it keeps reverse-engineering probes
    // that hammer far past threshold from injecting pathological flip
    // volumes.
    const double iter_noise = std::exp(rng_.normal(0.0, 0.04));
    const double p = std::clamp(ber * iter_noise, 0.0, 0.12);
    // The first flip is the weakest cell itself: crossing HC_first
    // guarantees at least one flipped bit by definition.
    uint64_t n_flips = 1 + rng_.binomial(bits - 1, p);

    const double tf = memo.trueCellFrac;
    RowData &rd = rowRef(bank, phys_row);
    // Per-bit orientation hash = hashSeed({seed, bank, row, bit, tag}).
    // The (seed, bank, row) prefix is loop-invariant, and so is the
    // prefix's contribution to the first per-attempt fold — so hoist
    // the whole HashStream copy+mix out of the rejection loop: fold
    // the prefix once, precompute its fold addend, and each attempt is
    // two plain fold+finalize steps on a uint64. Bit-identical to
    // HashStream(prefix).mix(bit).mix(tag).value() by substitution.
    HashStream orientation_prefix;
    orientation_prefix.mix(spec_.seed).mix(bank).mix(phys_row);
    const uint64_t ps = orientation_prefix.value();
    const uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
    const uint64_t pre = kGolden + (ps << 6) + (ps >> 2);
    auto orientationHash = [&](uint32_t bit) {
        uint64_t s = ps ^ (uint64_t(bit) + pre);
        s = splitmix64(s);
        s ^= 0x0B17ULL + kGolden + (s << 6) + (s >> 2);
        return splitmix64(s);
    };

    // Batched flip application: candidate draws stay sequential (each
    // acceptance depends on the flips already accepted, so the RNG
    // consumption sequence is state-dependent and must be preserved
    // exactly), but accepted flips accumulate in a word->delta staging
    // table instead of mutating the row store per flip. Probes during
    // generation read the staged word (seeded from the row on first
    // touch), and the row's delta table is written once per *touched
    // word* at the end — one insert/erase per word instead of one per
    // flip, which is the win when thousands of flips land in a few
    // hundred distinct words. Below the threshold that regime never
    // materializes — the common charz case is a handful of flips in
    // distinct words, where staging costs more probes than it saves —
    // so small events apply directly through flipBitIf like the
    // original per-flip path. Final row state and the injected flip
    // count are bit-identical either way (tests/test_dram.cc pins
    // exact flip sets in both regimes).
    constexpr uint64_t kBatchFlipThreshold = 64;
    const bool batch = n_flips >= kBatchFlipThreshold;
    if (batch)
        flipScratch_.clear();
    const uint64_t fill_word = rd.fillWord();
    uint64_t applied = 0;
    for (uint64_t i = 0; i < n_flips; ++i) {
        // Flip a charged cell: stored value must match orientation.
        // The first flip must land (see above: crossing the threshold
        // implies a flipped bit), so its placement retries until a
        // charged cell is hit — with tf in (0.35, 0.65) each attempt
        // succeeds with >= ~35% probability, so the 256-attempt bound
        // is unreachable in practice (~1e-50); it exists so a
        // pathological model cannot hang the device. Subsequent flips
        // keep the short rejection loop: dropping one of many draws
        // only dents the flip count, which is noise-dominated anyway.
        const int max_attempts = (i == 0) ? 256 : 8;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
            const uint32_t bit = static_cast<uint32_t>(rng_.below(bits));
            const bool true_cell =
                (orientationHash(bit) >> 11) *
                    (1.0 / 9007199254740992.0) <
                tf;
            if (!batch) {
                if (rd.flipBitIf(bit, true_cell)) {
                    ++applied;
                    break;
                }
                continue;
            }
            const uint32_t w = bit >> 6;
            const uint64_t mask = uint64_t(1) << (bit & 63);
            const uint64_t *staged = flipScratch_.find(w);
            const uint64_t delta =
                staged != nullptr ? *staged : rd.deltaWord(w);
            const bool cur = ((fill_word ^ delta) & mask) != 0;
            if (cur == true_cell) {
                // Stage on acceptance only: a rejected attempt costs
                // one probe per table, like the per-flip path did.
                // (Staging every *probed* word up front tripled the
                // insert count and cost the charz pipeline ~25%.)
                flipScratch_.refOrInsert(w) = delta ^ mask;
                ++applied;
                break;
            }
        }
    }
    if (batch)
        flipScratch_.forEach(
            [&](uint32_t w, uint64_t d) { rd.setDeltaWord(w, d); });
    if (applied > 0) {
        stats_.bitflipsInjected += applied;
        ++stats_.rowsFlipped;
    }
}

} // namespace svard::dram
