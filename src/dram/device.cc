#include "dram/device.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace svard::dram {

DramDevice::DramDevice(const ModuleSpec &spec,
                       std::shared_ptr<const SubarrayMap> subarrays,
                       std::shared_ptr<const DisturbanceModel> model,
                       uint64_t seed)
    : spec_(spec),
      subarrays_(std::move(subarrays)),
      model_(std::move(model)),
      mapping_(spec.rowMappingScheme, spec.rowsPerBank),
      timing_(ddr4Timing(spec.dataRateMts)),
      rng_(hashSeed({spec.seed, seed, 0xDE11CEULL})),
      bankState_(spec.banks)
{
    SVARD_ASSERT(model_ != nullptr, "device needs a disturbance model");
    SVARD_ASSERT(subarrays_ != nullptr, "device needs a subarray map");
}

DramDevice::DramDevice(const ModuleSpec &spec,
                       std::shared_ptr<const DisturbanceModel> model,
                       uint64_t seed)
    : DramDevice(spec, std::make_shared<SubarrayMap>(spec),
                 std::move(model), seed)
{}

void
DramDevice::activate(uint32_t bank, uint32_t row, Tick now)
{
    SVARD_ASSERT(bank < spec_.banks, "bank out of range");
    SVARD_ASSERT(row < spec_.rowsPerBank, "row out of range");
    BankState &bs = bankState_[bank];
    SVARD_ASSERT(!bs.open, "ACT to an open bank (missing PRE)");
    const uint32_t phys = mapping_.toPhysical(row);
    // Charge restoration: any disturbance the row accumulated so far
    // either materialized as flips (locked in by the restore) or is
    // wiped by the full recharge.
    realize(bank, phys);
    bs.open = true;
    bs.physRow = phys;
    bs.actTime = now;
    ++stats_.activates;
}

void
DramDevice::precharge(uint32_t bank, Tick now)
{
    SVARD_ASSERT(bank < spec_.banks, "bank out of range");
    BankState &bs = bankState_[bank];
    SVARD_ASSERT(bs.open, "PRE to a closed bank");
    const Tick t_on = std::max<Tick>(now - bs.actTime, 0);
    if (disturbanceEnabled_) {
        for (uint32_t n : subarrays_->disturbedNeighbors(bs.physRow))
            pending_[key(bank, n)] += model_->actWeight(bank, n, t_on);
    }
    bs.open = false;
    ++stats_.precharges;
}

void
DramDevice::prechargeAll(Tick now)
{
    for (uint32_t b = 0; b < spec_.banks; ++b)
        if (bankState_[b].open)
            precharge(b, now);
}

void
DramDevice::refreshAllRows(Tick /* now */)
{
    // Realize + reset every row with pending disturbance; rows with no
    // pending disturbance are unaffected by a refresh in this model.
    std::vector<uint64_t> keys;
    keys.reserve(pending_.size());
    for (const auto &[k, v] : pending_)
        if (v > 0.0)
            keys.push_back(k);
    for (uint64_t k : keys)
        realize(static_cast<uint32_t>(k >> 32),
                static_cast<uint32_t>(k & 0xffffffffu));
    ++stats_.refreshes;
}

void
DramDevice::refreshRow(uint32_t bank, uint32_t row, Tick /* now */)
{
    realize(bank, mapping_.toPhysical(row));
}

void
DramDevice::hammer(uint32_t bank, uint32_t row, uint64_t count,
                   Tick t_on, Tick /* now */)
{
    SVARD_ASSERT(bank < spec_.banks, "bank out of range");
    SVARD_ASSERT(!bankState_[bank].open, "hammer needs a precharged bank");
    if (count == 0)
        return;
    const uint32_t phys = mapping_.toPhysical(row);
    // The first activation restores the hammered row itself; repeated
    // activations of the same row keep it restored throughout.
    realize(bank, phys);
    if (disturbanceEnabled_) {
        for (uint32_t n : subarrays_->disturbedNeighbors(phys))
            pending_[key(bank, n)] +=
                static_cast<double>(count) * model_->actWeight(bank, n,
                                                               t_on);
    }
    stats_.activates += count;
    stats_.precharges += count;
}

void
DramDevice::writeRowFill(uint32_t bank, uint32_t row, uint8_t fill)
{
    const uint32_t phys = mapping_.toPhysical(row);
    rowRef(bank, phys).setFill(fill);
    // A full-row write recharges every cell: pending disturbance wiped.
    pending_.erase(key(bank, phys));
}

void
DramDevice::writeByte(uint32_t bank, uint32_t row, uint32_t byte_index,
                      uint8_t value)
{
    const uint32_t phys = mapping_.toPhysical(row);
    rowRef(bank, phys).writeByte(byte_index, value);
}

uint8_t
DramDevice::readByte(uint32_t bank, uint32_t row, uint32_t byte_index)
{
    const uint32_t phys = mapping_.toPhysical(row);
    realize(bank, phys);
    return rowRef(bank, phys).readByte(byte_index);
}

uint64_t
DramDevice::countMismatchedBits(uint32_t bank, uint32_t row,
                                uint8_t expected_fill)
{
    const uint32_t phys = mapping_.toPhysical(row);
    realize(bank, phys);
    return rowRef(bank, phys).mismatchedBits(expected_fill);
}

std::vector<uint8_t>
DramDevice::readRow(uint32_t bank, uint32_t row)
{
    const uint32_t phys = mapping_.toPhysical(row);
    realize(bank, phys);
    return rowRef(bank, phys).toBytes();
}

bool
DramDevice::rowClone(uint32_t bank, uint32_t src_row, uint32_t dst_row,
                     Tick /* now */)
{
    ++stats_.rowClones;
    const uint32_t src = mapping_.toPhysical(src_row);
    const uint32_t dst = mapping_.toPhysical(dst_row);
    realize(bank, src);
    realize(bank, dst);
    const bool same_sa = subarrays_->sameSubarray(src, dst);
    // Intra-subarray RowClone is unofficial: it works for most but not
    // all row pairs (Sec. 5.4.1 Key Insight 2). The margin is a fixed
    // property of the pair, hence the deterministic per-pair hash.
    uint64_t h = hashSeed({spec_.seed, bank, src, dst, 0xC10EULL});
    const bool margin_ok = (h % 1000) < 930;
    if (same_sa && margin_ok) {
        RowData copy = rowRef(bank, src);
        rows_.insert_or_assign(key(bank, dst), std::move(copy));
        pending_.erase(key(bank, dst));
        return true;
    }
    // Failed attempt: the destination row's cells end up partially
    // overwritten by the interrupted charge sharing.
    RowData &rd = rowRef(bank, dst);
    const uint32_t bits = rd.sizeBits();
    const uint32_t corrupted = 16 + static_cast<uint32_t>(rng_.below(64));
    for (uint32_t i = 0; i < corrupted; ++i)
        rd.flipBit(static_cast<uint32_t>(rng_.below(bits)));
    return false;
}

std::optional<uint32_t>
DramDevice::openRow(uint32_t bank) const
{
    const BankState &bs = bankState_[bank];
    if (!bs.open)
        return std::nullopt;
    return mapping_.toLogical(bs.physRow);
}

double
DramDevice::pendingHammers(uint32_t bank, uint32_t row) const
{
    auto it = pending_.find(key(bank, mapping_.toPhysical(row)));
    return it == pending_.end() ? 0.0 : it->second;
}

RowData &
DramDevice::rowRef(uint32_t bank, uint32_t phys_row)
{
    auto [it, inserted] =
        rows_.try_emplace(key(bank, phys_row), spec_.rowBytes, uint8_t(0));
    return it->second;
}

double
DramDevice::severityRaw(uint32_t bank, uint32_t phys_row,
                        uint8_t victim_fill, uint8_t aggr_fill)
{
    const double tf = model_->trueCellFraction(bank, phys_row);
    const double same = model_->sameDataCoupling(bank, phys_row);
    double sum = 0.0;
    for (int b = 0; b < 8; ++b) {
        const int vbit = (victim_fill >> b) & 1;
        const int abit = (aggr_fill >> b) & 1;
        // A cell can discharge only if it currently holds charge
        // (value matches its true/anti orientation), and aggressor
        // bits matching the victim couple more weakly.
        const double p_charged = vbit ? tf : (1.0 - tf);
        const double coupling = (abit != vbit) ? 1.0 : same;
        sum += p_charged * coupling;
    }
    return (sum / 8.0) *
           model_->patternJitter(bank, phys_row, victim_fill, aggr_fill);
}

double
DramDevice::worstCaseSeverityRaw(uint32_t bank, uint32_t phys_row)
{
    // Canonical (aggressor, victim) fills of Table 2: RS, RSI, CS, CSI,
    // CB, CBI.
    static constexpr uint8_t kPatterns[6][2] = {
        {0xFF, 0x00}, {0x00, 0xFF}, {0xAA, 0xAA},
        {0x55, 0x55}, {0xAA, 0x55}, {0x55, 0xAA},
    };
    double worst = 0.0;
    for (const auto &p : kPatterns)
        worst = std::max(worst, severityRaw(bank, phys_row, p[1], p[0]));
    return worst;
}

double
DramDevice::patternSeverity(uint32_t bank, uint32_t phys_row)
{
    const double worst = worstCaseSeverityRaw(bank, phys_row);
    if (worst <= 0.0)
        return 0.0;

    auto fill_of = [&](uint32_t pr) -> uint8_t {
        auto it = rows_.find(key(bank, pr));
        return it == rows_.end() ? uint8_t(0) : it->second.fill();
    };

    const uint8_t victim_fill = fill_of(phys_row);
    const auto neighbors = subarrays_->disturbedNeighbors(phys_row);
    double raw = 0.0;
    for (uint32_t n : neighbors)
        raw += severityRaw(bank, phys_row, victim_fill, fill_of(n));
    if (!neighbors.empty())
        raw /= static_cast<double>(neighbors.size());
    const double sev = raw / worst;
    return std::clamp(sev, 0.0, 1.0);
}

void
DramDevice::realize(uint32_t bank, uint32_t phys_row)
{
    auto it = pending_.find(key(bank, phys_row));
    if (it == pending_.end())
        return;
    const double hammers = it->second;
    pending_.erase(it);
    if (!disturbanceEnabled_ || hammers <= 0.0)
        return;

    // Fast path: even at worst-case severity the row is below its
    // threshold, so the recharge wipes the disturbance with no flips.
    const double hcf = model_->hcFirst(bank, phys_row);
    if (hammers < hcf)
        return;

    const double sev = patternSeverity(bank, phys_row);
    if (sev <= 0.0)
        return;
    const double eff = hammers * sev;
    if (eff < hcf)
        return;

    const uint32_t bits = spec_.rowBytes * 8;
    const double ber = model_->berAt(bank, phys_row, eff);
    // ~5.7% iteration-to-iteration variation (Sec. 4.1 footnote 5).
    // The cap only binds far beyond the 128K-hammer calibration point
    // (largest in-range BER is ~8%), where flip *presence* matters but
    // the exact count does not; it keeps reverse-engineering probes
    // that hammer far past threshold from injecting pathological flip
    // volumes.
    const double iter_noise = std::exp(rng_.normal(0.0, 0.04));
    const double p = std::clamp(ber * iter_noise, 0.0, 0.12);
    // The first flip is the weakest cell itself: crossing HC_first
    // guarantees at least one flipped bit by definition.
    uint64_t n_flips = 1 + rng_.binomial(bits - 1, p);

    RowData &rd = rowRef(bank, phys_row);
    const double tf = model_->trueCellFraction(bank, phys_row);
    uint64_t applied = 0;
    for (uint64_t i = 0; i < n_flips; ++i) {
        // Flip a charged cell: stored value must match orientation.
        for (int attempt = 0; attempt < 8; ++attempt) {
            const uint32_t bit = static_cast<uint32_t>(rng_.below(bits));
            uint64_t oh = hashSeed({spec_.seed, bank, phys_row, bit,
                                    0x0B17ULL});
            const bool true_cell =
                (oh >> 11) * (1.0 / 9007199254740992.0) < tf;
            if (rd.bitAt(bit) == true_cell) {
                rd.flipBit(bit);
                ++applied;
                break;
            }
        }
    }
    if (applied > 0) {
        stats_.bitflipsInjected += applied;
        ++stats_.rowsFlipped;
    }
}

} // namespace svard::dram
