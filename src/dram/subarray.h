/**
 * @file
 * Subarray structure of a DRAM bank. A bank is a stack of subarrays of
 * a few hundred to ~1K rows each, separated by sense-amplifier stripes;
 * read disturbance does not cross subarray boundaries, which is the
 * physical fact both the characterization (Sec. 5.4.1) and the
 * reverse-engineering methodology exploit.
 */
#ifndef SVARD_DRAM_SUBARRAY_H
#define SVARD_DRAM_SUBARRAY_H

#include <cstdint>
#include <vector>

#include "dram/module_spec.h"

namespace svard::dram {

/** Location of a physical row within its subarray. */
struct SubarrayLocation
{
    uint32_t subarray;     ///< subarray index within the bank
    uint32_t offset;       ///< row offset from the subarray's low edge
    uint32_t size;         ///< rows in this subarray
    /** Distance to the nearest sense-amplifier stripe (subarray edge). */
    uint32_t
    distanceToSenseAmps() const
    {
        const uint32_t from_high = size - 1 - offset;
        return offset < from_high ? offset : from_high;
    }
    bool isLowEdge() const { return offset == 0; }
    bool isHighEdge() const { return offset == size - 1; }
    bool isEdge() const { return isLowEdge() || isHighEdge(); }
};

/**
 * Deterministic subarray map of a bank: a partition of the bank's
 * physical rows into consecutively laid-out subarrays whose sizes are
 * drawn (seeded) from the module's subarray-size distribution, matching
 * the paper's finding of 330-1027 rows per subarray and 32-206
 * subarrays per bank. The layout is a property of the chip design, so
 * all banks of a module share one map.
 */
class SubarrayMap
{
  public:
    /** Build the (per-design) map for the given module. */
    explicit SubarrayMap(const ModuleSpec &spec);

    uint32_t numSubarrays() const
    {
        return static_cast<uint32_t>(sizes_.size());
    }
    uint32_t rows() const { return rows_; }
    uint32_t subarraySize(uint32_t sa) const { return sizes_[sa]; }
    uint32_t subarrayBase(uint32_t sa) const { return bases_[sa]; }

    /** Locate a physical row. */
    SubarrayLocation locate(uint32_t phys_row) const;

    /** True if both rows lie in the same subarray. */
    bool sameSubarray(uint32_t row_a, uint32_t row_b) const;

    /**
     * Physical neighbors of a row that share its subarray (the rows an
     * activation of `phys_row` disturbs). One neighbor for edge rows,
     * two otherwise.
     */
    std::vector<uint32_t> disturbedNeighbors(uint32_t phys_row) const;

    /**
     * Allocation-free variant for per-activation hot paths: writes the
     * neighbors into `out` and returns how many there are (0..2).
     */
    uint32_t disturbedNeighbors(uint32_t phys_row,
                                uint32_t out[2]) const;

  private:
    uint32_t rows_;
    std::vector<uint32_t> sizes_;
    std::vector<uint32_t> bases_;  ///< first physical row of each subarray
};

} // namespace svard::dram

#endif // SVARD_DRAM_SUBARRAY_H
