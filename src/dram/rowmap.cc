#include "dram/rowmap.h"

#include "common/log.h"

namespace svard::dram {

namespace {

/** Swap rows 2 and 3 within every aligned group of four rows. */
uint32_t
mirrorPairs(uint32_t row)
{
    // XOR the LSB when bit 1 is set: 0,1,3,2 ordering per group of 4.
    return row ^ ((row >> 1) & 1u);
}

/** Swap bits 1 and 3 of the row address. */
uint32_t
bitSwap13(uint32_t row)
{
    const uint32_t b1 = (row >> 1) & 1u;
    const uint32_t b3 = (row >> 3) & 1u;
    uint32_t out = row & ~((1u << 1) | (1u << 3));
    out |= b3 << 1;
    out |= b1 << 3;
    return out;
}

} // anonymous namespace

RowMapping::RowMapping(Scheme scheme, uint32_t rows)
    : scheme_(scheme), rows_(rows)
{
    // Both non-trivial schemes permute within aligned groups of 16 rows,
    // so any power-of-two row count is closed under them.
    SVARD_ASSERT((rows & (rows - 1)) == 0 && rows >= 16,
                 "row mapping needs a power-of-two row count >= 16");
}

RowMapping::RowMapping(int scheme_id, uint32_t rows)
    : RowMapping(static_cast<Scheme>(scheme_id), rows)
{
    SVARD_ASSERT(scheme_id >= 0 && scheme_id <= 2,
                 "unknown row mapping scheme id");
}

uint32_t
RowMapping::toPhysical(uint32_t logical_row) const
{
    SVARD_ASSERT(logical_row < rows_, "logical row out of range");
    switch (scheme_) {
      case Scheme::Identity: return logical_row;
      case Scheme::MirrorPairs: return mirrorPairs(logical_row);
      case Scheme::BitSwap: return bitSwap13(logical_row);
    }
    return logical_row;
}

uint32_t
RowMapping::toLogical(uint32_t physical_row) const
{
    SVARD_ASSERT(physical_row < rows_, "physical row out of range");
    // All implemented schemes are involutions.
    switch (scheme_) {
      case Scheme::Identity: return physical_row;
      case Scheme::MirrorPairs: return mirrorPairs(physical_row);
      case Scheme::BitSwap: return bitSwap13(physical_row);
    }
    return physical_row;
}

} // namespace svard::dram
