/**
 * @file
 * Behavioral DDR4 DRAM device with read-disturbance fault injection.
 *
 * This is the library's stand-in for a real DDR4 module under test: it
 * executes DRAM commands (ACT/PRE/RD/WR/REF) with explicit timestamps,
 * tracks row contents sparsely, and injects RowHammer/RowPress bitflips
 * according to a pluggable DisturbanceModel. The interface operates on
 * *logical* row addresses (what a memory controller sees); the device
 * applies the module's internal row scrambling and subarray structure,
 * so adjacency-dependent effects behave as they do on real chips.
 */
#ifndef SVARD_DRAM_DEVICE_H
#define SVARD_DRAM_DEVICE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/flat_table.h"
#include "common/rng.h"
#include "common/word_table.h"
#include "dram/disturbance.h"
#include "dram/module_spec.h"
#include "dram/rowdata.h"
#include "dram/rowmap.h"
#include "dram/subarray.h"
#include "dram/timing.h"
#include "dram/types.h"

namespace svard::dram {

/** Aggregate device statistics. */
struct DeviceStats
{
    uint64_t activates = 0;       ///< ACT commands executed
    uint64_t precharges = 0;      ///< PRE commands executed
    uint64_t refreshes = 0;       ///< full-device refreshes
    uint64_t bitflipsInjected = 0;///< read-disturbance bitflips realized
    uint64_t rowsFlipped = 0;     ///< realize events that flipped >= 1 bit
    uint64_t rowClones = 0;       ///< RowClone attempts
};

/**
 * Behavioral DRAM device (one rank's worth of lock-stepped chips).
 *
 * Commands carry explicit picosecond timestamps supplied by the caller
 * (the DRAM-Bender-style TestSession or the cycle-level simulator); the
 * device derives aggressor on-time (tAggOn) from the ACT->PRE gap, which
 * is what makes RowPress emerge from command timing rather than from a
 * special-cased API.
 */
class DramDevice
{
  public:
    DramDevice(const ModuleSpec &spec,
               std::shared_ptr<const SubarrayMap> subarrays,
               std::shared_ptr<const DisturbanceModel> model,
               uint64_t seed = 1);

    /** Convenience: builds the subarray map internally. */
    DramDevice(const ModuleSpec &spec,
               std::shared_ptr<const DisturbanceModel> model,
               uint64_t seed = 1);

    // ------------------------------------------------------------
    // Command interface (logical row addresses, picosecond times)
    // ------------------------------------------------------------

    /** Open a row; realizes pending disturbance on it (charge restore). */
    void activate(uint32_t bank, uint32_t row, Tick now);

    /** Close the open row; credits disturbance to its neighbors. */
    void precharge(uint32_t bank, Tick now);

    /** Precharge every open bank. */
    void prechargeAll(Tick now);

    /**
     * Refresh every row of every bank: pending disturbance is realized
     * (flips that already crossed threshold are locked in) and the
     * accumulated disturbance of all rows resets.
     */
    void refreshAllRows(Tick now);

    /** Refresh one row (victim-row preventive refresh). */
    void refreshRow(uint32_t bank, uint32_t row, Tick now);

    /**
     * Bulk hammer: `count` back-to-back ACT/PRE pairs of one row, each
     * held open for `t_on`. Semantically identical to the per-command
     * loop (the hammered row's neighbors are never activated in
     * between, so their accumulation is linear in count), but O(1)
     * instead of O(count) — this is what makes full Alg. 1 sweeps
     * tractable. The bank must be precharged.
     */
    void hammer(uint32_t bank, uint32_t row, uint64_t count, Tick t_on,
                Tick now);

    // ------------------------------------------------------------
    // Data access (used while the row is open)
    // ------------------------------------------------------------

    /** Fill the open row with a repeating data-pattern byte. */
    void writeRowFill(uint32_t bank, uint32_t row, uint8_t fill);

    /** Write one byte of a row. */
    void writeByte(uint32_t bank, uint32_t row, uint32_t byte_index,
                   uint8_t value);

    /** Read one byte of a row (after realizing pending disturbance). */
    uint8_t readByte(uint32_t bank, uint32_t row, uint32_t byte_index);

    /**
     * Count bits in the row that differ from the expected repeating
     * fill byte; realizes pending disturbance first. This is the BER
     * numerator of Alg. 1's measure_BER.
     */
    uint64_t countMismatchedBits(uint32_t bank, uint32_t row,
                                 uint8_t expected_fill);

    /** Full row content snapshot (realizes pending disturbance). */
    std::vector<uint8_t> readRow(uint32_t bank, uint32_t row);

    // ------------------------------------------------------------
    // RowClone (Sec. 5.4.1 Key Insight 2)
    // ------------------------------------------------------------

    /**
     * Attempt an intra-subarray RowClone (ACT src -> PRE -> ACT dst in
     * quick succession, violating tRAS). Succeeds only when both rows
     * share a subarray AND the (deterministic, per-pair) circuit margin
     * allows it; cross-subarray attempts always fail and corrupt the
     * destination. Returns true on a clean copy.
     */
    bool rowClone(uint32_t bank, uint32_t src_row, uint32_t dst_row,
                  Tick now);

    // ------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------

    const ModuleSpec &spec() const { return spec_; }
    const SubarrayMap &subarrays() const { return *subarrays_; }
    const RowMapping &mapping() const { return mapping_; }
    const DisturbanceModel &model() const { return *model_; }
    const DeviceStats &stats() const { return stats_; }
    const TimingParams &timing() const { return timing_; }

    /** Shared handles, for spawning sibling devices of the same module
     *  (the characterizer's per-row isolated workspaces). */
    std::shared_ptr<const SubarrayMap> subarraysShared() const
    {
        return subarrays_;
    }
    std::shared_ptr<const DisturbanceModel> modelShared() const
    {
        return model_;
    }

    /** Open row of a bank, if any (logical address). */
    std::optional<uint32_t> openRow(uint32_t bank) const;

    /** Accumulated effective hammers pending on a *logical* row. */
    double pendingHammers(uint32_t bank, uint32_t row) const;

    /** Disable/enable disturbance injection (interference control). */
    void setDisturbanceEnabled(bool on) { disturbanceEnabled_ = on; }
    bool disturbanceEnabled() const { return disturbanceEnabled_; }

    /**
     * Drop every memoized per-row model quantity (HC_first,
     * severities, ACT weights). Required whenever the disturbance
     * model's answers change underneath the device — e.g. a
     * fault::DriftingModel epoch advance — since the memo otherwise
     * keeps serving calibration-time values. O(1) (generation bump).
     */
    void invalidateModelMemo() { memo_.clear(); }

  private:
    struct BankState
    {
        bool open = false;
        uint32_t physRow = 0;
        Tick actTime = 0;
    };

    static uint64_t
    key(uint32_t bank, uint32_t phys_row)
    {
        return (static_cast<uint64_t>(bank) << 32) | phys_row;
    }

    RowData &rowRef(uint32_t bank, uint32_t phys_row);

    /**
     * Lazily-memoized per-row model quantities. The disturbance model
     * derives each from seeded hashes (exp/log/trig per query), and
     * realize() needs the same values for every ACT of a row during a
     * hammer sweep — so the device caches them per (bank, phys row) in
     * a flat table the first time each row is touched.
     */
    struct ModelMemo
    {
        double hcFirst = 0.0;
        double trueCellFrac = 0.0;
        double sameCoupling = 0.0;
        double worstSeverity = 0.0;
        Tick actWeightTon = -1;   ///< on-time the cached weight is for
        double actWeight = 0.0;
        uint32_t sevFills = ~0u;  ///< (victim<<8|aggr) fills of sevRaw
        double sevRaw = 0.0;
        uint8_t flags = 0;
    };

    ModelMemo &memoRef(uint32_t bank, uint32_t phys_row);
    double memoHcFirst(uint32_t bank, uint32_t phys_row);
    double memoActWeight(uint32_t bank, uint32_t phys_row, Tick t_on);

    /**
     * Apply any pending disturbance to a physical row's stored data
     * (called when the row's charge is restored: ACT or REF of that
     * row) and reset its accumulator.
     */
    void realize(uint32_t bank, uint32_t phys_row);

    /** Severity in (0,1] of the current data pattern around a victim. */
    double patternSeverity(uint32_t bank, uint32_t phys_row,
                           ModelMemo &memo);

    /** severityRaw with a one-entry per-row (fills -> value) cache:
     *  a hammer sweep realizes its victim with the same data pattern
     *  over and over, so the repeat lookup skips the jitter RNG. */
    double severityRawCached(uint32_t bank, uint32_t phys_row,
                             ModelMemo &memo, uint8_t victim_fill,
                             uint8_t aggr_fill);

    /** Worst-case severity over the canonical pattern set (Table 2). */
    double worstCaseSeverityRaw(uint32_t bank, uint32_t phys_row,
                                const ModelMemo &memo);

    double severityRaw(uint32_t bank, uint32_t phys_row,
                       const ModelMemo &memo, uint8_t victim_fill,
                       uint8_t aggr_fill);

    const ModuleSpec &spec_;
    std::shared_ptr<const SubarrayMap> subarrays_;
    std::shared_ptr<const DisturbanceModel> model_;
    RowMapping mapping_;
    TimingParams timing_;
    Rng rng_;
    bool disturbanceEnabled_ = true;

    std::vector<BankState> bankState_;
    FlatTable<RowData> rows_;
    FlatTable<double> pending_;
    FlatTable<ModelMemo> memo_;
    std::vector<uint64_t> refreshKeys_; ///< reused refreshAllRows buffer
    WordTable flipScratch_{64}; ///< reused realize() word->delta staging
    DeviceStats stats_;
};

} // namespace svard::dram

#endif // SVARD_DRAM_DEVICE_H
