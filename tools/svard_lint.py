#!/usr/bin/env python3
"""svard_lint: repo-invariant linter for the svard tree.

Enforces invariants that the compiler cannot see and that earlier PRs
established by hand:

  defense-no-node-maps   Node-based maps (std::map / std::unordered_map)
                         are banned in src/defense/: defense hot paths
                         (onActivate and friends) moved to FlatTable /
                         dense arrays for determinism and speed, and a
                         map reintroduced "just for setup" has a way of
                         creeping into the per-activation path.
  no-wallclock           rand()/std::random_device and the std::chrono
                         wall/monotonic clocks are banned in src/ except
                         where timing is observability-only: simulation
                         results must be a pure function of (spec, seed)
                         via common/rng.h, or sweeps stop being
                         reproducible.
  raw-io-fault-points    Raw write()/fwrite()/rename() in src/io/ and
                         src/fabric/ must route through io/retry.cc's
                         registered fault-injection wrappers (or carry an
                         explicit allow next to a faults::check point) so
                         the crash-tolerance suite can reach every
                         durability path.
  metric-init-only       obs:: metric registration must be a
                         `static const obs::MetricId` initializer
                         (function-local static = once, on first use);
                         re-registering per call would take the registry
                         lock on hot paths and can resize tables
                         mid-sweep.
  include-guard          Every header under src/ carries the canonical
                         guard SVARD_<DIR>_<NAME>_H; duplicated or stale
                         guards silently drop declarations.

Escapes, in order of preference:

  1. Inline, same line or the line above the finding:
         // svard-lint: allow(<rule-id>) <reason>
  2. Per-rule path allowlist with rationale: tools/svard_lint_allow.txt

Usage:
    tools/svard_lint.py               lint the tree (exit 1 on findings)
    tools/svard_lint.py FILE...       lint specific files
    tools/svard_lint.py --self-test   run the fixture suite
    tools/svard_lint.py --list-rules  print the rule table

No compiler, no build tree: a full-tree run is a few hundred
milliseconds, cheap enough for CI and pre-commit alike.
"""

from __future__ import annotations

import argparse
import fnmatch
import os
import re
import sys
from dataclasses import dataclass, field

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ALLOWLIST_PATH = os.path.join(REPO, "tools", "svard_lint_allow.txt")
ALLOW_RE = re.compile(r"svard-lint:\s*allow\(([a-z0-9-]+)\)")


@dataclass
class Finding:
    rule: str
    path: str       # repo-relative
    line: int       # 1-based
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Rule:
    id: str
    paths: list[str]          # repo-relative fnmatch globs
    message: str
    pattern: re.Pattern | None = None
    exts: tuple[str, ...] = (".h", ".cc")
    # Custom per-file check; receives (rule, relpath, raw_lines,
    # code_lines) and yields Findings. When set, `pattern` is unused.
    check: object = None

    def applies_to(self, relpath: str) -> bool:
        if not relpath.endswith(self.exts):
            return False
        return any(fnmatch.fnmatch(relpath, g) for g in self.paths)


def strip_comments(lines: list[str]) -> list[str]:
    """Blank out // and /* */ comment text (same line count), so rules
    match code, not prose about code. String literals are not parsed —
    the banned tokens don't plausibly appear inside them."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
                continue
            if line.startswith("//", i):
                break
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            buf.append(line[i])
            i += 1
        out.append("".join(buf))
    return out


def pattern_check(rule: Rule, relpath: str, raw: list[str],
                  code: list[str]):
    for idx, line in enumerate(code):
        if rule.pattern.search(line):
            yield Finding(rule.id, relpath, idx + 1, rule.message)


def metric_init_check(rule: Rule, relpath: str, raw: list[str],
                      code: list[str]):
    """Registration must be the initializer of a `static const
    obs::MetricId` (the statement may wrap, so look back two lines)."""
    decl = re.compile(r"static\s+const\s+obs::MetricId\b")
    for idx, line in enumerate(code):
        if not rule.pattern.search(line):
            continue
        window = "".join(code[max(0, idx - 2): idx + 1])
        if not decl.search(window):
            yield Finding(rule.id, relpath, idx + 1, rule.message)


def include_guard_check(rule: Rule, relpath: str, raw: list[str],
                        code: list[str]):
    stem = relpath[len("src/"):-len(".h")]
    expect = "SVARD_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H"
    ifndef = re.compile(r"^\s*#\s*ifndef\s+(\S+)")
    for idx, line in enumerate(code):
        m = ifndef.match(line)
        if m is None:
            continue
        if m.group(1) != expect:
            yield Finding(rule.id, relpath, idx + 1,
                          f"include guard is '{m.group(1)}', canonical "
                          f"form is '{expect}'")
        # Only the first #ifndef is the guard; later ones are nested
        # conditionals.
        break
    else:
        if any("#pragma once" in l for l in code):
            yield Finding(rule.id, relpath, 1,
                          f"uses #pragma once; this tree standardizes on "
                          f"the guard '{expect}'")
        else:
            yield Finding(rule.id, relpath, 1,
                          f"missing include guard '{expect}'")


RULES = [
    Rule(
        id="defense-no-node-maps",
        paths=["src/defense/*"],
        pattern=re.compile(r"\bstd::(unordered_map|map)\s*<"),
        message="std::map/std::unordered_map banned in src/defense/ "
                "(onActivate paths use FlatTable / dense arrays; see "
                "common/flat_table.h)",
    ),
    Rule(
        id="no-wallclock",
        paths=["src/*", "src/*/*"],
        pattern=re.compile(
            r"(?<![\w:])rand\s*\(\s*\)|std::random_device"
            r"|\b(?:std::chrono::)?(?:system_clock|steady_clock)\b"),
        message="wall/monotonic clocks and ambient randomness banned in "
                "src/ (results must be pure in (spec, seed); use "
                "common/rng.h — timing-only uses go in the allowlist)",
    ),
    Rule(
        id="raw-io-fault-points",
        paths=["src/io/*", "src/fabric/*"],
        # `::write(` only at global scope: `ClassName::write(` is a
        # method definition/call, not the POSIX syscall.
        pattern=re.compile(
            r"(?:std::|::)?\b(?:fwrite|rename)\s*\("
            r"|(?<![\w)>])::write\s*\("),
        message="raw write/fwrite/rename must go through io/retry.cc's "
                "fault-injected wrappers (or sit on a faults::check "
                "point with an inline allow)",
    ),
    Rule(
        id="metric-init-only",
        paths=["src/*", "src/*/*"],
        pattern=re.compile(r"obs::(counter|gauge|histogram)\s*\("),
        message="metric registration outside a `static const "
                "obs::MetricId` initializer (registration is "
                "init-path-only; per-call registration locks the "
                "registry on hot paths)",
        check=metric_init_check,
    ),
    Rule(
        id="include-guard",
        paths=["src/*", "src/*/*"],
        exts=(".h",),
        message="",  # composed per finding
        check=include_guard_check,
    ),
]


def load_allowlist(path: str) -> list[tuple[str, str]]:
    """Returns (rule-id, path-glob) pairs. Format, one per line:
         <rule-id>  <repo-relative-glob>   # rationale
    """
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for ln, line in enumerate(f, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                sys.exit(f"{path}:{ln}: malformed allowlist entry "
                         f"(want '<rule-id> <glob>')")
            entries.append((parts[0], parts[1]))
    return entries


def allowed(finding: Finding, raw: list[str],
            allowlist: list[tuple[str, str]]) -> bool:
    for where in (finding.line - 1, finding.line - 2):
        if 0 <= where < len(raw):
            m = ALLOW_RE.search(raw[where])
            if m and m.group(1) == finding.rule:
                return True
    return any(rule == finding.rule and
               fnmatch.fnmatch(finding.path, glob)
               for rule, glob in allowlist)


def lint_file(abspath: str, relpath: str,
              allowlist: list[tuple[str, str]]) -> list[Finding]:
    try:
        with open(abspath, encoding="utf-8", errors="replace") as f:
            raw = f.read().splitlines()
    except OSError as e:
        return [Finding("io-error", relpath, 1, str(e))]
    code = strip_comments(raw)
    findings = []
    for rule in RULES:
        if not rule.applies_to(relpath):
            continue
        checker = rule.check or pattern_check
        for finding in checker(rule, relpath, raw, code):
            if not allowed(finding, raw, allowlist):
                findings.append(finding)
    return findings


def iter_tree() -> list[str]:
    out = []
    for root, _dirs, files in os.walk(os.path.join(REPO, "src")):
        for name in files:
            if name.endswith((".h", ".cc")):
                out.append(os.path.join(root, name))
    return sorted(out)


def run_lint(paths: list[str]) -> int:
    allowlist = load_allowlist(ALLOWLIST_PATH)
    known = {r.id for r in RULES}
    for rule_id, _glob in allowlist:
        if rule_id not in known:
            sys.exit(f"{ALLOWLIST_PATH}: unknown rule '{rule_id}'")
    files = [os.path.abspath(p) for p in paths] if paths else iter_tree()
    findings = []
    for abspath in files:
        relpath = os.path.relpath(abspath, REPO).replace(os.sep, "/")
        findings.extend(lint_file(abspath, relpath, allowlist))
    for f in findings:
        print(f)
    n = len(files)
    if findings:
        print(f"svard_lint: {len(findings)} finding(s) in {n} file(s)",
              file=sys.stderr)
        return 1
    print(f"svard_lint: clean ({n} files, {len(RULES)} rules)")
    return 0


# ----------------------------------------------------------------------
# Self-test: every rule gets a seeded violation fixture (must fire with
# the exact rule id) and an allow-escape fixture (must stay quiet), plus
# negative fixtures for the sharper edges of each matcher.
# ----------------------------------------------------------------------

@dataclass
class Fixture:
    name: str          # fake repo-relative path (drives rule routing)
    content: str
    expect: list[str]  # exact rule ids expected, [] = must be clean


FIXTURES = [
    # -- defense-no-node-maps ------------------------------------------
    Fixture(
        "src/defense/fixture.cc",
        "#include <map>\nstd::map<int, int> counts_;\n",
        ["defense-no-node-maps"]),
    Fixture(
        "src/defense/fixture.cc",
        "#include <unordered_map>\n"
        "std::unordered_map<uint32_t, uint32_t> remap;\n",
        ["defense-no-node-maps"]),
    Fixture(
        "src/defense/fixture.cc",
        "// svard-lint: allow(defense-no-node-maps) init-path only\n"
        "std::map<int, int> factories_;\n",
        []),
    Fixture(  # comments about maps are not findings
        "src/defense/fixture.cc",
        "// replaced the std::unordered_map implementation\n"
        "int x;\n",
        []),
    Fixture(  # outside src/defense/, maps are fine
        "src/engine/fixture.cc",
        "std::map<int, int> counts_;\n",
        []),
    # -- no-wallclock --------------------------------------------------
    Fixture(
        "src/core/fixture.cc",
        "auto t = std::chrono::steady_clock::now();\n",
        ["no-wallclock"]),
    Fixture(
        "src/core/fixture.cc",
        "int r = rand();\n",
        ["no-wallclock"]),
    Fixture(
        "src/core/fixture.cc",
        "std::random_device rd;\n",
        ["no-wallclock"]),
    Fixture(
        "src/core/fixture.cc",
        "auto t = std::chrono::system_clock::now(); "
        "// svard-lint: allow(no-wallclock) log stamp only\n",
        []),
    Fixture(  # xoshiro from common/rng.h is the sanctioned randomness
        "src/core/fixture.cc",
        "svard::Xoshiro256 rng(seed);\nauto v = rng.next();\n",
        []),
    Fixture(  # rng.srand()-style member names must not trip \brand\(
        "src/core/fixture.cc",
        "auto v = owner.brand();\n",
        []),
    # -- raw-io-fault-points -------------------------------------------
    Fixture(
        "src/io/fixture.cc",
        "std::fwrite(buf, 1, n, f);\n",
        ["raw-io-fault-points"]),
    Fixture(
        "src/fabric/fixture.cc",
        "if (::write(fd, p, n) != (ssize_t)n) fail();\n",
        ["raw-io-fault-points"]),
    Fixture(
        "src/io/fixture.cc",
        "std::rename(tmp.c_str(), path.c_str());\n",
        ["raw-io-fault-points"]),
    Fixture(
        "src/io/fixture.cc",
        "faults::check(\"fixture.write\");\n"
        "// svard-lint: allow(raw-io-fault-points) on a check point\n"
        "std::fwrite(buf, 1, n, f);\n",
        []),
    Fixture(  # sink->write(row) is a method call, not raw I/O
        "src/io/fixture.cc",
        "sink_->write(row);\nouter.write(row);\n",
        []),
    Fixture(  # qualified method definitions are not the syscall
        "src/io/fixture.cc",
        "void\nAsyncSink::write(const engine::CellResult &row)\n{\n}\n",
        []),
    Fixture(  # raw I/O outside io/fabric is out of scope for this rule
        "src/obs/fixture.cc",
        "std::fwrite(buf, 1, n, f);\n",
        []),
    # -- metric-init-only ----------------------------------------------
    Fixture(
        "src/sim/fixture.cc",
        "void tick() {\n  obs::add(obs::counter(\"sim.ticks\"));\n}\n",
        ["metric-init-only"]),
    Fixture(
        "src/sim/fixture.cc",
        "static const obs::MetricId ticks =\n"
        "    obs::counter(\"sim.ticks\");\n",
        []),
    Fixture(
        "src/sim/fixture.cc",
        "const auto id = obs::gauge(\"sim.depth\"); "
        "// svard-lint: allow(metric-init-only) test scaffolding\n",
        []),
    # -- include-guard -------------------------------------------------
    Fixture(
        "src/core/fixture.h",
        "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n#endif\n",
        ["include-guard"]),
    Fixture(
        "src/core/fixture.h",
        "#pragma once\nint x;\n",
        ["include-guard"]),
    Fixture(
        "src/core/fixture.h",
        "int x;\n",
        ["include-guard"]),
    Fixture(
        "src/core/fixture.h",
        "#ifndef SVARD_CORE_FIXTURE_H\n"
        "#define SVARD_CORE_FIXTURE_H\n"
        "#ifdef SVARD_SIMD_OFF\n#endif\n"  # nested #ifndef-adjacent ok
        "#endif\n",
        []),
    # -- multi-rule ----------------------------------------------------
    Fixture(
        "src/defense/fixture.cc",
        "std::map<int, int> m;\nint r = rand();\n",
        ["defense-no-node-maps", "no-wallclock"]),
]


def self_test() -> int:
    failures = 0
    import tempfile
    for i, fx in enumerate(FIXTURES):
        with tempfile.NamedTemporaryFile(
                "w", suffix=os.path.basename(fx.name),
                delete=False) as tmp:
            tmp.write(fx.content)
            tmp_path = tmp.name
        try:
            # Empty allowlist: self-test exercises rules and inline
            # escapes only, independent of the tree's allow file.
            found = lint_file(tmp_path, fx.name, [])
        finally:
            os.unlink(tmp_path)
        got = sorted(f.rule for f in found)
        want = sorted(fx.expect)
        if got != want:
            failures += 1
            print(f"self-test FAIL [{i}] {fx.name}: expected "
                  f"{want or 'clean'}, got {got or 'clean'}")
            for f in found:
                print(f"    {f}")
    total = len(FIXTURES)
    if failures:
        print(f"svard_lint --self-test: {failures}/{total} fixtures "
              f"FAILED", file=sys.stderr)
        return 1
    print(f"svard_lint --self-test: {total} fixtures passed")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: the whole src/ tree)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite and exit")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table and exit")
    args = ap.parse_args()
    if args.list_rules:
        for r in RULES:
            print(f"{r.id}: {r.message or 'canonical include guards'}")
            print(f"    scope: {', '.join(r.paths)}  "
                  f"exts: {', '.join(r.exts)}")
        return 0
    if args.self_test:
        return self_test()
    return run_lint(args.files)


if __name__ == "__main__":
    sys.exit(main())
