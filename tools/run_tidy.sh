#!/usr/bin/env bash
# Run clang-tidy over the svard sources using the exported compilation
# database. Usage:
#
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir defaults to the first of build/ build-*/ that contains
# compile_commands.json (CMakeLists.txt exports it unconditionally).
# Exits nonzero on any warning: .clang-tidy sets WarningsAsErrors '*',
# so a clean run is the only green run.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_tidy: '$TIDY' not found (set CLANG_TIDY=...)" >&2
    exit 2
fi

BUILD_DIR=""
if [[ $# -gt 0 && "$1" != "--" ]]; then
    BUILD_DIR="$1"
    shift
fi
if [[ $# -gt 0 && "$1" == "--" ]]; then
    shift
fi
if [[ -z "$BUILD_DIR" ]]; then
    for d in build build-*; do
        if [[ -f "$d/compile_commands.json" ]]; then
            BUILD_DIR="$d"
            break
        fi
    done
fi
if [[ -z "$BUILD_DIR" || ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    echo "run_tidy: no compile_commands.json found (configure with cmake first)" >&2
    exit 2
fi

echo "run_tidy: using $BUILD_DIR/compile_commands.json"

# Sources only — headers are checked transitively via
# HeaderFilterRegex, which keeps each header's findings attached to a
# TU that actually compiles it.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)

JOBS="${TIDY_JOBS:-$(nproc)}"
STATUS=0
printf '%s\0' "${SOURCES[@]}" |
    xargs -0 -P "$JOBS" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet "$@" ||
    STATUS=$?

if [[ $STATUS -ne 0 ]]; then
    echo "run_tidy: FAILED (warnings above; .clang-tidy documents the profile)" >&2
else
    echo "run_tidy: clean (${#SOURCES[@]} files)"
fi
exit $STATUS
