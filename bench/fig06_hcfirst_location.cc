/**
 * @file
 * Reproduces paper Fig. 6: HC_first vs the row's relative location in
 * the bank, normalized to the module's minimum HC_first. The paper's
 * takeaway — HC_first varies significantly but *irregularly* with
 * location (unlike BER) — shows up as bucket means with no consistent
 * trend; the bucket-to-bucket correlation is reported as evidence.
 */
#include <array>

#include "bench_util.h"
#include "common/stats.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    constexpr int kBuckets = 16;
    Table t("Fig. 6: HC_first vs relative row location "
            "(normalized to module minimum)",
            {"Module", "RelLoc", "Norm(mean)", "Norm(min)",
             "Norm(max)"});
    Table reg("Fig. 6 regularity check: |corr(location, HC_first)|",
              {"Module", "AbsPearson"});

    for (const auto &label : allLabels()) {
        ModuleRig rig(label);
        auto opt = benchCharzOptions(rig.spec);
        opt.banks = {1};
        const auto results = rig.charz.characterizeBank(1, opt);

        double min_hc = 1e18;
        for (const auto &r : results)
            min_hc = std::min(min_hc, double(r.hcFirst));

        std::array<std::vector<double>, kBuckets> buckets;
        std::vector<double> xs, ys;
        for (const auto &r : results) {
            int b = static_cast<int>(r.relativeLocation * kBuckets);
            if (b >= kBuckets)
                b = kBuckets - 1;
            buckets[b].push_back(double(r.hcFirst) / min_hc);
            xs.push_back(r.relativeLocation);
            ys.push_back(double(r.hcFirst));
        }
        for (int b = 0; b < kBuckets; ++b) {
            if (buckets[b].empty())
                continue;
            t.addRow({label, Table::fmt((b + 0.5) / kBuckets, 3),
                      Table::fmt(mean(buckets[b]), 2),
                      Table::fmt(minOf(buckets[b]), 2),
                      Table::fmt(maxOf(buckets[b]), 2)});
        }
        reg.addRow({label, Table::fmt(std::abs(pearson(xs, ys)), 3)});
    }
    t.print();
    reg.print();
    return 0;
}
