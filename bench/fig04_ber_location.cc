/**
 * @file
 * Reproduces paper Fig. 4: BER at 128K hammers as a function of the
 * row's relative location in its bank. The curve is the per-location
 * mean across the four tested banks, normalized to the curve's
 * minimum (the paper's y-axis); the shades are the min/max across
 * banks at each location. The periodic structure (e.g. S4's minima at
 * 0.25 multiples) and M1's elevated chunk around [0.03, 0.12] should
 * be visible.
 */
#include <array>

#include "bench_util.h"
#include "common/stats.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    constexpr int kBuckets = 20;
    Table t("Fig. 4: BER vs relative row location "
            "(per-location mean, normalized to the curve minimum; "
            "min/max across banks)",
            {"Module", "RelLoc", "NormBER", "MinAcrossBanks",
             "MaxAcrossBanks"});

    for (const auto &label : allLabels()) {
        ModuleRig rig(label);
        auto opt = benchCharzOptions(rig.spec);

        // Per-(bank, bucket) mean of interior-row BER (subarray-edge
        // rows receive one-sided disturbance and belong to Fig. 3's
        // low whisker, not the location curve).
        std::vector<std::array<double, kBuckets>> bank_means;
        for (uint32_t bank : opt.banks) {
            auto bank_opt = opt;
            bank_opt.banks = {bank};
            const auto results =
                rig.charz.characterizeBank(bank, bank_opt);
            std::array<std::vector<double>, kBuckets> buckets;
            for (const auto &r : results) {
                if (r.ber128k <= 0.0 || r.numAggressors != 2)
                    continue;
                int b = static_cast<int>(r.relativeLocation * kBuckets);
                if (b >= kBuckets)
                    b = kBuckets - 1;
                buckets[b].push_back(r.ber128k);
            }
            std::array<double, kBuckets> means{};
            for (int b = 0; b < kBuckets; ++b)
                means[b] = mean(buckets[b]);
            bank_means.push_back(means);
        }

        // Curve = mean across banks; normalize to the curve minimum.
        std::array<double, kBuckets> curve{}, lo{}, hi{};
        double curve_min = 1e18;
        for (int b = 0; b < kBuckets; ++b) {
            std::vector<double> vals;
            for (const auto &m : bank_means)
                if (m[b] > 0.0)
                    vals.push_back(m[b]);
            if (vals.empty())
                continue;
            curve[b] = mean(vals);
            lo[b] = minOf(vals);
            hi[b] = maxOf(vals);
            curve_min = std::min(curve_min, curve[b]);
        }
        if (curve_min >= 1e18)
            continue;
        for (int b = 0; b < kBuckets; ++b) {
            if (curve[b] <= 0.0)
                continue;
            t.addRow({label, Table::fmt((b + 0.5) / kBuckets, 3),
                      Table::fmt(curve[b] / curve_min, 3),
                      Table::fmt(lo[b] / curve_min, 3),
                      Table::fmt(hi[b] / curve_min, 3)});
        }
    }
    t.print();
    return 0;
}
