/**
 * @file
 * Reproduces paper Fig. 3: the distribution of per-row BER at a hammer
 * count of 128K (tAggOn = 36 ns) across rows of four banks (one per
 * bank group) of every module, as box-and-whiskers statistics with the
 * row-level coefficient of variation annotated per module.
 */
#include "bench_util.h"
#include "common/stats.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    Table t("Fig. 3: BER distribution across rows and banks "
            "(HC=128K, tAggOn=36ns, WCDP; interior rows — subarray-"
            "edge rows receive one-sided disturbance and sit far "
            "below the distribution)",
            {"Module", "Bank", "Min", "Q1", "Median", "Q3", "Max",
             "Mean", "CV%(meas)", "CV%(paper)"});

    for (const auto &label : allLabels()) {
        ModuleRig rig(label);
        // Full 6-pattern WCDP: the stripe-only quick mode adds
        // per-row severity noise that inflates the CV. Iterations
        // with worst-case recording tame the counting noise of
        // low-BER modules (tens of flips per row), as the paper's
        // ten-iteration methodology does.
        auto opt = benchCharzOptions(rig.spec, /*quick_wcdp=*/false);
        opt.iterations = static_cast<int>(envInt("SVARD_ITERS", 3));
        std::vector<double> all_rows;
        for (uint32_t bank : opt.banks) {
            auto bank_opt = opt;
            bank_opt.banks = {bank};
            const auto results = rig.charz.characterizeBank(bank, bank_opt);
            std::vector<double> bers;
            for (const auto &r : results)
                if (r.ber128k > 0.0 && r.numAggressors == 2)
                    bers.push_back(r.ber128k);
            all_rows.insert(all_rows.end(), bers.begin(), bers.end());
            const BoxStats bs = boxStats(bers);
            t.addRow({label, Table::fmt(int64_t(bank)),
                      Table::fmt(bs.min, 6), Table::fmt(bs.q1, 6),
                      Table::fmt(bs.median, 6), Table::fmt(bs.q3, 6),
                      Table::fmt(bs.max, 6), Table::fmt(bs.mean, 6),
                      "", ""});
        }
        const double cv = coefficientOfVariation(all_rows) * 100.0;
        t.addRow({label, "all", "", "", "", "", "",
                  Table::fmt(mean(all_rows), 6), Table::fmt(cv, 2),
                  Table::fmt(rig.spec.berCvPct, 2)});
    }
    t.print();
    return 0;
}
