/**
 * @file
 * Reproduces paper Fig. 10: the effect of 68 days of continuous
 * double-sided hammering at 80C on module H3's HC_first values, as the
 * population fractions moving between before/after quantized values.
 * Weak rows degrade by one tested step; rows at 128K never change.
 */
#include "bench_util.h"
#include "charz/aging.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    ModuleRig rig("H3"); // the paper ages H3
    auto opt = benchCharzOptions(rig.spec);
    opt.banks = {1};
    opt.iterations = 2;
    const auto res = charz::agingExperiment(rig.spec, opt);

    Table t("Fig. 10: HC_first before vs after aging (module H3)",
            {"Before", "After", "FractionOfBefore", "Rows"});
    for (const auto &[key, n] : res.transitions) {
        t.addRow({Table::fmtHc(key.first), Table::fmtHc(key.second),
                  Table::fmt(res.fraction(key.first, key.second), 4),
                  Table::fmt(int64_t(n))});
    }
    t.print();

    Table c("Fig. 10: changed fraction per before-aging HC_first",
            {"Before", "Changed"});
    for (const auto &[hc, n] : res.beforeTotals)
        c.addRow({Table::fmtHc(hc),
                  Table::fmt(res.changedFraction(hc), 4)});
    c.print();
    return 0;
}
