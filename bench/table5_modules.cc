/**
 * @file
 * Reproduces paper Table 5 (and Table 1): the tested modules with the
 * minimum / average / maximum HC_first measured across all tested rows
 * by the Alg. 1 characterization, next to the paper's published values.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    Table t("Table 5: tested DDR4 modules, measured HC_first vs paper",
            {"Module", "Vendor", "Freq", "Den.", "Rev", "Org",
             "Rows/Bank", "Min(meas)", "Avg(meas)", "Max(meas)",
             "Min(paper)", "Avg(paper)", "Max(paper)"});

    for (const auto &label : allLabels()) {
        ModuleRig rig(label);
        // Full WCDP + worst-case-of-2 recording: the quick stripe
        // mode overestimates HC_first by up to one tested count.
        auto opt = benchCharzOptions(rig.spec, /*quick_wcdp=*/false);
        opt.iterations = 2;
        opt.banks = {1};
        // Always include the weakest row so the measured minimum is
        // the module minimum even under subsampling.
        opt.extraRows = {rig.device.mapping().toLogical(
            rig.model->weakestRow(1))};
        const auto results = rig.charz.characterizeBank(1, opt);

        std::vector<double> hcs;
        for (const auto &r : results)
            hcs.push_back(static_cast<double>(r.hcFirst));
        char org[8];
        std::snprintf(org, sizeof(org), "x%d", rig.spec.orgWidth);
        t.addRow({label, dram::vendorName(rig.spec.vendor),
                  Table::fmt(int64_t(rig.spec.dataRateMts)),
                  Table::fmt(int64_t(rig.spec.densityGb)) + "Gb",
                  rig.spec.dieRev, org,
                  Table::fmtHc(int64_t(rig.spec.rowsPerBank)),
                  Table::fmtHc(int64_t(minOf(hcs))),
                  Table::fmt(mean(hcs) / 1024.0, 1) + "K",
                  Table::fmtHc(int64_t(maxOf(hcs))),
                  Table::fmtHc(rig.spec.hcFirstMin),
                  Table::fmt(rig.spec.hcFirstAvg / 1024.0, 1) + "K",
                  Table::fmtHc(rig.spec.hcFirstMax)});
    }
    t.print();
    return 0;
}
