/**
 * @file
 * Temporal-drift robustness sweep: how the five defenses behave when
 * the module's HC_first profile drifts away from its calibration-time
 * characterization (slow aging drops from the Fig. 10 stress
 * transform, plus thermal operating-point excursions around the 55 C
 * calibration temperature), under each online recalibration policy.
 *
 * The grid is {defense} x {drift model} x {recal policy}, executed by
 * the same experiment engine as fig12 — deterministic per-cell seeds,
 * byte-identical at any thread count, resumable through --cache. The
 * drift axis rides in SweepSpec::drifts; per-cell escape counts,
 * escape rates, recalibration counts, and recalibration refresh-duty
 * cost land in the sink's drift columns and the run manifest.
 *
 * Scale knobs: SVARD_MIXES (default 3), SVARD_REQS (default 6000),
 * SVARD_THREADS, SVARD_EPOCHS drifted tREFW epochs (default 32),
 * SVARD_GUARDBAND fractional threshold headroom (default 0.02).
 * SVARD_TINY=1 shrinks to {PARA, Hydra} x {aging} x {none,
 * periodic:8} for smoke tests and the CI drift-grid check.
 *
 * Expected shape: with policy `none` the escape rate grows with drift
 * strength and every defense pays nothing in recalibration duty;
 * `periodic`/`reactive`/`margin` trade recal duty for escapes, and
 * the thermal+aging composite drifts hardest.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/simd.h"
#include "engine/runner.h"

using namespace svard;
using namespace svard::bench;

int
main(int argc, char **argv)
{
    const SweepIo sio = parseSweepIo(argc, argv);
    installStopHandlers();

    engine::SweepSpec spec;
    spec.requestsPerCore =
        static_cast<size_t>(envInt("SVARD_REQS", 6000));
    spec.threads =
        static_cast<unsigned>(envInt("SVARD_THREADS", 0));

    const bool tiny = envInt("SVARD_TINY", 0) != 0;
    const uint32_t epochs =
        static_cast<uint32_t>(envInt("SVARD_EPOCHS", 32));
    const double guardband = [] {
        const std::string raw = envStr("SVARD_GUARDBAND", "0.02");
        return std::strtod(raw.c_str(), nullptr);
    }();

    std::vector<std::string> models;
    std::vector<std::string> policies;
    if (tiny) {
        spec.defenses = {"para", "hydra"};
        spec.thresholds = {1024};
        spec.providers = {engine::ProviderSpec::svard("S0")};
        models = {"aging:16"};
        policies = {"none", "periodic:8"};
    } else {
        spec.defenses = {"aqua", "blockhammer", "hydra", "para",
                         "rrs"};
        spec.thresholds = {1024};
        spec.providers = {engine::ProviderSpec::uniform(),
                          engine::ProviderSpec::svard("S0")};
        models = {"aging:64", "aging:64+thermal:10:32"};
        policies = {"none", "periodic:8", "reactive:4", "margin:0.1"};
    }
    for (const auto &m : models)
        for (const auto &p : policies) {
            engine::DriftSpec d;
            d.model = m;
            d.policy = p;
            d.epochs = epochs;
            d.guardband = guardband;
            spec.drifts.push_back(std::move(d));
        }

    const uint32_t n_mixes = static_cast<uint32_t>(
        fullScale() ? 15 : envInt("SVARD_MIXES", tiny ? 2 : 3));
    const auto mixes = sim::workloadMixes(120, spec.config.cores);
    const size_t take = std::min<size_t>(n_mixes, mixes.size());
    spec.mixes.assign(mixes.begin(), mixes.begin() + take);
    spec.geometryNames = geometryEnv();

    spec.sink = sio.sink;
    spec.cache = sio.cache;
    spec.manifestPath = sio.manifestPath;
    spec.progressLabel = "drift-sweep";
    spec.stopFlag = &stopRequestedFlag();

    const auto sweep_start = std::chrono::steady_clock::now();
    engine::ExperimentRunner runner(std::move(spec));
    runner.run();
    if (runner.interrupted()) {
        std::fprintf(stderr,
                     "fig_drift: interrupted (%zu cells executed, %zu "
                     "cached); re-run with the same --cache to "
                     "resume\n",
                     runner.executedCells(), runner.cachedCells());
        return 130;
    }

    Table t("Temporal drift: defense performance, guardband escapes, "
            "and recalibration cost (mean over " +
                std::to_string(take) + " mixes)",
            {"Geometry", "Defense", "Config", "Drift",
             "WeightedSpeedup", "MaxSlowdown", "EscapeRate",
             "Escapes", "Recals", "RecalCost"});

    const auto &geoms = runner.geometries();
    for (const auto &row : runner.summarize())
        t.addRow({geoms[row.geom].geometry, row.defense,
                  row.provider, row.drift,
                  Table::fmt(row.meanNormalized.weightedSpeedup, 4),
                  Table::fmt(row.meanNormalized.maxSlowdown, 4),
                  Table::fmt(row.driftMetrics.escapeRate, 5),
                  std::to_string(row.driftMetrics.escapes),
                  std::to_string(row.driftMetrics.recalibrations),
                  Table::fmt(row.driftMetrics.recalCost, 5)});
    t.print();

    // Machine-checkable cache effectiveness line (the CI cold/hot
    // check greps for "executed 0 cells" on the second run).
    std::fprintf(stderr,
                 "fig_drift: executed %zu cells, %zu from cache\n",
                 runner.executedCells(), runner.cachedCells());
    std::fprintf(stderr, "fig_drift: wall %.3f s (simd %s)\n",
                 secondsSince(sweep_start),
                 simd::implName(simd::activeImpl()));
    return 0;
}
