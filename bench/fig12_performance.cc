/**
 * @file
 * Reproduces paper Fig. 12: weighted speedup, harmonic speedup, and
 * maximum slowdown (all normalized to the no-defense baseline) for
 * AQUA, BlockHammer, Hydra, PARA, and RRS, with and without Svärd
 * (read-disturbance profiles of modules H1, M0, S0), sweeping the
 * chip's worst-case HC_first from 4K down to 64.
 *
 * The whole grid is one declarative SweepSpec executed by the
 * experiment engine, which shards the {defense x threshold x provider
 * x mix} cells across a thread pool with deterministic per-cell seeds
 * — the same results at any thread count.
 *
 * Streaming & resume: `--out=PATH` (or SVARD_OUT) streams cells to a
 * CSV/JSONL/binary sink as workers finish; `--cache=PATH` (or
 * SVARD_CACHE) checkpoints every finished cell, so a killed sweep
 * resumed with the same cache re-executes only missing cells and a
 * repeat run executes none. `--resume` asserts the checkpoint exists.
 *
 * Scale knobs: SVARD_MIXES (default 5; paper scale 120 via
 * SVARD_FULL=1), SVARD_REQS requests per core (default 6000),
 * SVARD_THREADS worker threads (default: hardware concurrency),
 * SVARD_TINY=1 shrinks the grid to {PARA, Hydra} x {1K, 128} x
 * {NoSvard, Svard-S0} for smoke tests and the CI cache check,
 * SVARD_GEOMETRY a comma-separated list of geometry presets
 * (sim/presets.h) swept as the grid's geometry axis — each preset's
 * name lands in the sink's geometry column and cache fingerprints.
 * Expected shape: overheads grow as HC_first shrinks; ordering
 * Hydra < AQUA < PARA < RRS < BlockHammer; every Svärd configuration
 * is at or above No-Svärd, with S0's profile best.
 */
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "common/simd.h"
#include "engine/runner.h"
#include "fabric/fabric.h"

using namespace svard;
using namespace svard::bench;

int
main(int argc, char **argv)
{
    const SweepIo sio = parseSweepIo(argc, argv);
    installStopHandlers();

    engine::SweepSpec spec;
    spec.requestsPerCore =
        static_cast<size_t>(envInt("SVARD_REQS", 6000));
    spec.threads =
        static_cast<unsigned>(envInt("SVARD_THREADS", 0));

    const bool tiny = envInt("SVARD_TINY", 0) != 0;
    if (tiny) {
        spec.defenses = {"para", "hydra"};
        spec.thresholds = {1024, 128};
        spec.providers = {engine::ProviderSpec::uniform(),
                          engine::ProviderSpec::svard("S0")};
    } else {
        spec.defenses = {"aqua", "blockhammer", "hydra", "para",
                         "rrs"};
        spec.thresholds = {4096, 2048, 1024, 512, 256, 128, 64};
        spec.providers = {engine::ProviderSpec::uniform(),
                          engine::ProviderSpec::svard("H1"),
                          engine::ProviderSpec::svard("M0"),
                          engine::ProviderSpec::svard("S0")};
    }
    const uint32_t n_mixes = static_cast<uint32_t>(
        fullScale() ? 120 : envInt("SVARD_MIXES", tiny ? 2 : 5));
    const auto mixes = sim::workloadMixes(120, spec.config.cores);
    const size_t take = std::min<size_t>(n_mixes, mixes.size());
    spec.mixes.assign(mixes.begin(), mixes.begin() + take);
    spec.geometryNames = geometryEnv();

    spec.sink = sio.sink;
    spec.cache = sio.cache;
    spec.manifestPath = sio.manifestPath;
    spec.progressLabel = "fig12-sweep";
    spec.stopFlag = &stopRequestedFlag();

    // Fabric roles: a worker only fills its shard (no table, no
    // sink); the coordinator finishes the grid, merges shards, and
    // falls through to the normal single-process emission below via
    // the merged cache inside runCoordinator's own run().
    if (!sio.workerId.empty()) {
        fabric::FabricOptions fo;
        fo.ledgerPath = sio.ledgerPath;
        fo.workerId = sio.workerId;
        fo.chunk = sio.chunk;
        fo.leaseMs = sio.leaseMs;
        fo.stopFlag = spec.stopFlag;
        const fabric::WorkerReport rep =
            fabric::runWorker(std::move(spec), fo);
        std::fprintf(stderr,
                     "fig12[%s]: %" PRIu64 " ranges claimed (%" PRIu64
                     " reclaimed), %" PRIu64 " cells executed, %" PRIu64
                     " skipped%s%s\n",
                     sio.workerId.c_str(), rep.rangesClaimed,
                     rep.rangesReclaimed, rep.cellsExecuted,
                     rep.cellsSkipped, rep.fenced ? ", fenced" : "",
                     rep.interrupted ? ", interrupted" : "");
        return rep.interrupted ? 130 : 0;
    }
    if (sio.coordinate) {
        fabric::FabricOptions fo;
        fo.ledgerPath = sio.ledgerPath;
        fo.workerId = "coordinator";
        fo.chunk = sio.chunk;
        fo.leaseMs = sio.leaseMs;
        fo.stopFlag = spec.stopFlag;
        const fabric::CoordinatorResult res =
            fabric::runCoordinator(std::move(spec), fo);
        std::fprintf(stderr,
                     "fig12[coordinator]: %" PRIu64 "/%" PRIu64
                     " ranges done, %" PRIu64
                     " reclaims, %zu workers%s\n",
                     res.ledger.rangesDone, res.ledger.rangesTotal,
                     res.ledger.reclaims, res.ledger.workers.size(),
                     res.interrupted ? ", interrupted" : "");
        for (const auto &w : res.ledger.workers)
            std::fprintf(stderr,
                         "fig12[coordinator]:   %s: %" PRIu64
                         " cells, %" PRIu64 " ranges (%" PRIu64
                         " reclaimed, %" PRIu64 " lost)\n",
                         w.id.c_str(), w.cellsExecuted,
                         w.rangesClaimed, w.rangesReclaimed,
                         w.rangesLost);
        return res.interrupted ? 130 : 0;
    }

    // Paper-scale sweeps run for hours; keep a heartbeat on stderr.
    spec.onProgress = [](size_t done, size_t total) {
        const size_t stride = std::max<size_t>(1, total / 20);
        if (done % stride == 0 || done == total)
            std::fprintf(stderr, "fig12: %zu/%zu cells done\n", done,
                         total);
    };

    const auto sweep_start = std::chrono::steady_clock::now();
    engine::ExperimentRunner runner(std::move(spec));
    runner.run();
    if (runner.interrupted()) {
        std::fprintf(stderr,
                     "fig12: interrupted (%zu cells executed, %zu "
                     "cached); re-run with the same --cache to "
                     "resume\n",
                     runner.executedCells(), runner.cachedCells());
        return 130;
    }

    Table t("Fig. 12: defense performance with and without Svärd "
            "(normalized to no-defense baseline, mean over " +
                std::to_string(take) + " mixes)",
            {"Geometry", "Defense", "HCfirst", "Config",
             "WeightedSpeedup", "HarmonicSpeedup", "MaxSlowdown"});

    const auto &geoms = runner.geometries();
    for (const auto &row : runner.summarize())
        t.addRow({geoms[row.geom].geometry, row.defense,
                  Table::fmtHc(int64_t(row.threshold)),
                  row.provider,
                  Table::fmt(row.meanNormalized.weightedSpeedup, 4),
                  Table::fmt(row.meanNormalized.harmonicSpeedup, 4),
                  Table::fmt(row.meanNormalized.maxSlowdown, 4)});
    t.print();

    // Machine-checkable cache effectiveness line (the CI cold/hot
    // check greps for "executed 0 cells" on the second run).
    std::fprintf(stderr, "fig12: executed %zu cells, %zu from cache\n",
                 runner.executedCells(), runner.cachedCells());
    std::fprintf(stderr, "fig12: wall %.3f s (simd %s)\n",
                 secondsSince(sweep_start),
                 simd::implName(simd::activeImpl()));
    return 0;
}
