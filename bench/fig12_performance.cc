/**
 * @file
 * Reproduces paper Fig. 12: weighted speedup, harmonic speedup, and
 * maximum slowdown (all normalized to the no-defense baseline) for
 * AQUA, BlockHammer, Hydra, PARA, and RRS, with and without Svärd
 * (read-disturbance profiles of modules H1, M0, S0), sweeping the
 * chip's worst-case HC_first from 4K down to 64.
 *
 * Scale knobs: SVARD_MIXES (default 5; paper scale 120 via
 * SVARD_FULL=1), SVARD_REQS requests per core (default 6000).
 * Expected shape: overheads grow as HC_first shrinks; ordering
 * Hydra < AQUA < PARA < RRS < BlockHammer; every Svärd configuration
 * is at or above No-Svärd, with S0's profile best.
 */
#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/system.h"

using namespace svard;
using namespace svard::bench;
using namespace svard::sim;

namespace {

std::shared_ptr<core::VulnProfile>
moduleProfile(const char *label, const SimConfig &cfg)
{
    const auto &spec = dram::moduleByLabel(label);
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    fault::VulnerabilityModel model(spec, sa);
    return std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(model).resampledTo(
            16, cfg.rowsPerBank));
}

} // namespace

int
main()
{
    SimConfig cfg;
    const size_t requests =
        static_cast<size_t>(envInt("SVARD_REQS", 6000));
    const uint32_t n_mixes = static_cast<uint32_t>(
        fullScale() ? 120 : envInt("SVARD_MIXES", 5));
    ExperimentRunner runner(cfg, requests);

    const auto mixes = workloadMixes(120, cfg.cores);
    const std::vector<DefenseKind> defenses = {
        DefenseKind::Aqua, DefenseKind::BlockHammer, DefenseKind::Hydra,
        DefenseKind::Para, DefenseKind::Rrs};
    const std::vector<double> thresholds = {4096, 2048, 1024, 512,
                                            256, 128, 64};
    const char *profile_labels[] = {"H1", "M0", "S0"};
    std::map<std::string, std::shared_ptr<core::VulnProfile>> profiles;
    for (const char *l : profile_labels)
        profiles[l] = moduleProfile(l, cfg);

    // Per-mix no-defense baselines.
    std::vector<MixMetrics> base;
    for (uint32_t m = 0; m < n_mixes; ++m)
        base.push_back(runner.runMix(mixes[m], DefenseKind::None,
                                     nullptr));

    Table t("Fig. 12: defense performance with and without Svärd "
            "(normalized to no-defense baseline, mean over " +
                std::to_string(n_mixes) + " mixes)",
            {"Defense", "HCfirst", "Config", "WeightedSpeedup",
             "HarmonicSpeedup", "MaxSlowdown"});

    for (DefenseKind kind : defenses) {
        for (double threshold : thresholds) {
            for (int c = 0; c < 4; ++c) {
                std::string config = "NoSvard";
                std::shared_ptr<const core::ThresholdProvider> provider;
                if (c == 0) {
                    provider = std::make_shared<core::UniformThreshold>(
                        threshold, cfg.rowsPerBank);
                } else {
                    const char *l = profile_labels[c - 1];
                    config = std::string("Svard-") + l;
                    provider = std::make_shared<core::Svard>(
                        std::make_shared<core::VulnProfile>(
                            profiles[l]->scaledTo(threshold)));
                }
                std::vector<double> ws, hs, sd;
                for (uint32_t m = 0; m < n_mixes; ++m) {
                    const auto r =
                        runner.runMix(mixes[m], kind, provider);
                    ws.push_back(r.weightedSpeedup /
                                 base[m].weightedSpeedup);
                    hs.push_back(r.harmonicSpeedup /
                                 base[m].harmonicSpeedup);
                    sd.push_back(r.maxSlowdown / base[m].maxSlowdown);
                }
                t.addRow({defenseKindName(kind),
                          Table::fmtHc(int64_t(threshold)), config,
                          Table::fmt(mean(ws), 4),
                          Table::fmt(mean(hs), 4),
                          Table::fmt(mean(sd), 4)});
            }
        }
        std::fprintf(stderr, "fig12: %s done\n", defenseKindName(kind));
    }
    t.print();
    return 0;
}
