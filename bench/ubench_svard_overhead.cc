/**
 * @file
 * Microbenchmark for the paper's Sec. 6.4 overhead argument: a Svärd
 * table lookup must hide entirely under the DRAM row activation it
 * accompanies (tRCD ~= 14 ns; the paper's CACTI estimate is 0.47 ns
 * for the SRAM table). Also reports the metadata storage cost: 4 bits
 * per row.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/svard.h"
#include "defense/registry.h"
#include "fault/vuln_model.h"

using namespace svard;

namespace {

std::shared_ptr<core::VulnProfile>
profileS3()
{
    // S3 is the smallest module (32K rows/bank) - fast to build.
    static std::shared_ptr<core::VulnProfile> prof = [] {
        const auto &spec = dram::moduleByLabel("S3");
        auto sa = std::make_shared<dram::SubarrayMap>(spec);
        fault::VulnerabilityModel model(spec, sa);
        return std::make_shared<core::VulnProfile>(
            core::VulnProfile::fromModel(model));
    }();
    return prof;
}

void
BM_SvardLookup(benchmark::State &state)
{
    core::Svard svard(profileS3());
    uint32_t row = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(svard.victimThreshold(1, row));
        row = (row * 2654435761u) % (32 * 1024);
    }
}
BENCHMARK(BM_SvardLookup);

void
BM_SvardAggressorBudget(benchmark::State &state)
{
    core::Svard svard(profileS3());
    uint32_t row = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(svard.aggressorBudget(1, row));
        row = 1 + (row * 2654435761u) % (32 * 1024 - 2);
    }
}
BENCHMARK(BM_SvardAggressorBudget);

void
BM_UniformLookup(benchmark::State &state)
{
    core::UniformThreshold uni(4096.0, 32 * 1024);
    uint32_t row = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(uni.victimThreshold(1, row));
        row = (row * 2654435761u) % (32 * 1024);
    }
}
BENCHMARK(BM_UniformLookup);

void
BM_ProfileScaling(benchmark::State &state)
{
    auto prof = profileS3();
    for (auto _ : state)
        benchmark::DoNotOptimize(prof->scaledTo(64.0));
}
BENCHMARK(BM_ProfileScaling);

/**
 * Defense construction through the registry: the experiment engine
 * pays this once per sweep cell, so it must stay negligible next to
 * the cell's simulation time.
 */
void
BM_RegistryConstruct(benchmark::State &state)
{
    auto svard = std::make_shared<core::Svard>(profileS3());
    const auto names =
        defense::DefenseRegistry::instance().names();
    size_t i = 0;
    for (auto _ : state) {
        const defense::DefenseContext ctx(svard, 7, 16);
        benchmark::DoNotOptimize(defense::makeDefenseByName(
            names[i % names.size()], ctx));
        ++i;
    }
}
BENCHMARK(BM_RegistryConstruct);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    const auto prof = profileS3();
    std::printf("Svard metadata: %u bins, %llu bits total "
                "(%.3f%% of a 16-bank x 32K-row x 8KB chip)\n",
                prof->numBins(),
                static_cast<unsigned long long>(prof->metadataBits()),
                100.0 * static_cast<double>(prof->metadataBits()) /
                    (16.0 * 32 * 1024 * 8192 * 8));
    return 0;
}
