/**
 * @file
 * Reproduces paper Table 4: the simulated system configuration used by
 * the Fig. 12 / Fig. 13 performance evaluation.
 */
#include "common/table.h"
#include "sim/config.h"

using namespace svard;

int
main()
{
    sim::SimConfig cfg;
    Table t("Table 4: simulated system configuration",
            {"Component", "Configuration"});
    t.addRow({"Processor",
              std::to_string(cfg.cores) + " cores, " +
                  Table::fmt(cfg.cpuGhz, 1) + " GHz, " +
                  std::to_string(cfg.issueWidth) + "-wide issue, " +
                  std::to_string(cfg.instrWindow) +
                  "-entry instruction window"});
    t.addRow({"DRAM",
              "DDR4-" + std::to_string(3200) + ", " +
                  std::to_string(cfg.channels) + " channel, " +
                  std::to_string(cfg.ranks) + " ranks/channel, " +
                  std::to_string(cfg.bankGroups) + " bank groups, " +
                  std::to_string(cfg.banksPerGroup) +
                  " banks/bank group, " +
                  Table::fmtHc(int64_t(cfg.rowsPerBank)) +
                  " rows/bank"});
    t.addRow({"Memory Ctrl.",
              std::to_string(cfg.readQueue) + "-entry read / " +
                  std::to_string(cfg.writeQueue) +
                  "-entry write queues, FR-FCFS with column cap " +
                  std::to_string(cfg.columnCap) +
                  ", open-row policy, MOP address mapping (width " +
                  std::to_string(cfg.mopWidth) + ")"});
    t.addRow({"Timing",
              "tRCD " + Table::fmt(cfg.timing.tRCD / 1000.0, 2) +
                  "ns, tRP " + Table::fmt(cfg.timing.tRP / 1000.0, 2) +
                  "ns, tRAS " +
                  Table::fmt(cfg.timing.tRAS / 1000.0, 2) +
                  "ns, tREFI " +
                  Table::fmt(cfg.timing.tREFI / 1e6, 2) + "us, tREFW " +
                  Table::fmt(cfg.timing.tREFW / 1e9, 0) + "ms"});
    t.print();
    return 0;
}
