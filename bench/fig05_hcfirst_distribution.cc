/**
 * @file
 * Reproduces paper Fig. 5: the distribution of HC_first across DRAM
 * rows, per module, as the fraction of rows measured at each tested
 * hammer count, with min/max across the four tested banks as error
 * bars and the per-manufacturer minimum marked.
 */
#include <map>

#include "bench_util.h"
#include "common/stats.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    const auto &labels_hc = dram::testedHammerCounts();
    Table t("Fig. 5: HC_first distribution across rows",
            {"Module", "HCfirst", "Fraction", "MinAcrossBanks",
             "MaxAcrossBanks"});
    std::map<char, int64_t> mfr_min;

    for (const auto &label : allLabels()) {
        ModuleRig rig(label);
        auto opt = benchCharzOptions(rig.spec, /*quick_wcdp=*/false);
        opt.iterations = 2;
        std::map<int64_t, std::vector<double>> per_bank_fraction;
        int64_t module_min = labels_hc.back();

        for (uint32_t bank : opt.banks) {
            auto bank_opt = opt;
            bank_opt.banks = {bank};
            const auto results =
                rig.charz.characterizeBank(bank, bank_opt);
            CategoricalHistogram hist(labels_hc);
            for (const auto &r : results) {
                hist.add(r.hcFirst);
                module_min = std::min(module_min, r.hcFirst);
            }
            for (int64_t hc : labels_hc)
                per_bank_fraction[hc].push_back(hist.fraction(hc));
        }
        for (int64_t hc : labels_hc) {
            const auto &fr = per_bank_fraction[hc];
            const double m = mean(fr);
            if (m <= 0.0)
                continue;
            t.addRow({label, Table::fmtHc(hc), Table::fmt(m, 4),
                      Table::fmt(minOf(fr), 4),
                      Table::fmt(maxOf(fr), 4)});
        }
        const char v = dram::vendorLetter(rig.spec.vendor);
        auto it = mfr_min.find(v);
        if (it == mfr_min.end() || module_min < it->second)
            mfr_min[v] = module_min;
    }
    t.print();

    Table m("Fig. 5: minimum HC_first per manufacturer (red line)",
            {"Mfr", "MinHCfirst"});
    for (const auto &[v, hc] : mfr_min)
        m.addRow({std::string("Mfr. ") + v, Table::fmtHc(hc)});
    m.print();
    return 0;
}
