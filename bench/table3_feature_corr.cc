/**
 * @file
 * Reproduces paper Table 3: the spatial features whose F1 score for
 * predicting HC_first exceeds 0.7, per module. Only the four Samsung
 * modules should produce rows, with average F1 in the ~0.71-0.77 band
 * and nothing above 0.8.
 */
#include "bench_util.h"
#include "charz/features.h"
#include "common/stats.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    Table t("Table 3: spatial features with F1 > 0.7",
            {"Module", "Feature", "Bit", "F1", "AvgF1(module)"});

    for (const auto &label : allLabels()) {
        ModuleRig rig(label);
        auto opt = benchCharzOptions(rig.spec, /*quick_wcdp=*/false);
        opt.iterations = 2;
        opt.banks = {1, 4};
        const auto results = rig.charz.characterizeModule(opt);
        const auto scores =
            charz::spatialFeatureScores(rig.spec, *rig.subarrays,
                                        results);
        const auto strong = charz::featuresAbove(scores, 0.7);
        if (strong.empty())
            continue;
        std::vector<double> f1s;
        for (const auto &s : strong)
            f1s.push_back(s.f1);
        for (const auto &s : strong)
            t.addRow({label, dram::featureKindName(s.kind),
                      Table::fmt(int64_t(s.bit)), Table::fmt(s.f1, 3),
                      Table::fmt(mean(f1s), 3)});
    }
    t.print();
    return 0;
}
