/**
 * @file
 * Ablation (beyond the paper, called out in DESIGN.md): how much of
 * Svärd's benefit survives as the per-row metadata shrinks from 14
 * vulnerability bins (4 bits/row) down to 2 (1 bit/row)? Bins are
 * merged from the weak end, which is the conservative direction, so
 * coarser profiles approach the NoSvärd baseline from above. Run at
 * the harshest sweep point (HC_first = 64) with PARA and RRS, the two
 * defenses whose trigger rates scale directly with the threshold.
 */
#include <memory>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/system.h"

using namespace svard;
using namespace svard::bench;
using namespace svard::sim;

int
main()
{
    SimConfig cfg;
    const size_t requests =
        static_cast<size_t>(envInt("SVARD_REQS", 6000));
    const uint32_t n_mixes =
        static_cast<uint32_t>(envInt("SVARD_MIXES", 3));
    const double threshold = 64.0;
    MixRunner runner(cfg, requests);
    const auto mixes = workloadMixes(120, cfg.cores);

    const auto &spec = dram::moduleByLabel("S0");
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    fault::VulnerabilityModel model(spec, sa);

    Table t("Ablation: Svärd benefit vs profile granularity "
            "(S0 profile, HCfirst=64, norm. weighted speedup)",
            {"Defense", "Bins", "BitsPerRow", "NormWS"});

    for (DefenseKind kind : {DefenseKind::Para, DefenseKind::Rrs}) {
        std::vector<double> base;
        for (uint32_t m = 0; m < n_mixes; ++m)
            base.push_back(runner.runMix(mixes[m], DefenseKind::None,
                                         nullptr)
                               .weightedSpeedup);

        auto eval = [&](const char *name,
                        std::shared_ptr<const core::ThresholdProvider>
                            provider,
                        int bits) {
            std::vector<double> ws;
            for (uint32_t m = 0; m < n_mixes; ++m)
                ws.push_back(
                    runner.runMix(mixes[m], kind, provider)
                        .weightedSpeedup /
                    base[m]);
            t.addRow({defenseKindName(kind), name,
                      bits >= 0 ? Table::fmt(int64_t(bits)) : "-",
                      Table::fmt(mean(ws), 4)});
        };

        eval("NoSvard",
             std::make_shared<core::UniformThreshold>(threshold,
                                                      cfg.rowsPerBank),
             0);
        for (uint32_t bins : {2u, 4u, 8u, 14u}) {
            auto prof = std::make_shared<core::VulnProfile>(
                core::VulnProfile::fromModel(model, bins)
                    .resampledTo(cfg.banksPerRank(), cfg.rowsPerBank)
                    .scaledTo(threshold));
            int bits = 1;
            while ((1u << bits) < prof->numBins())
                ++bits;
            eval(("Svard-" + std::to_string(prof->numBins()) + "bin")
                     .c_str(),
                 std::make_shared<core::Svard>(prof), bits);
        }
    }
    t.print();
    return 0;
}
