/**
 * @file
 * Reproduces paper Fig. 9: the fraction of spatial features (bank /
 * row / subarray address bits, distance to sense amplifiers) whose F1
 * score for predicting a row's HC_first exceeds a threshold, swept
 * from 0 to 1 per module. The drop between 0.6 and 0.7 and the empty
 * set above 0.8 are the published shape.
 */
#include "bench_util.h"
#include "charz/features.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    Table t("Fig. 9: fraction of spatial features above an F1 threshold",
            {"Module", "F1>=0.0", "0.1", "0.2", "0.3", "0.4", "0.5",
             "0.6", "0.7", "0.8", "0.9"});

    for (const auto &label : allLabels()) {
        ModuleRig rig(label);
        // Full 6-pattern WCDP with 2 iterations: quantization noise
        // would otherwise wash the correlations out (see Sec. 5.4.2).
        auto opt = benchCharzOptions(rig.spec, /*quick_wcdp=*/false);
        opt.iterations = 2;
        opt.banks = {1, 4};
        const auto results = rig.charz.characterizeModule(opt);
        const auto scores =
            charz::spatialFeatureScores(rig.spec, *rig.subarrays,
                                        results);
        std::vector<std::string> row = {label};
        for (int i = 0; i < 10; ++i)
            row.push_back(Table::fmt(
                charz::fractionAboveF1(scores, i / 10.0 - 1e-9), 3));
        t.addRow(std::move(row));
    }
    t.print();
    return 0;
}
