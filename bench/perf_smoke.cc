/**
 * @file
 * Perf-regression harness: times the three workloads every hot-path
 * change must not regress — (a) the fig12 tiny grid through the
 * experiment engine (cells/sec: end-to-end sweep throughput including
 * profile building and baselines), (b) a single-cell microsim
 * (simulated-ticks/sec and ACTs/sec: the controller + defense inner
 * loop in isolation), and (c) a fig05-style full-pattern
 * characterizeBank (rows/sec and BER measurements/sec: the Alg. 1
 * measurement stack) — plus (d) per-kernel microbenchmarks of every
 * common/simd.h batch kernel, timing the scalar implementation against
 * each SIMD implementation the binary + host can run (interleaved
 * best-of-N, see bench_util.h) and reporting throughput and uplift —
 * and emits machine-readable BENCH_perf.json (schema
 * svard-perf-smoke-v4) so CI can extend the performance trajectory
 * with every PR.
 *
 * Metrics collection (obs/metrics.h) is forced ON for the whole run:
 * the committed numbers therefore already include the registry's
 * hot-path cost, and the final snapshot lands in the JSON's "metrics"
 * section so a perf regression can be cross-read against the event
 * counts that produced it.
 *
 * Knobs: SVARD_REQS (default 6000), SVARD_MIXES (default 2),
 * SVARD_THREADS (default 1 — single-threaded numbers are comparable
 * across hosts), SVARD_CHARZ_ROWS (default 256 sampled rows for the
 * charz section), SVARD_KERNEL_ROUNDS (default 5 interleaved timing
 * rounds for the kernel section), SVARD_GEOMETRY (a single preset
 * name from sim/presets.h retargeting the grid and microsim),
 * SVARD_PERF_JSON or --json=PATH for the output file (default
 * ./BENCH_perf.json).
 *
 * The numbers are machine-dependent; compare runs from the same host
 * only. The PR-3 rewrite measured 6.4 -> 11.7 cells/sec (~1.8x) on
 * the tiny grid against the pre-rewrite tree on the same host.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "charz/characterizer.h"
#include "common/simd.h"
#include "core/vuln_profile.h"
#include "dram/module_spec.h"
#include "dram/subarray.h"
#include "engine/runner.h"
#include "fault/vuln_model.h"
#include "obs/metrics.h"
#include "sim/system.h"

using namespace svard;
using namespace svard::bench;

namespace {

/** One kernel's scalar-vs-best-dispatch measurement. */
struct KernelBench
{
    const char *name; ///< JSON key under "kernels"
    const char *unit; ///< what items_per_call counts
    double items;     ///< items processed per timed invocation
    double scalar_per_sec = 0.0;
    double best_per_sec = 0.0;
    const char *best_impl = "scalar";
    double uplift = 1.0; ///< best_per_sec / scalar_per_sec
};

/**
 * Time `body` once per available implementation (forced via
 * simd::setImpl), interleaved best-of-`rounds`, and report scalar
 * throughput, the fastest measured implementation, and the uplift.
 * The previously active implementation is restored afterwards.
 */
KernelBench
runKernel(const char *name, const char *unit, double items,
          const std::vector<simd::Impl> &impls, int rounds,
          const std::function<void()> &body)
{
    const simd::Impl before = simd::activeImpl();
    std::vector<std::function<void()>> variants;
    for (simd::Impl impl : impls)
        variants.push_back([impl, &body] {
            simd::setImpl(impl);
            body();
        });
    const auto secs = bestOfInterleaved(variants, rounds);
    simd::setImpl(before);

    KernelBench out;
    out.name = name;
    out.unit = unit;
    out.items = items;
    for (size_t i = 0; i < impls.size(); ++i) {
        const double per_sec = items / std::max(secs[i], 1e-12);
        if (impls[i] == simd::Impl::Scalar)
            out.scalar_per_sec = per_sec;
        if (per_sec > out.best_per_sec) {
            out.best_per_sec = per_sec;
            out.best_impl = simd::implName(impls[i]);
        }
    }
    out.uplift = out.best_per_sec / std::max(out.scalar_per_sec, 1e-12);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = envStr("SVARD_PERF_JSON", "BENCH_perf.json");
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else
            SVARD_FATAL("unknown argument \"" + arg +
                        "\" (expected --json=PATH)");
    }

    // Benchmark WITH metrics on: the committed throughput numbers
    // must absorb the registry's hot-path cost (CI holds it to 3%).
    obs::setMetricsEnabled(true);

    const size_t reqs =
        static_cast<size_t>(envInt("SVARD_REQS", 6000));
    const unsigned threads =
        static_cast<unsigned>(envInt("SVARD_THREADS", 1));
    const uint32_t n_mixes =
        static_cast<uint32_t>(envInt("SVARD_MIXES", 2));

    // ---- (a) fig12 tiny grid through the experiment engine -------
    // SVARD_GEOMETRY (one preset at a time) retargets both the grid
    // and the microsim below, so perf points exist per geometry.
    engine::SweepSpec spec;
    spec.config = geometryEnvConfig(spec.config);
    spec.requestsPerCore = reqs;
    spec.threads = threads;
    spec.defenses = {"para", "hydra"};
    spec.thresholds = {1024, 128};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S0")};
    const auto mixes = sim::workloadMixes(120, spec.config.cores);
    spec.mixes.assign(mixes.begin(),
                      mixes.begin() +
                          std::min<size_t>(n_mixes, mixes.size()));

    const auto grid_start = std::chrono::steady_clock::now();
    engine::ExperimentRunner runner(std::move(spec));
    const size_t cells = runner.run().size();
    const double grid_s = secondsSince(grid_start);
    const double cells_per_sec = cells / std::max(grid_s, 1e-9);

    // ---- (b) single-cell microsim (controller inner loop) --------
    const sim::SimConfig cfg = geometryEnvConfig(sim::SimConfig{});
    const auto &module = dram::moduleByLabel("S0");
    auto sa = std::make_shared<dram::SubarrayMap>(module);
    fault::VulnerabilityModel model(module, sa);
    auto provider = std::make_shared<core::Svard>(
        std::make_shared<core::VulnProfile>(
            core::VulnProfile::fromModel(model)
                .resampledTo(cfg.banksPerRank(), cfg.rowsPerBank)
                .scaledTo(128.0)));

    const auto micro_mixes = sim::workloadMixes(1, cfg.cores);
    const auto &suite = sim::benchmarkSuite();
    std::vector<std::vector<sim::TraceEntry>> traces;
    for (uint32_t c = 0; c < micro_mixes[0].benchIdx.size(); ++c)
        traces.push_back(sim::generateTrace(
            suite[micro_mixes[0].benchIdx[c]], reqs, 11,
            sim::coreTraceOffset(11, c)));

    const auto micro_start = std::chrono::steady_clock::now();
    sim::System sys(cfg, std::move(traces), reqs, "hydra", provider,
                    11);
    const sim::RunResult res = sys.run();
    const double micro_s = secondsSince(micro_start);
    const double acts_per_sec =
        static_cast<double>(res.controller.activations) /
        std::max(micro_s, 1e-9);
    const double ticks_per_sec =
        static_cast<double>(res.endTime) / std::max(micro_s, 1e-9);

    // ---- (c) fig05-style full-pattern bank characterization ------
    const int64_t charz_target = envInt("SVARD_CHARZ_ROWS", 256);
    charz::CharzOptions copt;
    copt.quickWcdp = false; // all six data patterns, as Fig. 5 runs
    copt.iterations = 2;
    copt.threads = threads;
    uint32_t step = static_cast<uint32_t>(std::max<int64_t>(
        1, module.rowsPerBank / std::max<int64_t>(charz_target, 1)));
    if (step % 2 == 0)
        ++step; // subarray-coprime stride (see benchCharzOptions)
    copt.rowStep = step;

    auto charz_model =
        std::make_shared<fault::VulnerabilityModel>(module, sa);
    dram::DramDevice charz_dev(module, sa, charz_model);
    charz::Characterizer charz(charz_dev);

    const auto charz_start = std::chrono::steady_clock::now();
    const auto rows = charz.characterizeBank(1, copt);
    const double charz_s = secondsSince(charz_start);
    const uint64_t ber_measurements = charz.berMeasurements();
    const double rows_per_sec = rows.size() / std::max(charz_s, 1e-9);
    const double meas_per_sec =
        static_cast<double>(ber_measurements) / std::max(charz_s, 1e-9);

    // ---- (d) simd kernel microbenchmarks -------------------------
    // Scalar vs every SIMD implementation this binary + host can run,
    // forced per variant through setImpl and timed with the shared
    // interleaved best-of-N helper. Workload shapes mirror the real
    // call sites: whole-row word arrays for the mismatch kernels,
    // FlatTable-sized key batches, a threshold run for the budget
    // fold, and the CBF's 8-lane fan-out repeated per key.
    const int kernel_rounds =
        static_cast<int>(envInt("SVARD_KERNEL_ROUNDS", 5));
    const auto impls = simd::availableImpls();
    constexpr size_t kWords = size_t(1) << 16;
    std::vector<uint64_t> wa(kWords), wb(kWords), hout(kWords);
    std::vector<double> thr(kWords), nout(kWords);
    uint64_t lcg = 0x5eed;
    for (size_t i = 0; i < kWords; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        wa[i] = lcg;
        wb[i] = lcg ^ (lcg >> 31);
        thr[i] = 1024.0 + static_cast<double>(lcg % 65536);
    }
    volatile uint64_t sink = 0;    // defeats dead-code elimination
    volatile double dsink = 0.0;

    std::vector<KernelBench> kernels;
    kernels.push_back(runKernel(
        "xor_popcount_base", "words",
        static_cast<double>(kWords) * 64.0, impls, kernel_rounds, [&] {
            uint64_t acc = 0;
            for (uint64_t r = 0; r < 64; ++r)
                acc += simd::xorPopcountBase(
                    wa.data(), kWords, 0xAAAAAAAAAAAAAAAAull + r);
            sink = sink + acc;
        }));
    kernels.push_back(runKernel(
        "xor_popcount", "words", static_cast<double>(kWords) * 64.0,
        impls, kernel_rounds, [&] {
            uint64_t acc = 0;
            for (int r = 0; r < 64; ++r)
                acc += simd::xorPopcount(wa.data(), wb.data(), kWords);
            sink = sink + acc;
        }));
    kernels.push_back(runKernel(
        "hash_batch", "keys", static_cast<double>(kWords) * 32.0,
        impls, kernel_rounds, [&] {
            for (int r = 0; r < 32; ++r)
                simd::hashBatch(wa.data(), hout.data(), kWords);
            sink = sink ^ hout[0] ^ hout[kWords - 1];
        }));
    kernels.push_back(runKernel(
        "min_neighbors_batch", "rows",
        static_cast<double>(kWords) * 32.0, impls, kernel_rounds, [&] {
            for (int r = 0; r < 32; ++r)
                simd::minNeighborsBatch(thr.data(), kWords, thr[0],
                                        thr[kWords - 1], nout.data());
            dsink = dsink + nout[0] + nout[kWords / 2];
        }));
    kernels.push_back(runKernel(
        "hash_seed_tail_batch", "lanes", 8.0 * 100000.0, impls,
        kernel_rounds, [&] {
            uint64_t lanes[8];
            uint64_t acc = 0;
            for (uint64_t c = 0; c < 100000; ++c) {
                simd::hashSeedTailBatch(0xB10C1, c, lanes, 8);
                acc ^= lanes[0] ^ lanes[7];
            }
            sink = sink + acc;
        }));

    std::string impl_list;
    for (simd::Impl impl : impls) {
        if (!impl_list.empty())
            impl_list += ", ";
        impl_list += '"';
        impl_list += simd::implName(impl);
        impl_list += '"';
    }

    // ---- report --------------------------------------------------
    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f)
        SVARD_FATAL("cannot write \"" + json_path + "\"");
    const int n = std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"svard-perf-smoke-v4\",\n"
        "  \"threads\": %u,\n"
        "  \"requests_per_core\": %zu,\n"
        "  \"mixes\": %u,\n"
        "  \"grid\": {\n"
        "    \"cells\": %zu,\n"
        "    \"wall_s\": %.6f,\n"
        "    \"cells_per_sec\": %.6f\n"
        "  },\n"
        "  \"microsim\": {\n"
        "    \"defense\": \"hydra\",\n"
        "    \"provider\": \"Svard-S0\",\n"
        "    \"activations\": %llu,\n"
        "    \"sim_ticks\": %lld,\n"
        "    \"wall_s\": %.6f,\n"
        "    \"acts_per_sec\": %.1f,\n"
        "    \"sim_ticks_per_sec\": %.1f\n"
        "  },\n"
        "  \"charz\": {\n"
        "    \"module\": \"S0\",\n"
        "    \"bank\": 1,\n"
        "    \"rows\": %zu,\n"
        "    \"row_step\": %u,\n"
        "    \"iterations\": %d,\n"
        "    \"quick_wcdp\": false,\n"
        "    \"ber_measurements\": %llu,\n"
        "    \"wall_s\": %.6f,\n"
        "    \"rows_per_sec\": %.3f,\n"
        "    \"ber_measurements_per_sec\": %.3f\n"
        "  },\n"
        "  \"kernels\": {\n"
        "    \"rounds\": %d,\n"
        "    \"active_impl\": \"%s\",\n"
        "    \"impls\": [%s],\n",
        threads, reqs, n_mixes, cells, grid_s, cells_per_sec,
        static_cast<unsigned long long>(res.controller.activations),
        static_cast<long long>(res.endTime), micro_s, acts_per_sec,
        ticks_per_sec, rows.size(), copt.rowStep, copt.iterations,
        static_cast<unsigned long long>(ber_measurements), charz_s,
        rows_per_sec, meas_per_sec, kernel_rounds,
        simd::implName(simd::activeImpl()), impl_list.c_str());
    bool wrote = n >= 0;
    for (size_t i = 0; i < kernels.size(); ++i) {
        const auto &k = kernels[i];
        wrote = wrote &&
                std::fprintf(
                    f,
                    "    \"%s\": {\n"
                    "      \"unit\": \"%s\",\n"
                    "      \"items_per_call\": %.0f,\n"
                    "      \"scalar_items_per_sec\": %.1f,\n"
                    "      \"best_impl\": \"%s\",\n"
                    "      \"best_items_per_sec\": %.1f,\n"
                    "      \"uplift\": %.3f\n"
                    "    }%s\n",
                    k.name, k.unit, k.items, k.scalar_per_sec,
                    k.best_impl, k.best_per_sec, k.uplift,
                    i + 1 < kernels.size() ? "," : "") >= 0;
    }
    // Final registry snapshot: event counts behind the numbers above
    // (sim ACTs, cache traffic, charz measurements, sink flushes).
    const std::string snap = obs::snapshot().toJson(4);
    wrote = wrote &&
            std::fprintf(f, "  },\n  \"metrics\": %s\n}\n",
                         snap.c_str()) >= 0;
    if (!wrote || std::fclose(f) != 0)
        SVARD_FATAL("write failed on \"" + json_path + "\"");

    std::printf("perf_smoke: grid %zu cells in %.3f s "
                "(%.2f cells/s); microsim %.3f s "
                "(%.2fM ACTs/s, %.1fM sim-ticks/s); "
                "charz %zu rows in %.3f s "
                "(%.1f rows/s, %.1f measureBER/s)\n",
                cells, grid_s, cells_per_sec, micro_s,
                acts_per_sec / 1e6, ticks_per_sec / 1e6, rows.size(),
                charz_s, rows_per_sec, meas_per_sec);
    std::printf("perf_smoke: kernels (best-of-%d interleaved, "
                "active %s):",
                kernel_rounds, simd::implName(simd::activeImpl()));
    for (const auto &k : kernels)
        std::printf(" %s %.2fx (%s)", k.name, k.uplift, k.best_impl);
    std::printf("\n");
    std::printf("perf_smoke: wrote %s\n", json_path.c_str());
    return 0;
}
