/**
 * @file
 * Perf-regression harness: times the three workloads every hot-path
 * change must not regress — (a) the fig12 tiny grid through the
 * experiment engine (cells/sec: end-to-end sweep throughput including
 * profile building and baselines), (b) a single-cell microsim
 * (simulated-ticks/sec and ACTs/sec: the controller + defense inner
 * loop in isolation), and (c) a fig05-style full-pattern
 * characterizeBank (rows/sec and BER measurements/sec: the Alg. 1
 * measurement stack) — and emits machine-readable BENCH_perf.json so
 * CI can extend the performance trajectory with every PR.
 *
 * Knobs: SVARD_REQS (default 6000), SVARD_MIXES (default 2),
 * SVARD_THREADS (default 1 — single-threaded numbers are comparable
 * across hosts), SVARD_CHARZ_ROWS (default 256 sampled rows for the
 * charz section), SVARD_GEOMETRY (a single preset name from
 * sim/presets.h retargeting the grid and microsim), SVARD_PERF_JSON
 * or --json=PATH for the output file (default ./BENCH_perf.json).
 *
 * The numbers are machine-dependent; compare runs from the same host
 * only. The PR-3 rewrite measured 6.4 -> 11.7 cells/sec (~1.8x) on
 * the tiny grid against the pre-rewrite tree on the same host.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "charz/characterizer.h"
#include "core/vuln_profile.h"
#include "dram/module_spec.h"
#include "dram/subarray.h"
#include "engine/runner.h"
#include "fault/vuln_model.h"
#include "sim/system.h"

using namespace svard;
using namespace svard::bench;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path = envStr("SVARD_PERF_JSON", "BENCH_perf.json");
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else
            SVARD_FATAL("unknown argument \"" + arg +
                        "\" (expected --json=PATH)");
    }

    const size_t reqs =
        static_cast<size_t>(envInt("SVARD_REQS", 6000));
    const unsigned threads =
        static_cast<unsigned>(envInt("SVARD_THREADS", 1));
    const uint32_t n_mixes =
        static_cast<uint32_t>(envInt("SVARD_MIXES", 2));

    // ---- (a) fig12 tiny grid through the experiment engine -------
    // SVARD_GEOMETRY (one preset at a time) retargets both the grid
    // and the microsim below, so perf points exist per geometry.
    engine::SweepSpec spec;
    spec.config = geometryEnvConfig(spec.config);
    spec.requestsPerCore = reqs;
    spec.threads = threads;
    spec.defenses = {"para", "hydra"};
    spec.thresholds = {1024, 128};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S0")};
    const auto mixes = sim::workloadMixes(120, spec.config.cores);
    spec.mixes.assign(mixes.begin(),
                      mixes.begin() +
                          std::min<size_t>(n_mixes, mixes.size()));

    const auto grid_start = std::chrono::steady_clock::now();
    engine::ExperimentRunner runner(std::move(spec));
    const size_t cells = runner.run().size();
    const double grid_s = secondsSince(grid_start);
    const double cells_per_sec = cells / std::max(grid_s, 1e-9);

    // ---- (b) single-cell microsim (controller inner loop) --------
    const sim::SimConfig cfg = geometryEnvConfig(sim::SimConfig{});
    const auto &module = dram::moduleByLabel("S0");
    auto sa = std::make_shared<dram::SubarrayMap>(module);
    fault::VulnerabilityModel model(module, sa);
    auto provider = std::make_shared<core::Svard>(
        std::make_shared<core::VulnProfile>(
            core::VulnProfile::fromModel(model)
                .resampledTo(cfg.banksPerRank(), cfg.rowsPerBank)
                .scaledTo(128.0)));

    const auto micro_mixes = sim::workloadMixes(1, cfg.cores);
    const auto &suite = sim::benchmarkSuite();
    std::vector<std::vector<sim::TraceEntry>> traces;
    for (uint32_t c = 0; c < micro_mixes[0].benchIdx.size(); ++c)
        traces.push_back(sim::generateTrace(
            suite[micro_mixes[0].benchIdx[c]], reqs, 11,
            sim::coreTraceOffset(11, c)));

    const auto micro_start = std::chrono::steady_clock::now();
    sim::System sys(cfg, std::move(traces), reqs, "hydra", provider,
                    11);
    const sim::RunResult res = sys.run();
    const double micro_s = secondsSince(micro_start);
    const double acts_per_sec =
        static_cast<double>(res.controller.activations) /
        std::max(micro_s, 1e-9);
    const double ticks_per_sec =
        static_cast<double>(res.endTime) / std::max(micro_s, 1e-9);

    // ---- (c) fig05-style full-pattern bank characterization ------
    const int64_t charz_target = envInt("SVARD_CHARZ_ROWS", 256);
    charz::CharzOptions copt;
    copt.quickWcdp = false; // all six data patterns, as Fig. 5 runs
    copt.iterations = 2;
    copt.threads = threads;
    uint32_t step = static_cast<uint32_t>(std::max<int64_t>(
        1, module.rowsPerBank / std::max<int64_t>(charz_target, 1)));
    if (step % 2 == 0)
        ++step; // subarray-coprime stride (see benchCharzOptions)
    copt.rowStep = step;

    auto charz_model =
        std::make_shared<fault::VulnerabilityModel>(module, sa);
    dram::DramDevice charz_dev(module, sa, charz_model);
    charz::Characterizer charz(charz_dev);

    const auto charz_start = std::chrono::steady_clock::now();
    const auto rows = charz.characterizeBank(1, copt);
    const double charz_s = secondsSince(charz_start);
    const uint64_t ber_measurements = charz.berMeasurements();
    const double rows_per_sec = rows.size() / std::max(charz_s, 1e-9);
    const double meas_per_sec =
        static_cast<double>(ber_measurements) / std::max(charz_s, 1e-9);

    // ---- report --------------------------------------------------
    std::FILE *f = std::fopen(json_path.c_str(), "w");
    if (!f)
        SVARD_FATAL("cannot write \"" + json_path + "\"");
    const int n = std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"svard-perf-smoke-v2\",\n"
        "  \"threads\": %u,\n"
        "  \"requests_per_core\": %zu,\n"
        "  \"mixes\": %u,\n"
        "  \"grid\": {\n"
        "    \"cells\": %zu,\n"
        "    \"wall_s\": %.6f,\n"
        "    \"cells_per_sec\": %.6f\n"
        "  },\n"
        "  \"microsim\": {\n"
        "    \"defense\": \"hydra\",\n"
        "    \"provider\": \"Svard-S0\",\n"
        "    \"activations\": %llu,\n"
        "    \"sim_ticks\": %lld,\n"
        "    \"wall_s\": %.6f,\n"
        "    \"acts_per_sec\": %.1f,\n"
        "    \"sim_ticks_per_sec\": %.1f\n"
        "  },\n"
        "  \"charz\": {\n"
        "    \"module\": \"S0\",\n"
        "    \"bank\": 1,\n"
        "    \"rows\": %zu,\n"
        "    \"row_step\": %u,\n"
        "    \"iterations\": %d,\n"
        "    \"quick_wcdp\": false,\n"
        "    \"ber_measurements\": %llu,\n"
        "    \"wall_s\": %.6f,\n"
        "    \"rows_per_sec\": %.3f,\n"
        "    \"ber_measurements_per_sec\": %.3f\n"
        "  }\n"
        "}\n",
        threads, reqs, n_mixes, cells, grid_s, cells_per_sec,
        static_cast<unsigned long long>(res.controller.activations),
        static_cast<long long>(res.endTime), micro_s, acts_per_sec,
        ticks_per_sec, rows.size(), copt.rowStep, copt.iterations,
        static_cast<unsigned long long>(ber_measurements), charz_s,
        rows_per_sec, meas_per_sec);
    if (n < 0 || std::fclose(f) != 0)
        SVARD_FATAL("write failed on \"" + json_path + "\"");

    std::printf("perf_smoke: grid %zu cells in %.3f s "
                "(%.2f cells/s); microsim %.3f s "
                "(%.2fM ACTs/s, %.1fM sim-ticks/s); "
                "charz %zu rows in %.3f s "
                "(%.1f rows/s, %.1f measureBER/s)\n",
                cells, grid_s, cells_per_sec, micro_s,
                acts_per_sec / 1e6, ticks_per_sec / 1e6, rows.size(),
                charz_s, rows_per_sec, meas_per_sec);
    std::printf("perf_smoke: wrote %s\n", json_path.c_str());
    return 0;
}
