/**
 * @file
 * Reproduces paper Fig. 8: the silhouette score of clustering DRAM
 * rows into k subarrays, swept over k, for the Mfr. S modules (as in
 * the paper's figure). The score peaks at the true subarray count and
 * decreases beyond it. Default scale probes a range of the bank
 * (SVARD_SUBARRAYS subarrays, 12 by default); SVARD_FULL=1 probes the
 * whole bank.
 */
#include "bench_util.h"
#include "charz/reveng.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    Table t("Fig. 8: silhouette score of k-means row clustering vs k "
            "(Mfr. S modules)",
            {"Module", "k", "Silhouette", "BestK", "TrueSubarrays"});

    for (const auto &label : {"S0", "S1", "S2", "S3", "S4"}) {
        ModuleRig rig(label);
        bender::TestSession session(rig.device);
        charz::RevEngOptions opt;
        opt.firstRow = 1;
        uint32_t true_count;
        if (fullScale()) {
            opt.lastRow = 0; // full bank
            true_count = rig.subarrays->numSubarrays();
        } else {
            const uint32_t n = static_cast<uint32_t>(
                envInt("SVARD_SUBARRAYS", 12));
            opt.lastRow = rig.subarrays->subarrayBase(n) + 10;
            true_count = n;
        }
        const auto res = charz::reverseEngineerSubarrays(session, opt);
        for (const auto &pt : res.silhouette)
            t.addRow({label, Table::fmt(int64_t(pt.k)),
                      Table::fmt(pt.score, 3),
                      Table::fmt(int64_t(res.bestK)),
                      Table::fmt(int64_t(true_count))});
    }
    t.print();
    return 0;
}
