/**
 * @file
 * Reproduces paper Fig. 13: the slowdown benign cores suffer while an
 * adversarial access pattern targets Hydra (row-count-cache thrashing)
 * or RRS (continuous swap triggering), for No-Svärd and the three
 * Svärd profiles, at a worst-case HC_first of 64. Bars are normalized
 * to the No-Svärd slowdown: Svärd configurations land below 1.0, S0's
 * profile lowest; Hydra's reduction is small (its adversarial cost is
 * counter traffic, which Svärd does not reduce), RRS's is large.
 */
#include <map>
#include <memory>

#include "bench_util.h"
#include "sim/system.h"

using namespace svard;
using namespace svard::bench;
using namespace svard::sim;

namespace {

std::shared_ptr<core::VulnProfile>
moduleProfile(const char *label, const SimConfig &cfg, double threshold)
{
    const auto &spec = dram::moduleByLabel(label);
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    fault::VulnerabilityModel model(spec, sa);
    return std::make_shared<core::VulnProfile>(
        core::VulnProfile::fromModel(model)
            .resampledTo(16, cfg.rowsPerBank)
            .scaledTo(threshold));
}

} // namespace

int
main()
{
    SimConfig cfg;
    const double threshold = 64.0;
    const size_t requests =
        static_cast<size_t>(envInt("SVARD_REQS", 6000));
    ExperimentRunner runner(cfg, requests);

    Table t("Fig. 13: slowdown under adversarial access patterns "
            "(normalized to No-Svärd; HCfirst = 64)",
            {"Defense", "Config", "BenignWS", "Slowdown",
             "NormToNoSvard"});

    struct Case
    {
        DefenseKind kind;
        std::vector<std::vector<TraceEntry>> traces;
    };
    std::vector<Case> cases;
    cases.push_back({DefenseKind::Hydra,
                     {adversarialHydraTrace(requests, 3)}});
    // The RRS attacker hammers a fixed row pair; its vulnerability bin
    // decides Svärd's headroom, so average over several target rows
    // (the expected-case attacker does not know the profile).
    cases.push_back({DefenseKind::Rrs,
                     {adversarialRrsTrace(requests, 3, 1537),
                      adversarialRrsTrace(requests, 3, 5011),
                      adversarialRrsTrace(requests, 3, 9973),
                      adversarialRrsTrace(requests, 3, 20011)}});

    for (auto &c : cases) {
        struct Config
        {
            std::string name;
            std::shared_ptr<const core::ThresholdProvider> provider;
        };
        std::vector<Config> configs;
        configs.push_back(
            {"NoSvard", std::make_shared<core::UniformThreshold>(
                            threshold, cfg.rowsPerBank)});
        for (const char *l : {"S0", "M0", "H1"})
            configs.push_back(
                {std::string("Svard-") + l,
                 std::make_shared<core::Svard>(
                     moduleProfile(l, cfg, threshold))});

        double no_svard_slowdown = 1.0;
        for (size_t i = 0; i < configs.size(); ++i) {
            double ws_sum = 0.0, slowdown_sum = 0.0;
            for (const auto &trace : c.traces) {
                const double ws_ref = runner.runAdversarial(
                    trace, DefenseKind::None, nullptr);
                const double ws = runner.runAdversarial(
                    trace, c.kind, configs[i].provider);
                ws_sum += ws;
                slowdown_sum += ws_ref / std::max(ws, 1e-9);
            }
            const double ws = ws_sum / c.traces.size();
            const double slowdown = slowdown_sum / c.traces.size();
            if (i == 0)
                no_svard_slowdown = slowdown;
            t.addRow({defenseKindName(c.kind), configs[i].name,
                      Table::fmt(ws, 3), Table::fmt(slowdown, 3),
                      Table::fmt(slowdown / no_svard_slowdown, 3)});
        }
    }
    t.print();
    return 0;
}
