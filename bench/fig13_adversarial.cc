/**
 * @file
 * Reproduces paper Fig. 13: the slowdown benign cores suffer while an
 * adversarial access pattern targets Hydra (row-count-cache thrashing)
 * or RRS (continuous swap triggering), for No-Svärd and the three
 * Svärd profiles, at a worst-case HC_first of 64. Bars are normalized
 * to the No-Svärd slowdown: Svärd configurations land below 1.0, S0's
 * profile lowest; Hydra's reduction is small (its adversarial cost is
 * counter traffic, which Svärd does not reduce), RRS's is large.
 *
 * The {attack case x provider x target row} grid runs through the
 * experiment engine's adversarial sweep (SVARD_THREADS workers,
 * deterministic per-cell seeds). `--out`/`--cache`/`--resume` (or
 * SVARD_OUT / SVARD_CACHE / SVARD_RESUME) stream the defended cells
 * to a sink and checkpoint both reference and defended runs, so an
 * interrupted sweep resumes with only its missing cells.
 */
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/simd.h"
#include "engine/runner.h"

using namespace svard;
using namespace svard::bench;

int
main(int argc, char **argv)
{
    const SweepIo sio = parseSweepIo(argc, argv);
    installStopHandlers();

    engine::AdversarialSpec adv;
    adv.stopFlag = &stopRequestedFlag();
    // SVARD_GEOMETRY runs the adversarial grid on a named preset
    // (one at a time; the default is the paper's Table 4 system).
    adv.config = geometryEnvConfig(adv.config);
    adv.threshold = 64.0;
    adv.requestsPerCore =
        static_cast<size_t>(envInt("SVARD_REQS", 6000));
    adv.threads = static_cast<unsigned>(envInt("SVARD_THREADS", 0));
    adv.sink = sio.sink;
    adv.cache = sio.cache;
    adv.manifestPath = sio.manifestPath;
    adv.progressLabel = "fig13-adversarial";
    const size_t requests = adv.requestsPerCore;

    // Traces are generated for the geometry under attack: the row
    // stride that keeps bank bits fixed depends on the MOP layout,
    // so a Table-4 trace would stop being adversarial on a preset.
    adv.cases.push_back(
        {"Hydra-thrash", "hydra",
         {sim::adversarialHydraTrace(requests, 3, adv.config)}});
    // The RRS attacker hammers a fixed row pair; its vulnerability bin
    // decides Svärd's headroom, so average over several target rows
    // (the expected-case attacker does not know the profile).
    adv.cases.push_back(
        {"RRS-swap", "rrs",
         {sim::adversarialRrsTrace(requests, 3, 1537, adv.config),
          sim::adversarialRrsTrace(requests, 3, 5011, adv.config),
          sim::adversarialRrsTrace(requests, 3, 9973, adv.config),
          sim::adversarialRrsTrace(requests, 3, 20011,
                                   adv.config)}});
    adv.providers = {engine::ProviderSpec::uniform(),
                     engine::ProviderSpec::svard("S0"),
                     engine::ProviderSpec::svard("M0"),
                     engine::ProviderSpec::svard("H1")};

    engine::SweepIoStats io_stats;
    const auto sweep_start = std::chrono::steady_clock::now();
    const auto results = engine::runAdversarialSweep(adv, &io_stats);
    if (stopRequestedFlag().load()) {
        std::fprintf(stderr,
                     "fig13: interrupted (%zu cells executed, %zu "
                     "cached); re-run with the same --cache to "
                     "resume\n",
                     io_stats.executed, io_stats.cached);
        return 130;
    }

    Table t("Fig. 13: slowdown under adversarial access patterns "
            "(normalized to No-Svärd; HCfirst = 64)",
            {"Case", "Defense", "Config", "BenignWS", "Slowdown",
             "NormToNoSvard"});

    // The engine normalizes each case to its first provider — the
    // No-Svärd baseline leading adv.providers above.
    for (const auto &r : results)
        t.addRow({r.caseName, r.defense, r.provider,
                  Table::fmt(r.benignWs, 3),
                  Table::fmt(r.slowdown, 3),
                  Table::fmt(r.normalizedSlowdown, 3)});
    t.print();

    std::fprintf(stderr, "fig13: executed %zu cells, %zu from cache\n",
                 io_stats.executed, io_stats.cached);
    std::fprintf(stderr, "fig13: wall %.3f s (simd %s)\n",
                 secondsSince(sweep_start),
                 simd::implName(simd::activeImpl()));
    return 0;
}
