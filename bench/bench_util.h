/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: default
 * experiment scales (override with SVARD_FULL=1 or the individual
 * knobs), per-module characterization rigs, and manufacturer grouping.
 */
#ifndef SVARD_BENCH_BENCH_UTIL_H
#define SVARD_BENCH_BENCH_UTIL_H

#include <memory>
#include <string>
#include <vector>

#include "charz/characterizer.h"
#include "common/table.h"
#include "fault/vuln_model.h"

namespace svard::bench {

/** Device + model + characterizer for one module. */
struct ModuleRig
{
    explicit ModuleRig(const std::string &label)
        : spec(dram::moduleByLabel(label)),
          subarrays(std::make_shared<dram::SubarrayMap>(spec)),
          model(std::make_shared<fault::VulnerabilityModel>(spec,
                                                            subarrays)),
          device(spec, subarrays, model),
          charz(device)
    {}

    const dram::ModuleSpec &spec;
    std::shared_ptr<dram::SubarrayMap> subarrays;
    std::shared_ptr<fault::VulnerabilityModel> model;
    dram::DramDevice device;
    charz::Characterizer charz;
};

/** All 15 module labels in paper order. */
inline std::vector<std::string>
allLabels()
{
    std::vector<std::string> out;
    for (const auto &m : dram::allModules())
        out.push_back(m.label);
    return out;
}

/**
 * Default characterization options at bench scale: every row with
 * SVARD_FULL=1, otherwise a prime-strided subsample (a power-of-two
 * stride would alias with subarray boundaries and oversample edge
 * rows). SVARD_ROWS_PER_BANK overrides the target sample size.
 */
inline charz::CharzOptions
benchCharzOptions(const dram::ModuleSpec &spec, bool quick_wcdp = true)
{
    charz::CharzOptions opt;
    opt.quickWcdp = quick_wcdp;
    if (fullScale()) {
        opt.rowStep = 1;
        return opt;
    }
    const int64_t target = envInt("SVARD_ROWS_PER_BANK", 384);
    uint32_t step = static_cast<uint32_t>(
        std::max<int64_t>(1, spec.rowsPerBank / target));
    // Snap to an odd (subarray-coprime) stride.
    if (step % 2 == 0)
        ++step;
    opt.rowStep = step;
    return opt;
}

} // namespace svard::bench

#endif // SVARD_BENCH_BENCH_UTIL_H
