/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: default
 * experiment scales (override with SVARD_FULL=1 or the individual
 * knobs), per-module characterization rigs, and manufacturer grouping.
 */
#ifndef SVARD_BENCH_BENCH_UTIL_H
#define SVARD_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <signal.h>

#include "charz/characterizer.h"
#include "common/log.h"
#include "common/table.h"
#include "fault/vuln_model.h"
#include "io/async_sink.h"
#include "io/result_sink.h"
#include "io/sweep_cache.h"
#include "sim/presets.h"

namespace svard::bench {

/** Monotonic wall-clock seconds since `start`. */
inline double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Interleaved best-of-N timing. Runs every variant once per round, in
 * round-robin order, for `rounds` rounds, and returns each variant's
 * MINIMUM wall seconds, index-aligned with `variants`.
 *
 * This is the honest-measurement protocol the committed
 * BENCH_perf.json numbers follow: interleaving spreads frequency
 * ramps, thermal drift, and background-task noise evenly across the
 * variants instead of crediting whichever happened to run on the
 * quietest slice of the host, and min-of-N is the low-noise estimator
 * for a deterministic workload (noise only ever adds time). Each
 * variant should run long enough to dwarf a steady_clock read.
 */
inline std::vector<double>
bestOfInterleaved(const std::vector<std::function<void()>> &variants,
                  int rounds)
{
    std::vector<double> best(variants.size(),
                             std::numeric_limits<double>::infinity());
    for (int r = 0; r < rounds; ++r) {
        for (size_t v = 0; v < variants.size(); ++v) {
            const auto start = std::chrono::steady_clock::now();
            variants[v]();
            best[v] = std::min(best[v], secondsSince(start));
        }
    }
    return best;
}

/** Device + model + characterizer for one module. */
struct ModuleRig
{
    explicit ModuleRig(const std::string &label)
        : spec(dram::moduleByLabel(label)),
          subarrays(std::make_shared<dram::SubarrayMap>(spec)),
          model(std::make_shared<fault::VulnerabilityModel>(spec,
                                                            subarrays)),
          device(spec, subarrays, model),
          charz(device)
    {}

    const dram::ModuleSpec &spec;
    std::shared_ptr<dram::SubarrayMap> subarrays;
    std::shared_ptr<fault::VulnerabilityModel> model;
    dram::DramDevice device;
    charz::Characterizer charz;
};

/** All 15 module labels in paper order. */
inline std::vector<std::string>
allLabels()
{
    std::vector<std::string> out;
    for (const auto &m : dram::allModules())
        out.push_back(m.label);
    return out;
}

/**
 * Default characterization options at bench scale: every row with
 * SVARD_FULL=1, otherwise a prime-strided subsample (a power-of-two
 * stride would alias with subarray boundaries and oversample edge
 * rows). SVARD_ROWS_PER_BANK overrides the target sample size.
 */
inline charz::CharzOptions
benchCharzOptions(const dram::ModuleSpec &spec, bool quick_wcdp = true)
{
    charz::CharzOptions opt;
    opt.quickWcdp = quick_wcdp;
    // Per-row results are bit-identical at any worker count, so the
    // figures are free to use the same thread knob as the sweeps.
    opt.threads =
        static_cast<unsigned>(envInt("SVARD_THREADS", 1));
    if (fullScale()) {
        opt.rowStep = 1;
        return opt;
    }
    const int64_t target = envInt("SVARD_ROWS_PER_BANK", 384);
    uint32_t step = static_cast<uint32_t>(
        std::max<int64_t>(1, spec.rowsPerBank / target));
    // Snap to an odd (subarray-coprime) stride.
    if (step % 2 == 0)
        ++step;
    opt.rowStep = step;
    return opt;
}

/** String environment knob with a default. */
inline std::string
envStr(const char *name, const std::string &fallback)
{
    const char *raw = std::getenv(name);
    return raw && *raw ? raw : fallback;
}

/**
 * SVARD_GEOMETRY: comma-separated geometry preset names
 * (sim/presets.h — "ddr4-table4", "ddr5-4800-32bank",
 * "hbm2-pc-16ch"). Empty means the default Table 4 system. Unknown
 * names die with the known list — a typo must not silently sweep the
 * default geometry.
 */
inline std::vector<std::string>
geometryEnv()
{
    const std::string raw = envStr("SVARD_GEOMETRY", "");
    std::vector<std::string> out;
    size_t start = 0;
    while (start < raw.size()) {
        size_t at = raw.find(',', start);
        if (at == std::string::npos)
            at = raw.size();
        std::string name = raw.substr(start, at - start);
        // Accept the natural "a, b" spelling.
        while (!name.empty() && name.front() == ' ')
            name.erase(name.begin());
        while (!name.empty() && name.back() == ' ')
            name.pop_back();
        if (!name.empty()) {
            try {
                // presets::get is the one validator; its message
                // already lists the known names.
                (void)sim::presets::get(name);
            } catch (const std::invalid_argument &e) {
                SVARD_FATAL(std::string("SVARD_GEOMETRY: ") +
                            e.what());
            }
            out.push_back(std::move(name));
        }
        start = at + 1;
    }
    return out;
}

/** Single-geometry variant (fig13, perf_smoke): the config of the
 *  named preset, or `fallback` when SVARD_GEOMETRY is unset. Dies if
 *  more than one preset is named. */
inline sim::SimConfig
geometryEnvConfig(const sim::SimConfig &fallback)
{
    const auto names = geometryEnv();
    if (names.empty())
        return fallback;
    if (names.size() > 1)
        SVARD_FATAL("SVARD_GEOMETRY: this bench runs one geometry "
                    "at a time (got \"" +
                    envStr("SVARD_GEOMETRY", "") + "\")");
    return sim::presets::get(names[0]);
}

/** The graceful-stop flag SIGINT/SIGTERM handlers set (one per
 *  process; wire it into SweepSpec::stopFlag / FabricOptions). */
inline std::atomic<bool> &
stopRequestedFlag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

/**
 * Install SIGINT/SIGTERM handlers that set stopRequestedFlag()
 * instead of killing the process: in-flight cells finish and
 * checkpoint, sinks flush, and the manifest records
 * `"interrupted": true`. Benches exit 130 on an interrupted run (the
 * shell convention for death-by-SIGINT), so scripts can distinguish
 * "stopped, resumable" from "finished". A second signal falls back
 * to the default disposition — a stuck sweep stays killable.
 */
inline void
installStopHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = [](int) {
        stopRequestedFlag().store(true);
        struct sigaction dfl = {};
        dfl.sa_handler = SIG_DFL;
        ::sigaction(SIGINT, &dfl, nullptr);
        ::sigaction(SIGTERM, &dfl, nullptr);
    };
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

/**
 * Shared streaming/caching plumbing of the sweep benches
 * (fig12/fig13): a result sink and a per-cell sweep cache resolved
 * from argv or the environment.
 *
 *   --out=PATH    stream finished cells to PATH as they complete
 *                 (.csv default; .jsonl / .bin|.svc by extension),
 *                 wrapped in an AsyncSink so workers never block on
 *                 file I/O. Env: SVARD_OUT.
 *   --cache=PATH  per-cell cache + checkpoint: cached cells skip
 *                 execution, finished cells append immediately, so a
 *                 killed sweep resumes from PATH. Env: SVARD_CACHE.
 *   --resume      assert that a checkpoint already exists at the
 *                 cache path (guards against a typoed path silently
 *                 recomputing everything). Env: SVARD_RESUME=1.
 *   --manifest=PATH  write a run manifest (obs/manifest.h) after the
 *                 sweep: schema, spec fingerprint, seed, threads,
 *                 SIMD impl, build flags, wall time, cell counts,
 *                 metrics snapshot. Env: SVARD_MANIFEST. Defaults to
 *                 `<out>.manifest.json` (or `<cache>.manifest.json`
 *                 when only a cache is named) so every persisted
 *                 sweep output carries its provenance record.
 *
 * Multi-process fabric (src/fabric/; fig12 only for now):
 *
 *   --ledger=PATH    shared work-ledger file all processes agree on.
 *                    Env: SVARD_LEDGER.
 *   --worker=ID      run as a fabric worker: claim cell ranges from
 *                    the ledger, execute into the private shard
 *                    `<ledger>.shard-ID.svc`, emit nothing. ID must
 *                    be unique per process. Env: SVARD_WORKER.
 *   --coordinate     run as the coordinator: help finish the grid,
 *                    merge every shard, and emit the byte-identical
 *                    single-process output. Env: SVARD_COORDINATE=1.
 *   --chunk=N        cells per claim range (default 8).
 *                    Env: SVARD_CHUNK.
 *   --lease-ms=N     claim expiry without a heartbeat (default
 *                    10000). Env: SVARD_LEASE_MS.
 *
 * A dead cache path degrades gracefully (warn + run uncached) —
 * except under --resume, where an unusable checkpoint must die
 * loudly rather than silently recompute the world.
 */
struct SweepIo
{
    std::shared_ptr<io::ResultSink> sink;
    std::shared_ptr<io::SweepCache> cache;
    std::string outPath;
    std::string cachePath;
    std::string manifestPath;
    bool resume = false;

    // Fabric role (mutually exclusive; both need a ledger).
    std::string ledgerPath;
    std::string workerId;
    bool coordinate = false;
    uint64_t chunk = 8;
    uint64_t leaseMs = 10000;
};

inline SweepIo
parseSweepIo(int argc, char **argv)
{
    SweepIo out;
    out.outPath = envStr("SVARD_OUT", "");
    out.cachePath = envStr("SVARD_CACHE", "");
    out.manifestPath = envStr("SVARD_MANIFEST", "");
    out.resume = envInt("SVARD_RESUME", 0) != 0;
    out.ledgerPath = envStr("SVARD_LEDGER", "");
    out.workerId = envStr("SVARD_WORKER", "");
    out.coordinate = envInt("SVARD_COORDINATE", 0) != 0;
    out.chunk = static_cast<uint64_t>(envInt("SVARD_CHUNK", 8));
    out.leaseMs =
        static_cast<uint64_t>(envInt("SVARD_LEASE_MS", 10000));
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out.outPath = arg.substr(6);
        else if (arg.rfind("--cache=", 0) == 0)
            out.cachePath = arg.substr(8);
        else if (arg.rfind("--manifest=", 0) == 0)
            out.manifestPath = arg.substr(11);
        else if (arg == "--resume")
            out.resume = true;
        else if (arg.rfind("--ledger=", 0) == 0)
            out.ledgerPath = arg.substr(9);
        else if (arg.rfind("--worker=", 0) == 0)
            out.workerId = arg.substr(9);
        else if (arg == "--coordinate")
            out.coordinate = true;
        else if (arg.rfind("--chunk=", 0) == 0)
            out.chunk = std::strtoull(arg.c_str() + 8, nullptr, 10);
        else if (arg.rfind("--lease-ms=", 0) == 0)
            out.leaseMs =
                std::strtoull(arg.c_str() + 11, nullptr, 10);
        else
            SVARD_FATAL("unknown argument \"" + arg +
                        "\" (expected --out=PATH, --cache=PATH, "
                        "--manifest=PATH, --resume, --ledger=PATH, "
                        "--worker=ID, --coordinate, --chunk=N, "
                        "--lease-ms=N)");
    }
    if ((!out.workerId.empty() || out.coordinate) &&
        out.ledgerPath.empty())
        SVARD_FATAL("--worker/--coordinate need --ledger=PATH "
                    "(or SVARD_LEDGER)");
    if (!out.workerId.empty() && out.coordinate)
        SVARD_FATAL("--worker and --coordinate are exclusive: a "
                    "coordinator already participates as a worker");
    if (out.chunk == 0 || out.leaseMs == 0)
        SVARD_FATAL("--chunk and --lease-ms must be positive");
    if (out.manifestPath.empty()) {
        if (!out.outPath.empty())
            out.manifestPath = out.outPath + ".manifest.json";
        else if (!out.cachePath.empty())
            out.manifestPath = out.cachePath + ".manifest.json";
    }
    if (!out.outPath.empty() && out.outPath == out.cachePath)
        SVARD_FATAL("--out and --cache must name different files "
                    "(\"" + out.outPath + "\"): the sink would "
                    "truncate the checkpoint it is resuming from");
    if (out.resume) {
        if (out.cachePath.empty())
            SVARD_FATAL("--resume requires --cache=PATH "
                        "(or SVARD_CACHE)");
        if (!io::SweepCache::fileExists(out.cachePath))
            SVARD_FATAL("--resume: no checkpoint at \"" +
                        out.cachePath + "\"");
    }
    if (!out.cachePath.empty()) {
        // Degrade, don't die: an unwritable cache loses
        // checkpointing, not the run. --resume stays strict — its
        // contract is "the checkpoint is there and loads".
        out.cache = io::SweepCache::openOrNull(out.cachePath);
        if (out.resume && !out.cache)
            SVARD_FATAL("--resume: checkpoint \"" + out.cachePath +
                        "\" exists but cannot be used");
    }
    if (!out.outPath.empty())
        out.sink = std::make_shared<io::AsyncSink>(
            io::makeSinkForPath(out.outPath));
    return out;
}

} // namespace svard::bench

#endif // SVARD_BENCH_BENCH_UTIL_H
