/**
 * @file
 * Reproduces paper Fig. 7: the effect of the aggressor row's on-time
 * (tAggOn: 36ns, 0.5us, 2us) on the HC_first distribution, per
 * manufacturer, as box-and-whiskers statistics. RowPress: HC_first
 * drops with increasing on-time while the row-to-row variation stays
 * large (CV ~25-30%).
 */
#include <map>

#include "bench_util.h"
#include "common/stats.h"

using namespace svard;
using namespace svard::bench;

int
main()
{
    const dram::Tick t_ons[] = {36 * dram::kPsPerNs,
                                dram::kPsPerUs / 2,
                                2 * dram::kPsPerUs};
    const char *t_on_names[] = {"36ns", "0.5us", "2us"};

    Table t("Fig. 7: effect of tAggOn on HC_first (per manufacturer)",
            {"Mfr", "tAggOn", "Min", "Q1", "Median", "Q3", "Max",
             "Mean", "CV%"});

    std::map<char, std::map<int, std::vector<double>>> per_mfr;
    for (const auto &label : allLabels()) {
        ModuleRig rig(label);
        auto opt = benchCharzOptions(rig.spec);
        opt.banks = {1};
        // The tAggOn sweep triples the work; halve the row sample.
        opt.rowStep *= 2;
        ++opt.rowStep;
        for (int i = 0; i < 3; ++i) {
            auto o = opt;
            o.tAggOn = t_ons[i];
            const auto results = rig.charz.characterizeBank(1, o);
            auto &bucket =
                per_mfr[dram::vendorLetter(rig.spec.vendor)][i];
            for (const auto &r : results)
                bucket.push_back(static_cast<double>(r.hcFirst));
        }
    }

    for (const auto &[mfr, by_ton] : per_mfr) {
        for (const auto &[i, hcs] : by_ton) {
            const BoxStats bs = boxStats(hcs);
            t.addRow({std::string("Mfr. ") + mfr, t_on_names[i],
                      Table::fmtHc(int64_t(bs.min)),
                      Table::fmtHc(int64_t(bs.q1)),
                      Table::fmtHc(int64_t(bs.median)),
                      Table::fmtHc(int64_t(bs.q3)),
                      Table::fmtHc(int64_t(bs.max)),
                      Table::fmt(bs.mean / 1024.0, 1) + "K",
                      Table::fmt(coefficientOfVariation(hcs) * 100.0,
                                 1)});
        }
    }
    t.print();
    return 0;
}
