/**
 * @file
 * Unit tests for the VulnerabilityModel: determinism, Table 5
 * calibration (min/avg/max HC_first), BER calibration (mean and CV of
 * Fig. 3), RowPress scaling (Fig. 7), aging (Fig. 10), and the
 * pattern-severity ingredients.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/stats.h"
#include "dram/module_spec.h"
#include "fault/patterns.h"
#include "fault/vuln_model.h"

namespace svard::fault {
namespace {

using dram::ModuleSpec;
using dram::SubarrayMap;
using dram::kPsPerNs;
using dram::kPsPerUs;

std::shared_ptr<VulnerabilityModel>
makeModel(const std::string &label, bool aged = false)
{
    const ModuleSpec &spec = dram::moduleByLabel(label);
    auto map = std::make_shared<SubarrayMap>(spec);
    return std::make_shared<VulnerabilityModel>(spec, map, aged);
}

TEST(Patterns, Table2Fills)
{
    EXPECT_EQ(aggressorFill(DataPattern::RowStripe), 0xFF);
    EXPECT_EQ(victimFill(DataPattern::RowStripe), 0x00);
    EXPECT_EQ(aggressorFill(DataPattern::Checkerboard), 0xAA);
    EXPECT_EQ(victimFill(DataPattern::Checkerboard), 0x55);
    EXPECT_STREQ(patternName(DataPattern::ColumnStripeInv), "CSI");
    EXPECT_EQ(allDataPatterns.size(), 6u);
}

TEST(VulnModel, Deterministic)
{
    auto a = makeModel("H0");
    auto b = makeModel("H0");
    for (uint32_t r = 0; r < 256; ++r) {
        EXPECT_DOUBLE_EQ(a->hcFirst(1, r), b->hcFirst(1, r));
        EXPECT_DOUBLE_EQ(a->ber128k(1, r), b->ber128k(1, r));
    }
}

TEST(VulnModel, QuantizeHc)
{
    using VM = VulnerabilityModel;
    EXPECT_EQ(VM::quantizeHc(500.0), 1024);
    EXPECT_EQ(VM::quantizeHc(1024.0), 1024);
    EXPECT_EQ(VM::quantizeHc(1025.0), 2048);
    EXPECT_EQ(VM::quantizeHc(13000.0), 16 * 1024);
    EXPECT_EQ(VM::quantizeHc(130000.0), 128 * 1024);
    EXPECT_EQ(VM::quantizeHc(999999.0), 128 * 1024);
}

TEST(VulnModel, WeakestRowCarriesModuleMinimum)
{
    for (const char *label : {"H0", "M0", "S0"}) {
        auto m = makeModel(label);
        for (uint32_t bank : {0u, 3u}) {
            const uint32_t weak = m->weakestRow(bank);
            // Quantized to the tested counts, the weakest row measures
            // exactly the module's Table 5 minimum.
            EXPECT_EQ(VulnerabilityModel::quantizeHc(
                          m->hcFirst(bank, weak)),
                      m->spec().hcFirstMin)
                << label;
        }
    }
}

/** Per-module calibration sweep over all 15 modules. */
class VulnModelCalibration
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(VulnModelCalibration, HcFirstWithinTable5Bounds)
{
    auto m = makeModel(GetParam());
    const auto &spec = m->spec();
    for (uint32_t r = 0; r < 4096; r += 3) {
        const double hc = m->hcFirst(0, r);
        EXPECT_GE(hc, 0.98 * spec.hcFirstMin);
        EXPECT_LE(hc, spec.hcFirstMax);
        // Quantized, every row reports within Table 5's bounds.
        const int64_t q = VulnerabilityModel::quantizeHc(hc);
        EXPECT_GE(q, spec.hcFirstMin);
        EXPECT_LE(q, spec.hcFirstMax);
    }
}

TEST_P(VulnModelCalibration, HcFirstMeanNearTable5Average)
{
    auto m = makeModel(GetParam());
    const auto &spec = m->spec();
    double sum = 0.0;
    const uint32_t n = 8192;
    for (uint32_t r = 0; r < n; ++r)
        sum += m->hcFirst(0, r * (spec.rowsPerBank / n));
    const double avg = sum / n;
    // Clipping shifts the mean; allow 12%.
    EXPECT_NEAR(avg / static_cast<double>(spec.hcFirstAvg), 1.0, 0.12)
        << GetParam();
}

TEST_P(VulnModelCalibration, BerMeanAndCvNearFig3)
{
    auto m = makeModel(GetParam());
    const auto &spec = m->spec();
    std::vector<double> bers;
    const uint32_t n = 8192;
    for (uint32_t r = 0; r < n; ++r)
        bers.push_back(m->ber128k(0, r * (spec.rowsPerBank / n)));
    EXPECT_NEAR(svard::mean(bers) / spec.berMean, 1.0, 0.08)
        << GetParam();
    const double cv = svard::coefficientOfVariation(bers) * 100.0;
    EXPECT_NEAR(cv / spec.berCvPct, 1.0, 0.35) << GetParam();
}

TEST_P(VulnModelCalibration, BerCurveAnchoredAt128K)
{
    auto m = makeModel(GetParam());
    for (uint32_t r = 100; r < 200; ++r) {
        const double hcf = m->hcFirst(0, r);
        if (hcf >= 128.0 * 1024.0)
            continue;
        EXPECT_DOUBLE_EQ(m->berAt(0, r, 128.0 * 1024.0),
                         std::min(m->ber128k(0, r), 0.5));
        EXPECT_DOUBLE_EQ(m->berAt(0, r, hcf * 0.999), 0.0);
        EXPECT_GT(m->berAt(0, r, 128.0 * 1024.0),
                  m->berAt(0, r, (hcf + 128.0 * 1024.0) / 2.0));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModules, VulnModelCalibration,
    ::testing::Values("H0", "H1", "H2", "H3", "H4", "M0", "M1", "M2",
                      "M3", "M4", "S0", "S1", "S2", "S3", "S4"));

TEST(VulnModel, ActWeightBaseIsHalfHammer)
{
    auto m = makeModel("H1");
    double sum = 0.0;
    const int n = 512;
    for (int r = 0; r < n; ++r)
        sum += m->actWeight(0, r, 36 * kPsPerNs);
    EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(VulnModel, RowPressMonotoneInOnTime)
{
    auto m = makeModel("M2");
    for (uint32_t r = 0; r < 64; ++r) {
        const double w36 = m->actWeight(0, r, 36 * kPsPerNs);
        const double w500 = m->actWeight(0, r, kPsPerUs / 2);
        const double w2000 = m->actWeight(0, r, 2 * kPsPerUs);
        EXPECT_LT(w36, w500);
        EXPECT_LT(w500, w2000);
        // Fig. 7: roughly an order of magnitude at 2us.
        EXPECT_GT(w2000 / w36, 4.0);
        EXPECT_LT(w2000 / w36, 25.0);
    }
}

TEST(VulnModel, AgingOnlyLowersWeakRows)
{
    auto fresh = makeModel("H3", false);
    auto aged = makeModel("H3", true);
    uint64_t lowered = 0, raised = 0, strong_changed = 0;
    const uint32_t n = 32768;
    for (uint32_t r = 0; r < n; ++r) {
        const double before = fresh->hcFirst(0, r);
        const double after = aged->hcFirst(0, r);
        if (after < before)
            ++lowered;
        if (after > before)
            ++raised;
        if (VulnerabilityModel::quantizeHc(before) == 128 * 1024 &&
            after != before)
            ++strong_changed;
    }
    EXPECT_GT(lowered, 0u);
    EXPECT_EQ(raised, 0u);
    EXPECT_EQ(strong_changed, 0u); // Obsv. 13: strongest rows unaffected
}

TEST(VulnModel, AgingDropsExactlyOneQuantizationStep)
{
    auto fresh = makeModel("S2", false);
    auto aged = makeModel("S2", true);
    const auto &labels = dram::testedHammerCounts();
    for (uint32_t r = 0; r < 32768; ++r) {
        const int64_t qb =
            VulnerabilityModel::quantizeHc(fresh->hcFirst(0, r));
        const int64_t qa =
            VulnerabilityModel::quantizeHc(aged->hcFirst(0, r));
        if (qa == qb)
            continue;
        // Changed rows moved down exactly one tested label.
        auto it = std::find(labels.begin(), labels.end(), qb);
        ASSERT_NE(it, labels.begin());
        EXPECT_EQ(qa, *(it - 1)) << "row " << r;
    }
}

TEST(VulnModel, CellParametersInRange)
{
    auto m = makeModel("M4");
    for (uint32_t r = 0; r < 512; ++r) {
        const double tf = m->trueCellFraction(0, r);
        EXPECT_GE(tf, 0.35);
        EXPECT_LE(tf, 0.65);
        const double sc = m->sameDataCoupling(0, r);
        EXPECT_GE(sc, 0.25);
        EXPECT_LE(sc, 0.60);
        const double pj = m->patternJitter(0, r, 0x00, 0xFF);
        EXPECT_GT(pj, 0.7);
        EXPECT_LT(pj, 1.4);
    }
}

TEST(VulnModel, SamsungFeatureBitsShiftHcFirst)
{
    // S4's subarray-address bit 0 should separate mean HC_first.
    auto m = makeModel("S4");
    const auto &map = m->subarrays();
    double sum[2] = {0, 0};
    uint64_t cnt[2] = {0, 0};
    for (uint32_t r = 0; r < m->spec().rowsPerBank; r += 7) {
        const int b = map.locate(r).subarray & 1;
        sum[b] += m->hcFirst(0, r);
        ++cnt[b];
    }
    const double mean0 = sum[0] / cnt[0];
    const double mean1 = sum[1] / cnt[1];
    EXPECT_GT(mean1 / mean0, 1.08); // strength 0.18 in ln-space
}

TEST(VulnModel, NonSamsungModulesHaveNoFeatureShift)
{
    auto m = makeModel("H1");
    const auto &map = m->subarrays();
    double sum[2] = {0, 0};
    uint64_t cnt[2] = {0, 0};
    for (uint32_t r = 0; r < m->spec().rowsPerBank; r += 7) {
        const int b = map.locate(r).subarray & 1;
        sum[b] += m->hcFirst(0, r);
        ++cnt[b];
    }
    EXPECT_NEAR((sum[1] / cnt[1]) / (sum[0] / cnt[0]), 1.0, 0.03);
}

TEST(VulnModel, M1ChunkElevatesBer)
{
    auto m = makeModel("M1");
    const uint32_t rows = m->spec().rowsPerBank;
    std::vector<double> inside, outside;
    for (uint32_t r = 0; r < rows; r += 11) {
        const double x = m->relativeLocation(r);
        if (x >= 0.03 && x < 0.12)
            inside.push_back(m->ber128k(0, r));
        else if (x >= 0.20)
            outside.push_back(m->ber128k(0, r));
    }
    EXPECT_GT(svard::mean(inside) / svard::mean(outside), 1.05);
}

} // namespace
} // namespace svard::fault
