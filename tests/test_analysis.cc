/**
 * @file
 * Tests for the analysis library: k-means clustering, silhouette
 * scores, confusion matrices / F1, and the binary-feature predictor
 * underlying the paper's spatial-feature correlation analysis.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/classify.h"
#include "analysis/kmeans.h"
#include "common/rng.h"

namespace svard::analysis {
namespace {

std::vector<Point>
gaussianBlobs(const std::vector<std::pair<double, double>> &centers,
              size_t per_blob, double spread, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Point> pts;
    for (const auto &[cx, cy] : centers)
        for (size_t i = 0; i < per_blob; ++i)
            pts.push_back({cx + rng.normal(0.0, spread),
                           cy + rng.normal(0.0, spread)});
    return pts;
}

TEST(KMeans, RecoversWellSeparatedBlobs)
{
    const auto pts = gaussianBlobs({{0, 0}, {10, 0}, {0, 10}}, 80, 0.5,
                                   3);
    const auto res = kMeans(pts, 3, 5);
    // Every blob should be pure: points 0..79 share a label, etc.
    for (int blob = 0; blob < 3; ++blob) {
        const uint32_t label = res.assignment[blob * 80];
        for (int i = 0; i < 80; ++i)
            EXPECT_EQ(res.assignment[blob * 80 + i], label);
    }
}

TEST(KMeans, InertiaDecreasesWithK)
{
    const auto pts = gaussianBlobs({{0, 0}, {8, 0}, {0, 8}, {8, 8}}, 50,
                                   0.8, 7);
    double prev = 1e300;
    for (uint32_t k = 1; k <= 6; ++k) {
        const auto res = kMeans(pts, k, 11);
        EXPECT_LE(res.inertia, prev + 1e-9) << "k=" << k;
        prev = res.inertia;
    }
}

TEST(KMeans, KEqualsNGivesZeroInertia)
{
    std::vector<Point> pts = {{0.0}, {1.0}, {2.0}, {5.0}};
    const auto res = kMeans(pts, 4, 1);
    EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(KMeans, SingleClusterCentroidIsMean)
{
    std::vector<Point> pts = {{1.0, 1.0}, {3.0, 5.0}, {5.0, 3.0}};
    const auto res = kMeans(pts, 1, 1);
    EXPECT_NEAR(res.centroids[0][0], 3.0, 1e-12);
    EXPECT_NEAR(res.centroids[0][1], 3.0, 1e-12);
}

TEST(Silhouette, HighForSeparatedLowForMerged)
{
    const auto pts = gaussianBlobs({{0, 0}, {20, 0}}, 60, 0.5, 13);
    const auto good = kMeans(pts, 2, 5);
    const double s_good = silhouetteScore(pts, good.assignment, 2);
    EXPECT_GT(s_good, 0.85);

    const auto split = kMeans(pts, 6, 5);
    const double s_split = silhouetteScore(pts, split.assignment, 6);
    EXPECT_LT(s_split, s_good);
}

TEST(Silhouette, PeaksAtTrueK)
{
    // Fig. 8's methodology: sweep k, global max at the true count.
    const auto pts = gaussianBlobs(
        {{0, 0}, {12, 0}, {0, 12}, {12, 12}, {6, 20}}, 60, 0.7, 17);
    double best = -2.0;
    uint32_t best_k = 0;
    for (uint32_t k = 2; k <= 9; ++k) {
        const auto res = kMeans(pts, k, 19);
        const double s = silhouetteScore(pts, res.assignment, k);
        if (s > best) {
            best = s;
            best_k = k;
        }
    }
    EXPECT_EQ(best_k, 5u);
}

TEST(Silhouette, DegenerateReturnsZero)
{
    std::vector<Point> pts = {{0.0}, {1.0}, {2.0}};
    std::vector<uint32_t> one_cluster = {0, 0, 0};
    EXPECT_DOUBLE_EQ(silhouetteScore(pts, one_cluster, 1), 0.0);
}

TEST(Confusion, PerfectPredictorScoresOne)
{
    ConfusionMatrix cm;
    for (int i = 0; i < 50; ++i) {
        cm.add(1, 1);
        cm.add(2, 2);
    }
    EXPECT_DOUBLE_EQ(cm.precision(1), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(2), 1.0);
    EXPECT_DOUBLE_EQ(cm.weightedF1(), 1.0);
}

TEST(Confusion, KnownMixedCase)
{
    // actual 1 predicted 1: 8; actual 1 predicted 2: 2;
    // actual 2 predicted 2: 5; actual 2 predicted 1: 5.
    ConfusionMatrix cm;
    for (int i = 0; i < 8; ++i) cm.add(1, 1);
    for (int i = 0; i < 2; ++i) cm.add(1, 2);
    for (int i = 0; i < 5; ++i) cm.add(2, 2);
    for (int i = 0; i < 5; ++i) cm.add(2, 1);
    EXPECT_NEAR(cm.precision(1), 8.0 / 13.0, 1e-12);
    EXPECT_NEAR(cm.recall(1), 0.8, 1e-12);
    EXPECT_NEAR(cm.precision(2), 5.0 / 7.0, 1e-12);
    EXPECT_NEAR(cm.recall(2), 0.5, 1e-12);
    const double f1_1 = 2 * (8.0 / 13.0) * 0.8 / ((8.0 / 13.0) + 0.8);
    const double f1_2 =
        2 * (5.0 / 7.0) * 0.5 / ((5.0 / 7.0) + 0.5);
    EXPECT_NEAR(cm.weightedF1(), 0.5 * f1_1 + 0.5 * f1_2, 1e-12);
}

TEST(Confusion, UnpredictedClassHasZeroScores)
{
    ConfusionMatrix cm;
    cm.add(1, 2);
    cm.add(2, 2);
    EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);
    EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
    EXPECT_DOUBLE_EQ(cm.f1(1), 0.0);
}

TEST(BinaryFeature, PerfectlySeparatingFeature)
{
    std::vector<uint8_t> feat;
    std::vector<int64_t> cls;
    for (int i = 0; i < 100; ++i) {
        feat.push_back(i % 2);
        cls.push_back(i % 2 ? 7 : 3);
    }
    EXPECT_DOUBLE_EQ(binaryFeatureF1(feat, cls), 1.0);
}

TEST(BinaryFeature, UncorrelatedFeatureScoresLikeMajorityBaseline)
{
    Rng rng(23);
    std::vector<uint8_t> feat;
    std::vector<int64_t> cls;
    for (int i = 0; i < 4000; ++i) {
        feat.push_back(rng.chance(0.5) ? 1 : 0);
        // Three classes, 60/30/10 split.
        const double u = rng.uniform();
        cls.push_back(u < 0.6 ? 1 : (u < 0.9 ? 2 : 3));
    }
    const double f1 = binaryFeatureF1(feat, cls);
    // Majority predictor: recall(1)=1, precision(1)=0.6 -> weighted F1
    // = 0.6 * 0.75 = 0.45.
    EXPECT_NEAR(f1, 0.45, 0.05);
}

TEST(BinaryFeature, PartiallyCorrelatedScoresBetween)
{
    Rng rng(29);
    std::vector<uint8_t> feat;
    std::vector<int64_t> cls;
    for (int i = 0; i < 4000; ++i) {
        const uint8_t f = rng.chance(0.5) ? 1 : 0;
        feat.push_back(f);
        // 80% of the time the class follows the feature.
        const bool follow = rng.chance(0.8);
        cls.push_back(follow ? (f ? 7 : 3) : (rng.chance(0.5) ? 7 : 3));
    }
    const double f1 = binaryFeatureF1(feat, cls);
    EXPECT_GT(f1, 0.8);
    EXPECT_LT(f1, 0.95);
}

} // namespace
} // namespace svard::analysis
