/**
 * @file
 * Golden-stats safety net for the hot-path rewrites (flat counter
 * tables, allocation-free activate path, event-driven controller
 * scheduling): every cell of a seeded defense x provider x mix grid
 * must produce *bit-identical* SimStats (ControllerStats + per-core
 * IPC + end time) and DefenseStats to the recorded values (captured
 * with SVARD_DUMP_GOLDEN=1); any scheduling or counting change —
 * however small — moves at least one fingerprint.
 *
 * Re-pinned for PR 5 after two deliberate timing-model fixes: (a)
 * SimConfig::cpuTick rounds to nearest instead of truncating,
 * removing the systematic downward bias of every non-integer tick
 * (the exact-half 3.2 GHz case moves from 312 to 313 ps — same 0.5 ps
 * error magnitude, but consistent with round-to-nearest everywhere
 * else), and (b) the controller enforces
 * tRRD_L between same-bank-group activations (it used tRRD_S for
 * every ACT-ACT pair, under-constraining same-group ACTs on every
 * standard). The pre/post equality structure across defenses was
 * verified unchanged when re-pinning.
 *
 * Also hosts the allocation-counting test backing the "zero heap
 * allocations per activation" invariant of MemController::tryIssue
 * and the defenses' onActivate hot paths.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/svard.h"
#include "core/vuln_profile.h"
#include "dram/module_spec.h"
#include "dram/subarray.h"
#include "fault/vuln_model.h"
#include "sim/controller.h"
#include "sim/system.h"
#include "sim/workload.h"

// ------------------------------------------------------------------
// Global allocation counter (used by the zero-allocation tests).
// Counting is toggled so gtest bookkeeping does not pollute counts.
// ------------------------------------------------------------------
static std::atomic<uint64_t> g_heapAllocs{0};
static std::atomic<bool> g_countAllocs{false};

void *
operator new(std::size_t n)
{
    if (g_countAllocs.load(std::memory_order_relaxed))
        g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace svard;

constexpr size_t kReqs = 1500;
constexpr uint64_t kSeed = 11;
constexpr double kThreshold = 512.0;

/** Fold every stat that the byte-identity guarantee covers into one
 *  64-bit fingerprint (doubles mixed by bit pattern — exact). */
uint64_t
statsFingerprint(const sim::RunResult &r)
{
    HashStream h;
    h.mix(r.endTime);
    h.mix(r.ipc.size());
    for (double ipc : r.ipc)
        h.mix(ipc);
    const sim::ControllerStats &c = r.controller;
    h.mix(c.reads).mix(c.writes).mix(c.activations).mix(c.rowHits);
    h.mix(c.rowConflicts).mix(c.refreshes).mix(c.preventiveRefreshes);
    h.mix(c.migrations).mix(c.swaps).mix(c.metadataAccesses);
    h.mix(c.throttleStall);
    const defense::DefenseStats &d = r.defense;
    h.mix(d.activationsObserved).mix(d.preventiveRefreshes);
    h.mix(d.throttleEvents).mix(d.throttleDelayTotal);
    h.mix(d.migrations).mix(d.swaps).mix(d.metadataAccesses);
    return h.value();
}

std::string
describeStats(const sim::RunResult &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "end=%lld reads=%llu writes=%llu acts=%llu hits=%llu "
        "conf=%llu ref=%llu pref=%llu mig=%llu swap=%llu meta=%llu "
        "stall=%lld | d.acts=%llu d.pref=%llu d.thr=%llu d.delay=%lld "
        "d.mig=%llu d.swap=%llu d.meta=%llu ipc0=%.17g",
        static_cast<long long>(r.endTime),
        static_cast<unsigned long long>(r.controller.reads),
        static_cast<unsigned long long>(r.controller.writes),
        static_cast<unsigned long long>(r.controller.activations),
        static_cast<unsigned long long>(r.controller.rowHits),
        static_cast<unsigned long long>(r.controller.rowConflicts),
        static_cast<unsigned long long>(r.controller.refreshes),
        static_cast<unsigned long long>(
            r.controller.preventiveRefreshes),
        static_cast<unsigned long long>(r.controller.migrations),
        static_cast<unsigned long long>(r.controller.swaps),
        static_cast<unsigned long long>(r.controller.metadataAccesses),
        static_cast<long long>(r.controller.throttleStall),
        static_cast<unsigned long long>(r.defense.activationsObserved),
        static_cast<unsigned long long>(r.defense.preventiveRefreshes),
        static_cast<unsigned long long>(r.defense.throttleEvents),
        static_cast<long long>(r.defense.throttleDelayTotal),
        static_cast<unsigned long long>(r.defense.migrations),
        static_cast<unsigned long long>(r.defense.swaps),
        static_cast<unsigned long long>(r.defense.metadataAccesses),
        r.ipc.empty() ? 0.0 : r.ipc[0]);
    return buf;
}

/** Workload of one golden cell. kMix* are benign seeded mixes; the
 *  kAdv* traces hammer rows hard enough to trigger every defense's
 *  preventive actions (refreshes, throttles, migrations, swaps,
 *  metadata traffic), so the goldens cover the action paths too. */
enum TraceKind : uint32_t
{
    kMix0 = 0,
    kMix1 = 1,
    kAdvRrs = 2,
    kAdvHydra = 3,
};

struct GoldenCell
{
    const char *defense;
    const char *provider; ///< "uniform" or "svard"
    uint32_t channels;
    uint32_t trace;       ///< TraceKind
    uint64_t fingerprint; ///< statsFingerprint of the run
};

/**
 * The grid: every defense mechanism x {uniform, Svärd-S0} x {2 seeded
 * benign mixes, 1 adversarial hammer trace} on the paper system, plus
 * one 2-channel Hydra cell covering the multi-channel engine.
 * Fingerprints recorded pre-rewrite.
 */
const GoldenCell kGolden[] = {
    // clang-format off
    {"para", "uniform", 1, 0, 0x9747993c7133a111ULL},
    {"para", "uniform", 1, 1, 0x4132c775e97904bdULL},
    {"para", "uniform", 1, 2, 0x3c7d07e26589b3bbULL},
    {"para", "svard", 1, 0, 0xdf10534468be6cdaULL},
    {"para", "svard", 1, 1, 0x56589e7419425b3bULL},
    {"para", "svard", 1, 2, 0x39c72b38acd49f9cULL},
    {"blockhammer", "uniform", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"blockhammer", "uniform", 1, 1, 0x77990fb350958deaULL},
    {"blockhammer", "uniform", 1, 2, 0xeed9ec910702c4cfULL},
    {"blockhammer", "svard", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"blockhammer", "svard", 1, 1, 0x77990fb350958deaULL},
    {"blockhammer", "svard", 1, 2, 0xeed9ec910702c4cfULL},
    {"hydra", "uniform", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"hydra", "uniform", 1, 1, 0x6a5b8bea14622e55ULL},
    {"hydra", "uniform", 1, 2, 0x81fdf15cd2670758ULL},
    {"hydra", "svard", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"hydra", "svard", 1, 1, 0x6a5b8bea14622e55ULL},
    {"hydra", "svard", 1, 2, 0x81fdf15cd2670758ULL},
    {"aqua", "uniform", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"aqua", "uniform", 1, 1, 0x77990fb350958deaULL},
    {"aqua", "uniform", 1, 2, 0x410e5d09e6128a92ULL},
    {"aqua", "svard", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"aqua", "svard", 1, 1, 0x77990fb350958deaULL},
    {"aqua", "svard", 1, 2, 0x410e5d09e6128a92ULL},
    {"rrs", "uniform", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"rrs", "uniform", 1, 1, 0x77990fb350958deaULL},
    {"rrs", "uniform", 1, 2, 0xcab70a0aee47a232ULL},
    {"rrs", "svard", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"rrs", "svard", 1, 1, 0x77990fb350958deaULL},
    {"rrs", "svard", 1, 2, 0xcab70a0aee47a232ULL},
    {"graphene", "uniform", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"graphene", "uniform", 1, 1, 0x77990fb350958deaULL},
    {"graphene", "uniform", 1, 2, 0x923f2378e5d9f67aULL},
    {"graphene", "svard", 1, 0, 0x43eda8b5e6c1cd55ULL},
    {"graphene", "svard", 1, 1, 0x77990fb350958deaULL},
    {"graphene", "svard", 1, 2, 0x923f2378e5d9f67aULL},
    {"hydra", "svard", 1, 3, 0x0f791e2510bc8d7bULL},
    {"hydra", "svard", 2, 0, 0x0e81af4db3eec19dULL},
    // clang-format on
};

class GoldenStatsTest : public ::testing::Test
{
  protected:
    static std::shared_ptr<const core::VulnProfile> &
    s0Profile()
    {
        static std::shared_ptr<const core::VulnProfile> prof = [] {
            sim::SimConfig cfg;
            const auto &spec = dram::moduleByLabel("S0");
            auto sa = std::make_shared<dram::SubarrayMap>(spec);
            fault::VulnerabilityModel model(spec, sa);
            return std::make_shared<core::VulnProfile>(
                core::VulnProfile::fromModel(model)
                    .resampledTo(cfg.banksPerRank(), cfg.rowsPerBank)
                    .scaledTo(kThreshold));
        }();
        return prof;
    }

    static std::shared_ptr<const core::ThresholdProvider>
    makeProvider(const std::string &kind, const sim::SimConfig &cfg)
    {
        if (kind == "uniform")
            return std::make_shared<core::UniformThreshold>(
                kThreshold, cfg.rowsPerBank);
        return std::make_shared<core::Svard>(s0Profile());
    }

    static sim::RunResult
    runCell(const char *defense, const char *provider,
            uint32_t channels, uint32_t trace_kind)
    {
        sim::SimConfig cfg;
        cfg.channels = channels;
        const auto &suite = sim::benchmarkSuite();
        std::vector<std::vector<sim::TraceEntry>> traces;
        if (trace_kind == kAdvRrs || trace_kind == kAdvHydra) {
            // Core 0 hammers, the rest run the fixed benign mix —
            // the Fig. 13 setup, which fires preventive actions.
            traces.push_back(
                trace_kind == kAdvRrs
                    ? sim::adversarialRrsTrace(kReqs, kSeed, 1000)
                    : sim::adversarialHydraTrace(kReqs, kSeed));
            const sim::WorkloadMix benign =
                sim::adversarialBenignMix(cfg.cores);
            for (uint32_t c = 1; c < cfg.cores; ++c)
                traces.push_back(sim::generateTrace(
                    suite[benign.benchIdx[c - 1]], kReqs, kSeed,
                    sim::coreTraceOffset(kSeed, c)));
        } else {
            const auto mixes = sim::workloadMixes(2, cfg.cores);
            const sim::WorkloadMix &mix = mixes[trace_kind];
            for (uint32_t c = 0; c < mix.benchIdx.size(); ++c)
                traces.push_back(sim::generateTrace(
                    suite[mix.benchIdx[c]], kReqs, kSeed,
                    sim::coreTraceOffset(kSeed, c)));
        }
        sim::System sys(cfg, std::move(traces), kReqs, defense,
                        makeProvider(provider, cfg), kSeed);
        return sys.run();
    }
};

TEST_F(GoldenStatsTest, StatsBitIdenticalAcrossHotPathRewrites)
{
    const bool dump = std::getenv("SVARD_DUMP_GOLDEN") != nullptr;
    if (dump) {
        const char *defenses[] = {"para",  "blockhammer", "hydra",
                                  "aqua",  "rrs",         "graphene"};
        const char *providers[] = {"uniform", "svard"};
        for (const char *d : defenses)
            for (const char *p : providers)
                for (uint32_t t : {kMix0, kMix1, kAdvRrs}) {
                    const sim::RunResult r = runCell(d, p, 1, t);
                    std::printf("    {\"%s\", \"%s\", 1, %u, "
                                "0x%016llxULL},\n",
                                d, p, t,
                                static_cast<unsigned long long>(
                                    statsFingerprint(r)));
                }
        const sim::RunResult rh =
            runCell("hydra", "svard", 1, kAdvHydra);
        std::printf("    {\"hydra\", \"svard\", 1, %u, "
                    "0x%016llxULL},\n",
                    static_cast<uint32_t>(kAdvHydra),
                    static_cast<unsigned long long>(
                        statsFingerprint(rh)));
        const sim::RunResult r = runCell("hydra", "svard", 2, kMix0);
        std::printf("    {\"hydra\", \"svard\", 2, 0, "
                    "0x%016llxULL},\n",
                    static_cast<unsigned long long>(
                        statsFingerprint(r)));
        GTEST_SKIP() << "golden dump mode";
    }

    for (const GoldenCell &g : kGolden) {
        const sim::RunResult r =
            runCell(g.defense, g.provider, g.channels, g.trace);
        EXPECT_EQ(statsFingerprint(r), g.fingerprint)
            << g.defense << "/" << g.provider << " ch=" << g.channels
            << " trace=" << g.trace << "\n  " << describeStats(r);
    }
}

// ------------------------------------------------------------------
// Allocation-free activate path
// ------------------------------------------------------------------

/** Drive `n` distinct-row read bursts through a bare controller. */
void
driveActivations(sim::MemController &mc, const sim::SimConfig &cfg,
                 uint32_t rows, dram::Tick *clock)
{
    for (uint32_t r = 0; r < rows; ++r) {
        sim::MemRequest req;
        req.core = 0;
        req.write = false;
        req.addr.rank = r % cfg.ranks;
        req.addr.bankGroup = (r / 2) % cfg.bankGroups;
        req.addr.bank = (r / 8) % cfg.banksPerGroup;
        req.addr.row = (r * 37) % 4096;
        req.addr.column = 0;
        req.arrive = *clock;
        // Under swap-heavy defenses a queue slot can take many
        // microseconds to free; keep simulating until one does.
        while (!mc.enqueue(req))
            *clock = mc.run(*clock + 500 * dram::kPsPerNs);
    }
    // Drain fully so the counted phase starts from an idle queue.
    while (!mc.idle())
        *clock = mc.run(*clock + 1000 * dram::kPsPerNs);
}

/** Drive a defense to steady state, then count heap allocations over
 *  one more full pass of the same working set. `warmup` passes are
 *  tuned so action paths (refresh, migrate, metadata) actually fire
 *  before counting starts (trigger point: 0.5 x threshold 64 = 32
 *  ACTs per row). */
uint64_t
countSteadyStateAllocs(const char *name, int warmup)
{
    sim::SimConfig cfg;
    auto provider = std::make_shared<core::UniformThreshold>(
        64.0, cfg.rowsPerBank);
    auto defense = defense::makeDefenseByName(
        name, defense::DefenseContext(cfg, provider, kSeed));
    if (!defense)
        return ~0ULL;
    sim::MemController mc(cfg, defense.get(), nullptr);

    dram::Tick clock = 0;
    for (int pass = 0; pass < warmup; ++pass)
        driveActivations(mc, cfg, 192, &clock);

    g_heapAllocs.store(0);
    g_countAllocs.store(true);
    driveActivations(mc, cfg, 192, &clock);
    g_countAllocs.store(false);
    return g_heapAllocs.load();
}

/**
 * After warm-up, the activate path — tryIssue, the defense's
 * onActivate into the controller's reusable ActionBuffer, the flat
 * counter tables, and the preventive-action execution — must perform
 * ZERO heap allocations. PARA/Hydra/BlockHammer reach steady state
 * in a few passes; AQUA and Graphene are warmed past their action
 * trigger points so migrations and neighbor refreshes fire during
 * the counted pass. (BlockHammer stays at short warm-up: past its
 * blacklist point it throttles with refresh-window-scale delays.)
 */
TEST(AllocationFreeActivatePath, SteadyStateTryIssueNeverAllocates)
{
    for (const char *name : {"para", "hydra", "blockhammer"})
        EXPECT_EQ(countSteadyStateAllocs(name, 4), 0u)
            << name << " allocated on the steady-state activate path";
    for (const char *name : {"aqua", "graphene"})
        EXPECT_EQ(countSteadyStateAllocs(name, 40), 0u)
            << name << " allocated on the steady-state activate path";
}

/**
 * RRS is exercised too but held to an amortized bound instead of
 * strict zero: each swap resets a RANDOM partner row's counter,
 * inserting fresh keys, so its flat table legitimately grows every
 * few thousand swaps. A handful of allocations per pass is table
 * growth; per-activation allocation would show up as hundreds.
 */
TEST(AllocationFreeActivatePath, RrsAllocatesOnlyForAmortizedGrowth)
{
    EXPECT_LE(countSteadyStateAllocs("rrs", 40), 16u);
}

} // namespace
