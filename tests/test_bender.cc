/**
 * @file
 * Tests for the DRAM-Bender-style test infrastructure: command timing,
 * Alg. 1's measure_BER semantics, refresh-window bookkeeping, and the
 * temperature controller.
 */
#include <gtest/gtest.h>

#include <memory>

#include "bender/temperature.h"
#include "bender/test_session.h"
#include "dram/device.h"
#include "fault/vuln_model.h"

namespace svard::bender {
namespace {

using dram::kPsPerNs;
using dram::kPsPerUs;

class BenderTest : public ::testing::Test
{
  protected:
    BenderTest()
        : spec_(dram::moduleByLabel("S0")),
          subarrays_(std::make_shared<dram::SubarrayMap>(spec_)),
          model_(std::make_shared<fault::VulnerabilityModel>(spec_,
                                                             subarrays_)),
          device_(spec_, subarrays_, model_),
          session_(device_)
    {}

    /** First logical victim with two aggressors. */
    uint32_t
    victimWithTwoAggressors() const
    {
        for (uint32_t r = 0; r < 8192; ++r)
            if (session_.aggressorRowsOf(r).size() == 2)
                return r;
        return 0;
    }

    const dram::ModuleSpec &spec_;
    std::shared_ptr<dram::SubarrayMap> subarrays_;
    std::shared_ptr<fault::VulnerabilityModel> model_;
    dram::DramDevice device_;
    mutable TestSession session_;
};

TEST_F(BenderTest, ClockAdvancesPerCommand)
{
    const auto t0 = session_.now();
    session_.act(0, 5);
    EXPECT_EQ(session_.now(), t0 + session_.timing().tRCD);
    session_.wait(1000);
    session_.pre(0);
    EXPECT_EQ(session_.now(),
              t0 + session_.timing().tRCD + 1000 + session_.timing().tRP);
}

TEST_F(BenderTest, InitRowWritesPattern)
{
    session_.initRow(1, 42, 0xAA);
    EXPECT_EQ(device_.countMismatchedBits(1, 42, 0xAA), 0u);
    EXPECT_EQ(device_.countMismatchedBits(1, 42, 0x55),
              spec_.rowBytes * 8ull);
}

TEST_F(BenderTest, MeasureBerBelowThresholdIsZero)
{
    const uint32_t victim = victimWithTwoAggressors();
    const auto aggr = session_.aggressorRowsOf(victim);
    const auto m = session_.measureBer(0, victim, aggr[0], aggr[1],
                                       fault::DataPattern::RowStripe,
                                       1024, 36 * kPsPerNs);
    EXPECT_EQ(m.flippedBits, 0u);  // S0 min HC_first is 32K
    EXPECT_EQ(m.totalBits, spec_.rowBytes * 8ull);
}

TEST_F(BenderTest, MeasureBerAt128KFlipsBits)
{
    const uint32_t victim = victimWithTwoAggressors();
    const auto aggr = session_.aggressorRowsOf(victim);
    const auto m = session_.measureBer(0, victim, aggr[0], aggr[1],
                                       fault::DataPattern::RowStripe,
                                       128 * 1024, 36 * kPsPerNs);
    EXPECT_GT(m.flippedBits, 0u);
    EXPECT_GT(m.ber(), 0.0);
    EXPECT_LT(m.ber(), 0.1);
}

TEST_F(BenderTest, RowPressLowersEffectiveThreshold)
{
    // At tAggOn = 2us, far fewer hammers suffice (Fig. 7).
    const uint32_t victim = victimWithTwoAggressors();
    const auto aggr = session_.aggressorRowsOf(victim);
    const auto fast = session_.measureBer(0, victim, aggr[0], aggr[1],
                                          fault::DataPattern::RowStripe,
                                          8 * 1024, 36 * kPsPerNs);
    const auto press = session_.measureBer(0, victim, aggr[0], aggr[1],
                                           fault::DataPattern::RowStripe,
                                           8 * 1024, 2 * kPsPerUs);
    EXPECT_EQ(fast.flippedBits, 0u);
    EXPECT_GT(press.flippedBits, 0u);
}

TEST_F(BenderTest, WorstCasePatternDominatesMostRows)
{
    // The per-row WCDP should produce BER >= every other pattern's BER
    // for the large majority of rows (severity model sanity).
    int wins = 0, rows_checked = 0;
    for (uint32_t victim = 16; victim < 4096 && rows_checked < 12;
         victim += 257) {
        const auto aggr = session_.aggressorRowsOf(victim);
        if (aggr.size() != 2)
            continue;
        ++rows_checked;
        uint64_t best_flips = 0;
        for (auto dp : fault::allDataPatterns) {
            const auto m = session_.measureBer(0, victim, aggr[0],
                                               aggr[1], dp, 128 * 1024,
                                               36 * kPsPerNs);
            best_flips = std::max(best_flips, m.flippedBits);
        }
        // Re-measure with RS and RSI; one of the stripes should be at
        // or near the per-row maximum for most rows.
        uint64_t stripe_best = 0;
        for (auto dp : {fault::DataPattern::RowStripe,
                        fault::DataPattern::RowStripeInv}) {
            const auto m = session_.measureBer(0, victim, aggr[0],
                                               aggr[1], dp, 128 * 1024,
                                               36 * kPsPerNs);
            stripe_best = std::max(stripe_best, m.flippedBits);
        }
        if (stripe_best * 10 >= best_flips * 8)
            ++wins;
    }
    EXPECT_GE(wins * 10, rows_checked * 7);
}

TEST_F(BenderTest, HammerTimeFitsRefreshWindowAtMinOnTime)
{
    const uint32_t victim = victimWithTwoAggressors();
    const auto aggr = session_.aggressorRowsOf(victim);
    session_.resetClock();
    session_.hammerDoubleSided(0, aggr[0], aggr[1], 128 * 1024,
                               36 * kPsPerNs);
    EXPECT_FALSE(session_.refreshWindowExceeded());
    EXPECT_EQ(session_.overruns(), 0u);
}

TEST_F(BenderTest, LongPressOverrunsRefreshWindowAndIsCounted)
{
    const uint32_t victim = victimWithTwoAggressors();
    const auto aggr = session_.aggressorRowsOf(victim);
    session_.resetClock();
    session_.hammerDoubleSided(0, aggr[0], aggr[1], 128 * 1024,
                               2 * kPsPerUs);
    EXPECT_TRUE(session_.refreshWindowExceeded());
    EXPECT_EQ(session_.overruns(), 1u);
}

TEST_F(BenderTest, AggressorRowsAreLogicalAddressesOfPhysicalNeighbors)
{
    for (uint32_t r = 100; r < 130; ++r) {
        const uint32_t phys = device_.mapping().toPhysical(r);
        const auto neigh = subarrays_->disturbedNeighbors(phys);
        const auto aggr = session_.aggressorRowsOf(r);
        ASSERT_EQ(aggr.size(), neigh.size());
        for (size_t i = 0; i < aggr.size(); ++i)
            EXPECT_EQ(device_.mapping().toPhysical(aggr[i]), neigh[i]);
    }
}

TEST(Temperature, SettlesWithinHalfDegree)
{
    TemperatureController ctl(80.0);
    ctl.settle();
    EXPECT_TRUE(ctl.stable());
    EXPECT_NEAR(ctl.temperature(), 80.0, 0.5);
}

TEST(Temperature, HoldsTargetOverTime)
{
    TemperatureController ctl(80.0);
    ctl.settle();
    double min_t = 1e9, max_t = -1e9;
    for (int i = 0; i < 2000; ++i) {
        ctl.step(0.25);
        min_t = std::min(min_t, ctl.temperature());
        max_t = std::max(max_t, ctl.temperature());
    }
    // Paper footnote 4: variation within 0.5 C at 80 C.
    EXPECT_NEAR(max_t - min_t, 0.0, 1.0);
    EXPECT_NEAR((max_t + min_t) / 2.0, 80.0, 0.5);
}

TEST(Temperature, RetargetsAfterSetpointChange)
{
    TemperatureController ctl(50.0);
    ctl.settle();
    EXPECT_NEAR(ctl.temperature(), 50.0, 0.5);
    ctl.setTarget(80.0);
    ctl.settle();
    EXPECT_NEAR(ctl.temperature(), 80.0, 0.5);
}

TEST(Temperature, HoldsHalfDegreePrecisionAcrossSeeds)
{
    // Paper Sec. 4.1 / footnote 4: the rig holds the chips within
    // +-0.5 C of the target. Pin that across noise seeds, not just
    // the default one.
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        TemperatureController ctl(80.0, 25.0, seed);
        ctl.settle();
        ASSERT_TRUE(ctl.stable()) << "seed " << seed;
        double min_t = 1e9, max_t = -1e9;
        for (int i = 0; i < 2000; ++i) {
            ctl.step(0.25);
            min_t = std::min(min_t, ctl.temperature());
            max_t = std::max(max_t, ctl.temperature());
        }
        EXPECT_NEAR((max_t + min_t) / 2.0, 80.0, 0.5)
            << "seed " << seed;
        EXPECT_LT(max_t - min_t, 1.0) << "seed " << seed;
    }
}

TEST(Temperature, DownwardRetargetDoesNotUndershoot)
{
    // A setpoint drop turns the heater off for the whole cooldown.
    // Without anti-windup the integral pegs at its negative clamp
    // during that stretch and the plant undershoots the new target by
    // several degrees before the heater re-engages; with conditional
    // integration the undershoot stays within the hold precision.
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        TemperatureController ctl(80.0, 25.0, seed);
        ctl.settle();
        ASSERT_TRUE(ctl.stable()) << "seed " << seed;
        ctl.setTarget(50.0);
        double min_t = 1e9;
        for (int i = 0; i < 4000; ++i) {
            ctl.step(0.25);
            min_t = std::min(min_t, ctl.temperature());
        }
        EXPECT_TRUE(ctl.stable()) << "seed " << seed;
        EXPECT_GT(min_t, 50.0 - 1.0) << "seed " << seed;
    }
}

TEST(Temperature, UpwardRetargetConvergesWithoutDerivativeKick)
{
    // setTarget() re-bases prevErr_: the first step after a retarget
    // must not see the setpoint jump as a derivative spike. The
    // observable contract is monotone-ish approach and convergence
    // well inside the settle budget.
    TemperatureController ctl(50.0, 25.0, 3);
    ctl.settle();
    ctl.setTarget(80.0);
    int steps_to_stable = -1;
    for (int i = 0; i < 4000; ++i) {
        ctl.step(0.25);
        if (steps_to_stable < 0 && ctl.stable())
            steps_to_stable = i + 1;
    }
    ASSERT_GE(steps_to_stable, 0);
    EXPECT_LT(steps_to_stable, 2000);
    EXPECT_NEAR(ctl.temperature(), 80.0, 0.5);
}

} // namespace
} // namespace svard::bender
