/**
 * @file
 * Cross-module integration tests: the full pipelines a user of this
 * library runs end to end — characterize a module, build a measured
 * profile, defend with it, attack the device — parameterized over
 * modules and defenses, plus consistency checks between the oracle
 * (fromModel) and measured (buildProfile) profiles.
 */
#include <gtest/gtest.h>

#include <memory>

#include "charz/characterizer.h"
#include "defense/harness.h"
#include "defense/registry.h"
#include "fault/vuln_model.h"

namespace svard {
namespace {

struct Pipeline
{
    explicit Pipeline(const std::string &label)
        : spec(dram::moduleByLabel(label)),
          subarrays(std::make_shared<dram::SubarrayMap>(spec)),
          model(std::make_shared<fault::VulnerabilityModel>(spec,
                                                            subarrays))
    {}

    const dram::ModuleSpec &spec;
    std::shared_ptr<dram::SubarrayMap> subarrays;
    std::shared_ptr<fault::VulnerabilityModel> model;
};

/** Measured-profile pipeline across all three manufacturers. */
class MeasuredProfileP : public ::testing::TestWithParam<const char *>
{};

TEST_P(MeasuredProfileP, MeasuredProfileDefendsTheDevice)
{
    Pipeline p(GetParam());

    // 1. Characterize a sampled bank (as a deployment would).
    dram::DramDevice charz_dev(p.spec, p.subarrays, p.model);
    charz::Characterizer charz(charz_dev);
    charz::CharzOptions opt;
    opt.rowStep = 257; // prime: no subarray aliasing
    opt.quickWcdp = true;
    opt.banks = {1};
    opt.extraRows = {charz_dev.mapping().toLogical(
        p.model->weakestRow(1))};
    const auto results = charz.characterizeModule(opt);

    // 2. Build the measured Svärd profile.
    auto prof = std::make_shared<core::VulnProfile>(
        charz::buildProfile(p.spec, results));
    EXPECT_LE(prof->minThreshold(),
              static_cast<double>(p.spec.hcFirstMin));

    // 3. Defend a fresh device with it and attack the weakest row.
    dram::DramDevice victim_dev(p.spec, p.subarrays, p.model);
    auto g = defense::makeDefenseByName(
        "graphene",
        defense::DefenseContext(std::make_shared<core::Svard>(prof),
                                1, p.spec.banks));
    defense::AttackOptions attack;
    attack.victim =
        victim_dev.mapping().toLogical(p.model->weakestRow(attack.bank));
    attack.refreshWindows = 1;
    attack.maxActsPerAggressor = 200 * 1024;
    const auto res =
        defense::runDoubleSidedAttack(victim_dev, g.get(), attack);
    EXPECT_EQ(res.bitflips, 0u) << GetParam();
    EXPECT_GT(res.preventiveRefreshes, 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Manufacturers, MeasuredProfileP,
                         ::testing::Values("H4", "M0", "S2"));

TEST(ProfileConsistency, MeasuredBinsNeverBelowOracleByMoreThanNoise)
{
    // The measured profile (quantization noise pushes HC_first up,
    // never down) must never assign a row a *higher* bin than what
    // quantized ground truth allows plus one step of WCDP noise.
    Pipeline p("S2");
    dram::DramDevice dev(p.spec, p.subarrays, p.model);
    charz::Characterizer charz(dev);
    charz::CharzOptions opt;
    opt.rowStep = 257;
    opt.quickWcdp = true;
    opt.banks = {1};
    const auto results = charz.characterizeModule(opt);
    const auto measured = charz::buildProfile(p.spec, results);
    const auto oracle = core::VulnProfile::fromModel(*p.model);

    const auto &labels = dram::testedHammerCounts();
    for (const auto &r : results) {
        // Subarray-edge victims measure ~2x (disturbed from one side
        // only, while thresholds count activation pairs) — a real,
        // safe property of measured profiles, outside this check.
        if (r.numAggressors < 2)
            continue;
        const double m_thr = measured.thresholdOf(1, r.physRow);
        const double o_thr = oracle.thresholdOf(1, r.physRow);
        // Measured can overshoot by at most one tested count (quick
        // WCDP) and can never be *less safe* than... the oracle bound
        // shifted one label up.
        size_t o_idx = 0;
        for (size_t i = 0; i < labels.size(); ++i)
            if (static_cast<double>(labels[i]) <= o_thr)
                o_idx = i;
        const double allowed =
            static_cast<double>(labels[std::min(o_idx + 2,
                                                labels.size() - 1)]);
        EXPECT_LE(m_thr, allowed) << "row " << r.physRow;
    }
}

TEST(ProfileConsistency, ResampleThenScaleEqualsScaleThenResample)
{
    Pipeline p("S0");
    const auto prof = core::VulnProfile::fromModel(*p.model);
    const auto a = prof.resampledTo(16, 128 * 1024).scaledTo(64.0);
    const auto b = prof.scaledTo(64.0).resampledTo(16, 128 * 1024);
    EXPECT_DOUBLE_EQ(a.minThreshold(), b.minThreshold());
    for (uint32_t r = 0; r < 4096; r += 17)
        EXPECT_DOUBLE_EQ(a.thresholdOf(3, r), b.thresholdOf(3, r));
}

TEST(ProfileConsistency, ResampledPreservesOccupancyMix)
{
    Pipeline p("M0");
    const auto prof = core::VulnProfile::fromModel(*p.model);
    const auto res = prof.resampledTo(16, 128 * 1024);
    const auto occ_a = prof.binOccupancy();
    const auto occ_b = res.binOccupancy();
    for (size_t i = 0; i < occ_a.size(); ++i)
        EXPECT_NEAR(occ_a[i], occ_b[i], 0.02) << "bin " << i;
}

TEST(AgedProfile, FreshProfileIsUnsafeAfterAgingWeakRowsNeedUpdate)
{
    // Obsv. 12's deployment implication: a profile characterized
    // before aging can under-protect rows whose HC_first degraded.
    // Find such a row and show the fresh profile's bound now exceeds
    // the aged truth for at least one row — the paper's case for
    // periodic online re-characterization.
    const auto &spec = dram::moduleByLabel("H3");
    auto sa = std::make_shared<dram::SubarrayMap>(spec);
    fault::VulnerabilityModel fresh(spec, sa, false);
    fault::VulnerabilityModel aged(spec, sa, true);
    const auto prof = core::VulnProfile::fromModel(fresh);

    bool found_unsafe = false;
    for (uint32_t r = 0; r < spec.rowsPerBank && !found_unsafe; ++r) {
        if (aged.hcFirst(1, r) < fresh.hcFirst(1, r) &&
            prof.thresholdOf(1, r) >= aged.hcFirst(1, r))
            found_unsafe = true;
    }
    EXPECT_TRUE(found_unsafe);

    // Re-characterizing (profile from the aged model) restores safety.
    const auto updated = core::VulnProfile::fromModel(aged);
    for (uint32_t r = 0; r < 32768; r += 3)
        EXPECT_LT(updated.thresholdOf(1, r), aged.hcFirst(1, r));
}

TEST(DeterminismAcrossRuns, FullPipelineIsBitReproducible)
{
    auto run = [] {
        Pipeline p("S3");
        dram::DramDevice dev(p.spec, p.subarrays, p.model);
        charz::Characterizer charz(dev);
        charz::CharzOptions opt;
        opt.rowStep = 1021;
        opt.quickWcdp = true;
        opt.banks = {1};
        uint64_t acc = 0;
        for (const auto &r : charz.characterizeModule(opt))
            acc = acc * 1000003 + static_cast<uint64_t>(r.hcFirst) +
                  static_cast<uint64_t>(r.ber128k * 1e9);
        return acc;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace svard
