/**
 * @file
 * Integration tests for the characterization harness: Alg. 1's
 * per-row results against the fault-model ground truth, profile
 * building, reverse engineering (row mapping + subarrays), the
 * spatial-feature F1 analysis, and the aging experiment.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "charz/aging.h"
#include "charz/characterizer.h"
#include "charz/features.h"
#include "charz/reveng.h"
#include "fault/vuln_model.h"

namespace svard::charz {
namespace {

using dram::kPsPerNs;
using dram::kPsPerUs;

struct Rig
{
    explicit Rig(const std::string &label)
        : spec(dram::moduleByLabel(label)),
          subarrays(std::make_shared<dram::SubarrayMap>(spec)),
          model(std::make_shared<fault::VulnerabilityModel>(spec,
                                                            subarrays)),
          device(spec, subarrays, model),
          charz(device)
    {}

    const dram::ModuleSpec &spec;
    std::shared_ptr<dram::SubarrayMap> subarrays;
    std::shared_ptr<fault::VulnerabilityModel> model;
    dram::DramDevice device;
    Characterizer charz;
};

TEST(Characterizer, HcFirstMatchesGroundTruthQuantization)
{
    Rig rig("S0");
    CharzOptions opt;
    opt.quickWcdp = true;
    int exact = 0, tested = 0;
    for (uint32_t r = 16; r < 4000; r += 331) {
        const auto res = rig.charz.characterizeRow(1, r, opt);
        const double truth = rig.model->hcFirst(1, res.physRow);
        const int64_t q = fault::VulnerabilityModel::quantizeHc(truth);
        ++tested;
        // Measured HC_first can exceed the quantized truth when the
        // quick WCDP misses the exact worst pattern, but never
        // undershoots it (flips cannot appear below the threshold).
        EXPECT_GE(res.hcFirst, q) << "row " << r;
        if (res.hcFirst == q)
            ++exact;
    }
    EXPECT_GE(exact * 10, tested * 6) << "quantization rarely exact";
}

TEST(Characterizer, Ber128kCloseToModelGroundTruth)
{
    Rig rig("H1");
    CharzOptions opt;
    for (uint32_t r = 64; r < 2000; r += 613) {
        const auto res = rig.charz.characterizeRow(1, r, opt);
        const double truth = rig.model->ber128k(1, res.physRow);
        if (rig.model->hcFirst(1, res.physRow) >= 128.0 * 1024.0)
            continue;
        EXPECT_NEAR(res.ber128k / truth, 1.0, 0.25) << "row " << r;
    }
}

TEST(Characterizer, WeakestRowMeasuresModuleMinimum)
{
    Rig rig("M0");
    const uint32_t weak_phys = rig.model->weakestRow(1);
    const uint32_t weak_logical =
        rig.device.mapping().toLogical(weak_phys);
    CharzOptions opt;
    const auto res = rig.charz.characterizeRow(1, weak_logical, opt);
    EXPECT_EQ(res.hcFirst, rig.spec.hcFirstMin);
}

TEST(Characterizer, IterationsNeverRaiseRecordedWorstCase)
{
    Rig rig("S2");
    CharzOptions one;
    one.quickWcdp = true;
    CharzOptions three = one;
    three.iterations = 3;
    for (uint32_t r = 100; r < 1200; r += 379) {
        const auto a = rig.charz.characterizeRow(1, r, one);
        const auto b = rig.charz.characterizeRow(1, r, three);
        EXPECT_LE(b.hcFirst, a.hcFirst);
        EXPECT_GE(b.ber128k, 0.0);
    }
}

TEST(Characterizer, BankSweepRespectsSampling)
{
    Rig rig("S3");
    CharzOptions opt;
    opt.rowStep = 4096;
    opt.quickWcdp = true;
    opt.extraRows = {5};
    const auto results = rig.charz.characterizeBank(1, opt);
    EXPECT_EQ(results.size(), rig.spec.rowsPerBank / 4096 + 1);
    std::set<uint32_t> rows;
    for (const auto &r : results) {
        EXPECT_EQ(r.bank, 1u);
        rows.insert(r.logicalRow);
    }
    EXPECT_TRUE(rows.count(5));
    EXPECT_TRUE(rows.count(0));
}

TEST(Characterizer, BuildProfileInterpolatesAndStaysOrdered)
{
    Rig rig("S0");
    CharzOptions opt;
    opt.rowStep = 512;
    opt.quickWcdp = true;
    opt.banks = {1};
    const auto results = rig.charz.characterizeModule(opt);
    const auto prof = buildProfile(rig.spec, results);
    EXPECT_EQ(prof.rowsPerBank(), rig.spec.rowsPerBank);
    // Tested rows carry their own measurement (physical key space).
    for (const auto &r : results) {
        const double bound = prof.thresholdOf(r.bank, r.physRow);
        EXPECT_LT(bound, static_cast<double>(r.hcFirst) + 1.0);
    }
    // Untested rows inherit a neighbor's bin.
    const auto bin_of = prof.binOf(1, 256); // midway between samples
    EXPECT_LT(bin_of, prof.numBins());
}

namespace {

/** Field-exact RowResult comparison (doubles compared bit-for-bit). */
void
expectIdentical(const std::vector<RowResult> &a,
                const std::vector<RowResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].bank, b[i].bank) << i;
        EXPECT_EQ(a[i].logicalRow, b[i].logicalRow) << i;
        EXPECT_EQ(a[i].physRow, b[i].physRow) << i;
        EXPECT_EQ(a[i].relativeLocation, b[i].relativeLocation) << i;
        EXPECT_EQ(a[i].wcdp, b[i].wcdp) << i;
        EXPECT_EQ(a[i].ber128k, b[i].ber128k) << i;
        EXPECT_EQ(a[i].hcFirst, b[i].hcFirst) << i;
        EXPECT_EQ(a[i].flippedAtMaxCount, b[i].flippedAtMaxCount) << i;
        EXPECT_EQ(a[i].numAggressors, b[i].numAggressors) << i;
    }
}

} // anonymous namespace

TEST(Characterizer, ModuleSweepBitIdenticalAcrossThreadCounts)
{
    // Every row runs on its own hash(seed, bank, row)-seeded
    // workspace, so sharding rows over threads must not change a
    // single output bit.
    Rig rig("S3");
    CharzOptions opt;
    opt.rowStep = 449;
    opt.quickWcdp = true;
    opt.iterations = 2;
    opt.banks = {1, 4};
    opt.extraRows = {7};

    opt.threads = 1;
    const auto serial = rig.charz.characterizeModule(opt);
    opt.threads = 4;
    const auto sharded = rig.charz.characterizeModule(opt);
    expectIdentical(serial, sharded);
}

TEST(Characterizer, RowResultsAreHistoryIndependent)
{
    // PR 4 moved characterization onto isolated per-row workspaces:
    // before it, repeated measurements shared one device, so leftover
    // pending disturbance and RNG state from earlier rows could bleed
    // into later results (and results depended on sweep order, which
    // no real Alg. 1 run exhibits — the paper re-initializes every
    // tested row). This pins the new contract: a RowResult is a pure
    // function of (module, bank, row, options).
    Rig rig("S2");
    CharzOptions opt;
    opt.quickWcdp = true;
    const auto first = rig.charz.characterizeRow(1, 300, opt);
    rig.charz.characterizeRow(1, 301, opt); // interleaved history
    rig.charz.characterizeRow(4, 300, opt);
    const auto again = rig.charz.characterizeRow(1, 300, opt);
    expectIdentical({first}, {again});

    // And the bank sweep returns exactly what per-row calls return.
    CharzOptions sweep = opt;
    sweep.rowStep = rig.spec.rowsPerBank / 4;
    const auto bank_results = rig.charz.characterizeBank(1, sweep);
    for (const auto &r : bank_results) {
        const auto lone = rig.charz.characterizeRow(1, r.logicalRow, opt);
        expectIdentical({r}, {lone});
    }
}

TEST(RevEng, IdentifiesRowMappingScheme)
{
    for (const char *label : {"H0", "M0", "S0"}) {
        Rig rig(label);
        bender::TestSession session(rig.device);
        RevEngOptions opt;
        opt.mappingSamples = 2048;
        const auto scheme = identifyRowMapping(session, opt);
        EXPECT_EQ(static_cast<int>(scheme),
                  rig.spec.rowMappingScheme)
            << label;
    }
}

TEST(RevEng, FindsSubarrayBoundariesInProbedRange)
{
    Rig rig("S0");
    bender::TestSession session(rig.device);
    RevEngOptions opt;
    // Probe the first ~6 subarrays.
    opt.firstRow = 1;
    opt.lastRow = rig.subarrays->subarrayBase(6) + 10;
    const auto result = reverseEngineerSubarrays(session, opt);

    // Ground truth boundaries inside the probed range.
    std::set<uint32_t> truth;
    for (uint32_t s = 1; s <= 6; ++s)
        truth.insert(rig.subarrays->subarrayBase(s));
    // All true boundaries must be recovered (RowClone across a true
    // boundary always fails, so none is invalidated).
    for (uint32_t b : truth)
        EXPECT_TRUE(std::count(result.boundaries.begin(),
                               result.boundaries.end(), b))
            << "missed boundary " << b;
    // Spurious boundaries (failed intra-subarray clones) are rare.
    EXPECT_LE(result.boundaries.size(), truth.size() + 3);
}

TEST(RevEng, SilhouettePeaksNearTrueSubarrayCount)
{
    Rig rig("S1");
    bender::TestSession session(rig.device);
    RevEngOptions opt;
    opt.firstRow = 1;
    opt.lastRow = rig.subarrays->subarrayBase(8) + 10;
    const auto result = reverseEngineerSubarrays(session, opt);
    ASSERT_FALSE(result.silhouette.empty());
    // 8 subarrays probed (boundary candidates may add 1-2).
    EXPECT_GE(result.bestK, 6u);
    EXPECT_LE(result.bestK, 12u);
}

TEST(Features, SamsungModulesCorrelateOthersDoNot)
{
    // S4 carries an injected subarray-bit correlation; H1 none.
    for (const char *label : {"S4", "H1"}) {
        Rig rig(label);
        CharzOptions opt;
        // Prime step: a power-of-two step aliases with subarray sizes
        // and oversamples subarray-edge rows, whose single-sided
        // disturbance doubles their measured HC_first.
        opt.rowStep = 131;
        // Full 6-pattern WCDP discovery: the quick stripe-only mode
        // overestimates HC_first on rows whose WCDP is not a stripe,
        // which washes out the correlation the analysis must find.
        // Two iterations with worst-case recording suppress near-tie
        // WCDP mispicks (the paper runs ten).
        opt.quickWcdp = false;
        opt.iterations = 2;
        opt.banks = {1, 4};
        const auto results = rig.charz.characterizeModule(opt);
        const auto scores =
            spatialFeatureScores(rig.spec, *rig.subarrays, results);
        const auto strong = featuresAbove(scores, 0.7);
        if (std::string(label) == "S4")
            EXPECT_FALSE(strong.empty()) << label;
        else
            EXPECT_TRUE(strong.empty()) << label;
        // Fig. 9: nothing above 0.8 anywhere.
        EXPECT_TRUE(featuresAbove(scores, 0.85).empty()) << label;
    }
}

TEST(Features, FractionCurveIsMonotoneDecreasing)
{
    Rig rig("S0");
    CharzOptions opt;
    opt.rowStep = 256;
    opt.quickWcdp = true;
    opt.banks = {1};
    const auto results = rig.charz.characterizeModule(opt);
    const auto scores =
        spatialFeatureScores(rig.spec, *rig.subarrays, results);
    double prev = 1.1;
    for (double thr = 0.0; thr <= 1.0; thr += 0.1) {
        const double f = fractionAboveF1(scores, thr);
        EXPECT_LE(f, prev + 1e-12);
        prev = f;
    }
    EXPECT_DOUBLE_EQ(fractionAboveF1(scores, -0.01), 1.0);
}

TEST(Aging, WeakRowsDegradeStrongRowsDoNot)
{
    CharzOptions opt;
    opt.rowStep = 64;
    opt.quickWcdp = true;
    opt.iterations = 2; // worst-case recording suppresses WCDP noise
    opt.banks = {1};
    const auto res = agingExperiment(dram::moduleByLabel("H3"), opt);

    uint64_t degraded = 0, improved = 0;
    for (const auto &[key, n] : res.transitions) {
        if (key.second < key.first)
            degraded += n;
        if (key.second > key.first)
            improved += n;
    }
    EXPECT_GT(degraded, 0u);
    // Residual measurement noise (different WCDP pick between the two
    // characterizations) may show a handful of spurious "improvements";
    // genuine degradation must dominate by an order of magnitude.
    EXPECT_LE(improved * 10, degraded);
}

} // namespace
} // namespace svard::charz
