/**
 * @file
 * Tests for the streaming result-sink subsystem: exact CSV/binary
 * round-trips, the AsyncSink decorator, and the per-cell sweep cache
 * — including the headline guarantee that a sweep killed mid-run and
 * resumed from its checkpoint produces a byte-identical result table
 * to an uninterrupted run at any thread count, and that a fully
 * cached re-run executes zero cells.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "defense/blockhammer.h"
#include "defense/registry.h"
#include "engine/runner.h"
#include "io/async_sink.h"
#include "io/result_sink.h"
#include "io/sweep_cache.h"

namespace svard {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "svard_io_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** Synthetic row with awkward doubles (round-trip must be exact). */
engine::CellResult
makeRow(uint32_t i)
{
    engine::CellResult r;
    r.cell = {i, i + 1, i + 2, i + 3, i + 4};
    r.seed = hashSeed({i, 0xABCULL});
    r.fingerprint = hashSeed({i, 0xDEFULL});
    r.geometry = i % 2 ? "hbm2-pc-16ch" : "ddr4-table4";
    r.defense = "blockhammer";
    r.threshold = 4096.0 / (i + 3);
    r.provider = "Svard-S0";
    r.mix = "mix-" + std::to_string(i);
    r.params = {{"blacklist_fraction", 0.1 + i / 7.0},
                {"q", 1e-17 * (i + 1)}};
    r.metrics.weightedSpeedup = 1.0 / 3.0 + i;
    r.metrics.harmonicSpeedup = 0.1 * (i + 1);
    r.metrics.maxSlowdown = std::sqrt(2.0) * (i + 1);
    r.normalized.weightedSpeedup = 0.98765432101234567 / (i + 1);
    r.normalized.harmonicSpeedup = 1e300 / std::pow(10.0, i);
    r.normalized.maxSlowdown = -0.0;
    return r;
}

void
expectRowsEqual(const engine::CellResult &a,
                const engine::CellResult &b)
{
    EXPECT_EQ(a.cell.geom, b.cell.geom);
    EXPECT_EQ(a.cell.defense, b.cell.defense);
    EXPECT_EQ(a.cell.threshold, b.cell.threshold);
    EXPECT_EQ(a.cell.provider, b.cell.provider);
    EXPECT_EQ(a.cell.mix, b.cell.mix);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.geometry, b.geometry);
    EXPECT_EQ(a.defense, b.defense);
    EXPECT_EQ(a.threshold, b.threshold); // exact: == on doubles
    EXPECT_EQ(a.provider, b.provider);
    EXPECT_EQ(a.mix, b.mix);
    EXPECT_EQ(a.params, b.params);
    EXPECT_EQ(a.metrics.weightedSpeedup, b.metrics.weightedSpeedup);
    EXPECT_EQ(a.metrics.harmonicSpeedup, b.metrics.harmonicSpeedup);
    EXPECT_EQ(a.metrics.maxSlowdown, b.metrics.maxSlowdown);
    EXPECT_EQ(a.normalized.weightedSpeedup,
              b.normalized.weightedSpeedup);
    EXPECT_EQ(a.normalized.harmonicSpeedup,
              b.normalized.harmonicSpeedup);
    EXPECT_EQ(a.normalized.maxSlowdown, b.normalized.maxSlowdown);
}

/** In-memory sink for observing emission order and content. */
class CollectSink : public io::ResultSink
{
  public:
    void
    write(const engine::CellResult &row) override
    {
        rows.push_back(row);
    }

    std::vector<engine::CellResult> rows;
};

// -----------------------------------------------------------------
// Sink round-trips
// -----------------------------------------------------------------

TEST(ResultSink, CsvAndBinaryRoundTripIdenticalRows)
{
    std::vector<engine::CellResult> rows;
    for (uint32_t i = 0; i < 6; ++i)
        rows.push_back(makeRow(i));

    const std::string csv = tmpPath("roundtrip.csv");
    const std::string bin = tmpPath("roundtrip.bin");
    {
        io::CsvSink cs(csv);
        io::BinarySink bs(bin);
        for (const auto &r : rows) {
            cs.write(r);
            bs.write(r);
        }
        cs.flush();
        bs.flush();
    }

    const auto from_csv = io::readCsvResults(csv);
    const auto from_bin = io::readBinaryResults(bin);
    ASSERT_EQ(from_csv.size(), rows.size());
    ASSERT_EQ(from_bin.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        expectRowsEqual(rows[i], from_csv[i]);
        expectRowsEqual(rows[i], from_bin[i]);
        // Both formats decode to the same rows as each other, too.
        expectRowsEqual(from_csv[i], from_bin[i]);
    }
}

TEST(ResultSink, BinaryReaderDropsTruncatedTailRecord)
{
    const std::string bin = tmpPath("truncated.bin");
    {
        io::BinarySink bs(bin);
        bs.write(makeRow(0));
        bs.write(makeRow(1));
    }
    // Simulate a kill mid-append: a partial record after intact ones.
    {
        std::FILE *f = std::fopen(bin.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const unsigned char partial[] = {0x53, 0x56, 0x43, 0x33, 0x7F};
        std::fwrite(partial, 1, sizeof(partial), f);
        std::fclose(f);
    }
    const auto rows = io::readBinaryResults(bin);
    ASSERT_EQ(rows.size(), 2u);
    expectRowsEqual(rows[0], makeRow(0));
    expectRowsEqual(rows[1], makeRow(1));
}

TEST(ResultSink, MakeSinkForPathSelectsFormatByExtension)
{
    const std::string jsonl = tmpPath("rows.jsonl");
    {
        auto sink = io::makeSinkForPath(jsonl);
        sink->write(makeRow(2));
        sink->flush();
    }
    const std::string text = slurp(jsonl);
    EXPECT_NE(text.find("\"defense\":\"blockhammer\""),
              std::string::npos);
    EXPECT_NE(text.find("\"blacklist_fraction\":"), std::string::npos);

    const std::string bin = tmpPath("rows.svc");
    {
        auto sink = io::makeSinkForPath(bin);
        sink->write(makeRow(3));
    }
    const auto rows = io::readBinaryResults(bin);
    ASSERT_EQ(rows.size(), 1u);
    expectRowsEqual(rows[0], makeRow(3));
}

// -----------------------------------------------------------------
// AsyncSink
// -----------------------------------------------------------------

TEST(AsyncSink, DrainsEverythingInOrderThroughATinyQueue)
{
    /** Slow consumer: forces the bounded queue to fill and block. */
    class SlowCollect : public CollectSink
    {
      public:
        void
        write(const engine::CellResult &row) override
        {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            CollectSink::write(row);
        }
    };

    auto inner = std::make_unique<SlowCollect>();
    SlowCollect *collected = inner.get();
    io::AsyncSink sink(std::move(inner), /*queue_capacity=*/2);
    for (uint32_t i = 0; i < 100; ++i)
        sink.write(makeRow(i % 6));
    sink.flush();
    ASSERT_EQ(collected->rows.size(), 100u);
    for (uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(collected->rows[i].seed, makeRow(i % 6).seed) << i;
    EXPECT_LE(sink.maxDepthSeen(), 2u);
}

TEST(AsyncSink, WriterThreadErrorsSurfaceOnTheProducer)
{
    class FailingSink : public io::ResultSink
    {
      public:
        void
        write(const engine::CellResult &) override
        {
            throw std::runtime_error("disk full");
        }
    };

    io::AsyncSink sink(std::make_unique<FailingSink>(), 4);
    // The failure lands on the writer thread; it must reach the
    // producer at the next write() or flush() instead of vanishing.
    EXPECT_THROW(
        {
            for (int i = 0; i < 64; ++i)
                sink.write(makeRow(0));
            sink.flush();
        },
        std::runtime_error);
}

// -----------------------------------------------------------------
// Sweep cache + checkpoint/resume through the engine
// -----------------------------------------------------------------

engine::SweepSpec
ioSpec(unsigned threads)
{
    engine::SweepSpec spec;
    spec.config.cores = 4;
    spec.defenses = {"para", "hydra"};
    spec.thresholds = {128.0};
    spec.providers = {engine::ProviderSpec::uniform(),
                      engine::ProviderSpec::svard("S3")};
    spec.mixes = sim::workloadMixes(2, spec.config.cores);
    spec.requestsPerCore = 800;
    spec.threads = threads;
    return spec;
}

TEST(SweepCache, KilledAndResumedSweepIsBitIdenticalToUninterrupted)
{
    const std::string ref_csv = tmpPath("resume_ref.csv");
    const std::string full_cache = tmpPath("resume_full.cache");
    const std::string killed_cache = tmpPath("resume_killed.cache");
    const std::string resumed_csv = tmpPath("resume_out.csv");
    const std::string hot_csv = tmpPath("resume_hot.csv");
    std::remove(full_cache.c_str());
    std::remove(killed_cache.c_str());

    // Reference: uninterrupted single-threaded run, streaming CSV.
    engine::SweepSpec ref_spec = ioSpec(1);
    ref_spec.sink = std::make_shared<io::CsvSink>(ref_csv);
    engine::ExperimentRunner ref(std::move(ref_spec));
    const auto ref_results = ref.run();
    ASSERT_EQ(ref_results.size(), 8u);
    EXPECT_EQ(ref.executedCells(), 8u);
    EXPECT_EQ(ref.cachedCells(), 0u);

    // Build a complete checkpoint with a sharded run.
    {
        engine::SweepSpec spec = ioSpec(2);
        spec.cache = std::make_shared<io::SweepCache>(full_cache);
        engine::ExperimentRunner runner(std::move(spec));
        runner.run();
        EXPECT_EQ(runner.executedCells(), 8u);
    }

    // Simulate a sweep killed after 3 cells: keep an arbitrary
    // 3-record prefix of the checkpoint (completion order) and a
    // torn partial record where the kill landed. The checkpoint also
    // holds baseline records (alone-IPC and no-defense runs, cached
    // since PR 3); the kill keeps only grid cells, so the resume
    // recomputes baselines but not the checkpointed cells.
    const auto everything = io::readBinaryResults(full_cache);
    std::vector<engine::CellResult> all;
    for (const auto &r : everything)
        if (r.provider != "(alone)" && r.provider != "(baseline)")
            all.push_back(r);
    ASSERT_EQ(all.size(), 8u);
    ASSERT_GT(everything.size(), all.size()); // baselines cached too
    {
        io::BinarySink trunc(killed_cache);
        for (size_t i = 0; i < 3; ++i)
            trunc.write(all[i]);
    }
    {
        std::FILE *f = std::fopen(killed_cache.c_str(), "ab");
        ASSERT_NE(f, nullptr);
        const unsigned char torn[] = {0x53, 0x56, 0x43, 0x33, 0x10,
                                      0x00, 0x00, 0x00, 0xAA};
        std::fwrite(torn, 1, sizeof(torn), f);
        std::fclose(f);
    }

    // Resume from the killed checkpoint at a different thread count:
    // only the 5 missing cells execute, and the streamed CSV is
    // byte-identical to the uninterrupted reference.
    engine::SweepSpec res_spec = ioSpec(4);
    res_spec.cache = std::make_shared<io::SweepCache>(killed_cache);
    res_spec.sink = std::make_shared<io::CsvSink>(resumed_csv);
    engine::ExperimentRunner resumed(std::move(res_spec));
    const auto res_results = resumed.run();
    EXPECT_EQ(resumed.executedCells(), 5u);
    EXPECT_EQ(resumed.cachedCells(), 3u);
    ASSERT_EQ(res_results.size(), ref_results.size());
    for (size_t i = 0; i < ref_results.size(); ++i)
        expectRowsEqual(ref_results[i], res_results[i]);
    EXPECT_EQ(slurp(ref_csv), slurp(resumed_csv));

    // The resume completed the checkpoint: a re-run is fully cached,
    // executes zero cells, and still reproduces the table bytes.
    engine::SweepSpec hot_spec = ioSpec(3);
    hot_spec.cache = std::make_shared<io::SweepCache>(killed_cache);
    hot_spec.sink = std::make_shared<io::CsvSink>(hot_csv);
    engine::ExperimentRunner hot(std::move(hot_spec));
    hot.run();
    EXPECT_EQ(hot.executedCells(), 0u);
    EXPECT_EQ(hot.cachedCells(), 8u);
    EXPECT_EQ(slurp(ref_csv), slurp(hot_csv));
}

TEST(SweepCache, BaselinesAreCachedSoPartialResumesSkipThem)
{
    const std::string cache_path = tmpPath("baseline.cache");
    std::remove(cache_path.c_str());
    auto cache = std::make_shared<io::SweepCache>(cache_path);

    engine::SweepSpec cold_spec = ioSpec(2);
    cold_spec.cache = cache;
    engine::ExperimentRunner cold(std::move(cold_spec));
    cold.run();
    EXPECT_EQ(cold.executedCells(), 8u);
    EXPECT_GT(cold.executedBaselines(), 0u);
    EXPECT_EQ(cold.cachedBaselines(), 0u);

    // Partial resume: one more threshold doubles the grid; only the
    // new cells execute and every baseline comes from the cache.
    engine::SweepSpec grown_spec = ioSpec(2);
    grown_spec.thresholds = {128.0, 256.0};
    grown_spec.cache = cache;
    engine::ExperimentRunner grown(std::move(grown_spec));
    const auto &rows = grown.run();
    EXPECT_EQ(grown.executedCells(), 8u); // the new threshold only
    EXPECT_EQ(grown.cachedCells(), 8u);
    EXPECT_EQ(grown.executedBaselines(), 0u);
    EXPECT_EQ(grown.cachedBaselines(), cold.executedBaselines());

    // Cached baselines must normalize the old cells to the exact
    // same values a from-scratch run of the grown grid produces.
    engine::SweepSpec fresh_spec = ioSpec(1);
    fresh_spec.thresholds = {128.0, 256.0};
    engine::ExperimentRunner fresh(std::move(fresh_spec));
    const auto &fresh_rows = fresh.run();
    ASSERT_EQ(rows.size(), fresh_rows.size());
    for (size_t i = 0; i < rows.size(); ++i)
        expectRowsEqual(rows[i], fresh_rows[i]);
}

TEST(SweepCache, HitsSkipExecutionAndSpecEditsInvalidateOnlyChanges)
{
    const std::string cache_path = tmpPath("edit.cache");
    std::remove(cache_path.c_str());
    auto cache = std::make_shared<io::SweepCache>(cache_path);

    auto base = [&] {
        engine::SweepSpec spec = ioSpec(2);
        spec.defenses = {"para"}; // 1 x 1 x 2 x 2 = 4 cells
        spec.cache = cache;
        return spec;
    };

    engine::ExperimentRunner cold(base());
    const auto cold_results = cold.run();
    EXPECT_EQ(cold.executedCells(), 4u);
    EXPECT_EQ(cold.cachedCells(), 0u);

    // Identical spec: pure cache hits, zero executions, same rows,
    // and the sink still receives the full table in order.
    engine::SweepSpec hot_spec = base();
    auto collect = std::make_shared<CollectSink>();
    hot_spec.sink = collect;
    engine::ExperimentRunner hot(std::move(hot_spec));
    const auto hot_results = hot.run();
    EXPECT_EQ(hot.executedCells(), 0u);
    EXPECT_EQ(hot.cachedCells(), 4u);
    ASSERT_EQ(hot_results.size(), cold_results.size());
    ASSERT_EQ(collect->rows.size(), cold_results.size());
    for (size_t i = 0; i < cold_results.size(); ++i) {
        expectRowsEqual(cold_results[i], hot_results[i]);
        expectRowsEqual(cold_results[i], collect->rows[i]);
    }

    // Appending a threshold re-executes only the new cells; the
    // original threshold's cells stay cached.
    engine::SweepSpec edited = base();
    edited.thresholds = {128.0, 256.0};
    engine::ExperimentRunner grown(std::move(edited));
    const auto grown_results = grown.run();
    EXPECT_EQ(grown.executedCells(), 4u);
    EXPECT_EQ(grown.cachedCells(), 4u);
    ASSERT_EQ(grown_results.size(), 8u);
    for (size_t i = 0; i < 4; ++i)
        expectRowsEqual(cold_results[i], grown_results[i]);

    // Editing the defense parameter bag changes every cell's inputs:
    // nothing may hit the stale cache entries.
    engine::SweepSpec reparam = base();
    reparam.defenseParams["blacklist_fraction"] = 0.75;
    engine::ExperimentRunner changed(std::move(reparam));
    const auto changed_results = changed.run();
    EXPECT_EQ(changed.executedCells(), 4u);
    EXPECT_EQ(changed.cachedCells(), 0u);
    // The parameter bag is recorded on every result row.
    ASSERT_EQ(changed_results[0].params.size(), 1u);
    EXPECT_EQ(changed_results[0].params[0].first,
              "blacklist_fraction");
    EXPECT_EQ(changed_results[0].params[0].second, 0.75);
}

TEST(AdversarialSweep, CacheResumesAndSinkStreamsDefendedCells)
{
    const std::string cache_path = tmpPath("adv.cache");
    std::remove(cache_path.c_str());

    auto make_spec = [] {
        engine::AdversarialSpec adv;
        adv.config.cores = 4;
        adv.requestsPerCore = 600;
        adv.threads = 2;
        adv.cases.push_back(
            {"Hydra-thrash", "hydra",
             {sim::adversarialHydraTrace(600, 3)}});
        adv.cases.push_back(
            {"RRS-swap", "rrs",
             {sim::adversarialRrsTrace(600, 3, 1537),
              sim::adversarialRrsTrace(600, 3, 5011)}});
        adv.providers = {engine::ProviderSpec::uniform(),
                         engine::ProviderSpec::svard("S3")};
        return adv;
    };

    engine::AdversarialSpec cold = make_spec();
    cold.cache = std::make_shared<io::SweepCache>(cache_path);
    auto collect = std::make_shared<CollectSink>();
    cold.sink = collect;
    engine::SweepIoStats cold_stats;
    const auto cold_rows = engine::runAdversarialSweep(cold,
                                                       &cold_stats);
    // 3 reference runs + {case x provider x trace} = 3 + 6 defended,
    // plus the benign alone-IPC baselines (3 distinct benchmarks),
    // which are checkpointed and counted like reference runs.
    EXPECT_EQ(cold_stats.executed, 12u);
    EXPECT_EQ(cold_stats.cached, 0u);
    EXPECT_EQ(collect->rows.size(), 6u); // defended cells streamed

    engine::AdversarialSpec hot = make_spec();
    hot.cache = std::make_shared<io::SweepCache>(cache_path);
    engine::SweepIoStats hot_stats;
    const auto hot_rows = engine::runAdversarialSweep(hot, &hot_stats);
    EXPECT_EQ(hot_stats.executed, 0u);
    EXPECT_EQ(hot_stats.cached, 9u);
    ASSERT_EQ(hot_rows.size(), cold_rows.size());
    for (size_t i = 0; i < cold_rows.size(); ++i) {
        EXPECT_EQ(cold_rows[i].caseName, hot_rows[i].caseName);
        EXPECT_EQ(cold_rows[i].provider, hot_rows[i].provider);
        EXPECT_EQ(cold_rows[i].benignWs, hot_rows[i].benignWs);
        EXPECT_EQ(cold_rows[i].slowdown, hot_rows[i].slowdown);
        EXPECT_EQ(cold_rows[i].normalizedSlowdown,
                  hot_rows[i].normalizedSlowdown);
    }
}

TEST(SweepCache, SinkFailureSurfacesAsExceptionAndKeepsCheckpoint)
{
    // A sink that fails mid-stream: the error is raised on a worker
    // thread (workers emit as cells finish), and must surface as an
    // exception from run() rather than terminating the process.
    class FailAfterOne : public io::ResultSink
    {
      public:
        void
        write(const engine::CellResult &) override
        {
            if (written_++ >= 1)
                throw std::runtime_error("sink broke");
        }

      private:
        int written_ = 0;
    };

    const std::string cache_path = tmpPath("sinkfail.cache");
    std::remove(cache_path.c_str());
    engine::SweepSpec spec = ioSpec(4);
    auto cache = std::make_shared<io::SweepCache>(cache_path);
    spec.cache = cache;
    spec.sink = std::make_shared<FailAfterOne>();
    engine::ExperimentRunner runner(std::move(spec));
    EXPECT_THROW(runner.run(), std::runtime_error);
    // Every cell that finished before the failure stayed
    // checkpointed, so a retry resumes instead of starting over.
    EXPECT_GT(cache->size(), 0u);
}

TEST(SweepCache, ConcurrentSinkFailureDoesNotRaceEmission)
{
    // Regression: the ordered emitter's disabled check used to read
    // the sink pointer without its lock, racing the disable() a
    // failing sink triggers on another worker. With every worker
    // still completing cells while one latches the error, TSan (and
    // clang's thread-safety analysis) must see only locked accesses.
    class FailLate : public io::ResultSink
    {
      public:
        void
        write(const engine::CellResult &) override
        {
            if (written_.fetch_add(1) >= 5)
                throw std::runtime_error("sink broke late");
        }

      private:
        std::atomic<int> written_{0};
    };

    engine::SweepSpec spec = ioSpec(4);
    spec.mixes = sim::workloadMixes(4, spec.config.cores);
    spec.sink = std::make_shared<FailLate>();
    engine::ExperimentRunner runner(std::move(spec));
    EXPECT_THROW(runner.run(), std::runtime_error);
}

// -----------------------------------------------------------------
// Defense parameter bag through the registry
// -----------------------------------------------------------------

TEST(DefenseParams, BlockhammerBlacklistFractionIsTunableByName)
{
    auto provider =
        std::make_shared<core::UniformThreshold>(64.0, 128 * 1024);

    defense::DefenseContext eager(provider, 1, 16);
    eager.params["blacklist_fraction"] = 0.05;
    defense::DefenseContext lax(provider, 1, 16);
    lax.params["blacklist_fraction"] = 0.95;

    auto d_eager = defense::makeDefenseByName("blockhammer", eager);
    auto d_lax = defense::makeDefenseByName("blockhammer", lax);
    auto *bh_eager =
        dynamic_cast<defense::BlockHammer *>(d_eager.get());
    auto *bh_lax = dynamic_cast<defense::BlockHammer *>(d_lax.get());
    ASSERT_NE(bh_eager, nullptr);
    ASSERT_NE(bh_lax, nullptr);

    std::vector<defense::PreventiveAction> actions;
    for (int k = 0; k < 20; ++k) {
        bh_eager->onActivate(0, 100, k * 1000, actions);
        bh_lax->onActivate(0, 100, k * 1000, actions);
    }
    // 20 activations cross 5% of a 64-activation budget but stay far
    // under 95%: only the eager configuration blacklists the row.
    EXPECT_TRUE(bh_eager->isBlacklisted(0, 100));
    EXPECT_FALSE(bh_lax->isBlacklisted(0, 100));
}

TEST(DefenseParams, UnknownParamsFallBackToDefaults)
{
    auto provider =
        std::make_shared<core::UniformThreshold>(64.0, 128 * 1024);
    defense::DefenseContext ctx(provider, 1, 16);
    ctx.params["unrelated_knob"] = 123.0;
    EXPECT_EQ(ctx.param("blacklist_fraction", 0.5), 0.5);
    EXPECT_EQ(ctx.param("unrelated_knob", 0.0), 123.0);
    // Factories must tolerate unknown names (forward compatibility).
    auto d = defense::makeDefenseByName("blockhammer", ctx);
    ASSERT_NE(d, nullptr);
}

} // namespace
} // namespace svard
